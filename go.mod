module github.com/asamap/asamap

go 1.22
