// Package asamap is a Go reproduction of "Fast Community Detection in Graphs
// with Infomap Method using Accelerated Sparse Accumulation" (Faysal et al.,
// IPDPS Workshops 2023): a shared-memory parallel Infomap community detector
// whose hot sparse-accumulation kernel runs over pluggable backends — the
// software hash table baseline or a functional model of the ASA
// content-addressable-memory accelerator — together with the hardware cost
// model, graph generators, baselines, and benchmark harness that regenerate
// the paper's evaluation.
//
// This file is the public facade: it re-exports the types a downstream user
// needs so the library is usable without reaching into internal packages.
//
//	g, _, err := asamap.ReadGraphFile("network.txt", false)
//	res, err := asamap.DetectCommunities(g, asamap.DefaultOptions())
//	fmt.Println(res.NumModules, res.Codelength)
//
// See README.md for the architecture overview and DESIGN.md for the
// paper-reproduction inventory.
package asamap

import (
	"context"
	"io"

	"github.com/asamap/asamap/internal/asa"
	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/infomap"
	"github.com/asamap/asamap/internal/louvain"
	"github.com/asamap/asamap/internal/metrics"
)

// Graph is a weighted graph in compressed-sparse-row form. Build one with
// NewGraphBuilder or load one with ReadGraph/ReadGraphFile.
type Graph = graph.Graph

// GraphBuilder accumulates edges and freezes them into a Graph.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a builder for a graph with n vertices.
func NewGraphBuilder(n int, directed bool) *GraphBuilder {
	return graph.NewBuilder(n, directed)
}

// ReadGraph parses a SNAP-style edge list ("from to [weight]" lines, '#'
// comments) and returns the graph plus the original vertex labels.
func ReadGraph(r io.Reader, directed bool) (*Graph, []uint64, error) {
	return graph.ReadEdgeList(r, directed)
}

// ReadGraphFile is ReadGraph over a file path.
func ReadGraphFile(path string, directed bool) (*Graph, []uint64, error) {
	return graph.ReadEdgeListFile(path, directed)
}

// Options configures community detection; start from DefaultOptions.
type Options = infomap.Options

// Result is the outcome of DetectCommunities.
type Result = infomap.Result

// AccumKind selects the sparse-accumulation backend of the hot kernel.
type AccumKind = infomap.AccumKind

// Accumulation backends.
const (
	// BaselineAccumulator is the software chained hash table (the paper's
	// Baseline, modeled on std::unordered_map).
	BaselineAccumulator = infomap.Baseline
	// ASAAccumulator is the Accelerated Sparse Accumulation CAM model (the
	// paper's contribution).
	ASAAccumulator = infomap.ASA
	// GoMapAccumulator is Go's builtin map (reference backend).
	GoMapAccumulator = infomap.GoMap
)

// Teleportation selects how directed-graph teleportation enters the code.
type Teleportation = infomap.Teleportation

// Teleportation models for directed graphs.
const (
	// TeleportRecorded encodes teleportation steps (the paper's model).
	TeleportRecorded = infomap.TeleportRecorded
	// TeleportUnrecorded prices arc flows only (modern Infomap default).
	TeleportUnrecorded = infomap.TeleportUnrecorded
)

// ASAConfig configures the per-worker CAM for the ASA backend.
type ASAConfig = asa.Config

// DefaultASAConfig returns the paper's headline CAM: 8KB, 16-byte entries,
// LRU replacement.
func DefaultASAConfig() ASAConfig { return asa.DefaultConfig() }

// DefaultOptions returns the standard configuration (Baseline backend, one
// worker).
func DefaultOptions() Options { return infomap.DefaultOptions() }

// DetectCommunities minimizes the map equation on g and returns the
// partition, its codelength, kernel timings, and accumulator event counts.
func DetectCommunities(g *Graph, opt Options) (*Result, error) {
	return infomap.Run(g, opt)
}

// DetectCommunitiesContext is DetectCommunities under a context: the run
// observes cancellation at kernel and sweep boundaries and returns
// ctx.Err() promptly, without leaking worker goroutines.
func DetectCommunitiesContext(ctx context.Context, g *Graph, opt Options) (*Result, error) {
	return infomap.RunContext(ctx, g, opt)
}

// CommunityModules groups vertex IDs by module.
func CommunityModules(membership []uint32) [][]int {
	return infomap.Modules(membership)
}

// HierResult is the outcome of DetectCommunitiesHierarchical: a tree of
// modules optimized under the hierarchical map equation.
type HierResult = infomap.HierResult

// HierNode is one module of a hierarchical result.
type HierNode = infomap.HierNode

// DetectCommunitiesHierarchical detects a multi-level community hierarchy by
// minimizing the hierarchical map equation (Rosvall & Bergstrom 2011): the
// flat two-level solution is refined by splitting modules into submodules
// and grouping modules under super modules wherever that shortens the code.
func DetectCommunitiesHierarchical(g *Graph, opt Options) (*HierResult, error) {
	return infomap.RunHierarchical(g, opt)
}

// DetectCommunitiesHierarchicalContext is DetectCommunitiesHierarchical
// under a context.
func DetectCommunitiesHierarchicalContext(ctx context.Context, g *Graph, opt Options) (*HierResult, error) {
	return infomap.RunHierarchicalContext(ctx, g, opt)
}

// LouvainOptions configures the modularity-based baseline.
type LouvainOptions = louvain.Options

// LouvainResult is the outcome of DetectCommunitiesLouvain.
type LouvainResult = louvain.Result

// DefaultLouvainOptions returns the classic Louvain parameterization.
func DefaultLouvainOptions() LouvainOptions { return louvain.DefaultOptions() }

// DetectCommunitiesLouvain runs the Louvain modularity baseline (undirected
// graphs only).
func DetectCommunitiesLouvain(g *Graph, opt LouvainOptions) (*LouvainResult, error) {
	return louvain.Run(g, opt)
}

// Modularity returns Newman's modularity of a partition at resolution gamma.
func Modularity(g *Graph, membership []uint32, gamma float64) float64 {
	return louvain.Modularity(g, membership, gamma)
}

// NMI returns the normalized mutual information between two labelings.
func NMI(a, b []uint32) (float64, error) { return metrics.NMI(a, b) }

// ARI returns the adjusted Rand index between two labelings.
func ARI(a, b []uint32) (float64, error) { return metrics.ARI(a, b) }
