package asamap_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// The golden e2e tests exec the real CLI binaries through `go run` against a
// small committed LFR benchmark and byte-compare their outputs with files
// under testdata/golden. They pin the end-to-end determinism contract: same
// input, same seed => same bytes, across releases and worker counts.
//
// Regenerate (after an intentional algorithm change) with:
//
//	go run ./cmd/infomap -in testdata/golden/lfr_small.txt -seed 1 -workers 2 \
//	    -out testdata/golden/lfr_small.assign.golden \
//	    | sed '/^elapsed:/d; /^wrote /d' > testdata/golden/lfr_small.infomap.stdout.golden
//	go run ./cmd/quality -pred testdata/golden/lfr_small.assign.golden \
//	    -truth testdata/golden/lfr_small.truth -graph testdata/golden/lfr_small.txt \
//	    > testdata/golden/lfr_small.quality.golden

// runCLI executes `go run ./cmd/<name> args...` from the module root and
// returns its stdout.
func runCLI(t *testing.T, name string, args ...string) []byte {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "./cmd/" + name}, args...)...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("go run ./cmd/%s %v: %v\nstderr:\n%s", name, args, err, stderr.String())
	}
	return stdout.Bytes()
}

// normalizeStdout drops the lines that legitimately vary between runs: the
// wall-clock "elapsed:" line and "wrote ... to <path>" lines that embed
// temp-file paths. Everything else must be byte-stable.
func normalizeStdout(out []byte) []byte {
	var kept []string
	for _, line := range strings.Split(string(out), "\n") {
		if strings.HasPrefix(line, "elapsed:") || strings.HasPrefix(line, "wrote ") {
			continue
		}
		kept = append(kept, line)
	}
	return []byte(strings.Join(kept, "\n"))
}

func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "golden", name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestE2EInfomapGolden runs cmd/infomap on the committed LFR graph and
// byte-compares both the assignment file and the (normalized) stdout
// against goldens.
func TestE2EInfomapGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("execs go run; skipped in -short mode")
	}
	assign := filepath.Join(t.TempDir(), "assign.txt")
	out := runCLI(t, "infomap",
		"-in", filepath.Join("testdata", "golden", "lfr_small.txt"),
		"-seed", "1", "-workers", "2", "-out", assign)

	got := normalizeStdout(out)
	want := readGolden(t, "lfr_small.infomap.stdout.golden")
	if !bytes.Equal(bytes.TrimSpace(got), bytes.TrimSpace(want)) {
		t.Errorf("infomap stdout drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	gotAssign, err := os.ReadFile(assign)
	if err != nil {
		t.Fatal(err)
	}
	wantAssign := readGolden(t, "lfr_small.assign.golden")
	if !bytes.Equal(gotAssign, wantAssign) {
		t.Error("assignment file is not byte-identical to the golden")
	}
}

// TestE2EInfomapGoldenWorkerInvariance reruns the same detection with a
// different worker count and scheduler; the assignment bytes must not move —
// the scheduler's determinism guarantee observed at the CLI boundary.
func TestE2EInfomapGoldenWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("execs go run; skipped in -short mode")
	}
	wantAssign := readGolden(t, "lfr_small.assign.golden")
	for _, tc := range []struct{ workers, sched string }{
		{"1", "steal"},
		{"4", "steal"},
		{"4", "static"},
	} {
		assign := filepath.Join(t.TempDir(), "assign.txt")
		runCLI(t, "infomap",
			"-in", filepath.Join("testdata", "golden", "lfr_small.txt"),
			"-seed", "1", "-workers", tc.workers, "-sched", tc.sched, "-out", assign)
		got, err := os.ReadFile(assign)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, wantAssign) {
			t.Errorf("workers=%s sched=%s: assignment differs from golden", tc.workers, tc.sched)
		}
	}
}

// TestE2EWarmStartGolden runs the incremental path end to end: the committed
// LFR graph plus the committed delta file through `cmd/infomap -delta
// -warm-start`, byte-comparing the assignment and the normalized stdout
// (which pins the frontier size and frozen count) against goldens.
//
// Regenerate (after an intentional algorithm change) with:
//
//	go run ./cmd/infomap -in testdata/golden/lfr_small.txt \
//	    -delta testdata/golden/lfr_small.delta.txt -warm-start \
//	    -seed 1 -workers 2 -out testdata/golden/lfr_small.warm.assign.golden \
//	    | sed '/^elapsed:/d; /^wrote /d' > testdata/golden/lfr_small.warm.stdout.golden
func TestE2EWarmStartGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("execs go run; skipped in -short mode")
	}
	assign := filepath.Join(t.TempDir(), "assign.txt")
	out := runCLI(t, "infomap",
		"-in", filepath.Join("testdata", "golden", "lfr_small.txt"),
		"-delta", filepath.Join("testdata", "golden", "lfr_small.delta.txt"),
		"-warm-start", "-seed", "1", "-workers", "2", "-out", assign)

	got := normalizeStdout(out)
	want := readGolden(t, "lfr_small.warm.stdout.golden")
	if !bytes.Equal(bytes.TrimSpace(got), bytes.TrimSpace(want)) {
		t.Errorf("warm-start stdout drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// The stdout golden itself asserts the frontier restriction (a "warm:"
	// line with a non-zero frozen count); make the contract explicit here so
	// a regenerated golden that silently lost the restriction still fails.
	if !strings.Contains(string(got), "warm: frontier ") {
		t.Error("stdout is missing the warm frontier summary line")
	}
	if strings.Contains(string(got), " 0 frozen") {
		t.Error("warm start froze nothing: the frontier restriction is not active")
	}

	gotAssign, err := os.ReadFile(assign)
	if err != nil {
		t.Fatal(err)
	}
	wantAssign := readGolden(t, "lfr_small.warm.assign.golden")
	if !bytes.Equal(gotAssign, wantAssign) {
		t.Error("warm assignment file is not byte-identical to the golden")
	}
}

// TestE2EWarmStartGoldenWorkerInvariance reruns the incremental detection
// with different worker counts and both schedulers; the warm assignment
// bytes must not move.
func TestE2EWarmStartGoldenWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("execs go run; skipped in -short mode")
	}
	wantAssign := readGolden(t, "lfr_small.warm.assign.golden")
	for _, tc := range []struct{ workers, sched string }{
		{"1", "steal"},
		{"4", "steal"},
		{"4", "static"},
	} {
		assign := filepath.Join(t.TempDir(), "assign.txt")
		runCLI(t, "infomap",
			"-in", filepath.Join("testdata", "golden", "lfr_small.txt"),
			"-delta", filepath.Join("testdata", "golden", "lfr_small.delta.txt"),
			"-warm-start", "-seed", "1",
			"-workers", tc.workers, "-sched", tc.sched, "-out", assign)
		got, err := os.ReadFile(assign)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, wantAssign) {
			t.Errorf("workers=%s sched=%s: warm assignment differs from golden", tc.workers, tc.sched)
		}
	}
}

// TestE2ELintClean runs the repository's own analyzer suite (cmd/asalint)
// over every package, exactly as the CI lint job does. The determinism and
// cancellation contracts the goldens above observe at the process boundary
// are proved structurally here: any new unsorted map iteration on a result
// path, wall-clock read outside internal/clock, unjustified
// context.Background(), untracked goroutine, or unhashed Options field
// turns this test red.
func TestE2ELintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("execs go run; skipped in -short mode")
	}
	cmd := exec.Command("go", "run", "./cmd/asalint", "./...")
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		t.Fatalf("asalint reported findings or failed: %v\n%s", err, out.String())
	}
	if s := strings.TrimSpace(out.String()); s != "" {
		t.Errorf("asalint produced unexpected output on a clean tree:\n%s", s)
	}
}

// TestE2ETrace runs cmd/infomap with -trace-out and validates the Chrome
// trace-event artifact: well-formed JSON, complete ("X") events with the
// expected kernel names, and an infomap → run → level → sweep →
// FindBestCommunity nesting reachable through the parent links in args.
// The normalized stdout must still match the golden — tracing cannot change
// the detection output.
func TestE2ETrace(t *testing.T) {
	if testing.Short() {
		t.Skip("execs go run; skipped in -short mode")
	}
	traceFile := filepath.Join(t.TempDir(), "trace.json")
	out := runCLI(t, "infomap",
		"-in", filepath.Join("testdata", "golden", "lfr_small.txt"),
		"-seed", "1", "-workers", "2", "-trace-out", traceFile)

	got := normalizeStdout(out)
	want := readGolden(t, "lfr_small.infomap.stdout.golden")
	if !bytes.Equal(bytes.TrimSpace(got), bytes.TrimSpace(want)) {
		t.Errorf("tracing changed the detection stdout:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("-trace-out is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("-trace-out holds no trace events")
	}

	type span struct{ name, parent string }
	byID := map[string]span{}
	count := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Phase != "X" {
			t.Fatalf("event %q has phase %q, want complete (X)", ev.Name, ev.Phase)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			t.Fatalf("event %q has negative ts/dur: %v/%v", ev.Name, ev.TS, ev.Dur)
		}
		id, _ := ev.Args["id"].(string)
		parent, _ := ev.Args["parent"].(string)
		if id == "" {
			t.Fatalf("event %q carries no span id in args", ev.Name)
		}
		byID[id] = span{name: ev.Name, parent: parent}
		count[ev.Name]++
	}
	for _, name := range []string{"infomap", "run", "level", "sweep",
		"PageRank", "FindBestCommunity", "UpdateMembers"} {
		if count[name] == 0 {
			t.Errorf("trace has no %q span (have %v)", name, count)
		}
	}
	// Walk one FindBestCommunity span to its root through parent links.
	for id, sp := range byID {
		if sp.name != "FindBestCommunity" {
			continue
		}
		var chain []string
		for cur, ok := sp, true; ok; cur, ok = byID[cur.parent] {
			chain = append(chain, cur.name)
			if cur.parent == "" {
				break
			}
		}
		wantChain := []string{"FindBestCommunity", "sweep", "level", "run", "infomap"}
		if strings.Join(chain, "/") != strings.Join(wantChain, "/") {
			t.Fatalf("span %s ancestry = %v, want %v", id, chain, wantChain)
		}
		break
	}
}

// TestE2EQualityGolden scores the golden assignment against the planted
// truth and byte-compares cmd/quality's stdout.
func TestE2EQualityGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("execs go run; skipped in -short mode")
	}
	out := runCLI(t, "quality",
		"-pred", filepath.Join("testdata", "golden", "lfr_small.assign.golden"),
		"-truth", filepath.Join("testdata", "golden", "lfr_small.truth"),
		"-graph", filepath.Join("testdata", "golden", "lfr_small.txt"))
	want := readGolden(t, "lfr_small.quality.golden")
	if !bytes.Equal(out, want) {
		t.Errorf("quality stdout drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", out, want)
	}
}
