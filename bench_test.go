// Benchmarks regenerating the paper's tables and figures as testing.B
// targets: one benchmark per artifact. Wall-clock numbers come from real Go
// execution on small replicas; the paper's hardware-counter comparisons are
// attached as custom metrics (speedup, instr-reduction, ...) computed from
// the event-exact perf model, so `go test -bench=. -benchmem` prints both.
//
// Run a single artifact with e.g. `go test -bench=Table5 -benchmem`.
package asamap_test

import (
	"io"
	"testing"

	"github.com/asamap/asamap/internal/accum"
	"github.com/asamap/asamap/internal/asa"
	"github.com/asamap/asamap/internal/bench"
	"github.com/asamap/asamap/internal/cachesim"
	"github.com/asamap/asamap/internal/dataset"
	"github.com/asamap/asamap/internal/dist"
	"github.com/asamap/asamap/internal/gen"
	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/hashtab"
	"github.com/asamap/asamap/internal/infomap"
	"github.com/asamap/asamap/internal/louvain"
	"github.com/asamap/asamap/internal/metrics"
	"github.com/asamap/asamap/internal/perf"
	"github.com/asamap/asamap/internal/rng"
	"github.com/asamap/asamap/internal/spgemm"
)

// benchReplica generates (once) a small replica of a Table I network.
var replicaCache = map[string]*graph.Graph{}

func benchReplica(b *testing.B, name string) *graph.Graph {
	b.Helper()
	if g, ok := replicaCache[name]; ok {
		return g
	}
	spec, err := dataset.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	g, err := spec.Generate(spec.DefaultScale*16, 1)
	if err != nil {
		b.Fatal(err)
	}
	replicaCache[name] = g
	return g
}

func benchRun(b *testing.B, g *graph.Graph, kind infomap.AccumKind, workers int) *infomap.Result {
	b.Helper()
	opt := infomap.DefaultOptions()
	opt.Kind = kind
	opt.Workers = workers
	res, err := infomap.Run(g, opt)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func modeledCounters(b *testing.B, res *infomap.Result, kind infomap.AccumKind) (hash, total perf.Counters) {
	b.Helper()
	model := perf.DefaultModel(perf.Baseline())
	name := map[infomap.AccumKind]string{
		infomap.Baseline: "softhash", infomap.ASA: "asa", infomap.GoMap: "gomap",
	}[kind]
	h, err := model.AccumCost(name, res.TotalStats())
	if err != nil {
		b.Fatal(err)
	}
	t := h
	t.Add(model.KernelCost(res.TotalWork()))
	return h, t
}

// BenchmarkTable1Datasets measures replica generation for each network.
func BenchmarkTable1Datasets(b *testing.B) {
	for _, spec := range dataset.Registry {
		b.Run(spec.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := spec.Generate(spec.DefaultScale*16, uint64(i+1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig2KernelBreakdown measures the full Baseline pipeline on the
// Pokec-like network and reports the hash share of FindBestCommunity.
func BenchmarkFig2KernelBreakdown(b *testing.B) {
	g := benchReplica(b, "soc-Pokec")
	var share float64
	for i := 0; i < b.N; i++ {
		res := benchRun(b, g, infomap.Baseline, 1)
		hash, total := modeledCounters(b, res, infomap.Baseline)
		share = hash.Cycles / total.Cycles
	}
	b.ReportMetric(100*share, "hash-share-%")
}

// BenchmarkFig4DegreeHistogram measures the Figure 4 data extraction.
func BenchmarkFig4DegreeHistogram(b *testing.B) {
	g := benchReplica(b, "LiveJournal")
	for i := 0; i < b.N; i++ {
		if len(g.DegreeHistogram()) == 0 {
			b.Fatal("empty histogram")
		}
	}
}

// BenchmarkFig5CAMCoverage measures the Figure 5 coverage computation and
// reports the 8KB coverage.
func BenchmarkFig5CAMCoverage(b *testing.B) {
	g := benchReplica(b, "YouTube")
	entries := dataset.EntriesForBytes([]int{1024, 2048, 4096, 8192}, 16)
	var cov []float64
	for i := 0; i < b.N; i++ {
		cov = dataset.CAMCoverage(g, entries)
	}
	b.ReportMetric(100*cov[3], "8KB-coverage-%")
}

// BenchmarkTable3NativeVsBaseline measures the single-core Baseline run of
// the YouTube-like network (the workload behind Tables III/IV) and reports
// the modeled-vs-native ratio.
func BenchmarkTable3NativeVsBaseline(b *testing.B) {
	g := benchReplica(b, "YouTube")
	var ratio float64
	for i := 0; i < b.N; i++ {
		res := benchRun(b, g, infomap.Baseline, 1)
		_, total := modeledCounters(b, res, infomap.Baseline)
		native := res.Breakdown.Total().Seconds()
		if native > 0 {
			ratio = total.Seconds(perf.Baseline()) / native
		}
	}
	b.ReportMetric(ratio, "modeled/native")
}

// BenchmarkTable5HashOps runs both backends per network and reports the
// modeled hash-operation speedup — the headline numbers of Table V / Fig 6.
func BenchmarkTable5HashOps(b *testing.B) {
	for _, name := range []string{"Amazon", "DBLP", "YouTube", "soc-Pokec", "Orkut"} {
		b.Run(name, func(b *testing.B) {
			g := benchReplica(b, name)
			var speedup float64
			for i := 0; i < b.N; i++ {
				base := benchRun(b, g, infomap.Baseline, 1)
				acc := benchRun(b, g, infomap.ASA, 1)
				bh, _ := modeledCounters(b, base, infomap.Baseline)
				ah, _ := modeledCounters(b, acc, infomap.ASA)
				speedup = bh.Cycles / ah.Cycles
			}
			b.ReportMetric(speedup, "hash-speedup-x")
		})
	}
}

// BenchmarkFig6Speedup is the wall-clock twin of Table V: real Go execution
// time of the full pipeline per backend.
func BenchmarkFig6Speedup(b *testing.B) {
	g := benchReplica(b, "soc-Pokec")
	for _, kind := range []infomap.AccumKind{infomap.Baseline, infomap.ASA, infomap.GoMap} {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchRun(b, g, kind, 1)
			}
		})
	}
}

// BenchmarkFig7MultiCore sweeps worker counts for both backends (Figure 7,
// and the per-core series of Figures 9–11).
func BenchmarkFig7MultiCore(b *testing.B) {
	g := benchReplica(b, "Amazon")
	for _, workers := range []int{1, 2, 4} {
		for _, kind := range []infomap.AccumKind{infomap.Baseline, infomap.ASA} {
			b.Run(kind.String()+"/workers-"+string(rune('0'+workers)), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					benchRun(b, g, kind, workers)
				}
			})
		}
	}
}

// BenchmarkFig8HardwareCounters reports the Figure 8 reductions as metrics.
func BenchmarkFig8HardwareCounters(b *testing.B) {
	g := benchReplica(b, "YouTube")
	var instrRed, mpredRed, cpiRed float64
	for i := 0; i < b.N; i++ {
		base := benchRun(b, g, infomap.Baseline, 1)
		acc := benchRun(b, g, infomap.ASA, 1)
		_, bt := modeledCounters(b, base, infomap.Baseline)
		_, at := modeledCounters(b, acc, infomap.ASA)
		instrRed = 100 * (1 - at.Instructions/bt.Instructions)
		mpredRed = 100 * (1 - at.Mispredicts/bt.Mispredicts)
		cpiRed = 100 * (1 - at.CPI()/bt.CPI())
	}
	b.ReportMetric(instrRed, "instr-red-%")
	b.ReportMetric(mpredRed, "mpred-red-%")
	b.ReportMetric(cpiRed, "cpi-red-%")
}

// BenchmarkAccumulators isolates the accumulate/gather/reset loop on a
// power-law workload — the pure data-structure comparison.
func BenchmarkAccumulators(b *testing.B) {
	backends := map[string]accum.Accumulator{
		"softhash": hashtab.New(64),
		"asa":      asa.MustNew(asa.DefaultConfig()),
		"gomap":    accum.NewMap(64),
	}
	for _, name := range []string{"softhash", "asa", "gomap"} {
		acc := backends[name]
		b.Run(name, func(b *testing.B) {
			r := rng.New(1)
			var buf []accum.KV
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				deg := r.PowerLaw(2, 256, 2.3)
				for j := 0; j < deg; j++ {
					acc.Accumulate(uint32(r.Intn(deg/2+1)), 1.0)
				}
				buf = acc.Gather(buf[:0])
				acc.Reset()
			}
		})
	}
}

// BenchmarkLFRQuality measures Infomap vs Louvain on the LFR benchmark
// (extension X1) and reports both NMIs.
func BenchmarkLFRQuality(b *testing.B) {
	g, planted, err := gen.LFR(gen.DefaultLFR(2000, 0.3), rng.New(3))
	if err != nil {
		b.Fatal(err)
	}
	var nmiIM, nmiLV float64
	for i := 0; i < b.N; i++ {
		im := benchRun(b, g, infomap.Baseline, 1)
		lv, err := louvain.Run(g, louvain.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		nmiIM, _ = metrics.NMI(im.Membership, planted)
		nmiLV, _ = metrics.NMI(lv.Membership, planted)
	}
	b.ReportMetric(nmiIM, "infomap-nmi")
	b.ReportMetric(nmiLV, "louvain-nmi")
}

// BenchmarkSpGEMM measures sparse matrix multiplication per backend
// (extension X2 — ASA's original domain).
func BenchmarkSpGEMM(b *testing.B) {
	r := rng.New(5)
	a, err := spgemm.RandomPowerLaw(600, 2, 200, 2.0, r)
	if err != nil {
		b.Fatal(err)
	}
	m2, err := spgemm.RandomPowerLaw(600, 2, 200, 2.0, r)
	if err != nil {
		b.Fatal(err)
	}
	backends := map[string]func() accum.Accumulator{
		"softhash": func() accum.Accumulator { return hashtab.New(256) },
		"asa":      func() accum.Accumulator { return asa.MustNew(asa.DefaultConfig()) },
	}
	for _, name := range []string{"softhash", "asa"} {
		mk := backends[name]
		b.Run(name, func(b *testing.B) {
			acc := mk()
			for i := 0; i < b.N; i++ {
				if _, err := spgemm.Multiply(a, m2, acc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCAMSweep measures the ASA pipeline across CAM sizes (ablation
// X3) and reports the overflow share at each size.
func BenchmarkCAMSweep(b *testing.B) {
	g := benchReplica(b, "soc-Pokec")
	for _, bytes := range []int{256, 1024, 8192} {
		b.Run(fmtBytes(bytes), func(b *testing.B) {
			var share float64
			for i := 0; i < b.N; i++ {
				opt := infomap.DefaultOptions()
				opt.Kind = infomap.ASA
				opt.ASAConfig = asa.Config{CapacityBytes: bytes, EntryBytes: 16, Policy: asa.LRU}
				res, err := infomap.Run(g, opt)
				if err != nil {
					b.Fatal(err)
				}
				st := res.TotalStats()
				share = 100 * float64(st.OverflowKV) / float64(st.Accumulates+1)
			}
			b.ReportMetric(share, "overflow-%")
		})
	}
}

// BenchmarkEvictionPolicy measures the ASA pipeline per replacement policy
// at a deliberately small CAM (ablation X4).
func BenchmarkEvictionPolicy(b *testing.B) {
	g := benchReplica(b, "soc-Pokec")
	for _, pol := range []asa.Policy{asa.LRU, asa.FIFO, asa.Random} {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := infomap.DefaultOptions()
				opt.Kind = infomap.ASA
				opt.ASAConfig = asa.Config{CapacityBytes: 1024, EntryBytes: 16, Policy: pol}
				if _, err := infomap.Run(g, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHarness runs selected experiment runners end to end.
func BenchmarkHarness(b *testing.B) {
	for _, id := range []string{"fig5", "table5"} {
		b.Run(id, func(b *testing.B) {
			e, err := bench.ByID(id)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if err := e.Run(bench.QuickConfig(), io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func fmtBytes(n int) string {
	if n >= 1024 {
		return string(rune('0'+n/1024)) + "KB"
	}
	return "256B"
}

// BenchmarkHierarchical measures the hierarchical map equation driver
// (extension X5).
func BenchmarkHierarchical(b *testing.B) {
	g, _, err := gen.LFR(gen.DefaultLFR(1500, 0.25), rng.New(9))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := infomap.RunHierarchical(g, infomap.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if res.Codelength > res.TwoLevelCodelength+1e-9 {
			b.Fatal("hierarchy worsened codelength")
		}
	}
}

// BenchmarkDistributed measures the simulated distributed engine across
// rank counts (extension X7) and reports communicated bytes.
func BenchmarkDistributed(b *testing.B) {
	g := benchReplica(b, "Amazon")
	for _, ranks := range []int{1, 4} {
		b.Run(string(rune('0'+ranks))+"ranks", func(b *testing.B) {
			var bytesMoved uint64
			for i := 0; i < b.N; i++ {
				opt := dist.DefaultOptions()
				opt.Ranks = ranks
				res, err := dist.Run(g, opt)
				if err != nil {
					b.Fatal(err)
				}
				bytesMoved = res.Comm.Bytes
			}
			b.ReportMetric(float64(bytesMoved), "bytes-moved")
		})
	}
}

// BenchmarkCacheHierarchy measures the trace-driven cache simulator
// (extension X6 substrate).
func BenchmarkCacheHierarchy(b *testing.B) {
	h, err := cachesim.NewHierarchy(16)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < b.N; i++ {
		h.Access(r.Uint64() & 0x3fffff)
	}
}
