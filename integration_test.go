package asamap_test

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	asamap "github.com/asamap/asamap"
	"github.com/asamap/asamap/internal/dataset"
	"github.com/asamap/asamap/internal/gen"
	"github.com/asamap/asamap/internal/infomap"
	"github.com/asamap/asamap/internal/louvain"
	"github.com/asamap/asamap/internal/metrics"
	"github.com/asamap/asamap/internal/rng"
)

// TestIntegrationLFRQuality is the end-to-end quality claim: on a standard
// LFR benchmark at moderate mixing, Infomap must essentially recover the
// planted partition and beat the Louvain modularity baseline — the result
// the paper cites as Infomap's raison d'être.
func TestIntegrationLFRQuality(t *testing.T) {
	g, planted, err := gen.LFR(gen.DefaultLFR(2000, 0.3), rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	im, err := asamap.DetectCommunities(g, asamap.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lv, err := louvain.Run(g, louvain.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	nmiIM, err := metrics.NMI(im.Membership, planted)
	if err != nil {
		t.Fatal(err)
	}
	nmiLV, err := metrics.NMI(lv.Membership, planted)
	if err != nil {
		t.Fatal(err)
	}
	if nmiIM < 0.95 {
		t.Fatalf("Infomap NMI %.3f on easy LFR; expected near-perfect recovery", nmiIM)
	}
	if nmiIM <= nmiLV-0.02 {
		t.Fatalf("Infomap NMI %.3f did not beat Louvain %.3f on LFR", nmiIM, nmiLV)
	}
}

// TestIntegrationBackendsAgreeOnReplica runs the full pipeline on a Table I
// replica with all three backends; partitions must have near-identical
// codelength and near-identical structure (the backends are functionally
// equivalent accumulators).
func TestIntegrationBackendsAgreeOnReplica(t *testing.T) {
	spec, err := dataset.ByName("Amazon")
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Generate(spec.DefaultScale*32, 1)
	if err != nil {
		t.Fatal(err)
	}
	var results []*infomap.Result
	for _, kind := range []infomap.AccumKind{infomap.Baseline, infomap.ASA, infomap.GoMap} {
		opt := infomap.DefaultOptions()
		opt.Kind = kind
		opt.Workers = 2
		res, err := infomap.Run(g, opt)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		results = append(results, res)
	}
	// The backends iterate candidates in different orders (hash-table order
	// vs sorted-merge order), so equal-ΔL ties can break differently; demand
	// near-identical quality rather than bitwise-equal partitions.
	for i := 1; i < len(results); i++ {
		if math.Abs(results[i].Codelength-results[0].Codelength) > 0.01 {
			t.Fatalf("codelengths diverge: %g vs %g",
				results[i].Codelength, results[0].Codelength)
		}
		nmi, err := metrics.NMI(results[i].Membership, results[0].Membership)
		if err != nil {
			t.Fatal(err)
		}
		if nmi < 0.95 {
			t.Fatalf("backend partitions differ: NMI %.4f", nmi)
		}
	}
}

// TestIntegrationDirectedPipeline exercises the directed path end to end:
// RMAT graph → PageRank → directed flow → multi-level Infomap.
func TestIntegrationDirectedPipeline(t *testing.T) {
	g, err := gen.RMAT(10, 8, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	opt := asamap.DefaultOptions()
	opt.Kind = asamap.ASAAccumulator
	opt.Workers = 2
	res, err := asamap.DetectCommunities(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Codelength > res.OneLevelCodelength+1e-9 {
		t.Fatalf("directed run worsened codelength: %g vs %g",
			res.Codelength, res.OneLevelCodelength)
	}
	// Membership must be a dense labeling over all vertices.
	seen := map[uint32]bool{}
	for _, m := range res.Membership {
		if int(m) >= res.NumModules {
			t.Fatalf("module %d >= NumModules %d", m, res.NumModules)
		}
		seen[m] = true
	}
	if len(seen) != res.NumModules {
		t.Fatalf("NumModules %d but %d distinct labels", res.NumModules, len(seen))
	}
}

// TestIntegrationFileRoundTrip drives the full user workflow through the
// filesystem: generate → write → read → detect → write assignments.
func TestIntegrationFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.txt")

	g, planted, err := gen.LFR(gen.DefaultLFR(500, 0.2), rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteEdgeListFile(path); err != nil {
		t.Fatal(err)
	}
	g2, labels, err := asamap.ReadGraphFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("file round trip changed graph: %d/%d vs %d/%d", g2.N(), g2.M(), g.N(), g.M())
	}
	res, err := asamap.DetectCommunities(g2, asamap.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Labels are a permutation of the original IDs; map the result back.
	remapped := make([]uint32, g.N())
	for dense, orig := range labels {
		remapped[orig] = res.Membership[dense]
	}
	nmi, err := metrics.NMI(remapped, planted)
	if err != nil {
		t.Fatal(err)
	}
	if nmi < 0.9 {
		t.Fatalf("post-round-trip NMI %.3f", nmi)
	}

	// Assignments written like cmd/infomap does must be parseable.
	outPath := filepath.Join(dir, "communities.txt")
	f, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	for v, m := range res.Membership {
		if _, err := f.WriteString(string(rune('0'+int(m)%10)) + "\n"); err != nil {
			t.Fatal(err)
		}
		_ = v
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestIntegrationWeightedGraph verifies that edge weights steer the
// partition: strong intra-group weights must dominate uniform topology.
func TestIntegrationWeightedGraph(t *testing.T) {
	// K6 with heavy weights inside {0,1,2} and {3,4,5}, light across.
	b := asamap.NewGraphBuilder(6, false)
	for u := uint32(0); u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			w := 0.05
			if (u < 3) == (v < 3) {
				w = 10
			}
			if err := b.AddEdge(u, v, w); err != nil {
				t.Fatal(err)
			}
		}
	}
	res, err := asamap.DetectCommunities(b.Build(), asamap.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumModules != 2 {
		t.Fatalf("weighted K6: %d modules, want 2 (%v)", res.NumModules, res.Membership)
	}
	if res.Membership[0] != res.Membership[2] || res.Membership[0] == res.Membership[3] {
		t.Fatalf("weights ignored: %v", res.Membership)
	}
}

// TestIntegrationDisconnectedComponents: components must never share a
// module (no flow connects them).
func TestIntegrationDisconnectedComponents(t *testing.T) {
	b := asamap.NewGraphBuilder(9, false)
	for c := uint32(0); c < 3; c++ {
		base := c * 3
		_ = b.AddEdge(base, base+1, 1)
		_ = b.AddEdge(base+1, base+2, 1)
		_ = b.AddEdge(base, base+2, 1)
	}
	res, err := asamap.DetectCommunities(b.Build(), asamap.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumModules != 3 {
		t.Fatalf("3 disconnected triangles: %d modules (%v)", res.NumModules, res.Membership)
	}
	for c := 0; c < 3; c++ {
		if res.Membership[c*3] != res.Membership[c*3+1] || res.Membership[c*3] != res.Membership[c*3+2] {
			t.Fatalf("component %d split: %v", c, res.Membership)
		}
	}
}
