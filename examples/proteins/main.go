// Protein-clustering example: the paper's Figure 1 motivation — grouping
// proteins by functional similarity. Real protein-interaction data is not
// shipped, so an LFR benchmark graph stands in: its planted communities play
// the role of protein families, giving ground truth to score against. The
// example compares Infomap against the Louvain modularity baseline, the
// quality comparison the paper cites (Infomap wins on LFR), and demonstrates
// the resolution-limit case where modularity provably fails.
//
// Run with:
//
//	go run ./examples/proteins
package main

import (
	"fmt"
	"log"

	"github.com/asamap/asamap/internal/gen"
	"github.com/asamap/asamap/internal/infomap"
	"github.com/asamap/asamap/internal/louvain"
	"github.com/asamap/asamap/internal/metrics"
	"github.com/asamap/asamap/internal/rng"
)

func main() {
	// "Protein families": 3000 proteins in power-law-sized families, with a
	// third of each protein's interactions crossing family boundaries.
	r := rng.New(7)
	g, families, err := gen.LFR(gen.DefaultLFR(3000, 0.3), r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interaction network: %d proteins, %d interactions, %d planted families\n\n",
		g.N(), g.NumEdges(), countLabels(families))

	im, err := infomap.Run(g, infomap.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	lv, err := louvain.Run(g, louvain.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	nmiIM, _ := metrics.NMI(im.Membership, families)
	nmiLV, _ := metrics.NMI(lv.Membership, families)
	ariIM, _ := metrics.ARI(im.Membership, families)
	ariLV, _ := metrics.ARI(lv.Membership, families)
	_, _, f1IM, _ := metrics.PairwiseF1(im.Membership, families)
	_, _, f1LV, _ := metrics.PairwiseF1(lv.Membership, families)

	fmt.Printf("%-10s %10s %10s %10s %10s\n", "method", "families", "NMI", "ARI", "pair F1")
	fmt.Printf("%-10s %10d %10.4f %10.4f %10.4f\n", "Infomap", im.NumModules, nmiIM, ariIM, f1IM)
	fmt.Printf("%-10s %10d %10.4f %10.4f %10.4f\n", "Louvain", lv.NumModules, nmiLV, ariLV, f1LV)

	// The resolution-limit demonstration: a ring of 30 five-protein
	// complexes. (With three-protein complexes even the map equation prefers
	// pairing adjacent cliques — its much smaller field-of-view limit — so
	// size 5 is the clean separation case.)
	fmt.Println("\nresolution limit (ring of 30 five-protein complexes):")
	ring, _, err := gen.CliqueChain(30, 5)
	if err != nil {
		log.Fatal(err)
	}
	imR, err := infomap.Run(ring, infomap.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	lvR, err := louvain.Run(ring, louvain.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Infomap finds %d complexes (want 30)\n", imR.NumModules)
	fmt.Printf("  Louvain finds %d complexes (resolution limit merges them)\n", lvR.NumModules)

	// Multi-scale structure: the hierarchical map equation on the same ring
	// groups the complexes under super modules when that compresses further.
	hres, err := infomap.RunHierarchical(ring, infomap.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhierarchical view of the ring: %s\n", hres)
}

func countLabels(m []uint32) int {
	seen := map[uint32]bool{}
	for _, c := range m {
		seen[c] = true
	}
	return len(seen)
}
