// Social-network example: the paper's headline scenario. Generates a
// Pokec-like power-law social network (the replica of the network where the
// paper observes its best speedup, 5.56×), runs the full parallel Infomap
// pipeline with the software-hash Baseline and with the ASA accelerator
// model, and reports the comparison the paper's evaluation makes: hash
// operation time, instructions, branch mispredictions, and CPI.
//
// Run with:
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"

	"github.com/asamap/asamap/internal/dataset"
	"github.com/asamap/asamap/internal/infomap"
	"github.com/asamap/asamap/internal/perf"
)

func main() {
	spec, err := dataset.ByName("soc-Pokec")
	if err != nil {
		log.Fatal(err)
	}
	// Scale divisor 128 keeps the example under a minute; drop it to run at
	// larger scale (see DESIGN.md on the SNAP substitution).
	g, err := spec.Generate(128, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("soc-Pokec replica: %d vertices, %d edges (paper network: %d vertices, %d edges)\n\n",
		g.N(), g.NumEdges(), spec.PaperVertices, spec.PaperEdges)

	machine := perf.Baseline()
	model := perf.DefaultModel(machine)
	type outcome struct {
		res  *infomap.Result
		hash perf.Counters
		all  perf.Counters
	}
	run := func(kind infomap.AccumKind, name string) outcome {
		opt := infomap.DefaultOptions()
		opt.Kind = kind
		opt.Workers = 2
		res, err := infomap.Run(g, opt)
		if err != nil {
			log.Fatal(err)
		}
		hash, err := model.AccumCost(name, res.TotalStats())
		if err != nil {
			log.Fatal(err)
		}
		all := hash
		all.Add(model.KernelCost(res.TotalWork()))
		return outcome{res: res, hash: hash, all: all}
	}

	base := run(infomap.Baseline, "softhash")
	acc := run(infomap.ASA, "asa")

	fmt.Printf("Baseline: %s\n", base.res)
	fmt.Printf("ASA:      %s\n\n", acc.res)

	fmt.Printf("%-28s %14s %14s\n", "modeled metric", "Baseline", "ASA")
	fmt.Printf("%-28s %14.4f %14.4f  (%.2fx speedup)\n", "hash-operation seconds",
		base.hash.Seconds(machine), acc.hash.Seconds(machine),
		base.hash.Seconds(machine)/acc.hash.Seconds(machine))
	fmt.Printf("%-28s %14.0f %14.0f  (%.0f%% fewer)\n", "instructions",
		base.all.Instructions, acc.all.Instructions,
		100*(1-acc.all.Instructions/base.all.Instructions))
	fmt.Printf("%-28s %14.0f %14.0f  (%.0f%% fewer)\n", "branch mispredictions",
		base.all.Mispredicts, acc.all.Mispredicts,
		100*(1-acc.all.Mispredicts/base.all.Mispredicts))
	fmt.Printf("%-28s %14.2f %14.2f  (%.0f%% lower)\n", "CPI",
		base.all.CPI(), acc.all.CPI(),
		100*(1-acc.all.CPI()/base.all.CPI()))

	st := acc.res.TotalStats()
	fmt.Printf("\nASA CAM behaviour: %d accumulates, %d evictions, %.2f%% of pairs overflowed\n",
		st.Accumulates, st.Evictions, 100*float64(st.OverflowKV)/float64(st.Accumulates))
}
