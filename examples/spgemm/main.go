// SpGEMM example: ASA back in its original domain. The paper generalizes the
// ASA interface beyond the SpGEMM computation it was designed for; this
// example closes the loop by running column-wise sparse matrix–matrix
// multiplication through the same accum.Accumulator interface the Infomap
// kernel uses, with both backends, and checking the products agree.
//
// Run with:
//
//	go run ./examples/spgemm
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/asamap/asamap/internal/asa"
	"github.com/asamap/asamap/internal/hashtab"
	"github.com/asamap/asamap/internal/perf"
	"github.com/asamap/asamap/internal/rng"
	"github.com/asamap/asamap/internal/spgemm"
)

func main() {
	r := rng.New(42)
	// Power-law column sparsity: most columns are tiny, a few are dense —
	// the regime where CAM capacity and overflow handling matter.
	a, err := spgemm.RandomPowerLaw(1500, 2, 500, 2.0, r)
	if err != nil {
		log.Fatal(err)
	}
	b, err := spgemm.RandomPowerLaw(1500, 2, 500, 2.0, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("A: %dx%d with %d nnz, B: %dx%d with %d nnz\n\n",
		a.Rows(), a.Cols(), a.NNZ(), b.Rows(), b.Cols(), b.NNZ())

	machine := perf.Baseline()
	model := perf.DefaultModel(machine)

	soft := hashtab.New(512)
	t0 := time.Now()
	cSoft, err := spgemm.Multiply(a, b, soft)
	if err != nil {
		log.Fatal(err)
	}
	softWall := time.Since(t0)

	cam := asa.MustNew(asa.DefaultConfig())
	t0 = time.Now()
	cASA, err := spgemm.Multiply(a, b, cam)
	if err != nil {
		log.Fatal(err)
	}
	asaWall := time.Since(t0)

	if cSoft.NNZ() != cASA.NNZ() {
		log.Fatalf("products disagree: %d vs %d nnz", cSoft.NNZ(), cASA.NNZ())
	}
	fmt.Printf("C = A·B: %d nnz — identical for both backends\n\n", cSoft.NNZ())

	softCost := model.HashCost(soft.Stats())
	asaCost := model.ASACost(cam.Stats())
	fmt.Printf("%-10s %14s %14s %12s\n", "backend", "modeled (s)", "instructions", "wall")
	fmt.Printf("%-10s %14.4f %14.0f %12v\n", "softhash", softCost.Seconds(machine), softCost.Instructions, softWall.Round(time.Millisecond))
	fmt.Printf("%-10s %14.4f %14.0f %12v\n", "asa", asaCost.Seconds(machine), asaCost.Instructions, asaWall.Round(time.Millisecond))
	fmt.Printf("\nmodeled accumulation speedup: %.2fx\n", softCost.Seconds(machine)/asaCost.Seconds(machine))
	st := cam.Stats()
	fmt.Printf("CAM: %d accumulates, %d evictions (%.2f%% overflow)\n",
		st.Accumulates, st.Evictions, 100*float64(st.OverflowKV)/float64(st.Accumulates))
}
