// Quickstart: detect communities in a small social graph with both the
// software-hash Baseline and the ASA accelerator backend, and verify they
// find the same structure.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/infomap"
)

func main() {
	// Zachary-style toy network: two dense groups joined by one edge.
	b := graph.NewBuilder(10, false)
	edges := [][2]uint32{
		// group A: a 5-clique minus a few edges
		{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {3, 4}, {2, 4},
		// bridge
		{4, 5},
		// group B
		{5, 6}, {5, 7}, {6, 7}, {6, 8}, {7, 8}, {8, 9}, {7, 9},
	}
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1], 1); err != nil {
			log.Fatal(err)
		}
	}
	g := b.Build()

	for _, kind := range []infomap.AccumKind{infomap.Baseline, infomap.ASA} {
		opt := infomap.DefaultOptions()
		opt.Kind = kind
		res, err := infomap.Run(g, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("backend %-8s -> %s\n", kind, res)
		for m, members := range infomap.Modules(res.Membership) {
			fmt.Printf("  module %d: %v\n", m, members)
		}
	}
}
