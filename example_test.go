package asamap_test

import (
	"fmt"
	"log"

	asamap "github.com/asamap/asamap"
)

// ExampleDetectCommunities demonstrates the minimal workflow: build a graph,
// run Infomap, inspect the modules.
func ExampleDetectCommunities() {
	b := asamap.NewGraphBuilder(6, false)
	edges := [][2]uint32{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}}
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1], 1); err != nil {
			log.Fatal(err)
		}
	}
	res, err := asamap.DetectCommunities(b.Build(), asamap.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("modules:", res.NumModules)
	for _, members := range asamap.CommunityModules(res.Membership) {
		fmt.Println(members)
	}
	// Output:
	// modules: 2
	// [0 1 2]
	// [3 4 5]
}

// ExampleDetectCommunities_asa runs the same detection through the ASA
// accelerator model and reports the accumulator event counts the paper's
// hardware evaluation is built on.
func ExampleDetectCommunities_asa() {
	b := asamap.NewGraphBuilder(6, false)
	for _, e := range [][2]uint32{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}} {
		if err := b.AddEdge(e[0], e[1], 1); err != nil {
			log.Fatal(err)
		}
	}
	opt := asamap.DefaultOptions()
	opt.Kind = asamap.ASAAccumulator
	opt.ASAConfig = asamap.DefaultASAConfig() // 8KB CAM, LRU
	res, err := asamap.DetectCommunities(b.Build(), opt)
	if err != nil {
		log.Fatal(err)
	}
	st := res.TotalStats()
	fmt.Println("modules:", res.NumModules)
	fmt.Println("CAM evictions:", st.Evictions)
	// Output:
	// modules: 2
	// CAM evictions: 0
}

// ExampleDetectCommunitiesHierarchical finds multi-scale structure: three
// pairs of triangles, nested two levels deep.
func ExampleDetectCommunitiesHierarchical() {
	b := asamap.NewGraphBuilder(12, false)
	// Three "super" groups of two triangles each.
	for grp := uint32(0); grp < 2; grp++ {
		base := grp * 6
		for c := uint32(0); c < 2; c++ {
			o := base + c*3
			_ = b.AddEdge(o, o+1, 3)
			_ = b.AddEdge(o+1, o+2, 3)
			_ = b.AddEdge(o, o+2, 3)
		}
		_ = b.AddEdge(base, base+3, 1.5)
		_ = b.AddEdge(base+1, base+4, 1.5)
	}
	_ = b.AddEdge(0, 6, 0.1)
	res, err := asamap.DetectCommunitiesHierarchical(b.Build(), asamap.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("vertices covered:", res.Root.Size())
	fmt.Println("hierarchy no worse than flat:", res.Codelength <= res.TwoLevelCodelength+1e-12)
	// Output:
	// vertices covered: 12
	// hierarchy no worse than flat: true
}
