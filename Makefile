GO ?= go

.PHONY: build test lint lint-json race fuzz-smoke bench-smoke bench-accum bench-sched chaos-smoke delta-replay all

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs the repository's own analyzer suite (determinism, entropy,
# cancellation, goroutine-join, and fingerprint contracts) plus go vet.
lint:
	$(GO) run ./cmd/asalint ./...
	$(GO) vet ./...

# lint-json writes the canonical machine-readable findings document
# (asalint.json: sorted, module-relative paths, no timestamps — identical
# bytes across runs over identical sources). The file is written even when
# findings fail the target, so CI can always upload it as an artifact.
lint-json:
	$(GO) run ./cmd/asalint -format json ./... > asalint.json

race:
	$(GO) test -race ./...
	$(GO) test -race -count=2 ./internal/serve

fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzReadEdgeList -fuzztime=15s ./internal/graph

bench-smoke:
	$(GO) test -run=NONE -bench='Sched|AsalintRepo' -benchtime=1x ./...

# bench-accum regenerates the accumulator backend sweep at quick scale and
# verifies the committed BENCH_accum.json still matches the schema and the
# probe-free acceptance invariants.
bench-accum:
	$(GO) run ./cmd/asabench -exp accum -quick -json BENCH_accum_ci.json
	$(GO) test -run 'TestAccumQuick|TestCommittedAccumArtifact' ./internal/bench

# bench-sched regenerates the scheduler sweep at quick scale (into a CI
# scratch file, never the committed artifact) and verifies the committed
# BENCH_sched.json still matches the schema and determinism invariants.
bench-sched:
	$(GO) run ./cmd/asabench -exp sched -quick -json BENCH_sched_ci.json
	$(GO) test -run 'TestSchedQuick|TestCommittedSchedArtifact' ./internal/bench

# delta-replay is the incremental-detection proof tier: the committed
# FuzzDeltaReplay seed corpus plus a short fuzz session against the
# scratch-rebuild oracle, the differential warm-vs-cold tests (shared-memory,
# distributed, serve lineage, cluster chaos) under the race detector, the
# warm-start golden e2e, and the X10 warm-vs-cold experiment at quick scale.
delta-replay:
	$(GO) test -run=NONE -fuzz=FuzzDeltaReplay -fuzztime=15s ./internal/graph
	$(GO) test -race -run 'TestDelta|TestKHopFrontier|FuzzDeltaReplay' ./internal/graph
	$(GO) test -race -run 'TestWarmStart' ./internal/infomap ./internal/dist
	$(GO) test -race -run 'TestDeltaUpload|TestColdDetectOnVersion|TestWarm' ./internal/serve
	$(GO) test -race -run 'TestClusterDelta' ./internal/serve/cluster
	$(GO) test -run 'TestE2EWarmStart' .
	$(GO) run ./cmd/asabench -exp delta -quick

# chaos-smoke exercises the replicated service under the seeded fault
# injector (race detector on), then drives an in-process 3-replica cluster
# with the open-loop load generator, capturing one forwarded request's merged
# cluster trace as a Perfetto-loadable artifact.
chaos-smoke:
	$(GO) test -race -run 'TestCluster|TestPeerClient|TestBreaker' -count=2 ./internal/serve/cluster
	$(GO) run ./cmd/asaload -self-serve -self-replicas 3 -fault-drop 0.05 -fault-fail 0.05 -rate 100 -duration 5s -out BENCH_serve_ci.json -trace-out cluster_trace_ci.json
