GO ?= go

.PHONY: build test lint race fuzz-smoke bench-smoke all

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs the repository's own analyzer suite (determinism, entropy,
# cancellation, goroutine-join, and fingerprint contracts) plus go vet.
lint:
	$(GO) run ./cmd/asalint ./...
	$(GO) vet ./...

race:
	$(GO) test -race ./...
	$(GO) test -race -count=2 ./internal/serve

fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzReadEdgeList -fuzztime=15s ./internal/graph

bench-smoke:
	$(GO) test -run=NONE -bench=Sched -benchtime=1x ./...
