GO ?= go

.PHONY: build test lint race fuzz-smoke bench-smoke bench-accum chaos-smoke all

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs the repository's own analyzer suite (determinism, entropy,
# cancellation, goroutine-join, and fingerprint contracts) plus go vet.
lint:
	$(GO) run ./cmd/asalint ./...
	$(GO) vet ./...

race:
	$(GO) test -race ./...
	$(GO) test -race -count=2 ./internal/serve

fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzReadEdgeList -fuzztime=15s ./internal/graph

bench-smoke:
	$(GO) test -run=NONE -bench=Sched -benchtime=1x ./...

# bench-accum regenerates the accumulator backend sweep at quick scale and
# verifies the committed BENCH_accum.json still matches the schema and the
# probe-free acceptance invariants.
bench-accum:
	$(GO) run ./cmd/asabench -exp accum -quick -json BENCH_accum_ci.json
	$(GO) test -run 'TestAccumQuick|TestCommittedAccumArtifact' ./internal/bench

# chaos-smoke exercises the replicated service under the seeded fault
# injector (race detector on), then drives an in-process 3-replica cluster
# with the open-loop load generator.
chaos-smoke:
	$(GO) test -race -run 'TestCluster|TestPeerClient|TestBreaker' -count=2 ./internal/serve/cluster
	$(GO) run ./cmd/asaload -self-serve -self-replicas 3 -fault-drop 0.05 -fault-fail 0.05 -rate 100 -duration 5s -out BENCH_serve_ci.json
