package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"github.com/asamap/asamap/internal/analysis/callgraph"
)

// Lockorder guards the service tier's mutex discipline across function and
// package boundaries. Walking every in-scope function with a branch-aware
// held-lock set (lock identities come from the call-graph summaries:
// "serve.Queue.mu" is the same lock in every function that touches it), it
// reports:
//
//   - acquisition-order cycles: if any code path acquires B while holding A
//     and any other path acquires A while holding B, two goroutines can
//     deadlock. Acquisitions through callees count — holding A while calling
//     a function that transitively locks B is an A→B edge.
//   - a lock re-acquired while already held (sync.Mutex self-deadlocks)
//   - locks held across blocking operations: channel sends/receives,
//     blocking selects, WaitGroup waits, time.Sleep, HTTP round trips, and
//     calls into in-scope functions that transitively block.
//
// The walk clones the held set per branch and discards the effects of
// terminating branches, so the idiomatic early-unlock-and-return shape
// (`if q.closed { q.mu.Unlock(); return }`) does not poison the fallthrough
// path. A deferred Unlock is sticky: the lock stays held to the end of the
// function, which is exactly the window other goroutines observe.
var Lockorder = &Analyzer{
	Name:      "lockorder",
	Doc:       "detect mutex acquisition-order cycles and locks held across blocking operations in the service tier",
	AppliesTo: lockorderScope,
	Run:       runLockorder,
}

var lockorderScope = PathIn("internal/serve", "internal/serve/cluster", "internal/dist")

// lockEdge is one observed acquisition order: "to" was acquired at site while
// "from" was held, inside node.
type lockEdge struct {
	from, to string
	site     token.Pos
	node     *callgraph.Node
}

// loFinding is a non-cycle diagnostic produced during the walk.
type loFinding struct {
	pos  token.Pos
	node *callgraph.Node
	msg  string
}

func runLockorder(pass *Pass) error {
	g := pass.Graph
	if g == nil {
		return nil
	}
	var edges []lockEdge
	var findings []loFinding
	for _, n := range g.Nodes() {
		if !lockorderScope(n.PkgPath) || n.Body() == nil {
			continue
		}
		w := newLockWalker(g, n, &edges, &findings)
		w.walkStmts(n.Body().List, map[string]heldLock{})
	}
	// Non-cycle findings of this package.
	seen := map[string]bool{}
	for _, f := range findings {
		if f.node.PkgPath != pass.PkgPath {
			continue
		}
		key := fmt.Sprintf("%d\x00%s", f.pos, f.msg)
		if seen[key] {
			continue
		}
		seen[key] = true
		pass.Reportf(f.pos, "%s", f.msg)
	}
	// Order cycles over the global edge set.
	reportCycles(pass, edges)
	return nil
}

// reportCycles finds strongly connected components of the lock-order digraph
// and reports, at each contributing site in the current package, every edge
// inside a multi-node SCC.
func reportCycles(pass *Pass, edges []lockEdge) {
	adj := map[string]map[string]bool{}
	for _, e := range edges {
		if e.from == e.to {
			continue // re-acquisition is reported separately
		}
		if adj[e.from] == nil {
			adj[e.from] = map[string]bool{}
		}
		adj[e.from][e.to] = true
	}
	comp := sccOf(adj)
	compSize := map[int]int{}
	for _, c := range comp {
		compSize[c]++
	}
	seen := map[string]bool{}
	for _, e := range edges {
		if e.from == e.to || e.node.PkgPath != pass.PkgPath {
			continue
		}
		cf, okf := comp[e.from]
		ct, okt := comp[e.to]
		if !okf || !okt || cf != ct || compSize[cf] < 2 {
			continue
		}
		var members []string
		for lock, c := range comp {
			if c == cf {
				members = append(members, lock)
			}
		}
		sort.Strings(members)
		key := fmt.Sprintf("%d\x00%s\x00%s", e.site, e.from, e.to)
		if seen[key] {
			continue
		}
		seen[key] = true
		pass.Reportf(e.site, "lock order cycle: %s acquired while %s is held, but another path acquires them in the reverse order (cycle through %s)",
			e.to, e.from, strings.Join(members, ", "))
	}
}

// sccOf assigns a component ID to every vertex of adj (iterative Tarjan).
func sccOf(adj map[string]map[string]bool) map[string]int {
	verts := map[string]bool{}
	for v, outs := range adj {
		verts[v] = true
		for w := range outs {
			verts[w] = true
		}
	}
	order := make([]string, 0, len(verts))
	for v := range verts {
		order = append(order, v)
	}
	sort.Strings(order)
	sortedAdj := map[string][]string{}
	for v, outs := range adj {
		for w := range outs {
			sortedAdj[v] = append(sortedAdj[v], w)
		}
		sort.Strings(sortedAdj[v])
	}

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	comp := map[string]int{}
	var stack []string
	next, nComp := 0, 0

	type frame struct {
		v string
		i int
	}
	for _, root := range order {
		if _, ok := index[root]; ok {
			continue
		}
		frames := []frame{{root, 0}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			outs := sortedAdj[f.v]
			if f.i < len(outs) {
				w := outs[f.i]
				f.i++
				if _, ok := index[w]; !ok {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			if low[f.v] == index[f.v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == f.v {
						break
					}
				}
				nComp++
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[f.v] < low[p.v] {
					low[p.v] = low[f.v]
				}
			}
		}
	}
	return comp
}

// heldLock records how a currently held lock was acquired.
type heldLock struct {
	site token.Pos
	op   string // Lock or RLock
}

// lockWalker tracks the held-lock set through one function body.
type lockWalker struct {
	g        *callgraph.Graph
	n        *callgraph.Node
	lockAt   map[token.Pos]callgraph.LockOp
	blockAt  map[token.Pos]callgraph.BlockOp
	edgesAt  map[token.Pos][]callgraph.Edge
	edges    *[]lockEdge
	findings *[]loFinding
}

func newLockWalker(g *callgraph.Graph, n *callgraph.Node, edges *[]lockEdge, findings *[]loFinding) *lockWalker {
	w := &lockWalker{
		g: g, n: n,
		lockAt:   map[token.Pos]callgraph.LockOp{},
		blockAt:  map[token.Pos]callgraph.BlockOp{},
		edgesAt:  map[token.Pos][]callgraph.Edge{},
		edges:    edges,
		findings: findings,
	}
	sum := g.Summary(n)
	for _, op := range sum.LockOps {
		w.lockAt[op.Pos] = op
	}
	for _, b := range sum.Blocks {
		w.blockAt[b.Pos] = b
	}
	for _, e := range n.Out {
		w.edgesAt[e.Site] = append(w.edgesAt[e.Site], e)
	}
	return w
}

func (w *lockWalker) report(pos token.Pos, format string, args ...any) {
	*w.findings = append(*w.findings, loFinding{pos: pos, node: w.n, msg: fmt.Sprintf(format, args...)})
}

func cloneHeld(held map[string]heldLock) map[string]heldLock {
	out := make(map[string]heldLock, len(held))
	for k, v := range held { //asalint:ordered held-set copy; downstream iteration sorts keys
		out[k] = v
	}
	return out
}

func heldKeys(held map[string]heldLock) []string {
	keys := make([]string, 0, len(held))
	for k := range held { //asalint:ordered keys are sorted before they escape
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// mergeInto unions src into dst (a lock possibly held on some incoming path
// is conservatively held).
func mergeInto(dst, src map[string]heldLock) {
	for k, v := range src { //asalint:ordered set union is order-independent
		if _, ok := dst[k]; !ok {
			dst[k] = v
		}
	}
}

// walkStmts walks a statement list, mutating held, and reports whether the
// list terminates (return / panic / branch), in which case the caller must
// discard held's modifications for the fallthrough path.
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held map[string]heldLock) bool {
	for _, st := range stmts {
		if w.walkStmt(st, held) {
			return true
		}
	}
	return false
}

func (w *lockWalker) walkStmt(st ast.Stmt, held map[string]heldLock) bool {
	switch x := st.(type) {
	case *ast.BlockStmt:
		return w.walkStmts(x.List, held)
	case *ast.ReturnStmt:
		w.walkExprNodes(x, held)
		return true
	case *ast.BranchStmt:
		return true
	case *ast.IfStmt:
		if x.Init != nil {
			w.walkStmt(x.Init, held)
		}
		w.walkExprNodes(x.Cond, held)
		bodyHeld := cloneHeld(held)
		bTerm := w.walkStmt(x.Body, bodyHeld)
		elseHeld := cloneHeld(held)
		eTerm := false
		if x.Else != nil {
			eTerm = w.walkStmt(x.Else, elseHeld)
		}
		switch {
		case bTerm && eTerm:
			return x.Else != nil
		case bTerm:
			replaceHeld(held, elseHeld)
		case eTerm:
			replaceHeld(held, bodyHeld)
		default:
			replaceHeld(held, bodyHeld)
			mergeInto(held, elseHeld)
		}
		return false
	case *ast.ForStmt:
		if x.Init != nil {
			w.walkStmt(x.Init, held)
		}
		if x.Cond != nil {
			w.walkExprNodes(x.Cond, held)
		}
		body := cloneHeld(held)
		w.walkStmt(x.Body, body)
		if x.Post != nil {
			w.walkStmt(x.Post, body)
		}
		mergeInto(held, body)
		return false
	case *ast.RangeStmt:
		w.walkExprNodes(x.X, held)
		body := cloneHeld(held)
		w.walkStmt(x.Body, body)
		mergeInto(held, body)
		return false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var body *ast.BlockStmt
		if s, ok := x.(*ast.SwitchStmt); ok {
			if s.Init != nil {
				w.walkStmt(s.Init, held)
			}
			if s.Tag != nil {
				w.walkExprNodes(s.Tag, held)
			}
			body = s.Body
		} else {
			s := x.(*ast.TypeSwitchStmt)
			if s.Init != nil {
				w.walkStmt(s.Init, held)
			}
			body = s.Body
		}
		merged := cloneHeld(held)
		for _, cl := range body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				clause := cloneHeld(held)
				if !w.walkStmts(cc.Body, clause) {
					mergeInto(merged, clause)
				}
			}
		}
		replaceHeld(held, merged)
		return false
	case *ast.SelectStmt:
		if b, ok := w.blockAt[x.Pos()]; ok && len(held) > 0 {
			w.report(x.Pos(), "%s held across %s; a stalled communication keeps the lock and blocks every other goroutine contending for it",
				strings.Join(heldKeys(held), ", "), b.Desc)
		}
		merged := cloneHeld(held)
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				clause := cloneHeld(held)
				if cc.Comm != nil {
					w.walkStmt(cc.Comm, clause)
				}
				if !w.walkStmts(cc.Body, clause) {
					mergeInto(merged, clause)
				}
			}
		}
		replaceHeld(held, merged)
		return false
	case *ast.SendStmt:
		if b, ok := w.blockAt[x.Pos()]; ok && len(held) > 0 {
			w.report(x.Pos(), "%s held across %s; if the channel is full the lock is never released",
				strings.Join(heldKeys(held), ", "), b.Desc)
		}
		w.walkExprNodes(x.Chan, held)
		w.walkExprNodes(x.Value, held)
		return false
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the spawner's held locks;
		// its body is its own node and is walked independently.
		return false
	case *ast.DeferStmt:
		w.visitCall(x.Call, held, true)
		return false
	case *ast.ExprStmt:
		if isPanicCall(x.X) {
			return true
		}
		w.walkExprNodes(x.X, held)
		return false
	case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt:
		w.walkExprNodes(x, held)
		return false
	case *ast.LabeledStmt:
		return w.walkStmt(x.Stmt, held)
	}
	return false
}

func replaceHeld(dst, src map[string]heldLock) {
	for k := range dst { //asalint:ordered map clear is order-independent
		delete(dst, k)
	}
	mergeInto(dst, src)
}

func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// walkExprNodes inspects an expression-bearing node, applying lock
// operations, call edges, and blocking checks in source order. Function
// literal bodies are skipped: they are their own graph nodes and run with
// their own (unknown) lock state.
func (w *lockWalker) walkExprNodes(root ast.Node, held map[string]heldLock) {
	if root == nil {
		return
	}
	ast.Inspect(root, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			w.visitCall(e, held, false)
		case *ast.UnaryExpr:
			if b, ok := w.blockAt[e.Pos()]; ok && len(held) > 0 {
				w.report(e.Pos(), "%s held across %s; a stalled communication keeps the lock",
					strings.Join(heldKeys(held), ", "), b.Desc)
			}
		}
		return true
	})
}

// visitCall applies one call expression to the held set.
func (w *lockWalker) visitCall(call *ast.CallExpr, held map[string]heldLock, deferred bool) {
	if op, ok := w.lockAt[call.Pos()]; ok {
		switch op.Op {
		case "Lock", "RLock":
			if prior, exists := held[op.Lock]; exists && (op.Op == "Lock" || prior.op == "Lock") {
				w.report(call.Pos(), "%s %sed while already held; sync mutexes are not reentrant, this path self-deadlocks", op.Lock, op.Op)
			}
			for _, from := range heldKeys(held) {
				if from == op.Lock {
					continue
				}
				*w.edges = append(*w.edges, lockEdge{from: from, to: op.Lock, site: call.Pos(), node: w.n})
			}
			if !deferred {
				held[op.Lock] = heldLock{site: call.Pos(), op: op.Op}
			}
		case "Unlock", "RUnlock":
			if !deferred && !op.Deferred {
				delete(held, op.Lock)
			}
			// A deferred unlock is sticky: the lock stays held for the rest
			// of the function.
		}
		return
	}
	if b, ok := w.blockAt[call.Pos()]; ok && len(held) > 0 {
		w.report(call.Pos(), "%s held across %s", strings.Join(heldKeys(held), ", "), b.Desc)
	}
	edges := w.edgesAt[call.Lparen]
	if len(edges) == 0 || len(held) == 0 {
		return
	}
	for _, e := range edges {
		if e.Callee == nil || e.Kind == callgraph.Ref || e.Kind == callgraph.Closure {
			continue
		}
		for _, op := range w.g.TransitiveLocks(e.Callee) {
			if op.Op != "Lock" && op.Op != "RLock" {
				continue
			}
			if _, exists := held[op.Lock]; exists {
				if e.Kind == callgraph.Static && (op.Op == "Lock" || held[op.Lock].op == "Lock") {
					w.report(call.Pos(), "calling %s while holding %s; the callee acquires %s again and self-deadlocks",
						e.Callee.ID, op.Lock, op.Lock)
				}
				continue
			}
			for _, from := range heldKeys(held) {
				*w.edges = append(*w.edges, lockEdge{from: from, to: op.Lock, site: call.Pos(), node: w.n})
			}
		}
		if e.Kind == callgraph.Static && lockorderScope(e.Callee.PkgPath) {
			if blocks := w.g.TransitiveBlocks(e.Callee); len(blocks) > 0 {
				w.report(call.Pos(), "%s held across call to %s, which can block (%s)",
					strings.Join(heldKeys(held), ", "), e.Callee.ID, blocks[0].Desc)
			}
		}
	}
}
