package analysis

import (
	"strings"
)

// Suppress closes the loop on the suppression mechanism itself: a
// //asalint:<tag> comment with no justification text is an assertion without
// evidence. The framework already reports suppressions that silence nothing;
// this analyzer reports the other failure mode — a suppression that works
// but never says why the silenced site is safe, which is what makes the
// remaining suppressions in this repository reviewable.
//
// Directive comments (//asalint:hotroot) are instructions, not suppressions,
// and need no justification.
var Suppress = &Analyzer{
	Name: "suppress",
	Doc:  "require a written justification on every //asalint suppression comment",
	Run:  runSuppress,
}

func runSuppress(pass *Pass) error {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//asalint:")
				if !ok {
					continue
				}
				tagPart, rest := text, ""
				if i := strings.IndexAny(text, " \t"); i >= 0 {
					tagPart, rest = text[:i], text[i:]
				}
				if tagPart == "" || allDirectives(tagPart) {
					continue
				}
				if strings.TrimSpace(rest) == "" {
					pass.Reportf(c.Pos(), "//asalint:%s has no justification; state why the silenced site is safe", tagPart)
				}
			}
		}
	}
	return nil
}

// allDirectives reports whether every comma-separated tag is a directive.
func allDirectives(tagPart string) bool {
	for _, tag := range strings.Split(tagPart, ",") {
		if !directiveTags[strings.TrimSpace(tag)] {
			return false
		}
	}
	return true
}
