package analysis

import (
	"go/token"
	"strings"

	"github.com/asamap/asamap/internal/analysis/callgraph"
)

// Hotalloc turns the single hashgraph AllocsPerRun pin into a repo-wide
// contract: no heap allocation on a declared hot path. Functions carrying a
// //asalint:hotroot directive (on the line above a func declaration, or
// above the statement defining a function literal) are roots; every function
// reachable from a root through the call graph — static calls, conservative
// interface fan-out, closures, and function values — is on the hot path, and
// any steady-state allocation site inside it is reported:
//
//   - make / new
//   - map and slice composite literals, &T{...}
//   - append whose result does not feed back into its first argument
//     (x = append(x, ...) is amortized growth into a retained buffer and is
//     exempt)
//   - function literals capturing enclosing variables (escaping closures)
//   - fmt formatting calls and concrete values boxed into any parameters
//   - string <-> []byte/[]rune conversions
//
// Cold paths are exempt: branches whose condition consults cap() (amortized
// buffer growth), compares an error to nil, or calls recover() are the
// grow/failure paths every alloc-free loop must keep — the contract is about
// the steady state, exactly as the hashgraph AllocsPerRun test measures it.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag heap-allocation sites reachable from //asalint:hotroot hot-path roots",
	// The hot scope: kernel and accumulator packages where hot roots and
	// their callees live. Traversal never leaves this set, so service-tier
	// helpers called from kernels (loggers, tracers) are out of contract.
	AppliesTo: hotallocScope,
	Run:       runHotalloc,
}

var hotallocScope = PathIn(
	"internal/infomap", "internal/mapeq", "internal/accum", "internal/asa",
	"internal/hashtab", "internal/hashgraph", "internal/sched",
	"internal/spgemm", "internal/graph",
)

func runHotalloc(pass *Pass) error {
	g := pass.Graph
	if g == nil {
		return nil
	}
	roots := hotRoots(g)
	if len(roots) == 0 {
		return nil
	}
	within := func(n *callgraph.Node) bool { return hotallocScope(n.PkgPath) }
	via := g.Reachable(roots, within)
	// A site can surface through several summary facts (e.g. a funclit both
	// boxed into an any parameter and captured); report each position once.
	type siteKey struct {
		pos token.Pos
		msg string
	}
	seen := make(map[siteKey]bool)
	for _, n := range g.Nodes() {
		root, ok := via[n]
		if !ok || n.PkgPath != pass.PkgPath {
			continue
		}
		for _, a := range g.Summary(n).Allocs {
			if a.Cold {
				continue
			}
			var msg string
			if root == n {
				msg = a.Kind.String() + " on hot path: " + a.Desc + " (inside hot root " + n.ID + ")"
			} else {
				msg = a.Kind.String() + " on hot path: " + a.Desc + " (reachable from hot root " + root.ID + ")"
			}
			if k := (siteKey{a.Pos, msg}); !seen[k] {
				seen[k] = true
				pass.Reportf(a.Pos, "%s", msg)
			}
		}
	}
	return nil
}

// hotRoots collects the nodes marked by //asalint:hotroot directives across
// every unit of the graph (roots in other packages still pull this package's
// functions onto the hot path).
func hotRoots(g *callgraph.Graph) []*callgraph.Node {
	directives := make(map[string]map[int]bool) // filename -> line
	for _, u := range g.Units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, "//asalint:hotroot") {
						continue
					}
					p := g.Fset.Position(c.Pos())
					lines := directives[p.Filename]
					if lines == nil {
						lines = make(map[int]bool)
						directives[p.Filename] = lines
					}
					lines[p.Line] = true
				}
			}
		}
	}
	if len(directives) == 0 {
		return nil
	}
	var roots []*callgraph.Node
	for _, n := range g.Nodes() {
		if n.Pos() == token.NoPos {
			continue
		}
		p := g.Fset.Position(n.Pos())
		lines := directives[p.Filename]
		if lines == nil {
			continue
		}
		// The directive sits directly above the declaration (the last line of
		// a doc comment) or, for literals, above the statement that defines
		// them; a trailing directive on the declaration line also counts.
		if lines[p.Line-1] || lines[p.Line] {
			roots = append(roots, n)
		}
	}
	return roots
}
