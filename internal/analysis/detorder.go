package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// exprString renders an expression for diagnostics.
func exprString(e ast.Expr) string { return types.ExprString(e) }

// Detorder flags `range` loops over maps whose bodies feed order-sensitive
// sinks in determinism-critical packages. Go randomizes map iteration order
// per run, so a map range that appends to a slice, sends on a channel,
// writes to an output stream, or accumulates floating-point (or string)
// state produces run-dependent results — exactly the class of bug that
// breaks the repository's bit-identical-results contract (sweep results
// across worker counts, asamapd byte-replay cache). Integer accumulation is
// exempt: it is exact and commutative, so order cannot change the value.
//
// Fix by iterating sorted keys (graph.SortedKeys / graph.SortedKeysFunc),
// or justify the site with //asalint:ordered when order provably does not
// reach any output (e.g. the slice is sorted before use).
var Detorder = &Analyzer{
	Name: "detorder",
	Tag:  "ordered",
	Doc: "flag map iteration feeding order-sensitive output or float accumulation " +
		"in determinism-critical packages",
	AppliesTo: PathIn(
		"internal/infomap", "internal/sched", "internal/pagerank",
		"internal/mapeq", "internal/graph", "internal/serve",
		"internal/metrics", "internal/export", "internal/trace",
		"internal/obs", "internal/obs/propagate", "internal/hashgraph",
	),
	Run: runDetorder,
}

// writerMethods are method / function names treated as ordered output sinks.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Encode": true, "EncodeToken": true, "WriteAll": true,
}

func runDetorder(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if !isMapExpr(pass, rs.X) {
				return true
			}
			if sink, pos := findOrderSink(pass, rs.Body); sink != "" {
				pass.Reportf(rs.Pos(), "iteration over map %s %s (map order is randomized per run); "+
					"range over graph.SortedKeys instead, or justify with //asalint:ordered",
					exprString(rs.X), sinkAt(pass, sink, pos))
			}
			return true
		})
	}
	return nil
}

func sinkAt(pass *Pass, sink string, pos token.Pos) string {
	return fmt.Sprintf("%s at line %d", sink, pass.Fset.Position(pos).Line)
}

// isMapExpr reports whether e has map type. With partial type information
// (fixture or type-error packages) an unresolvable expression is not
// flagged — the analyzer under-approximates rather than guesses.
func isMapExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// findOrderSink scans a map-range body for the first statement whose effect
// depends on iteration order.
func findOrderSink(pass *Pass, body *ast.BlockStmt) (string, token.Pos) {
	var sink string
	var pos token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			sink, pos = "sends on a channel", n.Pos()
			return false
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "append" && isBuiltin(pass, fun) {
					sink, pos = "appends to a slice", n.Pos()
					return false
				}
			case *ast.SelectorExpr:
				if writerMethods[fun.Sel.Name] {
					sink, pos = "writes output via "+fun.Sel.Name, n.Pos()
					return false
				}
			}
		case *ast.AssignStmt:
			if s, p := accumulationSink(pass, n); s != "" {
				sink, pos = s, p
				return false
			}
		}
		return true
	})
	return sink, pos
}

// isBuiltin reports whether id resolves to a universe-scope builtin (or is
// unresolved, in which case the spelling "append" is trusted: shadowing the
// builtin is vanishingly rare next to missing type info in fixtures).
func isBuiltin(pass *Pass, id *ast.Ident) bool {
	if pass.Info == nil {
		return true
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return true
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// accumulationSink reports floating-point, complex, or string accumulation:
// `x op= y` for op in {+ - * /}, or the spelled-out `x = x op y`. Those are
// the non-associative/non-commutative updates whose final value depends on
// the order the loop delivered the operands.
func accumulationSink(pass *Pass, as *ast.AssignStmt) (string, token.Pos) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(as.Lhs) == 1 && isOrderSensitiveKind(pass.TypeOf(as.Lhs[0])) {
			return "accumulates " + kindName(pass.TypeOf(as.Lhs[0])) + " state with " + as.Tok.String(), as.Pos()
		}
	case token.ASSIGN:
		if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return "", token.NoPos
		}
		bin, ok := as.Rhs[0].(*ast.BinaryExpr)
		if !ok {
			return "", token.NoPos
		}
		switch bin.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
		default:
			return "", token.NoPos
		}
		if !isOrderSensitiveKind(pass.TypeOf(as.Lhs[0])) {
			return "", token.NoPos
		}
		lhs := exprString(as.Lhs[0])
		if exprString(bin.X) == lhs || exprString(bin.Y) == lhs {
			return "accumulates " + kindName(pass.TypeOf(as.Lhs[0])) + " state with " + bin.Op.String(), as.Pos()
		}
	}
	return "", token.NoPos
}

// isOrderSensitiveKind reports whether t is a floating-point, complex, or
// string type — the kinds whose repeated binary updates are order-dependent.
func isOrderSensitiveKind(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex|types.IsString) != 0
}

func kindName(t types.Type) string {
	if t == nil {
		return "numeric"
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return "numeric"
	}
	switch {
	case b.Info()&types.IsFloat != 0:
		return "floating-point"
	case b.Info()&types.IsComplex != 0:
		return "complex"
	case b.Info()&types.IsString != 0:
		return "string"
	}
	return "numeric"
}
