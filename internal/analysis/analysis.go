// Package analysis is a small, dependency-free static-analysis framework
// modeled on golang.org/x/tools/go/analysis, together with the asalint
// analyzer suite that proves this repository's determinism and cancellation
// contracts at build time instead of by example-based tests.
//
// The framework exists because the repository takes no module dependencies:
// it re-implements the minimal Analyzer/Pass/Diagnostic surface on the
// standard library (go/parser, go/types, go/importer) so the suite runs in
// any environment that has a Go toolchain. Analyzers:
//
//   - detorder:    map iteration feeding order-sensitive output or
//     floating-point accumulation in determinism-critical packages
//   - entropy:     time.Now/time.Since and global math/rand outside the
//     injectable internal/clock and internal/rng abstractions
//   - ctxflow:     context.Background()/TODO() in library code, and blocking
//     selects in exported context-taking kernel functions that cannot be
//     preempted by <-ctx.Done()
//   - goexit:      fire-and-forget goroutines (go statements not tied to a
//     sync.WaitGroup or errgroup in the same function)
//   - fingerprint: infomap.Options fields missing from both Fingerprint and
//     its explicit exclusion list, which would silently stale the asamapd
//     result-cache key
//   - hotalloc:    heap-allocation sites reachable (through the call graph in
//     internal/analysis/callgraph) from //asalint:hotroot hot-path roots —
//     the repo-wide steady-state-alloc-free contract
//   - lockorder:   mutex acquisition-order cycles across the service tier,
//     locks re-acquired while held, and locks held across blocking operations
//   - suppress:    //asalint suppression comments with no written
//     justification
//
// A diagnostic can be silenced by a justified suppression comment on the
// same line or the line directly above; when either line starts a multi-line
// statement, the suppression covers every line of that statement. Several
// tags may share one comment, comma-separated:
//
//	//asalint:<tag>[,<tag>...] <why this site is safe>
//
// where <tag> is the analyzer's suppression tag ("ordered" for detorder,
// otherwise the analyzer name). Suppressions that silence nothing are
// themselves reported per tag, so stale justifications cannot accrete.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/asamap/asamap/internal/analysis/callgraph"
)

// All returns the full asalint analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Detorder, Entropy, Ctxflow, Goexit, Fingerprint, Hotalloc, Lockorder, Suppress}
}

// Diagnostic is one analyzer finding at a resolved source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Tag is the suppression-comment tag; empty means Name.
	Tag string
	// AppliesTo reports whether the analyzer should run over the package
	// with the given import path. The multichecker honors it; analysistest
	// bypasses it so fixtures exercise the check directly. Nil means all
	// packages.
	AppliesTo func(pkgPath string) bool
	// Run performs the check, reporting findings through the pass.
	Run func(*Pass) error
}

func (a *Analyzer) tag() string {
	if a.Tag != "" {
		return a.Tag
	}
	return a.Name
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	// Pkg is the type-checked package. It may be incomplete when the
	// package has type errors; analyzers must tolerate nil type info.
	Pkg *types.Package
	// Info holds expression types and object resolution for Files.
	Info *types.Info
	// PkgPath is the package import path ("github.com/..../internal/infomap"
	// for repository packages, the bare directory name for test fixtures).
	PkgPath string
	// PkgName is the package name from the package clause.
	PkgName string
	// Graph is the call graph over every package of this run. In the
	// multichecker it spans the whole repository, so interprocedural
	// analyzers see cross-package edges; under analysistest it covers just
	// the fixture package. Analyzers must report only at positions inside
	// this pass's package — the driver runs them once per package.
	Graph *callgraph.Graph

	supp  *suppressions
	diags *[]Diagnostic
}

// Reportf records a finding at pos unless a matching suppression comment
// covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.supp != nil && p.supp.silence(p.Analyzer.tag(), position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when unknown (type errors in the
// package or expressions outside the checked files).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// UnitOf adapts a loaded package to a call-graph unit. Units handed to one
// callgraph.Build must come from one loader, so object identities line up
// across packages.
func UnitOf(pkg *Package) *callgraph.Unit {
	return &callgraph.Unit{
		Path:  pkg.Path,
		Name:  pkg.Name,
		Fset:  pkg.Fset,
		Files: pkg.Files,
		Info:  pkg.Info,
		Pkg:   pkg.Types,
	}
}

// BuildGraph builds the shared call graph over pkgs (all loaded by one
// loader). cache may be nil; a reused cache skips re-summarizing functions
// whose bodies are unchanged since the previous build.
func BuildGraph(pkgs []*Package, cache *callgraph.Cache) *callgraph.Graph {
	units := make([]*callgraph.Unit, 0, len(pkgs))
	for _, pkg := range pkgs {
		units = append(units, UnitOf(pkg))
	}
	return callgraph.Build(units, cache)
}

// Run executes analyzers over pkg, applying suppression comments and
// reporting unused suppressions, and returns the diagnostics sorted by
// position. When respectScope is true, analyzers whose AppliesTo rejects the
// package path are skipped (the multichecker); analysistest passes false so
// fixtures always exercise the analyzer under test.
//
// The call graph is built over pkg alone; drivers that load several packages
// should build one shared graph and use RunWithGraph so interprocedural
// analyzers see cross-package edges.
func Run(pkg *Package, analyzers []*Analyzer, respectScope bool) ([]Diagnostic, error) {
	return RunWithGraph(pkg, BuildGraph([]*Package{pkg}, nil), analyzers, respectScope)
}

// RunWithGraph is Run with an externally built (usually multi-package) call
// graph.
func RunWithGraph(pkg *Package, graph *callgraph.Graph, analyzers []*Analyzer, respectScope bool) ([]Diagnostic, error) {
	supp := collectSuppressions(pkg.Fset, pkg.Files)
	var diags []Diagnostic
	ran := map[string]bool{}
	for _, a := range analyzers {
		if respectScope && a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
			continue
		}
		ran[a.tag()] = true
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			PkgPath:  pkg.Path,
			PkgName:  pkg.Name,
			Graph:    graph,
			supp:     supp,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	// A suppression that silenced nothing is itself a defect: either the
	// code was fixed and the comment is stale, or the tag is misspelled and
	// the author believes a check is off when it is not.
	for _, s := range supp.all {
		if s.used {
			continue
		}
		if !ran[s.tag] {
			// The tagged analyzer did not run over this package; with the
			// full suite the only way here is an unknown tag.
			if !knownTag(analyzers, s.tag) {
				diags = append(diags, Diagnostic{
					Pos:      s.pos,
					Analyzer: "asalint",
					Message:  fmt.Sprintf("unknown suppression tag %q (known: %s)", s.tag, strings.Join(tagList(analyzers), ", ")),
				})
			}
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:      s.pos,
			Analyzer: s.tag,
			Message:  fmt.Sprintf("unused //asalint:%s suppression: the line is clean", s.tag),
		})
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		if diags[i].Pos.Line != diags[j].Pos.Line {
			return diags[i].Pos.Line < diags[j].Pos.Line
		}
		if diags[i].Pos.Column != diags[j].Pos.Column {
			return diags[i].Pos.Column < diags[j].Pos.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

func knownTag(analyzers []*Analyzer, tag string) bool {
	for _, a := range analyzers {
		if a.tag() == tag {
			return true
		}
	}
	return false
}

func tagList(analyzers []*Analyzer) []string {
	out := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		out = append(out, a.tag())
	}
	sort.Strings(out)
	return out
}

// PathIn returns an AppliesTo predicate accepting repository packages whose
// import path ends in one of the given suffixes. Fixture packages (paths
// without a slash, as loaded by analysistest) are accepted so the analyzer
// is testable outside the module tree.
func PathIn(suffixes ...string) func(string) bool {
	return func(pkgPath string) bool {
		if !strings.Contains(pkgPath, "/") {
			return true
		}
		for _, s := range suffixes {
			if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
				return true
			}
		}
		return false
	}
}

// PathNotIn returns an AppliesTo predicate rejecting packages whose import
// path ends in one of the given suffixes and accepting everything else.
func PathNotIn(suffixes ...string) func(string) bool {
	in := PathIn(suffixes...)
	return func(pkgPath string) bool {
		if !strings.Contains(pkgPath, "/") {
			return true
		}
		return !in(pkgPath)
	}
}
