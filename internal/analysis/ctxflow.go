package analysis

import (
	"go/ast"
	"strings"

	"github.com/asamap/asamap/internal/analysis/callgraph"
)

// Ctxflow enforces the cancellation contract introduced in PR 1 and promoted
// to an API guarantee by the detection service:
//
//  1. context.Background() / context.TODO() are banned in library code.
//     A library that mints its own root context detaches itself from the
//     caller's cancellation; only package main (and tests) own roots.
//     Exception: the adapter pattern — a function with no context parameter
//     whose return statement delegates straight to its *Context twin
//     (func Run(...) { return RunContext(context.Background(), ...) }) is
//     the blessed non-context convenience entry point and needs no
//     suppression.
//
//  2. In kernel/service packages, a function that takes a context.Context
//     must remain preemptible: every blocking select it contains (a select
//     without a default clause) must include a <-ctx.Done() case. A blocking
//     select that cannot observe ctx is a stall that outlives the caller's
//     deadline. The rule is interprocedural: it binds exported functions
//     and every unexported context-taking function reachable from one
//     through the call graph, so pushing the select into a helper does not
//     launder the contract.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc: "ban context.Background/TODO in library code; require <-ctx.Done() in " +
		"blocking selects of context-taking kernel functions reachable from the exported API",
	AppliesTo: PathNotIn("internal/clock", "internal/rng"),
	Run:       runCtxflow,
}

// ctxflowKernelScope is the package set under the stricter select rule.
var ctxflowKernelScope = PathIn(
	"internal/infomap", "internal/pagerank", "internal/dist",
	"internal/serve", "internal/sched", "internal/mapeq",
)

func runCtxflow(pass *Pass) error {
	isMain := pass.PkgName == "main"
	kernel := ctxflowKernelScope(pass.PkgPath)
	var reach map[*callgraph.Node]*callgraph.Node // lazily built per package
	for _, f := range pass.Files {
		imports := packageNames(f)
		ctxPkg := ""
		for name, path := range imports {
			if path == "context" {
				ctxPkg = name
			}
		}
		if ctxPkg == "" {
			continue
		}
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isMain {
				reportMintedRoots(pass, decl, ctxPkg)
			}
			if !kernel || !isFunc || fd.Body == nil {
				continue
			}
			ctxName := contextParamName(fd, ctxPkg)
			if ctxName == "" || ctxName == "_" {
				continue
			}
			if fd.Name.IsExported() {
				checkSelectsObserveCtx(pass, fd, ctxName, "exported "+fd.Name.Name)
				continue
			}
			if pass.Graph == nil {
				continue
			}
			if reach == nil {
				reach = ctxReachableSet(pass.Graph)
			}
			node := pass.Graph.DeclNode(pass.PkgPath, fd)
			if node == nil {
				continue
			}
			if root, ok := reach[node]; ok && root != node {
				checkSelectsObserveCtx(pass, fd, ctxName,
					fd.Name.Name+" (reachable from exported "+root.Name+")")
			}
		}
	}
	return nil
}

// ctxReachableSet maps every kernel-scope node reachable from an exported
// context-taking kernel function to that root.
func ctxReachableSet(g *callgraph.Graph) map[*callgraph.Node]*callgraph.Node {
	var roots []*callgraph.Node
	for _, n := range g.Nodes() {
		if n.Decl == nil || !n.Decl.Name.IsExported() || !ctxflowKernelScope(n.PkgPath) {
			continue
		}
		if ctx := g.Summary(n).CtxParam; ctx != "" && ctx != "_" {
			roots = append(roots, n)
		}
	}
	return g.Reachable(roots, func(n *callgraph.Node) bool { return ctxflowKernelScope(n.PkgPath) })
}

// reportMintedRoots flags context.Background()/TODO() calls under decl,
// except inside the adapter pattern (see the analyzer doc).
func reportMintedRoots(pass *Pass, decl ast.Decl, ctxPkg string) {
	fd, _ := decl.(*ast.FuncDecl)
	var exempt map[*ast.CallExpr]bool
	if fd != nil && fd.Body != nil {
		exempt = adapterExemptRoots(fd, ctxPkg)
	}
	ast.Inspect(decl, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != ctxPkg || !refersToPackage(pass, id) {
			return true
		}
		if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
			if exempt[call] {
				return true
			}
			pass.Reportf(call.Pos(), "context.%s() mints a root context in library code, "+
				"detaching this call tree from the caller's cancellation; accept a ctx parameter, "+
				"delegate to a *Context twin in a return statement, "+
				"or justify the site with //asalint:ctxflow", sel.Sel.Name)
		}
		return true
	})
}

// adapterExemptRoots returns the Background/TODO calls in fd that are exempt
// under the adapter pattern: fd takes no context itself and hands the fresh
// root directly to a callee named *Context inside a return statement, so the
// root's lifetime is exactly the delegated call.
func adapterExemptRoots(fd *ast.FuncDecl, ctxPkg string) map[*ast.CallExpr]bool {
	if contextParamName(fd, ctxPkg) != "" {
		return nil
	}
	exempt := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			outer, ok := ast.Unparen(res).(*ast.CallExpr)
			if !ok || !strings.HasSuffix(calleeName(outer), "Context") {
				continue
			}
			for _, arg := range outer.Args {
				if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
					exempt[inner] = true
				}
			}
		}
		return true
	})
	return exempt
}

// calleeName returns the final name of a call's callee expression.
func calleeName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// contextParamName returns the name of fd's context.Context parameter, or "".
func contextParamName(fd *ast.FuncDecl, ctxPkg string) string {
	if fd.Type.Params == nil {
		return ""
	}
	for _, field := range fd.Type.Params.List {
		sel, ok := field.Type.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != ctxPkg || sel.Sel.Name != "Context" {
			continue
		}
		if len(field.Names) > 0 {
			return field.Names[0].Name
		}
	}
	return ""
}

// checkSelectsObserveCtx flags blocking selects in fd's body that have no
// <-ctx.Done() case. where names the function in the diagnostic, including
// how the contract reaches it.
func checkSelectsObserveCtx(pass *Pass, fd *ast.FuncDecl, ctxName, where string) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		blocking := true
		observes := false
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm == nil {
				blocking = false // default clause: the select cannot stall
				continue
			}
			if commObservesCtx(cc.Comm, ctxName) {
				observes = true
			}
		}
		if blocking && !observes {
			pass.Reportf(sel.Pos(), "blocking select in %s has no <-%s.Done() case; "+
				"cancellation cannot preempt this wait", where, ctxName)
		}
		return true
	})
}

// commObservesCtx reports whether a select communication receives from
// ctxName.Done() (directly or under assignment).
func commObservesCtx(stmt ast.Stmt, ctxName string) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == ctxName && sel.Sel.Name == "Done" {
			found = true
		}
		return true
	})
	return found
}
