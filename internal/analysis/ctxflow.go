package analysis

import (
	"go/ast"
)

// Ctxflow enforces the cancellation contract introduced in PR 1 and promoted
// to an API guarantee by the detection service:
//
//  1. context.Background() / context.TODO() are banned in library code.
//     A library that mints its own root context detaches itself from the
//     caller's cancellation; only package main (and tests) own roots.
//     Deliberate non-context entry points (Run next to RunContext) carry a
//     justified //asalint:ctxflow suppression.
//
//  2. In kernel/service packages, an exported function that takes a
//     context.Context must remain preemptible: every blocking select it
//     contains (a select without a default clause) must include a
//     <-ctx.Done() case. A blocking select that cannot observe ctx is a
//     stall that outlives the caller's deadline — the goroutine-leak shape
//     both cancellation test suites in this repo exist to prevent.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc: "ban context.Background/TODO in library code; require <-ctx.Done() in " +
		"blocking selects of exported context-taking kernel functions",
	AppliesTo: PathNotIn("internal/clock", "internal/rng"),
	Run:       runCtxflow,
}

// ctxflowKernelScope is the package set under the stricter select rule.
var ctxflowKernelScope = PathIn(
	"internal/infomap", "internal/pagerank", "internal/dist",
	"internal/serve", "internal/sched", "internal/mapeq",
)

func runCtxflow(pass *Pass) error {
	isMain := pass.PkgName == "main"
	kernel := ctxflowKernelScope(pass.PkgPath)
	for _, f := range pass.Files {
		imports := packageNames(f)
		ctxPkg := ""
		for name, path := range imports {
			if path == "context" {
				ctxPkg = name
			}
		}
		if ctxPkg == "" {
			continue
		}
		if !isMain {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || id.Name != ctxPkg || !refersToPackage(pass, id) {
					return true
				}
				if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
					pass.Reportf(call.Pos(), "context.%s() mints a root context in library code, "+
						"detaching this call tree from the caller's cancellation; accept a ctx parameter "+
						"(or justify a deliberate non-context entry point with //asalint:ctxflow)", sel.Sel.Name)
				}
				return true
			})
		}
		if !kernel {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			ctxName := contextParamName(fd, ctxPkg)
			if ctxName == "" || ctxName == "_" {
				continue
			}
			checkSelectsObserveCtx(pass, fd, ctxName)
		}
	}
	return nil
}

// contextParamName returns the name of fd's context.Context parameter, or "".
func contextParamName(fd *ast.FuncDecl, ctxPkg string) string {
	if fd.Type.Params == nil {
		return ""
	}
	for _, field := range fd.Type.Params.List {
		sel, ok := field.Type.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != ctxPkg || sel.Sel.Name != "Context" {
			continue
		}
		if len(field.Names) > 0 {
			return field.Names[0].Name
		}
	}
	return ""
}

// checkSelectsObserveCtx flags blocking selects in fd's body that have no
// <-ctx.Done() case.
func checkSelectsObserveCtx(pass *Pass, fd *ast.FuncDecl, ctxName string) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		blocking := true
		observes := false
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm == nil {
				blocking = false // default clause: the select cannot stall
				continue
			}
			if commObservesCtx(cc.Comm, ctxName) {
				observes = true
			}
		}
		if blocking && !observes {
			pass.Reportf(sel.Pos(), "blocking select in exported %s has no <-%s.Done() case; "+
				"cancellation cannot preempt this wait", fd.Name.Name, ctxName)
		}
		return true
	})
}

// commObservesCtx reports whether a select communication receives from
// ctxName.Done() (directly or under assignment).
func commObservesCtx(stmt ast.Stmt, ctxName string) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == ctxName && sel.Sel.Name == "Done" {
			found = true
		}
		return true
	})
	return found
}
