package analysis

import (
	"go/ast"
	"strconv"
)

// Fingerprint guards the asamapd result-cache key. The service caches
// detection results under (graph hash, Options.Fingerprint, seed) and
// replays cached bytes verbatim; an Options field that changes results but
// is hashed by neither Fingerprint nor named in the package's explicit
// exclusion list would silently serve one configuration's bytes for
// another's. The analyzer applies to any package declaring both a struct
// type `Options` and a `Fingerprint` method/function, and requires every
// Options field to be either
//
//   - mentioned (as a selector or identifier) inside Fingerprint's body, or
//   - listed in the package-level `fingerprintExcluded` declaration, whose
//     entries carry the justification for why the field cannot alter result
//     bytes (e.g. Workers: results are bit-identical across worker counts).
//
// It also reports exclusion-list staleness: entries naming fields that no
// longer exist, and entries for fields that Fingerprint now hashes anyway.
var Fingerprint = &Analyzer{
	Name:      "fingerprint",
	Doc:       "every Options field must be hashed by Fingerprint or justified in fingerprintExcluded",
	AppliesTo: func(pkgPath string) bool { return true },
	Run:       runFingerprint,
}

// fingerprintExcludedName is the required name of the exclusion-list
// declaration (a map[string]string of field name -> justification, or a
// []string of field names).
const fingerprintExcludedName = "fingerprintExcluded"

func runFingerprint(pass *Pass) error {
	var optionsStruct *ast.StructType
	var fingerprintBody *ast.BlockStmt
	excluded := map[string]ast.Expr{} // field name -> the listing expr (for positions)
	haveExcluded := false

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.Name == "Options" {
							if st, ok := s.Type.(*ast.StructType); ok {
								optionsStruct = st
							}
						}
					case *ast.ValueSpec:
						for i, name := range s.Names {
							if name.Name != fingerprintExcludedName || i >= len(s.Values) {
								continue
							}
							haveExcluded = true
							collectExcluded(s.Values[i], excluded)
						}
					}
				}
			case *ast.FuncDecl:
				if d.Name.Name == "Fingerprint" && d.Body != nil {
					fingerprintBody = d.Body
				}
			}
		}
	}
	if optionsStruct == nil || fingerprintBody == nil {
		return nil // not a fingerprinted-options package
	}

	mentioned := map[string]bool{}
	ast.Inspect(fingerprintBody, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			mentioned[x.Sel.Name] = true
		case *ast.Ident:
			mentioned[x.Name] = true
		}
		return true
	})

	fields := map[string]bool{}
	for _, field := range optionsStruct.Fields.List {
		if len(field.Names) == 0 {
			// Embedded field: its type name is the implicit field name.
			if id := embeddedName(field.Type); id != nil {
				fields[id.Name] = true
				checkField(pass, id.Name, id, mentioned, excluded, haveExcluded)
			}
			continue
		}
		for _, name := range field.Names {
			fields[name.Name] = true
			checkField(pass, name.Name, name, mentioned, excluded, haveExcluded)
		}
	}

	for name, expr := range excluded {
		if !fields[name] {
			pass.Reportf(expr.Pos(), "%s lists %q, which is not a field of Options (stale exclusion)",
				fingerprintExcludedName, name)
		} else if mentioned[name] {
			pass.Reportf(expr.Pos(), "Options.%s is both hashed in Fingerprint and listed in %s; "+
				"drop one so the contract stays unambiguous", name, fingerprintExcludedName)
		}
	}
	return nil
}

func checkField(pass *Pass, name string, pos ast.Node, mentioned map[string]bool, excluded map[string]ast.Expr, haveExcluded bool) {
	if mentioned[name] {
		return
	}
	if _, ok := excluded[name]; ok {
		return
	}
	hint := "add it to Fingerprint or justify it in " + fingerprintExcludedName
	if !haveExcluded {
		hint = "add it to Fingerprint or declare a " + fingerprintExcludedName + " list justifying its exclusion"
	}
	pass.Reportf(pos.Pos(), "Options.%s is hashed by neither Fingerprint nor %s; "+
		"the result-cache key would go stale silently — %s", name, fingerprintExcludedName, hint)
}

// collectExcluded extracts field names from the exclusion declaration:
// map literal keys, or plain string elements of a slice literal.
func collectExcluded(v ast.Expr, out map[string]ast.Expr) {
	lit, ok := v.(*ast.CompositeLit)
	if !ok {
		return
	}
	for _, elt := range lit.Elts {
		switch e := elt.(type) {
		case *ast.KeyValueExpr:
			if name, ok := stringLit(e.Key); ok {
				out[name] = e.Key
			}
		default:
			if name, ok := stringLit(e); ok {
				out[name] = e
			}
		}
	}
}

func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// embeddedName resolves the identifier of an embedded field's type.
func embeddedName(t ast.Expr) *ast.Ident {
	switch x := t.(type) {
	case *ast.Ident:
		return x
	case *ast.StarExpr:
		return embeddedName(x.X)
	case *ast.SelectorExpr:
		return x.Sel
	}
	return nil
}
