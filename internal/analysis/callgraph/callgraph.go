// Package callgraph builds a module-local call graph with per-function
// summaries over packages loaded by the internal/analysis loader, using only
// the standard library (go/ast, go/types). It is the interprocedural
// substrate of the asalint suite: analyzers that must reason across call
// boundaries — hot-path allocation reachability, lock acquisition order,
// context flow into blocking callees, goroutine-join evidence in callers —
// consume the graph instead of re-walking syntax per function.
//
// Design constraints, in order:
//
//   - Deterministic: node iteration, edge order, and reachability provenance
//     are pure functions of the source. Nodes sort by stable ID, fan-out
//     targets sort by ID, BFS visits in insertion order. The machine-readable
//     asalint output formats depend on this.
//   - Conservative where dynamic: a call through an interface fans out to
//     every indexed concrete method that implements the interface; a method
//     or function referenced as a value gets a Ref edge (it may be called by
//     whoever receives it); a call through a plain func variable resolves to
//     nothing (the analyzers under-approximate rather than guess).
//   - Cheap: one pass per function body builds nodes and edges; summaries are
//     computed lazily and may be shared across builds through a Cache keyed
//     by a structural hash of the function body, so unchanged functions are
//     never re-summarized.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Unit is one loaded package as the graph consumes it: parsed files plus
// (possibly partial) type information. The analysis package adapts its
// Package type to a Unit; all Units of one Build must share a FileSet and a
// type-checker universe (one loader), or cross-package object identities
// will not line up.
type Unit struct {
	// Path is the import path (bare package name for fixtures).
	Path string
	// Name is the package name from the package clause.
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	// Info may carry partial resolution for type-broken packages; the
	// builder tolerates nil object lookups.
	Info *types.Info
	// Pkg is the type-checked package object (may be nil on hard failure).
	Pkg *types.Package
}

// EdgeKind classifies how a call edge was resolved.
type EdgeKind uint8

const (
	// Static is a direct call to a known function or concrete method.
	Static EdgeKind = iota
	// Dispatch is one conservative fan-out target of an interface method
	// call: the concrete method may or may not run, but no other indexed
	// method can.
	Dispatch
	// Closure links a function to a literal defined in its body. Defining is
	// not calling, but a closure built on a path is assumed runnable from it.
	Closure
	// Ref is a function or method referenced as a value (method value,
	// function assigned or passed); whoever receives the value may call it.
	Ref
)

func (k EdgeKind) String() string {
	switch k {
	case Static:
		return "static"
	case Dispatch:
		return "dispatch"
	case Closure:
		return "closure"
	case Ref:
		return "ref"
	}
	return "unknown"
}

// Edge is one resolved call (or reference) site.
type Edge struct {
	Site   token.Pos
	Kind   EdgeKind
	Callee *Node
}

// Node is one function in the graph: a declared function/method or a
// function literal.
type Node struct {
	// ID is the stable identity: "<pkg>.Func", "<pkg>.(*T).Method",
	// "<pkg>.T.Method", or "<parent>$<n>" for the n-th literal (source
	// order) inside its parent.
	ID string
	// Name is the display name without the package prefix.
	Name    string
	PkgPath string
	Unit    *Unit
	// Decl is set for declared functions, Lit for function literals.
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	// Obj is the type-checker object for declared functions (nil for
	// literals and in type-broken packages).
	Obj *types.Func
	// Out is the ordered outgoing edge list.
	Out []Edge

	summary *Summary
}

// Body returns the function body block (nil for bodyless declarations).
func (n *Node) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	if n.Lit != nil {
		return n.Lit.Body
	}
	return nil
}

// FuncType returns the function's type expression.
func (n *Node) FuncType() *ast.FuncType {
	if n.Decl != nil {
		return n.Decl.Type
	}
	if n.Lit != nil {
		return n.Lit.Type
	}
	return nil
}

// Pos returns the declaration position.
func (n *Node) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	return token.NoPos
}

// Graph is the built call graph over a set of units.
type Graph struct {
	Fset  *token.FileSet
	Units []*Unit

	nodes  map[string]*Node
	sorted []*Node // nodes sorted by ID, built once
	byObj  map[*types.Func]*Node
	cache  *Cache

	// methodIndex maps method name -> candidate concrete methods, for
	// interface fan-out.
	methodIndex map[string][]*methodCandidate

	transLocks  map[*Node][]LockOp
	transBlocks map[*Node][]BlockOp
}

type methodCandidate struct {
	recv *types.Named
	fn   *types.Func
	node *Node
}

// Build constructs the graph over units. cache may be nil (no summary
// sharing); a non-nil cache may be reused across Builds to skip
// re-summarizing unchanged functions.
func Build(units []*Unit, cache *Cache) *Graph {
	g := &Graph{
		Units:       units,
		nodes:       make(map[string]*Node),
		byObj:       make(map[*types.Func]*Node),
		cache:       cache,
		methodIndex: make(map[string][]*methodCandidate),
		transLocks:  make(map[*Node][]LockOp),
		transBlocks: make(map[*Node][]BlockOp),
	}
	if len(units) > 0 {
		g.Fset = units[0].Fset
	}
	// Pass 1: declared functions and their nested literals become nodes.
	for _, u := range units {
		for _, f := range u.Files {
			litCount := 0 // file-level literal counter for init-scoped lits
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					g.addDecl(u, d)
				case *ast.GenDecl:
					// Function literals in package-level declarations (var
					// handler = func(){...}) hang off a per-file init node.
					ast.Inspect(d, func(n ast.Node) bool {
						if lit, ok := n.(*ast.FuncLit); ok {
							id := fmt.Sprintf("%s.init$%d", u.Path, litCount)
							litCount++
							g.addLit(u, id, lit)
							return false
						}
						return true
					})
				}
			}
		}
	}
	g.buildMethodIndex()
	// Pass 2: edges.
	for _, u := range units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					if node := g.declNode(u, fd); node != nil {
						g.buildEdges(node)
					}
				}
			}
		}
	}
	// Literal nodes collected in pass 1 get their edges too (their parents'
	// buildEdges only links Closure edges to them).
	for _, n := range g.nodesSorted() {
		if n.Lit != nil {
			g.buildEdges(n)
		}
	}
	return g
}

// addDecl registers fd and its nested literals.
func (g *Graph) addDecl(u *Unit, fd *ast.FuncDecl) {
	id := u.Path + "." + declName(fd)
	n := &Node{
		ID:      id,
		Name:    declName(fd),
		PkgPath: u.Path,
		Unit:    u,
		Decl:    fd,
	}
	if u.Info != nil {
		if obj, ok := u.Info.Defs[fd.Name].(*types.Func); ok {
			n.Obj = obj
			g.byObj[obj] = n
		}
	}
	g.nodes[id] = n
	// Nested literals, numbered in source order.
	if fd.Body != nil {
		count := 0
		ast.Inspect(fd.Body, func(x ast.Node) bool {
			if lit, ok := x.(*ast.FuncLit); ok {
				litID := fmt.Sprintf("%s$%d", id, count)
				count++
				g.addLit(u, litID, lit)
				// Literals nest; their own inner literals are numbered
				// against the same declared parent, which keeps IDs stable
				// without a second traversal.
			}
			return true
		})
	}
}

func (g *Graph) addLit(u *Unit, id string, lit *ast.FuncLit) {
	name := id
	if i := strings.LastIndex(id, "."); i >= 0 {
		name = id[i+1:]
	}
	g.nodes[id] = &Node{
		ID:      id,
		Name:    name,
		PkgPath: u.Path,
		Unit:    u,
		Lit:     lit,
	}
}

// declName renders a FuncDecl's graph name: "Func", "T.Method", or
// "(*T).Method".
func declName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	return recvString(t) + "." + fd.Name.Name
}

func recvString(t ast.Expr) string {
	switch x := t.(type) {
	case *ast.StarExpr:
		return "(*" + recvString(x.X) + ")"
	case *ast.Ident:
		return x.Name
	case *ast.IndexExpr: // generic receiver T[P]
		return recvString(x.X)
	case *ast.IndexListExpr:
		return recvString(x.X)
	case *ast.ParenExpr:
		return recvString(x.X)
	}
	return types.ExprString(t)
}

func (g *Graph) declNode(u *Unit, fd *ast.FuncDecl) *Node {
	return g.nodes[u.Path+"."+declName(fd)]
}

// DeclNode returns the node for a declared function in unit path, or nil.
func (g *Graph) DeclNode(pkgPath string, fd *ast.FuncDecl) *Node {
	return g.nodes[pkgPath+"."+declName(fd)]
}

// NodeByID returns the node with the given stable ID, or nil.
func (g *Graph) NodeByID(id string) *Node { return g.nodes[id] }

// NodeFor returns the node for a type-checker function object, or nil.
func (g *Graph) NodeFor(obj *types.Func) *Node {
	if obj == nil {
		return nil
	}
	return g.byObj[obj.Origin()]
}

// Nodes returns every node sorted by ID.
func (g *Graph) Nodes() []*Node { return g.nodesSorted() }

func (g *Graph) nodesSorted() []*Node {
	if g.sorted == nil || len(g.sorted) != len(g.nodes) {
		g.sorted = make([]*Node, 0, len(g.nodes))
		for _, n := range g.nodes {
			g.sorted = append(g.sorted, n)
		}
		sort.Slice(g.sorted, func(i, j int) bool { return g.sorted[i].ID < g.sorted[j].ID })
	}
	return g.sorted
}

// buildMethodIndex records every concrete method of every named type across
// the units, for interface fan-out.
func (g *Graph) buildMethodIndex() {
	for _, n := range g.nodesSorted() {
		if n.Obj == nil || n.Decl == nil || n.Decl.Recv == nil {
			continue
		}
		recv := n.Obj.Type().(*types.Signature).Recv()
		if recv == nil {
			continue
		}
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		name := n.Obj.Name()
		g.methodIndex[name] = append(g.methodIndex[name], &methodCandidate{recv: named, fn: n.Obj, node: n})
	}
}

// dispatchTargets returns the nodes of every indexed concrete method that
// could satisfy a call of method name on interface type iface, sorted by ID.
func (g *Graph) dispatchTargets(iface *types.Interface, name string) []*Node {
	var out []*Node
	seen := map[*Node]bool{}
	for _, cand := range g.methodIndex[name] {
		if seen[cand.node] {
			continue
		}
		ptr := types.NewPointer(cand.recv)
		if types.Implements(cand.recv, iface) || types.Implements(ptr, iface) {
			seen[cand.node] = true
			out = append(out, cand.node)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// buildEdges walks node's body (not descending into nested literals, which
// own their statements) and resolves call and reference sites.
func (g *Graph) buildEdges(n *Node) {
	body := n.Body()
	if body == nil {
		return
	}
	info := n.Unit.Info
	// funExprs marks expressions in call position so value references can be
	// told apart from calls.
	funExprs := map[ast.Expr]bool{}
	skipLits := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok {
			if litNode := g.litNode(n, lit); litNode != nil {
				n.Out = append(n.Out, Edge{Site: lit.Pos(), Kind: Closure, Callee: litNode})
			}
			skipLits[lit] = true
			return false // the literal's own body is its node's territory
		}
		if call, ok := x.(*ast.CallExpr); ok {
			fun := ast.Unparen(call.Fun)
			funExprs[fun] = true
			if lit, ok := fun.(*ast.FuncLit); ok {
				// Immediately invoked literal: the Closure edge added when
				// the literal is visited covers reachability; nothing more
				// to resolve here.
				_ = lit
				return true
			}
			for _, t := range g.callTargets(info, call) {
				n.Out = append(n.Out, Edge{Site: call.Lparen, Kind: t.kind, Callee: t.node})
			}
		}
		return true
	})
	// Second pass: function/method values referenced outside call position.
	// A selector consumes its Sel identifier — the ident resolves to the same
	// object and must not produce a second edge.
	consumed := map[*ast.Ident]bool{}
	ast.Inspect(body, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok && skipLits[lit] {
			return false
		}
		switch e := x.(type) {
		case *ast.SelectorExpr:
			consumed[e.Sel] = true
			if funExprs[ast.Expr(e)] {
				return true
			}
			for _, t := range g.refTargets(info, e) {
				n.Out = append(n.Out, Edge{Site: e.Pos(), Kind: Ref, Callee: t})
			}
			return true
		case *ast.Ident:
			if consumed[e] || funExprs[ast.Expr(e)] || info == nil {
				return true
			}
			if obj, ok := info.Uses[e].(*types.Func); ok {
				// Plain identifier naming a function, used as a value.
				if target := g.NodeFor(obj); target != nil {
					n.Out = append(n.Out, Edge{Site: e.Pos(), Kind: Ref, Callee: target})
				}
			}
		}
		return true
	})
}

// litNode finds the registered node for a literal nested in parent.
func (g *Graph) litNode(parent *Node, lit *ast.FuncLit) *Node {
	// IDs were assigned in source order against the declared parent; rescan
	// the same order to match. Parent may itself be a literal: literals are
	// numbered against the enclosing *declared* function, so strip any $n
	// suffix first.
	baseID := parent.ID
	if i := strings.Index(baseID, "$"); i >= 0 {
		baseID = baseID[:i]
	}
	base := g.nodes[baseID]
	if base == nil || base.Decl == nil || base.Decl.Body == nil {
		// init-scoped literals: match by position.
		for _, n := range g.nodesSorted() {
			if n.Lit == lit {
				return n
			}
		}
		return nil
	}
	count := 0
	var found *Node
	ast.Inspect(base.Decl.Body, func(x ast.Node) bool {
		if found != nil {
			return false
		}
		if l, ok := x.(*ast.FuncLit); ok {
			id := fmt.Sprintf("%s$%d", baseID, count)
			count++
			if l == lit {
				found = g.nodes[id]
			}
		}
		return true
	})
	return found
}

type callTarget struct {
	kind EdgeKind
	node *Node
}

// callTargets resolves the possible callees of one call expression.
func (g *Graph) callTargets(info *types.Info, call *ast.CallExpr) []callTarget {
	if info == nil {
		return nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Func); ok {
			if n := g.NodeFor(obj); n != nil {
				return []callTarget{{Static, n}}
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			recv := sel.Recv()
			if iface, ok := recv.Underlying().(*types.Interface); ok {
				var out []callTarget
				for _, t := range g.dispatchTargets(iface, fun.Sel.Name) {
					out = append(out, callTarget{Dispatch, t})
				}
				return out
			}
			if obj, ok := sel.Obj().(*types.Func); ok {
				if n := g.NodeFor(obj); n != nil {
					return []callTarget{{Static, n}}
				}
			}
			return nil
		}
		// Package-qualified function (or a selector the checker did not
		// resolve as a method selection).
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
			if n := g.NodeFor(obj); n != nil {
				return []callTarget{{Static, n}}
			}
		}
	}
	return nil
}

// refTargets resolves a selector used as a value to function nodes (method
// values; interface method values fan out).
func (g *Graph) refTargets(info *types.Info, sel *ast.SelectorExpr) []*Node {
	if info == nil {
		return nil
	}
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		if iface, ok := s.Recv().Underlying().(*types.Interface); ok {
			return g.dispatchTargets(iface, sel.Sel.Name)
		}
		if obj, ok := s.Obj().(*types.Func); ok {
			if n := g.NodeFor(obj); n != nil {
				return []*Node{n}
			}
		}
		return nil
	}
	if obj, ok := info.Uses[sel.Sel].(*types.Func); ok {
		if n := g.NodeFor(obj); n != nil {
			return []*Node{n}
		}
	}
	return nil
}

// Reachable runs a deterministic BFS from roots, following edges whose
// callee satisfies within (nil = all). The result maps every reached node to
// the root that first discovered it (roots map to themselves). Roots not
// accepted by within are still included.
func (g *Graph) Reachable(roots []*Node, within func(*Node) bool) map[*Node]*Node {
	sortedRoots := append([]*Node(nil), roots...)
	sort.Slice(sortedRoots, func(i, j int) bool { return sortedRoots[i].ID < sortedRoots[j].ID })
	via := make(map[*Node]*Node)
	queue := make([]*Node, 0, len(sortedRoots))
	for _, r := range sortedRoots {
		if r == nil {
			continue
		}
		if _, ok := via[r]; !ok {
			via[r] = r
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			c := e.Callee
			if c == nil {
				continue
			}
			if _, ok := via[c]; ok {
				continue
			}
			if within != nil && !within(c) {
				continue
			}
			via[c] = via[n]
			queue = append(queue, c)
		}
	}
	return via
}

// TransitiveLocks returns the lock operations node may perform, directly or
// through Static/Dispatch/Closure callees, sorted by lock identity then
// operation. Memoized; cycles in the graph terminate through the visiting
// marker.
func (g *Graph) TransitiveLocks(n *Node) []LockOp {
	if ops, ok := g.transLocks[n]; ok {
		return ops
	}
	g.transLocks[n] = nil // cycle marker: in-progress nodes contribute nothing
	merged := map[string]LockOp{}
	for _, op := range g.Summary(n).LockOps {
		key := op.Lock + "\x00" + op.Op
		if _, ok := merged[key]; !ok {
			merged[key] = op
		}
	}
	for _, e := range n.Out {
		if e.Kind == Ref || e.Callee == nil {
			continue
		}
		for _, op := range g.TransitiveLocks(e.Callee) {
			key := op.Lock + "\x00" + op.Op
			if _, ok := merged[key]; !ok {
				merged[key] = op
			}
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ops := make([]LockOp, 0, len(keys))
	for _, k := range keys {
		ops = append(ops, merged[k])
	}
	g.transLocks[n] = ops
	return ops
}

// TransitiveBlocks returns representative blocking operations reachable from
// node through Static/Dispatch/Closure edges (one per distinct description),
// sorted by description.
func (g *Graph) TransitiveBlocks(n *Node) []BlockOp {
	if ops, ok := g.transBlocks[n]; ok {
		return ops
	}
	g.transBlocks[n] = nil
	merged := map[string]BlockOp{}
	for _, b := range g.Summary(n).Blocks {
		if _, ok := merged[b.Desc]; !ok {
			merged[b.Desc] = b
		}
	}
	for _, e := range n.Out {
		if e.Kind == Ref || e.Callee == nil {
			continue
		}
		for _, b := range g.TransitiveBlocks(e.Callee) {
			// Attribute through-call blocking to the call chain's entry.
			if _, ok := merged[b.Desc]; !ok {
				merged[b.Desc] = b
			}
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ops := make([]BlockOp, 0, len(keys))
	for _, k := range keys {
		ops = append(ops, merged[k])
	}
	g.transBlocks[n] = ops
	return ops
}
