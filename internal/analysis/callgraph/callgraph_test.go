package callgraph_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"testing"

	"github.com/asamap/asamap/internal/analysis/callgraph"
)

// buildUnit parses and type-checks files (name -> source) into one Unit with
// its own FileSet, mirroring what the analysis loader produces.
func buildUnit(t *testing.T, files map[string]string) *callgraph.Unit {
	t.Helper()
	fset := token.NewFileSet()
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	var asts []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, files[name], parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		asts = append(asts, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("fix", fset, asts, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &callgraph.Unit{Path: "fix", Name: "fix", Fset: fset, Files: asts, Info: info, Pkg: pkg}
}

func build(t *testing.T, files map[string]string) *callgraph.Graph {
	t.Helper()
	return callgraph.Build([]*callgraph.Unit{buildUnit(t, files)}, nil)
}

// edgeIDs renders node's outgoing edges as "kind:calleeID", sorted.
func edgeIDs(n *callgraph.Node) []string {
	var out []string
	for _, e := range n.Out {
		if e.Callee != nil {
			out = append(out, e.Kind.String()+":"+e.Callee.ID)
		}
	}
	sort.Strings(out)
	return out
}

func wantEdges(t *testing.T, n *callgraph.Node, want ...string) {
	t.Helper()
	if n == nil {
		t.Fatal("node not found")
	}
	got := edgeIDs(n)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("edges of %s = %v, want %v", n.ID, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edges of %s = %v, want %v", n.ID, got, want)
		}
	}
}

func TestCrossFileStaticCall(t *testing.T) {
	g := build(t, map[string]string{
		"a.go": "package fix\n\nfunc A() { B() }\n",
		"b.go": "package fix\n\nfunc B() {}\n",
	})
	wantEdges(t, g.NodeByID("fix.A"), "static:fix.B")
}

func TestInterfaceDispatchFanOut(t *testing.T) {
	g := build(t, map[string]string{"a.go": `package fix

type runner interface{ Run() }

type fast struct{}

func (fast) Run() {}

type slow struct{}

func (*slow) Run() {}

type other struct{}

func (other) Stop() {}

func drive(r runner) { r.Run() }
`})
	// Both concrete implementations are conservative fan-out targets; other
	// has no Run method and is excluded.
	wantEdges(t, g.NodeByID("fix.drive"), "dispatch:fix.fast.Run", "dispatch:fix.(*slow).Run")
}

func TestMethodValueRef(t *testing.T) {
	g := build(t, map[string]string{"a.go": `package fix

type fast struct{}

func (fast) Run() {}

func helper() {}

func pick(f fast) (func(), func()) {
	return f.Run, helper
}
`})
	// Referencing a method or function as a value is a Ref edge: whoever
	// receives the value may call it.
	wantEdges(t, g.NodeByID("fix.pick"), "ref:fix.fast.Run", "ref:fix.helper")
}

func TestRecursionAndReachability(t *testing.T) {
	g := build(t, map[string]string{"a.go": `package fix

import "sync"

type guarded struct{ mu sync.Mutex }

func (g *guarded) a() { g.mu.Lock(); g.b(); g.mu.Unlock() }

func (g *guarded) b() { g.a() }

func loop() { loop() }

func apart() {}
`})
	a := g.NodeByID("fix.(*guarded).a")
	b := g.NodeByID("fix.(*guarded).b")
	if a == nil || b == nil {
		t.Fatal("mutual-recursion nodes missing")
	}
	via := g.Reachable([]*callgraph.Node{a}, nil)
	if via[a] != a || via[b] != a {
		t.Fatalf("Reachable(a) = %v, want a and b mapped to a", via)
	}
	if _, ok := via[g.NodeByID("fix.apart")]; ok {
		t.Fatal("Reachable(a) reached an unconnected function")
	}
	// The memoized transitive queries must terminate through the cycle and
	// still surface a's lock from b.
	locks := g.TransitiveLocks(b)
	if len(locks) == 0 || locks[0].Lock != "fix.guarded.mu" {
		t.Fatalf("TransitiveLocks(b) = %v, want fix.guarded.mu", locks)
	}
	self := g.NodeByID("fix.loop")
	via = g.Reachable([]*callgraph.Node{self}, nil)
	if len(via) != 1 || via[self] != self {
		t.Fatalf("Reachable(loop) = %v, want just loop", via)
	}
}

func TestClosureNodesAndEdges(t *testing.T) {
	g := build(t, map[string]string{"a.go": `package fix

func inner() {}

func outer() {
	f := func() { inner() }
	g := func() {}
	f()
	g()
}
`})
	// Literals are numbered in source order against the declared parent.
	wantEdges(t, g.NodeByID("fix.outer"), "closure:fix.outer$0", "closure:fix.outer$1")
	wantEdges(t, g.NodeByID("fix.outer$0"), "static:fix.inner")
	wantEdges(t, g.NodeByID("fix.outer$1"))
}

// TestSummaryCacheInvalidation proves the cache key (node ID + structural
// body hash) shares summaries across builds and invalidates exactly the
// edited function.
func TestSummaryCacheInvalidation(t *testing.T) {
	v1 := map[string]string{"a.go": `package fix

func A() { B() }

func B() { _ = make([]int, 4) }
`}
	v2 := map[string]string{"a.go": `package fix

func A() { B() }

func B() { _ = make([]int, 8) }
`}
	cache := callgraph.NewCache()
	summarizeAll := func(g *callgraph.Graph) {
		for _, n := range g.Nodes() {
			g.Summary(n)
		}
	}

	g1 := callgraph.Build([]*callgraph.Unit{buildUnit(t, v1)}, cache)
	summarizeAll(g1)
	if cache.Hits != 0 || cache.Misses != 2 {
		t.Fatalf("after first build: hits=%d misses=%d, want 0/2", cache.Hits, cache.Misses)
	}

	// Identical sources, fresh parse: every summary is recalled.
	g2 := callgraph.Build([]*callgraph.Unit{buildUnit(t, v1)}, cache)
	summarizeAll(g2)
	if cache.Hits != 2 || cache.Misses != 2 {
		t.Fatalf("after identical rebuild: hits=%d misses=%d, want 2/2", cache.Hits, cache.Misses)
	}

	// One edited body: only B is re-summarized.
	g3 := callgraph.Build([]*callgraph.Unit{buildUnit(t, v2)}, cache)
	summarizeAll(g3)
	if cache.Hits != 3 || cache.Misses != 3 {
		t.Fatalf("after edit to B: hits=%d misses=%d, want 3/3", cache.Hits, cache.Misses)
	}
	if allocs := g3.Summary(g3.NodeByID("fix.B")).Allocs; len(allocs) != 1 || allocs[0].Desc != "make([]int, 8)" {
		t.Fatalf("edited B summary = %+v, want the new make", allocs)
	}
}
