package callgraph

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"hash/fnv"
	"strings"
)

// AllocKind classifies a heap-allocation site.
type AllocKind uint8

const (
	AllocMake    AllocKind = iota // make(slice/map/chan)
	AllocNew                      // new(T)
	AllocLit                      // map/slice composite literal, or &T{...}
	AllocAppend                   // append whose result does not feed back into its first argument
	AllocClosure                  // escaping function literal with captured variables
	AllocFmt                      // fmt formatting call (boxes + builds strings)
	AllocBox                      // concrete value passed to an interface/variadic-any parameter
	AllocConvert                  // string<->[]byte/[]rune conversion
)

func (k AllocKind) String() string {
	switch k {
	case AllocMake:
		return "make"
	case AllocNew:
		return "new"
	case AllocLit:
		return "composite literal"
	case AllocAppend:
		return "append"
	case AllocClosure:
		return "closure"
	case AllocFmt:
		return "fmt call"
	case AllocBox:
		return "interface boxing"
	case AllocConvert:
		return "string conversion"
	}
	return "alloc"
}

// Alloc is one potential heap-allocation site in a function body.
type Alloc struct {
	Pos  token.Pos
	Kind AllocKind
	// Desc names the site for diagnostics ("make([]int32, bins)").
	Desc string
	// Cold marks sites on amortized-growth or failure paths: a branch whose
	// condition consults cap(), or a branch entered on a non-nil error /
	// recovered panic. Steady-state contracts ignore cold sites.
	Cold bool
}

// LockOp is one mutex operation with a stable lock identity.
type LockOp struct {
	Pos  token.Pos
	Lock string // e.g. "serve.Queue.mu"
	Op   string // Lock, Unlock, RLock, RUnlock
	// Deferred marks operations performed via defer (released at return).
	Deferred bool
}

// BlockOp is one potentially blocking operation.
type BlockOp struct {
	Pos  token.Pos
	Desc string
}

// Summary is the per-function fact sheet the interprocedural analyzers
// consume.
type Summary struct {
	Allocs  []Alloc
	LockOps []LockOp
	Blocks  []BlockOp
	// CtxParam is the name of the function's context.Context parameter ("" =
	// none). "_" counts as none for flow purposes.
	CtxParam string
	// GoSpawns lists go statements in the body.
	GoSpawns []token.Pos
	// Joins reports join-protocol evidence in the body: WaitGroup
	// Add/Done/Wait, errgroup Go/Wait, or sched.Pool Dispatch/Close.
	Joins bool
	// JoinerParam reports a *sync.WaitGroup or errgroup parameter: the
	// caller owns the join.
	JoinerParam bool
	// HandsJoiner reports a WaitGroup/errgroup value passed as a call
	// argument: the callee participates in the join protocol.
	HandsJoiner bool
}

// Cache shares summaries across graph builds, keyed by node ID plus a
// structural hash of the function body, so editing one function invalidates
// exactly that function's entry.
type Cache struct {
	entries map[string]*Summary
	// Hits and Misses count lookups, for tests and the bench harness.
	Hits, Misses int
}

// NewCache returns an empty summary cache.
func NewCache() *Cache { return &Cache{entries: make(map[string]*Summary)} }

// Summary computes (or recalls) the summary of node n.
func (g *Graph) Summary(n *Node) *Summary {
	if n.summary != nil {
		return n.summary
	}
	if g.cache != nil {
		key := n.ID + "#" + bodyHash(g.Fset, n)
		if s, ok := g.cache.entries[key]; ok {
			g.cache.Hits++
			n.summary = s
			return s
		}
		g.cache.Misses++
		s := summarize(n)
		g.cache.entries[key] = s
		n.summary = s
		return s
	}
	n.summary = summarize(n)
	return n.summary
}

// bodyHash is a structural fingerprint of the function: the printed source
// of its type and body hashed with FNV-1a. Position changes that do not
// alter the code (reformatting elsewhere in the file) still change token
// positions but not the printed form, so the hash is stable under unrelated
// edits.
func bodyHash(fset *token.FileSet, n *Node) string {
	h := fnv.New64a()
	cfg := printer.Config{Mode: printer.RawFormat}
	if t := n.FuncType(); t != nil {
		_ = cfg.Fprint(h, fset, t)
	}
	if b := n.Body(); b != nil {
		_ = cfg.Fprint(h, fset, b)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// summarize walks one function body (excluding nested literals, which have
// their own nodes) and extracts the summary facts.
func summarize(n *Node) *Summary {
	s := &Summary{}
	info := unitInfo(n)
	s.CtxParam = ctxParamName(n)
	s.JoinerParam = hasJoinerParam(n, info)
	body := n.Body()
	if body == nil {
		return s
	}
	w := &summaryWalker{s: s, info: info, fnPos: n.Pos(), fnEnd: bodyEnd(n)}
	w.walkStmts(body.List, walkCtx{})
	return s
}

func unitInfo(n *Node) *types.Info {
	if n.Unit == nil {
		return nil
	}
	return n.Unit.Info
}

func bodyEnd(n *Node) token.Pos {
	if b := n.Body(); b != nil {
		return b.End()
	}
	return token.NoPos
}

// walkCtx carries path condition facts down the statement walk.
type walkCtx struct {
	// cold marks amortized-growth/failure branches (cap() guard, err != nil,
	// recover()).
	cold bool
	// deferred marks statements executed via defer.
	deferred bool
	// insideSelect suppresses double-counting channel operations that appear
	// as select communications.
	insideSelect bool
}

type summaryWalker struct {
	s            *Summary
	info         *types.Info
	fnPos, fnEnd token.Pos
}

func (w *summaryWalker) walkStmts(stmts []ast.Stmt, c walkCtx) {
	for _, st := range stmts {
		w.walkStmt(st, c)
	}
}

func (w *summaryWalker) walkStmt(st ast.Stmt, c walkCtx) {
	switch x := st.(type) {
	case *ast.BlockStmt:
		w.walkStmts(x.List, c)
	case *ast.IfStmt:
		if x.Init != nil {
			w.walkStmt(x.Init, c)
		}
		w.walkExpr(x.Cond, c)
		branch := c
		if condIsGrowthOrFailure(w.info, x.Cond, x.Init) {
			branch.cold = true
		}
		w.walkStmt(x.Body, branch)
		if x.Else != nil {
			w.walkStmt(x.Else, branch)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			w.walkStmt(x.Init, c)
		}
		if x.Cond != nil {
			w.walkExpr(x.Cond, c)
		}
		if x.Post != nil {
			w.walkStmt(x.Post, c)
		}
		w.walkStmt(x.Body, c)
	case *ast.RangeStmt:
		w.walkExpr(x.X, c)
		w.walkStmt(x.Body, c)
	case *ast.SwitchStmt:
		if x.Init != nil {
			w.walkStmt(x.Init, c)
		}
		if x.Tag != nil {
			w.walkExpr(x.Tag, c)
		}
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.walkExpr(e, c)
				}
				w.walkStmts(cc.Body, c)
			}
		}
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			w.walkStmt(x.Init, c)
		}
		w.walkStmt(x.Assign, c)
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, c)
			}
		}
	case *ast.SelectStmt:
		blocking := true
		for _, cl := range x.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm == nil {
				blocking = false
				continue
			}
		}
		if blocking {
			w.s.Blocks = append(w.s.Blocks, BlockOp{Pos: x.Pos(), Desc: "blocking select"})
		}
		inner := c
		inner.insideSelect = true
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.walkStmt(cc.Comm, inner)
				}
				w.walkStmts(cc.Body, c)
			}
		}
	case *ast.SendStmt:
		if !c.insideSelect {
			w.s.Blocks = append(w.s.Blocks, BlockOp{Pos: x.Pos(), Desc: "channel send " + types.ExprString(x.Chan) + " <-"})
		}
		w.walkExpr(x.Chan, c)
		w.walkExpr(x.Value, c)
	case *ast.GoStmt:
		w.s.GoSpawns = append(w.s.GoSpawns, x.Pos())
		w.walkExpr(x.Call, c)
	case *ast.DeferStmt:
		d := c
		d.deferred = true
		w.walkExpr(x.Call, d)
	case *ast.ExprStmt:
		w.walkExpr(x.X, c)
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			w.walkAssignedExpr(x, r, c)
		}
		for _, l := range x.Lhs {
			w.walkExpr(l, c)
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			w.walkExpr(r, c)
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.walkExpr(v, c)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(x.Stmt, c)
	case *ast.IncDecStmt:
		w.walkExpr(x.X, c)
	}
}

// walkAssignedExpr handles RHS expressions of assignments so append's
// self-feeding form can be recognized against the LHS.
func (w *summaryWalker) walkAssignedExpr(as *ast.AssignStmt, e ast.Expr, c walkCtx) {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && w.isBuiltin(id) {
			// x = append(x, ...) is amortized growth into a retained buffer:
			// steady state allocates nothing. Any other destination keeps the
			// freshly grown backing array alive as a new value.
			if len(call.Args) > 0 && len(as.Lhs) == 1 &&
				types.ExprString(as.Lhs[0]) == types.ExprString(sliceBase(call.Args[0])) {
				for _, a := range call.Args[1:] {
					w.walkExpr(a, c)
				}
				return
			}
		}
	}
	w.walkExpr(e, c)
}

// sliceBase strips one slicing operation so append(x[:n], ...) is compared
// against x: re-slicing grows into the same backing array as the bare form.
func sliceBase(e ast.Expr) ast.Expr {
	if s, ok := ast.Unparen(e).(*ast.SliceExpr); ok {
		return s.X
	}
	return e
}

func (w *summaryWalker) walkExpr(e ast.Expr, c walkCtx) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(x ast.Node) bool {
		switch n := x.(type) {
		case *ast.FuncLit:
			// Captured-variable literals allocate their environment unless
			// the literal is immediately invoked or deferred (open-coded).
			if !c.deferred && !isImmediatelyInvoked(e, n) && w.captures(n) {
				w.s.Allocs = append(w.s.Allocs, Alloc{
					Pos: n.Pos(), Kind: AllocClosure,
					Desc: "closure capturing enclosing variables", Cold: c.cold,
				})
			}
			return false // literal bodies belong to their own nodes
		case *ast.CallExpr:
			w.visitCall(n, c)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !c.insideSelect {
				w.s.Blocks = append(w.s.Blocks, BlockOp{Pos: n.Pos(), Desc: "channel receive <-" + types.ExprString(n.X)})
			}
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					w.s.Allocs = append(w.s.Allocs, Alloc{
						Pos: n.Pos(), Kind: AllocLit,
						Desc: "&" + types.ExprString(lit.Type) + "{...} escapes to the heap", Cold: c.cold,
					})
					// Still record allocating sub-expressions of the literal.
				}
			}
		case *ast.CompositeLit:
			if w.isMapOrSliceLit(n) {
				w.s.Allocs = append(w.s.Allocs, Alloc{
					Pos: n.Pos(), Kind: AllocLit,
					Desc: typeDesc(n.Type) + " literal", Cold: c.cold,
				})
			}
		}
		return true
	})
}

// visitCall records allocation, locking, and blocking facts of one call.
func (w *summaryWalker) visitCall(call *ast.CallExpr, c walkCtx) {
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.Ident:
		if w.isBuiltin(f) {
			switch f.Name {
			case "make":
				w.s.Allocs = append(w.s.Allocs, Alloc{
					Pos: call.Pos(), Kind: AllocMake,
					Desc: types.ExprString(call), Cold: c.cold,
				})
			case "new":
				w.s.Allocs = append(w.s.Allocs, Alloc{
					Pos: call.Pos(), Kind: AllocNew,
					Desc: types.ExprString(call), Cold: c.cold,
				})
			case "append":
				// Bare (non-self-feeding) append reached outside the
				// AssignStmt fast path: the result escapes somewhere else.
				w.s.Allocs = append(w.s.Allocs, Alloc{
					Pos: call.Pos(), Kind: AllocAppend,
					Desc: "append result flows to a new destination", Cold: c.cold,
				})
			}
			return
		}
		// Conversion T(x)? Identified by a type object.
		if w.info != nil {
			if _, ok := w.info.Uses[f].(*types.TypeName); ok {
				w.visitConversion(call, c)
				return
			}
		}
	case *ast.SelectorExpr:
		// visitSelectorCall owns boxing for its call so that recognized
		// operations (lock ops, fmt, joins) can opt out of double-counting.
		w.visitSelectorCall(call, f, c)
		return
	case *ast.ArrayType, *ast.MapType:
		// conversion to slice/map type spelled structurally, e.g. []byte(s)
		w.visitConversion(call, c)
	}
	w.visitBoxing(call, c)
}

// visitConversion flags string <-> byte/rune slice conversions.
func (w *summaryWalker) visitConversion(call *ast.CallExpr, c walkCtx) {
	if w.info == nil || len(call.Args) != 1 {
		return
	}
	to := w.info.TypeOf(call.Fun)
	from := w.info.TypeOf(call.Args[0])
	if to == nil || from == nil {
		return
	}
	toS, fromS := to.Underlying().String(), from.Underlying().String()
	isStr := func(s string) bool { return s == "string" }
	isBytes := func(s string) bool { return s == "[]byte" || s == "[]uint8" || s == "[]rune" || s == "[]int32" }
	if (isStr(toS) && isBytes(fromS)) || (isBytes(toS) && isStr(fromS)) {
		w.s.Allocs = append(w.s.Allocs, Alloc{
			Pos: call.Pos(), Kind: AllocConvert,
			Desc: types.ExprString(call.Fun) + " conversion copies", Cold: c.cold,
		})
	}
}

// lockMethods and joinMethods drive the selector-call classification.
var lockMethods = map[string]bool{"Lock": true, "Unlock": true, "RLock": true, "RUnlock": true, "TryLock": true, "TryRLock": true}

var joinerMethods = map[string]bool{"Add": true, "Done": true, "Wait": true, "Go": true}

var poolJoinMethods = map[string]bool{"Dispatch": true, "DispatchTraced": true, "Close": true, "Wait": true}

func (w *summaryWalker) visitSelectorCall(call *ast.CallExpr, sel *ast.SelectorExpr, c walkCtx) {
	name := sel.Sel.Name
	recvType := ""
	if w.info != nil {
		if t := w.info.TypeOf(sel.X); t != nil {
			recvType = t.String()
		}
	}
	switch {
	case lockMethods[name] && isMutexType(recvType):
		op := name
		if strings.HasPrefix(op, "Try") {
			op = strings.TrimPrefix(op, "Try")
		}
		w.s.LockOps = append(w.s.LockOps, LockOp{
			Pos: call.Pos(), Lock: lockIdentity(w.info, sel.X), Op: op, Deferred: c.deferred,
		})
		return
	case joinerMethods[name] && isJoinerTypeString(recvType):
		w.s.Joins = true
		if name == "Wait" {
			w.s.Blocks = append(w.s.Blocks, BlockOp{Pos: call.Pos(), Desc: types.ExprString(sel.X) + ".Wait()"})
		}
		return
	case poolJoinMethods[name] && strings.Contains(recvType, "sched.Pool"):
		w.s.Joins = true
		return
	}
	// Blocking stdlib calls worth modeling explicitly.
	if pkgPath := w.selectorPkg(sel); pkgPath != "" {
		switch {
		case pkgPath == "time" && name == "Sleep":
			w.s.Blocks = append(w.s.Blocks, BlockOp{Pos: call.Pos(), Desc: "time.Sleep"})
			return
		case strings.HasPrefix(pkgPath, "fmt"):
			w.s.Allocs = append(w.s.Allocs, Alloc{
				Pos: call.Pos(), Kind: AllocFmt,
				Desc: "fmt." + name + " formats and boxes its arguments", Cold: c.cold,
			})
			return
		}
	}
	if httpBlockingMethods[name] && strings.Contains(recvType, "net/http") {
		w.s.Blocks = append(w.s.Blocks, BlockOp{Pos: call.Pos(), Desc: "HTTP round trip via " + name})
	}
	if name == "Wait" && strings.Contains(recvType, "sync.Cond") {
		w.s.Blocks = append(w.s.Blocks, BlockOp{Pos: call.Pos(), Desc: "sync.Cond Wait"})
	}
	w.visitBoxing(call, c)
}

var httpBlockingMethods = map[string]bool{"Do": true, "RoundTrip": true, "Get": true, "Head": true, "Post": true, "PostForm": true}

// visitBoxing flags concrete values passed to interface{}/any (variadic or
// plain) parameters — the paper-relevant "boxing via fmt/any" allocation.
func (w *summaryWalker) visitBoxing(call *ast.CallExpr, c walkCtx) {
	if w.info == nil {
		return
	}
	ft := w.info.TypeOf(call.Fun)
	if ft == nil {
		return
	}
	sig, ok := ft.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		if i < params.Len() {
			pt = params.At(i).Type()
		} else if sig.Variadic() && params.Len() > 0 {
			pt = params.At(params.Len() - 1).Type()
		}
		if pt == nil {
			continue
		}
		if sl, ok := pt.(*types.Slice); ok && (sig.Variadic() && i >= params.Len()-1) {
			pt = sl.Elem()
		}
		iface, ok := pt.Underlying().(*types.Interface)
		if !ok || !iface.Empty() {
			continue
		}
		at := w.info.TypeOf(arg)
		if at == nil {
			continue
		}
		if _, isIface := at.Underlying().(*types.Interface); isIface {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
			continue // untyped constants box into static data
		}
		w.s.Allocs = append(w.s.Allocs, Alloc{
			Pos: arg.Pos(), Kind: AllocBox,
			Desc: types.ExprString(arg) + " boxes into an any parameter", Cold: c.cold,
		})
	}
}

func (w *summaryWalker) selectorPkg(sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok || w.info == nil {
		return ""
	}
	if pn, ok := w.info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

func (w *summaryWalker) isBuiltin(id *ast.Ident) bool {
	if w.info == nil {
		return true
	}
	obj := w.info.Uses[id]
	if obj == nil {
		return true
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// captures reports whether lit references a variable declared outside the
// literal but inside the enclosing function — the condition under which its
// environment must be heap-allocated.
func (w *summaryWalker) captures(lit *ast.FuncLit) bool {
	if w.info == nil {
		return true // assume the worst without types
	}
	found := false
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		if found {
			return false
		}
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		obj := w.info.Uses[id]
		if obj == nil {
			return true
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		p := obj.Pos()
		if p >= w.fnPos && p < w.fnEnd && (p < lit.Pos() || p >= lit.End()) {
			found = true
			return false
		}
		return true
	})
	return found
}

func (w *summaryWalker) isMapOrSliceLit(lit *ast.CompositeLit) bool {
	if w.info == nil {
		switch lit.Type.(type) {
		case *ast.MapType:
			return true
		case *ast.ArrayType:
			at := lit.Type.(*ast.ArrayType)
			return at.Len == nil // slice literal; arrays are values
		}
		return false
	}
	t := w.info.TypeOf(lit)
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Map, *types.Slice:
		return true
	}
	return false
}

// isImmediatelyInvoked reports whether lit is the called function of a call
// expression within root — func(){...}() does not escape.
func isImmediatelyInvoked(root ast.Expr, lit *ast.FuncLit) bool {
	invoked := false
	ast.Inspect(root, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			if ast.Unparen(call.Fun) == lit {
				invoked = true
				return false
			}
		}
		return true
	})
	return invoked
}

// condIsGrowthOrFailure classifies branch conditions that mark cold paths:
// capacity growth (cap() in the condition), error handling (err != nil), and
// panic recovery (recover() in the condition or its init).
func condIsGrowthOrFailure(info *types.Info, cond ast.Expr, init ast.Stmt) bool {
	found := false
	check := func(x ast.Node) bool {
		if found {
			return false
		}
		switch n := x.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if id.Name == "cap" || id.Name == "recover" {
					found = true
					return false
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.NEQ || n.Op == token.EQL {
				if isErrorNilCompare(info, n) {
					found = true
					return false
				}
			}
		}
		return true
	}
	if cond != nil {
		ast.Inspect(cond, check)
	}
	if init != nil && !found {
		ast.Inspect(init, check)
	}
	return found
}

func isErrorNilCompare(info *types.Info, b *ast.BinaryExpr) bool {
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	var other ast.Expr
	switch {
	case isNil(b.X):
		other = b.Y
	case isNil(b.Y):
		other = b.X
	default:
		return false
	}
	if info == nil {
		return false
	}
	t := info.TypeOf(other)
	return t != nil && t.String() == "error"
}

// isMutexType reports whether a printed type names a sync mutex.
func isMutexType(s string) bool {
	return strings.Contains(s, "sync.Mutex") || strings.Contains(s, "sync.RWMutex")
}

// isJoinerTypeString reports WaitGroup/errgroup types by printed name.
func isJoinerTypeString(s string) bool {
	return strings.Contains(s, "sync.WaitGroup") || strings.Contains(s, "errgroup.Group")
}

// lockIdentity derives a stable cross-function identity for a mutex
// expression: the named type owning the final field plus the field name
// ("serve.Queue.mu"), a package-level variable ("serve.globalMu"), or a
// declaration-position key for locals.
func lockIdentity(info *types.Info, e ast.Expr) string {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if info != nil {
			if t := info.TypeOf(x.X); t != nil {
				return namedTypeString(t) + "." + x.Sel.Name
			}
		}
		return types.ExprString(x)
	case *ast.Ident:
		if info != nil {
			if obj := info.Uses[x]; obj != nil {
				if v, ok := obj.(*types.Var); ok {
					if v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
						return v.Pkg().Name() + "." + x.Name
					}
				}
				return fmt.Sprintf("local.%s@%d", x.Name, obj.Pos())
			}
		}
		return x.Name
	}
	return types.ExprString(e)
}

// namedTypeString renders the named type of t (stripping pointers) as
// "pkg.Type".
func namedTypeString(t types.Type) string {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			return obj.Pkg().Name() + "." + obj.Name()
		}
		return obj.Name()
	}
	return t.String()
}

// ctxParamName returns the name of the node's context.Context parameter.
func ctxParamName(n *Node) string {
	ft := n.FuncType()
	if ft == nil || ft.Params == nil {
		return ""
	}
	info := unitInfo(n)
	for _, field := range ft.Params.List {
		isCtx := false
		if info != nil {
			if t := info.TypeOf(field.Type); t != nil && t.String() == "context.Context" {
				isCtx = true
			}
		}
		if !isCtx {
			if sel, ok := field.Type.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == "context" && sel.Sel.Name == "Context" {
					isCtx = true
				}
			}
		}
		if !isCtx {
			continue
		}
		if len(field.Names) > 0 {
			return field.Names[0].Name
		}
		return ""
	}
	return ""
}

// hasJoinerParam reports a WaitGroup/errgroup-typed parameter.
func hasJoinerParam(n *Node, info *types.Info) bool {
	ft := n.FuncType()
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if info != nil {
			if t := info.TypeOf(field.Type); t != nil && isJoinerTypeString(t.String()) {
				return true
			}
		}
		if isJoinerTypeString(types.ExprString(field.Type)) {
			return true
		}
	}
	return false
}

func typeDesc(t ast.Expr) string {
	if t == nil {
		return "composite"
	}
	return types.ExprString(t)
}
