package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and (best-effort) type-checked package.
type Package struct {
	// Path is the import path; for directories outside a module it is the
	// package name.
	Path string
	// Name is the package name from the package clauses.
	Name string
	// Dir is the absolute directory the files came from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	// Types is the type-checked package object; non-nil even when the
	// package has type errors (go/types checks as much as it can).
	Types *types.Package
	// Info is the expression/object resolution for Files.
	Info *types.Info
	// TypeErrors collects type-checking problems. The analyzers run
	// regardless — a half-typed package still supports most syntactic
	// checks — but the driver surfaces them at high verbosity.
	TypeErrors []error
}

// Loader parses and type-checks packages from source with no toolchain
// dependencies beyond GOROOT: standard-library imports resolve through the
// stdlib source importer, and imports under the enclosing module path
// resolve recursively within the module tree. The go.mod of this repository
// declares no requirements, so those two cases are exhaustive; an import
// that is neither is type-checked as missing (a recorded TypeError, not a
// crash).
type Loader struct {
	Fset *token.FileSet
	// ModulePath and ModuleRoot describe the enclosing module ("" outside
	// one, e.g. for analysistest fixtures).
	ModulePath string
	ModuleRoot string

	std    types.Importer
	byPath map[string]*Package
	byDir  map[string]*Package
}

// NewLoader returns a loader rooted at dir's enclosing module (found by
// walking up to the nearest go.mod). dir may be anywhere; with no go.mod
// above it, module-local resolution is disabled.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		byPath: make(map[string]*Package),
		byDir:  make(map[string]*Package),
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			l.ModuleRoot = d
			l.ModulePath = modulePathOf(string(data))
			break
		}
		parent := filepath.Dir(d)
		if parent == d {
			break
		}
		d = parent
	}
	return l, nil
}

// modulePathOf extracts the module path from go.mod content.
func modulePathOf(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// LoadDir loads the package in dir: every non-test .go file, parsed with
// comments, type-checked tolerantly.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.byDir[abs]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("analysis: import cycle through %s", abs)
		}
		return pkg, nil
	}
	l.byDir[abs] = nil // cycle marker
	pkg, err := l.load(abs)
	if err != nil {
		delete(l.byDir, abs)
		return nil, err
	}
	l.byDir[abs] = pkg
	if pkg.Path != "" {
		l.byPath[pkg.Path] = pkg
	}
	return pkg, nil
}

func (l *Loader) load(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", dir)
	}
	sort.Strings(names)

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	pkg := &Package{
		Path: l.importPathOf(dir),
		Name: files[0].Name.Name,
		Dir:  dir,
		Fset: l.Fset,
	}
	if pkg.Path == "" {
		pkg.Path = pkg.Name
	}
	pkg.Files = files
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:         (*loaderImporter)(l),
		FakeImportC:      true,
		IgnoreFuncBodies: false,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	// Check returns an error on any problem, but the Error hook above makes
	// it continue and record as much type information as it can; analyzers
	// work off the partial Info.
	tpkg, _ := conf.Check(pkg.Path, l.Fset, files, pkg.Info)
	pkg.Types = tpkg
	return pkg, nil
}

// importPathOf maps a directory under the module root to its import path.
func (l *Loader) importPathOf(dir string) string {
	if l.ModulePath == "" {
		return ""
	}
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return ""
	}
	if rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// loaderImporter adapts Loader to types.Importer: module-local imports load
// recursively from source, everything else falls through to the stdlib
// source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if pkg, ok := l.byPath[path]; ok && pkg != nil && pkg.Types != nil {
		return pkg.Types, nil
	}
	if l.ModulePath != "" && (path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")) {
		dir := l.ModuleRoot
		if path != l.ModulePath {
			dir = filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath+"/")))
		}
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("analysis: type-checking %s produced no package", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
