// Package analysistest runs an analyzer over fixture packages and compares
// its diagnostics against `// want "regexp"` comments in the fixture source,
// mirroring golang.org/x/tools/go/analysis/analysistest on the standard
// library only.
//
// Fixture layout: <testdata>/src/<pkg>/*.go. Each line that should produce
// diagnostics carries a trailing comment of one or more quoted regular
// expressions:
//
//	for k := range m { // want `iteration over map`
//
// Every diagnostic on a line must be matched by a want on that line and
// vice versa; unmatched either way fails the test. Unused-suppression
// diagnostics produced by the framework participate like any other, which
// is how the suppression contract itself is fixture-tested.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/asamap/asamap/internal/analysis"
)

// Run loads each fixture package under testdata/src and checks a's
// diagnostics against the fixture's want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	RunAnalyzers(t, testdata, []*analysis.Analyzer{a}, pkgs...)
}

// RunAnalyzers is Run with several analyzers over the same fixtures — the
// shape needed to fixture-test cross-analyzer suppression behavior, such as
// per-tag unused reporting on one shared comment.
func RunAnalyzers(t *testing.T, testdata string, analyzers []*analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			loader, err := analysis.NewLoader(dir)
			if err != nil {
				t.Fatalf("loader: %v", err)
			}
			loaded, err := loader.LoadDir(dir)
			if err != nil {
				t.Fatalf("load %s: %v", dir, err)
			}
			// Fixtures are addressed by their bare package name, as with
			// x/tools analysistest's GOPATH layout; this keeps analyzer
			// scope predicates (which treat slash-free paths as fixtures)
			// working even though testdata sits inside the module tree.
			loaded.Path = filepath.Base(dir)
			diags, err := analysis.Run(loaded, analyzers, false)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			checkWants(t, loaded, diags)
		})
	}
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// parseWants extracts expectations from every comment containing "want".
func parseWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[idx+len("want "):], -1) {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return wants
}

func checkWants(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := parseWants(t, pkg)
	for _, d := range diags {
		if !matchWant(wants, d) {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}

func matchWant(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
