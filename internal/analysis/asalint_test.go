package analysis_test

import (
	"path/filepath"
	"runtime"
	"testing"

	"github.com/asamap/asamap/internal/analysis"
	"github.com/asamap/asamap/internal/analysis/analysistest"
)

func TestDetorder(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Detorder, "detorder")
}

func TestEntropy(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Entropy, "entropy")
}

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Ctxflow, "ctxflow")
}

func TestGoexit(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Goexit, "goexit")
}

func TestFingerprint(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Fingerprint, "fingerprint")
}

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Hotalloc, "hotalloc")
}

func TestLockorder(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Lockorder, "lockorder")
}

// TestSuppressionContract proves //asalint:ordered silences exactly one
// line and is reported when it silences nothing (the fixture encodes both).
func TestSuppressionContract(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Detorder, "suppress")
}

// TestSuppressionMultiTagAndExtent proves the two suppression edge cases
// introduced with the interprocedural suite: a comma-shared comment reports
// its unused tags individually, and a suppression above a multi-line
// statement covers every line of that statement but not the next one.
func TestSuppressionMultiTagAndExtent(t *testing.T) {
	analysistest.RunAnalyzers(t, "testdata",
		[]*analysis.Analyzer{analysis.Detorder, analysis.Hotalloc}, "supmulti")
}

// TestSuppressJustification pins the suppress analyzer: every suppression
// comment must say why the silenced site is safe.
func TestSuppressJustification(t *testing.T) {
	analysistest.RunAnalyzers(t, "testdata",
		[]*analysis.Analyzer{analysis.Detorder, analysis.Suppress}, "supjustify")
}

// TestLoaderResolvesModuleImports loads a repository package whose files
// import other module-internal packages and checks the loader type-checked
// it without errors — the property the whole-repo lint run depends on.
func TestLoaderResolvesModuleImports(t *testing.T) {
	dir := repoPath(t, "internal", "metrics")
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if want := "github.com/asamap/asamap/internal/metrics"; pkg.Path != want {
		t.Fatalf("pkg.Path = %q, want %q", pkg.Path, want)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("unexpected type error: %v", terr)
	}
	if pkg.Types == nil || pkg.Info == nil {
		t.Fatalf("missing type information")
	}
}

// TestScopePredicates pins the AppliesTo package routing.
func TestScopePredicates(t *testing.T) {
	in := analysis.PathIn("internal/infomap", "internal/serve")
	if !in("github.com/asamap/asamap/internal/infomap") {
		t.Error("PathIn rejected a listed package")
	}
	if in("github.com/asamap/asamap/internal/dist") {
		t.Error("PathIn accepted an unlisted package")
	}
	if !in("fixturepkg") {
		t.Error("PathIn rejected a fixture package")
	}
	out := analysis.PathNotIn("internal/clock")
	if out("github.com/asamap/asamap/internal/clock") {
		t.Error("PathNotIn accepted an excluded package")
	}
	if !out("github.com/asamap/asamap/internal/infomap") {
		t.Error("PathNotIn rejected an ordinary package")
	}
	if !out("fixturepkg") {
		t.Error("PathNotIn rejected a fixture package")
	}
}

// repoPath resolves a path relative to the repository root from this test
// file's location, so the test is independent of the working directory.
func repoPath(t *testing.T, elem ...string) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(file)))
	return filepath.Join(append([]string{root}, elem...)...)
}
