package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Entropy forbids ambient sources of nondeterminism outside the injectable
// abstractions: time.Now/time.Since must flow through internal/clock (so
// tests can drive time and byte-replay determinism holds), and the global
// math/rand generators are banned everywhere in favor of the seeded
// internal/rng (constructing a locally seeded *rand.Rand via rand.New /
// rand.NewSource is allowed — the seed makes it replayable).
var Entropy = &Analyzer{
	Name: "entropy",
	Doc: "forbid time.Now/time.Since and global math/rand outside internal/clock " +
		"and internal/rng",
	AppliesTo: PathNotIn("internal/clock", "internal/rng"),
	Run:       runEntropy,
}

// entropyTimeFuncs are the wall-clock reads that must come from a
// clock.Clock.
var entropyTimeFuncs = map[string]bool{"Now": true, "Since": true}

// entropyRandOK are math/rand(/v2) package-level names that construct a
// seeded local generator rather than touching the shared global one.
var entropyRandOK = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

func runEntropy(pass *Pass) error {
	// Library code only: package main (CLIs, examples) reports wall time to
	// humans, which is presentation, not algorithm state.
	if pass.PkgName == "main" {
		return nil
	}
	for _, f := range pass.Files {
		imports := packageNames(f)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			path, ok := imports[id.Name]
			if !ok || !refersToPackage(pass, id) {
				return true
			}
			switch path {
			case "time":
				if entropyTimeFuncs[sel.Sel.Name] {
					pass.Reportf(sel.Pos(), "time.%s reads the ambient wall clock; "+
						"inject a clock.Clock (internal/clock) so runs are replayable", sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				if !entropyRandOK[sel.Sel.Name] {
					pass.Reportf(sel.Pos(), "global math/rand.%s is seeded outside this repository's control; "+
						"use the seeded internal/rng generators", sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}

// packageNames maps each file-local package identifier to its import path.
func packageNames(f *ast.File) map[string]string {
	out := make(map[string]string, len(f.Imports))
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := path
		if i := lastSlash(path); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "_" || name == "." {
			continue
		}
		out[name] = path
	}
	return out
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

// refersToPackage reports whether id resolves to a package name (and not a
// local variable shadowing it). Unresolved identifiers are trusted to be the
// import: that only happens in type-broken code or fixtures.
func refersToPackage(pass *Pass, id *ast.Ident) bool {
	if pass.Info == nil {
		return true
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return true
	}
	_, ok := obj.(*types.PkgName)
	return ok
}
