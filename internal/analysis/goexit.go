package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Goexit bans fire-and-forget goroutines in internal packages: every `go`
// statement must be tied to a join protocol visible from the enclosing
// function, so that no goroutine can outlive the call that spawned it.
// Untracked goroutines are how parallel community-detection codebases leak
// workers past cancellation — the scheduler and queue shutdown tests only
// stay meaningful while this invariant holds everywhere.
//
// Evidence accepted within the enclosing function declaration:
//   - a WaitGroup Add/Done/Wait call (typed as sync.WaitGroup, or on a
//     receiver/field whose printed type mentions WaitGroup)
//   - an errgroup.Group Go/Wait call
//   - a sched.Pool Dispatch/DispatchTraced/Close call — the pool joins its
//     workers on Close, so dispatching through it is structured concurrency
//   - a *sync.WaitGroup or errgroup parameter: the caller owns the join and
//     this function spawns on its behalf
//   - a WaitGroup/errgroup value passed to a callee: the join protocol was
//     handed down, the callee's Add/Done/Wait participates in it
//
// The last three let join evidence live across the caller/callee boundary,
// which is why the non-context Run wrappers and pool helpers need no
// suppressions. A goroutine that is genuinely structural (e.g. a daemon
// owned by a struct whose Close joins it in another method) carries
// //asalint:goexit with the name of the joining method as justification.
var Goexit = &Analyzer{
	Name: "goexit",
	Doc:  "require every go statement to be joined via WaitGroup/errgroup/sched.Pool evidence visible from the same function",
	// Internal packages only, per the contract; package main owns the
	// process lifetime and may detach (e.g. signal handlers).
	AppliesTo: func(pkgPath string) bool {
		return !strings.Contains(pkgPath, "/") || strings.Contains(pkgPath, "/internal/")
	},
	Run: runGoexit,
}

func runGoexit(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var gos []*ast.GoStmt
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					gos = append(gos, g)
				}
				return true
			})
			if len(gos) == 0 {
				continue
			}
			if functionJoinsGoroutines(pass, fd) || hasJoinerParam(pass, fd) || handsJoinerToCallee(pass, fd) {
				continue
			}
			for _, g := range gos {
				pass.Reportf(g.Pos(), "go statement in %s is not tied to a sync.WaitGroup, errgroup, or "+
					"sched.Pool in the same function; a fire-and-forget goroutine outlives cancellation "+
					"(justify structural daemons with //asalint:goexit)", fd.Name.Name)
			}
		}
	}
	return nil
}

// joinMethods are method names that constitute lifecycle evidence when
// invoked on a WaitGroup or errgroup value.
var joinMethods = map[string]bool{"Add": true, "Done": true, "Wait": true, "Go": true}

// poolJoinMethods constitute the same evidence on a sched.Pool: the pool
// owns worker lifetime and Close joins them.
var poolJoinMethods = map[string]bool{"Dispatch": true, "DispatchTraced": true, "Close": true, "Wait": true}

// functionJoinsGoroutines reports whether fd contains a join-protocol call.
func functionJoinsGoroutines(pass *Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if joinMethods[sel.Sel.Name] && isJoinerType(pass, sel.X) {
			found = true
			return false
		}
		if poolJoinMethods[sel.Sel.Name] && isPoolType(pass, sel.X) {
			found = true
			return false
		}
		return true
	})
	return found
}

// hasJoinerParam reports whether fd accepts a WaitGroup/errgroup parameter —
// the caller owns the join protocol this function spawns under.
func hasJoinerParam(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if t := pass.TypeOf(field.Type); t != nil {
			if isJoinerTypeName(t.String()) {
				return true
			}
			continue
		}
		if isJoinerTypeName(types.ExprString(field.Type)) {
			return true
		}
	}
	return false
}

// handsJoinerToCallee reports whether fd passes a WaitGroup/errgroup value
// as a call argument, delegating part of the join protocol.
func handsJoinerToCallee(pass *Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			if t := pass.TypeOf(arg); t != nil && isJoinerTypeName(t.String()) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isJoinerTypeName(s string) bool {
	return strings.Contains(s, "sync.WaitGroup") || strings.Contains(s, "errgroup.Group")
}

// isJoinerType reports whether e is (or points to / embeds) a
// sync.WaitGroup or errgroup.Group. When type information is missing, the
// receiver's spelling is consulted: identifiers and selectors whose final
// component mentions "wg", "waitgroup", "eg", or "group" are accepted.
func isJoinerType(pass *Pass, e ast.Expr) bool {
	if t := pass.TypeOf(e); t != nil {
		if isJoinerTypeName(t.String()) {
			return true
		}
		// Typed but something else entirely (e.g. a queue's Add): not join
		// evidence.
		return false
	}
	name := ""
	switch x := e.(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	default:
		return false
	}
	lower := strings.ToLower(name)
	return strings.Contains(lower, "wg") || strings.Contains(lower, "waitgroup") ||
		lower == "eg" || strings.Contains(lower, "group")
}

// isPoolType reports whether e is a sched.Pool (by type, or by spelling when
// untyped).
func isPoolType(pass *Pass, e ast.Expr) bool {
	if t := pass.TypeOf(e); t != nil {
		return strings.Contains(t.String(), "sched.Pool")
	}
	name := ""
	switch x := e.(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	default:
		return false
	}
	return strings.Contains(strings.ToLower(name), "pool")
}
