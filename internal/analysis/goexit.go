package analysis

import (
	"go/ast"
	"strings"
)

// Goexit bans fire-and-forget goroutines in internal packages: every `go`
// statement must be tied to a sync.WaitGroup, an errgroup.Group, or the
// sched pool within the same enclosing function, so that no goroutine can
// outlive the call that spawned it. Untracked goroutines are how parallel
// community-detection codebases leak workers past cancellation — the
// scheduler and queue shutdown tests only stay meaningful while this
// invariant holds everywhere.
//
// Evidence accepted within the enclosing function declaration:
//   - a WaitGroup Add/Done/Wait call (typed as sync.WaitGroup, or on a
//     receiver/field whose printed type mentions WaitGroup)
//   - an errgroup.Group Go/Wait call
//
// A goroutine that is genuinely structural (e.g. a daemon owned by a struct
// whose Close joins it in another method) carries //asalint:goexit with the
// name of the joining method as justification.
var Goexit = &Analyzer{
	Name: "goexit",
	Doc:  "require every go statement to be joined via WaitGroup/errgroup in the same function",
	// Internal packages only, per the contract; package main owns the
	// process lifetime and may detach (e.g. signal handlers).
	AppliesTo: func(pkgPath string) bool {
		return !strings.Contains(pkgPath, "/") || strings.Contains(pkgPath, "/internal/")
	},
	Run: runGoexit,
}

func runGoexit(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var gos []*ast.GoStmt
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					gos = append(gos, g)
				}
				return true
			})
			if len(gos) == 0 {
				continue
			}
			if functionJoinsGoroutines(pass, fd) {
				continue
			}
			for _, g := range gos {
				pass.Reportf(g.Pos(), "go statement in %s is not tied to a sync.WaitGroup or errgroup "+
					"in the same function; a fire-and-forget goroutine outlives cancellation "+
					"(justify structural daemons with //asalint:goexit)", fd.Name.Name)
			}
		}
	}
	return nil
}

// joinMethods are method names that constitute lifecycle evidence when
// invoked on a WaitGroup or errgroup value.
var joinMethods = map[string]bool{"Add": true, "Done": true, "Wait": true, "Go": true}

// functionJoinsGoroutines reports whether fd contains a join-protocol call.
func functionJoinsGoroutines(pass *Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !joinMethods[sel.Sel.Name] {
			return true
		}
		if isJoinerType(pass, sel.X) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isJoinerType reports whether e is (or points to / embeds) a
// sync.WaitGroup or errgroup.Group. When type information is missing, the
// receiver's spelling is consulted: identifiers and selectors whose final
// component mentions "wg", "waitgroup", "eg", or "group" are accepted.
func isJoinerType(pass *Pass, e ast.Expr) bool {
	if t := pass.TypeOf(e); t != nil {
		s := t.String()
		if strings.Contains(s, "sync.WaitGroup") || strings.Contains(s, "errgroup.Group") {
			return true
		}
		// Typed but something else entirely (e.g. testing.T's Done? no such
		// method — but a queue's Add): not join evidence.
		return false
	}
	name := ""
	switch x := e.(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	default:
		return false
	}
	lower := strings.ToLower(name)
	return strings.Contains(lower, "wg") || strings.Contains(lower, "waitgroup") ||
		lower == "eg" || strings.Contains(lower, "group")
}
