// Package fingerprint is an analysistest fixture for the fingerprint
// analyzer.
package fingerprint

import "fmt"

// Options mirrors the shape of infomap.Options: some fields hashed, some
// justified as excluded, one forgotten.
type Options struct {
	Seed    uint64
	Damping float64
	Workers int
	Stale   int // want `Options.Stale is hashed by neither Fingerprint nor fingerprintExcluded`
}

// fingerprintExcluded is the explicit exclusion list the analyzer audits.
var fingerprintExcluded = map[string]string{
	"Workers": "results are bit-identical across worker counts",
	"Gone":    "field was removed", // want `fingerprintExcluded lists "Gone", which is not a field of Options`
	"Damping": "", // want `Options.Damping is both hashed in Fingerprint and listed in fingerprintExcluded`
}

// Fingerprint hashes the result-relevant fields.
func (o Options) Fingerprint() string {
	return fmt.Sprintf("%d/%g", o.Seed, o.Damping)
}
