package goexit

import "github.com/asamap/asamap/internal/sched"

// dispatchesThroughPool spawns a helper goroutine alongside pool work; the
// pool owns its workers' lifetime (Close joins them), so dispatching through
// it in the same function is accepted structured-concurrency evidence.
func dispatchesThroughPool(p *sched.Pool, bounds []int) error {
	go work()
	_, err := p.Dispatch(bounds, sched.Steal, func(worker, block, lo, hi int) error { return nil })
	return err
}
