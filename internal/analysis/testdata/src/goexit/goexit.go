// Package goexit is an analysistest fixture for the goexit analyzer.
package goexit

import "sync"

func work() {}

// fireAndForget spawns a goroutine nothing ever joins.
func fireAndForget() {
	go work() // want `go statement in fireAndForget is not tied to a sync.WaitGroup`
}

// fireAndForgetClosure is the same defect with a closure.
func fireAndForgetClosure() {
	done := make(chan struct{})
	go func() { // want `go statement in fireAndForgetClosure is not tied to a sync.WaitGroup`
		defer close(done)
		work()
	}()
}

// joined ties the goroutine to a WaitGroup in the same function.
func joined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// pooled mirrors the sched.Pool shape: Add in the spawning function, Done
// inside the worker body.
type pooled struct {
	done sync.WaitGroup
}

func (p *pooled) start(n int) {
	p.done.Add(n)
	for i := 0; i < n; i++ {
		go p.loop()
	}
}

func (p *pooled) loop() { defer p.done.Done(); work() }

// structuralDaemon is joined elsewhere (a Close method) and says so.
func structuralDaemon() {
	//asalint:goexit joined by the owner's Close via the run channel
	go work()
}

// spawnsUnderCallerJoin has a *sync.WaitGroup parameter: the caller owns the
// join protocol and this function spawns on its behalf.
func spawnsUnderCallerJoin(wg *sync.WaitGroup) {
	go work()
}

// handsJoinProtocolDown passes its WaitGroup to a callee that performs the
// Add/Done on its behalf: the join evidence was handed down.
func handsJoinProtocolDown(spawn func(*sync.WaitGroup)) {
	var wg sync.WaitGroup
	spawn(&wg)
	go work()
}
