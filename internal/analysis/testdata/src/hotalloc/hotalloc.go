// Package hotalloc is an analysistest fixture for the hotalloc analyzer:
// //asalint:hotroot marks hot-path roots, every function reachable from a
// root through the call graph is on the hot path, steady-state allocation
// sites inside it are reported, and cold branches (cap guards), self-feeding
// appends, and justified suppressions are exempt.
package hotalloc

type kv struct {
	Key   uint32
	Value float64
}

//asalint:hotroot fixture steady-state loop
func Root(buf []kv, n int) []kv {
	tmp := make([]kv, n) // want `make on hot path: make\(\[\]kv, n\) \(inside hot root hotalloc\.Root\)`
	copy(buf, tmp)
	buf = grow(buf)
	return buf
}

// grow carries no directive of its own: it is pulled onto the hot path
// through the call edge from Root.
func grow(buf []kv) []kv {
	extra := new(kv) // want `new on hot path: new\(kv\) \(reachable from hot root hotalloc\.Root\)`
	buf = append(buf, *extra)
	return buf
}

//asalint:hotroot amortized growth: the cap guard marks the cold branch
func ColdGrow(buf []kv, n int) []kv {
	if cap(buf) < n {
		buf = make([]kv, len(buf), n)
	}
	return buf
}

//asalint:hotroot self-feeding append is amortized growth, not an allocation site
func SelfAppend(buf []kv, v kv) []kv {
	buf = append(buf, v)
	buf = append(buf[:len(buf)-1], v)
	return buf
}

// offPath is unreachable from every root, so it may allocate freely.
func offPath() []kv {
	return []kv{{Key: 1}}
}

//asalint:hotroot justified-exemption root
func Justified() *kv {
	//asalint:hotalloc fixture exemption: this escape is deliberate and measured
	return &kv{Key: 1}
}
