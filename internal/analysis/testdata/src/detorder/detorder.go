// Package detorder is an analysistest fixture for the detorder analyzer.
package detorder

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// appendFromMap feeds map iteration order straight into a slice.
func appendFromMap(m map[string]int) []string {
	var out []string
	for k := range m { // want `iteration over map m appends to a slice`
		out = append(out, k)
	}
	return out
}

// floatAccum accumulates floating-point state in map order.
func floatAccum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `accumulates floating-point state with \+=`
		total += v
	}
	return total
}

// floatAccumSpelled uses the spelled-out x = x + v form.
func floatAccumSpelled(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `accumulates floating-point state with \+`
		total = total + v
	}
	return total
}

// stringAccum builds a string in map order.
func stringAccum(m map[int]string) string {
	s := ""
	for _, v := range m { // want `accumulates string state with \+=`
		s += v
	}
	return s
}

// channelSend leaks map order through a channel.
func channelSend(m map[string]int, ch chan string) {
	for k := range m { // want `sends on a channel`
		ch <- k
	}
}

// writesOutput prints in map order.
func writesOutput(w io.Writer, m map[string]int) {
	for k, v := range m { // want `writes output via Fprintf`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// writerMethod writes through a strings.Builder.
func writerMethod(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `writes output via WriteString`
		b.WriteString(k)
	}
	return b.String()
}

// intAccum is clean: integer addition is exact and commutative, so the
// iteration order cannot change the result.
func intAccum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// mapToMap is clean: keyed writes into another map commute across keys.
func mapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// sliceRange is clean: ranging a slice is deterministic.
func sliceRange(s []float64) float64 {
	total := 0.0
	for _, v := range s {
		total += v
	}
	return total
}

// sortedEmission is the canonical fix: collect keys under a justified
// suppression (the one pattern that must touch map order), sort, then emit
// deterministically from the sorted slice.
func sortedEmission(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m { //asalint:ordered keys are sorted before any output below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}
