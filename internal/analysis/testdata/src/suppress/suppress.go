// Package suppress is an analysistest fixture for the suppression contract:
// //asalint:<tag> silences exactly the diagnostics on its own line (or the
// line below a full-line comment), and a suppression that silences nothing
// is itself reported.
package suppress

// silencedSameLine carries a justified suppression on the offending line.
func silencedSameLine(m map[string]int) []string {
	var out []string
	for k := range m { //asalint:ordered out is sorted by the caller before use
		out = append(out, k)
	}
	return out
}

// silencedLineAbove uses a full-line comment directly above the statement.
func silencedLineAbove(m map[string]int) []string {
	var out []string
	//asalint:ordered out is deduplicated into a set downstream
	for k := range m {
		out = append(out, k)
	}
	return out
}

// silencesExactlyOneLine shows the suppression does not leak to other
// statements: the second loop is still reported.
func silencesExactlyOneLine(m map[string]int) ([]string, []string) {
	var a, b []string
	for k := range m { //asalint:ordered a is order-insensitive (set semantics)
		a = append(a, k)
	}
	for k := range m { // want `iteration over map m appends to a slice`
		b = append(b, k)
	}
	return a, b
}

// unusedSuppression sits on a clean line: integer accumulation is exempt,
// so the comment silences nothing and is flagged as stale.
func unusedSuppression(m map[string]int) int {
	n := 0
	for _, v := range m { //asalint:ordered stale justification // want `unused //asalint:ordered suppression: the line is clean`
		n += v
	}
	return n
}

// unknownTag is caught before it can instill false confidence.
func unknownTag(m map[string]int) int {
	n := 0
	for _, v := range m { //asalint:determinism typo of a real tag // want `unknown suppression tag "determinism"`
		n += v
	}
	return n
}
