// Package ctxflow is an analysistest fixture for the ctxflow analyzer.
package ctxflow

import "context"

// mintsRoot detaches itself from the caller's cancellation.
func mintsRoot() context.Context {
	return context.Background() // want `context.Background\(\) mints a root context`
}

// mintsTODO is the same defect spelled differently.
func mintsTODO() context.Context {
	return context.TODO() // want `context.TODO\(\) mints a root context`
}

// justifiedWrapper is the blessed non-context entry-point pattern.
func justifiedWrapper() context.Context {
	//asalint:ctxflow deliberate non-context convenience entry point
	return context.Background()
}

// Blocked waits on a channel with no way for ctx to preempt it.
func Blocked(ctx context.Context, ch chan int) int {
	select { // want `blocking select in exported Blocked has no <-ctx.Done\(\) case`
	case v := <-ch:
		return v
	}
}

// Preemptible observes ctx in the same select.
func Preemptible(ctx context.Context, ch chan int) (int, error) {
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// NonBlocking has a default clause, so it cannot stall.
func NonBlocking(ctx context.Context, ch chan int) bool {
	select {
	case ch <- 1:
		return true
	default:
		return false
	}
}

// unexportedBlocked is unexported and unreachable from any exported
// context-taking function, so the select rule does not bind it.
func unexportedBlocked(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	}
}

// NoCtx takes no context, so the select rule does not apply.
func NoCtx(ch chan int) int {
	select {
	case v := <-ch:
		return v
	}
}

// Run delegates to its *Context twin inside a return statement — the blessed
// non-context convenience entry point, exempt without any suppression.
func Run(ch chan int) int {
	return RunContext(context.Background(), ch)
}

// RunContext is the context-taking twin Run delegates to.
func RunContext(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// Laundered pushes its blocking select into an unexported helper; the select
// rule follows the call graph, so the helper is still bound.
func Laundered(ctx context.Context, ch chan int) int {
	return launderedInner(ctx, ch)
}

func launderedInner(ctx context.Context, ch chan int) int {
	select { // want `blocking select in launderedInner \(reachable from exported Laundered\) has no <-ctx\.Done\(\) case`
	case v := <-ch:
		return v
	}
}
