// Package supjustify is an analysistest fixture for the suppress analyzer:
// a suppression that works but never says why is reported, a justified one
// is clean, and bare directives need no justification.
package supjustify

// justified carries a reason: the suppress analyzer is satisfied.
func justified(m map[string]int) []string {
	var out []string
	for k := range m { //asalint:ordered out feeds a set; iteration order is immaterial
		out = append(out, k)
	}
	return out
}

// bare silences detorder but never says why the site is safe, which is the
// failure mode that makes suppressions unreviewable.
func bare(m map[string]int) []string {
	var out []string
	for k := range m { /* want `//asalint:ordered has no justification; state why the silenced site is safe` */ //asalint:ordered
		out = append(out, k)
	}
	return out
}

// Directive comments are instructions, not suppressions; a bare one is fine.
//
//asalint:hotroot
func Directive() {}
