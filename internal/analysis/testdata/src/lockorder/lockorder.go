// Package lockorder is an analysistest fixture for the lockorder analyzer:
// acquisition-order cycles, re-acquired mutexes, locks held across blocking
// operations, the early-unlock-and-return exemption, and justified
// suppressions.
package lockorder

import "sync"

var muA, muB sync.Mutex

// lockAB and lockBA together form an acquisition-order cycle: two goroutines
// running them concurrently can each hold the lock the other wants.
func lockAB() {
	muA.Lock()
	muB.Lock() // want `lock order cycle: lockorder\.muB acquired while lockorder\.muA is held`
	muB.Unlock()
	muA.Unlock()
}

func lockBA() {
	muB.Lock()
	muA.Lock() // want `lock order cycle: lockorder\.muA acquired while lockorder\.muB is held`
	muA.Unlock()
	muB.Unlock()
}

var muC, muD sync.Mutex

// lockCD nests two locks in one global order; a single-direction edge is not
// a cycle.
func lockCD() {
	muC.Lock()
	muD.Lock()
	muD.Unlock()
	muC.Unlock()
}

// reacquire self-deadlocks: sync mutexes are not reentrant.
func reacquire() {
	muC.Lock()
	muC.Lock() // want `lockorder\.muC Locked while already held; sync mutexes are not reentrant`
	muC.Unlock()
	muC.Unlock()
}

type box struct {
	mu sync.Mutex
	ch chan int
	n  int
}

// sendLocked holds the mutex across an unbuffered channel send: a slow
// receiver keeps the lock pinned.
func (b *box) sendLocked(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- v // want `lockorder\.box\.mu held across channel send b\.ch <-; if the channel is full the lock is never released`
}

// earlyUnlock releases before returning on the fast path and before the
// send: the branch-aware walk must not poison the fallthrough path.
func (b *box) earlyUnlock(v int) {
	b.mu.Lock()
	if v < 0 {
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
	b.ch <- v
}

// lockAndCall reaches a second acquisition of the same mutex through a
// static callee: the cross-function view catches what a per-function walk
// cannot.
func (b *box) lockAndCall() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lockAgain() // want `calling lockorder\.\(\*box\)\.lockAgain while holding lockorder\.box\.mu; the callee acquires lockorder\.box\.mu again and self-deadlocks`
}

func (b *box) lockAgain() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

// justified mirrors serve.Queue.Submit: the send is provably non-blocking
// and the suppression says why.
func (b *box) justified(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	//asalint:lockorder ch is buffered to the semaphore capacity, so this send always finds a free slot
	b.ch <- v
}
