// Package supmulti is an analysistest fixture for suppression edge cases:
// one comment may carry several comma-separated tags (each reported
// individually when it silences nothing), and a suppression above a
// multi-line statement covers every line of that statement — but not the
// statement after it.
package supmulti

type kv struct{ Key uint32 }

//asalint:hotroot multi-line statement coverage root
func Lines() [][]kv {
	//asalint:hotalloc one comment covers the whole multi-line statement below
	pairs := [][]kv{
		make([]kv, 1),
		make([]kv, 2),
	}
	next := make([]kv, 3) // want `make on hot path: make\(\[\]kv, 3\) \(inside hot root supmulti\.Lines\)`
	pairs = append(pairs, next)
	return pairs
}

//asalint:hotroot shared-comment root: both tags silence something
func Shared(m map[uint32]kv) [][]kv {
	var out [][]kv
	//asalint:ordered,hotalloc batches are order-insensitive and the per-batch buffers are measured cold
	for k := range m {
		out = append(out, make([]kv, int(k)))
	}
	return out
}

// PartlyStale shares one comment between a tag that fires and one that does
// not: the stale half is reported by itself.
func PartlyStale(m map[uint32]kv) []kv {
	var out []kv
	//asalint:ordered,hotalloc the iteration feeds a set; growth is amortized // want `unused //asalint:hotalloc suppression: the line is clean`
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
