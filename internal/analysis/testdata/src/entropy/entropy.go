// Package entropy is an analysistest fixture for the entropy analyzer.
package entropy

import (
	"math/rand"
	"time"
	wall "time"
)

// readsClock reads ambient wall time two ways.
func readsClock() time.Duration {
	start := time.Now() // want `time.Now reads the ambient wall clock`
	return time.Since(start) // want `time.Since reads the ambient wall clock`
}

// aliasedImport still resolves to the time package.
func aliasedImport() wall.Time {
	return wall.Now() // want `time.Now reads the ambient wall clock`
}

// sleeps is clean: time.Sleep does not read the clock into program state,
// and constructing durations is pure arithmetic.
func sleeps() {
	time.Sleep(time.Millisecond)
}

// globalRand draws from the shared, ambiently seeded generator.
func globalRand() int {
	rand.Shuffle(3, func(i, j int) {}) // want `global math/rand.Shuffle`
	return rand.Intn(10) // want `global math/rand.Intn`
}

// localRand is clean: a locally constructed, explicitly seeded generator is
// replayable, which is the property the contract protects.
func localRand() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(10)
}
