package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// suppression is one //asalint:<tag> comment awaiting a diagnostic to
// silence.
type suppression struct {
	tag  string
	pos  token.Position
	used bool
}

// suppressions indexes the suppression comments of one package by file and
// line.
type suppressions struct {
	all []*suppression
	// byLine maps filename -> line -> suppressions written on that line.
	byLine map[string]map[int][]*suppression
}

// collectSuppressions scans every comment in files for //asalint:<tag>
// markers. The marker must start the comment; anything after the tag is the
// human justification and is ignored by the machinery (but not by reviewers).
func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int][]*suppression)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//asalint:")
				if !ok {
					continue
				}
				tag := text
				if i := strings.IndexAny(text, " \t"); i >= 0 {
					tag = text[:i]
				}
				if tag == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				sp := &suppression{tag: tag, pos: pos}
				s.all = append(s.all, sp)
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*suppression)
					s.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], sp)
			}
		}
	}
	return s
}

// silence reports whether a suppression for tag covers the diagnostic
// position — same line (trailing comment) or the line directly above (a
// full-line comment introducing the statement) — and marks it used.
func (s *suppressions) silence(tag string, pos token.Position) bool {
	lines := s.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, sp := range lines[line] {
			if sp.tag == tag {
				sp.used = true
				return true
			}
		}
	}
	return false
}
