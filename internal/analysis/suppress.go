package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// directiveTags are //asalint: markers that are instructions to an analyzer
// (not suppressions): they silence nothing, are never "unused", and are not
// unknown tags. "hotroot" declares a hot-path root for the hotalloc analyzer.
var directiveTags = map[string]bool{"hotroot": true}

// suppression is one tag of one //asalint:<tag>[,<tag>...] comment awaiting a
// diagnostic to silence. A comment listing several comma-separated tags
// produces one record per tag, so used/unused tracking is per-tag.
type suppression struct {
	tag  string
	pos  token.Position
	used bool
}

// suppressions indexes the suppression comments of one package by file and
// covered line.
type suppressions struct {
	all []*suppression
	// byLine maps filename -> line -> suppressions covering that line.
	byLine map[string]map[int][]*suppression
}

// collectSuppressions scans every comment in files for //asalint:<tag>
// markers. The marker must start the comment; anything after the tag list is
// the human justification and is ignored by the machinery (but not by
// reviewers, and not by the suppress analyzer, which requires it to be
// non-empty).
//
// Coverage: a suppression covers its own line and the line below — and when
// either of those lines starts a statement, every line of that statement, so
// a comment above a call wrapped over several lines silences diagnostics
// anywhere inside it.
func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int][]*suppression)}
	extents := statementExtents(fset, files)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//asalint:")
				if !ok {
					continue
				}
				tagPart := text
				if i := strings.IndexAny(text, " \t"); i >= 0 {
					tagPart = text[:i]
				}
				if tagPart == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := coveredLines(extents[pos.Filename], pos.Line)
				for _, tag := range strings.Split(tagPart, ",") {
					tag = strings.TrimSpace(tag)
					if tag == "" || directiveTags[tag] {
						continue
					}
					sp := &suppression{tag: tag, pos: pos}
					s.all = append(s.all, sp)
					byLine := s.byLine[pos.Filename]
					if byLine == nil {
						byLine = make(map[int][]*suppression)
						s.byLine[pos.Filename] = byLine
					}
					for _, line := range lines {
						byLine[line] = append(byLine[line], sp)
					}
				}
			}
		}
	}
	return s
}

// statementExtents maps filename -> statement start line -> last line of the
// outermost statement starting there.
func statementExtents(fset *token.FileSet, files []*ast.File) map[string]map[int]int {
	extents := make(map[string]map[int]int)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(ast.Stmt)
			if !ok {
				return true
			}
			start := fset.Position(st.Pos())
			end := fset.Position(st.End()).Line
			lines := extents[start.Filename]
			if lines == nil {
				lines = make(map[int]int)
				extents[start.Filename] = lines
			}
			if cur, ok := lines[start.Line]; !ok || end > cur {
				lines[start.Line] = end
			}
			return true
		})
	}
	return extents
}

// coveredLines expands a suppression at line into the lines it silences: the
// comment's own line (trailing-comment form) and the line below (full-line
// comment introducing a statement), each widened to the full extent of a
// statement starting there.
func coveredLines(extents map[int]int, line int) []int {
	var out []int
	for _, start := range []int{line, line + 1} {
		end := start
		if e, ok := extents[start]; ok && e > end {
			end = e
		}
		for l := start; l <= end; l++ {
			out = append(out, l)
		}
	}
	return out
}

// silence reports whether a suppression for tag covers the diagnostic
// position and marks it used.
func (s *suppressions) silence(tag string, pos token.Position) bool {
	for _, sp := range s.byLine[pos.Filename][pos.Line] {
		if sp.tag == tag {
			sp.used = true
			return true
		}
	}
	return false
}
