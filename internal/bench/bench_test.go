package bench

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// runExp executes one experiment in quick mode and returns its output.
func runExp(t *testing.T, id string) string {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Run(QuickConfig(), &buf); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	out := buf.String()
	if len(out) == 0 {
		t.Fatalf("%s produced no output", id)
	}
	return out
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestExperimentIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Experiments {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment ID %q", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
	}
	// Every table and figure of the paper's evaluation must be present.
	for _, id := range []string{"table1", "table2", "table3", "table4", "table5",
		"fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11"} {
		if !seen[id] {
			t.Fatalf("paper artifact %s has no runner", id)
		}
	}
}

func TestTable1ListsAllNetworks(t *testing.T) {
	out := runExp(t, "table1")
	for _, name := range []string{"Amazon", "DBLP", "YouTube", "soc-Pokec", "LiveJournal", "Orkut"} {
		if !strings.Contains(out, name) {
			t.Fatalf("table1 missing %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "117185083") {
		t.Fatal("table1 missing the paper's Orkut edge count")
	}
}

func TestTable2ShowsCacheDifference(t *testing.T) {
	out := runExp(t, "table2")
	if !strings.Contains(out, "20MB") || !strings.Contains(out, "16MB") {
		t.Fatalf("table2 must show the 20MB vs 16MB L3 difference:\n%s", out)
	}
}

// parseColumn extracts float values captured by re's first group.
func parseColumn(t *testing.T, out string, re *regexp.Regexp) []float64 {
	t.Helper()
	var vals []float64
	for _, m := range re.FindAllStringSubmatch(out, -1) {
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", m[1], err)
		}
		vals = append(vals, v)
	}
	return vals
}

var speedupRe = regexp.MustCompile(`(\d+\.\d+)x`)

func TestTable5SpeedupInPaperBand(t *testing.T) {
	out := runExp(t, "table5")
	speedups := parseColumn(t, out, speedupRe)
	if len(speedups) != len(table5Networks) {
		t.Fatalf("expected %d speedups, got %v\n%s", len(table5Networks), speedups, out)
	}
	// Paper band 3.28–5.56×, widened for replica noise.
	for i, s := range speedups {
		if s < 2.0 || s > 8.0 {
			t.Fatalf("%s speedup %.2fx outside plausible band (paper: 3.28–5.56x)\n%s",
				table5Networks[i], s, out)
		}
	}
}

func TestFig2HashShareInPaperBand(t *testing.T) {
	out := runExp(t, "fig2")
	re := regexp.MustCompile(`HashOperations (\d+\.\d+)%`)
	shares := parseColumn(t, out, re)
	if len(shares) != 2 {
		t.Fatalf("expected 2 hash shares:\n%s", out)
	}
	for _, s := range shares {
		// Paper: 50–65%; allow slack for replica noise.
		if s < 40 || s > 75 {
			t.Fatalf("hash share %.1f%% far from paper's 50-65%% band\n%s", s, out)
		}
	}
	if !strings.Contains(out, "FindBestCommunity") {
		t.Fatal("fig2 missing kernel breakdown")
	}
}

func TestFig5CoverageShape(t *testing.T) {
	out := runExp(t, "fig5")
	re := regexp.MustCompile(`(\d+\.\d+)%`)
	vals := parseColumn(t, out, re)
	if len(vals) != 6*4 {
		t.Fatalf("expected 24 coverage values, got %d\n%s", len(vals), out)
	}
	// Coverage must be monotone per row and high at 8KB.
	for row := 0; row < 6; row++ {
		for col := 1; col < 4; col++ {
			if vals[row*4+col] < vals[row*4+col-1]-1e-9 {
				t.Fatalf("coverage not monotone in CAM size (row %d):\n%s", row, out)
			}
		}
		if vals[row*4+3] < 95 {
			t.Fatalf("8KB coverage %.2f%% below expectation (paper: >99%%)\n%s", vals[row*4+3], out)
		}
	}
}

func TestFig8ReductionsInPaperBand(t *testing.T) {
	out := runExp(t, "fig8")
	re := regexp.MustCompile(`(\d+\.\d+)%`)
	vals := parseColumn(t, out, re)
	// 3 networks × 3 reductions.
	if len(vals) != 9 {
		t.Fatalf("expected 9 percentages, got %d\n%s", len(vals), out)
	}
	for i := 0; i < len(vals); i += 3 {
		instr, mpred, cpi := vals[i], vals[i+1], vals[i+2]
		if instr < 10 || instr > 45 {
			t.Fatalf("instruction reduction %.1f%% outside band (paper: up to 24%%)\n%s", instr, out)
		}
		if mpred < 35 || mpred > 80 {
			t.Fatalf("misprediction reduction %.1f%% outside band (paper: ~59%%)\n%s", mpred, out)
		}
		if cpi < 10 || cpi > 40 {
			t.Fatalf("CPI reduction %.1f%% outside band (paper: 18-21%%)\n%s", cpi, out)
		}
	}
}

func TestTables3And4Run(t *testing.T) {
	for _, id := range []string{"table3", "table4"} {
		out := runExp(t, id)
		if !strings.Contains(out, "Native (s)") || !strings.Contains(out, "Baseline (s)") {
			t.Fatalf("%s missing columns:\n%s", id, out)
		}
		if !strings.Contains(out, "calibrated") {
			t.Fatalf("%s must disclose calibration:\n%s", id, out)
		}
	}
}

func TestFig6MatchesTable5(t *testing.T) {
	out := runExp(t, "fig6")
	speedups := parseColumn(t, out, speedupRe)
	if len(speedups) != len(table5Networks) {
		t.Fatalf("fig6 rows: %v", speedups)
	}
}

func TestFig7Breakdown(t *testing.T) {
	out := runExp(t, "fig7")
	if !strings.Contains(out, "Amazon") || !strings.Contains(out, "DBLP") {
		t.Fatalf("fig7 missing networks:\n%s", out)
	}
	// Hash-time reduction per row: paper reports 68–77%; the band follows
	// from 1 - 1/speedup, so ~60–85% here.
	re := regexp.MustCompile(`(\d+\.\d+)%`)
	for _, v := range parseColumn(t, out, re) {
		if v < 50 || v > 92 {
			t.Fatalf("hash reduction %.1f%% outside plausible band\n%s", v, out)
		}
	}
}

func TestFigs9Through11(t *testing.T) {
	for _, id := range []string{"fig9", "fig10", "fig11"} {
		out := runExp(t, id)
		if !strings.Contains(out, "cores") || !strings.Contains(out, "Baseline") {
			t.Fatalf("%s output malformed:\n%s", id, out)
		}
	}
}

func TestLFRQuality(t *testing.T) {
	out := runExp(t, "lfr")
	if !strings.Contains(out, "Infomap") || !strings.Contains(out, "Louvain") {
		t.Fatalf("lfr output:\n%s", out)
	}
	// At mu=0.1 Infomap must essentially recover the planted partition.
	re := regexp.MustCompile(`0\.10\s+(\d\.\d+)`)
	vals := parseColumn(t, out, re)
	if len(vals) == 0 || vals[0] < 0.9 {
		t.Fatalf("Infomap NMI at mu=0.1 too low:\n%s", out)
	}
}

func TestSpGEMM(t *testing.T) {
	out := runExp(t, "spgemm")
	if !strings.Contains(out, "softhash") || !strings.Contains(out, "asa") {
		t.Fatalf("spgemm output:\n%s", out)
	}
	re := regexp.MustCompile(`speedup: (\d+\.\d+)x`)
	vals := parseColumn(t, out, re)
	if len(vals) != 1 || vals[0] < 1.2 {
		t.Fatalf("spgemm accumulation speedup %v should favor ASA:\n%s", vals, out)
	}
}

func TestCAMSweepMonotone(t *testing.T) {
	out := runExp(t, "camsweep")
	// Overflow share (the first percentage on each data row) must be
	// non-increasing with CAM size.
	re := regexp.MustCompile(`(?m)^\s*\d+\s+\d+\s+(\d+\.\d+)%`)
	shares := parseColumn(t, out, re)
	if len(shares) < 4 {
		t.Fatalf("camsweep output:\n%s", out)
	}
	for i := 1; i < len(shares); i++ {
		if shares[i] > shares[i-1]+1e-9 {
			t.Fatalf("overflow share not monotone: %v\n%s", shares, out)
		}
	}
}

func TestEvictPolicies(t *testing.T) {
	out := runExp(t, "evict")
	for _, pol := range []string{"LRU", "FIFO", "Random"} {
		if !strings.Contains(out, pol) {
			t.Fatalf("evict missing %s:\n%s", pol, out)
		}
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll is covered per-experiment; skip the full pass in -short")
	}
	var buf bytes.Buffer
	if err := RunAll(QuickConfig(), &buf); err != nil {
		t.Fatal(err)
	}
	for _, e := range Experiments {
		if !strings.Contains(buf.String(), e.ID) {
			t.Fatalf("RunAll output missing %s", e.ID)
		}
	}
}

func TestFmtEng(t *testing.T) {
	cases := map[float64]string{
		5:      "5.00",
		5123:   "5.12K",
		2.4e6:  "2.40M",
		3.1e9:  "3.10G",
		2.4e12: "2.40T",
	}
	for in, want := range cases {
		if got := fmtEng(in); got != want {
			t.Fatalf("fmtEng(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestHierarchyExperiment(t *testing.T) {
	out := runExp(t, "hierarchy")
	if !strings.Contains(out, "hierarchical L") || !strings.Contains(out, "two-level L") {
		t.Fatalf("hierarchy output:\n%s", out)
	}
	if !strings.Contains(out, "recovered the 4 planted super groups") {
		t.Fatalf("hierarchy did not recover planted structure:\n%s", out)
	}
	re := regexp.MustCompile(`gain:\s+(\d+\.\d+)%`)
	gains := parseColumn(t, out, re)
	if len(gains) != 1 || gains[0] <= 0 {
		t.Fatalf("hierarchy gain %v should be positive:\n%s", gains, out)
	}
}

func TestCacheSimExperiment(t *testing.T) {
	out := runExp(t, "cachesim")
	if !strings.Contains(out, "L1 miss rate") || !strings.Contains(out, "ASA on the same arc stream") {
		t.Fatalf("cachesim output:\n%s", out)
	}
	re := regexp.MustCompile(`memory touches\s+(\d+)`)
	m := re.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no memory touches reported:\n%s", out)
	}
	if v, _ := strconv.Atoi(m[1]); v == 0 {
		t.Fatal("zero memory touches")
	}
}
