package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/asamap/asamap/internal/infomap"
	"github.com/asamap/asamap/internal/perf"
)

// AccumSchemaVersion is bumped whenever the BENCH_accum.json layout changes;
// the committed artifact and the schema test must move together.
const AccumSchemaVersion = 1

// accumNetworks are the paper-scale replicas the accumulator sweep runs on.
// soc-Pokec is the skewed-degree workload: its hubs produce the large, dense
// accumulation sessions where chained probing pays per-hop and the
// probe-free resolve is expected to win.
var accumNetworks = []string{"Amazon", "YouTube", "soc-Pokec"}

// accumSkewedNetwork names the workload the hashgraph-vs-softhash acceptance
// comparison is made on.
const accumSkewedNetwork = "soc-Pokec"

// accumKinds is the full backend sweep, gomap (oracle) first so every other
// backend's bit_identical field compares against it.
var accumKinds = []infomap.AccumKind{
	infomap.GoMap, infomap.Baseline, infomap.ASA, infomap.HashGraph,
}

// accumRow is one (network, backend) cell of the accumulator experiment.
type accumRow struct {
	Network    string  `json:"network"`
	Backend    string  `json:"backend"`
	Vertices   int     `json:"vertices"`
	Arcs       int     `json:"arcs"`
	MaxDegree  int     `json:"max_degree"`
	Codelength float64 `json:"codelength"`
	Levels     int     `json:"levels"`
	// Raw accumulator event counters summed over the run.
	Accumulates uint64 `json:"accumulates"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	ChainHops   uint64 `json:"chain_hops"`
	Rehashes    uint64 `json:"rehashes"`
	Evictions   uint64 `json:"evictions"`
	OverflowKV  uint64 `json:"overflow_kv"`
	BinnedKV    uint64 `json:"binned_kv"`
	ScatteredKV uint64 `json:"scattered_kv"`
	BinMergedKV uint64 `json:"bin_merged_kv"`
	GatheredKV  uint64 `json:"gathered_kv"`
	// Modeled hardware counters on the Baseline machine.
	AccumInstructions float64 `json:"accum_instructions"`
	AccumCycles       float64 `json:"accum_cycles"`
	TotalCycles       float64 `json:"total_cycles"`
	CPI               float64 `json:"cpi"`
	// SpeedupVsSofthash is softhash accum-cycles / this backend's
	// accum-cycles on the same network (1.0 for softhash itself).
	SpeedupVsSofthash float64 `json:"speedup_vs_softhash"`
	// BitIdentical: membership and codelength bits match the gomap oracle
	// run on the same network.
	BitIdentical bool `json:"bit_identical"`
}

// accumReport is the BENCH_accum.json artifact.
type accumReport struct {
	Experiment    string     `json:"experiment"`
	SchemaVersion int        `json:"schema_version"`
	Seed          uint64     `json:"seed"`
	Quick         bool       `json:"quick"`
	Workers       int        `json:"workers"`
	Machine       string     `json:"machine"`
	SkewedNetwork string     `json:"skewed_network"`
	Rows          []accumRow `json:"rows"`
}

// runAccum sweeps every accumulator backend over the paper-scale replicas
// and reports raw event counters plus modeled cycles side by side. Runs use
// a single worker so the schedule-dependent counters (softhash chain hops
// and rehashes) are reproducible for a fixed seed, making the committed
// artifact regenerable bit for bit. When cfg.JSONPath is set the
// machine-readable BENCH_accum.json is written there.
func runAccum(cfg Config, w io.Writer) error {
	report := accumReport{
		Experiment:    "accum",
		SchemaVersion: AccumSchemaVersion,
		Seed:          cfg.Seed,
		Quick:         cfg.Quick,
		Workers:       1,
		Machine:       perf.Baseline().Name,
		SkewedNetwork: accumSkewedNetwork,
	}
	fmt.Fprintf(w, "%-10s  %-9s  %9s  %7s  %10s  %9s  %9s  %11s  %11s  %7s  %s\n",
		"network", "backend", "accums", "maxdeg", "chain-hops", "rehashes", "binned",
		"accum-cyc", "total-cyc", "speedup", "identical")
	for _, name := range accumNetworks {
		g, _, err := replica(cfg, name)
		if err != nil {
			return err
		}
		var oracle *infomap.Result
		rows := make([]accumRow, 0, len(accumKinds))
		for _, kind := range accumKinds {
			res, err := runKind(cfg, g, kind, 1)
			if err != nil {
				return err
			}
			if oracle == nil {
				oracle = res
			}
			st := res.TotalStats()
			m, err := modelRun(res, kind, perf.Baseline())
			if err != nil {
				return err
			}
			row := accumRow{
				Network:           name,
				Backend:           accumName(kind),
				Vertices:          g.N(),
				Arcs:              g.M(),
				MaxDegree:         g.MaxDegree(),
				Codelength:        res.Codelength,
				Levels:            res.Levels,
				Accumulates:       st.Accumulates,
				Hits:              st.Hits,
				Misses:            st.Misses,
				ChainHops:         st.ChainHops,
				Rehashes:          st.Rehashes,
				Evictions:         st.Evictions,
				OverflowKV:        st.OverflowKV,
				BinnedKV:          st.BinnedKV,
				ScatteredKV:       st.ScatteredKV,
				BinMergedKV:       st.BinMergedKV,
				GatheredKV:        st.GatheredKV,
				AccumInstructions: m.Hash.Instructions,
				AccumCycles:       m.Hash.Cycles,
				TotalCycles:       m.Total.Cycles,
				CPI:               m.Total.CPI(),
				BitIdentical: sameMembership(oracle.Membership, res.Membership) &&
					res.Codelength == oracle.Codelength,
			}
			if !row.BitIdentical {
				return fmt.Errorf("bench: accum: %s/%s diverged from the gomap oracle",
					row.Network, row.Backend)
			}
			if kind == infomap.HashGraph && (st.ChainHops != 0 || st.Rehashes != 0) {
				return fmt.Errorf("bench: accum: hashgraph reported probe events on %s: %+v",
					row.Network, st)
			}
			rows = append(rows, row)
		}
		var softhashCycles float64
		for _, row := range rows {
			if row.Backend == "softhash" {
				softhashCycles = row.AccumCycles
			}
		}
		for i := range rows {
			row := &rows[i]
			if softhashCycles > 0 && row.AccumCycles > 0 {
				row.SpeedupVsSofthash = softhashCycles / row.AccumCycles
			}
			fmt.Fprintf(w, "%-10s  %-9s  %9s  %7d  %10s  %9d  %9s  %11s  %11s  %6.2fx  %v\n",
				row.Network, row.Backend, fmtEng(float64(row.Accumulates)), row.MaxDegree,
				fmtEng(float64(row.ChainHops)), row.Rehashes, fmtEng(float64(row.BinnedKV)),
				fmtEng(row.AccumCycles), fmtEng(row.TotalCycles), row.SpeedupVsSofthash,
				row.BitIdentical)
		}
		report.Rows = append(report.Rows, rows...)
	}
	if cfg.JSONPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.JSONPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", cfg.JSONPath)
	}
	return nil
}
