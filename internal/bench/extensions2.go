package bench

import (
	"fmt"
	"io"

	"github.com/asamap/asamap/internal/asa"
	"github.com/asamap/asamap/internal/cachesim"
	"github.com/asamap/asamap/internal/dist"
	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/hashtab"
	"github.com/asamap/asamap/internal/infomap"
	"github.com/asamap/asamap/internal/perf"
)

// runHierarchy is extension X5: the hierarchical map equation on a graph
// with planted multi-scale structure, compared against the flat two-level
// solution the paper's HyPC-Map optimizes.
func runHierarchy(cfg Config, w io.Writer) error {
	super, inner, size := 8, 4, 8
	if cfg.Quick {
		super, inner, size = 4, 3, 6
	}
	g, err := nestedBenchmark(super, inner, size)
	if err != nil {
		return err
	}
	opt := infomap.DefaultOptions()
	opt.Seed = cfg.Seed
	res, err := infomap.RunHierarchical(g, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "nested benchmark: %d super groups x %d cliques x %d vertices\n", super, inner, size)
	fmt.Fprintf(w, "two-level L:     %.4f bits (%d leaf modules)\n", res.TwoLevelCodelength, len(res.Leaves()))
	fmt.Fprintf(w, "hierarchical L:  %.4f bits (depth %d, %d modules, %d top groups)\n",
		res.Codelength, res.Depth, res.Modules, len(res.Root.Children))
	fmt.Fprintf(w, "gain:            %.2f%%\n", 100*(1-res.Codelength/res.TwoLevelCodelength))
	if len(res.Root.Children) == super {
		fmt.Fprintf(w, "top level recovered the %d planted super groups\n", super)
	}
	return nil
}

// nestedBenchmark builds a multi-scale test graph: super groups of strongly
// linked cliques, weakly linked to each other in a ring.
func nestedBenchmark(super, inner, size int) (*graph.Graph, error) {
	n := super * inner * size
	b := graph.NewBuilder(n, false)
	for g := 0; g < super; g++ {
		for c := 0; c < inner; c++ {
			base := (g*inner + c) * size
			for i := 0; i < size; i++ {
				for j := i + 1; j < size; j++ {
					if err := b.AddEdge(uint32(base+i), uint32(base+j), 4); err != nil {
						return nil, err
					}
				}
			}
			next := (g*inner + (c+1)%inner) * size
			for i := 0; i < size/2+1; i++ {
				if err := b.AddEdge(uint32(base+i), uint32(next+i), 2); err != nil {
					return nil, err
				}
			}
		}
		from := (g * inner) * size
		to := (((g + 1) % super) * inner) * size
		if err := b.AddEdge(uint32(from), uint32(to+1), 0.5); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// runCacheSim is extension X6: validate the analytic perf model's memory
// assumptions by replaying the software hash table's actual probe address
// stream — from a real FindBestCommunity workload — through a trace-driven
// cache-hierarchy simulator with the paper's Table II Baseline caches.
func runCacheSim(cfg Config, w io.Writer) error {
	g, _, err := replica(cfg, "YouTube")
	if err != nil {
		return err
	}
	hier, err := cachesim.NewHierarchy(16)
	if err != nil {
		return err
	}
	tab := hashtab.New(64)
	tab.SetTracer(func(addr uint64) { hier.Access(addr) })
	cam := asa.MustNew(asa.DefaultConfig())

	// Replay the full memory stream of the vertex-level kernel: the CSR
	// neighbor arrays stream sequentially, the membership array is read at
	// scattered neighbor indices, and the hash table is probed per arc.
	// Interleaving matters: the large graph-side arrays continuously evict
	// table lines, which is exactly the contention the paper's argument
	// rests on. Virtual bases: CSR targets 0x5000_0000 (4B each),
	// membership 0x4000_0000 (4B each); the table traces its own arrays.
	const (
		membershipBase = 0x4000_0000
		csrBase        = 0x5000_0000
	)
	for v := 0; v < g.N(); v++ {
		lo, _ := g.OutRange(v)
		nb := g.OutNeighbors(v)
		if len(nb) == 0 {
			continue
		}
		for j, t := range nb {
			hier.Access(csrBase + uint64(lo+j)*4)     // neighbor ID load (sequential)
			hier.Access(membershipBase + uint64(t)*4) // membership load (scattered)
			tab.Accumulate(t, 1.0)
			cam.Accumulate(t, 1.0)
		}
		tab.Reset()
		cam.Reset()
	}

	model := perf.DefaultModel(perf.Baseline())
	fmt.Fprintf(w, "FindBestCommunity memory stream through Table II caches (YouTube-like replica):\n")
	fmt.Fprintf(w, "  memory touches        %12d (CSR + membership + hash-table probes)\n", hier.Accesses())
	fmt.Fprintf(w, "  L1 miss rate          %11.2f%%\n", 100*hier.BeyondL1MissRate())
	fmt.Fprintf(w, "  deep (to-DRAM) rate   %11.2f%% of L1 misses\n", 100*hier.DeepMissRate())
	fmt.Fprintf(w, "  avg access latency    %11.2f cycles\n", hier.AvgLatency())
	fmt.Fprintf(w, "  model assumes %0.f cycles per deep miss; measured average supports the\n"+
		"  constants used for scattered hash/membership accesses\n", model.Machine.MemMissLatency)
	st := cam.Stats()
	fmt.Fprintf(w, "ASA on the same arc stream: %d accumulates, %d evictions (%.2f%% overflow);\n"+
		"  the CAM adds zero cache traffic, removing the table's share of the misses above\n",
		st.Accumulates, st.Evictions, 100*float64(st.OverflowKV)/float64(st.Accumulates))
	return nil
}

// runDistributed is extension X7: the distributed-memory (HyPC-Map hybrid)
// simulation — rank sweep with communication accounting under the
// alpha-beta model.
func runDistributed(cfg Config, w io.Writer) error {
	g, _, err := replica(cfg, "Amazon")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%6s %10s %12s %12s %14s %12s %10s\n",
		"ranks", "modules", "L (bits)", "supersteps", "updates", "MB moved", "comm (s)")
	for _, ranks := range []int{1, 2, 4, 8, 16} {
		opt := dist.DefaultOptions()
		opt.Ranks = ranks
		opt.Seed = cfg.Seed
		res, err := dist.Run(g, opt)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%6d %10d %12.4f %12d %14d %12.3f %10.6f\n",
			ranks, res.NumModules, res.Codelength, res.Comm.Supersteps,
			res.Comm.UpdatesSent, float64(res.Comm.Bytes)/1e6, res.Comm.ModeledCommSec)
	}
	return nil
}
