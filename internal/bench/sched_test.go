package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestSchedQuick runs the scheduling sweep end to end in quick mode and
// checks the invariants the committed artifact is built on: both policies at
// every worker count, bit-identical membership everywhere (runSched fails
// hard otherwise), and a JSON artifact that round-trips through the schema
// with no unknown fields.
func TestSchedQuick(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "sched.json")
	cfg := QuickConfig()
	cfg.JSONPath = jsonPath
	e, err := ByID("sched")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Run(cfg, &buf); err != nil {
		t.Fatalf("sched: %v\n%s", err, buf.String())
	}
	report := decodeSchedReport(t, jsonPath)
	if !report.Quick {
		t.Error("quick run not flagged in artifact")
	}
	checkSchedReport(t, report, cfg.Workers)
}

// TestCommittedSchedArtifact guards the repository's committed
// BENCH_sched.json trajectory artifact: the schema must match this package's
// structs exactly, every (workers, policy) cell of the full sweep must be
// present, and every row must witness the determinism contract.
func TestCommittedSchedArtifact(t *testing.T) {
	path := filepath.Join("..", "..", "BENCH_sched.json")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("committed artifact missing: %v (regenerate with `asabench -exp sched -json BENCH_sched.json`)", err)
	}
	report := decodeSchedReport(t, path)
	if report.Quick {
		t.Error("committed artifact was generated in quick mode; regenerate at full scale")
	}
	if report.SchemaVersion != SchedSchemaVersion {
		t.Errorf("artifact schema version %d, package expects %d — regenerate",
			report.SchemaVersion, SchedSchemaVersion)
	}
	if report.Scale != 17 {
		t.Errorf("artifact scale %d, want the full-sweep scale 17", report.Scale)
	}
	checkSchedReport(t, report, DefaultConfig().Workers)
}

func decodeSchedReport(t *testing.T, path string) schedReport {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var report schedReport
	if err := dec.Decode(&report); err != nil {
		t.Fatalf("%s does not match the sched schema: %v", path, err)
	}
	return report
}

// checkSchedReport asserts the structural and acceptance invariants shared
// by quick and committed artifacts.
func checkSchedReport(t *testing.T, report schedReport, workers []int) {
	t.Helper()
	if report.Experiment != "sched" {
		t.Errorf("experiment %q, want sched", report.Experiment)
	}
	if report.Generator != "rmat" || report.Vertices <= 0 || report.Arcs <= 0 {
		t.Errorf("bad graph provenance: %+v", report)
	}
	perWorkers := map[int]map[string]schedRow{}
	codelength := 0.0
	for _, row := range report.Rows {
		if perWorkers[row.Workers] == nil {
			perWorkers[row.Workers] = map[string]schedRow{}
		}
		perWorkers[row.Workers][row.Policy] = row
		if !row.BitIdentical {
			t.Errorf("workers=%d policy=%s: not bit-identical to the 1-worker reference", row.Workers, row.Policy)
		}
		if row.SweepWallMS <= 0 || row.TotalWallMS <= 0 {
			t.Errorf("workers=%d policy=%s: empty timings: %+v", row.Workers, row.Policy, row)
		}
		if codelength == 0 {
			codelength = row.Codelength
		} else if row.Codelength != codelength {
			// Bit-identical membership must mean bit-identical codelength; a
			// divergence here is schema or determinism drift.
			t.Errorf("workers=%d policy=%s: codelength %v != %v", row.Workers, row.Policy, row.Codelength, codelength)
		}
	}
	if len(perWorkers) != len(workers) {
		t.Errorf("artifact covers %d worker counts, want %d", len(perWorkers), len(workers))
	}
	for _, w := range workers {
		rows, ok := perWorkers[w]
		if !ok {
			t.Errorf("worker count %d missing from artifact", w)
			continue
		}
		for _, policy := range []string{"static", "steal"} {
			if _, ok := rows[policy]; !ok {
				t.Errorf("workers=%d: policy %s missing", w, policy)
			}
		}
	}
	if report.SpeedupStealVsStatic <= 0 {
		t.Errorf("speedup_steal_vs_static %v, want > 0", report.SpeedupStealVsStatic)
	}
}
