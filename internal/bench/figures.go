package bench

import (
	"fmt"
	"io"

	"github.com/asamap/asamap/internal/dataset"
	"github.com/asamap/asamap/internal/infomap"
	"github.com/asamap/asamap/internal/perf"
	"github.com/asamap/asamap/internal/trace"
)

// runFig2 reproduces Figure 2: (a) the kernel breakdown of the application —
// FindBestCommunity dominates — and (b) the share of FindBestCommunity spent
// on hash operations, both for single-core Baseline runs on the two largest
// networks.
func runFig2(cfg Config, w io.Writer) error {
	for _, name := range []string{"soc-Pokec", "Orkut"} {
		g, _, err := replica(cfg, name)
		if err != nil {
			return err
		}
		res, err := runKind(cfg, g, infomap.Baseline, 1)
		if err != nil {
			return err
		}
		bd := res.Breakdown
		total := bd.Total()
		fmt.Fprintf(w, "%s (wall-clock kernel breakdown):\n", name)
		for _, k := range []string{trace.KernelPageRank, trace.KernelFindBestCommunity,
			trace.KernelConvert2SuperNode, trace.KernelUpdateMembers} {
			fmt.Fprintf(w, "  %-20s %10v  %5.1f%%\n", k, bd.Get(k).Round(1e3),
				100*float64(bd.Get(k))/float64(total))
		}
		m, err := modelRun(res, infomap.Baseline, perf.Baseline())
		if err != nil {
			return err
		}
		hashShare := m.Hash.Cycles / (m.Hash.Cycles + m.Kernel.Cycles)
		fmt.Fprintf(w, "  FindBestCommunity split (modeled): HashOperations %.1f%%, other %.1f%%\n\n",
			100*hashShare, 100*(1-hashShare))
	}
	return nil
}

// runFig4 reproduces Figure 4: the power-law degree histograms of the
// LiveJournal-, Pokec-, and YouTube-like networks, printed as log-spaced
// degree buckets.
func runFig4(cfg Config, w io.Writer) error {
	for _, name := range []string{"LiveJournal", "soc-Pokec", "YouTube"} {
		g, _, err := replica(cfg, name)
		if err != nil {
			return err
		}
		hist := g.DegreeHistogram()
		fmt.Fprintf(w, "%s degree distribution (N=%d, max degree %d):\n", name, g.N(), len(hist)-1)
		// Log-spaced buckets: [0], [1], [2,3], [4,7], ...
		lo := 0
		width := 1
		for lo < len(hist) {
			hi := lo + width - 1
			if hi >= len(hist) {
				hi = len(hist) - 1
			}
			count := 0
			for d := lo; d <= hi; d++ {
				count += hist[d]
			}
			if count > 0 {
				fmt.Fprintf(w, "  degree %6d-%-6d %9d vertices (%.3f%%)\n",
					lo, hi, count, 100*float64(count)/float64(g.N()))
			}
			lo = hi + 1
			if lo >= 2 {
				width *= 2
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// runFig5 reproduces Figure 5: the fraction of vertices whose neighbor list
// fits in a core-local CAM of 1–8KB (16-byte entries), for all six networks.
func runFig5(cfg Config, w io.Writer) error {
	byteSizes := []int{1 << 10, 2 << 10, 4 << 10, 8 << 10}
	entries := dataset.EntriesForBytes(byteSizes, 16)
	fmt.Fprintf(w, "%-12s", "Network")
	for _, b := range byteSizes {
		fmt.Fprintf(w, " %9dKB", b/1024)
	}
	fmt.Fprintln(w)
	for _, spec := range dataset.Registry {
		g, _, err := replica(cfg, spec.Name)
		if err != nil {
			return err
		}
		cov := dataset.CAMCoverage(g, entries)
		fmt.Fprintf(w, "%-12s", spec.Name)
		for _, c := range cov {
			fmt.Fprintf(w, " %10.2f%%", 100*c)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// runFig6 reproduces Figure 6: the speedup of hash operations from ASA over
// Baseline per network, single core.
func runFig6(cfg Config, w io.Writer) error {
	fmt.Fprintf(w, "%-12s %10s\n", "Network", "speedup")
	for _, name := range table5Networks {
		b, a, err := hashOpSeconds(cfg, name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %9.2fx\n", name, b/a)
	}
	return nil
}

// runFig7 reproduces Figure 7: the FindBestCommunity timing breakdown
// (HashOperations vs rest) across core counts for Baseline and ASA on the
// Amazon- and DBLP-like networks.
func runFig7(cfg Config, w io.Writer) error {
	machine := perf.Baseline()
	for _, name := range []string{"Amazon", "DBLP"} {
		g, _, err := replica(cfg, name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s:\n", name)
		fmt.Fprintf(w, "  %5s | %12s %12s | %12s %12s | %10s\n",
			"cores", "base hash(s)", "base rest(s)", "asa hash(s)", "asa rest(s)", "hash red.")
		for _, workers := range cfg.Workers {
			base, err := runKind(cfg, g, infomap.Baseline, workers)
			if err != nil {
				return err
			}
			acc, err := runKind(cfg, g, infomap.ASA, workers)
			if err != nil {
				return err
			}
			mb, err := modelRun(base, infomap.Baseline, machine)
			if err != nil {
				return err
			}
			ma, err := modelRun(acc, infomap.ASA, machine)
			if err != nil {
				return err
			}
			// Per-core time: events divide across cores.
			div := float64(workers)
			bh, br := mb.Hash.Seconds(machine)/div, mb.Kernel.Seconds(machine)/div
			ah, ar := ma.Hash.Seconds(machine)/div, ma.Kernel.Seconds(machine)/div
			fmt.Fprintf(w, "  %5d | %12.4f %12.4f | %12.4f %12.4f | %9.1f%%\n",
				workers, bh, br, ah, ar, 100*(1-ah/bh))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// runFig8 reproduces Figure 8: total instructions (a), mispredicted branches
// (b), and CPI (c) for Baseline vs ASA on the three largest networks.
func runFig8(cfg Config, w io.Writer) error {
	fmt.Fprintf(w, "%-12s | %10s %10s %7s | %10s %10s %7s | %6s %6s %7s\n",
		"Network", "base instr", "asa instr", "red.",
		"base mpred", "asa mpred", "red.", "b.CPI", "a.CPI", "red.")
	for _, name := range []string{"YouTube", "soc-Pokec", "Orkut"} {
		g, _, err := replica(cfg, name)
		if err != nil {
			return err
		}
		base, err := runKind(cfg, g, infomap.Baseline, 1)
		if err != nil {
			return err
		}
		acc, err := runKind(cfg, g, infomap.ASA, 1)
		if err != nil {
			return err
		}
		mb, err := modelRun(base, infomap.Baseline, perf.Baseline())
		if err != nil {
			return err
		}
		ma, err := modelRun(acc, infomap.ASA, perf.Baseline())
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s | %10s %10s %6.1f%% | %10s %10s %6.1f%% | %6.2f %6.2f %6.1f%%\n",
			name,
			fmtEng(mb.Total.Instructions), fmtEng(ma.Total.Instructions),
			100*(1-ma.Total.Instructions/mb.Total.Instructions),
			fmtEng(mb.Total.Mispredicts), fmtEng(ma.Total.Mispredicts),
			100*(1-ma.Total.Mispredicts/mb.Total.Mispredicts),
			mb.Total.CPI(), ma.Total.CPI(),
			100*(1-ma.Total.CPI()/mb.Total.CPI()))
	}
	return nil
}

// perCoreMetric renders Figures 9–11: the average per-core value of one
// modeled counter across core counts, Baseline vs ASA, on Amazon and DBLP.
func perCoreMetric(cfg Config, w io.Writer, metric string,
	get func(perf.Counters) float64) error {
	machine := perf.Baseline()
	for _, name := range []string{"Amazon", "DBLP"} {
		g, _, err := replica(cfg, name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s (avg per-core %s):\n", name, metric)
		fmt.Fprintf(w, "  %5s %14s %14s %10s\n", "cores", "Baseline", "ASA", "reduction")
		for _, workers := range cfg.Workers {
			base, err := runKind(cfg, g, infomap.Baseline, workers)
			if err != nil {
				return err
			}
			acc, err := runKind(cfg, g, infomap.ASA, workers)
			if err != nil {
				return err
			}
			bc, err := perWorkerCounters(base, infomap.Baseline, machine)
			if err != nil {
				return err
			}
			ac, err := perWorkerCounters(acc, infomap.ASA, machine)
			if err != nil {
				return err
			}
			avg := func(cs []perf.Counters) float64 {
				s := 0.0
				for _, c := range cs {
					s += get(c)
				}
				return s / float64(len(cs))
			}
			b, a := avg(bc), avg(ac)
			fmt.Fprintf(w, "  %5d %14s %14s %9.1f%%\n", workers, fmtEng(b), fmtEng(a), 100*(1-a/b))
		}
		fmt.Fprintln(w)
	}
	return nil
}

func runFig9(cfg Config, w io.Writer) error {
	return perCoreMetric(cfg, w, "instructions", func(c perf.Counters) float64 { return c.Instructions })
}

func runFig10(cfg Config, w io.Writer) error {
	return perCoreMetric(cfg, w, "branch mispredictions", func(c perf.Counters) float64 { return c.Mispredicts })
}

func runFig11(cfg Config, w io.Writer) error {
	return perCoreMetric(cfg, w, "CPI", func(c perf.Counters) float64 { return c.CPI() })
}
