// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation section (plus the extension/ablation studies
// listed in DESIGN.md). Each runner regenerates its artifact as a text table
// with the same rows/series the paper reports, printed to an io.Writer, so
// `asabench -exp all` reproduces the full evaluation and EXPERIMENTS.md can
// record paper-vs-measured values side by side.
package bench

import (
	"fmt"
	"io"
	"sync"

	"github.com/asamap/asamap/internal/dataset"
	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/infomap"
	"github.com/asamap/asamap/internal/perf"
)

// Config controls the harness.
type Config struct {
	// Seed drives every generator and run.
	Seed uint64
	// Quick shrinks the replicas aggressively (for tests and smoke runs).
	Quick bool
	// ScaleOverride, when > 0, replaces each network's default scale divisor.
	ScaleOverride int
	// Workers is the core-count sweep for multi-core experiments.
	Workers []int
	// JSONPath, when non-empty, is where experiments that emit a
	// machine-readable artifact (currently "sched") write their JSON.
	JSONPath string
	// TraceOut, when non-empty, is where experiments that emit a Chrome
	// trace-event artifact (currently "sched") write it. One file holds a
	// span tree per (workers, policy) run, viewable in chrome://tracing or
	// Perfetto.
	TraceOut string
}

// DefaultConfig returns the full-size configuration.
func DefaultConfig() Config {
	return Config{Seed: 1, Workers: []int{1, 2, 4, 8}}
}

// QuickConfig returns a configuration small enough for unit tests.
func QuickConfig() Config {
	return Config{Seed: 1, Quick: true, Workers: []int{1, 2, 4}}
}

// scaleFor returns the replica scale divisor for a network under cfg.
func (cfg Config) scaleFor(spec dataset.Spec) int {
	if cfg.ScaleOverride > 0 {
		return cfg.ScaleOverride
	}
	if cfg.Quick {
		return spec.DefaultScale * 16
	}
	return spec.DefaultScale
}

// Experiment is one reproducible artifact of the paper.
type Experiment struct {
	ID    string // e.g. "table5", "fig6"
	Title string
	Run   func(cfg Config, w io.Writer) error
}

// Experiments lists every runner in paper order, extensions last.
var Experiments = []Experiment{
	{"table1", "Table I: network datasets", runTable1},
	{"fig2", "Fig 2: kernel breakdown and hash share", runFig2},
	{"fig4", "Fig 4: power-law degree distributions", runFig4},
	{"fig5", "Fig 5: CAM capacity coverage", runFig5},
	{"table2", "Table II: machine configurations", runTable2},
	{"table3", "Table III: native vs Baseline, 1 core", runTable3},
	{"table4", "Table IV: native vs Baseline, 2 cores", runTable4},
	{"table5", "Table V: hash-operation time, Baseline vs ASA", runTable5},
	{"fig6", "Fig 6: ASA speedup of hash operations", runFig6},
	{"fig7", "Fig 7: multi-core FindBestCommunity breakdown", runFig7},
	{"fig8", "Fig 8: instructions, mispredictions, CPI", runFig8},
	{"fig9", "Fig 9: per-core instructions across cores", runFig9},
	{"fig10", "Fig 10: per-core branch mispredictions across cores", runFig10},
	{"fig11", "Fig 11: per-core CPI across cores", runFig11},
	{"lfr", "X1: solution quality on LFR vs Louvain", runLFR},
	{"spgemm", "X2: SpGEMM with software hash vs ASA", runSpGEMM},
	{"camsweep", "X3: CAM size ablation", runCAMSweep},
	{"evict", "X4: eviction policy ablation", runEvict},
	{"hierarchy", "X5: hierarchical map equation vs two-level", runHierarchy},
	{"cachesim", "X6: trace-driven cache simulation of hash probes", runCacheSim},
	{"distributed", "X7: distributed-memory (hybrid) simulation, rank sweep", runDistributed},
	{"sched", "X8: sweep scheduling — static vs work stealing", runSched},
	{"accum", "X9: accumulator backend sweep — gomap/softhash/asa/hashgraph", runAccum},
	{"delta", "X10: incremental detection — warm start vs cold on an evolved graph", runDelta},
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}

// RunAll executes every experiment in order.
func RunAll(cfg Config, w io.Writer) error {
	for _, e := range Experiments {
		fmt.Fprintf(w, "\n=== %s — %s ===\n", e.ID, e.Title)
		if err := e.Run(cfg, w); err != nil {
			return fmt.Errorf("bench: %s: %w", e.ID, err)
		}
	}
	return nil
}

// --- shared plumbing ---

var (
	cacheMu sync.Mutex
	gcache  = map[string]*graph.Graph{}
)

// replica returns the (cached) synthetic replica of a Table I network.
func replica(cfg Config, name string) (*graph.Graph, dataset.Spec, error) {
	spec, err := dataset.ByName(name)
	if err != nil {
		return nil, spec, err
	}
	scale := cfg.scaleFor(spec)
	key := fmt.Sprintf("%s/%d/%d", name, scale, cfg.Seed)
	cacheMu.Lock()
	g, ok := gcache[key]
	cacheMu.Unlock()
	if ok {
		return g, spec, nil
	}
	g, err = spec.Generate(scale, cfg.Seed)
	if err != nil {
		return nil, spec, err
	}
	cacheMu.Lock()
	gcache[key] = g
	cacheMu.Unlock()
	return g, spec, nil
}

var (
	runCacheMu sync.Mutex
	runCache   = map[string]*infomap.Result{}
)

// runKind executes Infomap on g with the given backend and worker count.
// Runs are deterministic for a fixed (graph, options) pair, so results are
// memoized: several figures share the same underlying runs.
func runKind(cfg Config, g *graph.Graph, kind infomap.AccumKind, workers int) (*infomap.Result, error) {
	key := fmt.Sprintf("%p/%d/%d/%d", g, kind, workers, cfg.Seed)
	runCacheMu.Lock()
	cached, ok := runCache[key]
	runCacheMu.Unlock()
	if ok {
		return cached, nil
	}
	opt := infomap.DefaultOptions()
	opt.Kind = kind
	opt.Workers = workers
	opt.Seed = cfg.Seed
	res, err := infomap.Run(g, opt)
	if err != nil {
		return nil, err
	}
	runCacheMu.Lock()
	runCache[key] = res
	runCacheMu.Unlock()
	return res, nil
}

// modeled bundles the perf-model view of one run on the Baseline machine.
type modeled struct {
	Hash   perf.Counters // accumulator (hash/ASA) operations
	Kernel perf.Counters // remaining FindBestCommunity work
	Total  perf.Counters
}

func accumName(kind infomap.AccumKind) string {
	switch kind {
	case infomap.Baseline:
		return "softhash"
	case infomap.ASA:
		return "asa"
	case infomap.HashGraph:
		return "hashgraph"
	default:
		return "gomap"
	}
}

// modelRun converts a run's event counts into modeled hardware counters.
func modelRun(res *infomap.Result, kind infomap.AccumKind, machine perf.Machine) (modeled, error) {
	model := perf.DefaultModel(machine)
	hash, err := model.AccumCost(accumName(kind), res.TotalStats())
	if err != nil {
		return modeled{}, err
	}
	kernel := model.KernelCost(res.TotalWork())
	total := hash
	total.Add(kernel)
	return modeled{Hash: hash, Kernel: kernel, Total: total}, nil
}

// perWorkerCounters returns each worker's modeled counters.
func perWorkerCounters(res *infomap.Result, kind infomap.AccumKind, machine perf.Machine) ([]perf.Counters, error) {
	model := perf.DefaultModel(machine)
	out := make([]perf.Counters, len(res.PerWorker))
	for i, ws := range res.PerWorker {
		hash, err := model.AccumCost(accumName(kind), ws.Accum)
		if err != nil {
			return nil, err
		}
		c := hash
		c.Add(model.KernelCost(ws.Work))
		out[i] = c
	}
	return out, nil
}

// fmtEng renders a float with engineering suffixes (K/M/G/T).
func fmtEng(v float64) string {
	switch {
	case v >= 1e12:
		return fmt.Sprintf("%.2fT", v/1e12)
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fK", v/1e3)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
