package bench

import (
	"fmt"
	"io"
	"math"

	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/infomap"
	"github.com/asamap/asamap/internal/perf"
)

// deltaNetworks are the replicas the incremental-detection experiment evolves.
var deltaNetworks = []string{"Amazon", "YouTube"}

// deltaEpsilon bounds how far a warm-started codelength may drift from the
// cold run on the same child graph — the same tolerance the differential test
// tier pins (internal/infomap warm tests).
const deltaEpsilon = 0.02

// deltaHopSweep is the frontier-radius ablation: 0 means no frontier
// restriction (every vertex re-optimizes from the warm seed).
var deltaHopSweep = []int{0, 4, 2, 1}

// syntheticDelta builds a deterministic evolution of g: every stride-th
// vertex loses its first incident edge and gains one to a far vertex, and a
// brand-new vertex attaches to vertex 0 so the seed-extension path runs too.
// The batch depends only on the graph, so the experiment is reproducible.
func syntheticDelta(g *graph.Graph, edits int) *graph.Delta {
	n := g.N()
	stride := n / edits
	if stride < 1 {
		stride = 1
	}
	d := &graph.Delta{}
	for v := 0; v < n && len(d.Ops) < 2*edits; v += stride {
		nb := g.OutNeighbors(v)
		if len(nb) == 0 {
			continue
		}
		far := uint32((v + n/2) % n)
		if far == uint32(v) {
			continue
		}
		d.Ops = append(d.Ops,
			graph.DeltaEdge{Op: graph.DeltaRemove, From: uint32(v), To: nb[0]},
			graph.DeltaEdge{Op: graph.DeltaAdd, From: uint32(v), To: far, Weight: 1},
		)
	}
	d.Ops = append(d.Ops, graph.DeltaEdge{Op: graph.DeltaAdd, From: 0, To: uint32(n), Weight: 1})
	return d
}

// runDelta is X10: incremental detection on an evolving graph. Each network
// is evolved by a synthetic delta batch; a cold run on the child graph is
// compared against warm-started runs seeded from the parent partition, over
// a frontier-radius sweep. Warm codelengths must stay within deltaEpsilon of
// cold — the differential contract — and the table reports how much work the
// frontier restriction saves (sweeps, moves, modeled cycles).
func runDelta(cfg Config, w io.Writer) error {
	fmt.Fprintf(w, "%-10s  %-8s  %9s  %9s  %7s  %8s  %9s  %8s  %11s  %7s\n",
		"network", "mode", "frontier", "frozen", "sweeps", "moves", "L", "dL", "total-cyc", "speedup")
	for _, name := range deltaNetworks {
		parent, _, err := replica(cfg, name)
		if err != nil {
			return err
		}
		edits := parent.N() / 100
		if edits < 4 {
			edits = 4
		}
		d := syntheticDelta(parent, edits)
		child, err := d.Apply(parent)
		if err != nil {
			return err
		}

		opt := infomap.DefaultOptions()
		opt.Seed = cfg.Seed
		pres, err := infomap.Run(parent, opt)
		if err != nil {
			return err
		}
		cold, err := infomap.Run(child, opt)
		if err != nil {
			return err
		}
		coldM, err := modelRun(cold, opt.Kind, perf.Baseline())
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10s  %-8s  %9d  %9d  %7d  %8d  %9.4f  %8s  %11s  %6.2fx\n",
			name, "cold", child.N(), 0, cold.Sweeps, cold.Moves, cold.Codelength,
			"-", fmtEng(coldM.Total.Cycles), 1.0)

		// Parent partition extended with fresh singletons for delta-created
		// vertices — the same seed the serve lineage walk derives.
		seed := make([]uint32, child.N())
		copy(seed, pres.Membership)
		next := uint32(pres.NumModules)
		for j := parent.N(); j < child.N(); j++ {
			seed[j] = next
			next++
		}

		for _, hops := range deltaHopSweep {
			wopt := opt
			wopt.WarmStart = seed
			mode := "warm-all"
			if hops > 0 {
				wopt.FrontierSeeds = d.Touched()
				wopt.FrontierHops = hops
				mode = fmt.Sprintf("warm-h%d", hops)
			}
			warm, err := infomap.Run(child, wopt)
			if err != nil {
				return err
			}
			dL := warm.Codelength - cold.Codelength
			if math.Abs(dL) > deltaEpsilon {
				return fmt.Errorf("bench: delta: %s %s codelength drifted %.4f bits from cold (epsilon %.3f)",
					name, mode, dL, deltaEpsilon)
			}
			warmM, err := modelRun(warm, opt.Kind, perf.Baseline())
			if err != nil {
				return err
			}
			speedup := 0.0
			if warmM.Total.Cycles > 0 {
				speedup = coldM.Total.Cycles / warmM.Total.Cycles
			}
			fmt.Fprintf(w, "%-10s  %-8s  %9d  %9d  %7d  %8d  %9.4f  %+8.4f  %11s  %6.2fx\n",
				name, mode, warm.FrontierSize, warm.FrozenVertices, warm.Sweeps, warm.Moves,
				warm.Codelength, dL, fmtEng(warmM.Total.Cycles), speedup)
		}
	}
	return nil
}
