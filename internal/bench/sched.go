package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"github.com/asamap/asamap/internal/gen"
	"github.com/asamap/asamap/internal/infomap"
	"github.com/asamap/asamap/internal/obs"
	"github.com/asamap/asamap/internal/rng"
	"github.com/asamap/asamap/internal/trace"
)

// schedRow is one (workers, policy) cell of the scheduling experiment.
type schedRow struct {
	Workers      int     `json:"workers"`
	Policy       string  `json:"policy"`
	SweepWallMS  float64 `json:"sweep_wall_ms"`  // FindBestCommunity wall time
	CommitWallMS float64 `json:"commit_wall_ms"` // UpdateMembers wall time
	TotalWallMS  float64 `json:"total_wall_ms"`  // whole run
	Imbalance    float64 `json:"imbalance"`      // busy-weighted mean max/mean
	Steals       uint64  `json:"steals"`
	Codelength   float64 `json:"codelength"`
	BitIdentical bool    `json:"bit_identical"` // membership == 1-worker reference
}

// SchedSchemaVersion pins the BENCH_sched.json schema. Bump it when
// schedReport/schedRow change shape, and regenerate the committed artifact.
const SchedSchemaVersion = 1

// schedReport is the BENCH_sched.json artifact.
type schedReport struct {
	SchemaVersion int        `json:"schema_version"`
	Experiment    string     `json:"experiment"`
	Quick         bool       `json:"quick,omitempty"` // reduced scale; not a committable artifact
	Vertices      int        `json:"vertices"`
	Arcs          int        `json:"arcs"`
	Generator     string     `json:"generator"`
	Scale         int        `json:"scale"`
	EdgeFactor    int        `json:"edge_factor"`
	GOMAXPROCS    int        `json:"gomaxprocs"`
	Rows          []schedRow `json:"rows"`
	// SpeedupStealVsStatic is steal's sweep-wall speedup over static
	// chunking at the largest worker count of the sweep.
	SpeedupStealVsStatic float64 `json:"speedup_steal_vs_static"`
}

// runSched measures the sweep scheduler: static equal-vertex chunks versus
// degree-aware blocks with work stealing, across the worker sweep, on a
// power-law R-MAT graph where static chunking concentrates the hubs in a few
// unlucky chunks. It also verifies the determinism contract (bit-identical
// membership across all configurations) and, when cfg.JSONPath is set,
// writes the machine-readable BENCH_sched.json artifact.
func runSched(cfg Config, w io.Writer) error {
	scale, edgeFactor := 17, 8
	if cfg.Quick {
		scale = 12
	}
	g, err := gen.RMAT(scale, edgeFactor, rng.New(cfg.Seed))
	if err != nil {
		return err
	}
	report := schedReport{
		SchemaVersion: SchedSchemaVersion,
		Experiment:    "sched",
		Quick:         cfg.Quick,
		Vertices:      g.N(),
		Arcs:          g.M(),
		Generator:     "rmat",
		Scale:         scale,
		EdgeFactor:    edgeFactor,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
	}
	fmt.Fprintf(w, "R-MAT scale %d (%d vertices, %d arcs), GOMAXPROCS=%d\n",
		scale, g.N(), g.M(), report.GOMAXPROCS)
	fmt.Fprintf(w, "%8s  %8s  %12s  %12s  %10s  %8s  %12s  %s\n",
		"workers", "policy", "sweep-wall", "commit-wall", "imbalance", "steals", "codelength", "identical")

	var tracer *obs.Tracer
	if cfg.TraceOut != "" {
		tracer = obs.New(obs.Config{Seed: cfg.Seed})
	}
	var ref *infomap.Result
	run := func(workers int, policy infomap.SchedPolicy) (*infomap.Result, error) {
		opt := infomap.DefaultOptions()
		opt.Workers = workers
		opt.Seed = cfg.Seed
		opt.Sched = policy
		var sp *obs.Span
		if tracer != nil {
			sp = tracer.Begin(fmt.Sprintf("sched workers=%d policy=%s", workers, policy))
			opt.Trace = sp
		}
		res, err := infomap.Run(g, opt)
		sp.End()
		return res, err
	}
	policies := []infomap.SchedPolicy{infomap.SchedStatic, infomap.SchedSteal}
	staticSweep := map[int]float64{}
	for _, workers := range cfg.Workers {
		for _, policy := range policies {
			res, err := run(workers, policy)
			if err != nil {
				return err
			}
			if ref == nil {
				ref = res
			}
			identical := sameMembership(ref.Membership, res.Membership)
			row := schedRow{
				Workers:      workers,
				Policy:       policy.String(),
				SweepWallMS:  float64(res.Breakdown.Get(trace.KernelFindBestCommunity).Microseconds()) / 1e3,
				CommitWallMS: float64(res.Breakdown.Get(trace.KernelUpdateMembers).Microseconds()) / 1e3,
				TotalWallMS:  float64(res.Elapsed.Microseconds()) / 1e3,
				Imbalance:    res.MeanImbalance(),
				Steals:       res.Steals,
				Codelength:   res.Codelength,
				BitIdentical: identical,
			}
			if policy == infomap.SchedStatic {
				staticSweep[workers] = row.SweepWallMS
			} else if s, ok := staticSweep[workers]; ok && row.SweepWallMS > 0 && workers == maxOf(cfg.Workers) {
				report.SpeedupStealVsStatic = s / row.SweepWallMS
			}
			report.Rows = append(report.Rows, row)
			fmt.Fprintf(w, "%8d  %8s  %10.1fms  %10.1fms  %10.3f  %8d  %12.6f  %v\n",
				row.Workers, row.Policy, row.SweepWallMS, row.CommitWallMS,
				row.Imbalance, row.Steals, row.Codelength, identical)
			if !identical {
				return fmt.Errorf("bench: sched: workers=%d policy=%v broke determinism", workers, policy)
			}
		}
	}
	if report.SpeedupStealVsStatic > 0 {
		fmt.Fprintf(w, "steal vs static sweep speedup at %d workers: %.2fx\n",
			maxOf(cfg.Workers), report.SpeedupStealVsStatic)
	}
	if cfg.JSONPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.JSONPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", cfg.JSONPath)
	}
	if cfg.TraceOut != "" {
		f, err := os.Create(cfg.TraceOut)
		if err != nil {
			return err
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", cfg.TraceOut)
	}
	return nil
}

func sameMembership(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func maxOf(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
