package bench

import (
	"fmt"
	"io"
	"math"

	"github.com/asamap/asamap/internal/dataset"
	"github.com/asamap/asamap/internal/infomap"
	"github.com/asamap/asamap/internal/perf"
)

// runTable1 reproduces Table I: the network datasets, paper sizes alongside
// the synthetic replica actually used at the configured scale.
func runTable1(cfg Config, w io.Writer) error {
	fmt.Fprintf(w, "%-12s %12s %12s | %6s %10s %10s %8s\n",
		"Network", "Paper #V", "Paper #E", "scale", "Repl #V", "Repl #E", "avg deg")
	for _, spec := range dataset.Registry {
		g, _, err := replica(cfg, spec.Name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %12d %12d | %6d %10d %10d %8.2f\n",
			spec.Name, spec.PaperVertices, spec.PaperEdges,
			cfg.scaleFor(spec), g.N(), g.NumEdges(), float64(g.M())/float64(g.N()))
	}
	return nil
}

// runTable2 reproduces Table II: the machine configurations of the native
// host and the simulated Baseline.
func runTable2(_ Config, w io.Writer) error {
	rows := []struct {
		item string
		get  func(perf.Machine) string
	}{
		{"Processor", func(m perf.Machine) string { return fmt.Sprintf("%d cores, %.1fGHz", m.Cores, m.FreqGHz) }},
		{"L1 instruction cache", func(m perf.Machine) string { return fmt.Sprintf("%dKB", m.L1InstKB) }},
		{"L1 data cache", func(m perf.Machine) string { return fmt.Sprintf("%dKB", m.L1DataKB) }},
		{"L2", func(m perf.Machine) string { return fmt.Sprintf("private %dKB", m.L2KB) }},
		{"L3", func(m perf.Machine) string { return fmt.Sprintf("shared %dMB", m.L3MB) }},
		{"Base CPI (model)", func(m perf.Machine) string { return fmt.Sprintf("%.2f", m.BaseCPI) }},
		{"Mispredict penalty", func(m perf.Machine) string { return fmt.Sprintf("%.0f cycles", m.MispredictPenalty) }},
		{"Avg miss latency", func(m perf.Machine) string { return fmt.Sprintf("%.0f cycles", m.MemMissLatency) }},
	}
	native, baseline := perf.Native(), perf.Baseline()
	fmt.Fprintf(w, "%-22s %-22s %-22s\n", "Item", "Native", "Baseline")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %-22s %-22s\n", r.item, r.get(native), r.get(baseline))
	}
	return nil
}

// nativeVsBaseline renders Table III/IV: per-iteration FindBestCommunity
// runtime, Go wall clock ("Native") against the perf model on the Baseline
// machine. Following the paper's ZSim-validation methodology, the model's
// aggregate is first calibrated against the native total; the table then
// reports how well the per-iteration shape agrees.
func nativeVsBaseline(cfg Config, w io.Writer, workers, maxRows int) error {
	g, _, err := replica(cfg, "YouTube")
	if err != nil {
		return err
	}
	res, err := runKind(cfg, g, infomap.Baseline, workers)
	if err != nil {
		return err
	}
	model := perf.DefaultModel(perf.Baseline())

	// Vertex-level sweeps only, matching the paper's per-iteration rows.
	type row struct {
		native, modeledRaw float64
	}
	var rows []row
	totalNative, totalModeled := 0.0, 0.0
	for _, s := range res.SweepLog {
		// Stop at the end of the first vertex-level pass: the paper's
		// per-iteration rows are the FindBestCommunity iterations before the
		// first super-node contraction.
		if s.Level != 0 || len(rows) >= maxRows {
			break
		}
		hc, err := model.AccumCost(accumName(infomap.Baseline), s.Stats)
		if err != nil {
			return err
		}
		c := hc
		c.Add(model.KernelCost(s.Work))
		native := s.Wall.Seconds()
		modeledSec := c.Seconds(perf.Baseline()) / float64(workers)
		rows = append(rows, row{native: native, modeledRaw: modeledSec})
		totalNative += native
		totalModeled += modeledSec
	}
	if totalModeled == 0 {
		return fmt.Errorf("bench: no vertex-level sweeps recorded")
	}
	calib := totalNative / totalModeled
	fmt.Fprintf(w, "Workers: %d   (model calibrated on aggregate: ×%.3f)\n", workers, calib)
	fmt.Fprintf(w, "%-12s %14s %16s %10s\n", "Iteration", "Native (s)", "Baseline (s)", "% diff")
	for i, r := range rows {
		m := r.modeledRaw * calib
		diff := 0.0
		if r.native > 0 {
			diff = 100 * math.Abs(m-r.native) / r.native
		}
		fmt.Fprintf(w, "%-12d %14.6f %16.6f %9.1f%%\n", i+1, r.native, m, diff)
	}
	return nil
}

// The paper's Table III lists 7 iterations (1 core) and Table IV lists 5
// (2 cores); report the same rows and calibrate only over them.
func runTable3(cfg Config, w io.Writer) error { return nativeVsBaseline(cfg, w, 1, 7) }
func runTable4(cfg Config, w io.Writer) error { return nativeVsBaseline(cfg, w, 2, 5) }

// table5Networks matches Table V's rows (the paper omits LiveJournal there).
var table5Networks = []string{"Amazon", "DBLP", "YouTube", "soc-Pokec", "Orkut"}

// hashOpSeconds runs both backends single-core on one network and returns
// the modeled hash-operation time of each on the Baseline machine.
func hashOpSeconds(cfg Config, name string) (baselineSec, asaSec float64, err error) {
	g, _, err := replica(cfg, name)
	if err != nil {
		return 0, 0, err
	}
	base, err := runKind(cfg, g, infomap.Baseline, 1)
	if err != nil {
		return 0, 0, err
	}
	acc, err := runKind(cfg, g, infomap.ASA, 1)
	if err != nil {
		return 0, 0, err
	}
	mb, err := modelRun(base, infomap.Baseline, perf.Baseline())
	if err != nil {
		return 0, 0, err
	}
	ma, err := modelRun(acc, infomap.ASA, perf.Baseline())
	if err != nil {
		return 0, 0, err
	}
	machine := perf.Baseline()
	return mb.Hash.Seconds(machine), ma.Hash.Seconds(machine), nil
}

// runTable5 reproduces Table V: time spent on hash operations, Baseline vs
// ASA, single core.
func runTable5(cfg Config, w io.Writer) error {
	fmt.Fprintf(w, "%-12s %16s %14s %10s\n", "Network", "Baseline (s)", "ASA (s)", "speedup")
	for _, name := range table5Networks {
		b, a, err := hashOpSeconds(cfg, name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %16.4f %14.4f %9.2fx\n", name, b, a, b/a)
	}
	return nil
}
