package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/asamap/asamap/internal/asa"
	"github.com/asamap/asamap/internal/clock"
	"github.com/asamap/asamap/internal/gen"
	"github.com/asamap/asamap/internal/hashtab"
	"github.com/asamap/asamap/internal/infomap"
	"github.com/asamap/asamap/internal/louvain"
	"github.com/asamap/asamap/internal/metrics"
	"github.com/asamap/asamap/internal/perf"
	"github.com/asamap/asamap/internal/rng"
	"github.com/asamap/asamap/internal/spgemm"
)

// runLFR is extension X1: the quality claim the paper cites — Infomap
// delivers better partitions than modularity methods on the LFR benchmark —
// reproduced as an NMI-vs-mixing sweep against Louvain.
func runLFR(cfg Config, w io.Writer) error {
	n := 2000
	if cfg.Quick {
		n = 600
	}
	fmt.Fprintf(w, "LFR benchmark, N=%d (NMI against planted partition):\n", n)
	fmt.Fprintf(w, "%6s %12s %12s %10s %10s\n", "mu", "Infomap", "Louvain", "im #mod", "lv #mod")
	for _, mu := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6} {
		r := rng.New(cfg.Seed + uint64(mu*100))
		g, planted, err := gen.LFR(gen.DefaultLFR(n, mu), r)
		if err != nil {
			return err
		}
		im, err := runKind(cfg, g, infomap.Baseline, 1)
		if err != nil {
			return err
		}
		lvOpt := louvain.DefaultOptions()
		lvOpt.Seed = cfg.Seed
		lv, err := louvain.Run(g, lvOpt)
		if err != nil {
			return err
		}
		nmiIM, err := metrics.NMI(im.Membership, planted)
		if err != nil {
			return err
		}
		nmiLV, err := metrics.NMI(lv.Membership, planted)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%6.2f %12.4f %12.4f %10d %10d\n", mu, nmiIM, nmiLV, im.NumModules, lv.NumModules)
	}
	return nil
}

// runSpGEMM is extension X2: ASA back in its original domain — column-wise
// sparse matrix multiplication — through the same accumulator interface.
func runSpGEMM(cfg Config, w io.Writer) error {
	n, maxNNZ := 2000, 600
	if cfg.Quick {
		n, maxNNZ = 300, 100
	}
	r := rng.New(cfg.Seed)
	a, err := spgemm.RandomPowerLaw(n, 2, maxNNZ, 2.0, r)
	if err != nil {
		return err
	}
	b, err := spgemm.RandomPowerLaw(n, 2, maxNNZ, 2.0, r)
	if err != nil {
		return err
	}
	machine := perf.Baseline()
	model := perf.DefaultModel(machine)

	var clk clock.Clock = clock.Real{}
	soft := hashtab.New(256)
	t0 := clk.Now()
	cSoft, err := spgemm.Multiply(a, b, soft)
	if err != nil {
		return err
	}
	softWall := clk.Since(t0)
	softCost := model.HashCost(soft.Stats())

	cam := asa.MustNew(asa.DefaultConfig())
	t0 = clk.Now()
	cASA, err := spgemm.Multiply(a, b, cam)
	if err != nil {
		return err
	}
	asaWall := clk.Since(t0)
	asaCost := model.ASACost(cam.Stats())

	if cSoft.NNZ() != cASA.NNZ() {
		return fmt.Errorf("bench: spgemm results disagree: %d vs %d nnz", cSoft.NNZ(), cASA.NNZ())
	}
	fmt.Fprintf(w, "C = A·B with %dx%d power-law matrices (A nnz %d, B nnz %d, C nnz %d)\n",
		n, n, a.NNZ(), b.NNZ(), cSoft.NNZ())
	fmt.Fprintf(w, "%-10s %14s %14s %14s %8s\n", "backend", "modeled (s)", "instr", "mispred", "wall")
	fmt.Fprintf(w, "%-10s %14.4f %14s %14s %8v\n", "softhash",
		softCost.Seconds(machine), fmtEng(softCost.Instructions), fmtEng(softCost.Mispredicts), softWall.Round(time.Millisecond))
	fmt.Fprintf(w, "%-10s %14.4f %14s %14s %8v\n", "asa",
		asaCost.Seconds(machine), fmtEng(asaCost.Instructions), fmtEng(asaCost.Mispredicts), asaWall.Round(time.Millisecond))
	fmt.Fprintf(w, "modeled accumulation speedup: %.2fx\n",
		softCost.Seconds(machine)/asaCost.Seconds(machine))
	return nil
}

// runCAMSweep is ablation X3: how CAM capacity trades overflow volume
// against hash-operation speedup on the Pokec-like network (the paper argues
// 8KB suffices; this shows the whole curve).
func runCAMSweep(cfg Config, w io.Writer) error {
	g, _, err := replica(cfg, "soc-Pokec")
	if err != nil {
		return err
	}
	base, err := runKind(cfg, g, infomap.Baseline, 1)
	if err != nil {
		return err
	}
	machine := perf.Baseline()
	mb, err := modelRun(base, infomap.Baseline, machine)
	if err != nil {
		return err
	}
	model := perf.DefaultModel(machine)
	fmt.Fprintf(w, "%10s %12s %12s %12s %12s %10s\n",
		"CAM bytes", "overflow KV", "ovf share", "ovf time", "hash (s)", "speedup")
	for _, bytes := range []int{64, 256, 1024, 4096, 8192, 65536} {
		opt := infomap.DefaultOptions()
		opt.Kind = infomap.ASA
		opt.Seed = cfg.Seed
		opt.ASAConfig = asa.Config{CapacityBytes: bytes, EntryBytes: 16, Policy: asa.LRU}
		res, err := infomap.Run(g, opt)
		if err != nil {
			return err
		}
		ma, err := modelRun(res, infomap.ASA, machine)
		if err != nil {
			return err
		}
		st := res.TotalStats()
		share := float64(st.OverflowKV) / float64(st.Accumulates+1)
		// Overflow-handling time (the paper reports 9.86% of ASA time for
		// soc-Pokec): the cost of evictions plus the software sort_and_merge.
		ovfOnly := res.TotalStats()
		ovfOnly.Accumulates, ovfOnly.Lookups, ovfOnly.GatheredKV = 0, 0, 0
		ovfCost := model.ASACost(ovfOnly)
		ovfTime := ovfCost.Cycles / ma.Hash.Cycles
		fmt.Fprintf(w, "%10d %12d %11.2f%% %11.2f%% %12.4f %9.2fx\n",
			bytes, st.OverflowKV, 100*share, 100*ovfTime, ma.Hash.Seconds(machine),
			mb.Hash.Seconds(machine)/ma.Hash.Seconds(machine))
	}
	return nil
}

// runEvict is ablation X4: replacement-policy comparison at a fixed small
// CAM, where eviction decisions actually matter.
func runEvict(cfg Config, w io.Writer) error {
	g, _, err := replica(cfg, "soc-Pokec")
	if err != nil {
		return err
	}
	machine := perf.Baseline()
	fmt.Fprintf(w, "CAM 1KB (64 entries) on soc-Pokec replica:\n")
	fmt.Fprintf(w, "%-8s %12s %12s %12s\n", "policy", "evictions", "overflow KV", "hash (s)")
	for _, pol := range []asa.Policy{asa.LRU, asa.FIFO, asa.Random} {
		opt := infomap.DefaultOptions()
		opt.Kind = infomap.ASA
		opt.Seed = cfg.Seed
		opt.ASAConfig = asa.Config{CapacityBytes: 1024, EntryBytes: 16, Policy: pol}
		res, err := infomap.Run(g, opt)
		if err != nil {
			return err
		}
		ma, err := modelRun(res, infomap.ASA, machine)
		if err != nil {
			return err
		}
		st := res.TotalStats()
		fmt.Fprintf(w, "%-8s %12d %12d %12.4f\n", pol, st.Evictions, st.OverflowKV, ma.Hash.Seconds(machine))
	}
	return nil
}
