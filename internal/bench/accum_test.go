package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAccumQuick runs the accumulator sweep end to end in quick mode and
// checks the invariants the committed artifact is built on: every backend
// appears on every network, every row is bit-identical to the gomap oracle
// (runAccum fails hard otherwise), and the JSON round-trips through the
// schema with no unknown fields.
func TestAccumQuick(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "accum.json")
	cfg := QuickConfig()
	cfg.JSONPath = jsonPath
	e, err := ByID("accum")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Run(cfg, &buf); err != nil {
		t.Fatalf("accum: %v\n%s", err, buf.String())
	}
	report := decodeAccumReport(t, jsonPath)
	if !report.Quick {
		t.Error("quick run not flagged in artifact")
	}
	checkAccumReport(t, report)
}

// TestCommittedAccumArtifact guards the repository's committed
// BENCH_accum.json: the schema must match this package's structs exactly
// (DisallowUnknownFields catches drift in either direction via the test
// above), every backend must be present, and the artifact must witness the
// acceptance claims — hashgraph is probe-free and its modeled accumulator
// cycles beat softhash on the skewed-degree workload.
func TestCommittedAccumArtifact(t *testing.T) {
	path := filepath.Join("..", "..", "BENCH_accum.json")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("committed artifact missing: %v (regenerate with `asabench -exp accum -json BENCH_accum.json`)", err)
	}
	report := decodeAccumReport(t, path)
	if report.Quick {
		t.Error("committed artifact was generated in quick mode; regenerate at full scale")
	}
	if report.SchemaVersion != AccumSchemaVersion {
		t.Errorf("artifact schema version %d, package expects %d — regenerate",
			report.SchemaVersion, AccumSchemaVersion)
	}
	checkAccumReport(t, report)
}

func decodeAccumReport(t *testing.T, path string) accumReport {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var report accumReport
	if err := dec.Decode(&report); err != nil {
		t.Fatalf("%s does not match the accum schema: %v", path, err)
	}
	return report
}

// checkAccumReport asserts the structural and acceptance invariants shared
// by quick and committed artifacts.
func checkAccumReport(t *testing.T, report accumReport) {
	t.Helper()
	if report.Experiment != "accum" {
		t.Errorf("experiment %q, want accum", report.Experiment)
	}
	if report.Workers != 1 {
		t.Errorf("artifact ran with %d workers; must be 1 for reproducible probe counters", report.Workers)
	}
	wantBackends := []string{"gomap", "softhash", "asa", "hashgraph"}
	perNetwork := map[string]map[string]accumRow{}
	for _, row := range report.Rows {
		if perNetwork[row.Network] == nil {
			perNetwork[row.Network] = map[string]accumRow{}
		}
		perNetwork[row.Network][row.Backend] = row
	}
	if len(perNetwork) != len(accumNetworks) {
		t.Errorf("artifact covers %d networks, want %d", len(perNetwork), len(accumNetworks))
	}
	for _, name := range accumNetworks {
		rows, ok := perNetwork[name]
		if !ok {
			t.Errorf("network %s missing from artifact", name)
			continue
		}
		for _, backend := range wantBackends {
			row, ok := rows[backend]
			if !ok {
				t.Errorf("%s: backend %s missing", name, backend)
				continue
			}
			if !row.BitIdentical {
				t.Errorf("%s/%s: not bit-identical to the gomap oracle", name, backend)
			}
			if row.Accumulates == 0 || row.AccumCycles <= 0 {
				t.Errorf("%s/%s: empty counters: %+v", name, backend, row)
			}
		}
		hg, sh := rows["hashgraph"], rows["softhash"]
		if hg.ChainHops != 0 || hg.Rehashes != 0 {
			t.Errorf("%s: hashgraph reported probe events (hops=%d rehashes=%d)",
				name, hg.ChainHops, hg.Rehashes)
		}
		if hg.BinnedKV != hg.Accumulates || hg.ScatteredKV != hg.Accumulates {
			t.Errorf("%s: hashgraph resolve passes did not cover every pair: %+v", name, hg)
		}
		if sh.BinnedKV != 0 || sh.ScatteredKV != 0 || sh.BinMergedKV != 0 {
			t.Errorf("%s: softhash reported hashgraph-only counters: %+v", name, sh)
		}
	}
	// The headline acceptance claim: on the skewed-degree workload the
	// probe-free resolve costs no more modeled cycles than chained probing.
	skew := perNetwork[report.SkewedNetwork]
	if skew == nil {
		t.Fatalf("skewed network %q has no rows", report.SkewedNetwork)
	}
	if hg, sh := skew["hashgraph"], skew["softhash"]; hg.AccumCycles > sh.AccumCycles {
		t.Errorf("%s: hashgraph accum cycles %.0f exceed softhash %.0f",
			report.SkewedNetwork, hg.AccumCycles, sh.AccumCycles)
	}
	if !strings.EqualFold(report.Machine, "baseline") {
		t.Errorf("artifact modeled on machine %q, want baseline", report.Machine)
	}
}
