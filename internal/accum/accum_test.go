package accum

import (
	"testing"
)

func TestMapAccumulator(t *testing.T) {
	a := NewMap(4)
	a.Accumulate(2, 1.5)
	a.Accumulate(1, 1.0)
	a.Accumulate(2, 0.5)
	got := a.Gather(nil)
	if len(got) != 2 {
		t.Fatalf("gathered %v", got)
	}
	if got[0] != (KV{Key: 1, Value: 1.0}) || got[1] != (KV{Key: 2, Value: 2.0}) {
		t.Fatalf("gather not sorted/merged: %v", got)
	}
	st := a.Stats()
	if st.Accumulates != 3 || st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats %+v", st)
	}
	a.Reset()
	if len(a.Gather(nil)) != 0 {
		t.Fatal("reset left entries")
	}
	if a.Name() != "gomap" {
		t.Fatal("name wrong")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Accumulates: 1, Hits: 2, Misses: 3, ChainHops: 4, Inserts: 5,
		Rehashes: 6, Evictions: 7, OverflowKV: 8, MergedKV: 9, Gathers: 10,
		GatheredKV: 11, Resets: 12, BinnedKV: 13, ScatteredKV: 14, BinMergedKV: 15}
	b := a
	a.Add(b)
	if a.Accumulates != 2 || a.Resets != 24 || a.MergedKV != 18 ||
		a.Hits != 4 || a.Misses != 6 || a.ChainHops != 8 || a.Inserts != 10 ||
		a.Rehashes != 12 || a.Evictions != 14 || a.OverflowKV != 16 ||
		a.Gathers != 20 || a.GatheredKV != 22 ||
		a.BinnedKV != 26 || a.ScatteredKV != 28 || a.BinMergedKV != 30 {
		t.Fatalf("Add wrong: %+v", a)
	}
	if d := a.Sub(b); d != b {
		t.Fatalf("Sub wrong: %+v", d)
	}
	if d := b.Sub(a); d != (Stats{}) {
		t.Fatalf("Sub underflow should clamp to zero: %+v", d)
	}
}

func TestGatherAppendsToDst(t *testing.T) {
	a := NewMap(2)
	a.Accumulate(5, 1)
	out := a.Gather([]KV{{Key: 0, Value: 0}})
	if len(out) != 2 || out[0].Key != 0 || out[1].Key != 5 {
		t.Fatalf("append semantics broken: %v", out)
	}
}
