// Package accum defines the sparse-accumulation interface at the heart of the
// paper: the FindBestCommunity kernel repeatedly accumulates flow values
// keyed by neighbor module IDs, and the choice of accumulator implementation
// — software hash table (baseline) versus the ASA content-addressable-memory
// accelerator — is the paper's entire contribution. Keeping the interface
// tiny lets the identical Infomap kernel run unchanged over either backend,
// and over the plain Go map used as a correctness oracle in tests.
//
// The same interface also serves the SpGEMM substrate (package spgemm), which
// is the computation ASA was originally designed for; this generalization is
// the paper's stated goal.
package accum

import "sort"

// KV is an accumulated (key, value) pair: a module/column ID and the summed
// flow/numeric value.
type KV struct {
	Key   uint32
	Value float64
}

// Stats counts the primitive events an accumulator performs. The perf package
// converts these event counts into modeled hardware counters (instructions,
// branches, mispredictions, cycles). Not every implementation uses every
// field.
type Stats struct {
	Accumulates uint64 // Accumulate calls
	Lookups     uint64 // Lookup calls (read-only probes)
	Hits        uint64 // key already present
	Misses      uint64 // key not present (new entry created)
	ChainHops   uint64 // software hash: traversed collision-chain links
	Inserts     uint64 // entries created
	Rehashes    uint64 // software hash: entries moved during table growth
	Evictions   uint64 // ASA: LRU evictions into the overflow queue
	OverflowKV  uint64 // ASA: pairs that passed through the overflow queue
	MergedKV    uint64 // ASA: pairs processed by sort_and_merge
	BinnedKV    uint64 // hashgraph: pairs hashed and counted into bins (resolve pass 1)
	ScatteredKV uint64 // hashgraph: pairs scattered into contiguous bin slots (resolve pass 2)
	BinMergedKV uint64 // hashgraph: duplicate pairs folded during the in-bin merge
	Gathers     uint64 // Gather calls
	GatheredKV  uint64 // pairs copied out by Gather
	Resets      uint64 // Reset calls
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Accumulates += other.Accumulates
	s.Lookups += other.Lookups
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.ChainHops += other.ChainHops
	s.Inserts += other.Inserts
	s.Rehashes += other.Rehashes
	s.Evictions += other.Evictions
	s.OverflowKV += other.OverflowKV
	s.MergedKV += other.MergedKV
	s.BinnedKV += other.BinnedKV
	s.ScatteredKV += other.ScatteredKV
	s.BinMergedKV += other.BinMergedKV
	s.Gathers += other.Gathers
	s.GatheredKV += other.GatheredKV
	s.Resets += other.Resets
}

// Sub returns s minus other field-wise (counters are cumulative, so this
// yields the events of a sub-span). Underflow clamps to zero.
func (s Stats) Sub(other Stats) Stats {
	d := func(a, b uint64) uint64 {
		if a < b {
			return 0
		}
		return a - b
	}
	return Stats{
		Accumulates: d(s.Accumulates, other.Accumulates),
		Lookups:     d(s.Lookups, other.Lookups),
		Hits:        d(s.Hits, other.Hits),
		Misses:      d(s.Misses, other.Misses),
		ChainHops:   d(s.ChainHops, other.ChainHops),
		Inserts:     d(s.Inserts, other.Inserts),
		Rehashes:    d(s.Rehashes, other.Rehashes),
		Evictions:   d(s.Evictions, other.Evictions),
		OverflowKV:  d(s.OverflowKV, other.OverflowKV),
		MergedKV:    d(s.MergedKV, other.MergedKV),
		BinnedKV:    d(s.BinnedKV, other.BinnedKV),
		ScatteredKV: d(s.ScatteredKV, other.ScatteredKV),
		BinMergedKV: d(s.BinMergedKV, other.BinMergedKV),
		Gathers:     d(s.Gathers, other.Gathers),
		GatheredKV:  d(s.GatheredKV, other.GatheredKV),
		Resets:      d(s.Resets, other.Resets),
	}
}

// Accumulator accumulates float64 values keyed by uint32 keys, then yields
// the merged pairs. Implementations are single-goroutine objects: the
// parallel kernel gives each worker its own instance, mirroring the paper's
// core-local CAM (tid parameter of the ASA accumulate call).
type Accumulator interface {
	// Accumulate adds value to the entry for key, creating it if absent.
	Accumulate(key uint32, value float64)
	// Lookup returns the accumulated value for key without modifying the
	// accumulator. This is the read probe Algorithm 1 performs when it
	// iterates the out-flow table and fetches inFlowFromModules[newModId].
	Lookup(key uint32) (float64, bool)
	// Gather appends every (key, Σvalue) pair to dst and returns it. Each
	// key appears exactly once. Order is implementation defined.
	Gather(dst []KV) []KV
	// Reset clears the accumulator for reuse on the next vertex.
	Reset()
	// Stats returns cumulative event counts since construction.
	Stats() Stats
	// Name identifies the implementation in reports.
	Name() string
}

// MapAccumulator is the reference implementation backed by Go's built-in
// map. It serves as the correctness oracle in tests and as the "idiomatic
// Go" point of comparison in benchmarks.
type MapAccumulator struct {
	m     map[uint32]float64
	stats Stats
}

// NewMap returns a MapAccumulator with the given initial capacity hint.
func NewMap(capacity int) *MapAccumulator {
	return &MapAccumulator{m: make(map[uint32]float64, capacity)}
}

// Accumulate implements Accumulator.
func (a *MapAccumulator) Accumulate(key uint32, value float64) {
	a.stats.Accumulates++
	if _, ok := a.m[key]; ok {
		a.stats.Hits++
	} else {
		a.stats.Misses++
		a.stats.Inserts++
	}
	a.m[key] += value
}

// Lookup implements Accumulator.
func (a *MapAccumulator) Lookup(key uint32) (float64, bool) {
	a.stats.Lookups++
	v, ok := a.m[key]
	return v, ok
}

// Gather implements Accumulator. Pairs are returned sorted by key so the
// oracle is deterministic.
func (a *MapAccumulator) Gather(dst []KV) []KV {
	a.stats.Gathers++
	start := len(dst)
	for k, v := range a.m {
		dst = append(dst, KV{k, v})
	}
	a.stats.GatheredKV += uint64(len(dst) - start)
	//asalint:hotalloc MapAccumulator is the reference oracle, not a production backend; the sort buys deterministic output, and oracle runs are never benchmarked
	sort.Slice(dst[start:], func(i, j int) bool { return dst[start+i].Key < dst[start+j].Key })
	return dst
}

// Reset implements Accumulator.
func (a *MapAccumulator) Reset() {
	a.stats.Resets++
	clear(a.m)
}

// Stats implements Accumulator.
func (a *MapAccumulator) Stats() Stats { return a.stats }

// Name implements Accumulator.
func (a *MapAccumulator) Name() string { return "gomap" }

var _ Accumulator = (*MapAccumulator)(nil)
