package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAddAndGet(t *testing.T) {
	b := NewBreakdown()
	b.Add(KernelPageRank, 100*time.Millisecond)
	b.Add(KernelPageRank, 50*time.Millisecond)
	b.Add(KernelFindBestCommunity, 300*time.Millisecond)
	if b.Get(KernelPageRank) != 150*time.Millisecond {
		t.Fatalf("Get = %v", b.Get(KernelPageRank))
	}
	if b.Count(KernelPageRank) != 2 {
		t.Fatalf("Count = %d", b.Count(KernelPageRank))
	}
	if b.Total() != 450*time.Millisecond {
		t.Fatalf("Total = %v", b.Total())
	}
	if s := b.Share(KernelFindBestCommunity); s < 0.66 || s > 0.67 {
		t.Fatalf("Share = %g", s)
	}
}

func TestTimeHelper(t *testing.T) {
	b := NewBreakdown()
	b.Time("work", func() { time.Sleep(2 * time.Millisecond) })
	if b.Get("work") < 2*time.Millisecond {
		t.Fatalf("timed span too short: %v", b.Get("work"))
	}
}

func TestEmptyBreakdown(t *testing.T) {
	b := NewBreakdown()
	if b.Total() != 0 || b.Share("x") != 0 || len(b.Names()) != 0 {
		t.Fatal("empty breakdown misbehaves")
	}
}

func TestConcurrentAdd(t *testing.T) {
	b := NewBreakdown()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				b.Add("k", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if b.Get("k") != 8000*time.Microsecond {
		t.Fatalf("concurrent adds lost: %v", b.Get("k"))
	}
}

func TestObserveAndMean(t *testing.T) {
	b := NewBreakdown()
	if b.Mean(GaugeSweepImbalance) != 0 || b.Samples(GaugeSweepImbalance) != 0 {
		t.Fatal("empty gauge misbehaves")
	}
	b.Observe(GaugeSweepImbalance, 1.0)
	b.Observe(GaugeSweepImbalance, 2.0)
	b.Observe(GaugeSweepSteals, 7)
	if m := b.Mean(GaugeSweepImbalance); m != 1.5 {
		t.Fatalf("Mean = %g, want 1.5", m)
	}
	if b.Samples(GaugeSweepImbalance) != 2 {
		t.Fatalf("Samples = %d", b.Samples(GaugeSweepImbalance))
	}
	// Gauges never pollute the duration totals.
	if b.Total() != 0 {
		t.Fatalf("gauges leaked into Total: %v", b.Total())
	}
	names := b.GaugeNames()
	if len(names) != 2 || names[0] != GaugeSweepImbalance {
		t.Fatalf("GaugeNames = %v", names)
	}
	if s := b.String(); !strings.Contains(s, GaugeSweepImbalance) {
		t.Fatalf("String misses gauges: %q", s)
	}
}

func TestMergeGauges(t *testing.T) {
	a := NewBreakdown()
	a.Observe("g", 1)
	b := NewBreakdown()
	b.Observe("g", 3)
	a.Merge(b)
	if m := a.Mean("g"); m != 2 {
		t.Fatalf("merged mean = %g, want 2", m)
	}
	if a.Samples("g") != 2 {
		t.Fatalf("merged samples = %d", a.Samples("g"))
	}
}

func TestConcurrentObserve(t *testing.T) {
	b := NewBreakdown()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				b.Observe("g", 1)
			}
		}()
	}
	wg.Wait()
	if b.Samples("g") != 8000 || b.Mean("g") != 1 {
		t.Fatalf("concurrent observes lost: %d samples, mean %g", b.Samples("g"), b.Mean("g"))
	}
}

func TestMergeAndString(t *testing.T) {
	a := NewBreakdown()
	a.Add("x", time.Second)
	b := NewBreakdown()
	b.Add("x", time.Second)
	b.Add("y", 2*time.Second)
	a.Merge(b)
	if a.Get("x") != 2*time.Second || a.Get("y") != 2*time.Second {
		t.Fatal("merge wrong")
	}
	s := a.String()
	if !strings.Contains(s, "x") || !strings.Contains(s, "y") || !strings.Contains(s, "%") {
		t.Fatalf("String output: %q", s)
	}
	names := a.Names()
	if len(names) != 2 || names[0] != "x" {
		t.Fatalf("Names = %v", names)
	}
}
