package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAddAndGet(t *testing.T) {
	b := NewBreakdown()
	b.Add(KernelPageRank, 100*time.Millisecond)
	b.Add(KernelPageRank, 50*time.Millisecond)
	b.Add(KernelFindBestCommunity, 300*time.Millisecond)
	if b.Get(KernelPageRank) != 150*time.Millisecond {
		t.Fatalf("Get = %v", b.Get(KernelPageRank))
	}
	if b.Count(KernelPageRank) != 2 {
		t.Fatalf("Count = %d", b.Count(KernelPageRank))
	}
	if b.Total() != 450*time.Millisecond {
		t.Fatalf("Total = %v", b.Total())
	}
	if s := b.Share(KernelFindBestCommunity); s < 0.66 || s > 0.67 {
		t.Fatalf("Share = %g", s)
	}
}

func TestTimeHelper(t *testing.T) {
	b := NewBreakdown()
	b.Time("work", func() { time.Sleep(2 * time.Millisecond) })
	if b.Get("work") < 2*time.Millisecond {
		t.Fatalf("timed span too short: %v", b.Get("work"))
	}
}

func TestEmptyBreakdown(t *testing.T) {
	b := NewBreakdown()
	if b.Total() != 0 || b.Share("x") != 0 || len(b.Names()) != 0 {
		t.Fatal("empty breakdown misbehaves")
	}
}

func TestConcurrentAdd(t *testing.T) {
	b := NewBreakdown()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				b.Add("k", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if b.Get("k") != 8000*time.Microsecond {
		t.Fatalf("concurrent adds lost: %v", b.Get("k"))
	}
}

func TestMergeAndString(t *testing.T) {
	a := NewBreakdown()
	a.Add("x", time.Second)
	b := NewBreakdown()
	b.Add("x", time.Second)
	b.Add("y", 2*time.Second)
	a.Merge(b)
	if a.Get("x") != 2*time.Second || a.Get("y") != 2*time.Second {
		t.Fatal("merge wrong")
	}
	s := a.String()
	if !strings.Contains(s, "x") || !strings.Contains(s, "y") || !strings.Contains(s, "%") {
		t.Fatalf("String output: %q", s)
	}
	names := a.Names()
	if len(names) != 2 || names[0] != "x" {
		t.Fatalf("Names = %v", names)
	}
}
