package trace

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// DefaultLatencyBounds returns the fixed bucket upper bounds used for the
// serving layer's latency histograms: a coarse exponential ladder from 100µs
// to 60s. Fixed buckets (rather than adaptive ones) make merges exact and
// snapshots deterministic: two histograms over the same bounds merge by
// integer addition, so aggregation order can never change a quantile.
func DefaultLatencyBounds() []time.Duration {
	return []time.Duration{
		100 * time.Microsecond,
		250 * time.Microsecond,
		500 * time.Microsecond,
		1 * time.Millisecond,
		2500 * time.Microsecond,
		5 * time.Millisecond,
		10 * time.Millisecond,
		25 * time.Millisecond,
		50 * time.Millisecond,
		100 * time.Millisecond,
		250 * time.Millisecond,
		500 * time.Millisecond,
		1 * time.Second,
		2500 * time.Millisecond,
		5 * time.Second,
		10 * time.Second,
		30 * time.Second,
		60 * time.Second,
	}
}

// Histogram is a fixed-bucket duration histogram, safe for concurrent
// Observe. Bucket i counts observations d <= bounds[i] (cumulatively
// disjoint: the smallest such i); the final implicit bucket counts
// everything above the largest bound.
type Histogram struct {
	bounds []time.Duration

	// The mutable state shares Breakdown's mutex discipline: one short
	// critical section per Observe.
	mu     sync.Mutex
	counts []uint64
	sum    time.Duration
	total  uint64
}

// NewHistogram returns a histogram over the given strictly increasing bucket
// upper bounds. It panics on empty or unsorted bounds — a programmer error,
// caught at construction rather than as silently wrong quantiles.
func NewHistogram(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		panic("trace: NewHistogram needs at least one bucket bound")
	}
	own := make([]time.Duration, len(bounds))
	copy(own, bounds)
	for i := 1; i < len(own); i++ {
		if own[i] <= own[i-1] {
			panic(fmt.Sprintf("trace: histogram bounds not strictly increasing at %d (%v <= %v)",
				i, own[i], own[i-1]))
		}
	}
	return &Histogram{bounds: own, counts: make([]uint64, len(own)+1)}
}

// NewLatencyHistogram returns a histogram over DefaultLatencyBounds.
func NewLatencyHistogram() *Histogram { return NewHistogram(DefaultLatencyBounds()) }

// DefaultGCPauseBounds returns the fixed bucket upper bounds for GC
// stop-the-world pause histograms: a finer exponential ladder from 10µs to
// 1s, matched to the sub-millisecond pauses of Go's collector. All nodes use
// the same bounds so cluster federation can Merge them exactly.
func DefaultGCPauseBounds() []time.Duration {
	return []time.Duration{
		10 * time.Microsecond,
		25 * time.Microsecond,
		50 * time.Microsecond,
		100 * time.Microsecond,
		250 * time.Microsecond,
		500 * time.Microsecond,
		1 * time.Millisecond,
		2500 * time.Microsecond,
		5 * time.Millisecond,
		10 * time.Millisecond,
		25 * time.Millisecond,
		50 * time.Millisecond,
		100 * time.Millisecond,
		250 * time.Millisecond,
		500 * time.Millisecond,
		1 * time.Second,
	}
}

// NewHistogramFromSnapshot reconstructs a live histogram from a snapshot
// that crossed the wire (the /metrics/snapshot federation path). Unlike
// NewHistogram it validates with errors rather than panics — remote data is
// input, not programmer error.
func NewHistogramFromSnapshot(s HistogramSnapshot) (*Histogram, error) {
	if len(s.Bounds) == 0 {
		return nil, fmt.Errorf("trace: snapshot has no bucket bounds")
	}
	for i := 1; i < len(s.Bounds); i++ {
		if s.Bounds[i] <= s.Bounds[i-1] {
			return nil, fmt.Errorf("trace: snapshot bounds not strictly increasing at %d (%v <= %v)",
				i, s.Bounds[i], s.Bounds[i-1])
		}
	}
	if len(s.Counts) != len(s.Bounds)+1 {
		return nil, fmt.Errorf("trace: snapshot has %d counts for %d bounds (want %d)",
			len(s.Counts), len(s.Bounds), len(s.Bounds)+1)
	}
	h := &Histogram{
		bounds: append([]time.Duration(nil), s.Bounds...),
		counts: append([]uint64(nil), s.Counts...),
		sum:    s.Sum,
		total:  s.Count,
	}
	return h, nil
}

// Observe records one duration sample. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.mu.Lock()
	h.counts[i]++
	h.sum += d
	h.total++
	h.mu.Unlock()
}

// Merge adds other's counts into h. The bucket bounds must be identical;
// merging is then exact integer addition, so any merge order yields the same
// histogram — the determinism property the tests pin.
func (h *Histogram) Merge(other *Histogram) error {
	if len(h.bounds) != len(other.bounds) {
		return fmt.Errorf("trace: histogram bounds differ (%d vs %d buckets)", len(h.bounds), len(other.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != other.bounds[i] {
			return fmt.Errorf("trace: histogram bound %d differs (%v vs %v)", i, h.bounds[i], other.bounds[i])
		}
	}
	snap := other.Snapshot()
	h.mu.Lock()
	for i, c := range snap.Counts {
		h.counts[i] += c
	}
	h.sum += snap.Sum
	h.total += snap.Count
	h.mu.Unlock()
	return nil
}

// HistogramSnapshot is a consistent point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Bounds []time.Duration // bucket upper bounds
	Counts []uint64        // len(Bounds)+1; last bucket is the overflow
	Sum    time.Duration
	Count  uint64
}

// Snapshot copies the histogram state under one lock acquisition.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum,
		Count:  h.total,
	}
	copy(s.Counts, h.counts)
	h.mu.Unlock()
	return s
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the upper
// bound of the bucket holding the ceil(q*Count)-th smallest observation.
// Observations in the overflow bucket report the largest finite bound (a
// lower bound in that case — "at least this slow"). Returns 0 when empty.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if float64(rank) < q*float64(s.Count) || rank == 0 {
		rank++ // ceil
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Bounds[len(s.Bounds)-1]
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// P50 returns the median's bucket bound.
func (s HistogramSnapshot) P50() time.Duration { return s.Quantile(0.50) }

// P90 returns the 90th percentile's bucket bound.
func (s HistogramSnapshot) P90() time.Duration { return s.Quantile(0.90) }

// P99 returns the 99th percentile's bucket bound.
func (s HistogramSnapshot) P99() time.Duration { return s.Quantile(0.99) }

// WritePrometheus renders the snapshot in Prometheus histogram exposition
// format under the given fully qualified metric name (e.g.
// "asamap_request_seconds"): cumulative le buckets in seconds, +Inf, _sum,
// and _count.
func (s HistogramSnapshot) WritePrometheus(w io.Writer, name, help string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum uint64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatSeconds(b), cum); err != nil {
			return err
		}
	}
	cum += s.Counts[len(s.Counts)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %g\n", name, s.Sum.Seconds()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
	return err
}

// formatSeconds renders a duration bound as a seconds string without
// trailing zeros ("0.005", "2.5", "60").
func formatSeconds(d time.Duration) string {
	return fmt.Sprintf("%g", d.Seconds())
}
