package trace

import (
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/asamap/asamap/internal/graph"
)

// SpanSnapshot is one kernel's accumulated duration and invocation count.
type SpanSnapshot struct {
	Name  string
	Total time.Duration
	Count uint64
}

// GaugeSnapshot is one gauge's running sum and sample count; Mean is 0 when
// no samples were observed.
type GaugeSnapshot struct {
	Name  string
	Sum   float64
	Count uint64
}

// Mean returns the mean of the gauge's samples (0 when none).
func (g GaugeSnapshot) Mean() float64 {
	if g.Count == 0 {
		return 0
	}
	return g.Sum / float64(g.Count)
}

// EventSnapshot is one event counter's accumulated count (e.g. the ASA CAM's
// hits, misses, evictions, or overflow pairs).
type EventSnapshot struct {
	Name  string
	Count uint64
}

// Snapshot is a consistent point-in-time copy of a Breakdown, taken under one
// lock acquisition, with deterministic (name-sorted) ordering. It is what the
// serving layer's /metrics endpoint exports.
type Snapshot struct {
	Spans  []SpanSnapshot
	Gauges []GaugeSnapshot
	Events []EventSnapshot
}

// Snapshot copies the breakdown's current state. Unlike the per-name getters,
// all values come from one critical section, so sums are mutually consistent
// even while other goroutines keep recording.
func (b *Breakdown) Snapshot() Snapshot {
	b.mu.Lock()
	s := Snapshot{
		Spans:  make([]SpanSnapshot, 0, len(b.spans)),
		Gauges: make([]GaugeSnapshot, 0, len(b.gauges)),
	}
	for _, name := range graph.SortedKeys(b.spans) {
		s.Spans = append(s.Spans, SpanSnapshot{Name: name, Total: b.spans[name], Count: b.counts[name]})
	}
	for _, name := range graph.SortedKeys(b.gauges) {
		g := b.gauges[name]
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: name, Sum: g.sum, Count: g.count})
	}
	for _, name := range graph.SortedKeys(b.events) {
		s.Events = append(s.Events, EventSnapshot{Name: name, Count: b.events[name]})
	}
	b.mu.Unlock()
	return s
}

// WritePrometheus renders the snapshot in Prometheus text exposition format
// under the given metric namespace (e.g. "asamap"): per-kernel cumulative
// seconds and invocation counters, and per-gauge sample sums/counts (from
// which a scraper derives means). Label values are the kernel/gauge names.
func (s Snapshot) WritePrometheus(w io.Writer, namespace string) error {
	if len(s.Spans) > 0 {
		fmt.Fprintf(w, "# HELP %s_kernel_seconds_total Cumulative wall-clock seconds per kernel.\n", namespace)
		fmt.Fprintf(w, "# TYPE %s_kernel_seconds_total counter\n", namespace)
		for _, sp := range s.Spans {
			fmt.Fprintf(w, "%s_kernel_seconds_total{kernel=%q} %g\n", namespace, promLabel(sp.Name), sp.Total.Seconds())
		}
		fmt.Fprintf(w, "# HELP %s_kernel_invocations_total Recorded spans per kernel.\n", namespace)
		fmt.Fprintf(w, "# TYPE %s_kernel_invocations_total counter\n", namespace)
		for _, sp := range s.Spans {
			fmt.Fprintf(w, "%s_kernel_invocations_total{kernel=%q} %d\n", namespace, promLabel(sp.Name), sp.Count)
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintf(w, "# HELP %s_gauge_sum Running sum of dimensionless gauge samples.\n", namespace)
		fmt.Fprintf(w, "# TYPE %s_gauge_sum counter\n", namespace)
		for _, g := range s.Gauges {
			fmt.Fprintf(w, "%s_gauge_sum{gauge=%q} %g\n", namespace, promLabel(g.Name), g.Sum)
		}
		fmt.Fprintf(w, "# HELP %s_gauge_samples_total Number of gauge samples observed.\n", namespace)
		fmt.Fprintf(w, "# TYPE %s_gauge_samples_total counter\n", namespace)
		for _, g := range s.Gauges {
			fmt.Fprintf(w, "%s_gauge_samples_total{gauge=%q} %d\n", namespace, promLabel(g.Name), g.Count)
		}
	}
	if len(s.Events) > 0 {
		fmt.Fprintf(w, "# HELP %s_events_total Accumulated kernel event counts (accumulator hits/misses/evictions, per-level folds).\n", namespace)
		fmt.Fprintf(w, "# TYPE %s_events_total counter\n", namespace)
		for _, e := range s.Events {
			fmt.Fprintf(w, "%s_events_total{event=%q} %d\n", namespace, promLabel(e.Name), e.Count)
		}
	}
	return nil
}

// promLabel strips characters that would need escaping inside a Prometheus
// label value beyond what %q already provides (newlines never occur in
// kernel names, but the cheap guard keeps the format valid for any input).
func promLabel(s string) string {
	return strings.NewReplacer("\n", " ", "\\", "/").Replace(s)
}
