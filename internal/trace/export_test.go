package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSnapshotDeterministicAndConsistent(t *testing.T) {
	b := NewBreakdown()
	b.Add(KernelPageRank, 2*time.Second)
	b.Add(KernelFindBestCommunity, time.Second)
	b.Add(KernelFindBestCommunity, time.Second)
	b.Observe(GaugeSweepImbalance, 1.5)
	b.Observe(GaugeSweepImbalance, 2.5)
	b.Observe(GaugeSweepSteals, 7)

	s := b.Snapshot()
	if len(s.Spans) != 2 || len(s.Gauges) != 2 {
		t.Fatalf("snapshot shape: %d spans, %d gauges", len(s.Spans), len(s.Gauges))
	}
	// Name-sorted: FindBestCommunity < PageRank.
	if s.Spans[0].Name != KernelFindBestCommunity || s.Spans[1].Name != KernelPageRank {
		t.Fatalf("spans not sorted: %v", s.Spans)
	}
	if s.Spans[0].Total != 2*time.Second || s.Spans[0].Count != 2 {
		t.Fatalf("FindBestCommunity span: %+v", s.Spans[0])
	}
	if got := s.Gauges[0].Mean(); got != 2.0 {
		t.Fatalf("imbalance mean %g, want 2.0", got)
	}
}

func TestSnapshotUnderConcurrentRecording(t *testing.T) {
	b := NewBreakdown()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				b.Add("k", time.Microsecond)
				b.Observe("g", 1)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			s := b.Snapshot()
			for _, sp := range s.Spans {
				if sp.Count == 0 && sp.Total != 0 {
					t.Error("span with duration but zero count")
					return
				}
			}
		}
	}()
	time.Sleep(5 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestWritePrometheus(t *testing.T) {
	b := NewBreakdown()
	b.Add(KernelPageRank, 1500*time.Millisecond)
	b.Observe(GaugeSweepSteals, 3)
	var sb strings.Builder
	if err := b.Snapshot().WritePrometheus(&sb, "asamap"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`asamap_kernel_seconds_total{kernel="PageRank"} 1.5`,
		`asamap_kernel_invocations_total{kernel="PageRank"} 1`,
		`asamap_gauge_sum{gauge="SweepSteals"} 3`,
		`asamap_gauge_samples_total{gauge="SweepSteals"} 1`,
		"# TYPE asamap_kernel_seconds_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusEmpty(t *testing.T) {
	var sb strings.Builder
	if err := NewBreakdown().Snapshot().WritePrometheus(&sb, "x"); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("empty breakdown produced output: %q", sb.String())
	}
}
