// Package trace collects per-kernel wall-clock timings, reproducing the
// kernel breakdown instrumentation behind the paper's Figure 2 and Figure 7.
package trace

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/asamap/asamap/internal/clock"
	"github.com/asamap/asamap/internal/graph"
)

// walltime is the clock behind Time. All wall-clock reads in this
// repository flow through internal/clock (the entropy analyzer enforces
// it); a package variable keeps Breakdown's zero-setup ergonomics while
// leaving the read injectable.
var walltime clock.Clock = clock.Real{}

// Kernel names matching the paper's decomposition of HyPC-Map.
const (
	KernelPageRank          = "PageRank"
	KernelFindBestCommunity = "FindBestCommunity"
	KernelConvert2SuperNode = "Convert2SuperNode"
	KernelUpdateMembers     = "UpdateMembers"
)

// Gauge names recorded by the sweep scheduler (dimensionless samples,
// aggregated as means rather than sums).
const (
	// GaugeSweepImbalance is the per-sweep worker busy-time imbalance ratio
	// (max/mean) of the FindBestCommunity dispatch.
	GaugeSweepImbalance = "SweepImbalance"
	// GaugeSweepSteals is the number of stolen blocks per sweep.
	GaugeSweepSteals = "SweepSteals"
)

// Breakdown accumulates named durations, dimensionless gauge samples, and
// monotone event counters. It is safe for concurrent Add/Observe/AddEvents.
type Breakdown struct {
	mu     sync.Mutex
	spans  map[string]time.Duration
	counts map[string]uint64
	gauges map[string]gauge
	events map[string]uint64
}

// gauge is a running sum/count of dimensionless samples.
type gauge struct {
	sum   float64
	count uint64
}

// NewBreakdown returns an empty Breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{
		spans:  make(map[string]time.Duration),
		counts: make(map[string]uint64),
		gauges: make(map[string]gauge),
		events: make(map[string]uint64),
	}
}

// Add records d under name.
func (b *Breakdown) Add(name string, d time.Duration) {
	b.mu.Lock()
	b.spans[name] += d
	b.counts[name]++
	b.mu.Unlock()
}

// Time runs fn and records its duration under name.
func (b *Breakdown) Time(name string, fn func()) {
	start := walltime.Now()
	fn()
	b.Add(name, walltime.Since(start))
}

// Observe records one sample of the named gauge. Gauges are dimensionless
// per-event ratios (e.g. a sweep's worker imbalance); they aggregate as
// means, not sums, and do not contribute to Total.
func (b *Breakdown) Observe(name string, v float64) {
	b.mu.Lock()
	g := b.gauges[name]
	g.sum += v
	g.count++
	b.gauges[name] = g
	b.mu.Unlock()
}

// Mean returns the mean of the samples observed under name (0 when none).
func (b *Breakdown) Mean(name string) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	g := b.gauges[name]
	if g.count == 0 {
		return 0
	}
	return g.sum / float64(g.count)
}

// Samples returns how many samples were observed under name.
func (b *Breakdown) Samples(name string) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.gauges[name].count
}

// GaugeNames returns all observed gauge names, sorted.
func (b *Breakdown) GaugeNames() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return graph.SortedKeys(b.gauges)
}

// AddEvents adds n occurrences of the named event counter. Event counters
// carry the accumulator telemetry of the paper's evaluation — CAM hits,
// misses, evictions, overflow pairs — from the kernel layer to /metrics and
// run artifacts; they are monotone sums, never means.
func (b *Breakdown) AddEvents(name string, n uint64) {
	if n == 0 {
		return
	}
	b.mu.Lock()
	b.events[name] += n
	b.mu.Unlock()
}

// Events returns the accumulated count of the named event (0 when never
// recorded).
func (b *Breakdown) Events(name string) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.events[name]
}

// EventNames returns all recorded event names, sorted.
func (b *Breakdown) EventNames() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return graph.SortedKeys(b.events)
}

// Get returns the accumulated duration for name.
func (b *Breakdown) Get(name string) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.spans[name]
}

// Count returns how many spans were recorded under name.
func (b *Breakdown) Count(name string) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.counts[name]
}

// Total returns the sum over all names.
func (b *Breakdown) Total() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	var t time.Duration
	for _, d := range b.spans {
		t += d
	}
	return t
}

// Share returns name's fraction of Total (0 when empty).
func (b *Breakdown) Share(name string) float64 {
	total := b.Total()
	if total == 0 {
		return 0
	}
	return float64(b.Get(name)) / float64(total)
}

// Names returns all recorded kernel names, sorted.
func (b *Breakdown) Names() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return graph.SortedKeys(b.spans)
}

// Merge adds all of other's spans into b.
func (b *Breakdown) Merge(other *Breakdown) {
	other.mu.Lock()
	spans := make(map[string]time.Duration, len(other.spans))
	counts := make(map[string]uint64, len(other.counts))
	gauges := make(map[string]gauge, len(other.gauges))
	events := make(map[string]uint64, len(other.events))
	for k, v := range other.spans {
		spans[k] = v
	}
	for k, v := range other.counts {
		counts[k] = v
	}
	for k, v := range other.gauges {
		gauges[k] = v
	}
	for k, v := range other.events {
		events[k] = v
	}
	other.mu.Unlock()

	b.mu.Lock()
	for k, v := range spans {
		b.spans[k] += v
		b.counts[k] += counts[k]
	}
	// Per-key merge: each key's sum/count pair is read-modify-written
	// independently, so iteration order cannot change any final value.
	for k, v := range gauges { //asalint:ordered independent keyed merges commute
		g := b.gauges[k]
		g.sum += v.sum
		g.count += v.count
		b.gauges[k] = g
	}
	for k, v := range events {
		b.events[k] += v
	}
	b.mu.Unlock()
}

// String renders the breakdown as one line per kernel with shares.
func (b *Breakdown) String() string {
	var sb strings.Builder
	total := b.Total()
	for _, n := range b.Names() {
		d := b.Get(n)
		share := 0.0
		if total > 0 {
			share = 100 * float64(d) / float64(total)
		}
		fmt.Fprintf(&sb, "%-20s %12v  %5.1f%%\n", n, d.Round(time.Microsecond), share)
	}
	for _, n := range b.GaugeNames() {
		fmt.Fprintf(&sb, "%-20s %12.3f  (mean of %d samples)\n", n, b.Mean(n), b.Samples(n))
	}
	for _, n := range b.EventNames() {
		fmt.Fprintf(&sb, "%-20s %12d  events\n", n, b.Events(n))
	}
	return sb.String()
}
