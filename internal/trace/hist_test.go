package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramQuantiles pins the quantile semantics on known observations:
// the reported value is the upper bound of the bucket holding the ceil-rank
// observation.
func TestHistogramQuantiles(t *testing.T) {
	bounds := []time.Duration{
		1 * time.Millisecond,
		10 * time.Millisecond,
		100 * time.Millisecond,
	}
	h := NewHistogram(bounds)
	// 8 obs <=1ms, 1 obs in (1ms,10ms], 1 obs in (10ms,100ms].
	for i := 0; i < 8; i++ {
		h.Observe(500 * time.Microsecond)
	}
	h.Observe(5 * time.Millisecond)
	h.Observe(50 * time.Millisecond)

	s := h.Snapshot()
	if s.Count != 10 {
		t.Fatalf("count = %d, want 10", s.Count)
	}
	if got := s.P50(); got != 1*time.Millisecond {
		t.Errorf("p50 = %v, want 1ms", got)
	}
	if got := s.P90(); got != 10*time.Millisecond {
		t.Errorf("p90 = %v, want 10ms", got)
	}
	if got := s.P99(); got != 100*time.Millisecond {
		t.Errorf("p99 = %v, want 100ms", got)
	}
	if got := s.Quantile(1.0); got != 100*time.Millisecond {
		t.Errorf("q1.0 = %v, want 100ms", got)
	}
	// Exact bucket-edge observation lands in its own bucket (d <= bound).
	edge := NewHistogram(bounds)
	edge.Observe(1 * time.Millisecond)
	if got := edge.Snapshot().Counts[0]; got != 1 {
		t.Errorf("edge observation missed bucket 0: counts=%v", edge.Snapshot().Counts)
	}
}

// TestHistogramOverflowAndEmpty: overflow observations report the largest
// finite bound; an empty histogram reports 0.
func TestHistogramOverflowAndEmpty(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Millisecond, time.Second})
	if got := h.Snapshot().P99(); got != 0 {
		t.Errorf("empty p99 = %v, want 0", got)
	}
	h.Observe(5 * time.Second) // overflow bucket
	s := h.Snapshot()
	if s.Counts[len(s.Counts)-1] != 1 {
		t.Fatalf("overflow bucket not hit: %v", s.Counts)
	}
	if got := s.P50(); got != time.Second {
		t.Errorf("overflow p50 = %v, want largest finite bound 1s", got)
	}
	// Negative durations clamp to zero (first bucket).
	h.Observe(-time.Second)
	if got := h.Snapshot().Counts[0]; got != 1 {
		t.Errorf("negative observation did not clamp into bucket 0")
	}
}

// TestHistogramMergeDeterminism: merging in either order, or observing
// everything directly into one histogram, yields byte-identical snapshots —
// the fixed-bucket exactness the serving layer's aggregation relies on.
func TestHistogramMergeDeterminism(t *testing.T) {
	obsA := []time.Duration{200 * time.Microsecond, 3 * time.Millisecond, 70 * time.Second}
	obsB := []time.Duration{800 * time.Microsecond, 40 * time.Millisecond, 40 * time.Millisecond}

	fill := func(ds []time.Duration) *Histogram {
		h := NewLatencyHistogram()
		for _, d := range ds {
			h.Observe(d)
		}
		return h
	}
	ab := fill(obsA)
	if err := ab.Merge(fill(obsB)); err != nil {
		t.Fatal(err)
	}
	ba := fill(obsB)
	if err := ba.Merge(fill(obsA)); err != nil {
		t.Fatal(err)
	}
	direct := fill(append(append([]time.Duration{}, obsA...), obsB...))

	render := func(h *Histogram) string {
		var buf bytes.Buffer
		if err := h.Snapshot().WritePrometheus(&buf, "t_seconds", ""); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if render(ab) != render(ba) || render(ab) != render(direct) {
		t.Errorf("merge order changed the histogram:\nA+B:\n%s\nB+A:\n%s\ndirect:\n%s",
			render(ab), render(ba), render(direct))
	}
}

// TestHistogramMergeMismatch: merging across different bucket ladders is an
// error, not a silent approximation.
func TestHistogramMergeMismatch(t *testing.T) {
	a := NewHistogram([]time.Duration{time.Millisecond})
	b := NewHistogram([]time.Duration{time.Millisecond, time.Second})
	if err := a.Merge(b); err == nil {
		t.Error("bucket-count mismatch not rejected")
	}
	c := NewHistogram([]time.Duration{2 * time.Millisecond})
	if err := a.Merge(c); err == nil {
		t.Error("bound-value mismatch not rejected")
	}
}

// TestHistogramConcurrentObserve: concurrent observers never lose samples
// (and under -race, never race).
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewLatencyHistogram()
	var wg sync.WaitGroup
	const goroutines, per = 8, 250
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g+1) * time.Millisecond)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != goroutines*per {
		t.Errorf("count = %d, want %d", got, goroutines*per)
	}
}

// TestHistogramPrometheus pins the exposition format: cumulative le buckets in
// seconds, +Inf, _sum, _count.
func TestHistogramPrometheus(t *testing.T) {
	h := NewHistogram([]time.Duration{5 * time.Millisecond, 2500 * time.Millisecond})
	h.Observe(time.Millisecond)
	h.Observe(time.Second)
	h.Observe(time.Minute)
	var buf bytes.Buffer
	if err := h.Snapshot().WritePrometheus(&buf, "x_seconds", "test histogram"); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{
		"# HELP x_seconds test histogram",
		"# TYPE x_seconds histogram",
		`x_seconds_bucket{le="0.005"} 1`,
		`x_seconds_bucket{le="2.5"} 2`,
		`x_seconds_bucket{le="+Inf"} 3`,
		"x_seconds_sum 61.001",
		"x_seconds_count 3",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
}

// TestNewHistogramPanics: construction rejects empty and unsorted bounds.
func TestNewHistogramPanics(t *testing.T) {
	for name, bounds := range map[string][]time.Duration{
		"empty":    nil,
		"unsorted": {time.Second, time.Millisecond},
		"dup":      {time.Second, time.Second},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bounds did not panic", name)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

// TestBreakdownEvents: event counters accumulate, merge, snapshot in sorted
// order, and render in String and Prometheus output.
func TestBreakdownEvents(t *testing.T) {
	b := NewBreakdown()
	b.AddEvents("AccumHits", 10)
	b.AddEvents("AccumHits", 5)
	b.AddEvents("AccumMisses", 3)
	b.AddEvents("Zero", 0) // no-op: never recorded
	if got := b.Events("AccumHits"); got != 15 {
		t.Errorf("AccumHits = %d, want 15", got)
	}
	if got := b.Events("Zero"); got != 0 {
		t.Errorf("zero-count event was recorded: %d", got)
	}

	other := NewBreakdown()
	other.AddEvents("AccumMisses", 7)
	other.AddEvents("AccumEvictions", 2)
	b.Merge(other)
	if got := b.Events("AccumMisses"); got != 10 {
		t.Errorf("merged AccumMisses = %d, want 10", got)
	}

	s := b.Snapshot()
	wantNames := []string{"AccumEvictions", "AccumHits", "AccumMisses"}
	if len(s.Events) != len(wantNames) {
		t.Fatalf("snapshot events = %v", s.Events)
	}
	for i, e := range s.Events {
		if e.Name != wantNames[i] {
			t.Errorf("snapshot event %d = %s, want %s (sorted)", i, e.Name, wantNames[i])
		}
	}

	var buf bytes.Buffer
	if err := s.WritePrometheus(&buf, "asamap"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `asamap_events_total{event="AccumHits"} 15`) {
		t.Errorf("Prometheus exposition missing event counter:\n%s", buf.String())
	}
	if !strings.Contains(b.String(), "AccumHits") {
		t.Errorf("String() missing event line:\n%s", b.String())
	}
}
