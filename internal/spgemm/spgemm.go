// Package spgemm implements column-wise sparse matrix–matrix multiplication
// (Gustavson's algorithm over columns) with the same pluggable sparse
// accumulator used by the Infomap kernel. SpGEMM is the computation the ASA
// accelerator of Zhang et al. was originally designed for; running it through
// the identical accum.Accumulator interface demonstrates the paper's claim
// that the generalized ASA interface serves any hash-accumulation workload.
package spgemm

import (
	"fmt"
	"sort"

	"github.com/asamap/asamap/internal/accum"
	"github.com/asamap/asamap/internal/rng"
)

// Entry is one nonzero of a sparse matrix.
type Entry struct {
	Row, Col uint32
	Val      float64
}

// Matrix is an immutable sparse matrix in compressed-sparse-column (CSC)
// form, the layout column-wise SpGEMM consumes.
type Matrix struct {
	rows, cols int
	colPtr     []int64
	rowIdx     []uint32
	vals       []float64
}

// New builds a Matrix from entries. Duplicate (row, col) entries are summed;
// explicit zeros are dropped.
func New(rows, cols int, entries []Entry) (*Matrix, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("spgemm: negative dimensions %dx%d", rows, cols)
	}
	for _, e := range entries {
		if int(e.Row) >= rows || int(e.Col) >= cols {
			return nil, fmt.Errorf("spgemm: entry (%d,%d) outside %dx%d", e.Row, e.Col, rows, cols)
		}
	}
	sorted := make([]Entry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Col != sorted[j].Col {
			return sorted[i].Col < sorted[j].Col
		}
		return sorted[i].Row < sorted[j].Row
	})
	m := &Matrix{rows: rows, cols: cols, colPtr: make([]int64, cols+1)}
	var lastRow, lastCol uint32
	have := false
	for _, e := range sorted {
		if e.Val == 0 {
			continue
		}
		if have && lastRow == e.Row && lastCol == e.Col {
			m.vals[len(m.vals)-1] += e.Val
			continue
		}
		m.rowIdx = append(m.rowIdx, e.Row)
		m.vals = append(m.vals, e.Val)
		m.colPtr[e.Col+1]++
		lastRow, lastCol, have = e.Row, e.Col, true
	}
	for c := 0; c < cols; c++ {
		m.colPtr[c+1] += m.colPtr[c]
	}
	return m, nil
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.cols }

// NNZ returns the number of stored nonzeros.
func (m *Matrix) NNZ() int { return len(m.rowIdx) }

// ColEntries returns the row indices and values of column j (aliases
// internal storage; do not modify).
func (m *Matrix) ColEntries(j int) ([]uint32, []float64) {
	lo, hi := m.colPtr[j], m.colPtr[j+1]
	return m.rowIdx[lo:hi], m.vals[lo:hi]
}

// At returns the value at (i, j), zero when not stored.
func (m *Matrix) At(i, j int) float64 {
	rows, vals := m.ColEntries(j)
	k := sort.Search(len(rows), func(k int) bool { return rows[k] >= uint32(i) })
	if k < len(rows) && rows[k] == uint32(i) {
		return vals[k]
	}
	return 0
}

// Entries returns all nonzeros in column-major order.
func (m *Matrix) Entries() []Entry {
	out := make([]Entry, 0, m.NNZ())
	for j := 0; j < m.cols; j++ {
		rows, vals := m.ColEntries(j)
		for k := range rows {
			out = append(out, Entry{Row: rows[k], Col: uint32(j), Val: vals[k]})
		}
	}
	return out
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Row: uint32(i), Col: uint32(i), Val: 1}
	}
	m, err := New(n, n, entries)
	if err != nil {
		panic(err) // cannot happen: entries are in range by construction
	}
	return m
}

// Random returns a rows×cols matrix with approximately nnzPerCol uniformly
// placed nonzeros per column, values in (0, 1].
func Random(rows, cols, nnzPerCol int, r *rng.RNG) (*Matrix, error) {
	if rows <= 0 || cols <= 0 || nnzPerCol <= 0 {
		return nil, fmt.Errorf("spgemm: invalid Random(%d,%d,%d)", rows, cols, nnzPerCol)
	}
	var entries []Entry
	for j := 0; j < cols; j++ {
		for k := 0; k < nnzPerCol; k++ {
			entries = append(entries, Entry{
				Row: uint32(r.Intn(rows)),
				Col: uint32(j),
				Val: r.Float64() + 1e-9,
			})
		}
	}
	return New(rows, cols, entries)
}

// RandomPowerLaw returns a square matrix whose column nonzero counts follow
// a power law — the skewed sparsity pattern (à la R-MAT) where CAM overflow
// behaviour matters.
func RandomPowerLaw(n, minNNZ, maxNNZ int, exponent float64, r *rng.RNG) (*Matrix, error) {
	if n <= 0 {
		return nil, fmt.Errorf("spgemm: invalid size %d", n)
	}
	var entries []Entry
	for j := 0; j < n; j++ {
		nnz := r.PowerLaw(minNNZ, maxNNZ, exponent)
		for k := 0; k < nnz; k++ {
			entries = append(entries, Entry{
				Row: uint32(r.Intn(n)),
				Col: uint32(j),
				Val: r.Float64() + 1e-9,
			})
		}
	}
	return New(n, n, entries)
}

// Multiply computes C = A·B column-wise using acc as the per-column sparse
// accumulator: for each column j of B and each nonzero B(k,j), the scaled
// column A(:,k) is accumulated into C(:,j) keyed by row index — the exact
// loop structure of the ASA paper's SpGEMM formulation.
func Multiply(a, b *Matrix, acc accum.Accumulator) (*Matrix, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("spgemm: dimension mismatch %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols)
	}
	var out []Entry
	var buf []accum.KV
	for j := 0; j < b.cols; j++ {
		acc.Reset()
		bRows, bVals := b.ColEntries(j)
		for t := range bRows {
			k := int(bRows[t])
			aRows, aVals := a.ColEntries(k)
			for s := range aRows {
				acc.Accumulate(aRows[s], aVals[s]*bVals[t])
			}
		}
		buf = acc.Gather(buf[:0])
		for _, kv := range buf {
			if kv.Value != 0 {
				out = append(out, Entry{Row: kv.Key, Col: uint32(j), Val: kv.Value})
			}
		}
	}
	return New(a.rows, b.cols, out)
}
