package spgemm

import (
	"math"
	"testing"

	"github.com/asamap/asamap/internal/accum"
	"github.com/asamap/asamap/internal/asa"
	"github.com/asamap/asamap/internal/hashtab"
	"github.com/asamap/asamap/internal/rng"
)

func mustNew(t *testing.T, rows, cols int, entries []Entry) *Matrix {
	t.Helper()
	m, err := New(rows, cols, entries)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewBasics(t *testing.T) {
	m := mustNew(t, 3, 3, []Entry{{0, 0, 1}, {1, 1, 2}, {2, 0, 3}})
	if m.NNZ() != 3 || m.Rows() != 3 || m.Cols() != 3 {
		t.Fatalf("NNZ=%d", m.NNZ())
	}
	if m.At(2, 0) != 3 || m.At(0, 1) != 0 {
		t.Fatal("At wrong")
	}
}

func TestNewMergesDuplicatesAndDropsZeros(t *testing.T) {
	m := mustNew(t, 2, 2, []Entry{{0, 0, 1}, {0, 0, 2.5}, {1, 1, 0}})
	if m.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1", m.NNZ())
	}
	if m.At(0, 0) != 3.5 {
		t.Fatalf("merged = %g", m.At(0, 0))
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(2, 2, []Entry{{5, 0, 1}}); err == nil {
		t.Fatal("out-of-range row accepted")
	}
	if _, err := New(-1, 2, nil); err == nil {
		t.Fatal("negative dims accepted")
	}
}

func denseMultiply(a, b *Matrix) [][]float64 {
	c := make([][]float64, a.Rows())
	for i := range c {
		c[i] = make([]float64, b.Cols())
	}
	for j := 0; j < b.Cols(); j++ {
		bRows, bVals := b.ColEntries(j)
		for t := range bRows {
			k := int(bRows[t])
			aRows, aVals := a.ColEntries(k)
			for s := range aRows {
				c[aRows[s]][j] += aVals[s] * bVals[t]
			}
		}
	}
	return c
}

func accumulators() map[string]accum.Accumulator {
	return map[string]accum.Accumulator{
		"gomap":    accum.NewMap(16),
		"softhash": hashtab.New(16),
		"asa":      asa.MustNew(asa.DefaultConfig()),
		"asa-tiny": asa.MustNew(asa.Config{CapacityBytes: 64, EntryBytes: 16, Policy: asa.LRU}),
	}
}

func TestMultiplyIdentity(t *testing.T) {
	r := rng.New(1)
	a, err := Random(20, 20, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	for name, acc := range accumulators() {
		c, err := Multiply(a, Identity(20), acc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.NNZ() != a.NNZ() {
			t.Fatalf("%s: A·I has %d nnz, A has %d", name, c.NNZ(), a.NNZ())
		}
		for _, e := range a.Entries() {
			if math.Abs(c.At(int(e.Row), int(e.Col))-e.Val) > 1e-12 {
				t.Fatalf("%s: A·I differs at (%d,%d)", name, e.Row, e.Col)
			}
		}
	}
}

func TestMultiplyAgainstDense(t *testing.T) {
	r := rng.New(2)
	a, err := Random(30, 25, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(25, 35, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	want := denseMultiply(a, b)
	for name, acc := range accumulators() {
		c, err := Multiply(a, b, acc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := 0; i < 30; i++ {
			for j := 0; j < 35; j++ {
				if math.Abs(c.At(i, j)-want[i][j]) > 1e-9 {
					t.Fatalf("%s: C(%d,%d) = %g, want %g", name, i, j, c.At(i, j), want[i][j])
				}
			}
		}
	}
}

func TestMultiplyPowerLawWithOverflow(t *testing.T) {
	// Power-law columns against a tiny CAM exercise the overflow/merge path
	// heavily; the result must still match the map oracle.
	r := rng.New(3)
	a, err := RandomPowerLaw(60, 1, 40, 2.0, r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomPowerLaw(60, 1, 40, 2.0, r)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := Multiply(a, b, accum.NewMap(64))
	if err != nil {
		t.Fatal(err)
	}
	tiny := asa.MustNew(asa.Config{CapacityBytes: 48, EntryBytes: 16, Policy: asa.LRU})
	got, err := Multiply(a, b, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != oracle.NNZ() {
		t.Fatalf("nnz %d vs oracle %d", got.NNZ(), oracle.NNZ())
	}
	for _, e := range oracle.Entries() {
		if math.Abs(got.At(int(e.Row), int(e.Col))-e.Val) > 1e-9 {
			t.Fatalf("(%d,%d): %g vs %g", e.Row, e.Col, got.At(int(e.Row), int(e.Col)), e.Val)
		}
	}
	if tiny.Stats().Evictions == 0 {
		t.Fatal("test intended to exercise CAM overflow")
	}
}

func TestMultiplyDimensionMismatch(t *testing.T) {
	a := Identity(3)
	b := Identity(4)
	if _, err := Multiply(a, b, accum.NewMap(4)); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestRandomValidation(t *testing.T) {
	r := rng.New(4)
	if _, err := Random(0, 5, 1, r); err == nil {
		t.Fatal("rows=0 accepted")
	}
	if _, err := RandomPowerLaw(0, 1, 2, 2.0, r); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestEntriesRoundTrip(t *testing.T) {
	r := rng.New(5)
	a, err := Random(15, 15, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	b := mustNew(t, 15, 15, a.Entries())
	if b.NNZ() != a.NNZ() {
		t.Fatal("entries round trip changed nnz")
	}
}
