package gen

import (
	"fmt"
	"math"

	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/rng"
)

// LFRParams configures the Lancichinetti–Fortunato–Radicchi benchmark
// generator. LFR graphs have power-law degree and community-size
// distributions and a tunable mixing parameter mu: each vertex spends a
// fraction mu of its degree on edges leaving its community. The paper cites
// LFR as the benchmark on which Infomap delivers better quality than
// modularity methods, so the reproduction uses LFR for quality validation.
type LFRParams struct {
	N         int     // number of vertices
	AvgDegree float64 // target average degree
	MaxDegree int     // degree cap
	DegExp    float64 // degree power-law exponent (tau1, typically 2–3)
	CommExp   float64 // community-size power-law exponent (tau2, typically 1–2)
	MinComm   int     // minimum community size
	MaxComm   int     // maximum community size
	Mu        float64 // mixing parameter in [0,1)
}

// DefaultLFR returns the standard "small communities" parameterization of
// the LFR benchmark (Lancichinetti & Fortunato's S variant): community sizes
// 10–100, average degree 10, degree exponent 2.5, size exponent 1.5.
func DefaultLFR(n int, mu float64) LFRParams {
	maxComm := 100
	if maxComm > n/5 {
		maxComm = n / 5
	}
	if maxComm < 10 {
		maxComm = 10
	}
	return LFRParams{
		N:         n,
		AvgDegree: 10,
		MaxDegree: n / 10,
		DegExp:    2.5,
		CommExp:   1.5,
		MinComm:   10,
		MaxComm:   maxComm,
		Mu:        mu,
	}
}

func (p LFRParams) validate() error {
	if p.N < 10 {
		return fmt.Errorf("gen: LFR N=%d too small", p.N)
	}
	if p.Mu < 0 || p.Mu >= 1 {
		return fmt.Errorf("gen: LFR mu=%g out of [0,1)", p.Mu)
	}
	if p.MinComm < 2 || p.MaxComm < p.MinComm {
		return fmt.Errorf("gen: LFR community bounds [%d,%d] invalid", p.MinComm, p.MaxComm)
	}
	if p.AvgDegree < 1 {
		return fmt.Errorf("gen: LFR average degree %g < 1", p.AvgDegree)
	}
	if p.MaxDegree < 2 {
		return fmt.Errorf("gen: LFR max degree %d < 2", p.MaxDegree)
	}
	return nil
}

// LFR generates an LFR benchmark graph and returns the graph together with
// the planted community membership.
//
// The implementation follows the standard construction: (1) draw a power-law
// degree sequence with the requested mean, (2) draw power-law community sizes
// until they cover N, (3) assign vertices to communities such that each
// vertex's internal degree (1-mu)*d fits its community, (4) wire internal
// stubs within each community and external stubs across communities with
// Chung–Lu style stub matching, rejecting self-loops and duplicates.
// The realized mixing approximates Mu; tests assert it within tolerance.
func LFR(p LFRParams, r *rng.RNG) (*graph.Graph, []uint32, error) {
	if err := p.validate(); err != nil {
		return nil, nil, err
	}

	// --- 1. Degree sequence with the requested mean. ---
	// The solved minimum degree is fractional; mixing floor and ceil
	// probabilistically smooths the otherwise steppy response of the
	// realized mean to the requested one.
	minDegF := solveMinDegreeFloat(p.AvgDegree, p.MaxDegree, p.DegExp)
	k0 := int(minDegF)
	frac := minDegF - float64(k0)
	if k0 < 1 {
		k0, frac = 1, 0
	}
	deg := make([]int, p.N)
	for i := range deg {
		kmin := k0
		if frac > 0 && r.Float64() < frac {
			kmin = k0 + 1
		}
		deg[i] = r.PowerLaw(kmin, p.MaxDegree, p.DegExp)
	}

	// --- 2. Community sizes covering all vertices. ---
	var sizes []int
	covered := 0
	for covered < p.N {
		s := r.PowerLaw(p.MinComm, p.MaxComm, p.CommExp)
		if covered+s > p.N {
			s = p.N - covered
			if s < p.MinComm {
				// Fold the remainder into the previous community.
				if len(sizes) == 0 {
					sizes = append(sizes, s)
					covered += s
					continue
				}
				sizes[len(sizes)-1] += s
				covered += s
				continue
			}
		}
		sizes = append(sizes, s)
		covered += s
	}
	nComm := len(sizes)

	// --- 3. Assign vertices to communities. ---
	// Internal degree of vertex v is round((1-mu)*deg[v]); a vertex fits a
	// community of size s if intDeg < s. Process vertices in descending
	// degree order and place each into the community with the most remaining
	// room that can host it.
	intDeg := make([]int, p.N)
	for v, d := range deg {
		id := int(math.Round((1 - p.Mu) * float64(d)))
		if id > d {
			id = d
		}
		intDeg[v] = id
	}
	membership := make([]uint32, p.N)
	room := make([]int, nComm)
	copy(room, sizes)
	order := sortByDegreeDesc(deg)
	for _, v := range order {
		placed := false
		// First try a random community with room that can host the vertex.
		for attempt := 0; attempt < 2*nComm; attempt++ {
			c := r.Intn(nComm)
			if room[c] > 0 && intDeg[v] < sizes[c] {
				membership[v] = uint32(c)
				room[c]--
				placed = true
				break
			}
		}
		if !placed {
			// Deterministic fallback: any community with room; shrink the
			// vertex's internal degree to fit if necessary.
			for c := 0; c < nComm; c++ {
				if room[c] > 0 {
					membership[v] = uint32(c)
					room[c]--
					if intDeg[v] >= sizes[c] {
						intDeg[v] = sizes[c] - 1
					}
					placed = true
					break
				}
			}
		}
		if !placed {
			return nil, nil, fmt.Errorf("gen: LFR failed to place vertex %d", v)
		}
	}

	// --- 4. Wire stubs. ---
	members := make([][]int, nComm)
	for v := 0; v < p.N; v++ {
		members[membership[v]] = append(members[membership[v]], v)
	}
	b := graph.NewBuilder(p.N, false)
	seen := make(map[uint64]bool)
	addOnce := func(u, v int) bool {
		if u == v {
			return false
		}
		a, c := u, v
		if a > c {
			a, c = c, a
		}
		key := uint64(a)<<32 | uint64(c)
		if seen[key] {
			return false
		}
		seen[key] = true
		if err := b.AddEdge(uint32(u), uint32(v), 1); err != nil {
			return false
		}
		return true
	}

	// Internal edges per community: stub list, shuffle, pair.
	for c := 0; c < nComm; c++ {
		var stubs []int
		for _, v := range members[c] {
			for k := 0; k < intDeg[v]; k++ {
				stubs = append(stubs, v)
			}
		}
		pairStubs(stubs, r, addOnce)
	}
	// External edges: global stub list of (deg - intDeg) per vertex, paired
	// across community boundaries (same-community pairs rejected with retries).
	var ext []int
	for v := 0; v < p.N; v++ {
		for k := 0; k < deg[v]-intDeg[v]; k++ {
			ext = append(ext, v)
		}
	}
	shuffleInts(ext, r)
	for i := 0; i+1 < len(ext); i += 2 {
		u, v := ext[i], ext[i+1]
		if membership[u] == membership[v] {
			// Try to swap with a later stub from a different community.
			swapped := false
			for j := i + 2; j < len(ext) && j < i+50; j++ {
				if membership[ext[j]] != membership[u] {
					ext[i+1], ext[j] = ext[j], ext[i+1]
					v = ext[i+1]
					swapped = true
					break
				}
			}
			if !swapped {
				continue
			}
		}
		addOnce(u, v)
	}

	g := b.Build()
	// Guard against isolated vertices (possible when all of a vertex's stubs
	// collided): attach each to a random member of its community.
	for v := 0; v < p.N; v++ {
		if g.OutDegree(v) == 0 {
			c := membership[v]
			for attempt := 0; attempt < 10; attempt++ {
				u := members[c][r.Intn(len(members[c]))]
				if addOnce(v, u) {
					break
				}
			}
		}
	}
	g = b.Build()
	return g, membership, nil
}

// pairStubs shuffles the stub list and pairs consecutive entries, with a
// bounded local search to avoid self-loops and duplicates.
func pairStubs(stubs []int, r *rng.RNG, addOnce func(u, v int) bool) {
	shuffleInts(stubs, r)
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v {
			for j := i + 2; j < len(stubs) && j < i+50; j++ {
				if stubs[j] != u {
					stubs[i+1], stubs[j] = stubs[j], stubs[i+1]
					v = stubs[i+1]
					break
				}
			}
			if u == v {
				continue
			}
		}
		addOnce(u, v)
	}
}

func shuffleInts(p []int, r *rng.RNG) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// DegreeSequenceWithMean samples n degrees from a power law with the given
// exponent whose minimum degree is solved so the expected mean is avg.
// Used by the dataset registry to replicate the SNAP networks' edge density.
func DegreeSequenceWithMean(n int, avg float64, maxDeg int, exponent float64, r *rng.RNG) []int {
	minDeg := solveMinDegree(avg, maxDeg, exponent)
	return PowerLawDegrees(n, minDeg, maxDeg, exponent, r)
}

// solveMinDegree rounds solveMinDegreeFloat to an integer.
func solveMinDegree(avg float64, maxDeg int, exp float64) int {
	k := int(math.Round(solveMinDegreeFloat(avg, maxDeg, exp)))
	if k < 1 {
		k = 1
	}
	if k > maxDeg {
		k = maxDeg
	}
	return k
}

// solveMinDegreeFloat finds the (fractional) minimum degree such that a
// power law on [minDeg, maxDeg] with the given exponent has approximately
// the requested mean. Standard LFR procedure (bisection on the continuous
// approximation).
func solveMinDegreeFloat(avg float64, maxDeg int, exp float64) float64 {
	mean := func(kmin float64) float64 {
		// E[k] for continuous power law on [kmin, kmax].
		kmax := float64(maxDeg)
		if exp == 2 {
			return math.Log(kmax/kmin) / (1/kmin - 1/kmax)
		}
		if exp == 1 {
			return (kmax - kmin) / math.Log(kmax/kmin)
		}
		a1, a2 := 1-exp, 2-exp
		num := (math.Pow(kmax, a2) - math.Pow(kmin, a2)) / a2
		den := (math.Pow(kmax, a1) - math.Pow(kmin, a1)) / a1
		return num / den
	}
	lo, hi := 1.0, float64(maxDeg)
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if mean(mid) < avg {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
