package gen

import (
	"math"
	"testing"

	"github.com/asamap/asamap/internal/rng"
)

func TestChungLuExpectedDegrees(t *testing.T) {
	r := rng.New(1)
	n := 2000
	degrees := make([]int, n)
	for i := range degrees {
		degrees[i] = 10
	}
	g, err := ChungLu(degrees, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	avg := float64(g.M()) / float64(n)
	if avg < 7 || avg > 13 {
		t.Fatalf("realized average degree %.2f, want ~10", avg)
	}
}

func TestChungLuPowerLaw(t *testing.T) {
	r := rng.New(2)
	degrees := PowerLawDegrees(5000, 2, 500, 2.5, r)
	g, err := ChungLu(degrees, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Power-law shape: most vertices have small degree, a few are hubs.
	hist := g.DegreeHistogram()
	small := 0
	for d := 0; d <= 8 && d < len(hist); d++ {
		small += hist[d]
	}
	if frac := float64(small) / float64(g.N()); frac < 0.5 {
		t.Fatalf("only %.2f of vertices have degree <= 8; not power-law-ish", frac)
	}
	if g.MaxOutDegree() < 20 {
		t.Fatalf("max degree %d too small; no hubs realized", g.MaxOutDegree())
	}
}

func TestChungLuZeroDegrees(t *testing.T) {
	r := rng.New(3)
	g, err := ChungLu(make([]int, 50), r)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 0 {
		t.Fatalf("all-zero degrees produced %d arcs", g.M())
	}
}

func TestChungLuNegativeDegree(t *testing.T) {
	if _, err := ChungLu([]int{1, -1}, rng.New(1)); err == nil {
		t.Fatal("negative degree accepted")
	}
}

func TestChungLuDeterminism(t *testing.T) {
	d := PowerLawDegrees(500, 2, 50, 2.5, rng.New(7))
	g1, _ := ChungLu(d, rng.New(42))
	g2, _ := ChungLu(d, rng.New(42))
	if g1.M() != g2.M() || g1.TotalWeight() != g2.TotalWeight() {
		t.Fatal("same seed produced different graphs")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	r := rng.New(4)
	g, err := BarabasiAlbert(1000, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 1000 {
		t.Fatalf("N = %d", g.N())
	}
	// Every vertex beyond the seed clique has degree >= m.
	for u := 4; u < g.N(); u++ {
		if g.OutDegree(u) < 3 {
			t.Fatalf("vertex %d has degree %d < m", u, g.OutDegree(u))
		}
	}
	// Preferential attachment yields hubs.
	if g.MaxOutDegree() < 20 {
		t.Fatalf("max degree %d; expected hubs", g.MaxOutDegree())
	}
}

func TestBarabasiAlbertErrors(t *testing.T) {
	if _, err := BarabasiAlbert(0, 1, rng.New(1)); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := BarabasiAlbert(10, 0, rng.New(1)); err == nil {
		t.Fatal("m=0 accepted")
	}
}

func TestSBMPlantedStructure(t *testing.T) {
	r := rng.New(5)
	g, mem, err := SBM(SBMParams{Sizes: []int{100, 100, 100}, PIn: 0.2, POut: 0.005}, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 300 || len(mem) != 300 {
		t.Fatalf("N=%d len(mem)=%d", g.N(), len(mem))
	}
	within, between := 0, 0
	for u := 0; u < g.N(); u++ {
		for _, v := range g.OutNeighbors(u) {
			if mem[u] == mem[v] {
				within++
			} else {
				between++
			}
		}
	}
	if within < 5*between {
		t.Fatalf("within=%d between=%d; planted structure too weak", within, between)
	}
}

func TestSBMErrors(t *testing.T) {
	if _, _, err := SBM(SBMParams{Sizes: []int{5}, PIn: 1.5}, rng.New(1)); err == nil {
		t.Fatal("pin>1 accepted")
	}
	if _, _, err := SBM(SBMParams{Sizes: []int{0}, PIn: 0.5}, rng.New(1)); err == nil {
		t.Fatal("zero community size accepted")
	}
}

func TestRingAndComplete(t *testing.T) {
	g, err := Ring(10)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 10; u++ {
		if g.OutDegree(u) != 2 {
			t.Fatalf("ring vertex %d degree %d", u, g.OutDegree(u))
		}
	}
	k, err := Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 6; u++ {
		if k.OutDegree(u) != 5 {
			t.Fatalf("K6 vertex %d degree %d", u, k.OutDegree(u))
		}
	}
	if _, err := Ring(2); err == nil {
		t.Fatal("Ring(2) accepted")
	}
	if _, err := Complete(0); err == nil {
		t.Fatal("Complete(0) accepted")
	}
}

func TestCliqueChain(t *testing.T) {
	g, mem, err := CliqueChain(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 20 {
		t.Fatalf("N = %d", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// 4 cliques of C(5,2)=10 edges plus 4 bridges.
	if g.NumEdges() != 44 {
		t.Fatalf("edges = %d, want 44", g.NumEdges())
	}
	for v := 0; v < 20; v++ {
		if mem[v] != uint32(v/5) {
			t.Fatalf("membership[%d] = %d", v, mem[v])
		}
	}
	if _, _, err := CliqueChain(1, 5); err == nil {
		t.Fatal("k=1 accepted")
	}
}

func TestRMAT(t *testing.T) {
	r := rng.New(6)
	g, err := RMAT(10, 8, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 1024 {
		t.Fatalf("N = %d", g.N())
	}
	if !g.Directed() {
		t.Fatal("RMAT should be directed")
	}
	if g.M() < 1024 {
		t.Fatalf("M = %d, too few arcs", g.M())
	}
	// Skew: RMAT concentrates arcs on low-ID vertices.
	if g.MaxOutDegree() < 3*8 {
		t.Fatalf("max out-degree %d; expected skew", g.MaxOutDegree())
	}
	if _, err := RMAT(0, 8, r); err == nil {
		t.Fatal("scale=0 accepted")
	}
}

func TestLFRBasic(t *testing.T) {
	r := rng.New(8)
	p := DefaultLFR(1000, 0.2)
	g, mem, err := LFR(p, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 1000 || len(mem) != 1000 {
		t.Fatalf("N=%d len(mem)=%d", g.N(), len(mem))
	}
	// Average degree near target.
	avg := float64(g.M()) / float64(g.N())
	if avg < p.AvgDegree*0.5 || avg > p.AvgDegree*1.5 {
		t.Fatalf("realized average degree %.2f, want ~%.1f", avg, p.AvgDegree)
	}
	// Realized mixing near mu.
	ext := 0
	for u := 0; u < g.N(); u++ {
		for _, v := range g.OutNeighbors(u) {
			if mem[u] != mem[v] {
				ext++
			}
		}
	}
	realizedMu := float64(ext) / float64(g.M())
	if math.Abs(realizedMu-p.Mu) > 0.12 {
		t.Fatalf("realized mu %.3f, want ~%.2f", realizedMu, p.Mu)
	}
	// No isolated vertices.
	for v := 0; v < g.N(); v++ {
		if g.OutDegree(v) == 0 {
			t.Fatalf("vertex %d isolated", v)
		}
	}
}

func TestLFRCommunitySizes(t *testing.T) {
	r := rng.New(9)
	p := DefaultLFR(500, 0.1)
	_, mem, err := LFR(p, r)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint32]int{}
	for _, m := range mem {
		counts[m]++
	}
	if len(counts) < 2 {
		t.Fatalf("only %d communities planted", len(counts))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 500 {
		t.Fatalf("memberships cover %d vertices", total)
	}
}

func TestLFRValidation(t *testing.T) {
	r := rng.New(10)
	bad := DefaultLFR(1000, 0.2)
	bad.Mu = 1.0
	if _, _, err := LFR(bad, r); err == nil {
		t.Fatal("mu=1 accepted")
	}
	bad = DefaultLFR(1000, 0.2)
	bad.N = 5
	if _, _, err := LFR(bad, r); err == nil {
		t.Fatal("tiny N accepted")
	}
	bad = DefaultLFR(1000, 0.2)
	bad.MinComm = 1
	if _, _, err := LFR(bad, r); err == nil {
		t.Fatal("MinComm=1 accepted")
	}
}

func TestLFRMixingSweep(t *testing.T) {
	// Realized mixing should increase with requested mu.
	r := rng.New(11)
	var last float64 = -1
	for _, mu := range []float64{0.1, 0.4, 0.7} {
		g, mem, err := LFR(DefaultLFR(800, mu), r)
		if err != nil {
			t.Fatal(err)
		}
		ext := 0
		for u := 0; u < g.N(); u++ {
			for _, v := range g.OutNeighbors(u) {
				if mem[u] != mem[v] {
					ext++
				}
			}
		}
		realized := float64(ext) / float64(g.M())
		if realized <= last {
			t.Fatalf("realized mixing not increasing: %.3f after %.3f", realized, last)
		}
		last = realized
	}
}

func TestSolveMinDegree(t *testing.T) {
	k := solveMinDegree(10, 100, 2.5)
	if k < 3 || k > 9 {
		t.Fatalf("solveMinDegree(10,100,2.5) = %d, outside sanity band", k)
	}
	// Sampling with that min should realize roughly the requested mean.
	r := rng.New(12)
	sum := 0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.PowerLaw(k, 100, 2.5)
	}
	mean := float64(sum) / n
	if mean < 7 || mean > 13 {
		t.Fatalf("realized mean degree %.2f, want ~10", mean)
	}
}
