// Package gen generates synthetic graphs for the paper reproduction.
//
// The SNAP datasets used in the paper (Amazon, DBLP, YouTube, soc-Pokec,
// LiveJournal, Orkut) are not redistributable and not available offline, so
// the benchmark harness substitutes synthetic replicas whose two relevant
// properties match: scale (vertex/edge counts) and power-law degree
// distribution (which drives the paper's Figures 4 and 5 and the CAM-capacity
// argument). Chung–Lu graphs reproduce an arbitrary expected degree sequence;
// LFR benchmark graphs additionally plant ground-truth communities, enabling
// solution-quality validation that the raw SNAP graphs cannot provide.
package gen

import (
	"fmt"
	"math"

	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/rng"
)

// PowerLawDegrees samples n expected degrees from a discrete power law with
// the given exponent on [minDeg, maxDeg].
func PowerLawDegrees(n, minDeg, maxDeg int, exponent float64, r *rng.RNG) []int {
	deg := make([]int, n)
	for i := range deg {
		deg[i] = r.PowerLaw(minDeg, maxDeg, exponent)
	}
	return deg
}

// ChungLu generates an undirected graph whose expected degree sequence equals
// degrees, using the edge-skipping variant of the Chung–Lu model: vertex pair
// (u,v) is connected with probability min(1, d_u d_v / (2m)). The realized
// graph is simple (no multi-edges); self-loops are excluded. Weights are 1.
//
// The implementation groups vertices by degree-sorted order and uses the
// standard geometric skipping trick so the cost is proportional to the number
// of realized edges rather than n^2.
func ChungLu(degrees []int, r *rng.RNG) (*graph.Graph, error) {
	n := len(degrees)
	sumDeg := 0.0
	for _, d := range degrees {
		if d < 0 {
			return nil, fmt.Errorf("gen: negative degree %d", d)
		}
		sumDeg += float64(d)
	}
	b := graph.NewBuilder(n, false)
	if sumDeg == 0 {
		return b.Build(), nil
	}

	// Order vertices by descending degree; within the sorted order the
	// connection probabilities p(u,v) = d_u d_v / S are non-increasing in v,
	// which is what the skipping procedure requires.
	order := sortByDegreeDesc(degrees)
	d := make([]float64, n)
	for i, v := range order {
		d[i] = float64(degrees[v])
	}

	for i := 0; i < n; i++ {
		if d[i] == 0 {
			break
		}
		j := i + 1
		for j < n {
			pj := d[i] * d[j] / sumDeg
			if pj > 1 {
				pj = 1
			}
			if pj <= 0 {
				break
			}
			// Skip ahead geometrically: the number of consecutive misses at
			// probability pj is geometric. Using the current pj as a bound is
			// the classic Miller–Hagberg approximation; it is exact when the
			// sequence is sorted because pj only decreases with j.
			if pj < 1 {
				u := r.Float64()
				skip := int(math.Floor(math.Log(1-u) / math.Log(1-pj)))
				if skip < 0 {
					skip = 0
				}
				j += skip
				if j >= n {
					break
				}
				// Accept j with probability p_actual/pj (<= 1).
				pActual := d[i] * d[j] / sumDeg
				if pActual > 1 {
					pActual = 1
				}
				if r.Float64() < pActual/pj {
					if err := b.AddEdge(uint32(order[i]), uint32(order[j]), 1); err != nil {
						return nil, err
					}
				}
				j++
			} else {
				if err := b.AddEdge(uint32(order[i]), uint32(order[j]), 1); err != nil {
					return nil, err
				}
				j++
			}
		}
	}
	return b.Build(), nil
}

// sortByDegreeDesc returns vertex IDs ordered by descending degree using a
// counting sort (degrees are small integers).
func sortByDegreeDesc(degrees []int) []int {
	maxD := 0
	for _, d := range degrees {
		if d > maxD {
			maxD = d
		}
	}
	buckets := make([][]int, maxD+1)
	for v, d := range degrees {
		buckets[d] = append(buckets[d], v)
	}
	order := make([]int, 0, len(degrees))
	for d := maxD; d >= 0; d-- {
		order = append(order, buckets[d]...)
	}
	return order
}

// BarabasiAlbert generates an undirected preferential-attachment graph with n
// vertices where each new vertex attaches m edges to existing vertices with
// probability proportional to their degree. The result has a power-law
// degree tail with exponent ~3.
func BarabasiAlbert(n, m int, r *rng.RNG) (*graph.Graph, error) {
	if n < 1 || m < 1 {
		return nil, fmt.Errorf("gen: BarabasiAlbert requires n>=1, m>=1 (got n=%d m=%d)", n, m)
	}
	if m >= n {
		m = n - 1
	}
	b := graph.NewBuilder(n, false)
	// repeated holds one entry per edge endpoint; sampling uniformly from it
	// implements preferential attachment.
	repeated := make([]uint32, 0, 2*n*m)
	// Seed with a small clique of m+1 vertices.
	for u := 0; u <= m && u < n; u++ {
		for v := u + 1; v <= m && v < n; v++ {
			if err := b.AddEdge(uint32(u), uint32(v), 1); err != nil {
				return nil, err
			}
			repeated = append(repeated, uint32(u), uint32(v))
		}
	}
	for u := m + 1; u < n; u++ {
		chosen := make(map[uint32]bool, m)
		for len(chosen) < m {
			var t uint32
			if len(repeated) == 0 {
				t = uint32(r.Intn(u))
			} else {
				t = repeated[r.Intn(len(repeated))]
			}
			if int(t) == u || chosen[t] {
				continue
			}
			chosen[t] = true
		}
		for t := range chosen {
			if err := b.AddEdge(uint32(u), t, 1); err != nil {
				return nil, err
			}
			repeated = append(repeated, uint32(u), t)
		}
	}
	return b.Build(), nil
}

// SBMParams configures a planted-partition stochastic block model.
type SBMParams struct {
	Sizes []int   // community sizes
	PIn   float64 // within-community edge probability
	POut  float64 // between-community edge probability
}

// SBM generates an undirected planted-partition graph and returns the graph
// and the planted membership (dense community IDs per vertex).
func SBM(p SBMParams, r *rng.RNG) (*graph.Graph, []uint32, error) {
	if p.PIn < 0 || p.PIn > 1 || p.POut < 0 || p.POut > 1 {
		return nil, nil, fmt.Errorf("gen: SBM probabilities out of [0,1]: pin=%g pout=%g", p.PIn, p.POut)
	}
	n := 0
	for _, s := range p.Sizes {
		if s <= 0 {
			return nil, nil, fmt.Errorf("gen: SBM community size %d", s)
		}
		n += s
	}
	membership := make([]uint32, n)
	idx := 0
	for c, s := range p.Sizes {
		for i := 0; i < s; i++ {
			membership[idx] = uint32(c)
			idx++
		}
	}
	b := graph.NewBuilder(n, false)
	// Bernoulli sampling with geometric skipping over the upper triangle,
	// done separately for the two probability regimes.
	addBlock := func(prob float64, sameBlock bool) error {
		if prob <= 0 {
			return nil
		}
		for u := 0; u < n; u++ {
			v := u + 1
			for v < n {
				if prob < 1 {
					skip := int(math.Floor(math.Log(1-r.Float64()) / math.Log(1-prob)))
					if skip < 0 {
						skip = 0
					}
					v += skip
				}
				if v >= n {
					break
				}
				if (membership[u] == membership[v]) == sameBlock {
					if err := b.AddEdge(uint32(u), uint32(v), 1); err != nil {
						return err
					}
				}
				v++
			}
		}
		return nil
	}
	if err := addBlock(p.PIn, true); err != nil {
		return nil, nil, err
	}
	if err := addBlock(p.POut, false); err != nil {
		return nil, nil, err
	}
	g := b.Build()
	return g, membership, nil
}

// Ring returns an undirected cycle of n vertices (n >= 3).
func Ring(n int) (*graph.Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("gen: Ring requires n >= 3, got %d", n)
	}
	b := graph.NewBuilder(n, false)
	for u := 0; u < n; u++ {
		if err := b.AddEdge(uint32(u), uint32((u+1)%n), 1); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// Complete returns the complete undirected graph K_n.
func Complete(n int) (*graph.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: Complete requires n >= 1, got %d", n)
	}
	b := graph.NewBuilder(n, false)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if err := b.AddEdge(uint32(u), uint32(v), 1); err != nil {
				return nil, err
			}
		}
	}
	return b.Build(), nil
}

// CliqueChain returns k cliques of size s joined in a ring by single bridge
// edges — the canonical resolution-limit example from Fortunato & Barthélemy
// that modularity-based methods merge but Infomap separates. The returned
// membership is the planted one-module-per-clique assignment.
func CliqueChain(k, s int) (*graph.Graph, []uint32, error) {
	if k < 2 || s < 3 {
		return nil, nil, fmt.Errorf("gen: CliqueChain requires k>=2, s>=3 (got k=%d s=%d)", k, s)
	}
	n := k * s
	b := graph.NewBuilder(n, false)
	membership := make([]uint32, n)
	for c := 0; c < k; c++ {
		base := c * s
		for i := 0; i < s; i++ {
			membership[base+i] = uint32(c)
			for j := i + 1; j < s; j++ {
				if err := b.AddEdge(uint32(base+i), uint32(base+j), 1); err != nil {
					return nil, nil, err
				}
			}
		}
		next := ((c + 1) % k) * s
		if err := b.AddEdge(uint32(base), uint32(next+1), 1); err != nil {
			return nil, nil, err
		}
	}
	return b.Build(), membership, nil
}

// RMAT generates a directed power-law graph with 2^scale vertices and
// approximately edgeFactor*2^scale edges using the recursive-matrix model
// (a=0.57, b=0.19, c=0.19, d=0.05 — the Graph500 parameters). Duplicate
// arcs merge, so the realized arc count can be slightly lower.
func RMAT(scale, edgeFactor int, r *rng.RNG) (*graph.Graph, error) {
	if scale < 1 || scale > 30 || edgeFactor < 1 {
		return nil, fmt.Errorf("gen: RMAT scale=%d edgeFactor=%d out of range", scale, edgeFactor)
	}
	n := 1 << uint(scale)
	m := n * edgeFactor
	const a, bq, c = 0.57, 0.19, 0.19
	b := graph.NewBuilder(n, true)
	for e := 0; e < m; e++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			p := r.Float64()
			switch {
			case p < a:
				// upper-left quadrant: no bits set
			case p < a+bq:
				v |= 1 << uint(bit)
			case p < a+bq+c:
				u |= 1 << uint(bit)
			default:
				u |= 1 << uint(bit)
				v |= 1 << uint(bit)
			}
		}
		if u == v {
			continue
		}
		if err := b.AddEdge(uint32(u), uint32(v), 1); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}
