package dist

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"math"
	"testing"
	"time"

	"github.com/asamap/asamap/internal/fault"
	"github.com/asamap/asamap/internal/metrics"
)

// faultOptions returns options for the fault matrix: generous superstep
// budget so heavy drop rates can drain their retransmission queues.
func faultOptions() Options {
	opt := DefaultOptions()
	opt.Ranks = 4
	opt.MaxSupersteps = 200
	return opt
}

// faultMatrix is the scenario set the acceptance criteria name: drop
// p ∈ {0.1, 0.5}, delayed deltas, duplicated deltas, one crashed rank, and
// everything at once.
func faultMatrix() map[string]fault.Config {
	drop10 := fault.Disabled()
	drop10.DropProb = 0.1
	drop50 := fault.Disabled()
	drop50.DropProb = 0.5
	delay := fault.Disabled()
	delay.DelayProb = 0.3
	dup := fault.Disabled()
	dup.DupProb = 0.2
	crash := fault.Disabled()
	crash.InjectCrash = true
	crash.CrashRank, crash.CrashStep, crash.CrashDownFor = 1, 2, 3
	all := fault.Disabled()
	all.DropProb, all.DupProb, all.DelayProb = 0.2, 0.1, 0.1
	all.InjectCrash = true
	all.CrashRank, all.CrashStep, all.CrashDownFor = 2, 3, 2
	return map[string]fault.Config{
		"drop10": drop10,
		"drop50": drop50,
		"delay":  delay,
		"dup":    dup,
		"crash":  crash,
		"all":    all,
	}
}

// TestFaultScheduleMatrixPreservesCodelength is the key invariant of the
// fault layer: under any injected fault schedule the run converges and its
// final codelength matches the fault-free run on the same seed — recovery
// preserves the algorithm, faults only cost communication and time.
func TestFaultScheduleMatrixPreservesCodelength(t *testing.T) {
	g, planted := plantedGraph(t)
	opt := faultOptions()
	free, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range faultMatrix() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			fopt := faultOptions()
			fopt.Fault = cfg
			res, err := Run(g, fopt)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(res.Codelength-free.Codelength) > fopt.MinImprovement {
				t.Fatalf("faulted codelength %.12f vs fault-free %.12f (diff %g > MinImprovement %g)",
					res.Codelength, free.Codelength,
					math.Abs(res.Codelength-free.Codelength), fopt.MinImprovement)
			}
			if res.NumModules != 4 {
				t.Fatalf("found %d modules under faults, want 4", res.NumModules)
			}
			nmi, err := metrics.NMI(res.Membership, planted)
			if err != nil {
				t.Fatal(err)
			}
			if nmi < 0.95 {
				t.Fatalf("NMI %.3f against planted partition under faults", nmi)
			}
		})
	}
}

// TestFaultAccounting checks that each fault class shows up in the extended
// CommStats: drops trigger retries and backoff time, duplicates and crash
// replays count redelivered bytes, crashes count recoveries, and every run
// writes checkpoints.
func TestFaultAccounting(t *testing.T) {
	g, _ := plantedGraph(t)
	matrix := faultMatrix()

	run := func(name string) *Result {
		opt := faultOptions()
		opt.Fault = matrix[name]
		res, err := Run(g, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Comm.CheckpointBytes == 0 {
			t.Fatalf("%s: no checkpoint bytes recorded", name)
		}
		return res
	}

	d := run("drop50")
	if d.Comm.Drops == 0 || d.Fault.Drops == 0 {
		t.Fatalf("drop50 injected no drops: %+v %+v", d.Comm, d.Fault)
	}
	if d.Comm.Retries == 0 {
		t.Fatalf("drops without retries: %+v", d.Comm)
	}
	if d.Comm.BackoffSec <= 0 {
		t.Fatalf("retries without modeled backoff time: %+v", d.Comm)
	}
	if d.Comm.ModeledCommSec <= d.Comm.BackoffSec {
		t.Fatalf("backoff not in alpha-beta total: %+v", d.Comm)
	}

	dup := run("dup")
	if dup.Fault.Duplicates == 0 || dup.Comm.RedeliveredBytes == 0 {
		t.Fatalf("dup scenario redelivered nothing: %+v %+v", dup.Comm, dup.Fault)
	}

	delay := run("delay")
	if delay.Fault.Delays == 0 {
		t.Fatalf("delay scenario delayed nothing: %+v", delay.Fault)
	}

	crash := run("crash")
	if crash.Fault.Crashes != 1 {
		t.Fatalf("crash scenario crashed %d times, want 1", crash.Fault.Crashes)
	}
	if crash.Comm.Recoveries == 0 {
		t.Fatalf("crashed rank never recovered: %+v", crash.Comm)
	}

	free, err := Run(g, faultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if free.Comm.Drops != 0 || free.Comm.Retries != 0 || free.Comm.Recoveries != 0 ||
		free.Comm.RedeliveredBytes != 0 || free.Comm.BackoffSec != 0 {
		t.Fatalf("fault-free run recorded faults: %+v", free.Comm)
	}
	// Heavy drop costs strictly more modeled time than the clean network.
	if d.Comm.ModeledCommSec <= free.Comm.ModeledCommSec {
		t.Fatalf("drop50 modeled time %.9f not above fault-free %.9f",
			d.Comm.ModeledCommSec, free.Comm.ModeledCommSec)
	}
}

// membershipBytes serializes a membership for byte-identity comparison.
func membershipBytes(m []uint32) []byte {
	buf := make([]byte, 4*len(m))
	for i, v := range m {
		binary.LittleEndian.PutUint32(buf[4*i:], v)
	}
	return buf
}

// TestFaultReplayDeterminism extends the rng determinism guarantees to the
// fault layer: the same Seed and the same fault schedule must reproduce a
// byte-identical Membership and identical communication accounting.
func TestFaultReplayDeterminism(t *testing.T) {
	g, _ := plantedGraph(t)
	for name, cfg := range faultMatrix() {
		opt := faultOptions()
		opt.Fault = cfg
		a, err := Run(g, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := Run(g, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(membershipBytes(a.Membership), membershipBytes(b.Membership)) {
			t.Fatalf("%s: memberships differ between identical replays", name)
		}
		if a.Comm != b.Comm || a.Fault != b.Fault {
			t.Fatalf("%s: accounting differs between identical replays:\n%+v\n%+v", name, a.Comm, b.Comm)
		}
	}
}

// TestFaultSeedChangesSchedule ensures the fault seed is independent of the
// algorithm seed: a different fault seed with drops enabled perturbs the
// injected schedule (but, per the matrix invariant, not the result quality).
func TestFaultSeedChangesSchedule(t *testing.T) {
	g, _ := plantedGraph(t)
	mk := func(seed uint64) *Result {
		opt := faultOptions()
		opt.Fault.DropProb = 0.3
		opt.Fault.Seed = seed
		res, err := Run(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(1), mk(2)
	if a.Fault.Drops == b.Fault.Drops && a.Comm.Retries == b.Comm.Retries &&
		a.Comm.Bytes == b.Comm.Bytes {
		t.Fatalf("fault seeds 1 and 2 injected identical schedules: %+v", a.Fault)
	}
}

// TestFixedScheduleDropIsRetried pins a single drop with the fixed event
// schedule and checks the retransmission path end to end.
func TestFixedScheduleDropIsRetried(t *testing.T) {
	g, _ := plantedGraph(t)
	opt := faultOptions()
	opt.Fault.Schedule = []fault.Event{
		{Step: 0, From: 0, To: -1, Outcome: fault.Drop},
	}
	res, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fault.Drops == 0 {
		t.Fatalf("scheduled drop not injected: %+v", res.Fault)
	}
	if res.Comm.Retries == 0 {
		t.Fatalf("scheduled drop not retried: %+v", res.Comm)
	}
	free, err := Run(g, faultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Codelength-free.Codelength) > opt.MinImprovement {
		t.Fatalf("single scheduled drop changed codelength: %.12f vs %.12f",
			res.Codelength, free.Codelength)
	}
}

func TestRunContextCancellation(t *testing.T) {
	g, _ := plantedGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, g, DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled context returned %v, want context.Canceled", err)
	}

	// A deadline already in the past needs no sleep to be observed as expired.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := RunContext(dctx, g, DefaultOptions()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline returned %v, want context.DeadlineExceeded", err)
	}
}

// TestInvalidFaultConfigRejected routes fault.Config validation through
// dist.Options.
func TestInvalidFaultConfigRejected(t *testing.T) {
	g, _ := plantedGraph(t)
	opt := DefaultOptions()
	opt.Fault.DropProb = 1.5
	if _, err := Run(g, opt); err == nil {
		t.Fatal("DropProb 1.5 accepted")
	}
	opt = DefaultOptions()
	opt.CheckpointEvery = 0
	if _, err := Run(g, opt); err == nil {
		t.Fatal("CheckpointEvery 0 accepted")
	}
	opt = DefaultOptions()
	opt.MaxRetryBackoff = 0
	if _, err := Run(g, opt); err == nil {
		t.Fatal("MaxRetryBackoff 0 accepted")
	}
}

// TestCrashOfEveryRankIndividually crashes each rank in turn; the cluster
// must degrade gracefully (others keep moving), recover the dead rank from
// its checkpoint, and land on the fault-free codelength.
func TestCrashOfEveryRankIndividually(t *testing.T) {
	g, _ := plantedGraph(t)
	free, err := Run(g, faultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for rk := 0; rk < 4; rk++ {
		opt := faultOptions()
		opt.Fault.InjectCrash = true
		opt.Fault.CrashRank = rk
		opt.Fault.CrashStep = 1
		opt.Fault.CrashDownFor = 2
		res, err := Run(g, opt)
		if err != nil {
			t.Fatalf("crash rank %d: %v", rk, err)
		}
		if res.Comm.Recoveries == 0 {
			t.Fatalf("crash rank %d: no recovery", rk)
		}
		if math.Abs(res.Codelength-free.Codelength) > opt.MinImprovement {
			t.Fatalf("crash rank %d: codelength %.12f vs fault-free %.12f",
				rk, res.Codelength, free.Codelength)
		}
	}
}
