// Package dist simulates the distributed-memory layer of HyPC-Map: the paper
// builds on a hybrid MPI+shared-memory parallel Infomap [14], so this
// substrate reproduces its structure — vertices block-partitioned across
// ranks, bulk-synchronous supersteps of local FindBestCommunity sweeps over
// possibly stale ghost membership, and membership-delta exchange between
// supersteps — while counting every simulated message and byte. An
// alpha-beta (latency-bandwidth) model converts the communication volume
// into modeled time, so the harness can study how the hybrid scheme scales.
//
// MPI itself is unavailable (and unnecessary) here: ranks run in one process
// and the "network" is accounting. What is preserved is the algorithmic
// behaviour that distribution causes — staleness of remote module state
// within a superstep and convergence driven by delta exchange.
package dist

import (
	"fmt"
	"sort"

	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/infomap"
	"github.com/asamap/asamap/internal/mapeq"
	"github.com/asamap/asamap/internal/rng"
)

// Options configures the simulated cluster.
type Options struct {
	Ranks          int     // number of simulated MPI ranks
	MaxSupersteps  int     // BSP superstep bound per level
	MaxLevels      int     // contraction depth bound
	MinImprovement float64 // codelength improvement threshold
	Seed           uint64
	// Communication model: per-message latency (alpha, seconds) and
	// per-byte transfer time (1/bandwidth, seconds).
	AlphaSec       float64
	BytePerSec     float64 // bytes per second of link bandwidth
	BytesPerUpdate int     // wire size of one membership delta (vertex, module)
}

// DefaultOptions returns an 8-rank cluster with 1µs latency, 10 GB/s links,
// 8-byte membership updates.
func DefaultOptions() Options {
	return Options{
		Ranks:          8,
		MaxSupersteps:  30,
		MaxLevels:      30,
		MinImprovement: 1e-9,
		Seed:           1,
		AlphaSec:       1e-6,
		BytePerSec:     10e9,
		BytesPerUpdate: 8,
	}
}

func (o Options) validate() error {
	if o.Ranks < 1 {
		return fmt.Errorf("dist: Ranks %d < 1", o.Ranks)
	}
	if o.MaxSupersteps < 1 || o.MaxLevels < 1 {
		return fmt.Errorf("dist: MaxSupersteps/MaxLevels must be >= 1")
	}
	if o.AlphaSec < 0 || o.BytePerSec <= 0 || o.BytesPerUpdate <= 0 {
		return fmt.Errorf("dist: invalid communication model")
	}
	return nil
}

// CommStats aggregates the simulated communication.
type CommStats struct {
	Supersteps     int
	Messages       uint64 // point-to-point messages (allgather modeled as P·(P−1))
	Bytes          uint64 // payload bytes moved
	UpdatesSent    uint64 // membership deltas exchanged
	ModeledCommSec float64
}

// Result is the outcome of a distributed run.
type Result struct {
	Membership         []uint32
	NumModules         int
	Codelength         float64
	OneLevelCodelength float64
	Levels             int
	Comm               CommStats
}

// Run executes the simulated distributed Infomap.
func Run(g *graph.Graph, opt Options) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if g.Directed() {
		return nil, fmt.Errorf("dist: directed graphs not supported by the distributed simulation")
	}
	res := &Result{Membership: make([]uint32, g.N())}
	for i := range res.Membership {
		res.Membership[i] = uint32(i)
	}
	if g.N() == 0 {
		return res, nil
	}
	baseFlow, err := mapeq.NewUndirectedFlow(g)
	if err != nil {
		return nil, err
	}
	leafState, err := mapeq.NewState(baseFlow, make([]uint32, g.N()), 1)
	if err != nil {
		return nil, err
	}
	leafNodeTerm := leafState.NodeTerm()
	res.OneLevelCodelength = mapeq.OneLevelCodelength(baseFlow)

	r := rng.New(opt.Seed)
	flow := baseFlow
	for level := 0; level < opt.MaxLevels; level++ {
		n := flow.G.N()
		membership := make([]uint32, n)
		for i := range membership {
			membership[i] = uint32(i)
		}
		res.Levels++
		moves, err := optimizeLevelDistributed(flow, membership, leafNodeTerm, opt, r, &res.Comm)
		if err != nil {
			return nil, err
		}
		k := mapeq.CompactMembership(membership)
		if level == 0 {
			copy(res.Membership, membership)
		} else {
			for v := range res.Membership {
				res.Membership[v] = membership[res.Membership[v]]
			}
		}
		if moves == 0 || k == n || k == 1 {
			break
		}
		flow, err = flow.Contract(membership, k)
		if err != nil {
			return nil, err
		}
	}

	mem := append([]uint32(nil), res.Membership...)
	k := mapeq.CompactMembership(mem)
	copy(res.Membership, mem)
	final, err := mapeq.NewState(baseFlow, mem, k)
	if err != nil {
		return nil, err
	}
	res.Codelength = final.Codelength()
	res.NumModules = k
	if res.Codelength > res.OneLevelCodelength {
		for i := range res.Membership {
			res.Membership[i] = 0
		}
		res.Codelength = res.OneLevelCodelength
		res.NumModules = 1
	}
	res.Comm.ModeledCommSec = modeledCommTime(opt, res.Comm)
	return res, nil
}

// modeledCommTime applies the alpha-beta model: each superstep performs an
// allgather of deltas (P·(P−1) messages behind log-tree latency) and the
// payload crosses the bisection once.
func modeledCommTime(opt Options, c CommStats) float64 {
	if opt.Ranks == 1 {
		return 0
	}
	logP := 0
	for p := 1; p < opt.Ranks; p <<= 1 {
		logP++
	}
	latency := float64(c.Supersteps) * opt.AlphaSec * float64(logP)
	transfer := float64(c.Bytes) / opt.BytePerSec
	return latency + transfer
}

// optimizeLevelDistributed runs BSP supersteps on one level. Each rank owns
// a contiguous vertex block and evaluates moves against its own snapshot of
// the global module statistics (stale within the superstep, exactly as a
// real distributed implementation's ghost state is). Deltas are exchanged
// and committed at the superstep boundary.
func optimizeLevelDistributed(flow *mapeq.Flow, membership []uint32, leafNodeTerm float64,
	opt Options, r *rng.RNG, comm *CommStats) (uint64, error) {

	n := flow.G.N()
	truth, err := mapeq.NewState(flow, membership, n)
	if err != nil {
		return 0, err
	}
	truth.OverrideNodeTerm(leafNodeTerm)

	ranks := opt.Ranks
	if ranks > n {
		ranks = n
	}
	// Block partition (HyPC-Map distributes contiguous vertex ranges).
	blocks := make([][]uint32, ranks)
	chunk := (n + ranks - 1) / ranks
	for rk := 0; rk < ranks; rk++ {
		lo := rk * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		for v := lo; v < hi; v++ {
			blocks[rk] = append(blocks[rk], uint32(v))
		}
	}

	totalMoves := uint64(0)
	prevL := truth.Codelength()
	for step := 0; step < opt.MaxSupersteps; step++ {
		comm.Supersteps++
		// Each rank evaluates its block against a private snapshot of the
		// current global membership (ghost copies from the last exchange).
		type proposal struct {
			v      uint32
			target uint32
		}
		var proposals []proposal
		for rk := 0; rk < ranks; rk++ {
			snapshot := append([]uint32(nil), membership...)
			rankState, err := mapeq.NewState(flow, snapshot, n)
			if err != nil {
				return 0, err
			}
			rankState.OverrideNodeTerm(leafNodeTerm)
			order := append([]uint32(nil), blocks[rk]...)
			r.ShuffleUint32(order)
			for _, v := range order {
				if t, ok := bestMove(flow, rankState, int(v)); ok {
					proposals = append(proposals, proposal{v: v, target: t})
				}
			}
		}
		// Superstep boundary: commit improving proposals on the true state
		// and broadcast the resulting membership deltas.
		moves := uint64(0)
		for _, p := range proposals {
			v := int(p.v)
			old := truth.Module(v)
			if old == p.target {
				continue
			}
			oo, io, on, in := commitFlowsLocal(flow, truth, v, old, p.target)
			view := flow.View(v)
			if d := truth.DeltaMove(view, p.target, oo, io, on, in); d < 0 {
				truth.Apply(view, p.target, oo, io, on, in)
				moves++
			}
		}
		truth.Refresh()
		if ranks > 1 && moves > 0 {
			comm.UpdatesSent += moves
			comm.Bytes += moves * uint64(opt.BytesPerUpdate) * uint64(ranks-1)
			comm.Messages += uint64(ranks) * uint64(ranks-1)
		}
		totalMoves += moves
		l := truth.Codelength()
		if moves == 0 || prevL-l < opt.MinImprovement {
			break
		}
		prevL = l
	}
	return totalMoves, nil
}

// bestMove evaluates one vertex against the rank's state snapshot and
// returns the best target module, if improving.
func bestMove(flow *mapeq.Flow, st *mapeq.State, v int) (uint32, bool) {
	g := flow.G
	old := st.Module(v)
	outW := map[uint32]float64{}
	inW := map[uint32]float64{}
	var keys []uint32
	lo, _ := g.OutRange(v)
	nb := g.OutNeighbors(v)
	for j := range nb {
		t := int(nb[j])
		if t == v {
			continue
		}
		m := st.Module(t)
		if _, ok := outW[m]; !ok {
			keys = append(keys, m)
		}
		outW[m] += flow.OutFlow[lo+j]
	}
	ilo, _ := g.InRange(v)
	in := g.InNeighbors(v)
	for j := range in {
		s := int(in[j])
		if s == v {
			continue
		}
		m := st.Module(s)
		if _, ok := outW[m]; !ok {
			if _, ok2 := inW[m]; !ok2 {
				keys = append(keys, m)
			}
		}
		inW[m] += flow.InFlow[ilo+j]
	}
	if len(keys) == 0 {
		return old, false
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	view := flow.View(v)
	best, bestDelta := old, 0.0
	for _, m := range keys {
		if m == old {
			continue
		}
		d := st.DeltaMove(view, m, outW[old], inW[old], outW[m], inW[m])
		if d < bestDelta-1e-15 {
			best, bestDelta = m, d
		}
	}
	return best, best != old
}

// commitFlowsLocal recomputes the four commit flows against the true state
// (same role as the shared-memory engine's commit re-check).
func commitFlowsLocal(flow *mapeq.Flow, st *mapeq.State, v int, old, target uint32) (oo, io, on, in float64) {
	g := flow.G
	lo, _ := g.OutRange(v)
	nb := g.OutNeighbors(v)
	for j := range nb {
		t := int(nb[j])
		if t == v {
			continue
		}
		switch st.Module(t) {
		case old:
			oo += flow.OutFlow[lo+j]
		case target:
			on += flow.OutFlow[lo+j]
		}
	}
	ilo, _ := g.InRange(v)
	inn := g.InNeighbors(v)
	for j := range inn {
		s := int(inn[j])
		if s == v {
			continue
		}
		switch st.Module(s) {
		case old:
			io += flow.InFlow[ilo+j]
		case target:
			in += flow.InFlow[ilo+j]
		}
	}
	return
}

// Compare runs the shared-memory engine on the same graph for quality
// comparison (convenience for the harness).
func Compare(g *graph.Graph, seed uint64) (*infomap.Result, error) {
	opt := infomap.DefaultOptions()
	opt.Seed = seed
	return infomap.Run(g, opt)
}
