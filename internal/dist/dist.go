// Package dist simulates the distributed-memory layer of HyPC-Map: the paper
// builds on a hybrid MPI+shared-memory parallel Infomap [14], so this
// substrate reproduces its structure — vertices block-partitioned across
// ranks, bulk-synchronous supersteps of local FindBestCommunity sweeps over
// possibly stale ghost membership, and membership-delta exchange between
// supersteps — while counting every simulated message and byte. An
// alpha-beta (latency-bandwidth) model converts the communication volume
// into modeled time, so the harness can study how the hybrid scheme scales.
//
// MPI itself is unavailable (and unnecessary) here: ranks run in one process
// and the "network" is accounting. What is preserved is the algorithmic
// behaviour that distribution causes — staleness of remote module state
// within a superstep and convergence driven by delta exchange.
//
// The substrate is fault-tolerant: each rank holds its own ghost copy of the
// global membership, and the delta exchange runs through an optional
// fault.Injector that can drop, duplicate, or delay delta batches and crash
// ranks at chosen supersteps. Dropped batches are retransmitted with
// exponential backoff and jitter, every rank checkpoints its ghost
// membership at configurable superstep intervals, and a crashed rank
// recovers by restoring its last checkpoint and replaying the missed deltas
// from the cluster's delta log. While a rank is down the others keep making
// bounded-staleness progress on their own blocks (graceful degradation).
// Because committed moves are re-validated against the authoritative state
// before they apply, any fault schedule leaves the final partition a fixed
// point of the same greedy — recovery preserves the algorithm.
package dist

import (
	"context"
	"fmt"
	"sort"

	"github.com/asamap/asamap/internal/fault"
	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/infomap"
	"github.com/asamap/asamap/internal/mapeq"
	"github.com/asamap/asamap/internal/rng"
)

// Options configures the simulated cluster.
type Options struct {
	Ranks          int     // number of simulated MPI ranks
	MaxSupersteps  int     // BSP superstep bound per level
	MaxLevels      int     // contraction depth bound
	MinImprovement float64 // codelength improvement threshold
	Seed           uint64
	// Communication model: per-message latency (alpha, seconds) and
	// per-byte transfer time (1/bandwidth, seconds).
	AlphaSec       float64
	BytePerSec     float64 // bytes per second of link bandwidth
	BytesPerUpdate int     // wire size of one membership delta (vertex, module)
	// Fault describes the injected fault scenario; the zero value injects
	// nothing and the simulation behaves exactly as a perfect network.
	Fault fault.Config
	// CheckpointEvery is the number of supersteps between ghost-membership
	// checkpoints (crash-recovery granularity). Minimum 1.
	CheckpointEvery int
	// MaxRetryBackoff caps the exponential retransmission backoff, in
	// supersteps. Minimum 1.
	MaxRetryBackoff int
	// WarmStart, when non-nil, seeds the leaf-level partition instead of the
	// all-singletons start: vertex v begins in module WarmStart[v]. Module
	// ids are compacted on entry; the length must equal the graph's vertex
	// count. This is the distributed mirror of infomap.Options.WarmStart —
	// the delta-log, checkpoint, and crash-recovery machinery is reused
	// unchanged, because a warm seed only changes the level-0 state that
	// ranks checkpoint and replay.
	WarmStart []uint32
}

// DefaultOptions returns an 8-rank cluster with 1µs latency, 10 GB/s links,
// 8-byte membership updates, per-superstep checkpoints, and no faults.
func DefaultOptions() Options {
	return Options{
		Ranks:           8,
		MaxSupersteps:   30,
		MaxLevels:       30,
		MinImprovement:  1e-9,
		Seed:            1,
		AlphaSec:        1e-6,
		BytePerSec:      10e9,
		BytesPerUpdate:  8,
		Fault:           fault.Disabled(),
		CheckpointEvery: 1,
		MaxRetryBackoff: 4,
	}
}

func (o Options) validate() error {
	if o.Ranks < 1 {
		return fmt.Errorf("dist: Ranks %d < 1", o.Ranks)
	}
	if o.MaxSupersteps < 1 || o.MaxLevels < 1 {
		return fmt.Errorf("dist: MaxSupersteps/MaxLevels must be >= 1")
	}
	if o.AlphaSec < 0 || o.BytePerSec <= 0 || o.BytesPerUpdate <= 0 {
		return fmt.Errorf("dist: invalid communication model")
	}
	if o.CheckpointEvery < 1 {
		return fmt.Errorf("dist: CheckpointEvery %d < 1", o.CheckpointEvery)
	}
	if o.MaxRetryBackoff < 1 {
		return fmt.Errorf("dist: MaxRetryBackoff %d < 1", o.MaxRetryBackoff)
	}
	if err := o.Fault.Validate(); err != nil {
		return err
	}
	return nil
}

// CommStats aggregates the simulated communication and fault recovery.
type CommStats struct {
	Supersteps     int
	Messages       uint64 // point-to-point delta-batch messages (incl. retries)
	Bytes          uint64 // payload bytes moved (incl. retries and duplicates)
	UpdatesSent    uint64 // membership deltas exchanged
	ModeledCommSec float64

	// Fault-tolerance accounting.
	Drops            uint64  // delta batches lost by the injected network
	Retries          uint64  // retransmissions sent after a drop timeout
	RedeliveredBytes uint64  // duplicate- and recovery-replay payload bytes
	Recoveries       uint64  // rank recoveries from checkpoint
	CheckpointBytes  uint64  // ghost-membership checkpoint payload written
	BackoffSec       float64 // modeled retransmission-timeout wait
}

// Result is the outcome of a distributed run.
type Result struct {
	Membership         []uint32
	NumModules         int
	Codelength         float64
	OneLevelCodelength float64
	Levels             int
	Comm               CommStats
	Fault              fault.Stats // faults the injector actually issued
}

// Run executes the simulated distributed Infomap.
func Run(g *graph.Graph, opt Options) (*Result, error) {
	// Documented non-cancellable convenience entry point; callers who need
	// preemption use RunContext.
	return RunContext(context.Background(), g, opt)
}

// RunContext executes the simulated distributed Infomap under a context;
// cancellation is observed at every superstep boundary.
func RunContext(ctx context.Context, g *graph.Graph, opt Options) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if g.Directed() {
		return nil, fmt.Errorf("dist: directed graphs not supported by the distributed simulation")
	}
	if opt.WarmStart != nil && len(opt.WarmStart) != g.N() {
		return nil, fmt.Errorf("dist: WarmStart has %d entries for %d vertices",
			len(opt.WarmStart), g.N())
	}
	injector, err := fault.New(opt.Fault)
	if err != nil {
		return nil, err
	}
	res := &Result{Membership: make([]uint32, g.N())}
	for i := range res.Membership {
		res.Membership[i] = uint32(i)
	}
	if g.N() == 0 {
		return res, nil
	}
	baseFlow, err := mapeq.NewUndirectedFlow(g)
	if err != nil {
		return nil, err
	}
	leafState, err := mapeq.NewState(baseFlow, make([]uint32, g.N()), 1)
	if err != nil {
		return nil, err
	}
	leafNodeTerm := leafState.NodeTerm()
	res.OneLevelCodelength = mapeq.OneLevelCodelength(baseFlow)

	r := rng.New(opt.Seed)
	// Crash downtime is tracked in global supersteps so a rank can stay down
	// across a level boundary.
	downUntil := make([]int, opt.Ranks)
	flow := baseFlow
	for level := 0; level < opt.MaxLevels; level++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n := flow.G.N()
		membership := make([]uint32, n)
		if level == 0 && opt.WarmStart != nil {
			// Warm seed: ranks enter the first level already inside the
			// parent partition's modules instead of as singletons.
			copy(membership, opt.WarmStart)
			mapeq.CompactMembership(membership)
		} else {
			for i := range membership {
				membership[i] = uint32(i)
			}
		}
		res.Levels++
		moves, err := optimizeLevelDistributed(ctx, flow, membership, leafNodeTerm,
			opt, r, &res.Comm, injector, downUntil)
		if err != nil {
			return nil, err
		}
		k := mapeq.CompactMembership(membership)
		if level == 0 {
			copy(res.Membership, membership)
		} else {
			for v := range res.Membership {
				res.Membership[v] = membership[res.Membership[v]]
			}
		}
		if moves == 0 || k == n || k == 1 {
			break
		}
		flow, err = flow.Contract(membership, k)
		if err != nil {
			return nil, err
		}
	}

	mem := append([]uint32(nil), res.Membership...)
	k := mapeq.CompactMembership(mem)
	copy(res.Membership, mem)
	final, err := mapeq.NewState(baseFlow, mem, k)
	if err != nil {
		return nil, err
	}
	res.Codelength = final.Codelength()
	res.NumModules = k
	if res.Codelength > res.OneLevelCodelength {
		for i := range res.Membership {
			res.Membership[i] = 0
		}
		res.Codelength = res.OneLevelCodelength
		res.NumModules = 1
	}
	res.Comm.ModeledCommSec = modeledCommTime(opt, res.Comm)
	res.Fault = injector.Stats()
	return res, nil
}

// modeledCommTime applies the alpha-beta model: each superstep performs an
// allgather of deltas (P·(P−1) messages behind log-tree latency), the
// payload crosses the bisection once, and every retransmission timeout adds
// its exponential-backoff wait.
func modeledCommTime(opt Options, c CommStats) float64 {
	if opt.Ranks == 1 {
		return 0
	}
	logP := 0
	for p := 1; p < opt.Ranks; p <<= 1 {
		logP++
	}
	latency := float64(c.Supersteps) * opt.AlphaSec * float64(logP)
	transfer := float64(c.Bytes) / opt.BytePerSec
	return latency + transfer + c.BackoffSec
}

// delta is one committed membership change on the wire.
type delta struct {
	v, m uint32
}

// flight is a delta batch somewhere in the simulated network: either a
// delivery in transit (resend false) or a retransmission waiting out its
// backoff timer (resend true).
type flight struct {
	from, to int
	due      int // local superstep at which it applies / is resent
	gs       int // global superstep of the original send (injector identity)
	attempt  int // retransmission count (0 = original send)
	deltas   []delta
	dup      bool // duplicate copy: payload counts as redelivered bytes
	resend   bool // waiting out a backoff timer, not in transit
}

// cluster is the per-level state of the simulated fault-tolerant BSP engine.
type cluster struct {
	opt   Options
	inj   *fault.Injector
	comm  *CommStats
	ranks int
	// ghosts[rk] is rank rk's view of the global membership, updated only by
	// its own commits and by delivered delta batches — stale whenever the
	// network misbehaves.
	ghosts [][]uint32
	// ckpt[rk] is rank rk's last ghost checkpoint, taken at the end of local
	// superstep ckptStep[rk].
	ckpt     [][]uint32
	ckptStep []int
	// deltaLog[s] lists every delta committed at local superstep s; crash
	// recovery replays the suffix after the restored checkpoint.
	deltaLog [][]delta
	pending  []flight
	// downUntil[rk] (global supersteps, shared across levels) is when a
	// crashed rank comes back; needsRecovery marks it for checkpoint restore.
	downUntil     []int
	needsRecovery []bool
}

// send pushes one delta batch from rank `from` toward rank `to`, consulting
// the injector for the outcome. gs is the original send's global superstep
// (the batch's identity for deterministic injector draws), step the current
// local superstep, attempt the retransmission count.
func (c *cluster) send(gs, step, from, to, attempt int, deltas []delta) {
	bytes := uint64(len(deltas)) * uint64(c.opt.BytesPerUpdate)
	c.comm.Messages++
	c.comm.Bytes += bytes
	if attempt > 0 {
		c.comm.Retries++
		c.comm.RedeliveredBytes += bytes
	}
	switch c.inj.Outcome(gs, from, to, attempt) {
	case fault.Deliver:
		c.pending = append(c.pending, flight{from: from, to: to, due: step + 1, gs: gs, attempt: attempt, deltas: deltas})
	case fault.Delay:
		// One superstep late: the receiver's ghost stays stale for an extra
		// superstep, exactly the staleness regime BSP community detection
		// must tolerate.
		c.pending = append(c.pending, flight{from: from, to: to, due: step + 2, gs: gs, attempt: attempt, deltas: deltas})
	case fault.Duplicate:
		// Both copies arrive; application is idempotent, so the second costs
		// only wire bytes (counted as redelivered).
		c.comm.Messages++
		c.comm.Bytes += bytes
		c.comm.RedeliveredBytes += bytes
		c.pending = append(c.pending,
			flight{from: from, to: to, due: step + 1, gs: gs, attempt: attempt, deltas: deltas},
			flight{from: from, to: to, due: step + 1, gs: gs, attempt: attempt, deltas: deltas, dup: true})
	case fault.Drop:
		// The batch is lost; the sender times out and retransmits with
		// exponential backoff plus jitter. The modeled timeout is a
		// round-trip estimate doubled per attempt (alpha-beta accounting).
		c.comm.Drops++
		backoff := 1 << attempt
		if backoff > c.opt.MaxRetryBackoff {
			backoff = c.opt.MaxRetryBackoff
		}
		backoff += c.inj.RetryJitter(gs, from, to, attempt, backoff)
		rtt := 2*c.opt.AlphaSec + float64(bytes)/c.opt.BytePerSec
		c.comm.BackoffSec += rtt * float64(uint64(1)<<uint(min(attempt, 16)))
		c.pending = append(c.pending, flight{from: from, to: to, due: step + backoff, gs: gs, attempt: attempt + 1, deltas: deltas, resend: true})
	}
}

// deliverDue applies (or resends) every flight whose timer expired. Batches
// addressed to a rank that is down are carried forward one superstep — the
// replay path will cover the committed state, but idempotent application
// keeps late arrivals harmless.
func (c *cluster) deliverDue(step, gs int) {
	due := c.pending[:0]
	var keep []flight
	for _, f := range c.pending {
		if f.due > step {
			keep = append(keep, f)
		} else {
			due = append(due, f)
		}
	}
	c.pending = keep
	for _, f := range due {
		switch {
		case f.resend:
			// Backoff timer expired: retransmit (subject to the injector,
			// which may drop the retry again and double the backoff).
			c.send(f.gs, step, f.from, f.to, f.attempt, f.deltas)
		case c.down(f.to, gs):
			f.due = step + 1
			c.pending = append(c.pending, f)
		default:
			ghost := c.ghosts[f.to]
			for _, d := range f.deltas {
				ghost[d.v] = d.m
			}
		}
	}
}

func (c *cluster) down(rk, gs int) bool {
	return rk < len(c.downUntil) && gs < c.downUntil[rk]
}

// optimizeLevelDistributed runs BSP supersteps on one level. Each rank owns
// a contiguous vertex block and evaluates moves against its own ghost copy
// of the global membership (stale within the superstep — and beyond it when
// the injector drops or delays deltas — exactly as a real distributed
// implementation's ghost state is). Deltas are committed against the
// authoritative state at the superstep boundary and broadcast through the
// simulated network.
func optimizeLevelDistributed(ctx context.Context, flow *mapeq.Flow, membership []uint32,
	leafNodeTerm float64, opt Options, r *rng.RNG, comm *CommStats,
	inj *fault.Injector, downUntil []int) (uint64, error) {

	n := flow.G.N()
	truth, err := mapeq.NewState(flow, membership, n)
	if err != nil {
		return 0, err
	}
	truth.OverrideNodeTerm(leafNodeTerm)

	ranks := opt.Ranks
	if ranks > n {
		ranks = n
	}
	// Block partition (HyPC-Map distributes contiguous vertex ranges).
	blocks := make([][]uint32, ranks)
	chunk := (n + ranks - 1) / ranks
	for rk := 0; rk < ranks; rk++ {
		lo := rk * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		for v := lo; v < hi; v++ {
			blocks[rk] = append(blocks[rk], uint32(v))
		}
	}

	cl := &cluster{
		opt:           opt,
		inj:           inj,
		comm:          comm,
		ranks:         ranks,
		ghosts:        make([][]uint32, ranks),
		ckpt:          make([][]uint32, ranks),
		ckptStep:      make([]int, ranks),
		downUntil:     downUntil,
		needsRecovery: make([]bool, ranks),
	}
	for rk := 0; rk < ranks; rk++ {
		cl.ghosts[rk] = append([]uint32(nil), membership...)
		cl.ckpt[rk] = append([]uint32(nil), membership...)
		// A rank that entered this level mid-downtime recovers from the
		// level-start state once its downtime expires.
		if cl.down(rk, comm.Supersteps) {
			cl.needsRecovery[rk] = true
		}
	}

	totalMoves := uint64(0)
	prevL := truth.Codelength()
	for step := 0; step < opt.MaxSupersteps; step++ {
		if err := ctx.Err(); err != nil {
			return totalMoves, err
		}
		gs := comm.Supersteps // global superstep id (spans levels)
		comm.Supersteps++

		// 1. Scheduled crashes: the rank loses its volatile ghost state and
		// goes silent for the injector's downtime window.
		for rk := 0; rk < ranks; rk++ {
			if !cl.down(rk, gs) && inj.CrashesAt(rk, gs) {
				downUntil[rk] = gs + inj.DownFor()
				cl.needsRecovery[rk] = true
			}
		}

		// 2. Recoveries: a rank whose downtime expired restores its last
		// checkpoint and replays the deltas the cluster committed since.
		for rk := 0; rk < ranks; rk++ {
			if cl.needsRecovery[rk] && !cl.down(rk, gs) {
				copy(cl.ghosts[rk], cl.ckpt[rk])
				replayed := 0
				for ls := cl.ckptStep[rk]; ls < step; ls++ {
					for _, d := range cl.deltaLog[ls] {
						cl.ghosts[rk][d.v] = d.m
						replayed++
					}
				}
				comm.RedeliveredBytes += uint64(replayed) * uint64(opt.BytesPerUpdate)
				comm.Recoveries++
				cl.needsRecovery[rk] = false
			}
		}

		// 3. The network delivers (or retransmits) everything due.
		cl.deliverDue(step, gs)

		// 4. Proposal phase: each live rank evaluates its block against its
		// own ghost membership. Down ranks are skipped — their vertices stay
		// put while the rest of the cluster degrades gracefully.
		type proposal struct {
			v      uint32
			target uint32
		}
		proposals := make([][]proposal, ranks)
		for rk := 0; rk < ranks; rk++ {
			if cl.down(rk, gs) || cl.needsRecovery[rk] {
				continue
			}
			snapshot := append([]uint32(nil), cl.ghosts[rk]...)
			rankState, err := mapeq.NewState(flow, snapshot, n)
			if err != nil {
				return totalMoves, err
			}
			rankState.OverrideNodeTerm(leafNodeTerm)
			order := append([]uint32(nil), blocks[rk]...)
			r.ShuffleUint32(order)
			for _, v := range order {
				if t, ok := bestMove(flow, rankState, int(v)); ok {
					proposals[rk] = append(proposals[rk], proposal{v: v, target: t})
				}
			}
		}

		// 5. Superstep boundary: commit improving proposals on the true
		// state (the ΔL re-check makes stale-ghost proposals harmless) and
		// broadcast the resulting membership deltas through the network.
		moves := uint64(0)
		stepDeltas := make([]delta, 0)
		byOwner := make([][]delta, ranks)
		for rk := 0; rk < ranks; rk++ {
			for _, p := range proposals[rk] {
				v := int(p.v)
				old := truth.Module(v)
				if old == p.target {
					continue
				}
				oo, io, on, in := commitFlowsLocal(flow, truth, v, old, p.target)
				view := flow.View(v)
				if d := truth.DeltaMove(view, p.target, oo, io, on, in); d < 0 {
					truth.Apply(view, p.target, oo, io, on, in)
					moves++
					dl := delta{v: p.v, m: p.target}
					stepDeltas = append(stepDeltas, dl)
					byOwner[rk] = append(byOwner[rk], dl)
					// The owner sees its own commit immediately.
					cl.ghosts[rk][v] = p.target
				}
			}
		}
		truth.Refresh()
		cl.deltaLog = append(cl.deltaLog, stepDeltas)
		if ranks > 1 && moves > 0 {
			comm.UpdatesSent += moves
			for rk := 0; rk < ranks; rk++ {
				if len(byOwner[rk]) == 0 {
					continue
				}
				for dest := 0; dest < ranks; dest++ {
					if dest == rk || cl.down(dest, gs) {
						// A dead peer gets the committed state back through
						// its recovery replay, not the wire.
						continue
					}
					cl.send(gs, step, rk, dest, 0, byOwner[rk])
				}
			}
		}

		// 6. Checkpoint phase: every live rank persists its ghost view.
		if (step+1)%opt.CheckpointEvery == 0 {
			for rk := 0; rk < ranks; rk++ {
				if cl.down(rk, gs) || cl.needsRecovery[rk] {
					continue
				}
				copy(cl.ckpt[rk], cl.ghosts[rk])
				cl.ckptStep[rk] = step + 1
				comm.CheckpointBytes += uint64(n) * uint64(opt.BytesPerUpdate)
			}
		}

		totalMoves += moves
		l := truth.Codelength()
		// Termination requires a fully synchronized cluster: no batches in
		// flight or awaiting retransmission, and no rank down or pending
		// recovery. Declaring convergence earlier could freeze a partition
		// that a recovering rank would still improve.
		synced := len(cl.pending) == 0 && cl.allLive(gs+1)
		if synced && (moves == 0 || prevL-l < opt.MinImprovement) {
			break
		}
		prevL = l
	}
	return totalMoves, nil
}

// allLive reports whether every rank is up and fully recovered at the given
// global superstep.
func (c *cluster) allLive(gs int) bool {
	for rk := 0; rk < c.ranks; rk++ {
		if c.down(rk, gs) || c.needsRecovery[rk] {
			return false
		}
	}
	return true
}

// bestMove evaluates one vertex against the rank's state snapshot and
// returns the best target module, if improving.
func bestMove(flow *mapeq.Flow, st *mapeq.State, v int) (uint32, bool) {
	g := flow.G
	old := st.Module(v)
	outW := map[uint32]float64{}
	inW := map[uint32]float64{}
	var keys []uint32
	lo, _ := g.OutRange(v)
	nb := g.OutNeighbors(v)
	for j := range nb {
		t := int(nb[j])
		if t == v {
			continue
		}
		m := st.Module(t)
		if _, ok := outW[m]; !ok {
			keys = append(keys, m)
		}
		outW[m] += flow.OutFlow[lo+j]
	}
	ilo, _ := g.InRange(v)
	in := g.InNeighbors(v)
	for j := range in {
		s := int(in[j])
		if s == v {
			continue
		}
		m := st.Module(s)
		if _, ok := outW[m]; !ok {
			if _, ok2 := inW[m]; !ok2 {
				keys = append(keys, m)
			}
		}
		inW[m] += flow.InFlow[ilo+j]
	}
	if len(keys) == 0 {
		return old, false
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	view := flow.View(v)
	best, bestDelta := old, 0.0
	for _, m := range keys {
		if m == old {
			continue
		}
		d := st.DeltaMove(view, m, outW[old], inW[old], outW[m], inW[m])
		if d < bestDelta-1e-15 {
			best, bestDelta = m, d
		}
	}
	return best, best != old
}

// commitFlowsLocal recomputes the four commit flows against the true state
// (same role as the shared-memory engine's commit re-check).
func commitFlowsLocal(flow *mapeq.Flow, st *mapeq.State, v int, old, target uint32) (oo, io, on, in float64) {
	g := flow.G
	lo, _ := g.OutRange(v)
	nb := g.OutNeighbors(v)
	for j := range nb {
		t := int(nb[j])
		if t == v {
			continue
		}
		switch st.Module(t) {
		case old:
			oo += flow.OutFlow[lo+j]
		case target:
			on += flow.OutFlow[lo+j]
		}
	}
	ilo, _ := g.InRange(v)
	inn := g.InNeighbors(v)
	for j := range inn {
		s := int(inn[j])
		if s == v {
			continue
		}
		switch st.Module(s) {
		case old:
			io += flow.InFlow[ilo+j]
		case target:
			in += flow.InFlow[ilo+j]
		}
	}
	return
}

// Compare runs the shared-memory engine on the same graph for quality
// comparison (convenience for the harness).
func Compare(g *graph.Graph, seed uint64) (*infomap.Result, error) {
	opt := infomap.DefaultOptions()
	opt.Seed = seed
	return infomap.Run(g, opt)
}
