package dist

import (
	"testing"

	"github.com/asamap/asamap/internal/graph"
)

// The edge-case matrix from the robustness issue: more ranks than vertices,
// empty graph, single-vertex graph, and all vertices on one rank. Each must
// terminate (no hang), return a valid result, and report sane CommStats —
// with and without fault injection, since the fault paths index per-rank
// state that degenerate partitions stress.

func sanityCheckComm(t *testing.T, name string, c CommStats) {
	t.Helper()
	if c.Supersteps < 0 {
		t.Fatalf("%s: negative supersteps", name)
	}
	if c.ModeledCommSec < 0 || c.BackoffSec < 0 {
		t.Fatalf("%s: negative modeled time: %+v", name, c)
	}
	if c.Bytes > 0 && c.Messages == 0 {
		t.Fatalf("%s: bytes without messages: %+v", name, c)
	}
	if c.Retries > 0 && c.Drops == 0 {
		t.Fatalf("%s: retries without drops: %+v", name, c)
	}
}

func TestMoreRanksThanVerticesComm(t *testing.T) {
	b := graph.NewBuilder(3, false)
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(1, 2, 1)
	opt := DefaultOptions()
	opt.Ranks = 64 // clamped to 3 live ranks internally
	res, err := Run(b.Build(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Membership) != 3 {
		t.Fatalf("membership length %d, want 3", len(res.Membership))
	}
	sanityCheckComm(t, "ranks>n", res.Comm)

	// Same shape with faults enabled, including a crash rank beyond the
	// clamped rank count (must be a no-op, not an index panic).
	opt.Fault.DropProb = 0.4
	opt.Fault.InjectCrash = true
	opt.Fault.CrashRank = 50
	opt.Fault.CrashStep = 0
	opt.Fault.CrashDownFor = 2
	opt.MaxSupersteps = 100
	res, err = Run(b.Build(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fault.Crashes != 0 {
		t.Fatalf("crash of out-of-range rank executed: %+v", res.Fault)
	}
	sanityCheckComm(t, "ranks>n faulted", res.Comm)
}

func TestEmptyGraphComm(t *testing.T) {
	opt := DefaultOptions()
	opt.Fault.DropProb = 0.5 // faults on an empty graph must be inert
	res, err := Run(graph.NewBuilder(0, false).Build(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Membership) != 0 {
		t.Fatal("empty graph produced membership")
	}
	if res.Comm != (CommStats{}) {
		t.Fatalf("empty graph communicated: %+v", res.Comm)
	}
}

func TestSingleVertexGraph(t *testing.T) {
	b := graph.NewBuilder(1, false)
	_ = b.AddEdge(0, 0, 2) // a self-loop keeps the flow model non-degenerate
	opt := DefaultOptions()
	opt.Ranks = 8
	res, err := Run(b.Build(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Membership) != 1 || res.Membership[0] != 0 {
		t.Fatalf("single vertex membership %v", res.Membership)
	}
	if res.NumModules != 1 {
		t.Fatalf("single vertex found %d modules", res.NumModules)
	}
	// One vertex lands on one rank: nothing to exchange, nothing to drop.
	if res.Comm.Messages != 0 || res.Comm.Bytes != 0 {
		t.Fatalf("single vertex communicated: %+v", res.Comm)
	}
	sanityCheckComm(t, "single-vertex", res.Comm)
}

func TestAllVerticesOnOneRank(t *testing.T) {
	// Ranks=1 puts every vertex on rank 0: the full algorithm runs with no
	// network, so fault injection has no messages to touch and a crash of
	// rank 0 only pauses (and then recovers) the single worker.
	g, _ := plantedGraph(t)
	opt := DefaultOptions()
	opt.Ranks = 1
	opt.Fault.DropProb = 0.5
	opt.Fault.InjectCrash = true
	opt.Fault.CrashRank = 0
	opt.Fault.CrashStep = 1
	opt.Fault.CrashDownFor = 2
	opt.MaxSupersteps = 100
	res, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.Messages != 0 || res.Comm.Bytes != 0 || res.Comm.Drops != 0 {
		t.Fatalf("single rank communicated: %+v", res.Comm)
	}
	if res.Fault.Crashes == 0 || res.Comm.Recoveries == 0 {
		t.Fatalf("single-rank crash not recovered: %+v %+v", res.Comm, res.Fault)
	}
	if res.NumModules != 4 {
		t.Fatalf("single rank found %d modules, want 4", res.NumModules)
	}
	sanityCheckComm(t, "one-rank", res.Comm)
}
