package dist

import (
	"math"
	"testing"

	"github.com/asamap/asamap/internal/gen"
	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/metrics"
	"github.com/asamap/asamap/internal/rng"
)

func plantedGraph(t *testing.T) (*graph.Graph, []uint32) {
	t.Helper()
	g, mem, err := gen.SBM(gen.SBMParams{Sizes: []int{50, 50, 50, 50}, PIn: 0.3, POut: 0.01}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	return g, mem
}

func TestDistributedRecoversStructure(t *testing.T) {
	g, planted := plantedGraph(t)
	for _, ranks := range []int{1, 2, 4, 8} {
		opt := DefaultOptions()
		opt.Ranks = ranks
		res, err := Run(g, opt)
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if res.NumModules != 4 {
			t.Fatalf("ranks=%d: found %d modules, want 4", ranks, res.NumModules)
		}
		nmi, err := metrics.NMI(res.Membership, planted)
		if err != nil {
			t.Fatal(err)
		}
		if nmi < 0.95 {
			t.Fatalf("ranks=%d: NMI %.3f against planted partition", ranks, nmi)
		}
		if res.Codelength >= res.OneLevelCodelength {
			t.Fatalf("ranks=%d: no compression", ranks)
		}
	}
}

func TestDistributedMatchesSharedMemoryQuality(t *testing.T) {
	g, _ := plantedGraph(t)
	opt := DefaultOptions()
	opt.Ranks = 4
	d, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Compare(g, opt.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Codelength-s.Codelength) > 0.05 {
		t.Fatalf("distributed L %.4f far from shared-memory L %.4f", d.Codelength, s.Codelength)
	}
}

func TestCommunicationAccounting(t *testing.T) {
	g, _ := plantedGraph(t)
	single := DefaultOptions()
	single.Ranks = 1
	r1, err := Run(g, single)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Comm.Bytes != 0 || r1.Comm.Messages != 0 || r1.Comm.ModeledCommSec != 0 {
		t.Fatalf("single rank should not communicate: %+v", r1.Comm)
	}
	multi := DefaultOptions()
	multi.Ranks = 4
	r4, err := Run(g, multi)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Comm.Bytes == 0 || r4.Comm.Messages == 0 || r4.Comm.UpdatesSent == 0 {
		t.Fatalf("4 ranks must exchange deltas: %+v", r4.Comm)
	}
	if r4.Comm.ModeledCommSec <= 0 {
		t.Fatal("modeled communication time missing")
	}
	// Bytes = updates × wire size × (P−1).
	want := r4.Comm.UpdatesSent * uint64(multi.BytesPerUpdate) * 3
	if r4.Comm.Bytes != want {
		t.Fatalf("bytes %d, want %d", r4.Comm.Bytes, want)
	}
	if r4.Comm.Supersteps == 0 {
		t.Fatal("no supersteps counted")
	}
}

func TestMoreRanksMoreMessages(t *testing.T) {
	g, _ := plantedGraph(t)
	opt2 := DefaultOptions()
	opt2.Ranks = 2
	r2, err := Run(g, opt2)
	if err != nil {
		t.Fatal(err)
	}
	opt8 := DefaultOptions()
	opt8.Ranks = 8
	r8, err := Run(g, opt8)
	if err != nil {
		t.Fatal(err)
	}
	if r8.Comm.Messages <= r2.Comm.Messages {
		t.Fatalf("8 ranks sent %d messages, 2 ranks %d; allgather volume must grow",
			r8.Comm.Messages, r2.Comm.Messages)
	}
}

func TestValidation(t *testing.T) {
	g, _ := plantedGraph(t)
	bad := DefaultOptions()
	bad.Ranks = 0
	if _, err := Run(g, bad); err == nil {
		t.Fatal("Ranks=0 accepted")
	}
	bad = DefaultOptions()
	bad.BytePerSec = 0
	if _, err := Run(g, bad); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	db := graph.NewBuilder(2, true)
	_ = db.AddEdge(0, 1, 1)
	if _, err := Run(db.Build(), DefaultOptions()); err == nil {
		t.Fatal("directed graph accepted")
	}
}

func TestEmptyAndMoreRanksThanVertices(t *testing.T) {
	res, err := Run(graph.NewBuilder(0, false).Build(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Membership) != 0 {
		t.Fatal("empty graph produced membership")
	}
	b := graph.NewBuilder(3, false)
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(1, 2, 1)
	opt := DefaultOptions()
	opt.Ranks = 64 // more ranks than vertices
	if _, err := Run(b.Build(), opt); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	g, _ := plantedGraph(t)
	opt := DefaultOptions()
	opt.Ranks = 4
	a, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Codelength != b.Codelength || a.Comm.Bytes != b.Comm.Bytes {
		t.Fatal("distributed simulation not deterministic under fixed seed")
	}
}

func TestMembershipAlwaysValid(t *testing.T) {
	g, _ := plantedGraph(t)
	for _, ranks := range []int{1, 3, 7} {
		opt := DefaultOptions()
		opt.Ranks = ranks
		res, err := Run(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[uint32]bool{}
		for _, m := range res.Membership {
			if int(m) >= res.NumModules {
				t.Fatalf("ranks=%d: module %d >= %d", ranks, m, res.NumModules)
			}
			seen[m] = true
		}
		if len(seen) != res.NumModules {
			t.Fatalf("ranks=%d: %d labels vs NumModules %d", ranks, len(seen), res.NumModules)
		}
	}
}

func TestAlphaBetaModelScaling(t *testing.T) {
	opt := DefaultOptions()
	opt.Ranks = 8
	c := CommStats{Supersteps: 10, Bytes: 1 << 20}
	base := modeledCommTime(opt, c)
	// Doubling bytes raises transfer time.
	c2 := c
	c2.Bytes *= 2
	if modeledCommTime(opt, c2) <= base {
		t.Fatal("transfer time not increasing in bytes")
	}
	// More supersteps raise latency time.
	c3 := c
	c3.Supersteps *= 4
	if modeledCommTime(opt, c3) <= base {
		t.Fatal("latency time not increasing in supersteps")
	}
	// Single rank communicates for free.
	opt1 := DefaultOptions()
	opt1.Ranks = 1
	if modeledCommTime(opt1, c) != 0 {
		t.Fatal("single rank should cost 0")
	}
}
