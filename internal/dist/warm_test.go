package dist

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/asamap/asamap/internal/fault"
)

// TestWarmStartIdentitySeedMatchesCold pins the seeding semantics exactly:
// an all-singletons warm seed is indistinguishable from a cold start, so the
// two runs must agree bit-for-bit.
func TestWarmStartIdentitySeedMatchesCold(t *testing.T) {
	g, _ := plantedGraph(t)
	cold, err := Run(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.WarmStart = make([]uint32, g.N())
	for i := range opt.WarmStart {
		opt.WarmStart[i] = uint32(i)
	}
	warm, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(warm.Codelength) != math.Float64bits(cold.Codelength) ||
		!reflect.DeepEqual(warm.Membership, cold.Membership) {
		t.Fatalf("identity warm seed diverged from cold: L %.6f vs %.6f",
			warm.Codelength, cold.Codelength)
	}
}

// TestWarmStartFromConvergedPartition seeds the simulation with its own cold
// result: the warm run must accept the partition (or improve it) and may not
// end worse.
func TestWarmStartFromConvergedPartition(t *testing.T) {
	g, _ := plantedGraph(t)
	cold, err := Run(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.WarmStart = cold.Membership
	warm, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Codelength > cold.Codelength+1e-12 {
		t.Fatalf("warm start worsened codelength: %.6f > %.6f", warm.Codelength, cold.Codelength)
	}
	if warm.NumModules != cold.NumModules {
		t.Fatalf("warm start fragmented the converged partition: %d modules vs %d",
			warm.NumModules, cold.NumModules)
	}
	// A converged seed leaves nothing to contract: the warm run finishes in
	// fewer (or equal) levels than the cold run built.
	if warm.Levels > cold.Levels {
		t.Fatalf("warm run used %d levels, cold used %d", warm.Levels, cold.Levels)
	}
}

// TestWarmStartSurvivesFaults runs the warm-seeded simulation under crash and
// drop injection: the delta-log/checkpoint recovery machinery must reproduce
// the fault-free warm result exactly, as it does for cold runs.
func TestWarmStartSurvivesFaults(t *testing.T) {
	g, _ := plantedGraph(t)
	cold, err := Run(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	clean := DefaultOptions()
	clean.WarmStart = cold.Membership
	want, err := Run(g, clean)
	if err != nil {
		t.Fatal(err)
	}
	// A warm seed converges in very few supersteps, so the crash must land at
	// the first one to exercise recovery at all.
	faulty := clean
	faulty.Fault = fault.Config{Seed: 99, DropProb: 0.2,
		InjectCrash: true, CrashRank: 1, CrashStep: 0, CrashDownFor: 1}
	got, err := Run(g, faulty)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fault.Crashes == 0 {
		t.Fatal("fault injector issued nothing; the scenario tests no recovery")
	}
	if math.Float64bits(got.Codelength) != math.Float64bits(want.Codelength) ||
		!reflect.DeepEqual(got.Membership, want.Membership) {
		t.Fatalf("faults changed the warm-started result: L %.6f vs %.6f",
			got.Codelength, want.Codelength)
	}
	if got.Comm.Recoveries == 0 && got.Fault.Crashes > 0 {
		t.Fatal("crashes issued but no checkpoint recovery recorded")
	}
}

func TestWarmStartValidation(t *testing.T) {
	g, _ := plantedGraph(t)
	opt := DefaultOptions()
	opt.WarmStart = make([]uint32, g.N()-1)
	_, err := Run(g, opt)
	if err == nil || !strings.Contains(err.Error(), "WarmStart") {
		t.Fatalf("short WarmStart accepted: %v", err)
	}
}
