package graph

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// DeltaOp identifies one kind of edge mutation in a delta batch.
type DeltaOp uint8

const (
	// DeltaAdd adds weight to an edge, creating it if absent (weights sum,
	// matching Builder's duplicate-arc merge).
	DeltaAdd DeltaOp = iota
	// DeltaRemove deletes an edge entirely; removing an absent edge is a
	// no-op so deltas replay idempotently.
	DeltaRemove
	// DeltaSet overwrites an edge's weight (upsert); setting weight 0
	// removes the edge.
	DeltaSet
)

// String returns the single-character text form used by the delta list
// format: "+", "-", "=".
func (op DeltaOp) String() string {
	switch op {
	case DeltaAdd:
		return "+"
	case DeltaRemove:
		return "-"
	case DeltaSet:
		return "="
	}
	return fmt.Sprintf("DeltaOp(%d)", uint8(op))
}

// DeltaEdge is one edge mutation. From/To are dense vertex IDs in the parent
// graph's ID space; IDs at or beyond the parent's N() grow the graph.
type DeltaEdge struct {
	Op       DeltaOp
	From, To uint32
	Weight   float64 // ignored for DeltaRemove
}

// Delta is an ordered, append-only batch of edge mutations against a parent
// graph. Order matters (a DeltaSet after a DeltaAdd overwrites the sum), so
// the canonical hash covers ops in sequence and replaying the same batch is
// always bit-identical.
type Delta struct {
	Ops []DeltaEdge
}

// deltaHashVersion tags the byte layout of Delta.Hash, mirroring
// canonicalHashVersion for graphs.
const deltaHashVersion = "asamap-delta-v1\n"

// Hash chains the delta onto its parent graph's CanonicalHash, producing the
// content address of the child version: SHA-256 over a version tag, the
// parent digest, and every op in order (op byte, endpoints, IEEE-754 weight
// bits, little-endian). Two versions collide only if they share both lineage
// and the exact mutation sequence.
func (d *Delta) Hash(parent [32]byte) [32]byte {
	h := sha256.New()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	h.Write([]byte(deltaHashVersion))
	h.Write(parent[:])
	writeU64(uint64(len(d.Ops)))
	for _, op := range d.Ops {
		h.Write([]byte{byte(op.Op)})
		writeU64(uint64(op.From))
		writeU64(uint64(op.To))
		w := op.Weight
		if op.Op == DeltaRemove {
			w = 0 // removals carry no weight; canonicalize so it can't skew the hash
		}
		writeU64(math.Float64bits(w))
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Validate checks every op for weight sanity: DeltaAdd needs a positive
// finite weight, DeltaSet a non-negative finite weight (0 means remove).
func (d *Delta) Validate() error {
	for i, op := range d.Ops {
		switch op.Op {
		case DeltaAdd:
			if !(op.Weight > 0) || math.IsInf(op.Weight, 0) {
				return fmt.Errorf("graph: delta op %d: add with non-positive or non-finite weight %g", i, op.Weight)
			}
		case DeltaRemove:
			// weight ignored
		case DeltaSet:
			if !(op.Weight >= 0) || math.IsInf(op.Weight, 0) {
				return fmt.Errorf("graph: delta op %d: set with negative or non-finite weight %g", i, op.Weight)
			}
		default:
			return fmt.Errorf("graph: delta op %d: unknown op %d", i, uint8(op.Op))
		}
	}
	return nil
}

// arcKey canonicalizes an edge for the delta weight map: undirected edges
// are keyed with the smaller endpoint first so (u,v) and (v,u) name the same
// edge, matching the mirrored CSR storage.
func arcKey(directed bool, u, v uint32) [2]uint32 {
	if !directed && v < u {
		return [2]uint32{v, u}
	}
	return [2]uint32{u, v}
}

// Apply replays the batch against g and builds the child graph from scratch
// through Builder, so the result is canonical CSR exactly as if the full
// edge list had been read cold — this is the property the FuzzDeltaReplay
// oracle pins. Vertex IDs at or beyond g.N() grow the vertex set; removed
// edges may leave isolated vertices behind (the vertex set never shrinks, so
// parent and child memberships stay index-compatible).
func (d *Delta) Apply(g *Graph) (*Graph, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	directed := g.Directed()

	// Start from the parent's logical edge set (one entry per undirected
	// edge, not per mirrored arc).
	weight := make(map[[2]uint32]float64, g.M())
	for u := 0; u < g.N(); u++ {
		nb, ws := g.OutNeighbors(u), g.OutWeights(u)
		for i, v := range nb {
			if !directed && int(v) < u {
				continue
			}
			weight[arcKey(directed, uint32(u), v)] = ws[i]
		}
	}

	n := g.N()
	for _, op := range d.Ops {
		if int(op.From) >= n {
			n = int(op.From) + 1
		}
		if int(op.To) >= n {
			n = int(op.To) + 1
		}
		key := arcKey(directed, op.From, op.To)
		switch op.Op {
		case DeltaAdd:
			weight[key] += op.Weight
		case DeltaRemove:
			delete(weight, key)
		case DeltaSet:
			if op.Weight == 0 {
				delete(weight, key)
			} else {
				weight[key] = op.Weight
			}
		}
	}

	b := NewBuilder(n, directed)
	b.Reserve(len(weight))
	for _, key := range SortedKeysFunc(weight, func(a, b [2]uint32) int {
		if a[0] != b[0] {
			if a[0] < b[0] {
				return -1
			}
			return 1
		}
		if a[1] != b[1] {
			if a[1] < b[1] {
				return -1
			}
			return 1
		}
		return 0
	}) {
		w := weight[key]
		// Accumulated float weights can only be positive here (adds are
		// positive, sets of zero delete), but guard against exotic
		// cancellation producing a denormal zero.
		if !(w > 0) {
			continue
		}
		if math.IsInf(w, 0) {
			return nil, fmt.Errorf("graph: delta: accumulated weight on edge (%d,%d) overflowed to %g", key[0], key[1], w)
		}
		if err := b.AddEdge(key[0], key[1], w); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// Touched returns the sorted, de-duplicated endpoints named by any op in the
// batch — the seed set for the warm-start k-hop frontier. No-op mutations
// (removing an absent edge) still contribute their endpoints: the frontier
// over-approximates, never under-approximates.
func (d *Delta) Touched() []uint32 {
	seen := make(map[uint32]struct{}, 2*len(d.Ops))
	for _, op := range d.Ops {
		seen[op.From] = struct{}{}
		seen[op.To] = struct{}{}
	}
	return SortedKeys(seen)
}

// KHopFrontier marks every vertex of g within hops hops of a seed, walking
// both out- and in-neighbors (so directed deltas thaw upstream vertices
// whose flow changed too). Seeds outside [0, g.N()) are ignored — they name
// vertices that only exist in the child graph. hops=0 marks the seeds alone.
func KHopFrontier(g *Graph, seeds []uint32, hops int) []bool {
	frontier := make([]bool, g.N())
	var cur []uint32
	for _, s := range seeds {
		if int(s) < g.N() && !frontier[s] {
			frontier[s] = true
			cur = append(cur, s)
		}
	}
	for h := 0; h < hops && len(cur) > 0; h++ {
		var next []uint32
		for _, u := range cur {
			for _, v := range g.OutNeighbors(int(u)) {
				if !frontier[v] {
					frontier[v] = true
					next = append(next, v)
				}
			}
			for _, v := range g.InNeighbors(int(u)) {
				if !frontier[v] {
					frontier[v] = true
					next = append(next, v)
				}
			}
		}
		cur = next
	}
	return frontier
}

// ReadDeltaList parses the delta text format, one op per line:
//
//	# comment lines start with '#'
//	+ <from> <to> [weight]   add (weight defaults to 1)
//	- <from> <to>            remove
//	= <from> <to> <weight>   set (weight 0 removes)
//
// Vertex IDs are dense uint32 in the parent graph's ID space — no label
// remapping happens here (cmd/infomap remaps labels before building the
// delta, and the serve API works in dense IDs throughout).
func ReadDeltaList(r io.Reader) (*Delta, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	var d Delta
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		var op DeltaOp
		switch fields[0] {
		case "+":
			op = DeltaAdd
		case "-":
			op = DeltaRemove
		case "=":
			op = DeltaSet
		default:
			return nil, fmt.Errorf("graph: delta line %d: want op '+', '-' or '=', got %q", lineNo, fields[0])
		}
		if len(fields) < 3 {
			return nil, fmt.Errorf("graph: delta line %d: want at least 3 fields, got %q", lineNo, line)
		}
		from, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: delta line %d: bad source %q: %v", lineNo, fields[1], err)
		}
		to, err := strconv.ParseUint(fields[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: delta line %d: bad target %q: %v", lineNo, fields[2], err)
		}
		e := DeltaEdge{Op: op, From: uint32(from), To: uint32(to), Weight: 1}
		switch op {
		case DeltaAdd:
			if len(fields) >= 4 {
				e.Weight, err = strconv.ParseFloat(fields[3], 64)
				if err != nil {
					return nil, fmt.Errorf("graph: delta line %d: bad weight %q: %v", lineNo, fields[3], err)
				}
				if !(e.Weight > 0) || math.IsInf(e.Weight, 0) {
					return nil, fmt.Errorf("graph: delta line %d: non-positive or non-finite weight %g", lineNo, e.Weight)
				}
			}
		case DeltaRemove:
			e.Weight = 0
			if len(fields) > 3 {
				return nil, fmt.Errorf("graph: delta line %d: remove takes no weight, got %q", lineNo, line)
			}
		case DeltaSet:
			if len(fields) < 4 {
				return nil, fmt.Errorf("graph: delta line %d: set needs an explicit weight, got %q", lineNo, line)
			}
			e.Weight, err = strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: delta line %d: bad weight %q: %v", lineNo, fields[3], err)
			}
			if !(e.Weight >= 0) || math.IsInf(e.Weight, 0) {
				return nil, fmt.Errorf("graph: delta line %d: negative or non-finite weight %g", lineNo, e.Weight)
			}
		}
		d.Ops = append(d.Ops, e)
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("graph: delta line %d: %w (lines are limited to 1 MiB)", lineNo+1, err)
		}
		return nil, fmt.Errorf("graph: scanning delta list: %w", err)
	}
	return &d, nil
}

// ReadDeltaListFile opens path and parses it with ReadDeltaList.
func ReadDeltaListFile(path string) (*Delta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDeltaList(f)
}

// WriteDeltaList emits the batch in the delta text format; ReadDeltaList on
// the output reproduces the ops bit for bit.
func (d *Delta) WriteDeltaList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# delta: %d ops\n", len(d.Ops))
	for _, op := range d.Ops {
		switch op.Op {
		case DeltaAdd:
			if op.Weight == 1 {
				fmt.Fprintf(bw, "+ %d %d\n", op.From, op.To)
			} else {
				fmt.Fprintf(bw, "+ %d %d %g\n", op.From, op.To, op.Weight)
			}
		case DeltaRemove:
			fmt.Fprintf(bw, "- %d %d\n", op.From, op.To)
		case DeltaSet:
			fmt.Fprintf(bw, "= %d %d %g\n", op.From, op.To, op.Weight)
		}
	}
	return bw.Flush()
}
