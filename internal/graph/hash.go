package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// canonicalHashVersion tags the byte layout fed to the canonical hash so the
// identity can be evolved without silently aliasing old digests.
const canonicalHashVersion = "asamap-graph-v1\n"

// CanonicalHash returns the SHA-256 digest of the graph's canonical edge
// form: directedness, vertex count, and the CSR arc list (row lengths,
// sorted targets, IEEE-754 weight bits) in little-endian byte order.
//
// Build canonicalizes edges — rows are sorted by target and duplicate arcs
// are merged by weight summation — so any two inputs describing the same
// weighted graph (shuffled edge order, duplicated lines that sum to the same
// weights, either orientation of an undirected edge) hash identically, while
// any structural or weight difference changes the digest. This is the
// content address used by the serving layer's graph registry.
func (g *Graph) CanonicalHash() [32]byte {
	h := sha256.New()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}

	h.Write([]byte(canonicalHashVersion))
	if g.directed {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	writeU64(uint64(g.n))
	writeU64(uint64(len(g.targets)))
	for u := 0; u < g.n; u++ {
		writeU64(uint64(g.OutDegree(u)))
		nb, ws := g.OutNeighbors(u), g.OutWeights(u)
		for i, v := range nb {
			writeU64(uint64(v))
			writeU64(math.Float64bits(ws[i]))
		}
	}

	var out [32]byte
	h.Sum(out[:0])
	return out
}

// CanonicalHashString returns CanonicalHash as lowercase hex, the form used
// in URLs, logs, and cache keys.
func (g *Graph) CanonicalHashString() string {
	sum := g.CanonicalHash()
	return hex.EncodeToString(sum[:])
}
