package graph

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/asamap/asamap/internal/rng"
)

func mustBuild(t *testing.T, n int, directed bool, edges [][3]float64) *Graph {
	t.Helper()
	b := NewBuilder(n, directed)
	for _, e := range edges {
		if err := b.AddEdge(uint32(e[0]), uint32(e[1]), e[2]); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
	}
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0, false).Build()
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph: N=%d M=%d", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.DegreeHistogram()) != 1 {
		t.Fatal("empty graph histogram should have length 1")
	}
}

func TestUndirectedMirroring(t *testing.T) {
	g := mustBuild(t, 3, false, [][3]float64{{0, 1, 2.0}, {1, 2, 3.0}})
	if g.M() != 4 {
		t.Fatalf("M = %d, want 4 (two mirrored edges)", g.M())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	w, ok := g.ArcWeight(1, 0)
	if !ok || w != 2.0 {
		t.Fatalf("mirror arc 1->0: (%g,%v)", w, ok)
	}
	if g.TotalWeight() != 10.0 {
		t.Fatalf("TotalWeight = %g, want 10", g.TotalWeight())
	}
}

func TestDirectedNoMirroring(t *testing.T) {
	g := mustBuild(t, 3, true, [][3]float64{{0, 1, 1}, {1, 2, 1}})
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if g.HasArc(1, 0) {
		t.Fatal("directed graph grew a mirror arc")
	}
	if g.InDegree(2) != 1 || g.InDegree(0) != 0 {
		t.Fatalf("in-degrees wrong: in(2)=%d in(0)=%d", g.InDegree(2), g.InDegree(0))
	}
}

func TestDuplicateEdgesMerge(t *testing.T) {
	g := mustBuild(t, 2, true, [][3]float64{{0, 1, 1}, {0, 1, 2.5}})
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1 after merge", g.M())
	}
	w, _ := g.ArcWeight(0, 1)
	if w != 3.5 {
		t.Fatalf("merged weight = %g, want 3.5", w)
	}
}

func TestSelfLoops(t *testing.T) {
	g := mustBuild(t, 2, false, [][3]float64{{0, 0, 4}, {0, 1, 1}})
	if g.SelfLoopWeight() != 4 {
		t.Fatalf("SelfLoopWeight = %g, want 4", g.SelfLoopWeight())
	}
	// Undirected self-loop stored once.
	if g.OutDegree(0) != 2 {
		t.Fatalf("OutDegree(0) = %d, want 2", g.OutDegree(0))
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestAddEdgeErrors(t *testing.T) {
	b := NewBuilder(2, false)
	if err := b.AddEdge(0, 5, 1); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if err := b.AddEdge(0, 1, 0); err == nil {
		t.Fatal("zero-weight edge accepted")
	}
	if err := b.AddEdge(0, 1, -1); err == nil {
		t.Fatal("negative-weight edge accepted")
	}
}

func TestStrengths(t *testing.T) {
	g := mustBuild(t, 3, true, [][3]float64{{0, 1, 2}, {0, 2, 3}, {1, 0, 5}})
	if s := g.OutStrength(0); s != 5 {
		t.Fatalf("OutStrength(0) = %g, want 5", s)
	}
	if s := g.InStrength(0); s != 5 {
		t.Fatalf("InStrength(0) = %g, want 5", s)
	}
	if s := g.InStrength(2); s != 3 {
		t.Fatalf("InStrength(2) = %g, want 3", s)
	}
}

func TestDegreeHistogramAndCDF(t *testing.T) {
	// Star graph: center degree 4, leaves degree 1.
	g := mustBuild(t, 5, false, [][3]float64{{0, 1, 1}, {0, 2, 1}, {0, 3, 1}, {0, 4, 1}})
	h := g.DegreeHistogram()
	if h[1] != 4 || h[4] != 1 {
		t.Fatalf("histogram wrong: %v", h)
	}
	cdf := g.DegreeCDF([]int{0, 1, 3, 4})
	want := []float64{0, 0.8, 0.8, 1.0}
	for i := range want {
		if cdf[i] != want[i] {
			t.Fatalf("CDF[%d] = %g, want %g (full: %v)", i, cdf[i], want[i], cdf)
		}
	}
}

func TestContractUndirected(t *testing.T) {
	// Two triangles joined by one edge; contract each triangle to a module.
	edges := [][3]float64{
		{0, 1, 1}, {1, 2, 1}, {0, 2, 1},
		{3, 4, 1}, {4, 5, 1}, {3, 5, 1},
		{2, 3, 1},
	}
	g := mustBuild(t, 6, false, edges)
	membership := []uint32{0, 0, 0, 1, 1, 1}
	sg, err := g.Contract(membership, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sg.N() != 2 {
		t.Fatalf("contracted N = %d, want 2", sg.N())
	}
	// Each triangle has 3 internal edges -> self-loop weight 3.
	w, ok := sg.ArcWeight(0, 0)
	if !ok || w != 3 {
		t.Fatalf("module 0 self-loop = (%g,%v), want 3", w, ok)
	}
	w, ok = sg.ArcWeight(0, 1)
	if !ok || w != 1 {
		t.Fatalf("inter-module edge = (%g,%v), want 1", w, ok)
	}
	// Total edge weight is conserved: 3+3 self + 1 bridge mirrored twice.
	if err := sg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestContractDirected(t *testing.T) {
	g := mustBuild(t, 4, true, [][3]float64{{0, 1, 1}, {1, 0, 2}, {1, 2, 1}, {2, 3, 1}, {3, 2, 1}})
	sg, err := g.Contract([]uint32{0, 0, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := sg.ArcWeight(0, 0)
	if w != 3 { // arcs 0->1 (1) and 1->0 (2)
		t.Fatalf("module 0 self-loop = %g, want 3", w)
	}
	w, _ = sg.ArcWeight(0, 1)
	if w != 1 {
		t.Fatalf("inter arc 0->1 = %g, want 1", w)
	}
	if sg.TotalWeight() != g.TotalWeight() {
		t.Fatalf("contraction lost weight: %g vs %g", sg.TotalWeight(), g.TotalWeight())
	}
}

func TestContractErrors(t *testing.T) {
	g := mustBuild(t, 2, false, [][3]float64{{0, 1, 1}})
	if _, err := g.Contract([]uint32{0}, 1); err == nil {
		t.Fatal("short membership accepted")
	}
	if _, err := g.Contract([]uint32{0, 7}, 2); err == nil {
		t.Fatal("out-of-range module accepted")
	}
}

func TestContractPreservesTotalWeightUndirected(t *testing.T) {
	r := rng.New(404)
	n := 60
	b := NewBuilder(n, false)
	for i := 0; i < 300; i++ {
		u, v := uint32(r.Intn(n)), uint32(r.Intn(n))
		_ = b.AddEdge(u, v, 1+r.Float64())
	}
	g := b.Build()
	mem := make([]uint32, n)
	for i := range mem {
		mem[i] = uint32(r.Intn(7))
	}
	sg, err := g.Contract(mem, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Stored total weight differs because intra-module non-loop mirrored arcs
	// (w counted twice in g) contract to a single self-loop (w once). Compare
	// logical totals instead: sum over unordered pairs.
	logical := func(gg *Graph) float64 {
		s := 0.0
		for u := 0; u < gg.N(); u++ {
			nb, ws := gg.OutNeighbors(u), gg.OutWeights(u)
			for i, v := range nb {
				if int(v) >= u {
					s += ws[i]
				}
			}
		}
		return s
	}
	a, bb := logical(g), logical(sg)
	if diff := a - bb; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("logical weight not conserved: %g vs %g", a, bb)
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := mustBuild(t, 3, true, [][3]float64{{0, 1, 1.5}, {2, 0, 2.5}})
	es := g.Edges()
	if len(es) != 2 {
		t.Fatalf("Edges() returned %d arcs", len(es))
	}
	b := NewBuilder(3, true)
	for _, e := range es {
		_ = b.AddEdge(e.From, e.To, e.Weight)
	}
	g2 := b.Build()
	if g2.TotalWeight() != g.TotalWeight() || g2.M() != g.M() {
		t.Fatal("round trip through Edges() changed the graph")
	}
}

func TestReadEdgeList(t *testing.T) {
	input := `# a comment
% another comment style
10 20
20 30 2.5

30 10
`
	g, labels, err := ReadEdgeList(strings.NewReader(input), false)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 {
		t.Fatalf("N = %d, want 3", g.N())
	}
	if labels[0] != 10 || labels[1] != 20 || labels[2] != 30 {
		t.Fatalf("labels = %v", labels)
	}
	w, ok := g.ArcWeight(1, 2)
	if !ok || w != 2.5 {
		t.Fatalf("weighted edge lost: (%g,%v)", w, ok)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"1\n",           // too few fields
		"a b\n",         // bad source
		"1 b\n",         // bad target
		"1 2 x\n",       // bad weight
		"1 2 0\n",       // zero weight
		"1 2 -3\n",      // negative weight
		"1 99999999x\n", // bad target numeral
	}
	for _, c := range cases {
		if _, _, err := ReadEdgeList(strings.NewReader(c), true); err == nil {
			t.Fatalf("input %q accepted", c)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := mustBuild(t, 4, false, [][3]float64{{0, 1, 1}, {1, 2, 2}, {2, 3, 1}, {0, 3, 1}})
	var sb strings.Builder
	if err := g.WriteEdgeList(&sb); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ReadEdgeList(strings.NewReader(sb.String()), false)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() || g2.TotalWeight() != g.TotalWeight() {
		t.Fatalf("round trip mismatch: N %d/%d M %d/%d W %g/%g",
			g.N(), g2.N(), g.M(), g2.M(), g.TotalWeight(), g2.TotalWeight())
	}
}

func TestQuickBuilderInvariants(t *testing.T) {
	// Property: for any random edge set, the built graph validates and
	// conserves total weight.
	r := rng.New(77)
	f := func(seed uint32, nEdges uint8) bool {
		n := 20
		b := NewBuilder(n, seed%2 == 0)
		total := 0.0
		directed := seed%2 == 0
		for i := 0; i < int(nEdges); i++ {
			u, v := uint32(r.Intn(n)), uint32(r.Intn(n))
			w := 0.5 + r.Float64()
			_ = b.AddEdge(u, v, w)
			total += w
			if !directed && u != v {
				total += w
			}
		}
		g := b.Build()
		if g.Validate() != nil {
			return false
		}
		diff := g.TotalWeight() - total
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestInCSRSortedBySource(t *testing.T) {
	g := mustBuild(t, 5, true, [][3]float64{{4, 2, 1}, {1, 2, 1}, {3, 2, 1}, {0, 2, 1}})
	in := g.InNeighbors(2)
	for i := 1; i < len(in); i++ {
		if in[i-1] >= in[i] {
			t.Fatalf("in-row not sorted: %v", in)
		}
	}
}
