package graph

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// ReadEdgeList parses a SNAP-style whitespace-separated edge list:
//
//	# comment lines start with '#'
//	<from> <to> [weight]
//
// Vertex IDs may be arbitrary non-negative integers; they are remapped to a
// dense [0, N) range in first-appearance order. Missing weights default to 1.
// The returned mapping gives, for each dense ID, the original label.
func ReadEdgeList(r io.Reader, directed bool) (*Graph, []uint64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	idOf := make(map[uint64]uint32)
	var labels []uint64
	dense := func(raw uint64) uint32 {
		if id, ok := idOf[raw]; ok {
			return id
		}
		id := uint32(len(labels))
		idOf[raw] = id
		labels = append(labels, raw)
		return id
	}

	type rawEdge struct {
		u, v uint32
		w    float64
	}
	var edges []rawEdge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: want at least 2 fields, got %q", lineNo, line)
		}
		a, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad source %q: %v", lineNo, fields[0], err)
		}
		bb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad target %q: %v", lineNo, fields[1], err)
		}
		w := 1.0
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("graph: line %d: bad weight %q: %v", lineNo, fields[2], err)
			}
			// !(w > 0) catches NaN as well as zero and negatives; +Inf must
			// be rejected separately or it poisons every flow downstream.
			if !(w > 0) || math.IsInf(w, 0) {
				return nil, nil, fmt.Errorf("graph: line %d: non-positive or non-finite weight %g", lineNo, w)
			}
		}
		edges = append(edges, rawEdge{dense(a), dense(bb), w})
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			// The scanner stops on the line after the last one it delivered;
			// naming it turns "token too long" into an actionable message.
			return nil, nil, fmt.Errorf("graph: line %d: %w (lines are limited to 1 MiB)", lineNo+1, err)
		}
		return nil, nil, fmt.Errorf("graph: scanning edge list: %w", err)
	}

	b := NewBuilder(len(labels), directed)
	for _, e := range edges {
		if err := b.AddEdge(e.u, e.v, e.w); err != nil {
			return nil, nil, err
		}
	}
	return b.Build(), labels, nil
}

// ReadEdgeListFile opens path and parses it with ReadEdgeList.
func ReadEdgeListFile(path string, directed bool) (*Graph, []uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadEdgeList(f, directed)
}

// WriteEdgeList emits the graph in SNAP edge-list format. Undirected edges
// are written once (u <= v); weights are written only when not 1.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	dir := "undirected"
	if g.directed {
		dir = "directed"
	}
	fmt.Fprintf(bw, "# %s graph: %d vertices, %d arcs\n", dir, g.n, g.M())
	for u := 0; u < g.n; u++ {
		nb, ws := g.OutNeighbors(u), g.OutWeights(u)
		for i, v := range nb {
			if !g.directed && int(v) < u {
				continue
			}
			if ws[i] == 1 {
				fmt.Fprintf(bw, "%d\t%d\n", u, v)
			} else {
				fmt.Fprintf(bw, "%d\t%d\t%g\n", u, v, ws[i])
			}
		}
	}
	return bw.Flush()
}

// WriteEdgeListFile writes the graph to path in SNAP edge-list format.
func (g *Graph) WriteEdgeListFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteEdgeList(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
