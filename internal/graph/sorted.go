package graph

import (
	"cmp"
	"slices"
)

// SortedKeys returns m's keys in ascending order. It is the repository's
// blessed way to iterate a map wherever order can reach an output, a float
// accumulation, or any other order-sensitive sink: Go randomizes map
// iteration per run, and the detorder analyzer (cmd/asalint) rejects raw
// map ranges at such sites. The key-collection loop below is the one place
// that legitimately touches raw map order, because the sort erases it
// before the keys escape.
func SortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m { //asalint:ordered keys are sorted before they escape
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// SortedKeysFunc is SortedKeys for key types without a natural order (e.g.
// the [2]uint32 cell coordinates of a contingency table); compare follows
// the slices.SortFunc contract and must define a total order.
func SortedKeysFunc[K comparable, V any](m map[K]V, compare func(a, b K) int) []K {
	keys := make([]K, 0, len(m))
	for k := range m { //asalint:ordered keys are sorted before they escape
		keys = append(keys, k)
	}
	slices.SortFunc(keys, compare)
	return keys
}
