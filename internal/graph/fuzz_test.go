package graph

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzReadEdgeList: arbitrary input must never panic; accepted input must
// produce a graph that validates and survives a write/read round trip.
// FuzzDeltaReplay: for any parseable (graph, delta) pair, Delta.Apply must
// match an independent oracle that replays the ops onto a plain edge map and
// rebuilds the graph from scratch — canonically hash-identical, structurally
// valid, and with a deterministic chained hash. Seeds cover duplicate adds,
// remove-nonexistent, reweight-to-zero, and self-loops.
func FuzzDeltaReplay(f *testing.F) {
	f.Add("0 1\n1 2\n2 0\n", "+ 0 1\n+ 0 1 2\n", false)
	f.Add("0 1\n", "- 5 6\n- 0 1\n", false)
	f.Add("0 1 2\n1 2 3\n", "= 0 1 0\n= 1 2 0.5\n", false)
	f.Add("0 0 1.5\n0 1\n", "+ 1 1\n+ 2 2 0.25\n- 0 0\n", false)
	f.Add("0 1\n1 2\n", "+ 3 4 2\n= 4 5 1\n- 1 2\n", true)
	f.Add("", "+ 0 0\n", false)
	f.Fuzz(func(t *testing.T, graphInput, deltaInput string, directed bool) {
		g, _, err := ReadEdgeList(strings.NewReader(graphInput), directed)
		if err != nil {
			return
		}
		d, err := ReadDeltaList(strings.NewReader(deltaInput))
		if err != nil {
			return
		}
		child, err := d.Apply(g)
		if err != nil {
			// Apply may legitimately reject (e.g. accumulated weight
			// overflow); it must just never produce a bad graph.
			return
		}
		if err := child.Validate(); err != nil {
			t.Fatalf("applied graph fails validation: %v (graph %q delta %q)", err, graphInput, deltaInput)
		}

		// Oracle: replay onto a bare map, then rebuild from scratch.
		key := func(u, v uint32) [2]uint32 {
			if !directed && v < u {
				return [2]uint32{v, u}
			}
			return [2]uint32{u, v}
		}
		weight := make(map[[2]uint32]float64)
		for u := 0; u < g.N(); u++ {
			nb, ws := g.OutNeighbors(u), g.OutWeights(u)
			for i, v := range nb {
				if !directed && int(v) < u {
					continue
				}
				weight[key(uint32(u), v)] = ws[i]
			}
		}
		n := g.N()
		for _, op := range d.Ops {
			if int(op.From) >= n {
				n = int(op.From) + 1
			}
			if int(op.To) >= n {
				n = int(op.To) + 1
			}
			switch op.Op {
			case DeltaAdd:
				weight[key(op.From, op.To)] += op.Weight
			case DeltaRemove:
				delete(weight, key(op.From, op.To))
			case DeltaSet:
				if op.Weight == 0 {
					delete(weight, key(op.From, op.To))
				} else {
					weight[key(op.From, op.To)] = op.Weight
				}
			}
		}
		b := NewBuilder(n, directed)
		for _, k := range SortedKeysFunc(weight, func(a, b [2]uint32) int {
			if a[0] != b[0] {
				if a[0] < b[0] {
					return -1
				}
				return 1
			}
			if a[1] < b[1] {
				return -1
			} else if a[1] > b[1] {
				return 1
			}
			return 0
		}) {
			if w := weight[k]; w > 0 && !math.IsInf(w, 0) {
				if err := b.AddEdge(k[0], k[1], w); err != nil {
					t.Fatalf("oracle AddEdge: %v", err)
				}
			}
		}
		oracle := b.Build()
		if child.CanonicalHash() != oracle.CanonicalHash() {
			t.Fatalf("Apply diverged from scratch rebuild (graph %q delta %q)", graphInput, deltaInput)
		}

		// Chained hash is a pure function of (parent, ops).
		parent := g.CanonicalHash()
		if d.Hash(parent) != d.Hash(parent) {
			t.Fatal("delta hash not deterministic")
		}
		// Text round trip preserves the ops and therefore the hash.
		var buf bytes.Buffer
		if err := d.WriteDeltaList(&buf); err != nil {
			t.Fatalf("WriteDeltaList: %v", err)
		}
		d2, err := ReadDeltaList(&buf)
		if err != nil {
			t.Fatalf("delta round trip rejected: %v", err)
		}
		if d2.Hash(parent) != d.Hash(parent) {
			t.Fatal("delta round trip changed the chained hash")
		}
	})
}

func FuzzReadEdgeList(f *testing.F) {
	f.Add("1 2\n2 3\n")
	f.Add("# comment\n5 5 2.5\n")
	f.Add("0 1 0.1\n1 0 0.2\n")
	f.Add("")
	f.Add("a b c\n")
	f.Add("1\t2\t3\t4\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, _, err := ReadEdgeList(strings.NewReader(input), false)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v (input %q)", err, input)
		}
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		g2, _, err := ReadEdgeList(&buf, false)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d", g.N(), g.M(), g2.N(), g2.M())
		}
	})
}
