package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList: arbitrary input must never panic; accepted input must
// produce a graph that validates and survives a write/read round trip.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("1 2\n2 3\n")
	f.Add("# comment\n5 5 2.5\n")
	f.Add("0 1 0.1\n1 0 0.2\n")
	f.Add("")
	f.Add("a b c\n")
	f.Add("1\t2\t3\t4\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, _, err := ReadEdgeList(strings.NewReader(input), false)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v (input %q)", err, input)
		}
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		g2, _, err := ReadEdgeList(&buf, false)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d", g.N(), g.M(), g2.N(), g2.M())
		}
	})
}
