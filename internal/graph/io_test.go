package graph

import (
	"bufio"
	"errors"
	"strings"
	"testing"
)

func TestReadEdgeListRejectsNonFiniteWeights(t *testing.T) {
	for _, bad := range []string{"+Inf", "Inf", "-Inf", "NaN", "0", "-1"} {
		in := "0 1 1.5\n1 2 " + bad + "\n"
		_, _, err := ReadEdgeList(strings.NewReader(in), false)
		if err == nil {
			t.Fatalf("weight %q accepted", bad)
		}
		if !strings.Contains(err.Error(), "line 2") {
			t.Fatalf("weight %q: error lacks line number: %v", bad, err)
		}
	}
}

func TestReadEdgeListAcceptsFinitePositiveWeights(t *testing.T) {
	g, labels, err := ReadEdgeList(strings.NewReader("0 1 1e308\n1 2 1e-300\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || len(labels) != 3 {
		t.Fatalf("got %d vertices, %d labels", g.N(), len(labels))
	}
}

func TestReadEdgeListTooLongLineReportsLineNumber(t *testing.T) {
	// The scanner buffer is 1 MiB; a longer comment line trips ErrTooLong.
	long := "# " + strings.Repeat("x", 1<<21)
	in := "0 1\n1 2\n" + long + "\n"
	_, _, err := ReadEdgeList(strings.NewReader(in), false)
	if err == nil {
		t.Fatal("over-long line accepted")
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("error does not wrap bufio.ErrTooLong: %v", err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error does not name the offending line: %v", err)
	}
}
