package graph

import (
	"cmp"
	"reflect"
	"testing"
)

func TestSortedKeys(t *testing.T) {
	m := map[uint32]float64{7: 0.5, 1: 0.25, 3: 0.125, 0: 0.0625}
	want := []uint32{0, 1, 3, 7}
	for i := 0; i < 16; i++ { // map order is randomized; the output must not be
		if got := SortedKeys(m); !reflect.DeepEqual(got, want) {
			t.Fatalf("SortedKeys = %v, want %v", got, want)
		}
	}
	if got := SortedKeys(map[string]int{}); len(got) != 0 {
		t.Fatalf("SortedKeys(empty) = %v, want empty", got)
	}
}

func TestSortedKeysFunc(t *testing.T) {
	m := map[[2]uint32]int{
		{1, 2}: 1, {0, 9}: 2, {1, 0}: 3, {0, 0}: 4,
	}
	compare := func(a, b [2]uint32) int {
		if c := cmp.Compare(a[0], b[0]); c != 0 {
			return c
		}
		return cmp.Compare(a[1], b[1])
	}
	want := [][2]uint32{{0, 0}, {0, 9}, {1, 0}, {1, 2}}
	for i := 0; i < 16; i++ {
		got := SortedKeysFunc(m, compare)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("SortedKeysFunc = %v, want %v", got, want)
		}
	}
}
