package graph

import (
	"strings"
	"testing"
)

func buildFrom(t *testing.T, n int, directed bool, edges [][3]float64) *Graph {
	t.Helper()
	b := NewBuilder(n, directed)
	for _, e := range edges {
		if err := b.AddEdge(uint32(e[0]), uint32(e[1]), e[2]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestCanonicalHashStableAcrossEdgeOrder(t *testing.T) {
	a := buildFrom(t, 4, false, [][3]float64{{0, 1, 1}, {1, 2, 2}, {2, 3, 1}})
	b := buildFrom(t, 4, false, [][3]float64{{2, 3, 1}, {0, 1, 1}, {1, 2, 2}})
	if a.CanonicalHash() != b.CanonicalHash() {
		t.Fatal("edge insertion order changed the canonical hash")
	}
	// Undirected edges are symmetric: either orientation is the same edge.
	c := buildFrom(t, 4, false, [][3]float64{{1, 0, 1}, {2, 1, 2}, {3, 2, 1}})
	if a.CanonicalHash() != c.CanonicalHash() {
		t.Fatal("undirected edge orientation changed the canonical hash")
	}
	// Duplicate arcs merge by summation into the same canonical form.
	d := buildFrom(t, 4, false, [][3]float64{{0, 1, 0.5}, {0, 1, 0.5}, {1, 2, 2}, {2, 3, 1}})
	if a.CanonicalHash() != d.CanonicalHash() {
		t.Fatal("merged duplicate arcs changed the canonical hash")
	}
}

func TestCanonicalHashDistinguishesGraphs(t *testing.T) {
	base := buildFrom(t, 4, false, [][3]float64{{0, 1, 1}, {1, 2, 2}})
	cases := map[string]*Graph{
		"extra edge":      buildFrom(t, 4, false, [][3]float64{{0, 1, 1}, {1, 2, 2}, {2, 3, 1}}),
		"weight change":   buildFrom(t, 4, false, [][3]float64{{0, 1, 1}, {1, 2, 2.5}}),
		"extra vertex":    buildFrom(t, 5, false, [][3]float64{{0, 1, 1}, {1, 2, 2}}),
		"directed twin":   buildFrom(t, 4, true, [][3]float64{{0, 1, 1}, {1, 0, 1}, {1, 2, 2}, {2, 1, 2}}),
		"rewired target":  buildFrom(t, 4, false, [][3]float64{{0, 1, 1}, {1, 3, 2}}),
		"swapped weights": buildFrom(t, 4, false, [][3]float64{{0, 1, 2}, {1, 2, 1}}),
	}
	for name, g := range cases {
		if g.CanonicalHash() == base.CanonicalHash() {
			t.Errorf("%s: hash collides with base graph", name)
		}
	}
}

func TestCanonicalHashMatchesParsedEquivalents(t *testing.T) {
	// Two textually different edge lists for the same weighted graph must
	// land on the same content address — the registry dedup property.
	a, _, err := ReadEdgeList(strings.NewReader("0 1 2\n1 2\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ReadEdgeList(strings.NewReader("# same graph, split weights, one edge reversed\n0 1 1\n0 1 1\n2 1\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	if a.CanonicalHash() != b.CanonicalHash() {
		t.Fatal("equivalent edge lists produced different canonical hashes")
	}
}

func TestCanonicalHashString(t *testing.T) {
	g := buildFrom(t, 2, false, [][3]float64{{0, 1, 1}})
	s := g.CanonicalHashString()
	if len(s) != 64 {
		t.Fatalf("hex digest length %d, want 64", len(s))
	}
	if s != g.CanonicalHashString() {
		t.Fatal("hash string not stable")
	}
}

func TestCanonicalHashEmptyGraph(t *testing.T) {
	e1 := NewBuilder(0, false).Build()
	e2 := NewBuilder(0, true).Build()
	if e1.CanonicalHash() == e2.CanonicalHash() {
		t.Fatal("empty directed and undirected graphs share a hash")
	}
}
