// Package graph provides the compressed-sparse-row (CSR) graph substrate used
// by every algorithm in the repository: the parallel Infomap core, the Louvain
// baseline, PageRank, and the benchmark harness.
//
// Graphs are weighted and either directed or undirected. Undirected edges are
// stored in both endpoint adjacency rows, mirroring how HyPC-Map and the
// reference Infomap treat undirected input. Directed graphs additionally carry
// a transposed (in-link) CSR so that the FindBestCommunity kernel can
// accumulate incoming flow without a scan of the whole edge set.
package graph

import (
	"fmt"
	"sort"
)

// Edge is a weighted directed arc used during graph construction.
type Edge struct {
	From, To uint32
	Weight   float64
}

// Graph is an immutable weighted graph in CSR form. Vertex IDs are dense
// integers in [0, N). Construct via Builder or the generators in package gen;
// the zero value is an empty graph.
type Graph struct {
	n        int
	directed bool

	// Out-adjacency CSR.
	offsets []int64
	targets []uint32
	weights []float64

	// In-adjacency CSR. For undirected graphs these alias the out slices.
	inOffsets []int64
	inTargets []uint32
	inWeights []float64

	totalWeight float64 // sum of stored arc weights (each undirected edge counted twice)
	selfWeight  float64 // total weight on self-loops (counted once per stored arc)
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of stored arcs. For an undirected graph this is twice
// the number of edges (each edge appears in both adjacency rows), matching the
// usual CSR convention.
func (g *Graph) M() int { return len(g.targets) }

// NumEdges returns the number of logical edges: M() for directed graphs,
// and (M() + selfLoopArcs) / 2-style halving for undirected graphs where
// non-loop arcs are mirrored. Self-loops are stored once in undirected graphs.
func (g *Graph) NumEdges() int {
	if g.directed {
		return len(g.targets)
	}
	loops := 0
	for u := 0; u < g.n; u++ {
		for _, v := range g.OutNeighbors(u) {
			if int(v) == u {
				loops++
			}
		}
	}
	return (len(g.targets)-loops)/2 + loops
}

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// TotalWeight returns the sum of all stored arc weights.
func (g *Graph) TotalWeight() float64 { return g.totalWeight }

// SelfLoopWeight returns the total weight on self-loop arcs.
func (g *Graph) SelfLoopWeight() float64 { return g.selfWeight }

// OutDegree returns the number of out-arcs of u.
func (g *Graph) OutDegree(u int) int { return int(g.offsets[u+1] - g.offsets[u]) }

// InDegree returns the number of in-arcs of u.
func (g *Graph) InDegree(u int) int { return int(g.inOffsets[u+1] - g.inOffsets[u]) }

// OutRange returns the half-open index range [lo, hi) of u's out-arcs within
// the CSR arc arrays. Packages that keep per-arc side data (e.g. flows)
// parallel to the CSR use it to slice their arrays per vertex.
func (g *Graph) OutRange(u int) (lo, hi int) {
	return int(g.offsets[u]), int(g.offsets[u+1])
}

// InRange is OutRange for the in-arc CSR.
func (g *Graph) InRange(u int) (lo, hi int) {
	return int(g.inOffsets[u]), int(g.inOffsets[u+1])
}

// OutNeighbors returns the out-neighbor IDs of u. The slice aliases internal
// storage and must not be modified.
func (g *Graph) OutNeighbors(u int) []uint32 {
	return g.targets[g.offsets[u]:g.offsets[u+1]]
}

// OutWeights returns weights parallel to OutNeighbors(u).
func (g *Graph) OutWeights(u int) []float64 {
	return g.weights[g.offsets[u]:g.offsets[u+1]]
}

// InNeighbors returns the in-neighbor IDs of u.
func (g *Graph) InNeighbors(u int) []uint32 {
	return g.inTargets[g.inOffsets[u]:g.inOffsets[u+1]]
}

// InWeights returns weights parallel to InNeighbors(u).
func (g *Graph) InWeights(u int) []float64 {
	return g.inWeights[g.inOffsets[u]:g.inOffsets[u+1]]
}

// OutStrength returns the sum of out-arc weights of u.
func (g *Graph) OutStrength(u int) float64 {
	s := 0.0
	for _, w := range g.OutWeights(u) {
		s += w
	}
	return s
}

// InStrength returns the sum of in-arc weights of u.
func (g *Graph) InStrength(u int) float64 {
	s := 0.0
	for _, w := range g.InWeights(u) {
		s += w
	}
	return s
}

// MaxOutDegree returns the largest out-degree in the graph, or 0 if empty.
func (g *Graph) MaxOutDegree() int {
	max := 0
	for u := 0; u < g.n; u++ {
		if d := g.OutDegree(u); d > max {
			max = d
		}
	}
	return max
}

// MaxInDegree returns the largest in-degree in the graph, or 0 if empty.
// For undirected graphs the in-CSR aliases the out-CSR, so this equals
// MaxOutDegree.
func (g *Graph) MaxInDegree() int {
	max := 0
	for u := 0; u < g.n; u++ {
		if d := g.InDegree(u); d > max {
			max = d
		}
	}
	return max
}

// MaxDegree returns the largest of MaxOutDegree and MaxInDegree — the upper
// bound on any vertex's neighborhood size, and therefore on the number of
// distinct modules one FindBestCommunity accumulator session can hold. The
// infomap kernel sizes its per-worker accumulators from it.
func (g *Graph) MaxDegree() int {
	out := g.MaxOutDegree()
	if !g.directed {
		return out
	}
	if in := g.MaxInDegree(); in > out {
		return in
	}
	return out
}

// DegreeHistogram returns hist where hist[k] is the number of vertices with
// out-degree k. The slice has length MaxOutDegree()+1 (length 1 for an empty
// graph). This is the raw data behind the paper's Figure 4.
func (g *Graph) DegreeHistogram() []int {
	hist := make([]int, g.MaxOutDegree()+1)
	for u := 0; u < g.n; u++ {
		hist[g.OutDegree(u)]++
	}
	return hist
}

// DegreeCDF returns, for each degree threshold d in thresholds, the fraction
// of vertices whose out-degree is <= d. This is the data behind the paper's
// Figure 5 (fraction of neighbor lists that fit in a CAM of a given size).
func (g *Graph) DegreeCDF(thresholds []int) []float64 {
	out := make([]float64, len(thresholds))
	if g.n == 0 {
		return out
	}
	for i, d := range thresholds {
		cnt := 0
		for u := 0; u < g.n; u++ {
			if g.OutDegree(u) <= d {
				cnt++
			}
		}
		out[i] = float64(cnt) / float64(g.n)
	}
	return out
}

// Validate checks structural invariants and returns an error describing the
// first violation found. It is used by tests and by the edge-list reader.
func (g *Graph) Validate() error {
	if len(g.offsets) != g.n+1 {
		return fmt.Errorf("graph: offsets length %d, want %d", len(g.offsets), g.n+1)
	}
	if g.offsets[0] != 0 || int(g.offsets[g.n]) != len(g.targets) {
		return fmt.Errorf("graph: offset endpoints [%d,%d] inconsistent with %d arcs",
			g.offsets[0], g.offsets[g.n], len(g.targets))
	}
	if len(g.targets) != len(g.weights) {
		return fmt.Errorf("graph: %d targets but %d weights", len(g.targets), len(g.weights))
	}
	for u := 0; u < g.n; u++ {
		if g.offsets[u] > g.offsets[u+1] {
			return fmt.Errorf("graph: offsets not monotone at %d", u)
		}
		row := g.OutNeighbors(u)
		for i, v := range row {
			if int(v) >= g.n {
				return fmt.Errorf("graph: arc %d->%d out of range (n=%d)", u, v, g.n)
			}
			if i > 0 && row[i-1] >= v {
				return fmt.Errorf("graph: row %d not strictly sorted at position %d", u, i)
			}
		}
	}
	for i, w := range g.weights {
		if !(w > 0) {
			return fmt.Errorf("graph: non-positive weight %g at arc %d", w, i)
		}
	}
	if !g.directed {
		// Symmetry: every non-loop arc must have a mirror with equal weight.
		for u := 0; u < g.n; u++ {
			nb, ws := g.OutNeighbors(u), g.OutWeights(u)
			for i, v := range nb {
				if int(v) == u {
					continue
				}
				w, ok := g.ArcWeight(int(v), u)
				// Duplicate arcs merge by summation in unspecified order, so
				// mirrored weights may differ by a few ulps; compare with a
				// relative tolerance rather than exactly.
				if !ok || !nearlyEqual(w, ws[i]) {
					return fmt.Errorf("graph: undirected edge %d-%d not symmetric", u, v)
				}
			}
		}
	}
	return nil
}

// nearlyEqual reports whether a and b agree to within a small relative
// tolerance (or a tiny absolute tolerance near zero).
func nearlyEqual(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := a
	if scale < 0 {
		scale = -scale
	}
	if b > scale {
		scale = b
	} else if -b > scale {
		scale = -b
	}
	return diff <= 1e-12*scale+1e-300
}

// ArcWeight returns the weight of arc u->v and whether it exists, via binary
// search of u's sorted adjacency row.
func (g *Graph) ArcWeight(u, v int) (float64, bool) {
	row := g.OutNeighbors(u)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= uint32(v) })
	if i < len(row) && row[i] == uint32(v) {
		return g.OutWeights(u)[i], true
	}
	return 0, false
}

// HasArc reports whether arc u->v exists.
func (g *Graph) HasArc(u, v int) bool {
	_, ok := g.ArcWeight(u, v)
	return ok
}

// Builder accumulates edges and produces a CSR Graph. Duplicate arcs are
// merged by summing weights, mirroring how HyPC-Map's Convert2SuperNode
// collapses parallel super-edges.
type Builder struct {
	n        int
	directed bool
	edges    []Edge
}

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int, directed bool) *Builder {
	return &Builder{n: n, directed: directed}
}

// AddEdge records an edge. For undirected builders the mirror arc is added
// automatically (self-loops are stored once). Zero- or negative-weight edges
// are rejected.
func (b *Builder) AddEdge(u, v uint32, w float64) error {
	if int(u) >= b.n || int(v) >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range n=%d", u, v, b.n)
	}
	if !(w > 0) {
		return fmt.Errorf("graph: edge (%d,%d) has non-positive weight %g", u, v, w)
	}
	b.edges = append(b.edges, Edge{u, v, w})
	if !b.directed && u != v {
		b.edges = append(b.edges, Edge{v, u, w})
	}
	return nil
}

// NumPendingEdges returns the number of arcs recorded so far (after
// undirected mirroring).
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// Reserve pre-allocates capacity for at least n additional arcs (after
// undirected mirroring), so that a caller that knows the exact arc count —
// e.g. the contraction kernels after their boundary-arc counting pass — can
// add edges without growth reallocations.
func (b *Builder) Reserve(n int) {
	if free := cap(b.edges) - len(b.edges); free >= n {
		return
	}
	edges := make([]Edge, len(b.edges), len(b.edges)+n)
	copy(edges, b.edges)
	b.edges = edges
}

// Build sorts, merges, and freezes the accumulated edges into a Graph.
// The Builder may be reused after Build.
func (b *Builder) Build() *Graph {
	edges := b.edges
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	// Merge duplicates in place.
	merged := edges[:0]
	for _, e := range edges {
		if len(merged) > 0 {
			last := &merged[len(merged)-1]
			if last.From == e.From && last.To == e.To {
				last.Weight += e.Weight
				continue
			}
		}
		merged = append(merged, e)
	}

	g := &Graph{
		n:        b.n,
		directed: b.directed,
		offsets:  make([]int64, b.n+1),
		targets:  make([]uint32, len(merged)),
		weights:  make([]float64, len(merged)),
	}
	for i, e := range merged {
		g.offsets[e.From+1]++
		g.targets[i] = e.To
		g.weights[i] = e.Weight
		g.totalWeight += e.Weight
		if e.From == e.To {
			g.selfWeight += e.Weight
		}
	}
	for u := 0; u < b.n; u++ {
		g.offsets[u+1] += g.offsets[u]
	}

	if b.directed {
		g.buildInCSR(merged)
	} else {
		g.inOffsets, g.inTargets, g.inWeights = g.offsets, g.targets, g.weights
	}
	return g
}

// buildInCSR constructs the transposed adjacency from the merged arc list.
func (g *Graph) buildInCSR(arcs []Edge) {
	g.inOffsets = make([]int64, g.n+1)
	g.inTargets = make([]uint32, len(arcs))
	g.inWeights = make([]float64, len(arcs))
	for _, e := range arcs {
		g.inOffsets[e.To+1]++
	}
	for u := 0; u < g.n; u++ {
		g.inOffsets[u+1] += g.inOffsets[u]
	}
	cursor := make([]int64, g.n)
	copy(cursor, g.inOffsets[:g.n])
	// arcs are sorted by (From, To), so each in-row ends up sorted by source.
	for _, e := range arcs {
		i := cursor[e.To]
		g.inTargets[i] = e.From
		g.inWeights[i] = e.Weight
		cursor[e.To]++
	}
}

// Contract builds the quotient graph induced by a module assignment:
// membership[u] is the module of vertex u and modules must be dense in
// [0, numModules). Arcs between the same module pair merge into one
// super-arc with summed weight; intra-module arcs become self-loops. This is
// the Convert2SuperNode kernel of HyPC-Map.
func (g *Graph) Contract(membership []uint32, numModules int) (*Graph, error) {
	if len(membership) != g.n {
		return nil, fmt.Errorf("graph: membership length %d, want %d", len(membership), g.n)
	}
	for u, m := range membership {
		if int(m) >= numModules {
			return nil, fmt.Errorf("graph: vertex %d has module %d >= %d", u, m, numModules)
		}
	}
	b := NewBuilder(numModules, g.directed)
	for u := 0; u < g.n; u++ {
		mu := membership[u]
		nb, ws := g.OutNeighbors(u), g.OutWeights(u)
		for i, v := range nb {
			mv := membership[v]
			if !g.directed {
				// Each undirected edge is stored twice; keep one copy per
				// unordered pair so the builder's mirroring restores symmetry.
				if int(v) < u {
					continue
				}
				if u == int(v) {
					// Undirected self-loop stored once already.
					if err := b.AddEdge(mu, mv, ws[i]); err != nil {
						return nil, err
					}
					continue
				}
				if mu == mv {
					// Intra-module edge contracts to an (undirected) self-loop.
					if err := b.AddEdge(mu, mv, ws[i]); err != nil {
						return nil, err
					}
					continue
				}
			}
			if err := b.AddEdge(mu, mv, ws[i]); err != nil {
				return nil, err
			}
		}
	}
	return b.Build(), nil
}

// Edges returns a copy of all stored arcs in CSR order. Intended for tests
// and serialization, not hot paths.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.targets))
	for u := 0; u < g.n; u++ {
		nb, ws := g.OutNeighbors(u), g.OutWeights(u)
		for i, v := range nb {
			out = append(out, Edge{uint32(u), v, ws[i]})
		}
	}
	return out
}
