package graph

import (
	"bytes"
	"strings"
	"testing"
)

func mustGraph(t *testing.T, input string, directed bool) *Graph {
	t.Helper()
	g, _, err := ReadEdgeList(strings.NewReader(input), directed)
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	return g
}

func TestDeltaApplyBasic(t *testing.T) {
	g := mustGraph(t, "0 1\n1 2\n2 0\n", false)
	d := &Delta{Ops: []DeltaEdge{
		{Op: DeltaAdd, From: 1, To: 3, Weight: 2},    // grows the graph to n=4
		{Op: DeltaRemove, From: 2, To: 0},            // removes an existing edge
		{Op: DeltaSet, From: 0, To: 1, Weight: 0.5},  // reweights
		{Op: DeltaRemove, From: 7, To: 8},            // remove-nonexistent no-op (grows n)
		{Op: DeltaSet, From: 1, To: 2, Weight: 0},    // set-to-zero removes
		{Op: DeltaAdd, From: 3, To: 3, Weight: 1.25}, // self-loop
	}}
	child, err := d.Apply(g)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := child.Validate(); err != nil {
		t.Fatalf("child fails validation: %v", err)
	}
	if child.N() != 9 {
		t.Fatalf("child N = %d, want 9 (grown by op endpoints)", child.N())
	}
	if w, ok := child.ArcWeight(0, 1); !ok || w != 0.5 {
		t.Fatalf("edge 0-1 = %g,%v, want 0.5,true", w, ok)
	}
	if child.HasArc(2, 0) || child.HasArc(0, 2) {
		t.Fatal("edge 2-0 should be removed")
	}
	if child.HasArc(1, 2) {
		t.Fatal("edge 1-2 should be removed by set-to-zero")
	}
	if w, ok := child.ArcWeight(1, 3); !ok || w != 2 {
		t.Fatalf("edge 1-3 = %g,%v, want 2,true", w, ok)
	}
	if w, ok := child.ArcWeight(3, 3); !ok || w != 1.25 {
		t.Fatalf("self-loop 3-3 = %g,%v, want 1.25,true", w, ok)
	}
}

func TestDeltaApplyAddSumsAndMirrors(t *testing.T) {
	g := mustGraph(t, "0 1 2\n", false)
	d := &Delta{Ops: []DeltaEdge{
		{Op: DeltaAdd, From: 1, To: 0, Weight: 3}, // reversed orientation sums onto 0-1
		{Op: DeltaAdd, From: 0, To: 1, Weight: 1},
	}}
	child, err := d.Apply(g)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if w, _ := child.ArcWeight(0, 1); w != 6 {
		t.Fatalf("edge 0-1 = %g, want 6 (2+3+1)", w)
	}
	if w, _ := child.ArcWeight(1, 0); w != 6 {
		t.Fatalf("mirror 1-0 = %g, want 6", w)
	}
}

func TestDeltaApplyDirectedKeepsOrientation(t *testing.T) {
	g := mustGraph(t, "0 1 2\n1 0 5\n", true)
	d := &Delta{Ops: []DeltaEdge{{Op: DeltaRemove, From: 1, To: 0}}}
	child, err := d.Apply(g)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !child.HasArc(0, 1) {
		t.Fatal("arc 0->1 should survive")
	}
	if child.HasArc(1, 0) {
		t.Fatal("arc 1->0 should be removed")
	}
}

func TestDeltaApplyMatchesColdBuild(t *testing.T) {
	// The tentpole equivalence: applying a delta must produce a graph
	// canonically identical to reading the final edge list cold.
	g := mustGraph(t, "0 1\n1 2\n2 3\n3 0\n0 2\n", false)
	d := &Delta{Ops: []DeltaEdge{
		{Op: DeltaRemove, From: 0, To: 2},
		{Op: DeltaAdd, From: 1, To: 3, Weight: 4},
		{Op: DeltaSet, From: 2, To: 3, Weight: 2.5},
	}}
	child, err := d.Apply(g)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	cold := mustGraph(t, "0 1\n1 2\n2 3 2.5\n3 0\n1 3 4\n", false)
	if child.CanonicalHash() != cold.CanonicalHash() {
		t.Fatal("delta-applied graph differs canonically from cold build")
	}
}

func TestDeltaValidate(t *testing.T) {
	bad := []Delta{
		{Ops: []DeltaEdge{{Op: DeltaAdd, From: 0, To: 1, Weight: 0}}},
		{Ops: []DeltaEdge{{Op: DeltaAdd, From: 0, To: 1, Weight: -1}}},
		{Ops: []DeltaEdge{{Op: DeltaSet, From: 0, To: 1, Weight: -0.5}}},
		{Ops: []DeltaEdge{{Op: DeltaOp(9), From: 0, To: 1, Weight: 1}}},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid delta", i)
		}
	}
	ok := Delta{Ops: []DeltaEdge{
		{Op: DeltaSet, From: 0, To: 1, Weight: 0},
		{Op: DeltaRemove, From: 0, To: 1},
	}}
	if err := ok.Validate(); err != nil {
		t.Errorf("Validate rejected valid delta: %v", err)
	}
}

func TestDeltaHashChaining(t *testing.T) {
	g := mustGraph(t, "0 1\n1 2\n", false)
	parent := g.CanonicalHash()
	d1 := &Delta{Ops: []DeltaEdge{{Op: DeltaAdd, From: 0, To: 2, Weight: 1}}}
	d2 := &Delta{Ops: []DeltaEdge{{Op: DeltaAdd, From: 0, To: 2, Weight: 2}}}

	if d1.Hash(parent) != d1.Hash(parent) {
		t.Fatal("hash not deterministic")
	}
	if d1.Hash(parent) == d2.Hash(parent) {
		t.Fatal("different weights should hash differently")
	}
	other := mustGraph(t, "0 1\n", false).CanonicalHash()
	if d1.Hash(parent) == d1.Hash(other) {
		t.Fatal("same delta on different parents should hash differently")
	}
	// Op order matters: a set after an add differs from an add after a set.
	a := &Delta{Ops: []DeltaEdge{
		{Op: DeltaAdd, From: 0, To: 2, Weight: 1},
		{Op: DeltaSet, From: 0, To: 2, Weight: 3},
	}}
	b := &Delta{Ops: []DeltaEdge{
		{Op: DeltaSet, From: 0, To: 2, Weight: 3},
		{Op: DeltaAdd, From: 0, To: 2, Weight: 1},
	}}
	if a.Hash(parent) == b.Hash(parent) {
		t.Fatal("op order should change the hash")
	}
	// Remove weight is canonicalized: the field can't perturb the digest.
	r1 := &Delta{Ops: []DeltaEdge{{Op: DeltaRemove, From: 0, To: 1, Weight: 0}}}
	r2 := &Delta{Ops: []DeltaEdge{{Op: DeltaRemove, From: 0, To: 1, Weight: 42}}}
	if r1.Hash(parent) != r2.Hash(parent) {
		t.Fatal("remove weight should not affect the hash")
	}
}

func TestDeltaTouched(t *testing.T) {
	d := &Delta{Ops: []DeltaEdge{
		{Op: DeltaAdd, From: 5, To: 1, Weight: 1},
		{Op: DeltaRemove, From: 1, To: 5},
		{Op: DeltaSet, From: 3, To: 3, Weight: 2},
	}}
	got := d.Touched()
	want := []uint32{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("Touched = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Touched = %v, want %v", got, want)
		}
	}
}

func TestKHopFrontier(t *testing.T) {
	// Path graph 0-1-2-3-4.
	g := mustGraph(t, "0 1\n1 2\n2 3\n3 4\n", false)

	f0 := KHopFrontier(g, []uint32{2}, 0)
	for u, in := range f0 {
		if in != (u == 2) {
			t.Fatalf("hops=0 frontier[%d] = %v", u, in)
		}
	}
	f1 := KHopFrontier(g, []uint32{2}, 1)
	wantIn := map[int]bool{1: true, 2: true, 3: true}
	for u, in := range f1 {
		if in != wantIn[u] {
			t.Fatalf("hops=1 frontier[%d] = %v", u, in)
		}
	}
	f9 := KHopFrontier(g, []uint32{0}, 9)
	for u, in := range f9 {
		if !in {
			t.Fatalf("hops=9 from 0 should cover all, missing %d", u)
		}
	}
	// Out-of-range seeds (new vertices) are ignored.
	fx := KHopFrontier(g, []uint32{99}, 3)
	for u, in := range fx {
		if in {
			t.Fatalf("out-of-range seed marked vertex %d", u)
		}
	}
}

func TestKHopFrontierDirectedWalksBothWays(t *testing.T) {
	g := mustGraph(t, "0 1\n2 1\n", true)
	f := KHopFrontier(g, []uint32{1}, 1)
	if !f[0] || !f[1] || !f[2] {
		t.Fatalf("directed frontier should include in-neighbors: %v", f)
	}
}

func TestDeltaListRoundTrip(t *testing.T) {
	input := "# evolving batch\n+ 0 1\n+ 1 2 2.5\n- 2 3\n= 4 5 0\n= 4 6 1.75\n"
	d, err := ReadDeltaList(strings.NewReader(input))
	if err != nil {
		t.Fatalf("ReadDeltaList: %v", err)
	}
	if len(d.Ops) != 5 {
		t.Fatalf("parsed %d ops, want 5", len(d.Ops))
	}
	if d.Ops[0] != (DeltaEdge{Op: DeltaAdd, From: 0, To: 1, Weight: 1}) {
		t.Fatalf("op 0 = %+v", d.Ops[0])
	}
	if d.Ops[2] != (DeltaEdge{Op: DeltaRemove, From: 2, To: 3, Weight: 0}) {
		t.Fatalf("op 2 = %+v", d.Ops[2])
	}
	var buf bytes.Buffer
	if err := d.WriteDeltaList(&buf); err != nil {
		t.Fatalf("WriteDeltaList: %v", err)
	}
	d2, err := ReadDeltaList(&buf)
	if err != nil {
		t.Fatalf("round trip rejected: %v", err)
	}
	if len(d2.Ops) != len(d.Ops) {
		t.Fatalf("round trip changed op count: %d vs %d", len(d2.Ops), len(d.Ops))
	}
	for i := range d.Ops {
		if d.Ops[i] != d2.Ops[i] {
			t.Fatalf("op %d changed in round trip: %+v vs %+v", i, d.Ops[i], d2.Ops[i])
		}
	}
}

func TestDeltaListParseErrors(t *testing.T) {
	cases := []string{
		"* 0 1\n",        // unknown op
		"+ 0\n",          // too few fields
		"+ a 1\n",        // bad source
		"+ 0 b\n",        // bad target
		"+ 0 1 -2\n",     // negative add weight
		"+ 0 1 +Inf\n",   // infinite weight
		"- 0 1 2\n",      // remove with weight
		"= 0 1\n",        // set without weight
		"= 0 1 -1\n",     // negative set weight
		"= 0 1 NaN\n",    // NaN weight
		"+ 0 1 banana\n", // unparseable weight
	}
	for _, in := range cases {
		if _, err := ReadDeltaList(strings.NewReader(in)); err == nil {
			t.Errorf("accepted invalid delta input %q", in)
		}
	}
}
