package perf

import (
	"math"
	"testing"

	"github.com/asamap/asamap/internal/accum"
	"github.com/asamap/asamap/internal/asa"
	"github.com/asamap/asamap/internal/hashtab"
	"github.com/asamap/asamap/internal/rng"
)

func TestMachines(t *testing.T) {
	n, b := Native(), Baseline()
	if n.L3MB != 20 || b.L3MB != 16 {
		t.Fatalf("L3 sizes: native %d baseline %d, want 20/16 (Table II)", n.L3MB, b.L3MB)
	}
	if n.FreqGHz != 2.6 || b.FreqGHz != 2.6 {
		t.Fatal("clock must be 2.6 GHz per Table II")
	}
	if b.MemMissLatency <= n.MemMissLatency {
		t.Fatal("baseline (smaller L3) should have higher average miss latency")
	}
}

func TestCountersArithmetic(t *testing.T) {
	a := Counters{Instructions: 100, Cycles: 150, Branches: 10, Mispredicts: 2, MemStalls: 20}
	b := a
	a.Add(b)
	if a.Instructions != 200 || a.Cycles != 300 {
		t.Fatalf("Add wrong: %+v", a)
	}
	d := a.Sub(b)
	if d.Instructions != 100 || d.Cycles != 150 {
		t.Fatalf("Sub wrong: %+v", d)
	}
	z := b.Sub(a)
	if z.Instructions != 0 {
		t.Fatal("Sub should clamp at zero")
	}
	if math.Abs(b.CPI()-1.5) > 1e-12 {
		t.Fatalf("CPI = %g", b.CPI())
	}
	if math.Abs(b.MispredictRate()-0.2) > 1e-12 {
		t.Fatalf("MispredictRate = %g", b.MispredictRate())
	}
	var empty Counters
	if empty.CPI() != 0 || empty.MispredictRate() != 0 {
		t.Fatal("empty counters should report 0 rates")
	}
}

func TestSeconds(t *testing.T) {
	c := Counters{Cycles: 2.6e9}
	if s := c.Seconds(Native()); math.Abs(s-1.0) > 1e-12 {
		t.Fatalf("2.6G cycles at 2.6GHz = %g s, want 1", s)
	}
}

func TestHashCostMonotoneInEvents(t *testing.T) {
	m := DefaultModel(Baseline())
	small := m.HashCost(accum.Stats{Accumulates: 100, Inserts: 10})
	big := m.HashCost(accum.Stats{Accumulates: 200, Inserts: 10})
	if big.Instructions <= small.Instructions || big.Cycles <= small.Cycles {
		t.Fatal("more events must cost more")
	}
	withChains := m.HashCost(accum.Stats{Accumulates: 100, Inserts: 10, ChainHops: 500})
	if withChains.Cycles <= small.Cycles || withChains.Mispredicts <= small.Mispredicts {
		t.Fatal("chain hops must add cycles and mispredictions")
	}
}

func TestAccumCostDispatch(t *testing.T) {
	m := DefaultModel(Baseline())
	st := accum.Stats{Accumulates: 1000, Inserts: 100, GatheredKV: 100}
	hc, err := m.AccumCost("softhash", st)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := m.AccumCost("asa", st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AccumCost("gomap", st); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AccumCost("quantum", st); err == nil {
		t.Fatal("unknown accumulator accepted")
	}
	if ac.Cycles >= hc.Cycles {
		t.Fatalf("ASA (%g cycles) should be cheaper than software hash (%g) on identical events",
			ac.Cycles, hc.Cycles)
	}
	if ac.Instructions >= hc.Instructions {
		t.Fatal("ASA should retire fewer instructions")
	}
	if ac.Mispredicts >= hc.Mispredicts {
		t.Fatal("ASA should mispredict less")
	}
}

// TestPaperShapeOnRealEvents drives the two real accumulator implementations
// with an identical power-law workload and checks that the modeled hash-
// operation speedup lands in the paper's observed band (3.28–5.56×,
// generously widened to 2.5–8× to keep the test robust to workload noise).
func TestPaperShapeOnRealEvents(t *testing.T) {
	r := rng.New(99)
	soft := hashtab.New(16)
	cam := asa.MustNew(asa.DefaultConfig())

	var buf []accum.KV
	for vertex := 0; vertex < 3000; vertex++ {
		deg := r.PowerLaw(2, 400, 2.3)
		distinct := deg/2 + 1
		for i := 0; i < deg; i++ {
			k := uint32(r.Intn(distinct))
			soft.Accumulate(k, 1.0)
			cam.Accumulate(k, 1.0)
		}
		buf = soft.Gather(buf[:0])
		buf = cam.Gather(buf[:0])
		soft.Reset()
		cam.Reset()
	}

	m := DefaultModel(Baseline())
	hc := m.HashCost(soft.Stats())
	ac := m.ASACost(cam.Stats())
	speedup := hc.Cycles / ac.Cycles
	if speedup < 2.5 || speedup > 8 {
		t.Fatalf("modeled hash-op speedup %.2f×, want within paper band ~3.3–5.6×", speedup)
	}
	if mp := ac.Mispredicts / hc.Mispredicts; mp > 0.6 {
		t.Fatalf("ASA retains %.0f%% of mispredictions; paper reports ~59%% reduction", mp*100)
	}
	if in := ac.Instructions / hc.Instructions; in > 0.6 {
		t.Fatalf("ASA retains %.0f%% of hash instructions", in*100)
	}
}

func TestKernelCost(t *testing.T) {
	m := DefaultModel(Native())
	w := KernelWork{ArcsProcessed: 1000, CandidatesEvaluated: 100, VerticesProcessed: 50, MovesApplied: 20}
	c := m.KernelCost(w)
	if c.Instructions == 0 || c.Cycles == 0 {
		t.Fatal("kernel work costs nothing")
	}
	var w2 KernelWork
	w2.Add(w)
	w2.Add(w)
	c2 := m.KernelCost(w2)
	if math.Abs(c2.Instructions-2*c.Instructions) > 1e-9 {
		t.Fatal("kernel cost must be linear in work")
	}
	if m.KernelCost(KernelWork{}).Cycles != 0 {
		t.Fatal("zero work must cost zero")
	}
}

func TestBaselineSlowerThanNative(t *testing.T) {
	// The same events must take longer on the Baseline machine (smaller L3,
	// ZSim-flavoured core) than on Native — the sign of the error in the
	// paper's Tables III/IV.
	st := accum.Stats{Accumulates: 1e6, Inserts: 1e5, ChainHops: 3e5, GatheredKV: 1e5}
	nc := DefaultModel(Native()).HashCost(st)
	bc := DefaultModel(Baseline()).HashCost(st)
	if bc.Seconds(Baseline()) <= nc.Seconds(Native()) {
		t.Fatal("baseline machine should be slower")
	}
	ratio := bc.Seconds(Baseline()) / nc.Seconds(Native())
	if ratio > 1.35 {
		t.Fatalf("baseline/native ratio %.2f too large; paper reports ~10-16%% error", ratio)
	}
}
