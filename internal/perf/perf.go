// Package perf is the repository's stand-in for the paper's Pin+ZSim
// microarchitecture simulation. Instead of replaying an instruction trace
// through an out-of-order core model, it converts the *event counts* that the
// instrumented accumulators and kernels actually performed (probes, collision
// chain hops, rehashes, CAM hits, evictions, merge passes, arcs visited,
// candidate moves evaluated) into modeled hardware counters — instructions,
// branches, branch mispredictions, memory-stall cycles — and from those into
// cycles, CPI, and seconds at the machine's clock frequency.
//
// The model is first-order but event-exact: every number it produces is a
// deterministic linear function of events that really happened in the run,
// so relative comparisons (Baseline vs ASA, the quantities in the paper's
// Tables III–V and Figures 6–11) are faithful to the simulated architecture
// even though absolute constants are calibrated rather than traced.
package perf

import (
	"fmt"

	"github.com/asamap/asamap/internal/accum"
)

// Machine describes the simulated machine, mirroring Table II of the paper.
type Machine struct {
	Name               string
	FreqGHz            float64 // core clock
	Cores              int
	L1InstKB, L1DataKB int
	L2KB               int
	L3MB               int
	BaseCPI            float64 // ideal cycles per instruction, no stalls
	MispredictPenalty  float64 // cycles per branch misprediction (pipeline flush)
	MemMissLatency     float64 // average cycles per cache-hierarchy miss
}

// Native returns the paper's native machine configuration (Table II col 2):
// Ivy Bridge, 2.6 GHz, 8 cores/socket, 32KB L1, 256KB L2, 20MB shared L3.
func Native() Machine {
	return Machine{
		Name: "native", FreqGHz: 2.6, Cores: 8,
		L1InstKB: 32, L1DataKB: 32, L2KB: 256, L3MB: 20,
		BaseCPI: 0.80, MispredictPenalty: 14, MemMissLatency: 58,
	}
}

// Baseline returns the ZSim-simulated configuration (Table II col 3). ZSim
// requires power-of-two cache sizes, so L3 shrinks from 20MB to 16MB; the
// model reflects the smaller L3 as a slightly higher average miss latency,
// which is the paper's own explanation for the ~10-16% native-vs-Baseline
// runtime difference in Tables III/IV.
func Baseline() Machine {
	m := Native()
	m.Name = "baseline"
	m.L3MB = 16
	m.MemMissLatency = 66
	m.BaseCPI = 0.86
	return m
}

// Counters are modeled hardware counters for a span of execution.
type Counters struct {
	Instructions float64
	Cycles       float64
	Branches     float64
	Mispredicts  float64
	MemStalls    float64 // cycles, included in Cycles
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.Instructions += o.Instructions
	c.Cycles += o.Cycles
	c.Branches += o.Branches
	c.Mispredicts += o.Mispredicts
	c.MemStalls += o.MemStalls
}

// Sub returns c minus o, clamped at zero.
func (c Counters) Sub(o Counters) Counters {
	f := func(a, b float64) float64 {
		if a < b {
			return 0
		}
		return a - b
	}
	return Counters{
		Instructions: f(c.Instructions, o.Instructions),
		Cycles:       f(c.Cycles, o.Cycles),
		Branches:     f(c.Branches, o.Branches),
		Mispredicts:  f(c.Mispredicts, o.Mispredicts),
		MemStalls:    f(c.MemStalls, o.MemStalls),
	}
}

// CPI returns cycles per instruction (0 for an empty span).
func (c Counters) CPI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return c.Cycles / c.Instructions
}

// Seconds converts cycles to wall time at the machine frequency.
func (c Counters) Seconds(m Machine) float64 {
	return c.Cycles / (m.FreqGHz * 1e9)
}

// MispredictRate returns mispredicted branches per branch.
func (c Counters) MispredictRate() float64 {
	if c.Branches == 0 {
		return 0
	}
	return c.Mispredicts / c.Branches
}

// EventCost is the modeled cost of one occurrence of an event class.
type EventCost struct {
	Instr          float64 // instructions retired
	Branches       float64 // branch instructions (subset of Instr)
	MispredictRate float64 // fraction of those branches mispredicted
	MemAccesses    float64 // cache-hierarchy accesses beyond L1
	MemMissRate    float64 // fraction of those that stall for MemMissLatency
	ExtraCycles    float64 // fixed structural latency (e.g. CAM port busy)
}

// Model converts event counts into Counters for one Machine.
type Model struct {
	Machine Machine

	// Software hash (Baseline) events — see package hashtab.
	HashOp       EventCost // per Accumulate call (hash, bucket load, compare)
	HashLookup   EventCost // per read-only Lookup probe
	HashChainHop EventCost // per traversed collision-chain link
	HashInsert   EventCost // per new entry (allocation, link-in)
	HashRehash   EventCost // per entry moved during table growth
	HashGatherKV EventCost // per pair iterated out of the table

	// ASA events — see package asa.
	ASAOp       EventCost // per accumulate instruction (hash(k) + issue)
	ASAEvict    EventCost // per LRU eviction (hardware-side, nearly free)
	ASAGatherKV EventCost // per pair copied from CAM/queue to memory
	ASAMergeKV  EventCost // per pair passing through software sort_and_merge

	// HashGraph (probe-free counting-sort layout) events — see package
	// hashgraph. The accumulate path is a sequential append; all collision
	// work happens in the streaming resolve passes, whose per-pair events
	// are counted exactly like the chain hops they replace.
	HGAppend    EventCost // per Accumulate call (bounds check + sequential store)
	HGLookup    EventCost // per read-only Lookup (hash + contiguous bin scan)
	HGBinKV     EventCost // per pair hashed and counted into a bin (pass 1)
	HGScatterKV EventCost // per pair scattered into its bin slot (pass 2)
	HGMergeKV   EventCost // per duplicate pair folded in the in-bin merge
	HGGatherKV  EventCost // per merged pair copied out by Gather

	// Kernel work outside the accumulators (identical for both backends).
	ArcVisit     EventCost // per adjacency arc processed (loads, flow lookup)
	Candidate    EventCost // per candidate module ΔL evaluation (log2 math)
	VertexOver   EventCost // per vertex processed (setup, reset, bookkeeping)
	MoveApply    EventCost // per applied module move (bookkeeping updates)
	FrontierSkip EventCost // per vertex a warm-start frontier excluded from a sweep (mask test only)
}

// DefaultModel returns the calibrated cost model for a machine. Constants
// were chosen so that, on the paper's workload shapes (power-law graphs,
// average degree 5–40), the modeled Baseline reproduces the paper's
// observations: hash operations take 50–65% of FindBestCommunity time,
// ASA speeds hash operations up 3–6×, total instructions drop ~15–25%,
// branch mispredictions ~40–60%, and CPI ~15–25%.
func DefaultModel(m Machine) *Model {
	return &Model{
		Machine: m,

		HashOp:       EventCost{Instr: 17, Branches: 3, MispredictRate: 0.14, MemAccesses: 1.3, MemMissRate: 0.22},
		HashLookup:   EventCost{Instr: 14, Branches: 2.5, MispredictRate: 0.14, MemAccesses: 1.3, MemMissRate: 0.22},
		HashChainHop: EventCost{Instr: 7, Branches: 1.5, MispredictRate: 0.30, MemAccesses: 1, MemMissRate: 0.35},
		HashInsert:   EventCost{Instr: 12, Branches: 2, MispredictRate: 0.12, MemAccesses: 2, MemMissRate: 0.15},
		HashRehash:   EventCost{Instr: 16, Branches: 2, MispredictRate: 0.10, MemAccesses: 2, MemMissRate: 0.40},
		HashGatherKV: EventCost{Instr: 8, Branches: 1, MispredictRate: 0.05, MemAccesses: 1, MemMissRate: 0.10},

		ASAOp:       EventCost{Instr: 6, Branches: 1, MispredictRate: 0.04, MemAccesses: 0.3, MemMissRate: 0.08, ExtraCycles: 3.2},
		ASAEvict:    EventCost{Instr: 1, ExtraCycles: 2},
		ASAGatherKV: EventCost{Instr: 12, Branches: 1.5, MispredictRate: 0.06, MemAccesses: 1, MemMissRate: 0.10},
		ASAMergeKV:  EventCost{Instr: 24, Branches: 5, MispredictRate: 0.12, MemAccesses: 1, MemMissRate: 0.05},

		// HashGraph constants reflect the streaming character of every pass:
		// the append and both resolve passes run over dense arrays with
		// well-predicted loop branches and prefetch-friendly access (low
		// mispredict and miss rates), unlike the chained table's
		// data-dependent pointer chases. The scatter is the one pass with
		// genuinely random stores, so it carries the highest miss rate.
		HGAppend:    EventCost{Instr: 4, Branches: 1, MispredictRate: 0.01, MemAccesses: 0.3, MemMissRate: 0.06},
		HGLookup:    EventCost{Instr: 11, Branches: 2, MispredictRate: 0.05, MemAccesses: 1, MemMissRate: 0.10},
		HGBinKV:     EventCost{Instr: 6, Branches: 0.5, MispredictRate: 0.02, MemAccesses: 1, MemMissRate: 0.08},
		HGScatterKV: EventCost{Instr: 7, Branches: 0.5, MispredictRate: 0.02, MemAccesses: 1.2, MemMissRate: 0.14},
		HGMergeKV:   EventCost{Instr: 9, Branches: 2, MispredictRate: 0.08, MemAccesses: 0.5, MemMissRate: 0.04},
		HGGatherKV:  EventCost{Instr: 6, Branches: 1, MispredictRate: 0.04, MemAccesses: 1, MemMissRate: 0.08},

		ArcVisit:   EventCost{Instr: 18, Branches: 2, MispredictRate: 0.06, MemAccesses: 1.3, MemMissRate: 0.12},
		Candidate:  EventCost{Instr: 130, Branches: 8, MispredictRate: 0.12, MemAccesses: 1, MemMissRate: 0.07},
		VertexOver: EventCost{Instr: 60, Branches: 8, MispredictRate: 0.06, MemAccesses: 2, MemMissRate: 0.05},
		MoveApply:  EventCost{Instr: 50, Branches: 3, MispredictRate: 0.05, MemAccesses: 4, MemMissRate: 0.10},
		// Skipping a frozen vertex is one well-predicted mask load — the
		// model's way of pricing what warm-start saves: a skip costs ~2
		// instructions where a full VertexOver evaluation costs ~60.
		FrontierSkip: EventCost{Instr: 2, Branches: 1, MispredictRate: 0.01, MemAccesses: 0.1, MemMissRate: 0.02},
	}
}

// apply adds count occurrences of ev to c.
func (m *Model) apply(c *Counters, ev EventCost, count float64) {
	if count == 0 {
		return
	}
	instr := ev.Instr * count
	branches := ev.Branches * count
	mispred := branches * ev.MispredictRate
	misses := ev.MemAccesses * ev.MemMissRate * count
	memStall := misses * m.Machine.MemMissLatency

	c.Instructions += instr
	c.Branches += branches
	c.Mispredicts += mispred
	c.MemStalls += memStall
	c.Cycles += instr*m.Machine.BaseCPI +
		mispred*m.Machine.MispredictPenalty +
		memStall +
		ev.ExtraCycles*count
}

// HashCost models the software-hash accumulator events of one run span.
func (m *Model) HashCost(st accum.Stats) Counters {
	var c Counters
	m.apply(&c, m.HashOp, float64(st.Accumulates))
	m.apply(&c, m.HashLookup, float64(st.Lookups))
	m.apply(&c, m.HashChainHop, float64(st.ChainHops))
	m.apply(&c, m.HashInsert, float64(st.Inserts))
	m.apply(&c, m.HashRehash, float64(st.Rehashes))
	m.apply(&c, m.HashGatherKV, float64(st.GatheredKV))
	return c
}

// ASACost models the ASA accumulator events of one run span.
func (m *Model) ASACost(st accum.Stats) Counters {
	var c Counters
	m.apply(&c, m.ASAOp, float64(st.Accumulates))
	m.apply(&c, m.ASAOp, float64(st.Lookups))
	m.apply(&c, m.ASAEvict, float64(st.Evictions))
	m.apply(&c, m.ASAGatherKV, float64(st.GatheredKV))
	m.apply(&c, m.ASAMergeKV, float64(st.MergedKV))
	return c
}

// HashGraphCost models the probe-free accumulator events of one run span.
// Every term is event-exact: appends and lookups count calls, the two
// resolve passes count the pairs they streamed, and the merge counts the
// duplicates it folded — so Baseline-vs-ASA-vs-HashGraph comparisons price
// exactly the work each backend performed.
func (m *Model) HashGraphCost(st accum.Stats) Counters {
	var c Counters
	m.apply(&c, m.HGAppend, float64(st.Accumulates))
	m.apply(&c, m.HGLookup, float64(st.Lookups))
	m.apply(&c, m.HGBinKV, float64(st.BinnedKV))
	m.apply(&c, m.HGScatterKV, float64(st.ScatteredKV))
	m.apply(&c, m.HGMergeKV, float64(st.BinMergedKV))
	m.apply(&c, m.HGGatherKV, float64(st.GatheredKV))
	return c
}

// AccumCost dispatches on the accumulator's Name(): "softhash" and "gomap"
// use the software-hash model, "asa" the accelerator model, "hashgraph" the
// probe-free two-pass model.
func (m *Model) AccumCost(name string, st accum.Stats) (Counters, error) {
	switch name {
	case "softhash", "gomap":
		return m.HashCost(st), nil
	case "asa":
		return m.ASACost(st), nil
	case "hashgraph":
		return m.HashGraphCost(st), nil
	}
	return Counters{}, fmt.Errorf("perf: unknown accumulator %q", name)
}

// KernelWork counts the non-accumulator work of a kernel span.
type KernelWork struct {
	ArcsProcessed       uint64 // adjacency arcs iterated
	CandidatesEvaluated uint64 // candidate modules whose ΔL was computed
	VerticesProcessed   uint64 // vertices whose best community was sought
	MovesApplied        uint64 // module changes committed
	FrontierFrozen      uint64 // vertices excluded from a leaf sweep by the warm-start frontier
}

// Add accumulates o into w.
func (w *KernelWork) Add(o KernelWork) {
	w.ArcsProcessed += o.ArcsProcessed
	w.CandidatesEvaluated += o.CandidatesEvaluated
	w.VerticesProcessed += o.VerticesProcessed
	w.MovesApplied += o.MovesApplied
	w.FrontierFrozen += o.FrontierFrozen
}

// Sub returns w minus o field-wise, clamped at zero.
func (w KernelWork) Sub(o KernelWork) KernelWork {
	d := func(a, b uint64) uint64 {
		if a < b {
			return 0
		}
		return a - b
	}
	return KernelWork{
		ArcsProcessed:       d(w.ArcsProcessed, o.ArcsProcessed),
		CandidatesEvaluated: d(w.CandidatesEvaluated, o.CandidatesEvaluated),
		VerticesProcessed:   d(w.VerticesProcessed, o.VerticesProcessed),
		MovesApplied:        d(w.MovesApplied, o.MovesApplied),
		FrontierFrozen:      d(w.FrontierFrozen, o.FrontierFrozen),
	}
}

// KernelCost models the non-accumulator work of a kernel span.
func (m *Model) KernelCost(w KernelWork) Counters {
	var c Counters
	m.apply(&c, m.ArcVisit, float64(w.ArcsProcessed))
	m.apply(&c, m.Candidate, float64(w.CandidatesEvaluated))
	m.apply(&c, m.VertexOver, float64(w.VerticesProcessed))
	m.apply(&c, m.MoveApply, float64(w.MovesApplied))
	m.apply(&c, m.FrontierSkip, float64(w.FrontierFrozen))
	return c
}
