// Package cachesim is a trace-driven cache-hierarchy simulator in the spirit
// of the cache models inside ZSim: set-associative L1/L2/L3 caches with LRU
// replacement and configurable line size. The paper's argument for ASA rests
// on the memory behaviour of software hash tables — pointer-chasing collision
// chains touch scattered lines that defeat prefetchers and miss deep in the
// hierarchy — so this simulator lets the repository *measure* those miss
// rates from the actual probe address streams of the instrumented hash table
// instead of assuming them, and validates the constants baked into the
// analytic perf model.
package cachesim

import "fmt"

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name     string
	SizeKB   int // total capacity
	Assoc    int // ways per set
	LineSize int // bytes per line (power of two)
	Latency  int // access latency in cycles (on hit at this level)
}

// Cache is one set-associative LRU cache level.
type Cache struct {
	cfg      CacheConfig
	sets     int
	lineBits uint
	setMask  uint64
	// tags[set*assoc+way]; use stamps for LRU.
	tags   []uint64
	valid  []bool
	stamp  []uint64
	clock  uint64
	hits   uint64
	misses uint64
}

// NewCache builds a cache level from its configuration.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if cfg.SizeKB <= 0 || cfg.Assoc <= 0 || cfg.LineSize <= 0 {
		return nil, fmt.Errorf("cachesim: invalid config %+v", cfg)
	}
	if cfg.LineSize&(cfg.LineSize-1) != 0 {
		return nil, fmt.Errorf("cachesim: line size %d not a power of two", cfg.LineSize)
	}
	lines := cfg.SizeKB * 1024 / cfg.LineSize
	if lines%cfg.Assoc != 0 {
		return nil, fmt.Errorf("cachesim: %d lines not divisible by associativity %d", lines, cfg.Assoc)
	}
	sets := lines / cfg.Assoc
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cachesim: set count %d not a power of two", sets)
	}
	lineBits := uint(0)
	for 1<<lineBits < cfg.LineSize {
		lineBits++
	}
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		lineBits: lineBits,
		setMask:  uint64(sets - 1),
		tags:     make([]uint64, sets*cfg.Assoc),
		valid:    make([]bool, sets*cfg.Assoc),
		stamp:    make([]uint64, sets*cfg.Assoc),
	}, nil
}

// Access looks up addr; on miss the line is installed (evicting LRU).
// Returns true on hit.
func (c *Cache) Access(addr uint64) bool {
	c.clock++
	line := addr >> c.lineBits
	set := int(line & c.setMask)
	base := set * c.cfg.Assoc
	lruWay, lruStamp := 0, ^uint64(0)
	for w := 0; w < c.cfg.Assoc; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			c.stamp[i] = c.clock
			c.hits++
			return true
		}
		if !c.valid[i] {
			lruWay, lruStamp = w, 0
		} else if c.stamp[i] < lruStamp {
			lruWay, lruStamp = w, c.stamp[i]
		}
	}
	c.misses++
	i := base + lruWay
	c.tags[i] = line
	c.valid[i] = true
	c.stamp[i] = c.clock
	return false
}

// Hits returns the hit count.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the miss count.
func (c *Cache) Misses() uint64 { return c.misses }

// MissRate returns misses/(hits+misses), 0 when idle.
func (c *Cache) MissRate() float64 {
	t := c.hits + c.misses
	if t == 0 {
		return 0
	}
	return float64(c.misses) / float64(t)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
	}
	c.hits, c.misses, c.clock = 0, 0, 0
}

// Hierarchy is an inclusive multi-level hierarchy; an access walks levels
// until it hits, installing the line in every level it missed.
type Hierarchy struct {
	Levels     []*Cache
	MemLatency int // cycles on full miss
	accesses   uint64
	cycles     uint64
}

// NewHierarchy builds the paper's Table II hierarchy: 32KB 8-way L1 (4
// cycles), 256KB 8-way L2 (12 cycles), L3 of l3MB 16-way (36 cycles), DRAM
// 200 cycles; 64-byte lines throughout.
func NewHierarchy(l3MB int) (*Hierarchy, error) {
	l1, err := NewCache(CacheConfig{Name: "L1D", SizeKB: 32, Assoc: 8, LineSize: 64, Latency: 4})
	if err != nil {
		return nil, err
	}
	l2, err := NewCache(CacheConfig{Name: "L2", SizeKB: 256, Assoc: 8, LineSize: 64, Latency: 12})
	if err != nil {
		return nil, err
	}
	l3, err := NewCache(CacheConfig{Name: "L3", SizeKB: l3MB * 1024, Assoc: 16, LineSize: 64, Latency: 36})
	if err != nil {
		return nil, err
	}
	return &Hierarchy{Levels: []*Cache{l1, l2, l3}, MemLatency: 200}, nil
}

// Access walks the hierarchy for addr and returns the access latency in
// cycles (the latency of the level that hit, or memory).
func (h *Hierarchy) Access(addr uint64) int {
	h.accesses++
	for _, c := range h.Levels {
		if c.Access(addr) {
			h.cycles += uint64(c.cfg.Latency)
			return c.cfg.Latency
		}
	}
	h.cycles += uint64(h.MemLatency)
	return h.MemLatency
}

// Accesses returns the number of Access calls.
func (h *Hierarchy) Accesses() uint64 { return h.accesses }

// AvgLatency returns the mean cycles per access (0 when idle).
func (h *Hierarchy) AvgLatency() float64 {
	if h.accesses == 0 {
		return 0
	}
	return float64(h.cycles) / float64(h.accesses)
}

// BeyondL1MissRate returns the fraction of accesses that missed L1 — the
// quantity the perf model's MemAccesses coefficient approximates.
func (h *Hierarchy) BeyondL1MissRate() float64 {
	return h.Levels[0].MissRate()
}

// DeepMissRate returns the fraction of L1-missing accesses that also missed
// the last level (stalling for DRAM) — the perf model's MemMissRate analogue.
func (h *Hierarchy) DeepMissRate() float64 {
	last := h.Levels[len(h.Levels)-1]
	l1m := h.Levels[0].Misses()
	if l1m == 0 {
		return 0
	}
	return float64(last.Misses()) / float64(l1m)
}

// Reset clears all levels and counters.
func (h *Hierarchy) Reset() {
	for _, c := range h.Levels {
		c.Reset()
	}
	h.accesses, h.cycles = 0, 0
}
