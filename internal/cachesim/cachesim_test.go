package cachesim

import (
	"testing"

	"github.com/asamap/asamap/internal/hashtab"
	"github.com/asamap/asamap/internal/rng"
)

func mustCache(t *testing.T, cfg CacheConfig) *Cache {
	t.Helper()
	c, err := NewCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	bad := []CacheConfig{
		{SizeKB: 0, Assoc: 1, LineSize: 64},
		{SizeKB: 32, Assoc: 0, LineSize: 64},
		{SizeKB: 32, Assoc: 8, LineSize: 48}, // not power of two
		{SizeKB: 32, Assoc: 7, LineSize: 64}, // lines not divisible
		{SizeKB: 3, Assoc: 8, LineSize: 64},  // sets not power of two (3KB/64/8 = 6)
	}
	for i, cfg := range bad {
		if _, err := NewCache(cfg); err == nil {
			t.Fatalf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestLineReuse(t *testing.T) {
	c := mustCache(t, CacheConfig{SizeKB: 32, Assoc: 8, LineSize: 64, Latency: 4})
	// 8-byte strides within one line: 1 miss then 7 hits per line.
	for addr := uint64(0); addr < 64*100; addr += 8 {
		c.Access(addr)
	}
	if c.Misses() != 100 {
		t.Fatalf("misses = %d, want 100 (one per line)", c.Misses())
	}
	if c.Hits() != 700 {
		t.Fatalf("hits = %d, want 700", c.Hits())
	}
}

func TestLRUWithinSet(t *testing.T) {
	// 2-way, 2 sets of 64B lines: 256B total.
	c := mustCache(t, CacheConfig{SizeKB: 1, Assoc: 2, LineSize: 64, Latency: 1})
	sets := c.sets
	// Three distinct lines mapping to set 0: A, B, C.
	stride := uint64(sets * 64)
	a, b, cc := uint64(0), stride, 2*stride
	c.Access(a)  // miss
	c.Access(b)  // miss
	c.Access(a)  // hit, A is MRU
	c.Access(cc) // miss, evicts B (LRU)
	if !c.Access(a) {
		t.Fatal("A should still be cached")
	}
	if c.Access(b) {
		t.Fatal("B should have been evicted by LRU")
	}
}

func TestWorkingSetFitsLowerLevel(t *testing.T) {
	h, err := NewHierarchy(16)
	if err != nil {
		t.Fatal(err)
	}
	// 128KB working set: misses L1 (32KB), fits L2 (256KB).
	ws := uint64(128 * 1024)
	for pass := 0; pass < 3; pass++ {
		for addr := uint64(0); addr < ws; addr += 64 {
			h.Access(addr)
		}
	}
	// Pass 2 and 3 should hit in L2: L1 miss rate stays high, deep miss
	// rate (to DRAM) falls to ~1/3 (only the first pass missed everywhere).
	if h.BeyondL1MissRate() < 0.5 {
		t.Fatalf("L1 miss rate %.2f; 128KB set should thrash 32KB L1", h.BeyondL1MissRate())
	}
	if h.DeepMissRate() > 0.5 {
		t.Fatalf("deep miss rate %.2f; L2 should capture the reuse", h.DeepMissRate())
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h, err := NewHierarchy(16)
	if err != nil {
		t.Fatal(err)
	}
	if lat := h.Access(0); lat != 200 {
		t.Fatalf("cold access latency %d, want 200 (DRAM)", lat)
	}
	if lat := h.Access(0); lat != 4 {
		t.Fatalf("hot access latency %d, want 4 (L1)", lat)
	}
	if h.Accesses() != 2 {
		t.Fatalf("accesses = %d", h.Accesses())
	}
	if h.AvgLatency() != 102 {
		t.Fatalf("avg latency = %g, want 102", h.AvgLatency())
	}
	h.Reset()
	if h.Accesses() != 0 || h.AvgLatency() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestEmptyRates(t *testing.T) {
	c := mustCache(t, CacheConfig{SizeKB: 32, Assoc: 8, LineSize: 64})
	if c.MissRate() != 0 {
		t.Fatal("idle cache should report 0 miss rate")
	}
	h, _ := NewHierarchy(16)
	if h.DeepMissRate() != 0 {
		t.Fatal("idle hierarchy should report 0 deep miss rate")
	}
}

// TestHashTableTraceBehaviour is the paper's memory argument made
// measurable: a collision-heavy hash workload must generate more memory
// traffic and worse locality than a collision-free one over the same
// number of operations.
func TestHashTableTraceBehaviour(t *testing.T) {
	run := func(collide bool) (accesses uint64, avgLat float64) {
		h, err := NewHierarchy(16)
		if err != nil {
			t.Fatal(err)
		}
		tab := hashtab.New(8)
		tab.SetTracer(func(addr uint64) { h.Access(addr) })
		r := rng.New(7)
		for vertex := 0; vertex < 3000; vertex++ {
			deg := 40
			for i := 0; i < deg; i++ {
				var key uint32
				if collide {
					// Keys congruent modulo the bucket count collide.
					key = uint32(i) * uint32(tab.BucketCount())
				} else {
					key = uint32(r.Intn(deg))
				}
				tab.Accumulate(key, 1)
			}
			tab.Reset()
		}
		return h.Accesses(), h.AvgLatency()
	}
	collAcc, _ := run(true)
	freeAcc, _ := run(false)
	if collAcc <= freeAcc {
		t.Fatalf("collision workload touched %d addresses, collision-free %d; chains must add traffic",
			collAcc, freeAcc)
	}
}

// TestTraceDisabledByDefault: without a tracer the table must not panic and
// behave identically.
func TestTraceDisabledByDefault(t *testing.T) {
	tab := hashtab.New(8)
	tab.Accumulate(1, 1)
	if v, ok := tab.Lookup(1); !ok || v != 1 {
		t.Fatal("table broken without tracer")
	}
	tab.SetTracer(nil)
	tab.Accumulate(2, 1)
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h, err := NewHierarchy(16)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		h.Access(r.Uint64() & 0xffffff)
	}
}

func TestQuickCacheInvariants(t *testing.T) {
	c := mustCache(t, CacheConfig{SizeKB: 4, Assoc: 4, LineSize: 64, Latency: 1})
	r := rng.New(31)
	for i := 0; i < 20000; i++ {
		c.Access(r.Uint64() & 0xfffff)
		if c.Hits()+c.Misses() != uint64(i+1) {
			t.Fatalf("hits+misses != accesses at %d", i)
		}
	}
	if mr := c.MissRate(); mr < 0 || mr > 1 {
		t.Fatalf("miss rate %g out of [0,1]", mr)
	}
	// A random working set far larger than the cache must miss a lot.
	if c.MissRate() < 0.5 {
		t.Fatalf("1MB random set over 4KB cache missed only %.2f", c.MissRate())
	}
}

func TestCacheResetRestoresCold(t *testing.T) {
	c := mustCache(t, CacheConfig{SizeKB: 4, Assoc: 4, LineSize: 64, Latency: 1})
	c.Access(0)
	if !c.Access(0) {
		t.Fatal("warm access missed")
	}
	c.Reset()
	if c.Access(0) {
		t.Fatal("access hit after Reset")
	}
	if c.Hits() != 0 || c.Misses() != 1 {
		t.Fatalf("counters not reset: %d/%d", c.Hits(), c.Misses())
	}
}
