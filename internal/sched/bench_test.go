package sched

import (
	"fmt"
	"testing"
)

// BenchmarkSchedDispatch measures the fixed cost of one Dispatch round trip
// — the overhead every sweep pays on top of its useful block work.
func BenchmarkSchedDispatch(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, mode := range []Mode{Static, Steal} {
			b.Run(fmt.Sprintf("workers=%d/%v", workers, mode), func(b *testing.B) {
				p := NewPool(workers)
				defer p.Close()
				bounds := UniformBounds(1<<14, workers*8)
				sink := make([]int64, workers)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := p.Dispatch(bounds, mode, func(w, _, lo, hi int) error {
						s := int64(0)
						for j := lo; j < hi; j++ {
							s += int64(j)
						}
						sink[w] += s
						return nil
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSchedWeightedBounds measures the prefix-sum partitioner on a
// power-law weight profile.
func BenchmarkSchedWeightedBounds(b *testing.B) {
	n := 1 << 17
	weight := func(i int) int64 { return int64(i%1024) + 1 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bounds := WeightedBounds(n, 64, weight); len(bounds) < 2 {
			b.Fatal("degenerate bounds")
		}
	}
}
