package sched

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func checkBounds(t *testing.T, bounds []int, n, k int) {
	t.Helper()
	if bounds[0] != 0 || bounds[len(bounds)-1] != n {
		t.Fatalf("bounds endpoints %v, want 0..%d", bounds, n)
	}
	if len(bounds)-1 > k {
		t.Fatalf("%d blocks exceed k=%d", len(bounds)-1, k)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not strictly increasing: %v", bounds)
		}
	}
}

func TestUniformBounds(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{10, 3}, {1, 4}, {7, 7}, {100, 1}, {64, 8}} {
		bounds := UniformBounds(tc.n, tc.k)
		want := tc.k
		if want > tc.n {
			want = tc.n
		}
		checkBounds(t, bounds, tc.n, want)
		if len(bounds)-1 != want {
			t.Fatalf("n=%d k=%d: got %d blocks, want %d", tc.n, tc.k, len(bounds)-1, want)
		}
	}
	if b := UniformBounds(0, 4); b[0] != 0 || b[len(b)-1] != 0 {
		t.Fatalf("empty input bounds %v", b)
	}
}

func TestWeightedBoundsBalance(t *testing.T) {
	// A power-law-ish weight profile: one huge hub plus a long uniform tail.
	n, k := 10000, 8
	weight := func(i int) int64 {
		if i == 17 {
			return 5000 // a hub worth half the tail
		}
		return 1
	}
	bounds := WeightedBounds(n, k, weight)
	checkBounds(t, bounds, n, k)
	total := int64(0)
	for i := 0; i < n; i++ {
		total += weight(i)
	}
	target := float64(total) / float64(len(bounds)-1)
	for b := 0; b+1 < len(bounds); b++ {
		w := int64(0)
		for i := bounds[b]; i < bounds[b+1]; i++ {
			w += weight(i)
		}
		// Each block must stay within one max item weight of the target.
		if float64(w) > target+5000 {
			t.Fatalf("block %d weight %d far above target %.0f (bounds %v...)", b, w, target, bounds[:min(len(bounds), 10)])
		}
	}
}

func TestWeightedBoundsUniformWeightsMatchUniform(t *testing.T) {
	n, k := 1000, 4
	wb := WeightedBounds(n, k, func(int) int64 { return 1 })
	checkBounds(t, wb, n, k)
	if len(wb)-1 != k {
		t.Fatalf("uniform weights: got %d blocks, want %d", len(wb)-1, k)
	}
	for b := 1; b < k; b++ {
		if diff := wb[b] - b*n/k; diff < -1 || diff > 1 {
			t.Fatalf("cut %d at %d, want ~%d", b, wb[b], b*n/k)
		}
	}
}

func TestWeightedBoundsDeterministic(t *testing.T) {
	weight := func(i int) int64 { return int64(i%97) + 1 }
	a := WeightedBounds(5000, 16, weight)
	b := WeightedBounds(5000, 16, weight)
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("bounds differ at %d", i)
		}
	}
}

func TestDispatchRunsEveryBlockOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, mode := range []Mode{Steal, Static} {
			p := NewPool(workers)
			n := 1000
			bounds := UniformBounds(n, workers*7)
			hits := make([]int32, n)
			stats, err := p.Dispatch(bounds, mode, func(_, _, lo, hi int) error {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
				return nil
			})
			p.Close()
			if err != nil {
				t.Fatalf("workers=%d mode=%v: %v", workers, mode, err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d mode=%v: item %d ran %d times", workers, mode, i, h)
				}
			}
			if stats.Blocks != len(bounds)-1 {
				t.Fatalf("workers=%d mode=%v: %d blocks ran, want %d", workers, mode, stats.Blocks, len(bounds)-1)
			}
			if mode == Static && stats.Steals != 0 {
				t.Fatalf("static mode stole %d blocks", stats.Steals)
			}
		}
	}
}

func TestDispatchStealsFromStragglers(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs >= 2 CPUs")
	}
	p := NewPool(4)
	defer p.Close()
	// 16 blocks; the blocks of worker 0's span sleep, so other workers finish
	// their own spans and must steal the tail of span 0.
	bounds := UniformBounds(64, 16)
	var ranBy [4]int32
	_, err := p.Dispatch(bounds, Steal, func(worker, block, lo, hi int) error {
		if block < 4 { // worker 0's span
			time.Sleep(20 * time.Millisecond)
		}
		atomic.AddInt32(&ranBy[worker], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Worker 0 cannot have run all four of its slow blocks alone while three
	// idle workers were allowed to steal.
	if ranBy[0] == 4+12 {
		t.Fatalf("no stealing happened: ranBy=%v", ranBy)
	}
}

func TestDispatchErrorPropagates(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	sentinel := errors.New("boom")
	_, err := p.Dispatch(UniformBounds(100, 8), Steal, func(_, block, _, _ int) error {
		if block == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
}

func TestDispatchPanicBecomesError(t *testing.T) {
	for _, workers := range []int{1, 3} {
		p := NewPool(workers)
		_, err := p.Dispatch(UniformBounds(10, 5), Steal, func(_, block, _, _ int) error {
			if block == 2 {
				panic("injected")
			}
			return nil
		})
		p.Close()
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("workers=%d: got %v, want panic error", workers, err)
		}
	}
}

func TestDispatchStats(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	stats, err := p.Dispatch(UniformBounds(100, 4), Steal, func(_, _, lo, hi int) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.BusyTotal(); got < 4*time.Millisecond {
		t.Fatalf("busy total %v, want >= 4ms", got)
	}
	if stats.Imbalance < 1 {
		t.Fatalf("imbalance %f < 1", stats.Imbalance)
	}
	if stats.Wall <= 0 {
		t.Fatal("wall time not recorded")
	}
}

func TestPoolReuseAcrossDispatches(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	before := runtime.NumGoroutine()
	for round := 0; round < 50; round++ {
		var count int64
		if _, err := p.Dispatch(UniformBounds(200, 16), Steal, func(_, _, lo, hi int) error {
			atomic.AddInt64(&count, int64(hi-lo))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if count != 200 {
			t.Fatalf("round %d: covered %d items", round, count)
		}
	}
	// Persistent pool: repeated dispatches must not accumulate goroutines.
	if after := runtime.NumGoroutine(); after > before+4 {
		t.Fatalf("goroutines grew from %d to %d across dispatches", before, after)
	}
}

func TestCloseIdempotentAndReleases(t *testing.T) {
	before := runtime.NumGoroutine()
	p := NewPool(8)
	if _, err := p.Dispatch(UniformBounds(8, 8), Static, func(_, _, _, _ int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked after Close: %d -> %d", before, after)
	}
}

func TestDispatchEmptyAndTiny(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	// Zero items: one empty block, fn sees lo == hi.
	ran := 0
	var mu sync.Mutex
	if _, err := p.Dispatch(UniformBounds(0, 4), Steal, func(_, _, lo, hi int) error {
		mu.Lock()
		ran += hi - lo
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran != 0 {
		t.Fatalf("empty dispatch ran %d items", ran)
	}
	// Fewer items than workers.
	var count int64
	if _, err := p.Dispatch(UniformBounds(2, 4), Steal, func(_, _, lo, hi int) error {
		atomic.AddInt64(&count, int64(hi-lo))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("covered %d of 2 items", count)
	}
}

func TestModeString(t *testing.T) {
	if fmt.Sprint(Steal) != "steal" || fmt.Sprint(Static) != "static" {
		t.Fatalf("mode names: %v %v", Steal, Static)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
