// Package sched is the shared parallel-execution substrate for the
// repository's sweep-style kernels (FindBestCommunity, PageRank power
// iteration, Convert2SuperNode contraction).
//
// It addresses the classic straggler problem of static loop scheduling on
// power-law graphs: splitting a shuffled vertex order into equal-count
// contiguous chunks leaves one worker holding the hub vertices while the
// rest idle at the sweep barrier. The substrate provides
//
//   - a persistent worker pool: goroutines are created once per Pool (one
//     algorithm run), not respawned for every sweep;
//   - degree-aware block partitioning: WeightedBounds prefix-sums a per-item
//     work estimate (typically arc count) so each block carries equal *work*,
//     not equal item count;
//   - chunked work-stealing: each worker drains its own block span through an
//     atomic grab counter, then steals remaining blocks from other workers'
//     spans — OpenMP guided/dynamic scheduling in spirit, as used by parallel
//     community-detection codes (Staudt & Meyerhenke; HyPC-Map).
//
// Determinism: the substrate never reorders *outputs*. Blocks are fixed by
// the partition (a pure function of the weights), each block is executed
// exactly once, and callers keep per-block result buffers, so the merged
// result is independent of which worker ran which block and of the steal
// schedule. Floating-point reductions must therefore be organized per block
// (or per fixed index range), never per worker.
//
// Every dispatch is observable: per-worker busy time, executed block counts,
// steal counts, and the busy-time imbalance ratio (max/mean) are returned to
// the caller for trace and benchmark output.
package sched

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/asamap/asamap/internal/clock"
	"github.com/asamap/asamap/internal/obs"
)

// Mode selects the scheduling policy of one Dispatch.
type Mode int

const (
	// Steal lets a worker that exhausts its own block span take blocks from
	// other workers' spans (chunked work-stealing; the default).
	Steal Mode = iota
	// Static disables stealing: every worker runs exactly its own span.
	// With one block per worker this reproduces classic static chunking,
	// kept as the measurable baseline.
	Static
)

// String names the mode as used in reports.
func (m Mode) String() string {
	if m == Static {
		return "static"
	}
	return "steal"
}

// BlockFunc processes one block: items [lo, hi) of the caller's index space,
// on behalf of the given worker ID. Implementations may use worker-local
// scratch indexed by worker and must write results into block-indexed
// buffers to stay schedule-independent.
type BlockFunc func(worker, block, lo, hi int) error

// WorkerStat describes one worker's share of a Dispatch.
type WorkerStat struct {
	Busy   time.Duration // wall time spent inside BlockFunc
	Blocks int           // blocks executed (own + stolen)
	Steals int           // blocks taken from another worker's span
}

// Stats describes one Dispatch.
type Stats struct {
	PerWorker []WorkerStat
	Wall      time.Duration // dispatch wall time (barrier to barrier)
	Blocks    int           // total blocks executed
	Steals    uint64        // total stolen blocks
	// Imbalance is max/mean of per-worker busy time over all pool workers
	// (1.0 = perfectly balanced; 0 when nothing ran). The per-sweep
	// imbalance ratios of the scheduler benchmarks aggregate this value.
	Imbalance float64
}

// BusyTotal returns the summed busy time over all workers.
func (s Stats) BusyTotal() time.Duration {
	var t time.Duration
	for _, w := range s.PerWorker {
		t += w.Busy
	}
	return t
}

// Pool is a persistent team of worker goroutines. Create once per algorithm
// run with NewPool, issue any number of Dispatch calls (one at a time), and
// release the goroutines with Close. A one-worker Pool spawns no goroutines;
// Dispatch then runs inline on the caller.
type Pool struct {
	n     int
	clk   clock.Clock
	chans []chan *dispatch
	done  sync.WaitGroup
	once  sync.Once
}

// NewPool returns a pool of n persistent workers (n < 1 is treated as 1).
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{n: n, clk: clock.Real{}}
	if n == 1 {
		return p
	}
	p.chans = make([]chan *dispatch, n)
	for i := range p.chans {
		p.chans[i] = make(chan *dispatch, 1)
	}
	p.done.Add(n)
	for i := 0; i < n; i++ {
		go p.workerLoop(i)
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.n }

// Close terminates the worker goroutines. The pool must not be used after
// Close; Close is idempotent.
func (p *Pool) Close() {
	if p.chans == nil {
		return
	}
	p.once.Do(func() {
		for _, c := range p.chans {
			close(c)
		}
		p.done.Wait()
	})
}

func (p *Pool) workerLoop(id int) {
	defer p.done.Done()
	for d := range p.chans[id] {
		d.runWorker(id)
		d.wg.Done()
	}
}

// dispatch is the shared state of one Dispatch call.
type dispatch struct {
	bounds []int
	fn     BlockFunc
	mode   Mode
	clk    clock.Clock
	parent *obs.Span // span the per-worker spans nest under; nil = no tracing

	spanLo, spanHi []int    // per worker: initial block span [lo, hi)
	cursors        []cursor // per worker: atomic next-block grab counter
	stats          []WorkerStat

	wg     sync.WaitGroup
	failed atomic.Bool
	errMu  sync.Mutex
	err    error
}

// cursor is a cache-line padded atomic block counter, one per worker, so
// that the grab counters of different workers never share a line.
type cursor struct {
	next atomic.Int64
	_    [56]byte
}

func (d *dispatch) setErr(err error) {
	d.failed.Store(true)
	d.errMu.Lock()
	if d.err == nil {
		d.err = err
	}
	d.errMu.Unlock()
}

// runWorker drains worker id's own span, then (in Steal mode) the remaining
// blocks of the other spans. A panic inside the BlockFunc is converted into
// a dispatch error rather than crashing the process. When the dispatch has a
// trace parent, the worker's share is emitted as a keyed volatile span (its
// ID derives from the worker ID, and it never enters the canonical tree, so
// tracing cannot perturb the determinism contract).
//
//asalint:hotroot per-worker dispatch loop: own span then stealing
func (d *dispatch) runWorker(id int) {
	ws := d.parent.ChildKeyed("worker", uint64(id))
	ws.SetTrack(id + 1)
	st := &d.stats[id]
	defer func() {
		if r := recover(); r != nil {
			d.setErr(fmt.Errorf("sched: worker %d panicked: %v", id, r))
		}
		ws.SetVolatileUint("blocks", uint64(st.Blocks))
		ws.SetVolatileUint("steals", uint64(st.Steals))
		ws.SetVolatileAttr("busy", st.Busy.String())
		ws.End()
	}()
	for {
		b := int(d.cursors[id].next.Add(1)) - 1
		if b >= d.spanHi[id] {
			break
		}
		d.runBlock(id, b, st, false)
	}
	if d.mode == Static {
		return
	}
	for off := 1; off < len(d.spanLo); off++ {
		v := (id + off) % len(d.spanLo)
		for {
			b := int(d.cursors[v].next.Add(1)) - 1
			if b >= d.spanHi[v] {
				break
			}
			d.runBlock(id, b, st, true)
		}
	}
}

//asalint:hotroot per-block execution under the work-stealing scheduler
func (d *dispatch) runBlock(id, b int, st *WorkerStat, stolen bool) {
	if d.failed.Load() {
		return
	}
	t0 := d.clk.Now()
	err := d.fn(id, b, d.bounds[b], d.bounds[b+1])
	st.Busy += d.clk.Since(t0)
	st.Blocks++
	if stolen {
		st.Steals++
	}
	if err != nil {
		d.setErr(err)
	}
}

// Dispatch runs fn over the blocks described by bounds (len(bounds)-1 blocks;
// block b covers [bounds[b], bounds[b+1])) and waits for completion. Blocks
// are split evenly across workers as initial spans; under Steal mode idle
// workers then take over the unstarted tail of loaded spans. Each block runs
// exactly once. The first error (or recovered panic) is returned after all
// workers have stopped; remaining unstarted blocks may be skipped once an
// error is recorded. Only one Dispatch may be in flight per pool.
func (p *Pool) Dispatch(bounds []int, mode Mode, fn BlockFunc) (Stats, error) {
	return p.DispatchTraced(bounds, mode, fn, nil)
}

// DispatchTraced is Dispatch with span tracing: each participating worker
// emits one volatile keyed span under parent carrying its busy time, block
// count, and steal count on its own display track. A nil parent traces
// nothing (Dispatch delegates here with nil).
func (p *Pool) DispatchTraced(bounds []int, mode Mode, fn BlockFunc, parent *obs.Span) (Stats, error) {
	nb := len(bounds) - 1
	if nb < 0 {
		return Stats{}, fmt.Errorf("sched: empty bounds")
	}
	d := &dispatch{
		bounds:  bounds,
		fn:      fn,
		mode:    mode,
		clk:     p.clk,
		parent:  parent,
		spanLo:  make([]int, p.n),
		spanHi:  make([]int, p.n),
		cursors: make([]cursor, p.n),
		stats:   make([]WorkerStat, p.n),
	}
	for w := 0; w < p.n; w++ {
		d.spanLo[w] = w * nb / p.n
		d.spanHi[w] = (w + 1) * nb / p.n
		d.cursors[w].next.Store(int64(d.spanLo[w]))
	}
	start := p.clk.Now()
	if p.chans == nil {
		// One worker: run inline on the caller, no goroutine round trip.
		d.runWorker(0)
	} else {
		d.wg.Add(p.n)
		for _, c := range p.chans {
			c <- d
		}
		d.wg.Wait()
	}
	stats := Stats{PerWorker: d.stats, Wall: p.clk.Since(start)}
	var max, sum time.Duration
	for _, w := range d.stats {
		stats.Blocks += w.Blocks
		stats.Steals += uint64(w.Steals)
		sum += w.Busy
		if w.Busy > max {
			max = w.Busy
		}
	}
	if sum > 0 {
		mean := float64(sum) / float64(p.n)
		stats.Imbalance = float64(max) / mean
	}
	return stats, d.err
}

// UniformBounds splits [0, n) into k contiguous blocks of near-equal item
// count — the static-chunk baseline partition.
func UniformBounds(n, k int) []int {
	if n <= 0 {
		return []int{0, 0}
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	bounds := make([]int, k+1)
	for i := 0; i <= k; i++ {
		bounds[i] = i * n / k
	}
	return bounds
}

// WeightedBounds splits [0, n) into at most k contiguous blocks of
// near-equal total weight, using a single prefix-sum pass over the per-item
// weight function (weights below 1 count as 1). On power-law workloads this
// is the degree-aware partition: weight(i) = arc count of item i, so a block
// of hub vertices holds few items and a block of leaves holds many, but both
// carry the same sweep work. The result is a pure function of (n, k,
// weights) and therefore identical across runs and worker schedules.
func WeightedBounds(n, k int, weight func(i int) int64) []int {
	if n <= 0 {
		return []int{0, 0}
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	total := int64(0)
	for i := 0; i < n; i++ {
		w := weight(i)
		if w < 1 {
			w = 1
		}
		total += w
	}
	bounds := make([]int, 1, k+1)
	acc := int64(0)
	for i := 0; i < n-1; i++ {
		w := weight(i)
		if w < 1 {
			w = 1
		}
		acc += w
		b := len(bounds) // blocks closed so far + 1 = index of the next cut
		// Close block b once its cumulative work reaches b/k of the total,
		// as long as every remaining block can still receive an item.
		if b < k && acc*int64(k) >= total*int64(b) && n-(i+1) >= k-b {
			bounds = append(bounds, i+1)
		}
	}
	return append(bounds, n)
}
