package asa

import (
	"math"
	"testing"

	"github.com/asamap/asamap/internal/accum"
)

// FuzzCAMOracle: any accumulate sequence against any (tiny) CAM must match
// the map oracle after gather+merge, never panic, and stay consistent across
// a Reset.
func FuzzCAMOracle(f *testing.F) {
	f.Add([]byte{1, 2, 3, 1, 2, 3}, uint8(2))
	f.Add([]byte{0}, uint8(1))
	f.Add([]byte{255, 254, 253, 252, 251}, uint8(3))
	f.Fuzz(func(t *testing.T, keys []byte, capRaw uint8) {
		entries := int(capRaw)%8 + 1
		c, err := New(Config{CapacityBytes: entries * 16, EntryBytes: 16, Policy: LRU})
		if err != nil {
			t.Fatal(err)
		}
		oracle := map[uint32]float64{}
		for i, k := range keys {
			key := uint32(k % 32)
			val := float64(i%7) + 0.5
			c.Accumulate(key, val)
			oracle[key] += val
		}
		got := c.Gather(nil)
		if len(got) != len(oracle) {
			t.Fatalf("%d keys gathered, oracle has %d", len(got), len(oracle))
		}
		for _, kv := range got {
			if math.Abs(kv.Value-oracle[kv.Key]) > 1e-9 {
				t.Fatalf("key %d: %g vs %g", kv.Key, kv.Value, oracle[kv.Key])
			}
		}
		c.Reset()
		if out := c.Gather([]accum.KV{}); len(out) != 0 {
			t.Fatalf("reset CAM still holds %v", out)
		}
	})
}
