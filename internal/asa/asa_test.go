package asa

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/asamap/asamap/internal/accum"
	"github.com/asamap/asamap/internal/rng"
)

func smallCAM(t *testing.T, entries int) *CAM {
	t.Helper()
	c, err := New(Config{CapacityBytes: entries * 16, EntryBytes: 16, Policy: LRU})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func gathered(c *CAM) []accum.KV {
	out := c.Gather(nil)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{CapacityBytes: 8, EntryBytes: 16}); err == nil {
		t.Fatal("capacity < one entry accepted")
	}
	if _, err := New(Config{CapacityBytes: 1024, EntryBytes: 4}); err == nil {
		t.Fatal("tiny entries accepted")
	}
	if _, err := New(Config{CapacityBytes: 1024, EntryBytes: 16, Policy: Policy(99)}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if DefaultConfig().Entries() != 512 {
		t.Fatalf("default entries = %d, want 512", DefaultConfig().Entries())
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "LRU" || FIFO.String() != "FIFO" || Random.String() != "Random" {
		t.Fatal("policy names wrong")
	}
	if Policy(42).String() == "" {
		t.Fatal("unknown policy has empty name")
	}
}

func TestBasicAccumulateNoOverflow(t *testing.T) {
	c := smallCAM(t, 8)
	c.Accumulate(5, 1.5)
	c.Accumulate(7, 2.0)
	c.Accumulate(5, 0.5)
	got := gathered(c)
	want := []accum.KV{{Key: 5, Value: 2.0}, {Key: 7, Value: 2.0}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("got %v, want %v", got, want)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Evictions != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestOverflowAndMerge(t *testing.T) {
	c := smallCAM(t, 2)
	// Three distinct keys in a 2-entry CAM force one eviction.
	c.Accumulate(1, 1)
	c.Accumulate(2, 1)
	c.Accumulate(3, 1) // evicts key 1 (LRU)
	if c.OverflowLen() != 1 {
		t.Fatalf("overflow len = %d, want 1", c.OverflowLen())
	}
	// Touch key 1 again: it re-enters the CAM as a fresh partial sum.
	c.Accumulate(1, 5)
	got := gathered(c)
	want := []accum.KV{{Key: 1, Value: 6}, {Key: 2, Value: 1}, {Key: 3, Value: 1}}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i].Key != want[i].Key || math.Abs(got[i].Value-want[i].Value) > 1e-12 {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if c.Stats().Evictions < 1 {
		t.Fatal("no evictions counted")
	}
	if c.Stats().MergedKV == 0 {
		t.Fatal("merge path not exercised")
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	c := smallCAM(t, 2)
	c.Accumulate(1, 1)
	c.Accumulate(2, 1)
	c.Accumulate(1, 1) // key 1 becomes MRU
	c.Accumulate(3, 1) // must evict key 2
	non, over := c.GatherCAM(nil, nil)
	keys := map[uint32]bool{}
	for _, kv := range non {
		keys[kv.Key] = true
	}
	if !keys[1] || !keys[3] || keys[2] {
		t.Fatalf("CAM contents %v; want keys 1 and 3", non)
	}
	if len(over) != 1 || over[0].Key != 2 || over[0].Value != 1 {
		t.Fatalf("overflow %v; want key 2", over)
	}
}

func TestFIFOEvictsOldest(t *testing.T) {
	c, err := New(Config{CapacityBytes: 32, EntryBytes: 16, Policy: FIFO})
	if err != nil {
		t.Fatal(err)
	}
	c.Accumulate(1, 1)
	c.Accumulate(2, 1)
	c.Accumulate(1, 1) // hit does NOT refresh under FIFO
	c.Accumulate(3, 1) // must evict key 1 (oldest insertion)
	_, over := c.GatherCAM(nil, nil)
	if len(over) != 1 || over[0].Key != 1 {
		t.Fatalf("FIFO evicted %v, want key 1", over)
	}
}

func TestRandomPolicyStaysCorrect(t *testing.T) {
	c, err := New(Config{CapacityBytes: 64, EntryBytes: 16, Policy: Random})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	oracle := map[uint32]float64{}
	for i := 0; i < 500; i++ {
		k := uint32(r.Intn(40))
		v := r.Float64()
		c.Accumulate(k, v)
		oracle[k] += v
	}
	compareWithOracle(t, gathered(c), oracle)
}

func compareWithOracle(t *testing.T, got []accum.KV, oracle map[uint32]float64) {
	t.Helper()
	if len(got) != len(oracle) {
		t.Fatalf("got %d keys, oracle has %d", len(got), len(oracle))
	}
	for _, kv := range got {
		want, ok := oracle[kv.Key]
		if !ok {
			t.Fatalf("unexpected key %d", kv.Key)
		}
		if math.Abs(kv.Value-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Fatalf("key %d: got %g, want %g", kv.Key, kv.Value, want)
		}
	}
}

// TestOracleEquivalence is the central functional property: under heavy
// eviction pressure the ASA gather+merge result must be identical (up to
// float rounding) to a plain map accumulation.
func TestOracleEquivalence(t *testing.T) {
	for _, entries := range []int{1, 2, 3, 8, 64} {
		c := smallCAM(t, entries)
		r := rng.New(uint64(entries) * 31)
		for round := 0; round < 20; round++ {
			oracle := map[uint32]float64{}
			nOps := r.Intn(300) + 1
			for i := 0; i < nOps; i++ {
				k := uint32(r.Intn(50))
				v := r.Float64() - 0.3
				c.Accumulate(k, v)
				oracle[k] += v
			}
			compareWithOracle(t, gathered(c), oracle)
			c.Reset()
			if c.Len() != 0 || c.OverflowLen() != 0 {
				t.Fatal("Reset left residue")
			}
		}
	}
}

func TestQuickOracleEquivalence(t *testing.T) {
	c := smallCAM(t, 4)
	f := func(keys []uint8, seed uint16) bool {
		c.Reset()
		oracle := map[uint32]float64{}
		r := rng.New(uint64(seed))
		for _, k8 := range keys {
			k := uint32(k8 % 16)
			v := r.Float64()
			c.Accumulate(k, v)
			oracle[k] += v
		}
		got := gathered(c)
		if len(got) != len(oracle) {
			return false
		}
		for _, kv := range got {
			if math.Abs(kv.Value-oracle[kv.Key]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestResetGenerationWrap(t *testing.T) {
	c := smallCAM(t, 2)
	c.curGen = ^uint32(0) - 1 // force a wrap within two resets
	c.Accumulate(1, 1)
	c.Reset()
	c.Accumulate(2, 2)
	c.Reset()
	c.Accumulate(3, 3)
	got := gathered(c)
	if len(got) != 1 || got[0].Key != 3 || got[0].Value != 3 {
		t.Fatalf("after generation wrap: %v", got)
	}
}

func TestHeavyEvictionChurn(t *testing.T) {
	// Degree >> capacity: every distinct key after the first two evicts.
	c := smallCAM(t, 2)
	oracle := map[uint32]float64{}
	for i := 0; i < 1000; i++ {
		k := uint32(i % 97)
		c.Accumulate(k, 1)
		oracle[k] += 1
	}
	compareWithOracle(t, gathered(c), oracle)
	if c.Stats().Evictions < 900 {
		t.Fatalf("only %d evictions under churn", c.Stats().Evictions)
	}
}

func TestGatherCAMSeparatesBuffers(t *testing.T) {
	c := smallCAM(t, 2)
	c.Accumulate(1, 1)
	c.Accumulate(2, 1)
	c.Accumulate(3, 1)
	non, over := c.GatherCAM(nil, nil)
	if len(non) != 2 || len(over) != 1 {
		t.Fatalf("non=%d over=%d, want 2/1", len(non), len(over))
	}
	merged := c.SortAndMerge(non, over)
	if len(merged) != 3 {
		t.Fatalf("merged %d keys, want 3", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i-1].Key >= merged[i].Key {
			t.Fatal("merged output not sorted")
		}
	}
}

func TestSortAndMergeEmptyOverflow(t *testing.T) {
	c := smallCAM(t, 4)
	non := []accum.KV{{Key: 2, Value: 1}, {Key: 1, Value: 1}}
	out := c.SortAndMerge(non, nil)
	if len(out) != 2 {
		t.Fatal("empty overflow should be a no-op passthrough")
	}
	if c.Stats().MergedKV != 0 {
		t.Fatal("no-op merge counted merge work")
	}
}

func TestStatsAccounting(t *testing.T) {
	c := smallCAM(t, 4)
	for i := 0; i < 10; i++ {
		c.Accumulate(uint32(i%3), 1)
	}
	st := c.Stats()
	if st.Accumulates != 10 {
		t.Fatalf("Accumulates = %d", st.Accumulates)
	}
	if st.Hits != 7 || st.Misses != 3 {
		t.Fatalf("Hits=%d Misses=%d, want 7/3", st.Hits, st.Misses)
	}
	if st.Inserts != 3 {
		t.Fatalf("Inserts = %d", st.Inserts)
	}
	c.Reset()
	if c.Stats().Resets != 1 {
		t.Fatal("Resets not counted")
	}
}

func TestAccumulatorInterfaceViaGather(t *testing.T) {
	var a accum.Accumulator = MustNew(DefaultConfig())
	a.Accumulate(9, 2)
	a.Accumulate(9, 3)
	out := a.Gather(nil)
	if len(out) != 1 || out[0].Key != 9 || out[0].Value != 5 {
		t.Fatalf("interface path: %v", out)
	}
	if a.Name() != "asa" {
		t.Fatal("name wrong")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on invalid config")
		}
	}()
	MustNew(Config{CapacityBytes: 1, EntryBytes: 16})
}

func BenchmarkAccumulateHit(b *testing.B) {
	c := MustNew(DefaultConfig())
	for i := 0; i < b.N; i++ {
		c.Accumulate(uint32(i&255), 1.0)
	}
}

func BenchmarkAccumulateChurn(b *testing.B) {
	c := MustNew(Config{CapacityBytes: 1024, EntryBytes: 16, Policy: LRU})
	for i := 0; i < b.N; i++ {
		c.Accumulate(uint32(i%100003), 1.0)
	}
}
