// Package asa is a functional software model of the Accelerated Sparse
// Accumulation (ASA) hardware unit of Zhang et al. (TACO 2022), generalized
// exactly as the paper does: a per-core content-addressable memory (CAM) with
// a single accumulate operation, an LRU-evicted overflow queue, and a
// gather + sort_and_merge path for overflowed pairs (Algorithm 2 of the
// paper).
//
// The model preserves the three architectural outcomes of an accumulate:
//
//  1. key present in CAM        → value added to the partial sum (hit),
//  2. key absent, CAM has space → new entry created (miss),
//  3. key absent, CAM full      → the LRU entry is evicted into the overflow
//     queue buffer and its slot is reused (miss + eviction).
//
// Event counts feed the perf package's hardware cost model; the functional
// results are bit-identical to a plain map accumulation (tests enforce this),
// which is why the identical Infomap kernel can run on either backend.
package asa

import (
	"fmt"
	"sort"

	"github.com/asamap/asamap/internal/accum"
)

// Policy selects the CAM replacement policy. The paper's ASA uses LRU; FIFO
// and Random exist for the ablation study (experiment X4 in DESIGN.md).
type Policy int

const (
	// LRU evicts the least recently touched entry (paper default).
	LRU Policy = iota
	// FIFO evicts the oldest inserted entry regardless of hits.
	FIFO
	// Random evicts a pseudo-randomly chosen entry.
	Random
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Random:
		return "Random"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Config describes one core-local CAM.
type Config struct {
	// CapacityBytes is the CAM size; the paper evaluates 1KB–8KB per core
	// and shows 8KB covers >99% of vertex neighborhoods.
	CapacityBytes int
	// EntryBytes is the storage per (key, partial sum) entry. The paper's
	// ASA stores a key and a 64-bit accumulator; 16 bytes is the default.
	EntryBytes int
	// Policy is the replacement policy (default LRU).
	Policy Policy
}

// DefaultConfig returns the paper's headline configuration: 8KB CAM, 16-byte
// entries (512 entries), LRU.
func DefaultConfig() Config {
	return Config{CapacityBytes: 8 * 1024, EntryBytes: 16, Policy: LRU}
}

// Entries returns the number of CAM entries the configuration provides.
func (c Config) Entries() int { return c.CapacityBytes / c.EntryBytes }

func (c Config) validate() error {
	if c.EntryBytes < 12 {
		return fmt.Errorf("asa: EntryBytes %d too small (need key+sum)", c.EntryBytes)
	}
	if c.CapacityBytes < c.EntryBytes {
		return fmt.Errorf("asa: capacity %dB holds no entries of %dB", c.CapacityBytes, c.EntryBytes)
	}
	switch c.Policy {
	case LRU, FIFO, Random:
	default:
		return fmt.Errorf("asa: unknown policy %d", int(c.Policy))
	}
	return nil
}

type slot struct {
	key        uint32
	prev, next int32 // intrusive recency/insertion list
	value      float64
}

const (
	idxEmpty = -1 // index cell never used this generation
	idxTomb  = -2 // index cell deleted this generation
)

// CAM is one core-local accumulator. Not safe for concurrent use: the
// parallel kernel instantiates one CAM per worker, mirroring the tid
// parameter in the paper's accumulate(tid, hash(k), k, v) call.
type CAM struct {
	cfg      Config
	capacity int

	slots      []slot
	used       int
	head, tail int32 // recency list: head = most recent, tail = eviction victim

	// Open-addressed key index over the slots, with generation stamps so
	// Reset is O(1). A real CAM compares all entries in parallel; the index
	// is a software stand-in with identical functional behaviour.
	index    []int32
	gen      []uint32
	curGen   uint32
	mask     uint32
	tombs    int
	overflow []accum.KV
	rndState uint64
	stats    accum.Stats
}

// New returns a CAM for the given configuration.
func New(cfg Config) (*CAM, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	capacity := cfg.Entries()
	idxSize := 4
	for idxSize < 4*capacity {
		idxSize <<= 1
	}
	c := &CAM{
		cfg:      cfg,
		capacity: capacity,
		slots:    make([]slot, capacity),
		head:     -1,
		tail:     -1,
		index:    make([]int32, idxSize),
		gen:      make([]uint32, idxSize),
		curGen:   1,
		mask:     uint32(idxSize - 1),
		rndState: 0x9e3779b97f4a7c15,
	}
	return c, nil
}

// MustNew is New for static configurations; it panics on invalid config.
func MustNew(cfg Config) *CAM {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the CAM configuration.
func (c *CAM) Config() Config { return c.cfg }

// Capacity returns the number of entries the CAM holds.
func (c *CAM) Capacity() int { return c.capacity }

// Len returns the number of live CAM entries.
func (c *CAM) Len() int { return c.used }

// OverflowLen returns the number of pairs currently in the overflow queue.
func (c *CAM) OverflowLen() int { return len(c.overflow) }

func hash32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

// probe locates key in the index. It returns the index position holding the
// key (found=true), or the position where it should be inserted.
func (c *CAM) probe(key uint32) (pos uint32, found bool) {
	pos = hash32(key) & c.mask
	insertAt := uint32(0xffffffff)
	for {
		if c.gen[pos] != c.curGen {
			if insertAt != 0xffffffff {
				return insertAt, false
			}
			return pos, false
		}
		s := c.index[pos]
		if s == idxTomb {
			if insertAt == 0xffffffff {
				insertAt = pos
			}
		} else if c.slots[s].key == key {
			return pos, true
		}
		pos = (pos + 1) & c.mask
	}
}

// Accumulate implements accum.Accumulator and models the single ASA
// instruction: CAM lookup + add, with LRU eviction to the overflow queue on
// capacity conflict.
func (c *CAM) Accumulate(key uint32, value float64) {
	c.stats.Accumulates++
	pos, found := c.probe(key)
	if found {
		c.stats.Hits++
		s := c.index[pos]
		c.slots[s].value += value
		if c.cfg.Policy == LRU {
			c.touch(s)
		}
		return
	}
	c.stats.Misses++
	var s int32
	if c.used < c.capacity {
		s = int32(c.used)
		c.used++
	} else {
		s = c.evict()
		// Eviction tombstoned an index cell; the insertion position may
		// have shifted, so re-probe.
		pos, _ = c.probe(key)
	}
	c.slots[s] = slot{key: key, value: value, prev: -1, next: -1}
	c.pushFront(s)
	if c.gen[pos] == c.curGen && c.index[pos] == idxTomb {
		c.tombs--
	}
	c.gen[pos] = c.curGen
	c.index[pos] = s
	c.stats.Inserts++
	if c.tombs > c.capacity {
		c.rebuildIndex()
	}
}

// Lookup implements accum.Accumulator: a read-only CAM probe. If the key has
// been evicted into the overflow queue, its partial sums there are included.
// The ASA kernel (Algorithm 2) never performs point lookups — it gathers and
// merges instead — so this exists only for interface completeness and tests.
func (c *CAM) Lookup(key uint32) (float64, bool) {
	c.stats.Lookups++
	sum, found := 0.0, false
	if pos, ok := c.probe(key); ok {
		sum += c.slots[c.index[pos]].value
		found = true
	}
	for _, kv := range c.overflow {
		if kv.Key == key {
			sum += kv.Value
			found = true
		}
	}
	return sum, found
}

// evict removes one entry per the replacement policy, appends it to the
// overflow queue, unlinks it from the recency list, and returns its slot.
func (c *CAM) evict() int32 {
	var victim int32
	switch c.cfg.Policy {
	case LRU, FIFO:
		victim = c.tail
	case Random:
		c.rndState ^= c.rndState << 13
		c.rndState ^= c.rndState >> 7
		c.rndState ^= c.rndState << 17
		victim = int32(c.rndState % uint64(c.capacity))
	}
	v := &c.slots[victim]
	c.overflow = append(c.overflow, accum.KV{Key: v.key, Value: v.value})
	c.stats.Evictions++
	c.stats.OverflowKV++
	// Tombstone the victim's index cell.
	pos, found := c.probe(v.key)
	if found {
		c.index[pos] = idxTomb
		c.tombs++
	}
	c.unlink(victim)
	return victim
}

func (c *CAM) rebuildIndex() {
	for i := range c.gen {
		c.gen[i] = 0
	}
	c.curGen = 1
	c.tombs = 0
	for s := c.head; s >= 0; s = c.slots[s].next {
		pos, _ := c.probe(c.slots[s].key)
		c.gen[pos] = c.curGen
		c.index[pos] = s
	}
}

// --- recency list plumbing ---

func (c *CAM) pushFront(s int32) {
	c.slots[s].prev = -1
	c.slots[s].next = c.head
	if c.head >= 0 {
		c.slots[c.head].prev = s
	}
	c.head = s
	if c.tail < 0 {
		c.tail = s
	}
}

func (c *CAM) unlink(s int32) {
	p, n := c.slots[s].prev, c.slots[s].next
	if p >= 0 {
		c.slots[p].next = n
	} else {
		c.head = n
	}
	if n >= 0 {
		c.slots[n].prev = p
	} else {
		c.tail = p
	}
}

func (c *CAM) touch(s int32) {
	if c.head == s {
		return
	}
	c.unlink(s)
	c.pushFront(s)
}

// GatherCAM implements the paper's gather_CAM(tid, nonoverflowed, overflowed)
// call: it appends the live CAM contents to non and the overflow queue
// contents to over, returning both. Neither buffer is merged or sorted.
func (c *CAM) GatherCAM(non, over []accum.KV) ([]accum.KV, []accum.KV) {
	c.stats.Gathers++
	for s := c.head; s >= 0; s = c.slots[s].next {
		non = append(non, accum.KV{Key: c.slots[s].key, Value: c.slots[s].value})
	}
	over = append(over, c.overflow...)
	c.stats.GatheredKV += uint64(c.used + len(c.overflow))
	return non, over
}

// SortAndMerge implements the paper's sort_and_merge step (Algorithm 2 lines
// 10–12): overflowed pairs are appended to the non-overflowed ones, the
// combined list is sorted by key, and values of equal keys are merged. The
// merged list is returned (it reuses non's backing array).
func (c *CAM) SortAndMerge(non, over []accum.KV) []accum.KV {
	if len(over) == 0 {
		return non
	}
	non = append(non, over...)
	//asalint:hotalloc sort_and_merge runs only when the CAM overflowed; one sort.Slice header is amortized over the whole overflow batch (Algorithm 2 lines 10-12)
	sort.Slice(non, func(i, j int) bool { return non[i].Key < non[j].Key })
	out := non[:0]
	for _, kv := range non {
		if len(out) > 0 && out[len(out)-1].Key == kv.Key {
			out[len(out)-1].Value += kv.Value
			continue
		}
		out = append(out, kv)
	}
	c.stats.MergedKV += uint64(len(non))
	return out
}

// Gather implements accum.Accumulator: gather_CAM followed, when the
// overflow queue is non-empty, by sort_and_merge — exactly the control flow
// of Algorithm 2.
func (c *CAM) Gather(dst []accum.KV) []accum.KV {
	start := len(dst)
	var over []accum.KV
	dst, over = c.GatherCAM(dst, nil)
	if len(over) > 0 {
		merged := c.SortAndMerge(dst[start:], over)
		dst = append(dst[:start], merged...)
	}
	return dst
}

// Reset implements accum.Accumulator. It clears the CAM and overflow queue
// in O(1) via generation stamps (a real CAM clears with a single broadcast).
func (c *CAM) Reset() {
	c.stats.Resets++
	c.curGen++
	if c.curGen == 0 { // generation wrap: scrub stamps
		for i := range c.gen {
			c.gen[i] = 0
		}
		c.curGen = 1
	}
	c.used = 0
	c.head, c.tail = -1, -1
	c.tombs = 0
	c.overflow = c.overflow[:0]
}

// Stats implements accum.Accumulator.
func (c *CAM) Stats() accum.Stats { return c.stats }

// Name implements accum.Accumulator.
func (c *CAM) Name() string { return "asa" }

var _ accum.Accumulator = (*CAM)(nil)
