package louvain

import (
	"math"
	"testing"

	"github.com/asamap/asamap/internal/gen"
	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/rng"
)

func twoTriangles(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(6, false)
	for _, e := range [][2]uint32{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}} {
		if err := b.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestTwoTriangles(t *testing.T) {
	res, err := Run(twoTriangles(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumModules != 2 {
		t.Fatalf("found %d modules, want 2 (%v)", res.NumModules, res.Membership)
	}
	if res.Membership[0] != res.Membership[1] || res.Membership[3] != res.Membership[5] {
		t.Fatalf("triangles split: %v", res.Membership)
	}
	if res.Modularity < 0.3 {
		t.Fatalf("modularity %g too low", res.Modularity)
	}
}

func TestModularityKnownValue(t *testing.T) {
	// Two disconnected edges, each its own community:
	// m=2, each community internal weight 1, total degree 2.
	// Q = 2*(1/4 - (2/4)^2)... compute: internal[c]/2m with internal counted
	// once = 1/2? Use the formula directly: Q = Σ w_in/m - (tot/2m)^2
	// = 2*(0.5 - 0.25) = 0.5.
	b := graph.NewBuilder(4, false)
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(2, 3, 1)
	g := b.Build()
	q := Modularity(g, []uint32{0, 0, 1, 1}, 1)
	if math.Abs(q-0.5) > 1e-12 {
		t.Fatalf("Q = %g, want 0.5", q)
	}
	// Everything in one community: Q = 1 - 1 = 0.
	q = Modularity(g, []uint32{0, 0, 0, 0}, 1)
	if math.Abs(q) > 1e-12 {
		t.Fatalf("single-community Q = %g, want 0", q)
	}
}

func TestModularityEdgeCases(t *testing.T) {
	g := graph.NewBuilder(0, false).Build()
	if Modularity(g, nil, 1) != 0 {
		t.Fatal("empty graph Q != 0")
	}
	g2 := graph.NewBuilder(3, false).Build()
	if Modularity(g2, []uint32{0, 1, 2}, 1) != 0 {
		t.Fatal("edgeless graph Q != 0")
	}
	if Modularity(g2, []uint32{0}, 1) != 0 {
		t.Fatal("bad membership length should yield 0")
	}
}

func TestSBMRecovery(t *testing.T) {
	g, planted, err := gen.SBM(gen.SBMParams{Sizes: []int{50, 50, 50}, PIn: 0.3, POut: 0.005}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumModules != 3 {
		t.Fatalf("found %d modules, want 3", res.NumModules)
	}
	agree, total := 0, 0
	for i := 0; i < len(planted); i += 5 {
		for j := i + 1; j < len(planted); j += 11 {
			total++
			if (planted[i] == planted[j]) == (res.Membership[i] == res.Membership[j]) {
				agree++
			}
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.95 {
		t.Fatalf("pair agreement %.2f", frac)
	}
}

func TestResolutionLimit(t *testing.T) {
	// A large ring of small cliques: classic Louvain (γ=1) is known to merge
	// adjacent cliques once the ring is long enough (Fortunato–Barthélemy);
	// this is the behaviour Infomap avoids. 30 cliques of size 3 suffice.
	g, _, err := gen.CliqueChain(30, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumModules >= 30 {
		t.Fatalf("Louvain found %d modules on a 30-clique ring; expected the resolution limit to merge some cliques", res.NumModules)
	}
}

func TestDeterminism(t *testing.T) {
	g, _, err := gen.SBM(gen.SBMParams{Sizes: []int{40, 40}, PIn: 0.3, POut: 0.02}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Modularity != r2.Modularity || r1.NumModules != r2.NumModules {
		t.Fatal("nondeterministic results with fixed seed")
	}
	for i := range r1.Membership {
		if r1.Membership[i] != r2.Membership[i] {
			t.Fatalf("membership differs at %d", i)
		}
	}
}

func TestValidation(t *testing.T) {
	g := twoTriangles(t)
	bad := DefaultOptions()
	bad.MaxSweeps = 0
	if _, err := Run(g, bad); err == nil {
		t.Fatal("MaxSweeps=0 accepted")
	}
	bad = DefaultOptions()
	bad.Resolution = 0
	if _, err := Run(g, bad); err == nil {
		t.Fatal("Resolution=0 accepted")
	}
	bad = DefaultOptions()
	bad.MinImprovement = -1
	if _, err := Run(g, bad); err == nil {
		t.Fatal("negative MinImprovement accepted")
	}
	db := graph.NewBuilder(2, true)
	_ = db.AddEdge(0, 1, 1)
	if _, err := Run(db.Build(), DefaultOptions()); err == nil {
		t.Fatal("directed graph accepted")
	}
}

func TestEmptyAndEdgeless(t *testing.T) {
	res, err := Run(graph.NewBuilder(0, false).Build(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Membership) != 0 {
		t.Fatal("empty graph produced membership")
	}
	res, err = Run(graph.NewBuilder(4, false).Build(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumModules != 4 {
		t.Fatalf("edgeless graph: %d modules, want 4 singletons", res.NumModules)
	}
}

func TestHighResolutionSplitsMore(t *testing.T) {
	g, _, err := gen.SBM(gen.SBMParams{Sizes: []int{40, 40, 40}, PIn: 0.3, POut: 0.02}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	lo := DefaultOptions()
	lo.Resolution = 0.3
	hi := DefaultOptions()
	hi.Resolution = 4.0
	rl, err := Run(g, lo)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := Run(g, hi)
	if err != nil {
		t.Fatal(err)
	}
	if rh.NumModules < rl.NumModules {
		t.Fatalf("higher resolution found fewer modules: %d vs %d", rh.NumModules, rl.NumModules)
	}
}

func TestModularityImprovesOverSingletons(t *testing.T) {
	g, _, err := gen.LFR(gen.DefaultLFR(400, 0.2), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	singles := make([]uint32, g.N())
	for i := range singles {
		singles[i] = uint32(i)
	}
	if res.Modularity <= Modularity(g, singles, 1) {
		t.Fatalf("Louvain did not improve over singletons: %g", res.Modularity)
	}
}
