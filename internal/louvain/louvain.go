// Package louvain implements the Louvain method of Blondel et al. — the
// canonical modularity-maximizing community-detection algorithm. The paper
// positions Infomap against modularity-based methods (better LFR quality, no
// resolution limit), so this baseline exists for the quality-comparison
// experiments (X1 in DESIGN.md) and the resolution-limit demonstration.
//
// The implementation is the standard two-phase scheme: local moving of
// vertices to the neighboring community with the largest modularity gain,
// then contraction of communities to super vertices, repeated until the
// modularity stops improving. Undirected graphs only.
package louvain

import (
	"fmt"

	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/rng"
)

// Options configures a run.
type Options struct {
	MaxSweeps      int     // local-moving sweeps per level
	MaxLevels      int     // contraction depth bound
	MinImprovement float64 // modularity gain threshold to continue
	Seed           uint64  // vertex visitation order seed
	Resolution     float64 // resolution parameter gamma (1 = classic)
}

// DefaultOptions returns the classic parameterization.
func DefaultOptions() Options {
	return Options{MaxSweeps: 20, MaxLevels: 30, MinImprovement: 1e-9, Seed: 1, Resolution: 1}
}

func (o Options) validate() error {
	if o.MaxSweeps < 1 || o.MaxLevels < 1 {
		return fmt.Errorf("louvain: MaxSweeps/MaxLevels must be >= 1")
	}
	if o.MinImprovement < 0 {
		return fmt.Errorf("louvain: MinImprovement %g < 0", o.MinImprovement)
	}
	if o.Resolution <= 0 {
		return fmt.Errorf("louvain: Resolution %g must be positive", o.Resolution)
	}
	return nil
}

// Result is the outcome of a Run.
type Result struct {
	Membership []uint32 // final community per original vertex (dense IDs)
	NumModules int
	Modularity float64
	Levels     int
	Sweeps     int
}

// Run detects communities by modularity maximization.
func Run(g *graph.Graph, opt Options) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if g.Directed() {
		return nil, fmt.Errorf("louvain: directed graphs not supported")
	}
	res := &Result{Membership: make([]uint32, g.N())}
	for i := range res.Membership {
		res.Membership[i] = uint32(i)
	}
	if g.N() == 0 {
		return res, nil
	}

	r := rng.New(opt.Seed)
	cur := g
	for level := 0; level < opt.MaxLevels; level++ {
		membership, sweeps, improved := localMoving(cur, opt, r)
		res.Levels++
		res.Sweeps += sweeps
		k := compact(membership)
		if !improved || k == cur.N() {
			break
		}
		for v := range res.Membership {
			res.Membership[v] = membership[res.Membership[v]]
		}
		if k == 1 {
			break
		}
		next, err := cur.Contract(membership, k)
		if err != nil {
			return nil, err
		}
		cur = next
	}

	mem := make([]uint32, len(res.Membership))
	copy(mem, res.Membership)
	res.NumModules = compact(mem)
	copy(res.Membership, mem)
	res.Modularity = Modularity(g, res.Membership, opt.Resolution)
	return res, nil
}

// localMoving runs move sweeps on one level, returning the membership, the
// number of sweeps, and whether any move was made.
func localMoving(g *graph.Graph, opt Options, r *rng.RNG) ([]uint32, int, bool) {
	n := g.N()
	membership := make([]uint32, n)
	commTotal := make([]float64, n)    // Σ strengths per community
	commInternal := make([]float64, n) // Σ internal weight ×2 per community (unused for gain but kept for tests)
	strength := make([]float64, n)
	selfW := make([]float64, n)
	for v := 0; v < n; v++ {
		membership[v] = uint32(v)
		strength[v] = g.OutStrength(v)
		if w, ok := g.ArcWeight(v, v); ok {
			selfW[v] = w
		}
		commTotal[v] = strength[v]
		commInternal[v] = selfW[v]
	}
	twoM := g.TotalWeight() + g.SelfLoopWeight() // undirected: each edge twice, self-loops once; 2m counts self twice
	if twoM == 0 {
		return membership, 0, false
	}

	order := r.Perm(n)
	neighW := make(map[uint32]float64, 16)
	var keys []uint32 // deterministic iteration order over neighW
	anyMove := false
	sweeps := 0
	for sweep := 0; sweep < opt.MaxSweeps; sweep++ {
		moves := 0
		sweeps++
		for _, v := range order {
			old := membership[v]
			// Accumulate edge weight to each neighboring community, keeping
			// first-touch order so tie-breaking is deterministic (Go map
			// iteration order is randomized).
			clear(neighW)
			keys = keys[:0]
			nb, ws := g.OutNeighbors(v), g.OutWeights(v)
			for i, t := range nb {
				if int(t) == v {
					continue
				}
				c := membership[t]
				if w, seen := neighW[c]; seen {
					neighW[c] = w + ws[i]
				} else {
					neighW[c] = ws[i]
					keys = append(keys, c)
				}
			}
			// Remove v from its community.
			commTotal[old] -= strength[v]
			commInternal[old] -= 2*neighW[old] + selfW[v]

			// Gain of joining community c (constant terms dropped):
			//   ΔQ ∝ w(v,c) − γ·s_v·Σtot(c)/(2m)
			best := old
			bestGain := neighW[old] - opt.Resolution*strength[v]*commTotal[old]/twoM
			for _, c := range keys {
				if c == old {
					continue
				}
				gain := neighW[c] - opt.Resolution*strength[v]*commTotal[c]/twoM
				if gain > bestGain+1e-12 {
					bestGain = gain
					best = c
				}
			}
			// Re-insert.
			membership[v] = best
			commTotal[best] += strength[v]
			commInternal[best] += 2*neighW[best] + selfW[v]
			if best != old {
				moves++
				anyMove = true
			}
		}
		if moves == 0 {
			break
		}
	}
	return membership, sweeps, anyMove
}

func compact(membership []uint32) int {
	remap := make(map[uint32]uint32)
	for i, m := range membership {
		id, ok := remap[m]
		if !ok {
			id = uint32(len(remap))
			remap[m] = id
		}
		membership[i] = id
	}
	return len(remap)
}

// Modularity returns Newman's modularity Q of the partition at resolution
// gamma: Q = Σ_c [ w_in(c)/m − γ·(Σtot(c)/(2m))² ] for undirected graphs,
// where w_in counts each internal edge once (self-loops once) and m is the
// total edge weight.
func Modularity(g *graph.Graph, membership []uint32, gamma float64) float64 {
	if g.N() == 0 || len(membership) != g.N() {
		return 0
	}
	twoM := g.TotalWeight() + g.SelfLoopWeight()
	if twoM == 0 {
		return 0
	}
	k := 0
	for _, m := range membership {
		if int(m)+1 > k {
			k = int(m) + 1
		}
	}
	internal := make([]float64, k) // 2×internal weight
	total := make([]float64, k)
	for v := 0; v < g.N(); v++ {
		c := membership[v]
		s := g.OutStrength(v)
		if w, ok := g.ArcWeight(v, v); ok {
			s += w // self-loop counts twice toward degree
		}
		total[c] += s
		nb, ws := g.OutNeighbors(v), g.OutWeights(v)
		for i, t := range nb {
			if membership[t] == c {
				if int(t) == v {
					internal[c] += 2 * ws[i]
				} else {
					internal[c] += ws[i]
				}
			}
		}
	}
	q := 0.0
	for c := 0; c < k; c++ {
		q += internal[c]/twoM - gamma*(total[c]/twoM)*(total[c]/twoM)
	}
	return q
}
