package infomap

import "github.com/asamap/asamap/internal/rng"

func newRand(seed uint64) *rng.RNG { return rng.New(seed) }
