package infomap

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"github.com/asamap/asamap/internal/gen"
	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/obs"
	"github.com/asamap/asamap/internal/rng"
)

// traceGraph builds a small SBM with clear communities for trace tests.
func traceGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, _, err := gen.SBM(gen.SBMParams{Sizes: []int{30, 30, 30}, PIn: 0.4, POut: 0.02}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// runTraced runs detection under a fresh tracer and returns the canonical
// span-tree JSON plus the result.
func runTraced(t *testing.T, g *graph.Graph, workers int, policy SchedPolicy) ([]byte, *Result) {
	return runTracedKind(t, g, ASA, workers, policy)
}

func runTracedKind(t *testing.T, g *graph.Graph, kind AccumKind, workers int, policy SchedPolicy) ([]byte, *Result) {
	t.Helper()
	tr := obs.New(obs.Config{Seed: 42})
	root := tr.Begin("detect")
	opt := DefaultOptions()
	opt.Kind = kind
	opt.Workers = workers
	opt.Sched = policy
	opt.Seed = 7
	opt.Trace = root
	res, err := RunContext(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	j, err := tr.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return j, res
}

// TestTraceCanonicalInvariance is the observability determinism contract:
// identical seeds produce byte-identical canonical span trees across worker
// counts and scheduling policies — per-worker spans and dispatch-shape
// attributes are volatile and excluded.
func TestTraceCanonicalInvariance(t *testing.T) {
	g := traceGraph(t)
	base, res1 := runTraced(t, g, 1, SchedSteal)
	for _, tc := range []struct {
		name    string
		workers int
		policy  SchedPolicy
	}{
		{"4-steal", 4, SchedSteal},
		{"4-static", 4, SchedStatic},
		{"3-steal", 3, SchedSteal},
	} {
		j, res := runTraced(t, g, tc.workers, tc.policy)
		if !bytes.Equal(base, j) {
			t.Errorf("%s: canonical span tree differs from 1-worker baseline:\n--- base ---\n%s\n--- %s ---\n%s",
				tc.name, base, tc.name, j)
		}
		if res.Codelength != res1.Codelength {
			t.Errorf("%s: codelength differs (%v vs %v) — result determinism broken, trace comparison moot",
				tc.name, res.Codelength, res1.Codelength)
		}
	}
}

// TestTraceCanonicalInvarianceHashGraph: the trace contract extends to the
// HashGraph backend — sweep spans carry the resolve-pass counters
// (hg_binned_kv / hg_scattered_kv / hg_bin_merged_kv), which are per-session
// sums and therefore schedule-invariant, and the canonical tree stays
// byte-identical across worker counts and schedulers.
func TestTraceCanonicalInvarianceHashGraph(t *testing.T) {
	g := traceGraph(t)
	base, res1 := runTracedKind(t, g, HashGraph, 1, SchedStatic)
	for _, tc := range []struct {
		name    string
		workers int
		policy  SchedPolicy
	}{
		{"4-steal", 4, SchedSteal},
		{"4-static", 4, SchedStatic},
	} {
		j, res := runTracedKind(t, g, HashGraph, tc.workers, tc.policy)
		if !bytes.Equal(base, j) {
			t.Errorf("%s: canonical span tree differs from 1-worker baseline:\n--- base ---\n%s\n--- %s ---\n%s",
				tc.name, base, tc.name, j)
		}
		if res.Codelength != res1.Codelength {
			t.Errorf("%s: codelength differs (%v vs %v)", tc.name, res.Codelength, res1.Codelength)
		}
	}
	var roots []*obs.TreeNode
	if err := json.Unmarshal(base, &roots); err != nil {
		t.Fatal(err)
	}
	var sweep *obs.TreeNode
	var walk func(n *obs.TreeNode)
	walk = func(n *obs.TreeNode) {
		if n.Name == "sweep" && sweep == nil {
			sweep = n
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	if sweep == nil {
		t.Fatal("no sweep span in hashgraph trace")
	}
	attrs := map[string]string{}
	for _, a := range sweep.Attrs {
		attrs[a.Key] = a.Value
	}
	for _, key := range []string{"hg_binned_kv", "hg_scattered_kv", "hg_bin_merged_kv"} {
		if attrs[key] == "" {
			t.Errorf("sweep span missing %s attr: %+v", key, sweep.Attrs)
		}
	}
	if attrs["hg_binned_kv"] == "0" {
		t.Error("hashgraph run recorded zero binned pairs — resolve counters not wired")
	}
}

// TestTraceNesting checks the exported structure: detect → run → {PageRank,
// level → {sweep → {FindBestCommunity, UpdateMembers}, Convert2SuperNode}},
// with the accumulator telemetry attached where the issue specifies.
func TestTraceNesting(t *testing.T) {
	g := traceGraph(t)
	j, res := runTraced(t, g, 2, SchedSteal)
	var roots []*obs.TreeNode
	if err := json.Unmarshal(j, &roots); err != nil {
		t.Fatal(err)
	}
	if len(roots) != 1 || roots[0].Name != "detect" {
		t.Fatalf("want one 'detect' root, got %+v", roots)
	}
	if len(roots[0].Children) != 1 || roots[0].Children[0].Name != "run" {
		t.Fatalf("want a single 'run' child under the root, got %+v", roots[0].Children)
	}
	run := roots[0].Children[0]
	attr := func(n *obs.TreeNode, key string) string {
		for _, a := range n.Attrs {
			if a.Key == key {
				return a.Value
			}
		}
		return ""
	}
	if attr(run, "seed") != "7" || attr(run, "kind") != "asa" {
		t.Errorf("run attrs wrong: %+v", run.Attrs)
	}
	if attr(run, "workers") != "" || attr(run, "sched") != "" {
		t.Error("volatile workers/sched attrs leaked into the canonical tree")
	}
	if len(run.Children) == 0 || run.Children[0].Name != "PageRank" {
		t.Fatalf("first run child should be PageRank, got %+v", run.Children)
	}
	levels, sweeps := 0, 0
	for _, c := range run.Children[1:] {
		if c.Name != "level" {
			t.Fatalf("non-level child under run: %s", c.Name)
		}
		levels++
		for _, sc := range c.Children {
			switch sc.Name {
			case "sweep":
				sweeps++
				if len(sc.Children) != 2 || sc.Children[0].Name != "FindBestCommunity" || sc.Children[1].Name != "UpdateMembers" {
					t.Fatalf("sweep children wrong: %+v", sc.Children)
				}
				if len(sc.Children[0].Children) != 0 {
					t.Error("volatile worker spans leaked under FindBestCommunity")
				}
				if attr(sc, "cam_hits") == "" || attr(sc, "codelength") == "" {
					t.Errorf("sweep missing telemetry attrs: %+v", sc.Attrs)
				}
				if attr(sc, "steals") != "" || attr(sc, "imbalance") != "" {
					t.Error("volatile dispatch attrs leaked into sweep")
				}
			case "Convert2SuperNode":
			default:
				t.Fatalf("unexpected child under level: %s", sc.Name)
			}
		}
	}
	if levels != res.Levels {
		t.Errorf("trace has %d level spans, result reports %d", levels, res.Levels)
	}
	if sweeps != res.Sweeps {
		t.Errorf("trace has %d sweep spans, result reports %d", sweeps, res.Sweeps)
	}
}

// TestAccumEventFold: the breakdown's named event counters equal the summed
// per-worker accumulator stats — the plumbing /metrics relies on.
func TestAccumEventFold(t *testing.T) {
	g := traceGraph(t)
	opt := DefaultOptions()
	opt.Kind = ASA
	opt.Workers = 2
	res, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	total := res.TotalStats()
	bd := res.Breakdown
	if total.Accumulates == 0 || total.Hits == 0 {
		t.Fatalf("test graph produced no accumulator traffic: %+v", total)
	}
	for name, want := range map[string]uint64{
		"AccumAccumulates": total.Accumulates,
		"AccumHits":        total.Hits,
		"AccumMisses":      total.Misses,
		"AccumEvictions":   total.Evictions,
		"AccumOverflowKV":  total.OverflowKV,
		"AccumGatheredKV":  total.GatheredKV,
	} {
		if got := bd.Events(name); got != want {
			t.Errorf("event %s = %d, want %d", name, got, want)
		}
	}
	// Per-level CAM folds sum to the run totals for the fields they track.
	var levelHits uint64
	for _, name := range bd.EventNames() {
		if len(name) > 6 && name[:5] == "Level" {
			if idx := len("LevelN/"); name[idx:] == "AccumHits" {
				levelHits += bd.Events(name)
			}
		}
	}
	if levelHits != total.Hits {
		t.Errorf("per-level AccumHits sum to %d, run total is %d", levelHits, total.Hits)
	}
}
