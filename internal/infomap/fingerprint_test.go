package infomap

import (
	"testing"

	"github.com/asamap/asamap/internal/asa"
)

func TestFingerprintStable(t *testing.T) {
	a := DefaultOptions().Fingerprint()
	b := DefaultOptions().Fingerprint()
	if a != b {
		t.Fatalf("identical options fingerprint differently: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("fingerprint length %d, want 64 hex chars", len(a))
	}
}

func TestFingerprintIgnoresExecutionConfig(t *testing.T) {
	// Workers and Sched cannot change result bytes (bit-determinism across
	// worker counts and steal schedules), so they must not fragment the key.
	base := DefaultOptions()
	w8 := base
	w8.Workers = 8
	if base.Fingerprint() != w8.Fingerprint() {
		t.Fatal("Workers changed the fingerprint")
	}
	st := base
	st.Sched = SchedStatic
	if base.Fingerprint() != st.Fingerprint() {
		t.Fatal("Sched changed the fingerprint")
	}
}

func TestFingerprintSensitiveToResultRelevantFields(t *testing.T) {
	base := DefaultOptions()
	mutate := map[string]func(*Options){
		"Kind":           func(o *Options) { o.Kind = ASA },
		"ASAConfig":      func(o *Options) { o.ASAConfig = asa.Config{CapacityBytes: 1024, EntryBytes: 16, Policy: asa.LRU} },
		"MaxSweeps":      func(o *Options) { o.MaxSweeps = 5 },
		"MinImprovement": func(o *Options) { o.MinImprovement = 1e-6 },
		"MaxLevels":      func(o *Options) { o.MaxLevels = 2 },
		"OuterIters":     func(o *Options) { o.OuterIters = 1 },
		"Seed":           func(o *Options) { o.Seed = 42 },
		"Damping":        func(o *Options) { o.Damping = 0.9 },
		"Teleport":       func(o *Options) { o.Teleport = TeleportUnrecorded },
	}
	seen := map[string]string{base.Fingerprint(): "base"}
	for name, fn := range mutate {
		o := base
		fn(&o)
		fp := o.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("mutating %s collides with %s", name, prev)
		}
		seen[fp] = name
	}
}
