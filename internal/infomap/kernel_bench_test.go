package infomap

import (
	"fmt"
	"testing"

	"github.com/asamap/asamap/internal/accum"
	"github.com/asamap/asamap/internal/rng"
)

// BenchmarkSortKVHub covers sortKV from the tiny candidate lists of ordinary
// vertices up to degree-10⁴ hubs, where the former pure insertion sort went
// quadratic (the O(d²) satellite fix of the scheduler PR).
func BenchmarkSortKVHub(b *testing.B) {
	for _, n := range []int{8, 64, 1024, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := rng.New(uint64(n))
			src := make([]accum.KV, n)
			for i := range src {
				src[i] = accum.KV{Key: r.Uint32(), Value: 1}
			}
			buf := make([]accum.KV, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, src)
				sortKV(buf)
			}
		})
	}
}

// TestSortKVAboveThreshold pins that the SortFunc path sorts correctly and
// agrees with the insertion-sort path.
func TestSortKVAboveThreshold(t *testing.T) {
	r := rng.New(3)
	for _, n := range []int{0, 1, sortKVThreshold, sortKVThreshold + 1, 500} {
		kvs := make([]accum.KV, n)
		for i := range kvs {
			kvs[i] = accum.KV{Key: r.Uint32() % 64, Value: float64(i)}
		}
		sortKV(kvs)
		for i := 1; i < len(kvs); i++ {
			if kvs[i-1].Key > kvs[i].Key {
				t.Fatalf("n=%d: not sorted at %d", n, i)
			}
		}
	}
}
