package infomap

import (
	"fmt"
	"testing"

	"github.com/asamap/asamap/internal/gen"
	"github.com/asamap/asamap/internal/rng"
)

// BenchmarkSchedSweep runs the full optimizer on a power-law (R-MAT) graph
// under both scheduling policies — the end-to-end number behind the
// static-vs-steal comparison in BENCH_sched.json.
func BenchmarkSchedSweep(b *testing.B) {
	g, err := gen.RMAT(13, 8, rng.New(5))
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		for _, policy := range []SchedPolicy{SchedStatic, SchedSteal} {
			b.Run(fmt.Sprintf("workers=%d/%v", workers, policy), func(b *testing.B) {
				opt := DefaultOptions()
				opt.Workers = workers
				opt.Sched = policy
				opt.OuterIters = 1
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := Run(g, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
