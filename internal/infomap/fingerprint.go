package infomap

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// fingerprintVersion tags the byte layout of Fingerprint so the encoding can
// change without aliasing digests cached under an older scheme.
const fingerprintVersion = "asamap-opt-v1\n"

// Fingerprint returns a stable hex digest over every option field that can
// change the bytes of a result. Together with a graph's CanonicalHash and
// the Seed it identifies a run completely, which is what makes detection
// results cacheable: same (graph hash, fingerprint) in, same bytes out.
//
// Workers and Sched are deliberately excluded: the sweep scheduler
// guarantees bit-identical results across any worker count and scheduling
// policy for a fixed Seed (see internal/sched and the determinism tests), so
// including them would only fragment the cache across execution
// configurations that cannot disagree. The Seed IS included — it selects the
// visitation order and therefore the result.
func (o Options) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }

	h.Write([]byte(fingerprintVersion))
	u64(uint64(o.Kind))
	// ASAConfig shapes accumulation order on overflow and is therefore
	// result-relevant for the ASA backend; hash it unconditionally so the
	// encoding does not depend on Kind.
	u64(uint64(o.ASAConfig.CapacityBytes))
	u64(uint64(o.ASAConfig.EntryBytes))
	u64(uint64(o.ASAConfig.Policy))
	u64(uint64(o.MaxSweeps))
	f64(o.MinImprovement)
	u64(uint64(o.MaxLevels))
	u64(uint64(o.OuterIters))
	u64(o.Seed)
	f64(o.Damping)
	u64(uint64(o.Teleport))

	return hex.EncodeToString(h.Sum(nil))
}
