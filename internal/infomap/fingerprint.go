package infomap

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// fingerprintVersion tags the byte layout of Fingerprint so the encoding can
// change without aliasing digests cached under an older scheme.
const fingerprintVersion = "asamap-opt-v1\n"

// fingerprintExcluded lists the Options fields that Fingerprint deliberately
// does NOT hash, each with the reason it cannot change result bytes. The
// fingerprint analyzer (cmd/asalint) checks this list against the struct:
// a field that is neither hashed nor listed here fails the lint build.
var fingerprintExcluded = map[string]string{
	"Workers": "bit-identical results across any worker count for a fixed Seed (sweep scheduler contract)",
	"Sched":   "bit-identical results across scheduling policies for a fixed Seed (sweep scheduler contract)",
	"Clock":   "clock only feeds timing telemetry (Elapsed, SweepLog walls), never the partition",
	"Trace":   "span tracing is write-only telemetry (observed durations and event counts), never an input to the partition",
}

// Fingerprint returns a stable hex digest over every option field that can
// change the bytes of a result. Together with a graph's CanonicalHash and
// the Seed it identifies a run completely, which is what makes detection
// results cacheable: same (graph hash, fingerprint) in, same bytes out.
//
// Every Options field must either be hashed here or appear in
// fingerprintExcluded with a justification — the fingerprint analyzer
// (cmd/asalint) enforces that invariant, so adding a result-relevant field
// without extending the digest fails the lint build instead of silently
// aliasing cache entries. The Seed IS included — it selects the visitation
// order and therefore the result.
func (o Options) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }

	h.Write([]byte(fingerprintVersion))
	u64(uint64(o.Kind))
	// ASAConfig shapes accumulation order on overflow and is therefore
	// result-relevant for the ASA backend; hash it unconditionally so the
	// encoding does not depend on Kind.
	u64(uint64(o.ASAConfig.CapacityBytes))
	u64(uint64(o.ASAConfig.EntryBytes))
	u64(uint64(o.ASAConfig.Policy))
	u64(uint64(o.MaxSweeps))
	f64(o.MinImprovement)
	u64(uint64(o.MaxLevels))
	u64(uint64(o.OuterIters))
	u64(o.Seed)
	f64(o.Damping)
	u64(uint64(o.Teleport))
	// The warm-start seed partition and its frontier restriction change
	// which vertices are re-optimized and from where, so they are fully
	// result-relevant. A nil WarmStart (cold run) is distinguished from an
	// empty-but-present one by the leading presence byte.
	if o.WarmStart == nil {
		h.Write([]byte{0})
	} else {
		h.Write([]byte{1})
		u64(uint64(len(o.WarmStart)))
		for _, m := range o.WarmStart {
			u64(uint64(m))
		}
	}
	u64(uint64(len(o.FrontierSeeds)))
	for _, s := range o.FrontierSeeds {
		u64(uint64(s))
	}
	u64(uint64(o.FrontierHops))

	return hex.EncodeToString(h.Sum(nil))
}
