package infomap

import (
	"fmt"
	"math"
	"testing"

	"github.com/asamap/asamap/internal/gen"
	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/rng"
)

// lfrPair builds an undirected LFR benchmark graph and a directed variant of
// it (both arcs of every edge, so PageRank and the directed code paths run
// on a graph with real community structure).
func lfrPair(t *testing.T) (und, dir *graph.Graph) {
	t.Helper()
	g, _, err := gen.LFR(gen.DefaultLFR(600, 0.25), rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(g.N(), true)
	for _, e := range g.Edges() {
		if e.From > e.To {
			continue // undirected Edges lists both orientations; keep one
		}
		if err := b.AddEdge(e.From, e.To, e.Weight); err != nil {
			t.Fatal(err)
		}
		if e.From != e.To {
			if err := b.AddEdge(e.To, e.From, e.Weight); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g, b.Build()
}

// TestDeterministicAcrossWorkers is the scheduler's central correctness
// claim: for a fixed seed, the result — membership and the exact codelength
// bits — must not depend on the worker count, the scheduling policy, or the
// (nondeterministic) steal schedule. One worker with static chunking is the
// reference; every other configuration, and a repeat run of each, must
// reproduce it bit for bit.
func TestDeterministicAcrossWorkers(t *testing.T) {
	und, dir := lfrPair(t)
	for _, kind := range []AccumKind{Baseline, ASA, HashGraph} {
		for _, tc := range []struct {
			name string
			g    *graph.Graph
		}{
			{"undirected", und},
			{"directed", dir},
		} {
			t.Run(fmt.Sprintf("%v/%s", kind, tc.name), func(t *testing.T) {
				opt := DefaultOptions()
				opt.Kind = kind
				opt.Workers = 1
				opt.Sched = SchedStatic
				ref, err := Run(tc.g, opt)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 2, 4, 8} {
					for _, policy := range []SchedPolicy{SchedSteal, SchedStatic} {
						for rep := 0; rep < 2; rep++ {
							opt := DefaultOptions()
							opt.Kind = kind
							opt.Workers = workers
							opt.Sched = policy
							res, err := Run(tc.g, opt)
							if err != nil {
								t.Fatal(err)
							}
							label := fmt.Sprintf("workers=%d sched=%v rep=%d", workers, policy, rep)
							if math.Float64bits(res.Codelength) != math.Float64bits(ref.Codelength) {
								t.Fatalf("%s: codelength %.17g != reference %.17g",
									label, res.Codelength, ref.Codelength)
							}
							for v := range res.Membership {
								if res.Membership[v] != ref.Membership[v] {
									t.Fatalf("%s: membership diverges at vertex %d: %d != %d",
										label, v, res.Membership[v], ref.Membership[v])
								}
							}
						}
					}
				}
			})
		}
	}
}

// TestHashGraphMatchesBaseline: every accumulator backend computes the same
// sums, so HashGraph runs must partition byte-identically to the chained
// Baseline table — across worker counts and both schedulers. This is the
// cross-backend half of the determinism contract: switching the accumulator
// is a pure performance decision, never a quality one.
func TestHashGraphMatchesBaseline(t *testing.T) {
	und, dir := lfrPair(t)
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"undirected", und},
		{"directed", dir},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opt := DefaultOptions()
			opt.Kind = Baseline
			opt.Workers = 1
			opt.Sched = SchedStatic
			ref, err := Run(tc.g, opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				for _, policy := range []SchedPolicy{SchedStatic, SchedSteal} {
					opt := DefaultOptions()
					opt.Kind = HashGraph
					opt.Workers = workers
					opt.Sched = policy
					res, err := Run(tc.g, opt)
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("workers=%d sched=%v", workers, policy)
					if math.Float64bits(res.Codelength) != math.Float64bits(ref.Codelength) {
						t.Fatalf("%s: hashgraph codelength %.17g != baseline %.17g",
							label, res.Codelength, ref.Codelength)
					}
					for v := range res.Membership {
						if res.Membership[v] != ref.Membership[v] {
							t.Fatalf("%s: membership diverges from baseline at vertex %d",
								label, v)
						}
					}
					st := res.TotalStats()
					if st.ChainHops != 0 || st.Rehashes != 0 {
						t.Fatalf("%s: hashgraph reported probe events: %+v", label, st)
					}
				}
			}
		})
	}
}

// TestCapacityHintAvoidsRehash: worker accumulators are sized from the
// graph's max degree, so a single-level Baseline run — where every session
// holds at most maxdeg distinct keys — must never rehash. A hub graph (one
// vertex adjacent to everything) is the worst case the old fixed hint of 64
// lost on.
func TestCapacityHintAvoidsRehash(t *testing.T) {
	const n = 600
	b := graph.NewBuilder(n, false)
	for v := 1; v < n; v++ {
		if err := b.AddEdge(0, uint32(v), 1); err != nil {
			t.Fatal(err)
		}
		// A sparse ring so communities beyond the star exist.
		if err := b.AddEdge(uint32(v), uint32(v%(n-1)+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	if g.MaxDegree() < n-1 {
		t.Fatalf("hub degree %d, want >= %d", g.MaxDegree(), n-1)
	}
	opt := DefaultOptions()
	opt.Kind = Baseline
	opt.MaxLevels = 1 // contraction could exceed the leaf-level degree bound
	res, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if st := res.TotalStats(); st.Rehashes != 0 {
		t.Fatalf("degree-derived capacity hint still rehashed %d times: %+v", st.Rehashes, st)
	}
}

// TestDeterministicRepeatedRuns re-runs the same configuration several times
// at a multi-worker setting where steal schedules genuinely vary.
func TestDeterministicRepeatedRuns(t *testing.T) {
	und, _ := lfrPair(t)
	opt := DefaultOptions()
	opt.Workers = 4
	first, err := Run(und, opt)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		res, err := Run(und, opt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(res.Codelength) != math.Float64bits(first.Codelength) {
			t.Fatalf("rep %d: codelength drifted: %.17g != %.17g", rep, res.Codelength, first.Codelength)
		}
		for v := range res.Membership {
			if res.Membership[v] != first.Membership[v] {
				t.Fatalf("rep %d: membership diverges at vertex %d", rep, v)
			}
		}
	}
}
