package infomap

import (
	"fmt"
	"math"
	"testing"

	"github.com/asamap/asamap/internal/gen"
	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/rng"
)

// lfrPair builds an undirected LFR benchmark graph and a directed variant of
// it (both arcs of every edge, so PageRank and the directed code paths run
// on a graph with real community structure).
func lfrPair(t *testing.T) (und, dir *graph.Graph) {
	t.Helper()
	g, _, err := gen.LFR(gen.DefaultLFR(600, 0.25), rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(g.N(), true)
	for _, e := range g.Edges() {
		if e.From > e.To {
			continue // undirected Edges lists both orientations; keep one
		}
		if err := b.AddEdge(e.From, e.To, e.Weight); err != nil {
			t.Fatal(err)
		}
		if e.From != e.To {
			if err := b.AddEdge(e.To, e.From, e.Weight); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g, b.Build()
}

// TestDeterministicAcrossWorkers is the scheduler's central correctness
// claim: for a fixed seed, the result — membership and the exact codelength
// bits — must not depend on the worker count, the scheduling policy, or the
// (nondeterministic) steal schedule. One worker with static chunking is the
// reference; every other configuration, and a repeat run of each, must
// reproduce it bit for bit.
func TestDeterministicAcrossWorkers(t *testing.T) {
	und, dir := lfrPair(t)
	for _, kind := range []AccumKind{Baseline, ASA} {
		for _, tc := range []struct {
			name string
			g    *graph.Graph
		}{
			{"undirected", und},
			{"directed", dir},
		} {
			t.Run(fmt.Sprintf("%v/%s", kind, tc.name), func(t *testing.T) {
				opt := DefaultOptions()
				opt.Kind = kind
				opt.Workers = 1
				opt.Sched = SchedStatic
				ref, err := Run(tc.g, opt)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 2, 4, 8} {
					for _, policy := range []SchedPolicy{SchedSteal, SchedStatic} {
						for rep := 0; rep < 2; rep++ {
							opt := DefaultOptions()
							opt.Kind = kind
							opt.Workers = workers
							opt.Sched = policy
							res, err := Run(tc.g, opt)
							if err != nil {
								t.Fatal(err)
							}
							label := fmt.Sprintf("workers=%d sched=%v rep=%d", workers, policy, rep)
							if math.Float64bits(res.Codelength) != math.Float64bits(ref.Codelength) {
								t.Fatalf("%s: codelength %.17g != reference %.17g",
									label, res.Codelength, ref.Codelength)
							}
							for v := range res.Membership {
								if res.Membership[v] != ref.Membership[v] {
									t.Fatalf("%s: membership diverges at vertex %d: %d != %d",
										label, v, res.Membership[v], ref.Membership[v])
								}
							}
						}
					}
				}
			})
		}
	}
}

// TestDeterministicRepeatedRuns re-runs the same configuration several times
// at a multi-worker setting where steal schedules genuinely vary.
func TestDeterministicRepeatedRuns(t *testing.T) {
	und, _ := lfrPair(t)
	opt := DefaultOptions()
	opt.Workers = 4
	first, err := Run(und, opt)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		res, err := Run(und, opt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(res.Codelength) != math.Float64bits(first.Codelength) {
			t.Fatalf("rep %d: codelength drifted: %.17g != %.17g", rep, res.Codelength, first.Codelength)
		}
		for v := range res.Membership {
			if res.Membership[v] != first.Membership[v] {
				t.Fatalf("rep %d: membership diverges at vertex %d", rep, v)
			}
		}
	}
}
