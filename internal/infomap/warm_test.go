package infomap

import (
	"fmt"
	"math"
	"strconv"
	"testing"

	"github.com/asamap/asamap/internal/gen"
	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/obs"
	"github.com/asamap/asamap/internal/rng"
)

// warmEpsilon is the pinned differential bound: a warm-start run on (G, Δ)
// must land within this relative codelength distance of a cold run on G+Δ.
// Warm start trades global re-optimization for a k-hop frontier, so it may
// settle in a nearby (occasionally even better) local optimum — but never a
// substantially worse one.
const warmEpsilon = 0.02

// warmFixture builds the differential tier's workload: an LFR parent graph,
// a ~1% delta batch (removes, adds including one new vertex, reweights), the
// delta-applied child graph, and the parent's cold partition extended to the
// child's vertex count (new vertices start as fresh singletons — exactly how
// the serving layer seeds warm detection on a version's child).
func warmFixture(t *testing.T) (parent, child *graph.Graph, d *graph.Delta, seed []uint32) {
	t.Helper()
	parent, _, err := gen.LFR(gen.DefaultLFR(600, 0.25), rng.New(42))
	if err != nil {
		t.Fatal(err)
	}

	// Deterministic ~1% churn: the LFR graph has ~2-3k edges; touch ~30.
	r := rng.New(7)
	var uniq []graph.Edge
	for _, e := range parent.Edges() {
		if e.From <= e.To {
			uniq = append(uniq, e)
		}
	}
	d = &graph.Delta{}
	for i := 0; i < 10; i++ {
		e := uniq[r.Intn(len(uniq))]
		d.Ops = append(d.Ops, graph.DeltaEdge{Op: graph.DeltaRemove, From: e.From, To: e.To})
	}
	for i := 0; i < 10; i++ {
		u := uint32(r.Intn(parent.N()))
		v := uint32(r.Intn(parent.N()))
		if u == v {
			continue
		}
		d.Ops = append(d.Ops, graph.DeltaEdge{Op: graph.DeltaAdd, From: u, To: v, Weight: 1})
	}
	for i := 0; i < 5; i++ {
		e := uniq[r.Intn(len(uniq))]
		d.Ops = append(d.Ops, graph.DeltaEdge{Op: graph.DeltaSet, From: e.From, To: e.To, Weight: 2})
	}
	// One genuinely new vertex, attached to an existing one.
	d.Ops = append(d.Ops, graph.DeltaEdge{
		Op: graph.DeltaAdd, From: uint32(parent.N()), To: uint32(r.Intn(parent.N())), Weight: 1,
	})

	child, err = d.Apply(parent)
	if err != nil {
		t.Fatal(err)
	}
	if child.N() != parent.N()+1 {
		t.Fatalf("child N = %d, want %d", child.N(), parent.N()+1)
	}

	cold, err := Run(parent, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	seed = make([]uint32, child.N())
	copy(seed, cold.Membership)
	next := uint32(cold.NumModules)
	for v := parent.N(); v < child.N(); v++ {
		seed[v] = next
		next++
	}
	return parent, child, d, seed
}

// TestWarmStartDifferentialEpsilon: the epsilon leg of the differential
// contract — warm-start on the child lands within warmEpsilon (relative) of
// a cold run's codelength, for both the default 2-hop frontier and an
// unrestricted warm start.
func TestWarmStartDifferentialEpsilon(t *testing.T) {
	_, child, d, seed := warmFixture(t)

	cold, err := Run(child, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		seeds []uint32
		hops  int
	}{
		{"unrestricted", nil, 0},
		{"hops2", d.Touched(), 2},
		{"hops0", d.Touched(), 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opt := DefaultOptions()
			opt.WarmStart = seed
			opt.FrontierSeeds = tc.seeds
			opt.FrontierHops = tc.hops
			warm, err := Run(child, opt)
			if err != nil {
				t.Fatal(err)
			}
			rel := math.Abs(warm.Codelength-cold.Codelength) / cold.Codelength
			if rel > warmEpsilon {
				t.Fatalf("warm codelength %.6f vs cold %.6f: relative gap %.4f > %.4f",
					warm.Codelength, cold.Codelength, rel, warmEpsilon)
			}
		})
	}
}

// TestWarmStartFullFrontierByteIdentical: the byte-identity leg — when the
// frontier covers the whole graph, the restriction is vacuous and the run
// must be bit-identical to an unrestricted warm start, across worker counts
// and both schedulers.
func TestWarmStartFullFrontierByteIdentical(t *testing.T) {
	_, child, d, seed := warmFixture(t)

	ref := DefaultOptions()
	ref.WarmStart = seed
	refRes, err := Run(child, ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		for _, policy := range []SchedPolicy{SchedSteal, SchedStatic} {
			t.Run(fmt.Sprintf("workers=%d/sched=%v", workers, policy), func(t *testing.T) {
				opt := DefaultOptions()
				opt.Workers = workers
				opt.Sched = policy
				opt.WarmStart = seed
				opt.FrontierSeeds = d.Touched()
				opt.FrontierHops = child.N() // covers every reachable vertex
				res, err := Run(child, opt)
				if err != nil {
					t.Fatal(err)
				}
				if res.FrozenVertices != 0 {
					t.Fatalf("full-coverage frontier froze %d vertices", res.FrozenVertices)
				}
				if math.Float64bits(res.Codelength) != math.Float64bits(refRes.Codelength) {
					t.Fatalf("codelength %.17g != unrestricted %.17g", res.Codelength, refRes.Codelength)
				}
				for v := range res.Membership {
					if res.Membership[v] != refRes.Membership[v] {
						t.Fatalf("membership diverges at vertex %d: %d vs %d",
							v, res.Membership[v], refRes.Membership[v])
					}
				}
			})
		}
	}
}

// TestWarmStartFrontierRestricted: a small-hop warm start re-optimizes only
// the frontier — asserted both through the Result counters and through the
// obs span attributes (frontier_size on the run span; no leaf sweep touches
// more vertices than the frontier holds) — and is itself deterministic
// across worker counts and schedulers.
func TestWarmStartFrontierRestricted(t *testing.T) {
	_, child, d, seed := warmFixture(t)

	newOpt := func() Options {
		opt := DefaultOptions()
		opt.WarmStart = seed
		opt.FrontierSeeds = d.Touched()
		opt.FrontierHops = 0
		return opt
	}

	tracer := obs.New(obs.Config{Seed: 1})
	root := tracer.Begin("test")
	opt := newOpt()
	opt.Trace = root
	res, err := Run(child, opt)
	if err != nil {
		t.Fatal(err)
	}
	root.End()

	if res.FrozenVertices == 0 || res.FrontierSize == 0 {
		t.Fatalf("0-hop frontier should be a strict subset: size=%d frozen=%d",
			res.FrontierSize, res.FrozenVertices)
	}
	if res.FrontierSize+res.FrozenVertices != child.N() {
		t.Fatalf("frontier %d + frozen %d != N %d", res.FrontierSize, res.FrozenVertices, child.N())
	}
	if res.FrontierSize > child.N()/4 {
		t.Fatalf("0-hop frontier of a 1%%-edge delta spans %d of %d vertices — not a local re-optimization",
			res.FrontierSize, child.N())
	}
	if res.TotalWork().FrontierFrozen == 0 {
		t.Fatal("FrontierFrozen work counter not accounted")
	}

	// Span-attribute assertions: the run span carries the frontier telemetry
	// and every leaf-level sweep stayed within the frontier.
	attr := func(attrs []obs.Attr, key string) (string, bool) {
		for _, a := range attrs {
			if a.Key == key {
				return a.Value, true
			}
		}
		return "", false
	}
	spans := tracer.Snapshot(0)
	var frontierSize uint64
	levelIDs := make(map[uint64]bool) // leaf-level span IDs
	foundRun := false
	for _, sd := range spans {
		if sd.Name != "run" {
			continue
		}
		foundRun = true
		if v, ok := attr(sd.Attrs, "warm_start"); !ok || v != "true" {
			t.Fatalf("run span warm_start = %q, want true", v)
		}
		v, ok := attr(sd.Attrs, "frontier_size")
		if !ok {
			t.Fatal("run span missing frontier_size")
		}
		frontierSize, err = strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		if frontierSize != uint64(res.FrontierSize) {
			t.Fatalf("span frontier_size %d != result %d", frontierSize, res.FrontierSize)
		}
		if v, ok := attr(sd.Attrs, "frontier_hops"); !ok || v != "0" {
			t.Fatalf("run span frontier_hops = %q, want 0", v)
		}
		if _, ok := attr(sd.Attrs, "warm_modules_seeded"); !ok {
			t.Fatal("run span missing warm_modules_seeded")
		}
	}
	if !foundRun {
		t.Fatal("no run span in trace")
	}
	for _, sd := range spans {
		if sd.Name == "level" {
			if v, ok := attr(sd.Attrs, "level"); ok && v == "0" {
				levelIDs[sd.ID] = true
			}
		}
	}
	checkedSweeps := 0
	for _, sd := range spans {
		if sd.Name != "sweep" || !levelIDs[sd.Parent] {
			continue
		}
		v, ok := attr(sd.Attrs, "active")
		if !ok {
			t.Fatal("sweep span missing active")
		}
		active, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		if active > frontierSize {
			t.Fatalf("leaf sweep re-optimized %d vertices > frontier %d", active, frontierSize)
		}
		checkedSweeps++
	}
	if checkedSweeps == 0 {
		t.Fatal("no leaf-level sweep spans found")
	}

	// Restricted warm runs obey the same schedule-invariance contract as
	// everything else.
	for _, workers := range []int{1, 4} {
		for _, policy := range []SchedPolicy{SchedSteal, SchedStatic} {
			opt := newOpt()
			opt.Workers = workers
			opt.Sched = policy
			got, err := Run(child, opt)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(got.Codelength) != math.Float64bits(res.Codelength) {
				t.Fatalf("workers=%d sched=%v: codelength %.17g != %.17g",
					workers, policy, got.Codelength, res.Codelength)
			}
			for v := range got.Membership {
				if got.Membership[v] != res.Membership[v] {
					t.Fatalf("workers=%d sched=%v: membership diverges at %d", workers, policy, v)
				}
			}
		}
	}
}

// TestWarmStartValidation pins the error surface of the new options.
func TestWarmStartValidation(t *testing.T) {
	g, _, err := gen.LFR(gen.DefaultLFR(100, 0.3), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}

	opt := DefaultOptions()
	opt.WarmStart = make([]uint32, g.N()-1)
	if _, err := Run(g, opt); err == nil {
		t.Fatal("short WarmStart accepted")
	}

	opt = DefaultOptions()
	opt.FrontierHops = -1
	if _, err := Run(g, opt); err == nil {
		t.Fatal("negative FrontierHops accepted")
	}

	opt = DefaultOptions()
	opt.FrontierSeeds = []uint32{1}
	if _, err := Run(g, opt); err == nil {
		t.Fatal("FrontierSeeds without WarmStart accepted")
	}
}

// TestWarmStartFingerprint: the warm-start inputs are result-relevant and
// must separate cache keys.
func TestWarmStartFingerprint(t *testing.T) {
	base := DefaultOptions()
	warm := base
	warm.WarmStart = []uint32{0, 0, 1}
	if base.Fingerprint() == warm.Fingerprint() {
		t.Fatal("WarmStart not fingerprinted")
	}
	warm2 := warm
	warm2.WarmStart = []uint32{0, 1, 1}
	if warm.Fingerprint() == warm2.Fingerprint() {
		t.Fatal("WarmStart contents not fingerprinted")
	}
	empty := base
	empty.WarmStart = []uint32{}
	if base.Fingerprint() == empty.Fingerprint() {
		t.Fatal("nil and empty WarmStart should differ")
	}
	seeds := warm
	seeds.FrontierSeeds = []uint32{2}
	if warm.Fingerprint() == seeds.Fingerprint() {
		t.Fatal("FrontierSeeds not fingerprinted")
	}
	hops := seeds
	hops.FrontierHops = 3
	if seeds.Fingerprint() == hops.Fingerprint() {
		t.Fatal("FrontierHops not fingerprinted")
	}
}
