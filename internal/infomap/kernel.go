package infomap

import (
	"slices"
	"sort"

	"github.com/asamap/asamap/internal/accum"
	"github.com/asamap/asamap/internal/mapeq"
)

// proposal is one vertex's best move found during a parallel evaluation
// sweep. The commit phase recomputes the move's flows against the current
// membership before applying, so only the target survives evaluation; wid
// records which worker evaluated the vertex so applied moves are attributed
// to the right WorkerStats even under work stealing.
type proposal struct {
	node   uint32
	target uint32
	wid    int32
	delta  float64
}

// worker owns the core-local accumulators — one table for outgoing flow and
// one for incoming flow, exactly the pair declared in lines 1–2 of the
// paper's Algorithm 1 — plus scratch buffers and event counters.
type worker struct {
	id           int
	out, in      accum.Accumulator
	outBuf       []accum.KV
	inBuf        []accum.KV
	stats        WorkerStats
	mergedGather bool // ASA-style candidate iteration (Algorithm 2)
}

func newWorker(id int, o Options, hint int) (*worker, error) {
	out, err := o.newAccumulator(hint)
	if err != nil {
		return nil, err
	}
	in, err := o.newAccumulator(hint)
	if err != nil {
		return nil, err
	}
	return &worker{
		id:  id,
		out: out,
		in:  in,
		// ASA gathers+merges instead of point probes (Algorithm 2); the
		// probe-free HashGraph backend takes the same lookup-free candidate
		// path — its whole point is never probing during accumulation.
		mergedGather: o.Kind == ASA || o.Kind == HashGraph,
	}, nil
}

// snapshotStats folds the accumulators' cumulative stats into the worker's
// WorkerStats. Called once at the end of a run.
func (w *worker) snapshotStats() {
	w.stats.Accum = accum.Stats{}
	w.stats.Accum.Add(w.out.Stats())
	w.stats.Accum.Add(w.in.Stats())
}

// evaluateBlock runs FindBestCommunity for the vertices order[lo:hi] against
// a frozen State snapshot, appending improving moves to dst in order[] order.
// Keeping proposals per block (not per worker) makes the commit sequence a
// pure function of the shuffled order: concatenating block buffers in block
// index order recovers exactly the serial visitation sequence, no matter
// which worker ran — or stole — which block.
//
//asalint:hotroot per-sweep block evaluation: the inner loop of the paper's kernel
func (w *worker) evaluateBlock(st *mapeq.State, f *mapeq.Flow, order []uint32, lo, hi int, dst []proposal) []proposal {
	for i := lo; i < hi; i++ {
		if p, ok := w.findBestCommunity(st, f, int(order[i])); ok {
			dst = append(dst, p)
		}
	}
	return dst
}

// findBestCommunity is Algorithm 1 (Baseline) / Algorithm 2 (ASA) of the
// paper: accumulate per-module outgoing and incoming flow over the vertex's
// adjacency, then pick the module whose ΔL is most negative.
func (w *worker) findBestCommunity(st *mapeq.State, f *mapeq.Flow, v int) (proposal, bool) {
	g := f.G
	w.stats.Work.VerticesProcessed++
	old := st.Module(v)

	w.out.Reset()
	w.in.Reset()

	// Accumulate outgoing flow per neighbor module (Alg. 1 lines 4–13).
	lo, _ := g.OutRange(v)
	nb := g.OutNeighbors(v)
	links := 0
	for i := range nb {
		t := int(nb[i])
		if t == v {
			continue
		}
		w.stats.Work.ArcsProcessed++
		w.out.Accumulate(st.Module(t), f.OutFlow[lo+i])
		links++
	}
	// Accumulate incoming flow (Alg. 1 line 14).
	ilo, _ := g.InRange(v)
	in := g.InNeighbors(v)
	for i := range in {
		s := int(in[i])
		if s == v {
			continue
		}
		w.stats.Work.ArcsProcessed++
		w.in.Accumulate(st.Module(s), f.InFlow[ilo+i])
		links++
	}
	if links == 0 {
		// Isolated vertex (or only self-loops): no neighbor module to join.
		return proposal{}, false
	}

	view := f.View(v)
	if w.mergedGather {
		return w.candidatesMerged(st, view, old)
	}
	return w.candidatesLookup(st, view, old)
}

// better reports whether candidate module m with ΔL d improves on best. The
// ΔL tie-break on the smaller module ID matters for determinism: the hash
// table's Gather order depends on its capacity history, which varies with
// which worker's table processed the vertex, so exact-ΔL ties would
// otherwise resolve differently across worker counts and steal schedules.
func better(best proposal, m uint32, d float64, old uint32) bool {
	if d < best.delta {
		return true
	}
	return d == best.delta && best.target != old && m < best.target
}

// candidatesLookup is the Baseline candidate scan (Alg. 1 lines 15–25):
// iterate the out-flow hash table and point-look-up the in-flow table.
func (w *worker) candidatesLookup(st *mapeq.State, view mapeq.NodeView, old uint32) (proposal, bool) {
	w.outBuf = w.out.Gather(w.outBuf[:0])
	outOld, _ := w.out.Lookup(old)
	inOld, _ := w.in.Lookup(old)

	best := proposal{node: uint32(view.Node), target: old, wid: int32(w.id)}
	for _, kv := range w.outBuf {
		if kv.Key == old {
			continue
		}
		inFlow, _ := w.in.Lookup(kv.Key)
		w.stats.Work.CandidatesEvaluated++
		d := st.DeltaMove(view, kv.Key, outOld, inOld, kv.Value, inFlow)
		if better(best, kv.Key, d, old) {
			best = proposal{node: uint32(view.Node), target: kv.Key, wid: int32(w.id), delta: d}
		}
	}
	// Directed graphs can have candidate modules reachable only via
	// in-links; Algorithm 1's line 14 surfaces them the same way.
	w.inBuf = w.in.Gather(w.inBuf[:0])
	for _, kv := range w.inBuf {
		if kv.Key == old {
			continue
		}
		if _, seen := w.out.Lookup(kv.Key); seen {
			continue // already evaluated above
		}
		w.stats.Work.CandidatesEvaluated++
		d := st.DeltaMove(view, kv.Key, outOld, inOld, 0, kv.Value)
		if better(best, kv.Key, d, old) {
			best = proposal{node: uint32(view.Node), target: kv.Key, wid: int32(w.id), delta: d}
		}
	}
	return best, best.target != old && best.delta < 0
}

// candidatesMerged is the ASA candidate scan (Alg. 2 lines 9–14): gather both
// CAMs (with sort_and_merge on overflow), sort the pair vectors, and walk
// them with a two-pointer merge.
func (w *worker) candidatesMerged(st *mapeq.State, view mapeq.NodeView, old uint32) (proposal, bool) {
	w.outBuf = w.out.Gather(w.outBuf[:0])
	w.inBuf = w.in.Gather(w.inBuf[:0])
	sortKV(w.outBuf)
	sortKV(w.inBuf)

	var outOld, inOld float64
	if i := findKV(w.outBuf, old); i >= 0 {
		outOld = w.outBuf[i].Value
	}
	if i := findKV(w.inBuf, old); i >= 0 {
		inOld = w.inBuf[i].Value
	}

	best := proposal{node: uint32(view.Node), target: old, wid: int32(w.id)}
	i, j := 0, 0
	for i < len(w.outBuf) || j < len(w.inBuf) {
		var m uint32
		var of, nf float64
		switch {
		case j >= len(w.inBuf) || (i < len(w.outBuf) && w.outBuf[i].Key < w.inBuf[j].Key):
			m, of = w.outBuf[i].Key, w.outBuf[i].Value
			i++
		case i >= len(w.outBuf) || w.inBuf[j].Key < w.outBuf[i].Key:
			m, nf = w.inBuf[j].Key, w.inBuf[j].Value
			j++
		default:
			m, of, nf = w.outBuf[i].Key, w.outBuf[i].Value, w.inBuf[j].Value
			i++
			j++
		}
		if m == old {
			continue
		}
		w.stats.Work.CandidatesEvaluated++
		d := st.DeltaMove(view, m, outOld, inOld, of, nf)
		if better(best, m, d, old) {
			best = proposal{node: uint32(view.Node), target: m, wid: int32(w.id), delta: d}
		}
	}
	return best, best.target != old && best.delta < 0
}

// sortKVThreshold is the length above which sortKV switches from insertion
// sort to slices.SortFunc. Candidate lists are degree-bounded: most are tiny
// (insertion sort wins, no comparator indirection), but a hub of degree d
// would cost O(d²) — ruinous at d ~ 10⁴ — so larger lists take the O(d log d)
// path. slices.SortFunc (unlike sort.Slice) is allocation-free here.
const sortKVThreshold = 32

// sortKV sorts pair vectors by key: insertion sort below sortKVThreshold,
// slices.SortFunc above.
func sortKV(kvs []accum.KV) {
	if len(kvs) > sortKVThreshold {
		slices.SortFunc(kvs, func(a, b accum.KV) int {
			switch {
			case a.Key < b.Key:
				return -1
			case a.Key > b.Key:
				return 1
			}
			return 0
		})
		return
	}
	for i := 1; i < len(kvs); i++ {
		kv := kvs[i]
		j := i - 1
		for j >= 0 && kvs[j].Key > kv.Key {
			kvs[j+1] = kvs[j]
			j--
		}
		kvs[j+1] = kv
	}
}

// findKV binary-searches sorted kvs for key, returning its index or -1.
func findKV(kvs []accum.KV, key uint32) int {
	//asalint:hotalloc sort.Search does not retain f, so escape analysis keeps this closure off the heap
	i := sort.Search(len(kvs), func(i int) bool { return kvs[i].Key >= key })
	if i < len(kvs) && kvs[i].Key == key {
		return i
	}
	return -1
}
