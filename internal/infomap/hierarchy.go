package infomap

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/mapeq"
	"github.com/asamap/asamap/internal/pagerank"
	"github.com/asamap/asamap/internal/rng"
)

// The hierarchical map equation (Rosvall & Bergstrom 2011) generalizes the
// two-level objective the paper's HyPC-Map optimizes: modules may contain
// submodules, each level paying an index codebook. This file implements the
// standard recursive heuristic — build a two-level partition, then try to
// split each module into submodules whenever that shortens the total
// hierarchical codelength — as the repository's extension of the paper's
// system (listed as future-work scope in DESIGN.md).

// HierNode is one module in the hierarchy tree. Leaf modules carry their
// member vertices; internal modules carry children.
type HierNode struct {
	Children []*HierNode
	Vertices []int   // leaf members (nil for internal nodes)
	Exit     float64 // module enter/exit rate q
	Flow     float64 // Σ member visit rates
}

// IsLeaf reports whether the node is a leaf module.
func (n *HierNode) IsLeaf() bool { return len(n.Children) == 0 }

// Size returns the number of leaf vertices under the node.
func (n *HierNode) Size() int {
	if n.IsLeaf() {
		return len(n.Vertices)
	}
	total := 0
	for _, c := range n.Children {
		total += c.Size()
	}
	return total
}

// Depth returns the height of the subtree (a leaf has depth 1).
func (n *HierNode) Depth() int {
	if n.IsLeaf() {
		return 1
	}
	max := 0
	for _, c := range n.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// HierResult is the outcome of RunHierarchical.
type HierResult struct {
	Root               *HierNode
	Codelength         float64 // hierarchical L in bits
	TwoLevelCodelength float64 // the flat partition's L, for comparison
	TopMembership      []uint32
	Depth              int // tree height including the root
	Modules            int // total module count across all levels
}

// RunHierarchical detects a hierarchy of communities: it first runs the
// two-level algorithm (with the configured accumulator backend), then
// recursively splits each module into submodules while the hierarchical
// codelength improves.
func RunHierarchical(g *graph.Graph, opt Options) (*HierResult, error) {
	// Documented non-cancellable convenience entry point; callers who need
	// preemption use RunHierarchicalContext.
	return RunHierarchicalContext(context.Background(), g, opt)
}

// RunHierarchicalContext is RunHierarchical under a context; the flat run
// and PageRank observe cancellation at their usual boundaries.
func RunHierarchicalContext(ctx context.Context, g *graph.Graph, opt Options) (*HierResult, error) {
	if opt.Workers == 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	flat, err := RunContext(ctx, g, opt)
	if err != nil {
		return nil, err
	}
	// Rebuild the base flow (Run does not expose it).
	var flow *mapeq.Flow
	if g.Directed() {
		cfg := pagerank.DefaultConfig()
		cfg.Damping = opt.Damping
		cfg.Workers = opt.Workers
		pr, err := pagerank.ComputeContext(ctx, g, cfg)
		if err != nil {
			return nil, err
		}
		if opt.Teleport == TeleportUnrecorded {
			flow, err = mapeq.NewDirectedFlowUnrecorded(g, pr.Rank, opt.Damping)
		} else {
			flow, err = mapeq.NewDirectedFlow(g, pr.Rank, opt.Damping)
		}
		if err != nil {
			return nil, err
		}
	} else {
		flow, err = mapeq.NewUndirectedFlow(g)
		if err != nil {
			return nil, err
		}
	}
	res := &HierResult{
		TwoLevelCodelength: flat.Codelength,
		TopMembership:      flat.Membership,
	}
	if g.N() == 0 {
		res.Root = &HierNode{}
		return res, nil
	}

	mem := append([]uint32(nil), flat.Membership...)
	k := mapeq.CompactMembership(mem)
	st, err := mapeq.NewState(flow, mem, k)
	if err != nil {
		return nil, err
	}
	root := &HierNode{}
	groups := make([][]int, k)
	for v, m := range mem {
		groups[m] = append(groups[m], v)
	}
	r := rng.New(opt.Seed)
	for m, members := range groups {
		child := &HierNode{
			Vertices: members,
			Exit:     st.ModuleExit(uint32(m)),
			Flow:     st.ModuleFlow(uint32(m)),
		}
		root.Children = append(root.Children, child)
	}
	// Try to split each top module recursively (fine structure below)...
	for _, child := range root.Children {
		if err := splitRecursively(flow, child, opt, r, opt.MaxLevels); err != nil {
			return nil, err
		}
	}
	// ...and to agglomerate top modules under super modules (coarse
	// structure above), while either direction shortens the code.
	if err := addSuperLevels(flow, root, mem, opt, r); err != nil {
		return nil, err
	}

	res.Root = root
	res.Codelength = HierCodelength(flow, root)
	res.Depth = root.Depth()
	res.Modules = countModules(root) - 1 // exclude the root itself
	return res, nil
}

func countModules(n *HierNode) int {
	total := 1
	for _, c := range n.Children {
		total += countModules(c)
	}
	return total
}

// splitRecursively attempts to split a leaf module into submodules and, when
// accepted, recurses into the new children.
func splitRecursively(flow *mapeq.Flow, node *HierNode, opt Options, r *rng.RNG, depthBudget int) error {
	if depthBudget <= 0 || !node.IsLeaf() || len(node.Vertices) < 4 {
		return nil
	}
	sf, err := subFlow(flow, node.Vertices)
	if err != nil {
		return err
	}
	membership, innerState, err := optimizeSubmodule(sf, node.Exit, opt, r)
	if err != nil {
		return err
	}
	// Keep the optimizer's module IDs: CompactMembership renumbers, and the
	// State's per-module statistics are indexed by the original IDs.
	original := append([]uint32(nil), membership...)
	k := mapeq.CompactMembership(membership)
	if k < 2 {
		return nil
	}
	// Cost of keeping the module flat: its leaf codebook. Cost of the split:
	// the module's index codebook plus the children's leaf codebooks. The
	// shared −plogp(q) term cancels in the comparison.
	leafCost := mapeq.Plogp(node.Exit+node.Flow) - sumPlogpNodeFlows(sf)
	splitCost := innerState.Codelength()
	if splitCost >= leafCost-opt.MinImprovement {
		return nil
	}
	// Accept: materialize children (in member order for determinism).
	children := make([]*HierNode, k)
	for local, m := range membership {
		if children[m] == nil {
			children[m] = &HierNode{
				Exit: innerState.ModuleExit(original[local]),
				Flow: innerState.ModuleFlow(original[local]),
			}
		}
		children[m].Vertices = append(children[m].Vertices, node.Vertices[local])
	}
	node.Children = children
	node.Vertices = nil
	for _, c := range children {
		if err := splitRecursively(flow, c, opt, r, depthBudget-1); err != nil {
			return err
		}
	}
	return nil
}

// addSuperLevels repeatedly tries to group the root's children under a new
// level of super modules. Choosing the grouping is *exactly* a two-level map
// equation problem on the contracted flow with each module-node's visit rate
// replaced by the module's enter rate q_c: the resulting L equals
//
//	plogp(Σ_s q_s) − 2Σ_s plogp(q_s) + Σ_s plogp(q_s + Σ_{c∈s} q_c) − Σ_c plogp(q_c),
//
// which is the root index codebook plus the super-module codebooks of the
// three-level map equation. A grouping is accepted when that beats the
// current root index codebook, and the procedure repeats on the new top
// level until no further coarsening pays.
func addSuperLevels(flow *mapeq.Flow, root *HierNode, topMembership []uint32, opt Options, r *rng.RNG) error {
	mem := append([]uint32(nil), topMembership...)
	curFlow := flow
	for level := 0; level < 10; level++ {
		k := len(root.Children)
		if k <= 2 {
			return nil
		}
		cf, err := curFlow.Contract(mem, k)
		if err != nil {
			return err
		}
		// The module-as-node visit rate is the module's enter rate.
		for i, c := range root.Children {
			cf.NodeFlow[i] = c.Exit
		}
		grouping, st, err := optimizeSubmodule(cf, 0, opt, r)
		if err != nil {
			return err
		}
		originalIDs := append([]uint32(nil), grouping...)
		ks := mapeq.CompactMembership(grouping)
		if ks < 2 || ks >= k {
			return nil
		}
		currentCost := 0.0
		sumQ := 0.0
		for _, c := range root.Children {
			sumQ += c.Exit
			currentCost -= mapeq.Plogp(c.Exit)
		}
		currentCost += mapeq.Plogp(sumQ)
		proposedCost := st.Codelength()
		if proposedCost >= currentCost-opt.MinImprovement {
			return nil
		}
		// Restructure: wrap the children into super modules.
		supers := make([]*HierNode, ks)
		for i, c := range root.Children {
			s := grouping[i]
			if supers[s] == nil {
				supers[s] = &HierNode{Exit: st.ModuleExit(originalIDs[i])}
			}
			supers[s].Children = append(supers[s].Children, c)
			supers[s].Flow += c.Flow
		}
		root.Children = supers
		// Prepare the next round: the new top partition over the previous
		// contracted nodes.
		// (cf.NodeFlow holds enter rates, but the next round overrides
		// NodeFlow again, and Contract only consumes arc flows, so no
		// restoration is needed.)
		mem = grouping
		curFlow = cf
	}
	return nil
}

func sumPlogpNodeFlows(f *mapeq.Flow) float64 {
	s := 0.0
	for _, p := range f.NodeFlow {
		s += mapeq.Plogp(p)
	}
	return s
}

// subFlow builds the flow restricted to a module's members: internal arcs
// keep their global flows; flow leaving the member set (boundary arcs plus
// any teleportation) becomes pure exit mass (TeleOut with zero landing
// share), so every submodule's exit rate stays globally exact. For directed
// graphs the members' own teleportation is treated entirely as exit — a
// small approximation for the fraction that would land back inside.
func subFlow(f *mapeq.Flow, members []int) (*mapeq.Flow, error) {
	local := make(map[int]int, len(members))
	for i, v := range members {
		local[v] = i
	}
	g := f.G
	b := graph.NewBuilder(len(members), true)
	external := make([]float64, len(members))
	extIn := make([]float64, len(members))
	for i, v := range members {
		lo, _ := g.OutRange(v)
		nb := g.OutNeighbors(v)
		for j := range nb {
			fl := f.OutFlow[lo+j]
			if fl <= 0 {
				continue
			}
			if t, ok := local[int(nb[j])]; ok {
				if err := b.AddEdge(uint32(i), uint32(t), fl); err != nil {
					return nil, err
				}
			} else {
				external[i] += fl
			}
		}
		external[i] += f.TeleOut[v]
		ilo, _ := g.InRange(v)
		inn := g.InNeighbors(v)
		for j := range inn {
			fl := f.InFlow[ilo+j]
			if fl <= 0 {
				continue
			}
			if _, ok := local[int(inn[j])]; !ok {
				extIn[i] += fl
			}
		}
	}
	sg := b.Build()
	sf := &mapeq.Flow{
		G:        sg,
		NodeFlow: make([]float64, len(members)),
		TeleOut:  external,
		Land:     make([]float64, len(members)),
		OutFlow:  make([]float64, sg.M()),
		InFlow:   make([]float64, sg.M()),
		ArcOut:   make([]float64, len(members)),
		ArcIn:    make([]float64, len(members)),
		ExtIn:    extIn,
	}
	for i, v := range members {
		sf.NodeFlow[i] = f.NodeFlow[v]
	}
	idx := 0
	for u := 0; u < sg.N(); u++ {
		ws := sg.OutWeights(u)
		for j := range ws {
			sf.OutFlow[idx] = ws[j]
			sf.ArcOut[u] += ws[j]
			idx++
		}
	}
	idx = 0
	for v := 0; v < sg.N(); v++ {
		ws := sg.InWeights(v)
		for j := range ws {
			sf.InFlow[idx] = ws[j]
			sf.ArcIn[v] += ws[j]
			idx++
		}
	}
	return sf, nil
}

// optimizeSubmodule greedily partitions a module's members by the map
// equation with the module's exit rate as a constant index-codebook offset.
// It is a compact sequential multi-level optimizer (submodules are small, so
// the parallel machinery and instrumented accumulators are unnecessary).
func optimizeSubmodule(sf *mapeq.Flow, exitOffset float64, opt Options, r *rng.RNG) ([]uint32, *mapeq.State, error) {
	n := sf.G.N()
	membership := make([]uint32, n)
	for i := range membership {
		membership[i] = uint32(i)
	}
	st, err := mapeq.NewState(sf, membership, n)
	if err != nil {
		return nil, nil, err
	}
	st.SetExitOffset(exitOffset)

	order := r.Perm(n)
	outW := map[uint32]float64{}
	inW := map[uint32]float64{}
	var keys []uint32
	for sweep := 0; sweep < opt.MaxSweeps; sweep++ {
		moves := 0
		for _, v := range order {
			old := st.Module(v)
			clear(outW)
			clear(inW)
			keys = keys[:0]
			collect := func(nbs []uint32, flows []float64, lo int, into map[uint32]float64) {
				for j := range nbs {
					t := int(nbs[j])
					if t == v {
						continue
					}
					m := st.Module(t)
					if _, seen := outW[m]; !seen {
						if _, seen2 := inW[m]; !seen2 {
							keys = append(keys, m)
						}
					}
					into[m] += flows[lo+j]
				}
			}
			lo, _ := sf.G.OutRange(v)
			collect(sf.G.OutNeighbors(v), sf.OutFlow, lo, outW)
			ilo, _ := sf.G.InRange(v)
			collect(sf.G.InNeighbors(v), sf.InFlow, ilo, inW)

			view := sf.View(v)
			best, bestDelta := old, 0.0
			for _, m := range keys {
				if m == old {
					continue
				}
				d := st.DeltaMove(view, m, outW[old], inW[old], outW[m], inW[m])
				if d < bestDelta-1e-15 {
					best, bestDelta = m, d
				}
			}
			if best != old {
				st.Apply(view, best, outW[old], inW[old], outW[best], inW[best])
				moves++
			}
		}
		if moves == 0 {
			break
		}
	}
	return membership, st, nil
}

// HierCodelength evaluates the hierarchical map equation of a tree over the
// given base flow: the root pays an index codebook over its children's
// enter rates; every internal module pays an index codebook over its exit
// and its children's enter rates; every leaf module pays a codebook over its
// exit and its members' visit rates.
func HierCodelength(f *mapeq.Flow, root *HierNode) float64 {
	if len(root.Children) == 0 {
		// Degenerate tree: one flat codebook over everything.
		sum := 0.0
		for _, p := range f.NodeFlow {
			sum -= mapeq.Plogp(p)
		}
		return sum
	}
	l := 0.0
	// Root index codebook (the root has no exit).
	rate := 0.0
	for _, c := range root.Children {
		rate += c.Exit
		l -= mapeq.Plogp(c.Exit)
	}
	l += mapeq.Plogp(rate)
	for _, c := range root.Children {
		l += nodeCodelength(f, c)
	}
	return l
}

func nodeCodelength(f *mapeq.Flow, n *HierNode) float64 {
	if n.IsLeaf() {
		rate := n.Exit
		l := -mapeq.Plogp(n.Exit)
		for _, v := range n.Vertices {
			rate += f.NodeFlow[v]
			l -= mapeq.Plogp(f.NodeFlow[v])
		}
		return l + mapeq.Plogp(rate)
	}
	rate := n.Exit
	l := -mapeq.Plogp(n.Exit)
	for _, c := range n.Children {
		rate += c.Exit
		l -= mapeq.Plogp(c.Exit)
	}
	l += mapeq.Plogp(rate)
	for _, c := range n.Children {
		l += nodeCodelength(f, c)
	}
	return l
}

// String renders a summary of the hierarchy.
func (r *HierResult) String() string {
	return fmt.Sprintf("hierarchical L=%.4f bits (two-level %.4f) depth=%d modules=%d",
		r.Codelength, r.TwoLevelCodelength, r.Depth, r.Modules)
}

// FlattenLevel returns the membership induced by cutting the tree at the
// given depth below the root (depth 1 = top modules). Vertices in modules
// shallower than the cut keep their deepest module.
func (r *HierResult) FlattenLevel(depth int) []uint32 {
	mem := make([]uint32, len(r.TopMembership))
	next := uint32(0)
	var walk func(n *HierNode, d int)
	walk = func(n *HierNode, d int) {
		if n.IsLeaf() || d >= depth {
			assignAll(n, mem, next)
			next++
			return
		}
		for _, c := range n.Children {
			walk(c, d+1)
		}
	}
	for _, c := range r.Root.Children {
		walk(c, 1)
	}
	return mem
}

func assignAll(n *HierNode, mem []uint32, id uint32) {
	if n.IsLeaf() {
		for _, v := range n.Vertices {
			mem[v] = id
		}
		return
	}
	for _, c := range n.Children {
		assignAll(c, mem, id)
	}
}

// Leaves returns all leaf modules of the tree in deterministic order.
func (r *HierResult) Leaves() []*HierNode {
	var out []*HierNode
	var walk func(n *HierNode)
	walk = func(n *HierNode) {
		if n.IsLeaf() {
			out = append(out, n)
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(r.Root)
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Vertices) == 0 || len(out[j].Vertices) == 0 {
			return len(out[i].Vertices) < len(out[j].Vertices)
		}
		return out[i].Vertices[0] < out[j].Vertices[0]
	})
	return out
}
