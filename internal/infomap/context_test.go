package infomap

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/asamap/asamap/internal/accum"
	"github.com/asamap/asamap/internal/gen"
	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/mapeq"
	"github.com/asamap/asamap/internal/rng"
	"github.com/asamap/asamap/internal/sched"
	"github.com/asamap/asamap/internal/trace"
)

func TestRunContextCanceledBeforeStart(t *testing.T) {
	g, _, err := gen.SBM(gen.SBMParams{Sizes: []int{30, 30}, PIn: 0.3, POut: 0.02}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, g, DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestRunContextDeadlinePromptNoLeak(t *testing.T) {
	// A graph large enough that the run takes well beyond the deadline.
	g, _, err := gen.SBM(gen.SBMParams{
		Sizes: []int{400, 400, 400, 400, 400}, PIn: 0.1, POut: 0.005}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	opt := DefaultOptions()
	opt.Workers = 4
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = RunContext(ctx, g, opt)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	// "Promptly": cancellation is observed at sweep boundaries, so the run
	// must end well before an uncancelled run would (seconds on this graph).
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	// All worker goroutines finish their sweep before Run returns; give the
	// scheduler a moment and verify nothing leaked.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

func TestPageRankContextCanceled(t *testing.T) {
	// Directed graphs exercise the power-iteration path with its per-
	// iteration cancellation check (threaded through RunContext).
	b := graph.NewBuilder(500, true)
	for v := 0; v < 500; v++ {
		if err := b.AddEdge(uint32(v), uint32((v+1)%500), 1); err != nil {
			t.Fatal(err)
		}
		if err := b.AddEdge(uint32(v), uint32((v*7+13)%500), 1); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, g, DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestRunHierarchicalContextCanceled(t *testing.T) {
	g, _, err := gen.SBM(gen.SBMParams{Sizes: []int{30, 30}, PIn: 0.3, POut: 0.02}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunHierarchicalContext(ctx, g, DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// panicAccum is an Accumulator that panics on first use — a stand-in for a
// buggy backend, exercising the worker panic-to-error recovery.
type panicAccum struct{}

func (panicAccum) Accumulate(uint32, float64)       { panic("injected accumulator fault") }
func (panicAccum) Lookup(uint32) (float64, bool)    { return 0, false }
func (panicAccum) Gather(dst []accum.KV) []accum.KV { return dst }
func (panicAccum) Reset()                           {}
func (panicAccum) Stats() accum.Stats               { return accum.Stats{} }
func (panicAccum) Name() string                     { return "panic" }

func TestWorkerPanicBecomesError(t *testing.T) {
	g, _, err := gen.SBM(gen.SBMParams{Sizes: []int{20, 20}, PIn: 0.4, POut: 0.05}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	flow, err := mapeq.NewUndirectedFlow(g)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	membership := make([]uint32, n)
	for i := range membership {
		membership[i] = uint32(i)
	}
	st, err := mapeq.NewState(flow, membership, n)
	if err != nil {
		t.Fatal(err)
	}
	for _, nWorkers := range []int{1, 4} {
		workers := make([]*worker, nWorkers)
		for i := range workers {
			workers[i] = &worker{id: i, out: panicAccum{}, in: panicAccum{}}
		}
		pool := sched.NewPool(nWorkers)
		_, _, err := optimizeLevel(context.Background(), st, flow, workers, pool,
			DefaultOptions(), newRand(1), trace.NewBreakdown(), 0, &Result{}, nil, nil)
		pool.Close()
		if err == nil {
			t.Fatalf("workers=%d: injected panic not surfaced", nWorkers)
		}
		if !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("workers=%d: unexpected error %v", nWorkers, err)
		}
	}
}
