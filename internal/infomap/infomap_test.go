package infomap

import (
	"math"
	"testing"

	"github.com/asamap/asamap/internal/asa"
	"github.com/asamap/asamap/internal/gen"
	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/trace"
)

func twoTriangles(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(6, false)
	for _, e := range [][2]uint32{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}} {
		if err := b.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func sameModule(m []uint32, a, b int) bool { return m[a] == m[b] }

func TestTwoTrianglesAllBackends(t *testing.T) {
	g := twoTriangles(t)
	for _, kind := range []AccumKind{Baseline, ASA, GoMap} {
		opt := DefaultOptions()
		opt.Kind = kind
		res, err := Run(g, opt)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.NumModules != 2 {
			t.Fatalf("%v: found %d modules, want 2 (membership %v)", kind, res.NumModules, res.Membership)
		}
		if !sameModule(res.Membership, 0, 1) || !sameModule(res.Membership, 1, 2) {
			t.Fatalf("%v: first triangle split: %v", kind, res.Membership)
		}
		if !sameModule(res.Membership, 3, 4) || !sameModule(res.Membership, 4, 5) {
			t.Fatalf("%v: second triangle split: %v", kind, res.Membership)
		}
		if res.Codelength >= res.OneLevelCodelength {
			t.Fatalf("%v: no compression: L=%g one-level=%g", kind, res.Codelength, res.OneLevelCodelength)
		}
	}
}

func TestBackendsAgreeOnCodelength(t *testing.T) {
	// All three backends run the identical kernel; with a CAM too large to
	// overflow they must find partitions of (near-)identical quality.
	g, _, err := gen.SBM(gen.SBMParams{Sizes: []int{40, 40, 40, 40}, PIn: 0.3, POut: 0.01}, newRand(3))
	if err != nil {
		t.Fatal(err)
	}
	var ls []float64
	var mods []int
	for _, kind := range []AccumKind{Baseline, ASA, GoMap} {
		opt := DefaultOptions()
		opt.Kind = kind
		opt.Seed = 7
		res, err := Run(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		ls = append(ls, res.Codelength)
		mods = append(mods, res.NumModules)
	}
	for i := 1; i < len(ls); i++ {
		if math.Abs(ls[i]-ls[0]) > 1e-6 {
			t.Fatalf("codelengths diverge across backends: %v", ls)
		}
		if mods[i] != mods[0] {
			t.Fatalf("module counts diverge: %v", mods)
		}
	}
}

func TestDeterminism(t *testing.T) {
	g, _, err := gen.SBM(gen.SBMParams{Sizes: []int{30, 30, 30}, PIn: 0.3, POut: 0.02}, newRand(5))
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Seed = 42
	r1, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Codelength != r2.Codelength || r1.NumModules != r2.NumModules {
		t.Fatalf("same seed, different results: %v vs %v", r1, r2)
	}
	for i := range r1.Membership {
		if r1.Membership[i] != r2.Membership[i] {
			t.Fatalf("membership differs at %d", i)
		}
	}
}

func TestParallelWorkersDeterministic(t *testing.T) {
	g, _, err := gen.SBM(gen.SBMParams{Sizes: []int{50, 50, 50}, PIn: 0.25, POut: 0.01}, newRand(9))
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Seed = 11
	serial, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 4
	par1, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	par2, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Parallel runs must be reproducible with a fixed seed (evaluation is
	// read-only; commit order is worker-index order).
	if par1.Codelength != par2.Codelength {
		t.Fatalf("parallel nondeterminism: %g vs %g", par1.Codelength, par2.Codelength)
	}
	// And quality must be comparable to serial.
	if par1.Codelength > serial.Codelength*1.05 {
		t.Fatalf("parallel quality regressed: %g vs serial %g", par1.Codelength, serial.Codelength)
	}
	if len(par1.PerWorker) != 4 {
		t.Fatalf("PerWorker has %d entries", len(par1.PerWorker))
	}
}

func TestCliqueRingResolution(t *testing.T) {
	// 8 cliques of 5 joined in a ring: Infomap must keep them separate (the
	// resolution-limit case where modularity methods merge pairs).
	g, planted, err := gen.CliqueChain(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumModules != 8 {
		t.Fatalf("found %d modules, want 8 cliques", res.NumModules)
	}
	for v := range planted {
		if res.Membership[v] != res.Membership[int(planted[v])*5] {
			t.Fatalf("vertex %d not grouped with its clique", v)
		}
	}
}

func TestPlantedSBMRecovery(t *testing.T) {
	g, planted, err := gen.SBM(gen.SBMParams{Sizes: []int{60, 60, 60}, PIn: 0.3, POut: 0.005}, newRand(13))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumModules != 3 {
		t.Fatalf("found %d modules, want 3", res.NumModules)
	}
	// Every planted pair in the same block must share a module.
	agree, total := 0, 0
	for i := 0; i < len(planted); i += 7 {
		for j := i + 1; j < len(planted); j += 13 {
			total++
			if (planted[i] == planted[j]) == (res.Membership[i] == res.Membership[j]) {
				agree++
			}
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.95 {
		t.Fatalf("pair agreement %.2f with planted partition", frac)
	}
}

func TestDirectedGraph(t *testing.T) {
	// Two directed 4-cycles joined by two weak arcs.
	b := graph.NewBuilder(8, true)
	for c := 0; c < 2; c++ {
		base := uint32(c * 4)
		for i := uint32(0); i < 4; i++ {
			if err := b.AddEdge(base+i, base+(i+1)%4, 10); err != nil {
				t.Fatal(err)
			}
		}
	}
	_ = b.AddEdge(0, 4, 0.1)
	_ = b.AddEdge(4, 0, 0.1)
	g := b.Build()
	res, err := Run(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumModules != 2 {
		t.Fatalf("directed: %d modules, want 2 (%v)", res.NumModules, res.Membership)
	}
	if res.Breakdown.Get(trace.KernelPageRank) == 0 {
		t.Fatal("PageRank kernel not timed for directed graph")
	}
}

func TestTinyCAMStillCorrect(t *testing.T) {
	// A 2-entry CAM overflows on nearly every vertex; the overflow merge
	// path must still produce a sane partition.
	g, _, err := gen.SBM(gen.SBMParams{Sizes: []int{40, 40}, PIn: 0.4, POut: 0.01}, newRand(17))
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Kind = ASA
	opt.ASAConfig = asa.Config{CapacityBytes: 32, EntryBytes: 16, Policy: asa.LRU}
	res, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumModules != 2 {
		t.Fatalf("tiny CAM: %d modules, want 2", res.NumModules)
	}
	if res.TotalStats().Evictions == 0 {
		t.Fatal("test intended to exercise eviction but none occurred")
	}
}

func TestEdgeCases(t *testing.T) {
	// Empty graph.
	res, err := Run(graph.NewBuilder(0, false).Build(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Membership) != 0 {
		t.Fatal("empty graph produced membership")
	}
	// Single vertex.
	res, err = Run(graph.NewBuilder(1, false).Build(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumModules != 1 {
		t.Fatalf("single vertex: %d modules", res.NumModules)
	}
	// Edgeless graph: everyone stays a singleton.
	res, err = Run(graph.NewBuilder(5, false).Build(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumModules != 5 {
		t.Fatalf("edgeless: %d modules, want 5", res.NumModules)
	}
	// Self-loop only.
	b := graph.NewBuilder(2, false)
	_ = b.AddEdge(0, 0, 3)
	_ = b.AddEdge(0, 1, 1)
	if _, err := Run(b.Build(), DefaultOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsValidation(t *testing.T) {
	g := twoTriangles(t)
	cases := []func(*Options){
		func(o *Options) { o.Workers = -1 },
		func(o *Options) { o.MaxSweeps = 0 },
		func(o *Options) { o.MaxLevels = 0 },
		func(o *Options) { o.Damping = 0 },
		func(o *Options) { o.Damping = 1 },
		func(o *Options) { o.MinImprovement = -1 },
		func(o *Options) { o.Kind = AccumKind(99) },
		func(o *Options) { o.Sched = SchedPolicy(99) },
	}
	for i, mutate := range cases {
		opt := DefaultOptions()
		mutate(&opt)
		if _, err := Run(g, opt); err == nil {
			t.Fatalf("case %d: invalid options accepted", i)
		}
	}
	// Workers == 0 is valid: it means all CPUs.
	opt := DefaultOptions()
	opt.Workers = 0
	if _, err := Run(g, opt); err != nil {
		t.Fatalf("Workers=0 rejected: %v", err)
	}
}

func TestStatsPopulated(t *testing.T) {
	g := twoTriangles(t)
	res, err := Run(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := res.TotalStats()
	if st.Accumulates == 0 {
		t.Fatal("no accumulate events recorded")
	}
	w := res.TotalWork()
	if w.ArcsProcessed == 0 || w.VerticesProcessed == 0 || w.CandidatesEvaluated == 0 {
		t.Fatalf("kernel work not recorded: %+v", w)
	}
	if res.Moves == 0 {
		t.Fatal("no moves recorded on a graph with obvious structure")
	}
	if res.Breakdown.Get(trace.KernelFindBestCommunity) == 0 {
		t.Fatal("FindBestCommunity not timed")
	}
	if res.Elapsed == 0 {
		t.Fatal("Elapsed not recorded")
	}
}

func TestModulesHelper(t *testing.T) {
	mods := Modules([]uint32{0, 1, 0, 2, 1})
	if len(mods) != 3 {
		t.Fatalf("Modules returned %d groups", len(mods))
	}
	if len(mods[0]) != 2 || mods[0][0] != 0 || mods[0][1] != 2 {
		t.Fatalf("module 0 = %v", mods[0])
	}
	if len(Modules(nil)) != 0 {
		t.Fatal("Modules(nil) should be empty")
	}
}

func TestAccumKindString(t *testing.T) {
	if Baseline.String() != "baseline" || ASA.String() != "asa" || GoMap.String() != "gomap" {
		t.Fatal("kind names wrong")
	}
	if AccumKind(9).String() == "" {
		t.Fatal("unknown kind has empty name")
	}
}

func TestResultString(t *testing.T) {
	g := twoTriangles(t)
	res, err := Run(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if s := res.String(); len(s) == 0 {
		t.Fatal("empty result string")
	}
}

func TestCodelengthImprovesOnLFR(t *testing.T) {
	g, _, err := gen.LFR(gen.DefaultLFR(600, 0.2), newRand(21))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Codelength >= res.OneLevelCodelength {
		t.Fatalf("no compression on LFR: %g vs %g", res.Codelength, res.OneLevelCodelength)
	}
	if res.NumModules < 2 || res.NumModules > 200 {
		t.Fatalf("implausible module count %d on 600-vertex LFR", res.NumModules)
	}
}

func TestUnrecordedTeleportation(t *testing.T) {
	// Two directed 4-cycles with weak coupling, under both teleportation
	// models: both must find the two cycles; codelengths differ (different
	// objectives) but each must compress relative to its own one-level code.
	b := graph.NewBuilder(8, true)
	for c := 0; c < 2; c++ {
		base := uint32(c * 4)
		for i := uint32(0); i < 4; i++ {
			if err := b.AddEdge(base+i, base+(i+1)%4, 10); err != nil {
				t.Fatal(err)
			}
		}
	}
	_ = b.AddEdge(0, 4, 0.1)
	_ = b.AddEdge(4, 0, 0.1)
	g := b.Build()
	var ls []float64
	for _, tp := range []Teleportation{TeleportRecorded, TeleportUnrecorded} {
		opt := DefaultOptions()
		opt.Teleport = tp
		res, err := Run(g, opt)
		if err != nil {
			t.Fatalf("%v: %v", tp, err)
		}
		if res.NumModules != 2 {
			t.Fatalf("%v: %d modules, want 2", tp, res.NumModules)
		}
		if res.Codelength >= res.OneLevelCodelength {
			t.Fatalf("%v: no compression", tp)
		}
		ls = append(ls, res.Codelength)
	}
	if ls[0] == ls[1] {
		t.Fatal("recorded and unrecorded teleportation produced identical codelengths; models not distinguished")
	}
	if TeleportRecorded.String() != "recorded" || TeleportUnrecorded.String() != "unrecorded" {
		t.Fatal("teleportation names wrong")
	}
}
