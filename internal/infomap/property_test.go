package infomap

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/asamap/asamap/internal/asa"
	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/mapeq"
	"github.com/asamap/asamap/internal/rng"
)

// randomGraph builds a random undirected graph from fuzz inputs.
func randomGraph(seed uint64, n, edges int) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n, false)
	for i := 0; i < edges; i++ {
		u, v := uint32(r.Intn(n)), uint32(r.Intn(n))
		_ = b.AddEdge(u, v, 0.5+r.Float64())
	}
	return b.Build()
}

// TestQuickRunInvariants: for arbitrary random graphs, a run must terminate
// with (a) a dense valid membership, (b) a codelength no worse than the
// one-level code, and (c) a codelength that equals the from-scratch
// evaluation of the returned membership.
func TestQuickRunInvariants(t *testing.T) {
	f := func(seed uint16, nRaw, mRaw uint8) bool {
		n := int(nRaw)%40 + 2
		m := int(mRaw)%120 + 1
		g := randomGraph(uint64(seed), n, m)
		opt := DefaultOptions()
		opt.Kind = ASA
		opt.ASAConfig = asa.Config{CapacityBytes: 64, EntryBytes: 16, Policy: asa.LRU}
		res, err := Run(g, opt)
		if err != nil {
			return false
		}
		// (a) dense membership
		seen := map[uint32]bool{}
		for _, mod := range res.Membership {
			if int(mod) >= res.NumModules {
				return false
			}
			seen[mod] = true
		}
		if len(seen) != res.NumModules {
			return false
		}
		// (b) never worse than one level
		if res.Codelength > res.OneLevelCodelength+1e-9 {
			return false
		}
		// (c) reported L matches a fresh evaluation
		flow, err := mapeq.NewUndirectedFlow(g)
		if err != nil {
			return false
		}
		mem := append([]uint32(nil), res.Membership...)
		k := mapeq.CompactMembership(mem)
		st, err := mapeq.NewState(flow, mem, k)
		if err != nil {
			return false
		}
		return math.Abs(st.Codelength()-res.Codelength) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBackendsEquivalentQuality: on arbitrary random graphs the three
// backends must produce partitions within a whisker of each other.
func TestQuickBackendsEquivalentQuality(t *testing.T) {
	f := func(seed uint16) bool {
		g := randomGraph(uint64(seed), 25, 60)
		var ls []float64
		for _, kind := range []AccumKind{Baseline, ASA, GoMap} {
			opt := DefaultOptions()
			opt.Kind = kind
			res, err := Run(g, opt)
			if err != nil {
				return false
			}
			ls = append(ls, res.Codelength)
		}
		return math.Abs(ls[0]-ls[1]) < 0.05 && math.Abs(ls[0]-ls[2]) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMoreWorkersSameInvariants: worker count must never break the
// structural invariants (it may change the exact partition).
func TestQuickMoreWorkersSameInvariants(t *testing.T) {
	f := func(seed uint16, wRaw uint8) bool {
		g := randomGraph(uint64(seed), 30, 80)
		opt := DefaultOptions()
		opt.Workers = int(wRaw)%7 + 1
		res, err := Run(g, opt)
		if err != nil {
			return false
		}
		if len(res.PerWorker) != opt.Workers {
			return false
		}
		return res.Codelength <= res.OneLevelCodelength+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
