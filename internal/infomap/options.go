// Package infomap implements the paper's core system: a shared-memory
// parallel Infomap community-detection algorithm with the kernel structure of
// HyPC-Map (PageRank, FindBestCommunity, Convert2SuperNode, UpdateMembers)
// and a pluggable sparse accumulator so the identical FindBestCommunity
// kernel runs over either the software hash table Baseline or the ASA
// accelerator model — the comparison that constitutes the paper's evaluation.
package infomap

import (
	"fmt"
	"time"

	"github.com/asamap/asamap/internal/accum"
	"github.com/asamap/asamap/internal/asa"
	"github.com/asamap/asamap/internal/clock"
	"github.com/asamap/asamap/internal/hashgraph"
	"github.com/asamap/asamap/internal/hashtab"
	"github.com/asamap/asamap/internal/obs"
	"github.com/asamap/asamap/internal/perf"
	"github.com/asamap/asamap/internal/sched"
	"github.com/asamap/asamap/internal/trace"
)

// Teleportation selects how directed-graph teleportation enters the code.
type Teleportation int

const (
	// TeleportRecorded encodes teleportation steps (the original 2008 map
	// equation and the model HyPC-Map/RelaxMap implement).
	TeleportRecorded Teleportation = iota
	// TeleportUnrecorded uses teleportation only to make the walk ergodic;
	// the code prices arc flows alone (modern Infomap's default).
	TeleportUnrecorded
)

// String names the teleportation model.
func (t Teleportation) String() string {
	if t == TeleportUnrecorded {
		return "unrecorded"
	}
	return "recorded"
}

// AccumKind selects the sparse-accumulation backend of the
// FindBestCommunity kernel.
type AccumKind int

const (
	// Baseline is the explicit chained software hash table modeled on
	// std::unordered_map — the paper's Baseline.
	Baseline AccumKind = iota
	// ASA is the content-addressable-memory accelerator model with LRU
	// eviction and overflow merge — the paper's contribution.
	ASA
	// GoMap is Go's builtin map, used as a correctness oracle and an
	// "idiomatic Go" reference point.
	GoMap
	// HashGraph is the probe-free counting-sort/prefix-sum accumulator
	// (package hashgraph): session appends resolved in two branch-light
	// passes, no chains, no probing, no rehash churn.
	HashGraph
)

// String names the backend as used in reports.
func (k AccumKind) String() string {
	switch k {
	case Baseline:
		return "baseline"
	case ASA:
		return "asa"
	case GoMap:
		return "gomap"
	case HashGraph:
		return "hashgraph"
	}
	return fmt.Sprintf("AccumKind(%d)", int(k))
}

// SchedPolicy selects how sweep blocks are scheduled onto workers.
type SchedPolicy int

const (
	// SchedSteal (the default) partitions each sweep into degree-aware
	// blocks and lets idle workers steal blocks from stragglers' spans.
	SchedSteal SchedPolicy = iota
	// SchedStatic gives each worker one contiguous equal-vertex-count chunk
	// — the pre-scheduler baseline, kept measurable for comparison.
	SchedStatic
)

// String names the scheduling policy.
func (s SchedPolicy) String() string {
	if s == SchedStatic {
		return "static"
	}
	return "steal"
}

// Options configures a run. The zero value is not valid; start from
// DefaultOptions.
type Options struct {
	// Kind selects the accumulator backend.
	Kind AccumKind
	// ASAConfig configures the per-worker CAM when Kind == ASA.
	ASAConfig asa.Config
	// Workers is the number of parallel workers ("cores"); each gets its own
	// pair of core-local accumulators, mirroring the tid parameter of the
	// paper's ASA interface. Zero means runtime.GOMAXPROCS(0) — all CPUs
	// available to the process; negative values are invalid. For a fixed
	// Seed the result is bit-identical across any Workers value.
	Workers int
	// Sched selects the sweep scheduling policy; see SchedPolicy. The zero
	// value is SchedSteal.
	Sched SchedPolicy
	// MaxSweeps bounds the vertex-level optimization sweeps per level.
	MaxSweeps int
	// MinImprovement is the codelength gain (bits) below which a level's
	// sweep loop stops.
	MinImprovement float64
	// MaxLevels bounds the super-node contraction hierarchy depth.
	MaxLevels int
	// OuterIters bounds the outer tune loop: each iteration fine-tunes leaf
	// vertices from the current partition, then rebuilds the super-node
	// hierarchy — the core-loop structure of the reference Infomap that
	// keeps the greedy from freezing early local merges into the result.
	OuterIters int
	// Seed makes vertex visitation order (and hence the run) deterministic.
	Seed uint64
	// Damping is the random-walk continuation probability for directed
	// graphs (teleportation is 1-Damping).
	Damping float64
	// Teleport selects recorded (paper/HyPC-Map) or unrecorded (modern
	// Infomap default) teleportation for directed graphs.
	Teleport Teleportation
	// WarmStart, when non-nil, seeds the run from a parent version's
	// partition instead of singletons: WarmStart[v] is vertex v's starting
	// module and len(WarmStart) must equal the graph's vertex count (module
	// IDs need not be dense; they are compacted on entry). This is the
	// incremental-detection path: after a delta batch, re-detection starts
	// where the parent version converged. The seed partition is
	// result-relevant, so it joins the options fingerprint.
	WarmStart []uint32
	// FrontierSeeds are the vertices a delta batch touched. When WarmStart
	// is set and FrontierSeeds is non-empty, only vertices within
	// FrontierHops hops of a seed are re-optimized at the leaf level; the
	// rest stay frozen in their warm-start modules (they still merge at
	// super levels). Empty FrontierSeeds means no restriction — the whole
	// graph re-optimizes from the warm seed. Setting FrontierSeeds without
	// WarmStart is an error.
	FrontierSeeds []uint32
	// FrontierHops is the k of the k-hop frontier around FrontierSeeds.
	// 0 re-optimizes the touched vertices alone; values large enough to
	// cover the whole graph make the run byte-identical to an unrestricted
	// warm start (the contract the differential tier pins). Ignored unless
	// WarmStart and FrontierSeeds are both set; negative is an error.
	FrontierHops int
	// Clock supplies the wall-clock reads behind Elapsed and the per-sweep
	// timings. Nil means the real clock; tests inject clock.Fake to make
	// timing fields deterministic. Timings never influence the partition,
	// so Clock is excluded from Fingerprint.
	Clock clock.Clock
	// Trace, when non-nil, is the parent span under which the run emits its
	// hierarchical span tree (run → level → sweep → kernel, plus volatile
	// per-worker spans). The serving layer passes its per-request root span;
	// the CLI passes a span from a fresh obs.Tracer. Nil disables tracing at
	// zero cost — spans are nil and every operation no-ops. Tracing is pure
	// telemetry and never influences the partition, so Trace is excluded
	// from Fingerprint.
	Trace *obs.Span
}

// DefaultOptions returns the standard configuration: Baseline accumulator,
// one worker, 8KB LRU CAM for ASA runs, damping 0.85.
func DefaultOptions() Options {
	return Options{
		Kind:           Baseline,
		ASAConfig:      asa.DefaultConfig(),
		Workers:        1,
		MaxSweeps:      20,
		MinImprovement: 1e-9,
		MaxLevels:      30,
		OuterIters:     4,
		Seed:           1,
		Damping:        0.85,
	}
}

// clk returns the configured clock, defaulting to the real one.
func (o Options) clk() clock.Clock {
	if o.Clock == nil {
		return clock.Real{}
	}
	return o.Clock
}

func (o Options) validate() error {
	if o.Workers < 0 {
		return fmt.Errorf("infomap: Workers %d < 0 (0 means all CPUs)", o.Workers)
	}
	switch o.Sched {
	case SchedSteal, SchedStatic:
	default:
		return fmt.Errorf("infomap: unknown scheduling policy %d", int(o.Sched))
	}
	if o.MaxSweeps < 1 {
		return fmt.Errorf("infomap: MaxSweeps %d < 1", o.MaxSweeps)
	}
	if o.MaxLevels < 1 {
		return fmt.Errorf("infomap: MaxLevels %d < 1", o.MaxLevels)
	}
	if o.OuterIters < 1 {
		return fmt.Errorf("infomap: OuterIters %d < 1", o.OuterIters)
	}
	if o.Damping <= 0 || o.Damping >= 1 {
		return fmt.Errorf("infomap: Damping %g out of (0,1)", o.Damping)
	}
	if o.MinImprovement < 0 {
		return fmt.Errorf("infomap: MinImprovement %g < 0", o.MinImprovement)
	}
	switch o.Kind {
	case Baseline, ASA, GoMap, HashGraph:
	default:
		return fmt.Errorf("infomap: unknown accumulator kind %d", int(o.Kind))
	}
	if o.FrontierHops < 0 {
		return fmt.Errorf("infomap: FrontierHops %d < 0", o.FrontierHops)
	}
	if o.WarmStart == nil && len(o.FrontierSeeds) > 0 {
		return fmt.Errorf("infomap: FrontierSeeds set without WarmStart")
	}
	return nil
}

// newAccumulator constructs one accumulator instance for the configured kind.
// hint is the expected maximum session size — the graph's largest degree —
// so the software tables start big enough that large-hub graphs pay no
// rehash/growth churn (hint <= 0 falls back to a small default). The ASA CAM
// ignores it: its capacity is the modeled hardware's, not the workload's.
func (o Options) newAccumulator(hint int) (accum.Accumulator, error) {
	if hint <= 0 {
		hint = 64
	}
	switch o.Kind {
	case Baseline:
		return hashtab.New(hint), nil
	case ASA:
		return asa.New(o.ASAConfig)
	case GoMap:
		return accum.NewMap(hint), nil
	case HashGraph:
		return hashgraph.New(hint), nil
	}
	return nil, fmt.Errorf("infomap: unknown accumulator kind %d", int(o.Kind))
}

// WorkerStats carries the per-worker ("per core") event counts that the
// paper's Figures 9–11 plot.
type WorkerStats struct {
	Accum accum.Stats     // accumulator events (both tables of the worker)
	Work  perf.KernelWork // non-accumulator kernel work
}

// SweepStat records one FindBestCommunity sweep: its wall time and the
// accumulator/kernel events it performed. The per-iteration rows of the
// paper's Tables III/IV and the multi-core breakdowns of Figure 7 are built
// from these.
type SweepStat struct {
	Level      int           // hierarchy level (0 = vertex level)
	Sweep      int           // sweep index within the level
	Wall       time.Duration // parallel FindBestCommunity evaluation time
	WallCommit time.Duration // serial UpdateMembers commit time
	Stats      accum.Stats   // accumulator events during this sweep
	Work       perf.KernelWork
	Sched      sched.Stats // scheduler dispatch stats (busy, steals, imbalance)
	Codelength float64     // L(M) after the sweep
	Moves      uint64      // moves committed in the sweep
}

// Result is the outcome of a Run.
type Result struct {
	// Membership assigns each original vertex its final module (dense IDs).
	Membership []uint32
	// NumModules is the number of detected communities.
	NumModules int
	// Codelength is the final two-level map equation value L(M) in bits,
	// recomputed from scratch on the base flow for the final partition.
	Codelength float64
	// OneLevelCodelength is the no-structure reference entropy in bits.
	OneLevelCodelength float64
	// Levels is the number of hierarchy levels processed (>=1).
	Levels int
	// Sweeps is the total number of optimization sweeps across levels.
	Sweeps int
	// Moves is the total number of applied module changes.
	Moves uint64
	// Breakdown holds wall-clock time per kernel.
	Breakdown *trace.Breakdown
	// PerWorker holds event counts per worker, index = worker id.
	PerWorker []WorkerStats
	// SweepLog records every optimization sweep in execution order.
	SweepLog []SweepStat
	// Steals is the total number of blocks executed by a worker other than
	// the owner of their span, summed over all sweeps.
	Steals uint64
	// FrontierSize is the number of leaf vertices the warm-start frontier
	// allowed to re-optimize (the whole graph for an unrestricted warm
	// start; 0 for a cold run).
	FrontierSize int
	// FrozenVertices is the number of leaf vertices the warm-start frontier
	// froze in their seeded modules (0 for cold or unrestricted runs).
	FrozenVertices int
	// Elapsed is the total wall time of the run.
	Elapsed time.Duration
}

// TotalStats sums the accumulator events over all workers.
func (r *Result) TotalStats() accum.Stats {
	var s accum.Stats
	for _, w := range r.PerWorker {
		s.Add(w.Accum)
	}
	return s
}

// MeanImbalance returns the busy-time-weighted mean of the per-sweep worker
// imbalance ratio (max busy / mean busy; 1.0 is perfect balance). Weighting
// by sweep busy time keeps the many near-empty convergence-tail sweeps from
// drowning out the expensive early ones.
func (r *Result) MeanImbalance() float64 {
	var num, den float64
	for _, s := range r.SweepLog {
		w := float64(s.Sched.BusyTotal())
		num += s.Sched.Imbalance * w
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// TotalWork sums the kernel work over all workers.
func (r *Result) TotalWork() perf.KernelWork {
	var w perf.KernelWork
	for _, ws := range r.PerWorker {
		w.Add(ws.Work)
	}
	return w
}
