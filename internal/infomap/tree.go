package infomap

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// WriteTree emits the hierarchy in the reference Infomap ".tree" format:
// one line per leaf vertex,
//
//	path flow "name" id
//
// where path is the colon-separated module path from the top level down to
// the vertex's rank inside its leaf module (1-based, best-flow first), flow
// is the vertex visit rate, name its label, and id the vertex ID. labels may
// be nil, in which case the vertex ID doubles as the name. flows must be the
// base visit rates (e.g. Flow.NodeFlow); nil writes zero flows.
func (r *HierResult) WriteTree(w io.Writer, flows []float64, labels []uint64) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# path flow name node_id\n")
	fmt.Fprintf(bw, "# codelength %.6f bits (two-level %.6f)\n", r.Codelength, r.TwoLevelCodelength)
	flowOf := func(v int) float64 {
		if flows == nil {
			return 0
		}
		return flows[v]
	}
	nameOf := func(v int) string {
		if labels == nil {
			return fmt.Sprintf("%d", v)
		}
		return fmt.Sprintf("%d", labels[v])
	}

	var walk func(n *HierNode, path []int) error
	walk = func(n *HierNode, path []int) error {
		if n.IsLeaf() {
			// Order members by descending flow, the reference convention.
			members := append([]int(nil), n.Vertices...)
			sort.Slice(members, func(i, j int) bool {
				fi, fj := flowOf(members[i]), flowOf(members[j])
				if fi != fj {
					return fi > fj
				}
				return members[i] < members[j]
			})
			for rank, v := range members {
				for _, p := range path {
					fmt.Fprintf(bw, "%d:", p)
				}
				fmt.Fprintf(bw, "%d %.9f \"%s\" %d\n", rank+1, flowOf(v), nameOf(v), v)
			}
			return nil
		}
		// Children ordered by descending flow, reference convention.
		order := make([]int, len(n.Children))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool {
			fi, fj := n.Children[order[i]].Flow, n.Children[order[j]].Flow
			if fi != fj {
				return fi > fj
			}
			return order[i] < order[j]
		})
		for rank, idx := range order {
			if err := walk(n.Children[idx], append(path, rank+1)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(r.Root, nil); err != nil {
		return err
	}
	return bw.Flush()
}
