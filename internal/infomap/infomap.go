package infomap

import (
	"context"
	"fmt"
	"runtime"

	"github.com/asamap/asamap/internal/accum"
	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/mapeq"
	"github.com/asamap/asamap/internal/obs"
	"github.com/asamap/asamap/internal/pagerank"
	"github.com/asamap/asamap/internal/perf"
	"github.com/asamap/asamap/internal/rng"
	"github.com/asamap/asamap/internal/sched"
	"github.com/asamap/asamap/internal/trace"
)

// Run detects communities in g by minimizing the map equation, using the
// multi-level greedy scheme of HyPC-Map:
//
//  1. PageRank: compute the stationary random-walk flow (closed form for
//     undirected graphs, power iteration with teleportation for directed).
//  2. FindBestCommunity: repeated parallel sweeps over all vertices; each
//     vertex greedily joins the neighboring module that shrinks L(M) most,
//     with per-module flows accumulated through the configured backend.
//  3. Convert2SuperNode: contract each module to a super node carrying the
//     aggregated flow.
//  4. UpdateMembers: commit the moves / propagate module IDs to the leaves.
//
// Steps 2–4 repeat on the contracted graph until no further compression.
func Run(g *graph.Graph, opt Options) (*Result, error) {
	// Documented non-cancellable convenience entry point; callers who need
	// preemption use RunContext.
	return RunContext(context.Background(), g, opt)
}

// RunContext is Run under a context: cancellation is observed between
// kernels and at every optimization-sweep boundary, returning ctx.Err()
// promptly without leaking worker goroutines. Worker panics are recovered
// and surfaced as errors instead of crashing the process.
func RunContext(ctx context.Context, g *graph.Graph, opt Options) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if opt.Workers == 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	clk := opt.clk()
	start := clk.Now()
	bd := trace.NewBreakdown()

	// Span tree root of this run. opt.Trace nil makes every span below nil,
	// and nil spans absorb all calls, so the untraced path stays branch-free.
	// Worker count and scheduling policy never change result bytes, so they
	// are volatile attributes — excluded from the canonical tree that the
	// determinism tests compare across schedules.
	run := opt.Trace.Child("run")
	run.SetUint("seed", opt.Seed)
	run.SetAttr("kind", opt.Kind.String())
	run.SetAttr("teleport", opt.Teleport.String())
	run.SetUint("vertices", uint64(g.N()))
	run.SetVolatileUint("workers", uint64(opt.Workers))
	run.SetVolatileAttr("sched", opt.Sched.String())
	defer run.End()

	// --- Kernel 1: PageRank / flow construction. ---
	var baseFlow *mapeq.Flow
	prSpan := run.Child(trace.KernelPageRank)
	prStart := clk.Now()
	if g.Directed() {
		cfg := pagerank.DefaultConfig()
		cfg.Damping = opt.Damping
		cfg.Workers = opt.Workers
		pr, err := pagerank.ComputeContext(ctx, g, cfg)
		if err != nil {
			return nil, err
		}
		if opt.Teleport == TeleportUnrecorded {
			baseFlow, err = mapeq.NewDirectedFlowUnrecorded(g, pr.Rank, opt.Damping)
		} else {
			baseFlow, err = mapeq.NewDirectedFlow(g, pr.Rank, opt.Damping)
		}
		if err != nil {
			return nil, err
		}
	} else {
		var err error
		baseFlow, err = mapeq.NewUndirectedFlow(g)
		if err != nil {
			return nil, err
		}
	}
	bd.Add(trace.KernelPageRank, clk.Since(prStart))
	prSpan.End()

	// Size each worker's accumulators for the largest neighborhood they can
	// see: one session holds at most one entry per distinct neighbor module,
	// bounded by the vertex degree. Deriving the hint from the graph instead
	// of a fixed constant keeps large-hub (power-law) graphs from paying
	// rehash/growth churn in every hot session. Contracted levels can in
	// principle exceed the leaf bound (a sparse graph may contract to a dense
	// quotient), so the hint is a starting size, not a hard capacity.
	accumHint := g.MaxDegree()
	workers := make([]*worker, opt.Workers)
	for i := range workers {
		w, err := newWorker(i, opt, accumHint)
		if err != nil {
			return nil, err
		}
		workers[i] = w
	}
	pool := sched.NewPool(opt.Workers)
	defer pool.Close()

	res := &Result{
		Breakdown:  bd,
		Membership: make([]uint32, g.N()),
	}
	for i := range res.Membership {
		res.Membership[i] = uint32(i)
	}

	// Warm start: seed the global partition from the parent version and,
	// when the delta's touched set is known, freeze every leaf vertex
	// outside its k-hop frontier. frozen == nil means no restriction — both
	// for cold runs and for warm runs whose frontier covers the whole
	// graph, which is exactly what makes full-coverage warm runs
	// byte-identical to unrestricted ones.
	var frozen []bool
	run.SetBool("warm_start", opt.WarmStart != nil)
	if opt.WarmStart != nil {
		if len(opt.WarmStart) != g.N() {
			return nil, fmt.Errorf("infomap: WarmStart length %d, want %d", len(opt.WarmStart), g.N())
		}
		copy(res.Membership, opt.WarmStart)
		seeded := make(map[uint32]struct{}, 64)
		for _, m := range opt.WarmStart {
			seeded[m] = struct{}{}
		}
		// The seeded module count is the structure reused from the parent
		// version — the "levels reused" signal: a cold run would have to
		// rebuild this partition through its whole hierarchy.
		run.SetUint("warm_modules_seeded", uint64(len(seeded)))
		res.FrontierSize = g.N()
		if len(opt.FrontierSeeds) > 0 {
			fr := graph.KHopFrontier(g, opt.FrontierSeeds, opt.FrontierHops)
			size := 0
			for _, in := range fr {
				if in {
					size++
				}
			}
			if size < g.N() {
				frozen = make([]bool, g.N())
				for v, in := range fr {
					frozen[v] = !in
				}
			}
			res.FrontierSize = size
			res.FrozenVertices = g.N() - size
		}
		run.SetUint("frontier_hops", uint64(opt.FrontierHops))
		run.SetUint("frontier_seeds", uint64(len(opt.FrontierSeeds)))
		run.SetUint("frontier_size", uint64(res.FrontierSize))
		run.SetUint("frontier_frozen", uint64(res.FrozenVertices))
	}

	if g.N() == 0 {
		res.Elapsed = clk.Since(start)
		res.PerWorker = collectWorkerStats(workers)
		return res, nil
	}

	// Leaf-level node term is carried through all super-node levels so that
	// codelengths remain those of the original vertices.
	leafState, err := mapeq.NewState(baseFlow, make([]uint32, g.N()), 1)
	if err != nil {
		return nil, err
	}
	leafNodeTerm := leafState.NodeTerm()
	res.OneLevelCodelength = mapeq.OneLevelCodelength(baseFlow)

	r := rng.New(opt.Seed)

	// Outer tune loop (the reference Infomap's core loop): fine-tune leaf
	// vertices from the current partition, rebuild the super-node hierarchy
	// from the refined partition, and repeat while the codelength improves.
	bestL := res.OneLevelCodelength
	for outer := 0; outer < opt.OuterIters; outer++ {
		flow := baseFlow
		for level := 0; level < opt.MaxLevels; level++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			n := flow.G.N()
			var membership []uint32
			if level == 0 {
				// Leaf level: start from the current global partition
				// (singletons on the first outer iteration) so earlier merges
				// can be undone vertex by vertex.
				membership = make([]uint32, n)
				copy(membership, res.Membership)
				mapeq.CompactMembership(membership)
			} else {
				membership = make([]uint32, n)
				for i := range membership {
					membership[i] = uint32(i)
				}
			}
			st, err := mapeq.NewState(flow, membership, n)
			if err != nil {
				return nil, err
			}
			st.OverrideNodeTerm(leafNodeTerm)
			res.Levels++

			lv := run.Child("level")
			lv.SetUint("outer", uint64(outer))
			lv.SetUint("level", uint64(level))
			lv.SetUint("vertices", uint64(n))

			// The frontier restriction applies at the leaf level only: super
			// levels operate on contracted modules, where freezing would
			// veto merges the map equation wants regardless of the delta.
			var fz []bool
			if level == 0 {
				fz = frozen
			}
			sweeps, moves, err := optimizeLevel(ctx, st, flow, workers, pool, opt, r, bd, level, res, lv, fz)
			res.Sweeps += sweeps
			res.Moves += moves
			lv.SetUint("sweeps", uint64(sweeps))
			lv.SetUint("moves", moves)
			if err != nil {
				lv.End()
				return nil, err
			}

			// --- Kernel 3/4: contract modules to super nodes. ---
			cs := lv.Child(trace.KernelConvert2SuperNode)
			csStart := clk.Now()
			k := mapeq.CompactMembership(membership)
			if level == 0 {
				copy(res.Membership, membership)
			} else {
				for v := range res.Membership {
					res.Membership[v] = membership[res.Membership[v]]
				}
			}
			if (level > 0 && k == n) || k == 1 {
				// No merging at a super level, or everything merged:
				// the hierarchy has converged.
				bd.Add(trace.KernelConvert2SuperNode, clk.Since(csStart))
				cs.SetUint("modules", uint64(k))
				cs.End()
				lv.End()
				break
			}
			flow, err = flow.ContractParallel(membership, k, pool)
			if err != nil {
				return nil, err
			}
			bd.Add(trace.KernelConvert2SuperNode, clk.Since(csStart))
			cs.SetUint("modules", uint64(k))
			cs.End()
			lv.End()
		}

		// Evaluate the outer iteration's result from scratch on the base
		// flow; stop when it no longer improves.
		mem := make([]uint32, len(res.Membership))
		copy(mem, res.Membership)
		k := mapeq.CompactMembership(mem)
		stCheck, err := mapeq.NewState(baseFlow, mem, k)
		if err != nil {
			return nil, err
		}
		l := stCheck.Codelength()
		if bestL-l < opt.MinImprovement {
			break
		}
		bestL = l
	}

	// Recompute the final codelength from scratch on the base flow — the
	// honest number, free of any incremental drift.
	mem := make([]uint32, len(res.Membership))
	copy(mem, res.Membership)
	k := mapeq.CompactMembership(mem)
	copy(res.Membership, mem)
	finalState, err := mapeq.NewState(baseFlow, mem, k)
	if err != nil {
		return nil, err
	}
	res.Codelength = finalState.Codelength()
	res.NumModules = k

	// A fragmented two-level code can price worse than the trivial
	// one-module code on graphs with little community structure; like the
	// reference Infomap, fall back to the one-level solution then.
	if res.Codelength > res.OneLevelCodelength {
		for i := range res.Membership {
			res.Membership[i] = 0
		}
		res.Codelength = res.OneLevelCodelength
		res.NumModules = 1
	}

	for _, w := range workers {
		w.snapshotStats()
	}
	res.PerWorker = collectWorkerStats(workers)
	res.Elapsed = clk.Since(start)

	// Fold the run-total accumulator telemetry into the breakdown's event
	// counters, where /metrics and run artifacts pick it up.
	addAccumEvents(bd, "", res.TotalStats())
	run.SetUint("modules", uint64(res.NumModules))
	run.SetFloat("codelength", res.Codelength)
	run.SetUint("levels", uint64(res.Levels))
	run.SetUint("sweeps", uint64(res.Sweeps))
	run.SetUint("moves", res.Moves)
	return res, nil
}

// addAccumEvents records every accum.Stats counter as a named Breakdown
// event under the given prefix ("" for run totals, "Level0/" for per-level
// folds). All these totals are sums over per-vertex accumulator sessions and
// are therefore identical across worker counts and steal schedules — except
// ChainHops and Rehashes, which depend on each worker's private table-growth
// history; they are exported for capacity tuning but must never enter a
// determinism comparison.
func addAccumEvents(bd *trace.Breakdown, prefix string, s accum.Stats) {
	bd.AddEvents(prefix+"AccumAccumulates", s.Accumulates)
	bd.AddEvents(prefix+"AccumLookups", s.Lookups)
	bd.AddEvents(prefix+"AccumHits", s.Hits)
	bd.AddEvents(prefix+"AccumMisses", s.Misses)
	bd.AddEvents(prefix+"AccumChainHops", s.ChainHops)
	bd.AddEvents(prefix+"AccumInserts", s.Inserts)
	bd.AddEvents(prefix+"AccumRehashes", s.Rehashes)
	bd.AddEvents(prefix+"AccumEvictions", s.Evictions)
	bd.AddEvents(prefix+"AccumOverflowKV", s.OverflowKV)
	bd.AddEvents(prefix+"AccumMergedKV", s.MergedKV)
	bd.AddEvents(prefix+"AccumBinnedKV", s.BinnedKV)
	bd.AddEvents(prefix+"AccumScatteredKV", s.ScatteredKV)
	bd.AddEvents(prefix+"AccumBinMergedKV", s.BinMergedKV)
	bd.AddEvents(prefix+"AccumGathers", s.Gathers)
	bd.AddEvents(prefix+"AccumGatheredKV", s.GatheredKV)
	bd.AddEvents(prefix+"AccumResets", s.Resets)
}

func collectWorkerStats(workers []*worker) []WorkerStats {
	out := make([]WorkerStats, len(workers))
	for i, w := range workers {
		out[i] = w.stats
	}
	return out
}

// sweepBlocksPerWorker oversubscribes steal-mode sweeps: more blocks than
// workers gives the stealing tail something to rebalance with. Eight per
// worker keeps per-block dispatch overhead negligible against typical
// block work while bounding the worst-case tail at ~1/8 of a worker's span.
const sweepBlocksPerWorker = 8

// sweepMinBlockVertices stops oversubscription from shattering small levels
// into blocks too tiny to amortize the dispatch atomics.
const sweepMinBlockVertices = 32

// sweepBounds partitions the order[0:m] of a sweep into schedulable blocks.
// Static policy (or one worker) reproduces the pre-scheduler baseline: one
// equal-vertex-count chunk per worker. Steal policy cuts degree-aware blocks
// — block boundaries follow the prefix sum of adjacency sizes, so a block
// holding one huge hub stays small in vertex count and a block of leaves
// stays large, equalizing per-block work up front.
func sweepBounds(flow *mapeq.Flow, order []uint32, workers int, policy SchedPolicy) ([]int, sched.Mode) {
	m := len(order)
	if policy == SchedStatic || workers == 1 {
		return sched.UniformBounds(m, workers), sched.Static
	}
	blocks := workers * sweepBlocksPerWorker
	if maxBlocks := (m + sweepMinBlockVertices - 1) / sweepMinBlockVertices; blocks > maxBlocks {
		blocks = maxBlocks
	}
	g := flow.G
	bounds := sched.WeightedBounds(m, blocks, func(i int) int64 {
		v := int(order[i])
		return int64(g.OutDegree(v)+g.InDegree(v)) + 1
	})
	return bounds, sched.Steal
}

// optimizeLevel runs FindBestCommunity sweeps on one level until the
// codelength stops improving. Each sweep evaluates all vertices in parallel
// against a frozen state snapshot (read-only), then commits the improving
// moves serially with a ΔL re-check — the relaxed two-phase concurrency that
// shared-memory parallel Infomap implementations use. Cancellation is
// checked once per sweep; a panic in any worker aborts the level with an
// error after all workers of the sweep have finished (so no goroutine
// outlives the call).
func optimizeLevel(ctx context.Context, st *mapeq.State, flow *mapeq.Flow, workers []*worker,
	pool *sched.Pool, opt Options, r *rng.RNG, bd *trace.Breakdown, level int, res *Result,
	lvSpan *obs.Span, frozen []bool) (sweeps int, totalMoves uint64, err error) {

	n := flow.G.N()
	clk := opt.clk()
	// Active-vertex optimization (as in RelaxMap/HyPC-Map): only vertices
	// whose neighborhood changed in the previous sweep are re-evaluated, so
	// per-iteration work shrinks as the partition converges — the decreasing
	// per-iteration times of the paper's Tables III/IV. A warm-start frozen
	// mask (leaf level only) removes out-of-frontier vertices from the very
	// first sweep and keeps neighbor activation from waking them later: the
	// delta's influence can spread k hops, no further.
	active := make([]bool, n)
	frozenCount := uint64(0)
	for i := range active {
		active[i] = frozen == nil || !frozen[i]
		if !active[i] {
			frozenCount++
		}
	}
	if frozenCount > 0 {
		// Account the masked-out vertices once per level entry; the perf
		// model prices each as a ~2-instruction mask test against the ~60 a
		// full evaluation costs — the modeled saving of warm start.
		workers[0].stats.Work.FrontierFrozen += frozenCount
		lvSpan.SetUint("frontier_frozen", frozenCount)
	}
	order := make([]uint32, 0, n)
	// Per-block proposal buffers, reused across sweeps. Proposals are kept
	// per block rather than per worker so that concatenating the buffers in
	// block index order yields exactly the shuffled visitation order — the
	// commit sequence is then independent of which worker ran (or stole)
	// which block, which is what makes results bit-identical across worker
	// counts and steal schedules.
	var props [][]proposal

	// Per-level accumulator event totals, folded into the breakdown's named
	// event counters when the level finishes.
	var levelStats accum.Stats

	prevL := st.Codelength()
	for sweep := 0; sweep < opt.MaxSweeps; sweep++ {
		if err := ctx.Err(); err != nil {
			return sweeps, totalMoves, err
		}
		order = order[:0]
		for v := 0; v < n; v++ {
			if active[v] {
				order = append(order, uint32(v))
			}
		}
		if len(order) == 0 {
			break
		}
		r.ShuffleUint32(order)
		preStats, preWork := liveTotals(workers)

		sw := lvSpan.Child("sweep")
		sw.SetUint("sweep", uint64(sweep))
		sw.SetUint("active", uint64(len(order)))

		// --- Kernel 2: FindBestCommunity (parallel, read-only). ---
		fbc := sw.Child(trace.KernelFindBestCommunity)
		fbcStart := clk.Now()
		bounds, mode := sweepBounds(flow, order, len(workers), opt.Sched)
		nblocks := len(bounds) - 1
		for len(props) < nblocks {
			props = append(props, nil)
		}
		ds, err := pool.DispatchTraced(bounds, mode, func(wid, blk, lo, hi int) error {
			var perr error
			props[blk], perr = safeEvaluateBlock(workers[wid], st, flow, order, lo, hi, props[blk][:0])
			return perr
		}, fbc)
		fbc.SetVolatileUint("blocks", uint64(nblocks))
		fbc.End()
		if err != nil {
			sw.End()
			return sweeps, totalMoves, err
		}
		fbcWall := clk.Since(fbcStart)
		bd.Add(trace.KernelFindBestCommunity, fbcWall)
		bd.Observe(trace.GaugeSweepImbalance, ds.Imbalance)
		bd.Observe(trace.GaugeSweepSteals, float64(ds.Steals))
		res.Steals += ds.Steals

		// --- Kernel 4: UpdateMembers (serial commit with re-check). ---
		um := sw.Child(trace.KernelUpdateMembers)
		umStart := clk.Now()
		for i := range active {
			active[i] = false
		}
		moves := uint64(0)
		// Blocks partition the shuffled order, so walking them in index
		// order commits proposals in exactly the order a serial sweep
		// would have visited the vertices.
		for blk := 0; blk < nblocks; blk++ {
			for _, p := range props[blk] {
				v := int(p.node)
				old := st.Module(v)
				if old == p.target {
					continue
				}
				// Earlier commits in this sweep may have moved this vertex's
				// neighbors, so the flows captured during parallel evaluation
				// can be stale. Recompute them against the *current*
				// membership (a plain adjacency walk — synchronization
				// bookkeeping, not part of the modeled hash workload) and
				// re-evaluate ΔL; committing only exact improvements makes
				// the codelength strictly decreasing and immune to the
				// oscillations synchronous parallel updates are prone to.
				oo, io, on, in := commitFlows(flow, st, v, old, p.target)
				view := flow.View(v)
				if d := st.DeltaMove(view, p.target, oo, io, on, in); d < 0 {
					st.Apply(view, p.target, oo, io, on, in)
					workers[p.wid].stats.Work.MovesApplied++
					moves++
					// The moved vertex and its neighborhood become active —
					// except vertices the warm-start frontier froze, which
					// never re-enter the sweep order.
					active[v] = true
					for _, t := range flow.G.OutNeighbors(v) {
						if frozen == nil || !frozen[t] {
							active[t] = true
						}
					}
					for _, t := range flow.G.InNeighbors(v) {
						if frozen == nil || !frozen[t] {
							active[t] = true
						}
					}
				}
			}
		}
		// Wash accumulated floating-point drift out of the incremental
		// aggregates once per sweep.
		st.Refresh()
		commitWall := clk.Since(umStart)
		bd.Add(trace.KernelUpdateMembers, commitWall)
		um.SetUint("moves", moves)
		um.End()

		postStats, postWork := liveTotals(workers)
		sweepStats := postStats.Sub(preStats)
		levelStats.Add(sweepStats)
		res.SweepLog = append(res.SweepLog, SweepStat{
			Level:      level,
			Sweep:      sweep,
			Wall:       fbcWall,
			WallCommit: commitWall,
			Stats:      sweepStats,
			Work:       postWork.Sub(preWork),
			Sched:      ds,
			Codelength: st.Codelength(),
			Moves:      moves,
		})

		// The four CAM counters of the paper's evaluation — and the
		// HashGraph resolve counters — are sums over per-vertex accumulator
		// sessions, so they are schedule-invariant and safe as deterministic
		// attributes; dispatch shape (steals, imbalance) is volatile by
		// construction.
		sw.SetUint("cam_hits", sweepStats.Hits)
		sw.SetUint("cam_misses", sweepStats.Misses)
		sw.SetUint("cam_evictions", sweepStats.Evictions)
		sw.SetUint("cam_overflow_kv", sweepStats.OverflowKV)
		sw.SetUint("hg_binned_kv", sweepStats.BinnedKV)
		sw.SetUint("hg_scattered_kv", sweepStats.ScatteredKV)
		sw.SetUint("hg_bin_merged_kv", sweepStats.BinMergedKV)
		sw.SetUint("moves", moves)
		sw.SetFloat("codelength", st.Codelength())
		sw.SetVolatileUint("steals", ds.Steals)
		sw.SetVolatileFloat("imbalance", ds.Imbalance)
		sw.End()

		sweeps++
		totalMoves += moves
		l := st.Codelength()
		if moves == 0 || prevL-l < opt.MinImprovement {
			break
		}
		prevL = l
	}
	addAccumEvents(bd, fmt.Sprintf("Level%d/", level), accum.Stats{
		Hits:        levelStats.Hits,
		Misses:      levelStats.Misses,
		Evictions:   levelStats.Evictions,
		OverflowKV:  levelStats.OverflowKV,
		BinnedKV:    levelStats.BinnedKV,
		ScatteredKV: levelStats.ScatteredKV,
		BinMergedKV: levelStats.BinMergedKV,
	})
	return sweeps, totalMoves, nil
}

// safeEvaluateBlock runs one block of a FindBestCommunity sweep, converting
// any panic (a bug in an accumulator backend, an out-of-range module ID)
// into an error so one bad worker cannot take down the caller's process.
func safeEvaluateBlock(w *worker, st *mapeq.State, flow *mapeq.Flow, order []uint32, lo, hi int, dst []proposal) (out []proposal, err error) {
	defer func() {
		if p := recover(); p != nil {
			out = dst
			err = fmt.Errorf("infomap: worker %d panicked: %v", w.id, p)
		}
	}()
	return w.evaluateBlock(st, flow, order, lo, hi, dst), nil
}

// liveTotals sums the cumulative accumulator stats and kernel work over all
// workers at this instant (used to delta out per-sweep event counts).
func liveTotals(workers []*worker) (accum.Stats, perf.KernelWork) {
	var st accum.Stats
	var wk perf.KernelWork
	for _, w := range workers {
		st.Add(w.out.Stats())
		st.Add(w.in.Stats())
		wk.Add(w.stats.Work)
	}
	return st, wk
}

// commitFlows recomputes vertex v's accumulated arc flow to/from its current
// module and the proposed target module against the present membership.
func commitFlows(f *mapeq.Flow, st *mapeq.State, v int, old, target uint32) (outOld, inOld, outNew, inNew float64) {
	g := f.G
	lo, _ := g.OutRange(v)
	nb := g.OutNeighbors(v)
	for i := range nb {
		t := int(nb[i])
		if t == v {
			continue
		}
		switch st.Module(t) {
		case old:
			outOld += f.OutFlow[lo+i]
		case target:
			outNew += f.OutFlow[lo+i]
		}
	}
	ilo, _ := g.InRange(v)
	in := g.InNeighbors(v)
	for i := range in {
		s := int(in[i])
		if s == v {
			continue
		}
		switch st.Module(s) {
		case old:
			inOld += f.InFlow[ilo+i]
		case target:
			inNew += f.InFlow[ilo+i]
		}
	}
	return
}

// Modules groups vertex IDs by final module, returning a slice of modules
// each holding its member vertices, ordered by module ID.
func Modules(membership []uint32) [][]int {
	k := 0
	for _, m := range membership {
		if int(m)+1 > k {
			k = int(m) + 1
		}
	}
	out := make([][]int, k)
	for v, m := range membership {
		out[m] = append(out[m], v)
	}
	return out
}

// String summarizes a result for logs and examples.
func (r *Result) String() string {
	return fmt.Sprintf("modules=%d L=%.4f bits (one-level %.4f, %.1f%% compression) levels=%d sweeps=%d moves=%d",
		r.NumModules, r.Codelength, r.OneLevelCodelength,
		100*(1-r.Codelength/r.OneLevelCodelength), r.Levels, r.Sweeps, r.Moves)
}
