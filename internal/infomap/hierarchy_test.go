package infomap

import (
	"math"
	"regexp"
	"strings"
	"testing"

	"github.com/asamap/asamap/internal/gen"
	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/mapeq"
	"github.com/asamap/asamap/internal/rng"
)

// nestedGraph builds a graph with two hierarchy levels: `super` groups, each
// containing `inner` cliques of size `s`. Cliques within a super group are
// linked densely (several edges each), super groups sparsely (one edge).
func nestedGraph(t *testing.T, super, inner, s int) (*graph.Graph, []uint32, []uint32) {
	t.Helper()
	n := super * inner * s
	b := graph.NewBuilder(n, false)
	topTruth := make([]uint32, n)
	leafTruth := make([]uint32, n)
	for g := 0; g < super; g++ {
		for c := 0; c < inner; c++ {
			base := (g*inner + c) * s
			for i := 0; i < s; i++ {
				topTruth[base+i] = uint32(g)
				leafTruth[base+i] = uint32(g*inner + c)
				for j := i + 1; j < s; j++ {
					if err := b.AddEdge(uint32(base+i), uint32(base+j), 4); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Dense links to the next clique within the group (weight 2 × s/2 links).
			next := (g*inner + (c+1)%inner) * s
			for i := 0; i < s/2+1; i++ {
				if err := b.AddEdge(uint32(base+i), uint32(next+i), 2); err != nil {
					t.Fatal(err)
				}
			}
		}
		// One weak edge to the next super group.
		from := (g * inner) * s
		to := (((g + 1) % super) * inner) * s
		if err := b.AddEdge(uint32(from), uint32(to+1), 0.5); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build(), topTruth, leafTruth
}

func TestHierarchicalOnNestedGraph(t *testing.T) {
	g, topTruth, leafTruth := nestedGraph(t, 4, 3, 6)
	res, err := RunHierarchical(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Codelength > res.TwoLevelCodelength+1e-9 {
		t.Fatalf("hierarchy worsened codelength: %g vs flat %g",
			res.Codelength, res.TwoLevelCodelength)
	}
	if res.Depth < 3 {
		t.Fatalf("nested graph should produce depth >= 3 (got %d): %v", res.Depth, res)
	}
	// The deepest cut should align with the cliques, the top cut with the
	// super groups (up to which level the optimizer picked as "top").
	leaves := res.Leaves()
	if len(leaves) < 8 {
		t.Fatalf("only %d leaf modules; expected near the 12 planted cliques", len(leaves))
	}
	// Every leaf module must be pure with respect to the planted cliques.
	impure := 0
	for _, leaf := range leaves {
		first := leafTruth[leaf.Vertices[0]]
		for _, v := range leaf.Vertices {
			if leafTruth[v] != first {
				impure++
				break
			}
		}
	}
	if impure > 2 {
		t.Fatalf("%d of %d leaf modules mix planted cliques", impure, len(leaves))
	}
	_ = topTruth
}

func TestHierarchyTreeConsistency(t *testing.T) {
	g, _, _ := nestedGraph(t, 3, 3, 5)
	res, err := RunHierarchical(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Leaves partition the vertex set exactly.
	seen := make([]bool, g.N())
	for _, leaf := range res.Leaves() {
		for _, v := range leaf.Vertices {
			if seen[v] {
				t.Fatalf("vertex %d in two leaves", v)
			}
			seen[v] = true
		}
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("vertex %d missing from tree", v)
		}
	}
	// Flow conservation: root children flows sum to ~1.
	total := 0.0
	for _, c := range res.Root.Children {
		total += c.Flow
		if c.Exit < -1e-12 {
			t.Fatalf("negative exit %g", c.Exit)
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("top-level flows sum to %g", total)
	}
	// Internal nodes' flow equals the sum of their children's.
	var walk func(n *HierNode) float64
	walk = func(n *HierNode) float64 {
		if n.IsLeaf() {
			return n.Flow
		}
		s := 0.0
		for _, c := range n.Children {
			s += walk(c)
		}
		if math.Abs(s-n.Flow) > 1e-9 {
			t.Fatalf("internal node flow %g != children sum %g", n.Flow, s)
		}
		return s
	}
	for _, c := range res.Root.Children {
		walk(c)
	}
	if res.Root.Size() != g.N() {
		t.Fatalf("tree covers %d of %d vertices", res.Root.Size(), g.N())
	}
}

// TestHierarchicalDepth2MatchesTwoLevel: when no splits are accepted the
// tree codelength must equal the flat two-level codelength exactly.
func TestHierarchicalDepth2MatchesTwoLevel(t *testing.T) {
	// Two triangles: no sub-structure to find inside 3-vertex modules.
	b := graph.NewBuilder(6, false)
	for _, e := range [][2]uint32{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}} {
		_ = b.AddEdge(e[0], e[1], 1)
	}
	g := b.Build()
	res, err := RunHierarchical(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth != 2 {
		t.Fatalf("depth = %d, want 2 (root + leaf modules)", res.Depth)
	}
	if math.Abs(res.Codelength-res.TwoLevelCodelength) > 1e-9 {
		t.Fatalf("depth-2 tree L %g != two-level L %g", res.Codelength, res.TwoLevelCodelength)
	}
}

func TestHierCodelengthFormula(t *testing.T) {
	// Hand-check the tree evaluation against the two-level State on the
	// two-triangle graph with the natural partition.
	b := graph.NewBuilder(6, false)
	for _, e := range [][2]uint32{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}} {
		_ = b.AddEdge(e[0], e[1], 1)
	}
	g := b.Build()
	f, err := mapeq.NewUndirectedFlow(g)
	if err != nil {
		t.Fatal(err)
	}
	st, err := mapeq.NewState(f, []uint32{0, 0, 0, 1, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	root := &HierNode{Children: []*HierNode{
		{Vertices: []int{0, 1, 2}, Exit: st.ModuleExit(0), Flow: st.ModuleFlow(0)},
		{Vertices: []int{3, 4, 5}, Exit: st.ModuleExit(1), Flow: st.ModuleFlow(1)},
	}}
	if got, want := HierCodelength(f, root), st.Codelength(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("tree L %g != state L %g", got, want)
	}
	// Degenerate tree: one-level entropy.
	if got, want := HierCodelength(f, &HierNode{}), mapeq.OneLevelCodelength(f); math.Abs(got-want) > 1e-12 {
		t.Fatalf("degenerate tree L %g != one-level %g", got, want)
	}
}

func TestFlattenLevel(t *testing.T) {
	g, topTruth, _ := nestedGraph(t, 4, 3, 6)
	res, err := RunHierarchical(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	top := res.FlattenLevel(1)
	// Top cut: count distinct labels equals root children.
	labels := map[uint32]bool{}
	for _, m := range top {
		labels[m] = true
	}
	if len(labels) != len(res.Root.Children) {
		t.Fatalf("top cut has %d labels, root has %d children", len(labels), len(res.Root.Children))
	}
	// Top cut should agree strongly with the planted super groups when the
	// hierarchy's top level matches them; at minimum, same-group vertices
	// that share a planted clique always share a label.
	deep := res.FlattenLevel(100)
	deepLabels := map[uint32]bool{}
	for _, m := range deep {
		deepLabels[m] = true
	}
	if len(deepLabels) != len(res.Leaves()) {
		t.Fatalf("deep cut %d labels vs %d leaves", len(deepLabels), len(res.Leaves()))
	}
	_ = topTruth
}

func TestHierarchicalOnLFR(t *testing.T) {
	// Flat LFR communities: the hierarchy may split large modules but must
	// never worsen the codelength, and top membership stays the flat one.
	g, _, err := gen.LFR(gen.DefaultLFR(600, 0.2), rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunHierarchical(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Codelength > res.TwoLevelCodelength+1e-9 {
		t.Fatalf("hierarchy worsened L: %g vs %g", res.Codelength, res.TwoLevelCodelength)
	}
	if len(res.TopMembership) != g.N() {
		t.Fatal("top membership length wrong")
	}
}

func TestHierarchicalEmptyAndTiny(t *testing.T) {
	res, err := RunHierarchical(graph.NewBuilder(0, false).Build(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Root == nil {
		t.Fatal("nil root for empty graph")
	}
	b := graph.NewBuilder(2, false)
	_ = b.AddEdge(0, 1, 1)
	if _, err := RunHierarchical(b.Build(), DefaultOptions()); err != nil {
		t.Fatal(err)
	}
}

// TestHierExitsExact verifies every tree node's stored exit rate against a
// brute-force boundary-flow computation on the base flow.
func TestHierExitsExact(t *testing.T) {
	g, _, _ := nestedGraph(t, 4, 3, 6)
	res, err := RunHierarchical(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f, err := mapeq.NewUndirectedFlow(g)
	if err != nil {
		t.Fatal(err)
	}
	bruteExit := func(vertices map[int]bool) float64 {
		exit := 0.0
		for v := range vertices {
			lo, _ := g.OutRange(v)
			nb := g.OutNeighbors(v)
			for j := range nb {
				if !vertices[int(nb[j])] {
					exit += f.OutFlow[lo+j]
				}
			}
		}
		return exit
	}
	var collect func(n *HierNode) map[int]bool
	collect = func(n *HierNode) map[int]bool {
		set := map[int]bool{}
		if n.IsLeaf() {
			for _, v := range n.Vertices {
				set[v] = true
			}
		} else {
			for _, c := range n.Children {
				for v := range collect(c) {
					set[v] = true
				}
			}
		}
		return set
	}
	var walk func(n *HierNode)
	walk = func(n *HierNode) {
		set := collect(n)
		want := bruteExit(set)
		if math.Abs(n.Exit-want) > 1e-9 {
			t.Fatalf("node (size %d) exit %g, brute force %g", n.Size(), n.Exit, want)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, c := range res.Root.Children {
		walk(c)
	}
}

func TestWriteTreeFormat(t *testing.T) {
	g, _, _ := nestedGraph(t, 3, 2, 5)
	res, err := RunHierarchical(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f, err := mapeq.NewUndirectedFlow(g)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteTree(&sb, f.NodeFlow, nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Two header lines + one line per vertex.
	if len(lines) != 2+g.N() {
		t.Fatalf("tree has %d lines, want %d", len(lines), 2+g.N())
	}
	if !strings.HasPrefix(lines[1], "# codelength") {
		t.Fatalf("missing codelength header: %q", lines[1])
	}
	// Every data line: "a:b:...:r flow "name" id"; every vertex appears once.
	re := regexp.MustCompile(`^(\d+:)+\d+ \d\.\d+ "\d+" (\d+)$`)
	seen := map[string]bool{}
	for _, l := range lines[2:] {
		m := re.FindStringSubmatch(l)
		if m == nil {
			t.Fatalf("malformed tree line: %q", l)
		}
		if seen[m[2]] {
			t.Fatalf("vertex %s appears twice", m[2])
		}
		seen[m[2]] = true
	}
	if len(seen) != g.N() {
		t.Fatalf("tree covers %d of %d vertices", len(seen), g.N())
	}
}
