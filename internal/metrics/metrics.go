// Package metrics provides partition-quality measures used to validate the
// reproduction: normalized mutual information and adjusted Rand index against
// planted ground truth (the LFR benchmark protocol the paper cites for
// Infomap's quality advantage), plus conductance and pairwise F1.
package metrics

import (
	"cmp"
	"fmt"
	"math"

	"github.com/asamap/asamap/internal/graph"
)

// cellCmp orders contingency-table cells lexicographically so that every
// float reduction over a table visits cells in one canonical order — the
// bit-determinism contract extends to quality metrics, which land in golden
// e2e output and in asamapd's cached result bytes.
func cellCmp(a, b [2]uint32) int {
	if c := cmp.Compare(a[0], b[0]); c != 0 {
		return c
	}
	return cmp.Compare(a[1], b[1])
}

// contingency builds the joint count table of two labelings over the same
// vertex set, plus the marginals.
func contingency(a, b []uint32) (joint map[[2]uint32]float64, ma, mb map[uint32]float64, n float64, err error) {
	if len(a) != len(b) {
		return nil, nil, nil, 0, fmt.Errorf("metrics: labelings have lengths %d and %d", len(a), len(b))
	}
	joint = make(map[[2]uint32]float64)
	ma = make(map[uint32]float64)
	mb = make(map[uint32]float64)
	for i := range a {
		joint[[2]uint32{a[i], b[i]}]++
		ma[a[i]]++
		mb[b[i]]++
	}
	return joint, ma, mb, float64(len(a)), nil
}

// NMI returns the normalized mutual information of two labelings, using the
// arithmetic-mean normalization: NMI = 2·I(A;B)/(H(A)+H(B)). It is 1 for
// identical partitions (up to relabeling) and ~0 for independent ones. When
// both partitions are trivial (single cluster), NMI is defined as 1.
func NMI(a, b []uint32) (float64, error) {
	joint, ma, mb, n, err := contingency(a, b)
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 1, nil
	}
	entropy := func(m map[uint32]float64) float64 {
		h := 0.0
		for _, k := range graph.SortedKeys(m) {
			p := m[k] / n
			h -= p * math.Log(p)
		}
		return h
	}
	ha, hb := entropy(ma), entropy(mb)
	if ha == 0 && hb == 0 {
		return 1, nil
	}
	mi := 0.0
	for _, k := range graph.SortedKeysFunc(joint, cellCmp) {
		// I(A;B) = Σ p(a,b)·log( p(a,b) / (p(a)p(b)) ), with
		// p(a,b)/(p(a)p(b)) = c·n / (ma·mb).
		c := joint[k]
		mi += (c / n) * math.Log(c*n/(ma[k[0]]*mb[k[1]]))
	}
	if mi < 0 {
		mi = 0
	}
	denom := ha + hb
	if denom == 0 {
		return 0, nil
	}
	return 2 * mi / denom, nil
}

// ARI returns the adjusted Rand index of two labelings: 1 for identical
// partitions, ~0 for random agreement, negative for worse-than-chance.
func ARI(a, b []uint32) (float64, error) {
	joint, ma, mb, n, err := contingency(a, b)
	if err != nil {
		return 0, err
	}
	if n < 2 {
		return 1, nil
	}
	choose2 := func(x float64) float64 { return x * (x - 1) / 2 }
	sumJoint, sumA, sumB := 0.0, 0.0, 0.0
	for _, k := range graph.SortedKeysFunc(joint, cellCmp) {
		sumJoint += choose2(joint[k])
	}
	for _, k := range graph.SortedKeys(ma) {
		sumA += choose2(ma[k])
	}
	for _, k := range graph.SortedKeys(mb) {
		sumB += choose2(mb[k])
	}
	total := choose2(n)
	expected := sumA * sumB / total
	maxIdx := (sumA + sumB) / 2
	if maxIdx == expected {
		return 1, nil // both partitions trivial in the same way
	}
	return (sumJoint - expected) / (maxIdx - expected), nil
}

// PairwiseF1 returns precision, recall, and F1 over vertex pairs: a pair
// counts as positive when both labelings place it in the same cluster.
// Computed exactly from the contingency table in O(#distinct cells).
func PairwiseF1(pred, truth []uint32) (precision, recall, f1 float64, err error) {
	joint, mp, mt, n, err := contingency(pred, truth)
	if err != nil {
		return 0, 0, 0, err
	}
	if n < 2 {
		return 1, 1, 1, nil
	}
	choose2 := func(x float64) float64 { return x * (x - 1) / 2 }
	tp := 0.0
	for _, k := range graph.SortedKeysFunc(joint, cellCmp) {
		tp += choose2(joint[k])
	}
	predPos, truthPos := 0.0, 0.0
	for _, k := range graph.SortedKeys(mp) {
		predPos += choose2(mp[k])
	}
	for _, k := range graph.SortedKeys(mt) {
		truthPos += choose2(mt[k])
	}
	if predPos == 0 {
		precision = 1
	} else {
		precision = tp / predPos
	}
	if truthPos == 0 {
		recall = 1
	} else {
		recall = tp / truthPos
	}
	if precision+recall == 0 {
		return precision, recall, 0, nil
	}
	return precision, recall, 2 * precision * recall / (precision + recall), nil
}

// Conductance returns the conductance of each cluster: cut(c) / min(vol(c),
// vol(V\c)). Lower is better; a slice indexed by cluster ID is returned.
// Clusters with zero volume get conductance 0.
func Conductance(g *graph.Graph, membership []uint32) ([]float64, error) {
	if len(membership) != g.N() {
		return nil, fmt.Errorf("metrics: membership length %d, want %d", len(membership), g.N())
	}
	k := 0
	for _, m := range membership {
		if int(m)+1 > k {
			k = int(m) + 1
		}
	}
	cut := make([]float64, k)
	vol := make([]float64, k)
	totalVol := 0.0
	for v := 0; v < g.N(); v++ {
		c := membership[v]
		nb, ws := g.OutNeighbors(v), g.OutWeights(v)
		for i, t := range nb {
			vol[c] += ws[i]
			totalVol += ws[i]
			if membership[t] != c {
				cut[c] += ws[i]
			}
		}
	}
	out := make([]float64, k)
	for c := 0; c < k; c++ {
		denom := math.Min(vol[c], totalVol-vol[c])
		if denom <= 0 {
			out[c] = 0
			continue
		}
		out[c] = cut[c] / denom
	}
	return out, nil
}

// SizeHistogram returns the community-size histogram of a labeling: sizes
// lists each distinct community size in ascending order and counts[i] is
// how many communities have sizes[i] members. Emission is deterministic by
// construction (sorted keys), so the histogram can feed reports and cached
// service responses directly.
func SizeHistogram(membership []uint32) (sizes []int, counts []int) {
	perLabel := make(map[uint32]int)
	for _, m := range membership {
		perLabel[m]++
	}
	bySize := make(map[int]int) // keyed int increments commute, raw range is fine
	for _, c := range perLabel {
		bySize[c]++
	}
	sizes = graph.SortedKeys(bySize)
	counts = make([]int, len(sizes))
	for i, s := range sizes {
		counts[i] = bySize[s]
	}
	return sizes, counts
}

// MeanConductance averages Conductance over clusters with nonzero volume.
func MeanConductance(g *graph.Graph, membership []uint32) (float64, error) {
	cs, err := Conductance(g, membership)
	if err != nil {
		return 0, err
	}
	if len(cs) == 0 {
		return 0, nil
	}
	sum := 0.0
	for _, c := range cs {
		sum += c
	}
	return sum / float64(len(cs)), nil
}
