package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/asamap/asamap/internal/gen"
	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/rng"
)

func TestNMIIdentical(t *testing.T) {
	a := []uint32{0, 0, 1, 1, 2, 2}
	v, err := NMI(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 1e-12 {
		t.Fatalf("NMI(a,a) = %g, want 1", v)
	}
}

func TestNMIRelabeling(t *testing.T) {
	a := []uint32{0, 0, 1, 1, 2, 2}
	b := []uint32{5, 5, 9, 9, 1, 1}
	v, err := NMI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 1e-12 {
		t.Fatalf("NMI under relabeling = %g, want 1", v)
	}
}

func TestNMIIndependent(t *testing.T) {
	// A checkerboard assignment: knowing A gives no information about B.
	var a, b []uint32
	for i := 0; i < 400; i++ {
		a = append(a, uint32(i%2))
		b = append(b, uint32((i/2)%2))
	}
	v, err := NMI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if v > 0.01 {
		t.Fatalf("NMI of independent labelings = %g, want ~0", v)
	}
}

func TestNMISymmetric(t *testing.T) {
	a := []uint32{0, 0, 1, 1, 1, 2}
	b := []uint32{0, 1, 1, 1, 2, 2}
	v1, _ := NMI(a, b)
	v2, _ := NMI(b, a)
	if math.Abs(v1-v2) > 1e-12 {
		t.Fatalf("NMI not symmetric: %g vs %g", v1, v2)
	}
	if v1 <= 0 || v1 >= 1 {
		t.Fatalf("partial agreement NMI = %g, want in (0,1)", v1)
	}
}

func TestNMIErrorsAndTrivia(t *testing.T) {
	if _, err := NMI([]uint32{0}, []uint32{0, 1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	v, err := NMI(nil, nil)
	if err != nil || v != 1 {
		t.Fatalf("empty NMI = (%g,%v)", v, err)
	}
	v, err = NMI([]uint32{0, 0}, []uint32{3, 3})
	if err != nil || v != 1 {
		t.Fatalf("both-trivial NMI = %g, want 1", v)
	}
}

func TestARIIdenticalAndRandom(t *testing.T) {
	a := []uint32{0, 0, 1, 1, 2, 2}
	v, err := ARI(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 1e-12 {
		t.Fatalf("ARI(a,a) = %g", v)
	}
	// Independent labelings: ARI near 0.
	r := rng.New(1)
	var x, y []uint32
	for i := 0; i < 2000; i++ {
		x = append(x, uint32(r.Intn(4)))
		y = append(y, uint32(r.Intn(4)))
	}
	v, err = ARI(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v) > 0.05 {
		t.Fatalf("ARI of random labelings = %g, want ~0", v)
	}
}

func TestPairwiseF1(t *testing.T) {
	truth := []uint32{0, 0, 0, 1, 1, 1}
	// Perfect prediction.
	p, r, f1, err := PairwiseF1(truth, truth)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 || r != 1 || f1 != 1 {
		t.Fatalf("perfect F1 = %g/%g/%g", p, r, f1)
	}
	// All singletons: precision 1 (vacuous), recall 0.
	singles := []uint32{0, 1, 2, 3, 4, 5}
	p, r, f1, err = PairwiseF1(singles, truth)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 || r != 0 || f1 != 0 {
		t.Fatalf("singleton F1 = %g/%g/%g, want 1/0/0", p, r, f1)
	}
	// Everything merged: recall 1, precision = truthPairs/allPairs = 6/15.
	merged := []uint32{0, 0, 0, 0, 0, 0}
	p, r, _, err = PairwiseF1(merged, truth)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 || math.Abs(p-6.0/15.0) > 1e-12 {
		t.Fatalf("merged F1: p=%g r=%g", p, r)
	}
}

func TestConductance(t *testing.T) {
	// Two triangles with one bridge: each triangle has vol 7 (6 internal
	// half-edges + 1 bridge end), cut 1 → conductance 1/7.
	b := graph.NewBuilder(6, false)
	for _, e := range [][2]uint32{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}} {
		_ = b.AddEdge(e[0], e[1], 1)
	}
	g := b.Build()
	cs, err := Conductance(g, []uint32{0, 0, 0, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for c, v := range cs {
		if math.Abs(v-1.0/7.0) > 1e-12 {
			t.Fatalf("conductance[%d] = %g, want 1/7", c, v)
		}
	}
	mean, err := MeanConductance(g, []uint32{0, 0, 0, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-1.0/7.0) > 1e-12 {
		t.Fatalf("mean conductance %g", mean)
	}
	// A good partition has lower conductance than a bad one.
	bad, err := MeanConductance(g, []uint32{0, 1, 0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if bad <= mean {
		t.Fatalf("bad partition conductance %g <= good %g", bad, mean)
	}
}

func TestConductanceValidation(t *testing.T) {
	g := graph.NewBuilder(3, false).Build()
	if _, err := Conductance(g, []uint32{0}); err == nil {
		t.Fatal("short membership accepted")
	}
	cs, err := Conductance(g, []uint32{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range cs {
		if v != 0 {
			t.Fatal("edgeless graph should have zero conductance")
		}
	}
}

func TestQuickNMIBounds(t *testing.T) {
	r := rng.New(7)
	f := func(n uint8, ka, kb uint8) bool {
		size := int(n)%50 + 2
		a := make([]uint32, size)
		b := make([]uint32, size)
		for i := range a {
			a[i] = uint32(r.Intn(int(ka)%5 + 1))
			b[i] = uint32(r.Intn(int(kb)%5 + 1))
		}
		v, err := NMI(a, b)
		return err == nil && v >= -1e-12 && v <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsOnPlantedLFR(t *testing.T) {
	// Recovering the planted partition on an easy LFR graph should score
	// high on every metric; a random labeling should not.
	g, planted, err := gen.LFR(gen.DefaultLFR(500, 0.1), rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	nmi, err := NMI(planted, planted)
	if err != nil || math.Abs(nmi-1) > 1e-9 {
		t.Fatalf("planted self-NMI %g", nmi)
	}
	r := rng.New(13)
	random := make([]uint32, g.N())
	for i := range random {
		random[i] = uint32(r.Intn(10))
	}
	nmiRand, err := NMI(random, planted)
	if err != nil {
		t.Fatal(err)
	}
	if nmiRand > 0.2 {
		t.Fatalf("random labeling NMI %g suspiciously high", nmiRand)
	}
}

func TestSizeHistogram(t *testing.T) {
	// communities: {0,0,0}, {1,1}, {2,2}, {3} -> one size-1, two size-2, one size-3
	membership := []uint32{0, 0, 0, 1, 1, 2, 2, 3}
	sizes, counts := SizeHistogram(membership)
	wantSizes := []int{1, 2, 3}
	wantCounts := []int{1, 2, 1}
	if len(sizes) != len(wantSizes) {
		t.Fatalf("sizes = %v, want %v", sizes, wantSizes)
	}
	for i := range wantSizes {
		if sizes[i] != wantSizes[i] || counts[i] != wantCounts[i] {
			t.Fatalf("histogram = %v/%v, want %v/%v", sizes, counts, wantSizes, wantCounts)
		}
	}
	if s, c := func() ([]int, []int) { return SizeHistogram(nil) }(); len(s) != 0 || len(c) != 0 {
		t.Fatalf("empty membership histogram = %v/%v, want empty", s, c)
	}
}
