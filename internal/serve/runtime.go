package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"runtime"
	rpprof "runtime/pprof"
	"sync"
	"time"

	"github.com/asamap/asamap/internal/obs"
	"github.com/asamap/asamap/internal/obs/propagate"
	"github.com/asamap/asamap/internal/trace"
)

// runtimeStats tracks Go runtime observability state that needs memory
// between scrapes: the GC pause histogram is fed from the MemStats pause
// ring, so we must remember which GC cycles have already been observed.
type runtimeStats struct {
	mu        sync.Mutex
	lastNumGC uint32
	pauseHist *trace.Histogram
}

func newRuntimeStats() *runtimeStats {
	return &runtimeStats{pauseHist: trace.NewHistogram(trace.DefaultGCPauseBounds())}
}

// sample reads MemStats and folds any GC pauses since the previous sample
// into the pause histogram. MemStats keeps only the last 256 pauses; if more
// cycles than that elapsed between scrapes the overflow is simply lost (the
// gc_runs counter still advances, so the gap is visible).
func (rt *runtimeStats) sample() runtime.MemStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if delta := ms.NumGC - rt.lastNumGC; delta > 0 {
		if delta > 256 {
			delta = 256
		}
		for i := ms.NumGC - delta; i < ms.NumGC; i++ {
			rt.pauseHist.Observe(time.Duration(ms.PauseNs[(i+255)%256]))
		}
		rt.lastNumGC = ms.NumGC
	}
	return ms
}

// HistWire is a trace.HistogramSnapshot in integer-nanosecond JSON form, the
// shape /metrics/snapshot ships between nodes. Integer fields (rather than
// Go duration strings or float seconds) keep cluster merges exact.
type HistWire struct {
	BoundsNS []int64  `json:"bounds_ns"`
	Counts   []uint64 `json:"counts"`
	SumNS    int64    `json:"sum_ns"`
	Count    uint64   `json:"count"`
}

// NewHistWire converts a snapshot to wire form.
func NewHistWire(s trace.HistogramSnapshot) HistWire {
	out := HistWire{
		BoundsNS: make([]int64, len(s.Bounds)),
		Counts:   s.Counts,
		SumNS:    s.Sum.Nanoseconds(),
		Count:    s.Count,
	}
	for i, b := range s.Bounds {
		out.BoundsNS[i] = b.Nanoseconds()
	}
	return out
}

// Snapshot converts back to the exact snapshot the sender held.
func (hw HistWire) Snapshot() trace.HistogramSnapshot {
	out := trace.HistogramSnapshot{
		Bounds: make([]time.Duration, len(hw.BoundsNS)),
		Counts: hw.Counts,
		Sum:    time.Duration(hw.SumNS),
		Count:  hw.Count,
	}
	for i, b := range hw.BoundsNS {
		out.Bounds[i] = time.Duration(b)
	}
	return out
}

// MetricsSnapshot is the machine-readable form of /metrics that cluster
// federation consumes: flat counter and gauge maps plus full histogram
// states. Counters and histogram counts merge by addition; gauges merge by
// summation (they are all extensive quantities — queue depths, heap bytes,
// entry counts — whose cluster-wide total is the meaningful number).
type MetricsSnapshot struct {
	Counters   map[string]uint64   `json:"counters"`
	Gauges     map[string]float64  `json:"gauges"`
	Histograms map[string]HistWire `json:"histograms"`
}

// MetricsSnapshot captures the server's current metric state.
func (s *Server) MetricsSnapshot() MetricsSnapshot {
	qs, cs, rs := s.queue.Stats(), s.cache.Stats(), s.registry.Stats()
	ms := s.rt.sample()
	droppedSpans, droppedTraces := s.tracer.Dropped()
	return MetricsSnapshot{
		Counters: map[string]uint64{
			"jobs_submitted_total":         qs.Submitted,
			"jobs_rejected_total":          qs.Rejected,
			"jobs_completed_total":         qs.Completed,
			"jobs_canceled_total":          qs.Canceled,
			"cache_hits_total":             cs.Hits,
			"cache_misses_total":           cs.Misses,
			"cache_coalesced_total":        cs.Coalesced,
			"cache_evictions_total":        cs.Evictions,
			"registry_parses_total":        rs.Parses,
			"registry_raw_hits_total":      rs.RawHits,
			"registry_delta_applies_total": rs.DeltaApplies,
			"runs_total":                   s.runs.Load(),
			"trace_dropped_total":          droppedSpans,
			"trace_dropped_traces_total":   droppedTraces,
			"go_gc_runs_total":             uint64(ms.NumGC),
		},
		Gauges: map[string]float64{
			"queue_capacity":      float64(qs.Capacity),
			"queue_outstanding":   float64(qs.Outstanding),
			"cache_entries":       float64(cs.Entries),
			"registry_graphs":     float64(rs.Graphs),
			"registry_versions":   float64(rs.Versions),
			"go_goroutines":       float64(runtime.NumGoroutine()),
			"go_heap_alloc_bytes": float64(ms.HeapAlloc),
			"go_heap_objects":     float64(ms.HeapObjects),
		},
		Histograms: map[string]HistWire{
			"request_seconds":     NewHistWire(s.reqHist.Snapshot()),
			"queue_wait_seconds":  NewHistWire(s.waitHist.Snapshot()),
			"go_gc_pause_seconds": NewHistWire(s.rt.pauseSnapshot()),
		},
	}
}

// pauseSnapshot returns the GC pause histogram state.
func (rt *runtimeStats) pauseSnapshot() trace.HistogramSnapshot {
	return rt.pauseHist.Snapshot()
}

// handleMetricsSnapshot serves the JSON twin of /metrics for federation.
func (s *Server) handleMetricsSnapshot(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.MetricsSnapshot())
}

// Tracer exposes the server's span ring so the cluster layer can collect
// per-trace spans and dropped counters without re-wiring the middleware.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// TraceSpans returns the retained spans recorded under the given trace ID.
func (s *Server) TraceSpans(traceID uint64) []obs.SpanData {
	return s.tracer.TraceSpans(traceID)
}

// handleTraceByID serves the node-local spans of one distributed trace:
// GET /debug/trace/{id} with a 16-hex-digit trace ID. The cluster router
// overrides this route with a fan-out that stitches every node's segment;
// this handler is the per-node collection primitive it scrapes.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	id, err := propagate.ParseID(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad trace id: "+err.Error())
		return
	}
	spans := s.TraceSpans(id)
	if len(spans) == 0 {
		httpError(w, http.StatusNotFound, "trace not found")
		return
	}
	epoch := s.tracer.Epoch()
	out := make([]SpanPayload, len(spans))
	for i, sp := range spans {
		out[i] = NewSpanPayload(sp, epoch)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"trace": propagate.FormatID(id),
		"spans": out,
	})
}

// profileMaxSeconds caps a CPU profile request; profileDefaultSeconds is the
// window when ?seconds is absent.
const (
	profileDefaultSeconds = 2
	profileMaxSeconds     = 30
)

// handleProfile serves one-shot pprof snapshots: ?kind=heap returns the
// current heap profile, ?kind=cpu&seconds=N samples CPU for N seconds
// (clamped to profileMaxSeconds). Unlike the /debug/pprof tree this endpoint
// is load-tool-friendly: one URL, binary pprof bytes, and a 409 when a CPU
// profile is already running (the runtime allows only one at a time).
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	kind := r.URL.Query().Get("kind")
	if kind == "" {
		kind = "heap"
	}
	switch kind {
	case "heap":
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := rpprof.Lookup("heap").WriteTo(w, 0); err != nil {
			s.logger.Error("heap profile write failed", "err", err)
		}
	case "cpu":
		seconds := profileDefaultSeconds
		if v := r.URL.Query().Get("seconds"); v != "" {
			parsed, err := parsePositiveInt(v)
			if err != nil {
				httpError(w, http.StatusBadRequest, "bad seconds: "+err.Error())
				return
			}
			seconds = parsed
		}
		if seconds > profileMaxSeconds {
			seconds = profileMaxSeconds
		}
		if !s.profiling.CompareAndSwap(false, true) {
			httpError(w, http.StatusConflict, "a CPU profile is already running")
			return
		}
		defer s.profiling.Store(false)
		var buf bytes.Buffer
		if err := rpprof.StartCPUProfile(&buf); err != nil {
			httpError(w, http.StatusConflict, "cpu profile: "+err.Error())
			return
		}
		select {
		case <-s.clk.After(time.Duration(seconds) * time.Second):
		case <-r.Context().Done():
		}
		rpprof.StopCPUProfile()
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(buf.Bytes())
	default:
		httpError(w, http.StatusBadRequest, "kind must be heap or cpu")
	}
}

// writeRuntimeMetrics appends the Go runtime gauges and trace-drop counters
// to the Prometheus exposition.
func (s *Server) writeRuntimeMetrics(w http.ResponseWriter) {
	ms := s.rt.sample()
	droppedSpans, droppedTraces := s.tracer.Dropped()
	fmt.Fprintf(w, "# HELP asamap_trace_dropped_total Spans evicted from the trace ring before collection.\n")
	fmt.Fprintf(w, "# TYPE asamap_trace_dropped_total counter\nasamap_trace_dropped_total %d\n", droppedSpans)
	fmt.Fprintf(w, "# TYPE asamap_trace_dropped_traces_total counter\nasamap_trace_dropped_traces_total %d\n", droppedTraces)
	fmt.Fprintf(w, "# TYPE asamap_go_goroutines gauge\nasamap_go_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(w, "# TYPE asamap_go_heap_alloc_bytes gauge\nasamap_go_heap_alloc_bytes %d\n", ms.HeapAlloc)
	fmt.Fprintf(w, "# TYPE asamap_go_heap_objects gauge\nasamap_go_heap_objects %d\n", ms.HeapObjects)
	fmt.Fprintf(w, "# TYPE asamap_go_gc_runs_total counter\nasamap_go_gc_runs_total %d\n", ms.NumGC)
	s.rt.pauseSnapshot().WritePrometheus(w, "asamap_go_gc_pause_seconds",
		"GC stop-the-world pause durations.")
}
