// Package serve is the network-facing layer of the repository: an HTTP
// service that accepts edge-list uploads into a content-addressed graph
// registry and serves community-detection requests from a bounded job queue
// through an LRU result cache.
//
// The design exploits two properties the rest of the repository already
// guarantees:
//
//   - graphs are immutable CSR structures, so one parsed graph can back any
//     number of concurrent detection runs (content addressing makes reuse
//     automatic: the SHA-256 of the canonicalized edges is the graph's name);
//   - detection is bit-deterministic in (graph, options fingerprint, seed)
//     regardless of worker count or steal schedule, so responses can be
//     cached and replayed as exact bytes — determinism is an API guarantee,
//     not just a test property.
//
// Backpressure is explicit: admission control bounds outstanding jobs, and
// saturated queues answer 429 with a Retry-After estimate instead of
// stalling the connection.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/asamap/asamap/internal/asa"
	"github.com/asamap/asamap/internal/clock"
	"github.com/asamap/asamap/internal/infomap"
	"github.com/asamap/asamap/internal/obs"
	"github.com/asamap/asamap/internal/rng"
	"github.com/asamap/asamap/internal/trace"
)

// Config sizes the server. The zero value is not valid; start from
// DefaultConfig.
type Config struct {
	// QueueCapacity bounds outstanding (queued + running) detection jobs;
	// the QueueCapacity+1st concurrent request is rejected with 429.
	QueueCapacity int
	// Workers is the number of detection jobs executed concurrently. Each
	// job internally parallelizes across the sweep-scheduler pool according
	// to its requested per-run worker count.
	Workers int
	// CacheEntries bounds the LRU result cache.
	CacheEntries int
	// MaxUploadBytes bounds one edge-list upload.
	MaxUploadBytes int64
	// JobTimeout bounds one detection run's wall clock (0 = unbounded);
	// it composes with the client's own disconnect/cancellation.
	JobTimeout time.Duration
	// RetryAfterPrior seeds the queue's mean-job-duration estimate used for
	// cold-start Retry-After headers, before the first completed job trains
	// the EWMA; non-positive takes DefaultRetryAfterPrior.
	RetryAfterPrior time.Duration
	// Clock is injectable for deterministic tests; nil means the real clock.
	Clock clock.Clock
	// Logger receives the structured request/error log; nil discards.
	Logger *slog.Logger
	// TraceRing bounds the span ring buffer behind /debug/trace; 0 takes the
	// default (4096 spans), negative disables span retention.
	TraceRing int
}

// DefaultConfig returns production-shaped sizing: 16 outstanding jobs, 2
// concurrent runs, 256 cached results, 64 MiB uploads, 5 minute job cap.
func DefaultConfig() Config {
	return Config{
		QueueCapacity:   16,
		Workers:         2,
		CacheEntries:    256,
		MaxUploadBytes:  64 << 20,
		JobTimeout:      5 * time.Minute,
		RetryAfterPrior: DefaultRetryAfterPrior,
		Clock:           clock.Real{},
	}
}

// Server wires the registry, queue, and cache behind an http.Handler.
type Server struct {
	cfg      Config
	clk      clock.Clock
	registry *Registry
	queue    *Queue
	cache    *ResultCache
	agg      *trace.Breakdown // kernel breakdowns merged across all runs
	mux      *http.ServeMux
	started  time.Time
	logger   *slog.Logger
	tracer   *obs.Tracer      // span ring behind /debug/trace
	reqHist  *trace.Histogram // end-to-end request latency
	waitHist *trace.Histogram // detection-job queue wait
	build    BuildInfo
	idSalt   uint64 // salts generated request IDs across server instances

	runs   atomic.Uint64 // detection runs actually executed (not cache/coalesced)
	reqSeq atomic.Uint64 // generated-request-ID counter
}

// New constructs a Server from cfg.
func New(cfg Config) *Server {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.QueueCapacity < 1 {
		cfg.QueueCapacity = 1
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.CacheEntries < 1 {
		cfg.CacheEntries = 1
	}
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = 64 << 20
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.DiscardLogger()
	}
	ring := cfg.TraceRing
	switch {
	case ring == 0:
		ring = 4096
	case ring < 0:
		ring = 1 // smallest retention: the tracer has no true "off" mode
	}
	started := cfg.Clock.Now()
	s := &Server{
		cfg:      cfg,
		clk:      cfg.Clock,
		registry: NewRegistry(),
		queue:    NewQueue(cfg.QueueCapacity, cfg.Workers, cfg.Clock, cfg.RetryAfterPrior),
		cache:    NewResultCache(cfg.CacheEntries),
		agg:      trace.NewBreakdown(),
		started:  started,
		logger:   logger,
		tracer:   obs.New(obs.Config{Clock: cfg.Clock, RingSize: ring}),
		reqHist:  trace.NewLatencyHistogram(),
		waitHist: trace.NewLatencyHistogram(),
		build:    readBuildInfo(),
		idSalt:   rng.Hash64(uint64(started.UnixNano())),
	}
	s.queue.SetWaitHist(s.waitHist)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/graphs", s.handleUpload)
	mux.HandleFunc("GET /v1/graphs/{hash}", s.handleGraphInfo)
	mux.HandleFunc("GET /v1/graphs/{hash}/data", s.handleGraphData)
	mux.HandleFunc("POST /v1/detect", s.handleDetect)
	mux.HandleFunc("GET /v1/cache/{key}", s.handleCachePeek)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/trace", s.handleTraceDebug)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux = mux
	return s
}

// Handler returns the server's HTTP handler: the route mux wrapped in the
// observability middleware (request IDs, root spans, panic recovery, latency
// histogram, structured request log).
func (s *Server) Handler() http.Handler { return s.middleware(s.mux) }

// Mux returns the raw route mux without the observability middleware. The
// cluster node composes it under its own mux and applies Wrap exactly once
// around the union, so cluster-routed and locally served requests share one
// middleware layer (and Handler-style double wrapping is avoided).
func (s *Server) Mux() http.Handler { return s.mux }

// Wrap applies the server's observability middleware to an arbitrary handler.
func (s *Server) Wrap(next http.Handler) http.Handler { return s.middleware(next) }

// Close drains the job queue and releases the workers.
func (s *Server) Close() { s.queue.Close() }

// Registry exposes the graph registry (read-mostly; used by the CLI for
// preloading graphs at startup).
func (s *Server) Registry() *Registry { return s.registry }

// Runs reports how many detection runs actually executed.
func (s *Server) Runs() uint64 { return s.runs.Load() }

// DetectRequest is the body of POST /v1/detect.
type DetectRequest struct {
	// Graph is the canonical hash returned by POST /v1/graphs.
	Graph string `json:"graph"`
	// Options configures the run; absent fields take the library defaults.
	Options DetectOptions `json:"options"`
}

// DetectOptions is the wire form of infomap.Options. Zero values mean "use
// the default" (infomap.DefaultOptions); Seed 0 therefore maps to the
// default seed 1 — pass an explicit non-zero seed to vary results.
type DetectOptions struct {
	Accum          string  `json:"accum,omitempty"` // baseline | asa | gomap | hashgraph
	CamKB          int     `json:"cam_kb,omitempty"`
	Workers        int     `json:"workers,omitempty"` // per-run sweep workers; 0 keeps default 1
	Sched          string  `json:"sched,omitempty"`   // steal | static
	MaxSweeps      int     `json:"max_sweeps,omitempty"`
	MinImprovement float64 `json:"min_improvement,omitempty"`
	MaxLevels      int     `json:"max_levels,omitempty"`
	OuterIters     int     `json:"outer_iters,omitempty"`
	Seed           uint64  `json:"seed,omitempty"`
	Damping        float64 `json:"damping,omitempty"`
	Teleport       string  `json:"teleport,omitempty"` // recorded | unrecorded
}

// toOptions maps the wire options onto infomap.Options.
func (d DetectOptions) toOptions() (infomap.Options, error) {
	opt := infomap.DefaultOptions()
	switch d.Accum {
	case "", "baseline":
		opt.Kind = infomap.Baseline
	case "asa":
		opt.Kind = infomap.ASA
		camKB := d.CamKB
		if camKB <= 0 {
			camKB = 8
		}
		opt.ASAConfig = asa.Config{CapacityBytes: camKB * 1024, EntryBytes: 16, Policy: asa.LRU}
	case "gomap":
		opt.Kind = infomap.GoMap
	case "hashgraph":
		opt.Kind = infomap.HashGraph
	default:
		return opt, fmt.Errorf("unknown accum %q (want baseline|asa|gomap|hashgraph)", d.Accum)
	}
	switch d.Sched {
	case "", "steal":
		opt.Sched = infomap.SchedSteal
	case "static":
		opt.Sched = infomap.SchedStatic
	default:
		return opt, fmt.Errorf("unknown sched %q (want steal|static)", d.Sched)
	}
	switch d.Teleport {
	case "", "recorded":
		opt.Teleport = infomap.TeleportRecorded
	case "unrecorded":
		opt.Teleport = infomap.TeleportUnrecorded
	default:
		return opt, fmt.Errorf("unknown teleport %q (want recorded|unrecorded)", d.Teleport)
	}
	if d.Workers != 0 {
		opt.Workers = d.Workers
	}
	if d.MaxSweeps != 0 {
		opt.MaxSweeps = d.MaxSweeps
	}
	if d.MinImprovement != 0 {
		opt.MinImprovement = d.MinImprovement
	}
	if d.MaxLevels != 0 {
		opt.MaxLevels = d.MaxLevels
	}
	if d.OuterIters != 0 {
		opt.OuterIters = d.OuterIters
	}
	if d.Seed != 0 {
		opt.Seed = d.Seed
	}
	if d.Damping != 0 {
		opt.Damping = d.Damping
	}
	return opt, nil
}

// AccumCounters is the deterministic slice of the run's accumulator
// telemetry: the four CAM counters of the paper's evaluation are sums over
// per-vertex accumulator sessions, invariant across worker counts and steal
// schedules, so they are safe inside the byte-replayable response body.
// (Schedule-dependent counters like chain hops stay out — they would break
// the byte-identical cache-replay contract.)
type AccumCounters struct {
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Evictions  uint64 `json:"evictions"`
	OverflowKV uint64 `json:"overflow_kv"`
}

// DetectResponse is the body of a successful POST /v1/detect. It carries
// only deterministic fields — no wall-clock values — so identical requests
// yield byte-identical bodies whether computed, cached, or coalesced.
// Timing travels in the X-Asamap-Elapsed response header instead.
type DetectResponse struct {
	Graph              string        `json:"graph"`
	Fingerprint        string        `json:"fingerprint"`
	Seed               uint64        `json:"seed"`
	NumModules         int           `json:"num_modules"`
	Codelength         float64       `json:"codelength"`
	OneLevelCodelength float64       `json:"one_level_codelength"`
	Levels             int           `json:"levels"`
	Sweeps             int           `json:"sweeps"`
	Moves              uint64        `json:"moves"`
	Accum              AccumCounters `json:"accum"`
	Membership         []uint32      `json:"membership"`
}

// detectKey joins the three coordinates that fully determine a response body.
func detectKey(graphHash, fingerprint string, seed uint64) string {
	return graphHash + "|" + fingerprint + "|" + strconv.FormatUint(seed, 10)
}

// DetectKey returns the result-cache key for (graph hash, wire options):
// canonical graph hash, options fingerprint, and effective seed. Because a
// run is bit-deterministic given this key, it is also the replication unit
// the cluster router shards and the coordinate peer cache fetches address.
func DetectKey(graphHash string, d DetectOptions) (string, error) {
	opt, err := d.toOptions()
	if err != nil {
		return "", err
	}
	return detectKey(graphHash, opt.Fingerprint(), opt.Seed), nil
}

// CachePeek returns the cached response bytes for a detect key without
// computing anything. It backs GET /v1/cache/{key}, the peer result-cache
// fetch path.
func (s *Server) CachePeek(key string) ([]byte, bool) {
	return s.cache.get(key)
}

// CacheSeed inserts precomputed response bytes under a detect key. The
// cluster layer uses it to adopt a peer's result: byte-replay determinism
// makes a peer-computed body indistinguishable from a local one.
func (s *Server) CacheSeed(key string, body []byte) {
	s.cache.put(key, body)
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	directed := false
	switch v := r.URL.Query().Get("directed"); v {
	case "", "false", "0":
	case "true", "1":
		directed = true
	default:
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad directed value %q", v))
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	data, err := io.ReadAll(body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("upload exceeds %d bytes", tooLarge.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	info, err := s.registry.Add(data, directed)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	status := http.StatusCreated
	if info.Reused {
		status = http.StatusOK
	}
	writeJSON(w, status, info)
}

func (s *Server) handleGraphInfo(w http.ResponseWriter, r *http.Request) {
	_, info, ok := s.registry.Get(r.PathValue("hash"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown graph hash")
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleGraphData streams the canonical edge list of a registered graph, the
// transfer format peers use to replicate graphs on demand: re-registering
// the download yields the same canonical hash on the receiving side.
func (s *Server) handleGraphData(w http.ResponseWriter, r *http.Request) {
	g, info, ok := s.registry.Get(r.PathValue("hash"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown graph hash")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Asamap-Directed", strconv.FormatBool(info.Directed))
	if err := g.WriteEdgeList(w); err != nil {
		// Headers are gone; the broken stream is the only signal left.
		requestLogger(r.Context(), s.logger).Warn("graph data stream failed",
			"graph", info.Hash, "error", err.Error())
	}
}

// handleCachePeek serves the cached response bytes for a detect key, or 404.
// It never computes: peers use it to harvest each other's result caches
// before paying for a recompute.
func (s *Server) handleCachePeek(w http.ResponseWriter, r *http.Request) {
	body, ok := s.cache.get(r.PathValue("key"))
	if !ok {
		httpError(w, http.StatusNotFound, "key not cached")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Asamap-Cache", string(CacheHit))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	var req DetectRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	g, _, ok := s.registry.Get(req.Graph)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown graph hash (upload via POST /v1/graphs first)")
		return
	}
	opt, err := req.Options.toOptions()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	fp := opt.Fingerprint()
	key := detectKey(req.Graph, fp, opt.Seed)
	// Nest the run's span tree under this request's root span. Tracing is
	// excluded from the fingerprint, so the cache key is unaffected.
	opt.Trace = requestSpan(r.Context())

	start := s.clk.Now()
	body, outcome, err := s.cache.GetOrCompute(key, func() ([]byte, error) {
		jobCtx := r.Context()
		if s.cfg.JobTimeout > 0 {
			var cancel context.CancelFunc
			jobCtx, cancel = context.WithTimeout(jobCtx, s.cfg.JobTimeout)
			defer cancel()
		}
		var res *infomap.Result
		handle, err := s.queue.Submit(jobCtx, func(ctx context.Context) error {
			s.runs.Add(1)
			var runErr error
			res, runErr = infomap.RunContext(ctx, g, opt)
			return runErr
		})
		if err != nil {
			return nil, err
		}
		if err := handle.Wait(jobCtx); err != nil {
			return nil, err
		}
		s.agg.Merge(res.Breakdown)
		total := res.TotalStats()
		return json.Marshal(DetectResponse{
			Graph:              req.Graph,
			Fingerprint:        fp,
			Seed:               opt.Seed,
			NumModules:         res.NumModules,
			Codelength:         res.Codelength,
			OneLevelCodelength: res.OneLevelCodelength,
			Levels:             res.Levels,
			Sweeps:             res.Sweeps,
			Moves:              res.Moves,
			Accum: AccumCounters{
				Hits:       total.Hits,
				Misses:     total.Misses,
				Evictions:  total.Evictions,
				OverflowKV: total.OverflowKV,
			},
			Membership: res.Membership,
		})
	})
	if err != nil {
		requestLogger(r.Context(), s.logger).Warn("detect failed",
			"graph", req.Graph, "error", err.Error())
		s.writeDetectError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Asamap-Cache", string(outcome))
	w.Header().Set("X-Asamap-Elapsed", s.clk.Since(start).String())
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// writeDetectError maps queue and context failures onto HTTP statuses.
func (s *Server) writeDetectError(w http.ResponseWriter, err error) {
	var full *ErrQueueFull
	switch {
	case errors.As(err, &full):
		secs := int(full.RetryAfter.Seconds())
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		httpError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrQueueClosed):
		httpError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, "detection run exceeded the job timeout")
	case errors.Is(err, context.Canceled):
		// The client is gone; the status code is a formality for logs.
		httpError(w, 499, "request canceled")
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

// healthPayload is the /healthz body.
type healthPayload struct {
	Status        string        `json:"status"`
	UptimeSeconds float64       `json:"uptime_seconds"`
	Build         BuildInfo     `json:"build"`
	Registry      RegistryStats `json:"registry"`
	Queue         QueueStats    `json:"queue"`
	Cache         CacheStats    `json:"cache"`
	Runs          uint64        `json:"runs"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthPayload{
		Status:        "ok",
		UptimeSeconds: s.clk.Since(s.started).Seconds(),
		Build:         s.build,
		Registry:      s.registry.Stats(),
		Queue:         s.queue.Stats(),
		Cache:         s.cache.Stats(),
		Runs:          s.runs.Load(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	qs, cs, rs := s.queue.Stats(), s.cache.Stats(), s.registry.Stats()
	fmt.Fprintf(w, "# HELP asamap_queue_capacity Outstanding-job bound of the detection queue.\n")
	fmt.Fprintf(w, "# TYPE asamap_queue_capacity gauge\n")
	fmt.Fprintf(w, "asamap_queue_capacity %d\n", qs.Capacity)
	fmt.Fprintf(w, "# HELP asamap_queue_outstanding Admitted jobs not yet finished.\n")
	fmt.Fprintf(w, "# TYPE asamap_queue_outstanding gauge\n")
	fmt.Fprintf(w, "asamap_queue_outstanding %d\n", qs.Outstanding)
	fmt.Fprintf(w, "# TYPE asamap_jobs_submitted_total counter\nasamap_jobs_submitted_total %d\n", qs.Submitted)
	fmt.Fprintf(w, "# TYPE asamap_jobs_rejected_total counter\nasamap_jobs_rejected_total %d\n", qs.Rejected)
	fmt.Fprintf(w, "# TYPE asamap_jobs_completed_total counter\nasamap_jobs_completed_total %d\n", qs.Completed)
	fmt.Fprintf(w, "# TYPE asamap_jobs_canceled_total counter\nasamap_jobs_canceled_total %d\n", qs.Canceled)
	fmt.Fprintf(w, "# TYPE asamap_cache_entries gauge\nasamap_cache_entries %d\n", cs.Entries)
	fmt.Fprintf(w, "# TYPE asamap_cache_hits_total counter\nasamap_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(w, "# TYPE asamap_cache_misses_total counter\nasamap_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(w, "# TYPE asamap_cache_coalesced_total counter\nasamap_cache_coalesced_total %d\n", cs.Coalesced)
	fmt.Fprintf(w, "# TYPE asamap_cache_evictions_total counter\nasamap_cache_evictions_total %d\n", cs.Evictions)
	fmt.Fprintf(w, "# TYPE asamap_registry_graphs gauge\nasamap_registry_graphs %d\n", rs.Graphs)
	fmt.Fprintf(w, "# TYPE asamap_registry_parses_total counter\nasamap_registry_parses_total %d\n", rs.Parses)
	fmt.Fprintf(w, "# TYPE asamap_registry_raw_hits_total counter\nasamap_registry_raw_hits_total %d\n", rs.RawHits)
	fmt.Fprintf(w, "# TYPE asamap_runs_total counter\nasamap_runs_total %d\n", s.runs.Load())
	s.reqHist.Snapshot().WritePrometheus(w, "asamap_request_seconds",
		"End-to-end HTTP request latency.")
	s.waitHist.Snapshot().WritePrometheus(w, "asamap_queue_wait_seconds",
		"Detection-job wait between queue admission and worker pickup.")
	s.agg.Snapshot().WritePrometheus(w, "asamap")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
