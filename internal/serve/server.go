// Package serve is the network-facing layer of the repository: an HTTP
// service that accepts edge-list uploads into a content-addressed graph
// registry and serves community-detection requests from a bounded job queue
// through an LRU result cache.
//
// The design exploits two properties the rest of the repository already
// guarantees:
//
//   - graphs are immutable CSR structures, so one parsed graph can back any
//     number of concurrent detection runs (content addressing makes reuse
//     automatic: the SHA-256 of the canonicalized edges is the graph's name);
//   - detection is bit-deterministic in (graph, options fingerprint, seed)
//     regardless of worker count or steal schedule, so responses can be
//     cached and replayed as exact bytes — determinism is an API guarantee,
//     not just a test property.
//
// Backpressure is explicit: admission control bounds outstanding jobs, and
// saturated queues answer 429 with a Retry-After estimate instead of
// stalling the connection.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/asamap/asamap/internal/asa"
	"github.com/asamap/asamap/internal/clock"
	"github.com/asamap/asamap/internal/graph"
	"github.com/asamap/asamap/internal/infomap"
	"github.com/asamap/asamap/internal/obs"
	"github.com/asamap/asamap/internal/rng"
	"github.com/asamap/asamap/internal/trace"
)

// Config sizes the server. The zero value is not valid; start from
// DefaultConfig.
type Config struct {
	// QueueCapacity bounds outstanding (queued + running) detection jobs;
	// the QueueCapacity+1st concurrent request is rejected with 429.
	QueueCapacity int
	// Workers is the number of detection jobs executed concurrently. Each
	// job internally parallelizes across the sweep-scheduler pool according
	// to its requested per-run worker count.
	Workers int
	// CacheEntries bounds the LRU result cache.
	CacheEntries int
	// MaxUploadBytes bounds one edge-list upload.
	MaxUploadBytes int64
	// JobTimeout bounds one detection run's wall clock (0 = unbounded);
	// it composes with the client's own disconnect/cancellation.
	JobTimeout time.Duration
	// RetryAfterPrior seeds the queue's mean-job-duration estimate used for
	// cold-start Retry-After headers, before the first completed job trains
	// the EWMA; non-positive takes DefaultRetryAfterPrior.
	RetryAfterPrior time.Duration
	// Clock is injectable for deterministic tests; nil means the real clock.
	Clock clock.Clock
	// Logger receives the structured request/error log; nil discards.
	Logger *slog.Logger
	// TraceRing bounds the span ring buffer behind /debug/trace; 0 takes the
	// default (4096 spans), negative disables span retention.
	TraceRing int
}

// DefaultConfig returns production-shaped sizing: 16 outstanding jobs, 2
// concurrent runs, 256 cached results, 64 MiB uploads, 5 minute job cap.
func DefaultConfig() Config {
	return Config{
		QueueCapacity:   16,
		Workers:         2,
		CacheEntries:    256,
		MaxUploadBytes:  64 << 20,
		JobTimeout:      5 * time.Minute,
		RetryAfterPrior: DefaultRetryAfterPrior,
		Clock:           clock.Real{},
	}
}

// Server wires the registry, queue, and cache behind an http.Handler.
type Server struct {
	cfg      Config
	clk      clock.Clock
	registry *Registry
	queue    *Queue
	cache    *ResultCache
	agg      *trace.Breakdown // kernel breakdowns merged across all runs
	mux      *http.ServeMux
	started  time.Time
	logger   *slog.Logger
	tracer   *obs.Tracer      // span ring behind /debug/trace
	reqHist  *trace.Histogram // end-to-end request latency
	waitHist *trace.Histogram // detection-job queue wait
	build    BuildInfo
	idSalt   uint64        // salts generated request IDs across server instances
	rt       *runtimeStats // Go runtime gauges + GC pause histogram

	runs      atomic.Uint64 // detection runs actually executed (not cache/coalesced)
	reqSeq    atomic.Uint64 // generated-request-ID counter
	profiling atomic.Bool   // guards the single-flight CPU profile
}

// New constructs a Server from cfg.
func New(cfg Config) *Server {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.QueueCapacity < 1 {
		cfg.QueueCapacity = 1
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.CacheEntries < 1 {
		cfg.CacheEntries = 1
	}
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = 64 << 20
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.DiscardLogger()
	}
	ring := cfg.TraceRing
	switch {
	case ring == 0:
		ring = 4096
	case ring < 0:
		ring = 1 // smallest retention: the tracer has no true "off" mode
	}
	started := cfg.Clock.Now()
	s := &Server{
		cfg:      cfg,
		clk:      cfg.Clock,
		registry: NewRegistry(),
		queue:    NewQueue(cfg.QueueCapacity, cfg.Workers, cfg.Clock, cfg.RetryAfterPrior),
		cache:    NewResultCache(cfg.CacheEntries),
		agg:      trace.NewBreakdown(),
		started:  started,
		logger:   logger,
		tracer:   obs.New(obs.Config{Clock: cfg.Clock, RingSize: ring}),
		reqHist:  trace.NewLatencyHistogram(),
		waitHist: trace.NewLatencyHistogram(),
		build:    readBuildInfo(),
		idSalt:   rng.Hash64(uint64(started.UnixNano())),
		rt:       newRuntimeStats(),
	}
	s.queue.SetWaitHist(s.waitHist)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/graphs", s.handleUpload)
	mux.HandleFunc("GET /v1/graphs/{hash}", s.handleGraphInfo)
	mux.HandleFunc("GET /v1/graphs/{hash}/data", s.handleGraphData)
	mux.HandleFunc("POST /v1/graphs/{hash}/delta", s.handleDeltaUpload)
	mux.HandleFunc("GET /v1/versions/{id}", s.handleVersionInfo)
	mux.HandleFunc("GET /v1/versions/{id}/delta", s.handleVersionDelta)
	mux.HandleFunc("POST /v1/detect", s.handleDetect)
	mux.HandleFunc("GET /v1/cache/{key}", s.handleCachePeek)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics/snapshot", s.handleMetricsSnapshot)
	mux.HandleFunc("GET /debug/trace", s.handleTraceDebug)
	mux.HandleFunc("GET /debug/trace/{id}", s.handleTraceByID)
	mux.HandleFunc("GET /debug/profile", s.handleProfile)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux = mux
	return s
}

// Handler returns the server's HTTP handler: the route mux wrapped in the
// observability middleware (request IDs, root spans, panic recovery, latency
// histogram, structured request log).
func (s *Server) Handler() http.Handler { return s.middleware(s.mux) }

// Mux returns the raw route mux without the observability middleware. The
// cluster node composes it under its own mux and applies Wrap exactly once
// around the union, so cluster-routed and locally served requests share one
// middleware layer (and Handler-style double wrapping is avoided).
func (s *Server) Mux() http.Handler { return s.mux }

// Wrap applies the server's observability middleware to an arbitrary handler.
func (s *Server) Wrap(next http.Handler) http.Handler { return s.middleware(next) }

// Close drains the job queue and releases the workers.
func (s *Server) Close() { s.queue.Close() }

// Registry exposes the graph registry (read-mostly; used by the CLI for
// preloading graphs at startup).
func (s *Server) Registry() *Registry { return s.registry }

// Runs reports how many detection runs actually executed.
func (s *Server) Runs() uint64 { return s.runs.Load() }

// DetectRequest is the body of POST /v1/detect.
type DetectRequest struct {
	// Graph is the canonical hash returned by POST /v1/graphs.
	Graph string `json:"graph"`
	// Options configures the run; absent fields take the library defaults.
	Options DetectOptions `json:"options"`
}

// DetectOptions is the wire form of infomap.Options. Zero values mean "use
// the default" (infomap.DefaultOptions); Seed 0 therefore maps to the
// default seed 1 — pass an explicit non-zero seed to vary results.
type DetectOptions struct {
	Accum          string  `json:"accum,omitempty"` // baseline | asa | gomap | hashgraph
	CamKB          int     `json:"cam_kb,omitempty"`
	Workers        int     `json:"workers,omitempty"` // per-run sweep workers; 0 keeps default 1
	Sched          string  `json:"sched,omitempty"`   // steal | static
	MaxSweeps      int     `json:"max_sweeps,omitempty"`
	MinImprovement float64 `json:"min_improvement,omitempty"`
	MaxLevels      int     `json:"max_levels,omitempty"`
	OuterIters     int     `json:"outer_iters,omitempty"`
	Seed           uint64  `json:"seed,omitempty"`
	Damping        float64 `json:"damping,omitempty"`
	Teleport       string  `json:"teleport,omitempty"` // recorded | unrecorded
	// WarmStart asks the server to seed the run from the parent version's
	// partition instead of starting cold. The target graph must be a delta
	// version (it needs a lineage); the server replays the lineage from the
	// base graph forward, so the response is a deterministic function of the
	// chain — byte-identical however many replicas or requests compute it.
	WarmStart bool `json:"warm_start,omitempty"`
	// FrontierHops bounds re-optimization to vertices within this many hops
	// of the delta's touched edges at each warm step. 0 means the default
	// (DefaultFrontierHops); negative is rejected. Only valid with WarmStart.
	FrontierHops int `json:"frontier_hops,omitempty"`
}

// DefaultFrontierHops is the warm-start locality radius when the request
// leaves frontier_hops unset: vertices within 2 hops of a touched edge are
// re-optimized, the rest keep their inherited module assignment.
const DefaultFrontierHops = 2

// toOptions maps the wire options onto infomap.Options.
func (d DetectOptions) toOptions() (infomap.Options, error) {
	opt := infomap.DefaultOptions()
	switch d.Accum {
	case "", "baseline":
		opt.Kind = infomap.Baseline
	case "asa":
		opt.Kind = infomap.ASA
		camKB := d.CamKB
		if camKB <= 0 {
			camKB = 8
		}
		opt.ASAConfig = asa.Config{CapacityBytes: camKB * 1024, EntryBytes: 16, Policy: asa.LRU}
	case "gomap":
		opt.Kind = infomap.GoMap
	case "hashgraph":
		opt.Kind = infomap.HashGraph
	default:
		return opt, fmt.Errorf("unknown accum %q (want baseline|asa|gomap|hashgraph)", d.Accum)
	}
	switch d.Sched {
	case "", "steal":
		opt.Sched = infomap.SchedSteal
	case "static":
		opt.Sched = infomap.SchedStatic
	default:
		return opt, fmt.Errorf("unknown sched %q (want steal|static)", d.Sched)
	}
	switch d.Teleport {
	case "", "recorded":
		opt.Teleport = infomap.TeleportRecorded
	case "unrecorded":
		opt.Teleport = infomap.TeleportUnrecorded
	default:
		return opt, fmt.Errorf("unknown teleport %q (want recorded|unrecorded)", d.Teleport)
	}
	if d.Workers != 0 {
		opt.Workers = d.Workers
	}
	if d.MaxSweeps != 0 {
		opt.MaxSweeps = d.MaxSweeps
	}
	if d.MinImprovement != 0 {
		opt.MinImprovement = d.MinImprovement
	}
	if d.MaxLevels != 0 {
		opt.MaxLevels = d.MaxLevels
	}
	if d.OuterIters != 0 {
		opt.OuterIters = d.OuterIters
	}
	if d.Seed != 0 {
		opt.Seed = d.Seed
	}
	if d.Damping != 0 {
		opt.Damping = d.Damping
	}
	if d.FrontierHops < 0 {
		return opt, fmt.Errorf("frontier_hops must be >= 0, got %d", d.FrontierHops)
	}
	if d.FrontierHops != 0 && !d.WarmStart {
		return opt, fmt.Errorf("frontier_hops requires warm_start")
	}
	// WarmStart and FrontierHops are NOT mapped onto opt here: the warm seed
	// partition and frontier are per-lineage-step inputs the server derives
	// while walking the version chain. opt carries only the wire-computable
	// base options, which is what makes the cache key derivable by routers
	// that cannot resolve the lineage.
	return opt, nil
}

// effectiveHops resolves the wire frontier radius to its default.
func effectiveHops(hops int) int {
	if hops == 0 {
		return DefaultFrontierHops
	}
	return hops
}

// warmMarker is the cache-key suffix distinguishing a warm-start result from
// the cold result on the same (version, options, seed) coordinates.
func warmMarker(hops int) string {
	return "|w" + strconv.Itoa(hops)
}

// AccumCounters is the deterministic slice of the run's accumulator
// telemetry: the four CAM counters of the paper's evaluation are sums over
// per-vertex accumulator sessions, invariant across worker counts and steal
// schedules, so they are safe inside the byte-replayable response body.
// (Schedule-dependent counters like chain hops stay out — they would break
// the byte-identical cache-replay contract.)
type AccumCounters struct {
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Evictions  uint64 `json:"evictions"`
	OverflowKV uint64 `json:"overflow_kv"`
}

// DetectResponse is the body of a successful POST /v1/detect. It carries
// only deterministic fields — no wall-clock values — so identical requests
// yield byte-identical bodies whether computed, cached, or coalesced.
// Timing travels in the X-Asamap-Elapsed response header instead.
type DetectResponse struct {
	Graph              string        `json:"graph"`
	Fingerprint        string        `json:"fingerprint"`
	Seed               uint64        `json:"seed"`
	NumModules         int           `json:"num_modules"`
	Codelength         float64       `json:"codelength"`
	OneLevelCodelength float64       `json:"one_level_codelength"`
	Levels             int           `json:"levels"`
	Sweeps             int           `json:"sweeps"`
	Moves              uint64        `json:"moves"`
	Accum              AccumCounters `json:"accum"`
	Membership         []uint32      `json:"membership"`
	// Warm is present only on warm-start responses, keeping cold response
	// bodies byte-identical to those of servers that never saw a delta.
	Warm *WarmInfo `json:"warm,omitempty"`
}

// WarmInfo records how a warm-start run was seeded. Every field is a
// deterministic function of the version lineage and the request options, so
// it is safe inside the byte-replayable response body.
type WarmInfo struct {
	Parent       string `json:"parent"`        // version or base the seed partition came from
	Base         string `json:"base"`          // root of the lineage that was replayed
	Depth        int    `json:"depth"`         // deltas between base and this version
	FrontierHops int    `json:"frontier_hops"` // effective locality radius
	FrontierSize int    `json:"frontier_size"` // vertices re-optimized at the leaf level
	Frozen       int    `json:"frozen"`        // vertices that kept their inherited module
}

// detectKey joins the three coordinates that fully determine a response body.
func detectKey(graphHash, fingerprint string, seed uint64) string {
	return graphHash + "|" + fingerprint + "|" + strconv.FormatUint(seed, 10)
}

// DetectKey returns the result-cache key for (graph hash, wire options):
// canonical graph hash, options fingerprint, and effective seed. Because a
// run is bit-deterministic given this key, it is also the replication unit
// the cluster router shards and the coordinate peer cache fetches address.
// For warm-start requests the key gains a "|w<hops>" suffix derived from the
// wire options alone — a router can compute it without resolving the version
// lineage, even though the warm seed partition itself is lineage-derived.
func DetectKey(graphHash string, d DetectOptions) (string, error) {
	opt, err := d.toOptions()
	if err != nil {
		return "", err
	}
	key := detectKey(graphHash, opt.Fingerprint(), opt.Seed)
	if d.WarmStart {
		key += warmMarker(effectiveHops(d.FrontierHops))
	}
	return key, nil
}

// CachePeek returns the cached response bytes for a detect key without
// computing anything. It backs GET /v1/cache/{key}, the peer result-cache
// fetch path.
func (s *Server) CachePeek(key string) ([]byte, bool) {
	return s.cache.get(key)
}

// CacheSeed inserts precomputed response bytes under a detect key. The
// cluster layer uses it to adopt a peer's result: byte-replay determinism
// makes a peer-computed body indistinguishable from a local one.
func (s *Server) CacheSeed(key string, body []byte) {
	s.cache.put(key, body)
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	directed := false
	switch v := r.URL.Query().Get("directed"); v {
	case "", "false", "0":
	case "true", "1":
		directed = true
	default:
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad directed value %q", v))
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	data, err := io.ReadAll(body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("upload exceeds %d bytes", tooLarge.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	info, err := s.registry.Add(data, directed)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	status := http.StatusCreated
	if info.Reused {
		status = http.StatusOK
	}
	writeJSON(w, status, info)
}

func (s *Server) handleGraphInfo(w http.ResponseWriter, r *http.Request) {
	_, info, ok := s.registry.Get(r.PathValue("hash"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown graph hash")
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleGraphData streams the canonical edge list of a registered graph, the
// transfer format peers use to replicate graphs on demand: re-registering
// the download yields the same canonical hash on the receiving side.
func (s *Server) handleGraphData(w http.ResponseWriter, r *http.Request) {
	g, info, ok := s.registry.Get(r.PathValue("hash"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown graph hash")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Asamap-Directed", strconv.FormatBool(info.Directed))
	if err := g.WriteEdgeList(w); err != nil {
		// Headers are gone; the broken stream is the only signal left.
		requestLogger(r.Context(), s.logger).Warn("graph data stream failed",
			"graph", info.Hash, "error", err.Error())
	}
}

// handleDeltaUpload applies a delta-edge batch to a registered graph or
// version, materializing a new version addressed by the chained delta hash.
// Re-uploading an identical delta onto the same parent answers 200 with the
// existing version; a new version answers 201.
func (s *Server) handleDeltaUpload(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	data, err := io.ReadAll(body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("delta exceeds %d bytes", tooLarge.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	info, err := s.registry.AddVersion(r.PathValue("hash"), data)
	if err != nil {
		if errors.Is(err, ErrUnknownParent) {
			httpError(w, http.StatusNotFound, "unknown parent graph or version")
			return
		}
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	status := http.StatusCreated
	if info.Reused {
		status = http.StatusOK
	}
	writeJSON(w, status, info)
}

func (s *Server) handleVersionInfo(w http.ResponseWriter, r *http.Request) {
	info, ok := s.registry.Version(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown version id")
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleVersionDelta streams the exact delta bytes that produced a version —
// the replication transfer format: a peer applying these bytes to the same
// parent (named in the X-Asamap-Parent header) derives the same version id.
func (s *Server) handleVersionDelta(w http.ResponseWriter, r *http.Request) {
	delta, info, ok := s.registry.VersionDelta(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown version id")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Asamap-Parent", info.Parent)
	w.WriteHeader(http.StatusOK)
	w.Write(delta)
}

// handleCachePeek serves the cached response bytes for a detect key, or 404.
// It never computes: peers use it to harvest each other's result caches
// before paying for a recompute.
func (s *Server) handleCachePeek(w http.ResponseWriter, r *http.Request) {
	body, ok := s.cache.get(r.PathValue("key"))
	if !ok {
		httpError(w, http.StatusNotFound, "key not cached")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Asamap-Cache", string(CacheHit))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	var req DetectRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	g, ok := s.registry.Resolve(req.Graph)
	if !ok {
		httpError(w, http.StatusNotFound,
			"unknown graph hash or version id (upload via POST /v1/graphs first)")
		return
	}
	opt, err := req.Options.toOptions()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	fp := opt.Fingerprint()
	// Nest the run's span tree under this request's root span. Tracing is
	// excluded from the fingerprint, so the cache key is unaffected.
	opt.Trace = requestSpan(r.Context())

	start := s.clk.Now()
	var body []byte
	var outcome CacheOutcome
	if req.Options.WarmStart {
		body, outcome, err = s.warmDetect(r.Context(), req.Graph, opt, fp,
			effectiveHops(req.Options.FrontierHops))
	} else {
		body, outcome, err = s.cache.GetOrCompute(detectKey(req.Graph, fp, opt.Seed),
			func() ([]byte, error) {
				res, err := s.computeDetect(r.Context(), g, opt)
				if err != nil {
					return nil, err
				}
				return marshalDetect(req.Graph, fp, opt.Seed, res, nil)
			})
	}
	if err != nil {
		requestLogger(r.Context(), s.logger).Warn("detect failed",
			"graph", req.Graph, "error", err.Error())
		s.writeDetectError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Asamap-Cache", string(outcome))
	w.Header().Set("X-Asamap-Elapsed", s.clk.Since(start).String())
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// computeDetect runs one detection job through the bounded queue, honoring
// the configured job timeout, and folds its kernel breakdown into the
// server-wide aggregate.
func (s *Server) computeDetect(ctx context.Context, g *graph.Graph, opt infomap.Options) (*infomap.Result, error) {
	jobCtx := ctx
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		jobCtx, cancel = context.WithTimeout(jobCtx, s.cfg.JobTimeout)
		defer cancel()
	}
	var res *infomap.Result
	handle, err := s.queue.Submit(jobCtx, func(ctx context.Context) error {
		s.runs.Add(1)
		var runErr error
		res, runErr = infomap.RunContext(ctx, g, opt)
		return runErr
	})
	if err != nil {
		return nil, err
	}
	if err := handle.Wait(jobCtx); err != nil {
		return nil, err
	}
	s.agg.Merge(res.Breakdown)
	return res, nil
}

// marshalDetect renders the deterministic response body for one run. fp is
// the wire-options fingerprint (warm steps keep the base fingerprint in the
// body; the warm seed itself is committed by the version id in the key).
func marshalDetect(graphID, fp string, seed uint64, res *infomap.Result, warm *WarmInfo) ([]byte, error) {
	total := res.TotalStats()
	return json.Marshal(DetectResponse{
		Graph:              graphID,
		Fingerprint:        fp,
		Seed:               seed,
		NumModules:         res.NumModules,
		Codelength:         res.Codelength,
		OneLevelCodelength: res.OneLevelCodelength,
		Levels:             res.Levels,
		Sweeps:             res.Sweeps,
		Moves:              res.Moves,
		Accum: AccumCounters{
			Hits:       total.Hits,
			Misses:     total.Misses,
			Evictions:  total.Evictions,
			OverflowKV: total.OverflowKV,
		},
		Membership: res.Membership,
		Warm:       warm,
	})
}

// errWarmNeedsVersion rejects warm_start on a graph with no parent lineage.
var errWarmNeedsVersion = errors.New(
	"warm_start requires a delta version (the graph has no parent lineage)")

// warmDetect replays the target's version lineage base→target, seeding each
// step from its parent's partition and re-optimizing only vertices within
// the frontier radius of that step's touched edges. Every step is cached
// under its own key — the base under the ordinary cold key, each version
// under its warm key — so an incremental update after k prior deltas costs
// one warm run, not k, and the whole walk is a deterministic function of the
// lineage: byte-identical wherever and whenever it is recomputed.
func (s *Server) warmDetect(ctx context.Context, target string, opt infomap.Options, fp string, hops int) ([]byte, CacheOutcome, error) {
	lineage, ok := s.registry.Lineage(target)
	if !ok || len(lineage) < 2 {
		return nil, "", errWarmNeedsVersion
	}
	base := lineage[0]
	bg, okb := s.registry.Resolve(base)
	if !okb {
		return nil, "", fmt.Errorf("serve: lineage base %s vanished", base)
	}
	// Base step: a plain cold run under the ordinary cold key, so a prior
	// cold detect on the base graph is reused as-is (and vice versa).
	body, outcome, err := s.cache.GetOrCompute(detectKey(base, fp, opt.Seed),
		func() ([]byte, error) {
			res, err := s.computeDetect(ctx, bg, opt)
			if err != nil {
				return nil, err
			}
			return marshalDetect(base, fp, opt.Seed, res, nil)
		})
	if err != nil {
		return nil, "", err
	}
	for i := 1; i < len(lineage); i++ {
		vid := lineage[i]
		vg, touched, okv := s.registry.VersionGraph(vid)
		if !okv {
			return nil, "", fmt.Errorf("serve: lineage step %s vanished", vid)
		}
		info, _ := s.registry.Version(vid)
		var parent DetectResponse
		if err := json.Unmarshal(body, &parent); err != nil {
			return nil, "", fmt.Errorf("serve: decoding cached parent result: %w", err)
		}
		// Versions never shrink the vertex set, so the parent partition
		// extends by giving each new vertex a fresh singleton module.
		seedM := make([]uint32, vg.N())
		copy(seedM, parent.Membership)
		next := uint32(parent.NumModules)
		for j := len(parent.Membership); j < vg.N(); j++ {
			seedM[j] = next
			next++
		}
		stepOpt := opt
		stepOpt.WarmStart = seedM
		stepOpt.FrontierSeeds = touched
		stepOpt.FrontierHops = hops
		parentID := lineage[i-1]
		body, outcome, err = s.cache.GetOrCompute(detectKey(vid, fp, opt.Seed)+warmMarker(hops),
			func() ([]byte, error) {
				res, err := s.computeDetect(ctx, vg, stepOpt)
				if err != nil {
					return nil, err
				}
				return marshalDetect(vid, fp, opt.Seed, res, &WarmInfo{
					Parent:       parentID,
					Base:         base,
					Depth:        info.Depth,
					FrontierHops: hops,
					FrontierSize: res.FrontierSize,
					Frozen:       res.FrozenVertices,
				})
			})
		if err != nil {
			return nil, "", err
		}
	}
	return body, outcome, nil
}

// writeDetectError maps queue and context failures onto HTTP statuses.
func (s *Server) writeDetectError(w http.ResponseWriter, err error) {
	var full *ErrQueueFull
	switch {
	case errors.Is(err, errWarmNeedsVersion):
		httpError(w, http.StatusBadRequest, err.Error())
	case errors.As(err, &full):
		secs := int(full.RetryAfter.Seconds())
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		httpError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrQueueClosed):
		httpError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, "detection run exceeded the job timeout")
	case errors.Is(err, context.Canceled):
		// The client is gone; the status code is a formality for logs.
		httpError(w, 499, "request canceled")
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

// healthPayload is the /healthz body.
type healthPayload struct {
	Status        string        `json:"status"`
	UptimeSeconds float64       `json:"uptime_seconds"`
	Build         BuildInfo     `json:"build"`
	Registry      RegistryStats `json:"registry"`
	Queue         QueueStats    `json:"queue"`
	Cache         CacheStats    `json:"cache"`
	Runs          uint64        `json:"runs"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthPayload{
		Status:        "ok",
		UptimeSeconds: s.clk.Since(s.started).Seconds(),
		Build:         s.build,
		Registry:      s.registry.Stats(),
		Queue:         s.queue.Stats(),
		Cache:         s.cache.Stats(),
		Runs:          s.runs.Load(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	qs, cs, rs := s.queue.Stats(), s.cache.Stats(), s.registry.Stats()
	fmt.Fprintf(w, "# HELP asamap_queue_capacity Outstanding-job bound of the detection queue.\n")
	fmt.Fprintf(w, "# TYPE asamap_queue_capacity gauge\n")
	fmt.Fprintf(w, "asamap_queue_capacity %d\n", qs.Capacity)
	fmt.Fprintf(w, "# HELP asamap_queue_outstanding Admitted jobs not yet finished.\n")
	fmt.Fprintf(w, "# TYPE asamap_queue_outstanding gauge\n")
	fmt.Fprintf(w, "asamap_queue_outstanding %d\n", qs.Outstanding)
	fmt.Fprintf(w, "# TYPE asamap_jobs_submitted_total counter\nasamap_jobs_submitted_total %d\n", qs.Submitted)
	fmt.Fprintf(w, "# TYPE asamap_jobs_rejected_total counter\nasamap_jobs_rejected_total %d\n", qs.Rejected)
	fmt.Fprintf(w, "# TYPE asamap_jobs_completed_total counter\nasamap_jobs_completed_total %d\n", qs.Completed)
	fmt.Fprintf(w, "# TYPE asamap_jobs_canceled_total counter\nasamap_jobs_canceled_total %d\n", qs.Canceled)
	fmt.Fprintf(w, "# TYPE asamap_cache_entries gauge\nasamap_cache_entries %d\n", cs.Entries)
	fmt.Fprintf(w, "# TYPE asamap_cache_hits_total counter\nasamap_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(w, "# TYPE asamap_cache_misses_total counter\nasamap_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(w, "# TYPE asamap_cache_coalesced_total counter\nasamap_cache_coalesced_total %d\n", cs.Coalesced)
	fmt.Fprintf(w, "# TYPE asamap_cache_evictions_total counter\nasamap_cache_evictions_total %d\n", cs.Evictions)
	fmt.Fprintf(w, "# TYPE asamap_registry_graphs gauge\nasamap_registry_graphs %d\n", rs.Graphs)
	fmt.Fprintf(w, "# TYPE asamap_registry_versions gauge\nasamap_registry_versions %d\n", rs.Versions)
	fmt.Fprintf(w, "# TYPE asamap_registry_delta_applies_total counter\nasamap_registry_delta_applies_total %d\n", rs.DeltaApplies)
	fmt.Fprintf(w, "# TYPE asamap_registry_parses_total counter\nasamap_registry_parses_total %d\n", rs.Parses)
	fmt.Fprintf(w, "# TYPE asamap_registry_raw_hits_total counter\nasamap_registry_raw_hits_total %d\n", rs.RawHits)
	fmt.Fprintf(w, "# TYPE asamap_runs_total counter\nasamap_runs_total %d\n", s.runs.Load())
	s.writeRuntimeMetrics(w)
	s.reqHist.Snapshot().WritePrometheus(w, "asamap_request_seconds",
		"End-to-end HTTP request latency.")
	s.waitHist.Snapshot().WritePrometheus(w, "asamap_queue_wait_seconds",
		"Detection-job wait between queue admission and worker pickup.")
	s.agg.Snapshot().WritePrometheus(w, "asamap")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
