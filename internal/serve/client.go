package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client is a typed HTTP client for an asamapd server. The zero value is not
// usable; construct with NewClient.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the server at baseURL (e.g.
// "http://localhost:8715"). hc may be nil to use http.DefaultClient.
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: hc}
}

// ServerBusyError reports a 429 rejection with the server's Retry-After
// estimate.
type ServerBusyError struct {
	RetryAfter time.Duration
}

func (e *ServerBusyError) Error() string {
	return fmt.Sprintf("serve: server busy, retry after %s", e.RetryAfter)
}

// APIError is any non-2xx response that is not a 429.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serve: HTTP %d: %s", e.Status, e.Message)
}

// UploadGraph streams an edge list to the server and returns its content
// address. Identical uploads are deduplicated server-side.
func (c *Client) UploadGraph(ctx context.Context, edgeList io.Reader, directed bool) (GraphInfo, error) {
	url := c.base + "/v1/graphs"
	if directed {
		url += "?directed=true"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, edgeList)
	if err != nil {
		return GraphInfo{}, err
	}
	req.Header.Set("Content-Type", "text/plain")
	var info GraphInfo
	if err := c.do(req, &info); err != nil {
		return GraphInfo{}, err
	}
	return info, nil
}

// GraphInfo fetches the registered shape of a graph by hash.
func (c *Client) GraphInfo(ctx context.Context, hash string) (GraphInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/graphs/"+hash, nil)
	if err != nil {
		return GraphInfo{}, err
	}
	var info GraphInfo
	if err := c.do(req, &info); err != nil {
		return GraphInfo{}, err
	}
	return info, nil
}

// DetectResult pairs the response body with its cache disposition.
type DetectResult struct {
	DetectResponse
	// Cache reports how the server obtained the result: miss (computed),
	// hit (cached), or coalesced (shared an in-flight identical request).
	Cache CacheOutcome
	// Raw is the exact response body; byte-identical across identical
	// requests — the server's determinism guarantee.
	Raw []byte
}

// Detect runs (or fetches) community detection for a registered graph.
func (c *Client) Detect(ctx context.Context, graphHash string, opts DetectOptions) (*DetectResult, error) {
	body, err := json.Marshal(DetectRequest{Graph: graphHash, Options: opts})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/detect", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, responseError(resp, raw)
	}
	out := &DetectResult{
		Cache: CacheOutcome(resp.Header.Get("X-Asamap-Cache")),
		Raw:   raw,
	}
	if err := json.Unmarshal(raw, &out.DetectResponse); err != nil {
		return nil, fmt.Errorf("serve: decoding detect response: %w", err)
	}
	return out, nil
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (map[string]any, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	var out map[string]any
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// do executes req and decodes a 2xx JSON body into out.
func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return responseError(resp, raw)
	}
	return json.Unmarshal(raw, out)
}

// responseError converts a non-2xx response into the matching typed error.
func responseError(resp *http.Response, raw []byte) error {
	if resp.StatusCode == http.StatusTooManyRequests {
		retry := time.Second
		if v, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && v > 0 {
			retry = time.Duration(v) * time.Second
		}
		return &ServerBusyError{RetryAfter: retry}
	}
	var payload struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(raw))
	if json.Unmarshal(raw, &payload) == nil && payload.Error != "" {
		msg = payload.Error
	}
	return &APIError{Status: resp.StatusCode, Message: msg}
}
