package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/asamap/asamap/internal/clock"
	"github.com/asamap/asamap/internal/obs"
	"github.com/asamap/asamap/internal/obs/propagate"
	"github.com/asamap/asamap/internal/rng"
)

// Client is a typed HTTP client for an asamapd server. The zero value is not
// usable; construct with NewClient. A plain NewClient client is single-shot;
// WithRetry returns a copy that retries transient failures with capped
// exponential backoff.
type Client struct {
	base  string
	hc    *http.Client
	retry *RetryPolicy // nil = single-shot
}

// NewClient returns a client for the server at baseURL (e.g.
// "http://localhost:8715"). hc may be nil to use http.DefaultClient.
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: hc}
}

// RetryPolicy configures WithRetry: capped exponential backoff with
// deterministic jitter, applied to transient failures (transport errors,
// 429, 502/503/504). Every asamapd endpoint is idempotent by construction —
// uploads are content-addressed and detects are bit-deterministic — so
// retrying a request that may already have executed is always safe.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (minimum 1; 0 takes the default 4).
	MaxAttempts int
	// BaseBackoff is the wait before the first retry; attempt k waits
	// BaseBackoff << k, capped at MaxBackoff (defaults 100ms / 5s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterSeed drives the deterministic jitter stream added to each wait
	// (up to half the backoff), decorrelating clients that fail together.
	JitterSeed uint64
	// Clock times the waits; nil means the real clock.
	Clock clock.Clock
}

// DefaultRetryPolicy returns the production-shaped policy: 4 attempts,
// 100ms base, 5s cap.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseBackoff: 100 * time.Millisecond, MaxBackoff: 5 * time.Second}
}

// normalize fills zero fields with their defaults.
func (p RetryPolicy) normalize() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 4
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 100 * time.Millisecond
	}
	if p.MaxBackoff < p.BaseBackoff {
		p.MaxBackoff = 5 * time.Second
	}
	if p.Clock == nil {
		p.Clock = clock.Real{}
	}
	return p
}

// wait returns the backoff before retry number attempt (1-based): capped
// exponential growth plus a deterministic jitter in [0, wait/2).
func (p RetryPolicy) wait(key uint64, attempt int) time.Duration {
	shift := attempt - 1
	if shift > 30 {
		shift = 30
	}
	d := p.BaseBackoff << uint(shift)
	if d > p.MaxBackoff || d <= 0 {
		d = p.MaxBackoff
	}
	u := float64(rng.Hash64(p.JitterSeed^key^uint64(attempt))>>11) / (1 << 53)
	return d + time.Duration(u*float64(d)/2)
}

// WithRetry returns a copy of the client that retries transient failures
// under the given policy. The original client is unchanged.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	np := p.normalize()
	out := *c
	out.retry = &np
	return &out
}

// ServerBusyError reports a 429 rejection with the server's Retry-After
// estimate. RequestID carries the server's X-Request-Id so the rejection can
// be correlated with the server-side log line.
type ServerBusyError struct {
	RetryAfter time.Duration
	RequestID  string
}

func (e *ServerBusyError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("serve: server busy, retry after %s (request %s)", e.RetryAfter, e.RequestID)
	}
	return fmt.Sprintf("serve: server busy, retry after %s", e.RetryAfter)
}

// APIError is any non-2xx response that is not a 429. RequestID carries the
// server's X-Request-Id so a client-side error report names the exact
// server-side log lines (and trace spans) that produced it.
type APIError struct {
	Status    int
	Message   string
	RequestID string
}

func (e *APIError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("serve: HTTP %d: %s (request %s)", e.Status, e.Message, e.RequestID)
	}
	return fmt.Sprintf("serve: HTTP %d: %s", e.Status, e.Message)
}

// UploadGraph streams an edge list to the server and returns its content
// address. Identical uploads are deduplicated server-side.
func (c *Client) UploadGraph(ctx context.Context, edgeList io.Reader, directed bool) (GraphInfo, error) {
	url := c.base + "/v1/graphs"
	if directed {
		url += "?directed=true"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, edgeList)
	if err != nil {
		return GraphInfo{}, err
	}
	req.Header.Set("Content-Type", "text/plain")
	var info GraphInfo
	if err := c.do(req, &info); err != nil {
		return GraphInfo{}, err
	}
	return info, nil
}

// UploadDelta streams a delta-edge batch onto a registered graph or version
// and returns the resulting version's lineage metadata. Identical deltas on
// the same parent deduplicate server-side (the version id is a pure function
// of parent digest + ordered ops).
func (c *Client) UploadDelta(ctx context.Context, parent string, delta io.Reader) (VersionInfo, error) {
	url := c.base + "/v1/graphs/" + parent + "/delta"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, delta)
	if err != nil {
		return VersionInfo{}, err
	}
	req.Header.Set("Content-Type", "text/plain")
	var info VersionInfo
	if err := c.do(req, &info); err != nil {
		return VersionInfo{}, err
	}
	return info, nil
}

// Version fetches the lineage metadata of a version by id.
func (c *Client) Version(ctx context.Context, id string) (VersionInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/versions/"+id, nil)
	if err != nil {
		return VersionInfo{}, err
	}
	var info VersionInfo
	if err := c.do(req, &info); err != nil {
		return VersionInfo{}, err
	}
	return info, nil
}

// VersionDelta fetches the exact delta bytes that produced a version, plus
// the parent id they apply to (from the X-Asamap-Parent header). Applying
// the bytes to the same parent on another replica derives the same version.
func (c *Client) VersionDelta(ctx context.Context, id string) (delta []byte, parent string, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/versions/"+id+"/delta", nil)
	if err != nil {
		return nil, "", err
	}
	resp, raw, err := c.send(req)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", responseError(resp, raw)
	}
	return raw, resp.Header.Get("X-Asamap-Parent"), nil
}

// GraphInfo fetches the registered shape of a graph by hash.
func (c *Client) GraphInfo(ctx context.Context, hash string) (GraphInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/graphs/"+hash, nil)
	if err != nil {
		return GraphInfo{}, err
	}
	var info GraphInfo
	if err := c.do(req, &info); err != nil {
		return GraphInfo{}, err
	}
	return info, nil
}

// DetectResult pairs the response body with its cache disposition.
type DetectResult struct {
	DetectResponse
	// Cache reports how the server obtained the result: miss (computed),
	// hit (cached), or coalesced (shared an in-flight identical request).
	Cache CacheOutcome
	// Raw is the exact response body; byte-identical across identical
	// requests — the server's determinism guarantee.
	Raw []byte
}

// Detect runs (or fetches) community detection for a registered graph.
func (c *Client) Detect(ctx context.Context, graphHash string, opts DetectOptions) (*DetectResult, error) {
	body, err := json.Marshal(DetectRequest{Graph: graphHash, Options: opts})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/detect", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, raw, err := c.send(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, responseError(resp, raw)
	}
	out := &DetectResult{
		Cache: CacheOutcome(resp.Header.Get("X-Asamap-Cache")),
		Raw:   raw,
	}
	if err := json.Unmarshal(raw, &out.DetectResponse); err != nil {
		return nil, fmt.Errorf("serve: decoding detect response: %w", err)
	}
	return out, nil
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (map[string]any, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	var out map[string]any
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// do executes req and decodes a 2xx JSON body into out.
func (c *Client) do(req *http.Request, out any) error {
	resp, raw, err := c.send(req)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return responseError(resp, raw)
	}
	return json.Unmarshal(raw, out)
}

// send executes req — re-issuing it under the retry policy when one is set —
// and returns the final response with its fully read body.
func (c *Client) send(req *http.Request) (*http.Response, []byte, error) {
	// Never forward a caller-supplied trace context: the header is cluster
	// addressing, and anything already on the request is stale by definition.
	// A fresh context is injected per attempt below, and only when this call
	// runs inside a traced server request (the cluster fetch paths) — a
	// standalone client never emits the header at all.
	propagate.Strip(req.Header)
	tid, hop := RequestTrace(req.Context())
	var call *obs.Span
	if sp := requestSpan(req.Context()); sp != nil {
		call = sp.Child("client.call")
		call.SetAttr("target", req.Method+" "+req.URL.Path)
		defer call.End()
	}
	for attempt := 1; ; attempt++ {
		r := req
		if attempt > 1 {
			r = req.Clone(req.Context())
			if req.GetBody != nil {
				body, err := req.GetBody()
				if err != nil {
					return nil, nil, err
				}
				r.Body = body
			}
		}
		var att *obs.Span
		if call != nil {
			// One child span per attempt; remote request spans root under its
			// ID, so each retry stitches to its own attempt while duplicate
			// deliveries of one attempt collapse to one remote tree.
			att = call.Child("client.attempt")
			att.SetUint("attempt", uint64(attempt))
			if tid != 0 && hop < propagate.MaxHops {
				propagate.Inject(r.Header, propagate.Context{TraceID: tid, Parent: att.ID(), Hop: hop + 1})
			}
		}
		resp, err := c.hc.Do(r)
		if att != nil {
			if err != nil {
				att.SetAttr("outcome", "transport")
			} else {
				att.SetUint("status", uint64(resp.StatusCode))
			}
			att.End()
		}
		var raw []byte
		if err == nil {
			raw, err = io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				resp = nil // a torn body is a transport failure
			}
		}
		wait, retryable := c.retryWait(resp, err, attempt, req)
		if !retryable {
			return resp, raw, err
		}
		select {
		case <-c.retry.Clock.After(wait):
		case <-req.Context().Done():
			return nil, nil, req.Context().Err()
		}
	}
}

// retryWait decides whether the attempt's outcome is transient and how long
// to wait before the next try. A request with a non-replayable streaming
// body is never retried — the bytes are gone.
func (c *Client) retryWait(resp *http.Response, err error, attempt int, req *http.Request) (time.Duration, bool) {
	if c.retry == nil || attempt >= c.retry.MaxAttempts {
		return 0, false
	}
	if req.Body != nil && req.GetBody == nil {
		return 0, false
	}
	key := rng.HashString(req.Method + " " + req.URL.Path)
	switch {
	case err != nil:
		return c.retry.wait(key, attempt), true
	case resp.StatusCode == http.StatusTooManyRequests:
		// Back off at least as long as the server's own estimate: the queue
		// knows its depth better than our exponential schedule does.
		w := c.retry.wait(key, attempt)
		if v, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && v > 0 {
			if sw := time.Duration(v) * time.Second; sw > w {
				w = sw
			}
		}
		return w, true
	case resp.StatusCode == http.StatusBadGateway,
		resp.StatusCode == http.StatusServiceUnavailable,
		resp.StatusCode == http.StatusGatewayTimeout:
		return c.retry.wait(key, attempt), true
	}
	return 0, false
}

// responseError converts a non-2xx response into the matching typed error,
// carrying the server's X-Request-Id for cross-node log correlation.
func responseError(resp *http.Response, raw []byte) error {
	reqID := resp.Header.Get("X-Request-Id")
	if resp.StatusCode == http.StatusTooManyRequests {
		retry := time.Second
		if v, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && v > 0 {
			retry = time.Duration(v) * time.Second
		}
		return &ServerBusyError{RetryAfter: retry, RequestID: reqID}
	}
	var payload struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(raw))
	if json.Unmarshal(raw, &payload) == nil && payload.Error != "" {
		msg = payload.Error
	}
	return &APIError{Status: resp.StatusCode, Message: msg, RequestID: reqID}
}
