package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/asamap/asamap/internal/clock"
)

// TestQueueColdStartRetryAfterPrior pins the cold-start Retry-After math:
// before any job has completed, the estimate is prior × ceil(outstanding /
// workers), not the degenerate one-second floor regardless of depth.
func TestQueueColdStartRetryAfterPrior(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	q := NewQueue(8, 2, fake, 0) // default prior: 1s
	defer q.Close()
	release := make(chan struct{})
	q.setTestGate(func(*queueJob) { <-release })
	defer close(release)

	// Empty queue: one round of the prior, exactly the floor.
	if got := q.RetryAfter(); got != time.Second {
		t.Fatalf("cold empty RetryAfter %v, want 1s", got)
	}
	for i := 0; i < 8; i++ {
		if _, err := q.Submit(context.Background(), func(context.Context) error { return nil }); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	// 8 outstanding / 2 workers = 4 rounds × 1s prior.
	_, err := q.Submit(context.Background(), func(context.Context) error { return nil })
	var full *ErrQueueFull
	if !errors.As(err, &full) {
		t.Fatalf("saturated submit returned %v, want ErrQueueFull", err)
	}
	if full.RetryAfter != 4*time.Second {
		t.Fatalf("cold saturated RetryAfter %v, want 4s (prior × 4 rounds)", full.RetryAfter)
	}
}

// TestQueueColdStartRetryAfterConfigurablePrior covers a non-default prior
// and the hand-off to EWMA control once the first job completes.
func TestQueueColdStartRetryAfterConfigurablePrior(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	q := NewQueue(4, 1, fake, 500*time.Millisecond)
	defer q.Close()
	release := make(chan struct{})
	var gated atomic.Bool
	gated.Store(true)
	q.setTestGate(func(*queueJob) {
		if gated.Load() {
			<-release
		}
	})

	for i := 0; i < 4; i++ {
		if _, err := q.Submit(context.Background(), func(context.Context) error { return nil }); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	// 4 outstanding / 1 worker = 4 rounds × 500ms prior = 2s.
	_, err := q.Submit(context.Background(), func(context.Context) error { return nil })
	var full *ErrQueueFull
	if !errors.As(err, &full) {
		t.Fatalf("saturated submit returned %v, want ErrQueueFull", err)
	}
	if full.RetryAfter != 2*time.Second {
		t.Fatalf("cold saturated RetryAfter %v, want 2s (500ms prior × 4 rounds)", full.RetryAfter)
	}
	gated.Store(false)
	close(release)
	for q.Stats().Outstanding > 0 {
		time.Sleep(time.Millisecond)
	}
	// The first completed sample replaces the prior outright.
	done := make(chan struct{})
	h, err := q.Submit(context.Background(), func(context.Context) error {
		fake.Advance(8 * time.Second)
		close(done)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := q.RetryAfter(); got != 8*time.Second {
		t.Fatalf("RetryAfter %v after first 8s sample, want 8s (EWMA took over)", got)
	}
}

// TestColdStart429HeaderPinned pins the HTTP-level cold-start header: a
// saturated fresh server answers 429 with Retry-After scaled by the prior,
// before any job has ever completed.
func TestColdStart429HeaderPinned(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueCapacity = 6
	cfg.Workers = 2
	cfg.RetryAfterPrior = time.Second
	s, hs, _ := newTestServer(t, cfg)

	release := make(chan struct{})
	defer close(release)
	s.queue.setTestGate(func(*queueJob) { <-release })
	for i := 0; i < 6; i++ {
		if _, err := s.queue.Submit(context.Background(), func(context.Context) error { return nil }); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}

	info, err := s.registry.Add([]byte(twoTriangles), false)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(DetectRequest{Graph: info.Hash})
	resp, err := http.Post(hs.URL+"/v1/detect", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	// 6 outstanding / 2 workers = 3 rounds × 1s prior.
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("cold-start Retry-After header %q, want \"3\"", got)
	}
}

// TestClientRetryTransient5xx: a retrying client absorbs transient 503s and
// succeeds; the single-shot client surfaces them.
func TestClientRetryTransient5xx(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			httpError(w, http.StatusServiceUnavailable, "warming up")
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
	}))
	defer srv.Close()

	single := NewClient(srv.URL, srv.Client())
	if _, err := single.Health(context.Background()); err == nil {
		t.Fatal("single-shot client absorbed a 503")
	}
	calls.Store(0)
	c := NewClient(srv.URL, srv.Client()).WithRetry(RetryPolicy{
		MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond,
	})
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("retrying client failed: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3 (two 503s + success)", calls.Load())
	}
}

// TestClientRetryHonorsRetryAfterOn429: the wait before retrying a 429 is
// the server's Retry-After estimate, observed on the injected clock.
func TestClientRetryHonorsRetryAfterOn429(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "2")
			httpError(w, http.StatusTooManyRequests, "busy")
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
	}))
	defer srv.Close()

	fake := clock.NewFake(time.Unix(0, 0))
	c := NewClient(srv.URL, srv.Client()).WithRetry(RetryPolicy{
		MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond, Clock: fake,
	})
	done := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := c.Health(context.Background())
		done <- err
	}()
	for fake.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	// One second in: still parked — the 2s server estimate governs, not the
	// millisecond backoff schedule.
	fake.Advance(time.Second)
	select {
	case err := <-done:
		t.Fatalf("retry fired before Retry-After elapsed: %v", err)
	case <-time.After(10 * time.Millisecond):
	}
	fake.Advance(time.Second + 2*time.Millisecond) // past 2s plus jitter margin
	if err := <-done; err != nil {
		t.Fatalf("retry after 429 failed: %v", err)
	}
	wg.Wait()
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2", calls.Load())
	}
}

// TestClientRetryExhaustsAttempts: a persistent failure surfaces after
// exactly MaxAttempts tries.
func TestClientRetryExhaustsAttempts(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		httpError(w, http.StatusServiceUnavailable, "down")
	}))
	defer srv.Close()

	c := NewClient(srv.URL, srv.Client()).WithRetry(RetryPolicy{
		MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond,
	})
	var apiErr *APIError
	if _, err := c.Health(context.Background()); !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("want APIError 503 after exhaustion, got %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want exactly MaxAttempts=2", calls.Load())
	}
}

// TestClientRetryTransportError: connection-level failures are retried too.
func TestClientRetryTransportError(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
	}))
	defer srv.Close()

	hc := &http.Client{Transport: &failFirstTransport{inner: http.DefaultTransport, failures: 2, calls: &calls}}
	c := NewClient(srv.URL, hc).WithRetry(RetryPolicy{
		MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond,
	})
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("retrying client failed: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("transport saw %d calls, want 3", calls.Load())
	}
}

// failFirstTransport fails the first N round trips at the connection level.
type failFirstTransport struct {
	inner    http.RoundTripper
	failures int64
	calls    *atomic.Int64
}

func (t *failFirstTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.calls.Add(1) <= t.failures {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, errors.New("synthetic connection reset")
	}
	return t.inner.RoundTrip(req)
}

// TestCacheEvictionRaceSingleflight is the satellite acceptance test: a
// concurrent miss storm against an at-capacity LRU must run exactly one
// compute per key, and an entry evicted while another key's flight is still
// in progress must not resurrect.
func TestCacheEvictionRaceSingleflight(t *testing.T) {
	cache := NewResultCache(1)
	var aComputes atomic.Int64

	// Phase 1: 8 concurrent misses on "a" against the cold cache. The
	// leader's compute spins until every storm goroutine has entered
	// GetOrCompute, so the storm genuinely overlaps the flight; coalescing
	// plus the cache must still bound the computes to exactly one.
	const stormers = 8
	var entered atomic.Int64
	var finished sync.WaitGroup
	finished.Add(stormers)
	for i := 0; i < stormers; i++ {
		go func() {
			defer finished.Done()
			entered.Add(1)
			val, _, err := cache.GetOrCompute("a", func() ([]byte, error) {
				for entered.Load() < stormers {
					time.Sleep(time.Microsecond)
				}
				aComputes.Add(1)
				return []byte("A1"), nil
			})
			if err != nil || string(val) != "A1" {
				t.Errorf("storm got %q, %v", val, err)
			}
		}()
	}
	finished.Wait()
	if got := aComputes.Load(); got != 1 {
		t.Fatalf("miss storm ran %d computes for one key, want 1", got)
	}

	// Phase 2: evict "a" by filling the capacity-1 cache with "b"; then,
	// while the recompute flight for "a" is in progress, "c" evicts "b".
	// The flight's late put must land its own fresh value and neither
	// generation of evicted entries may resurrect.
	st0 := cache.Stats()
	cache.put("b", []byte("B1"))
	if _, ok := cache.get("a"); ok {
		t.Fatal("evicted key still readable")
	}
	val, outcome, err := cache.GetOrCompute("a", func() ([]byte, error) {
		aComputes.Add(1)
		cache.put("c", []byte("C1")) // concurrent insert mid-flight: evicts "b"
		return []byte("A2"), nil
	})
	if err != nil || outcome != CacheMiss || string(val) != "A2" {
		t.Fatalf("recompute after eviction: %q %s %v", val, outcome, err)
	}
	if got := aComputes.Load(); got != 2 {
		t.Fatalf("evicted key recomputed %d times total, want 2", got)
	}
	if _, ok := cache.get("b"); ok {
		t.Fatal("entry evicted mid-flight resurrected")
	}
	if v, ok := cache.get("a"); !ok || string(v) != "A2" {
		t.Fatalf("cache serves %q for a, want the post-eviction generation A2", v)
	}
	if cache.Stats().Entries > 1 {
		t.Fatalf("capacity-1 cache holds %d entries", cache.Stats().Entries)
	}
	if cache.Stats().Evictions <= st0.Evictions {
		t.Fatal("no eviction recorded across the race")
	}
}

// TestCacheEvictionStormManyKeys drives an at-capacity cache with a
// concurrent storm across more keys than fit, repeatedly: every key
// computes at most once per miss generation (never twice concurrently) and
// the entry count never exceeds capacity.
func TestCacheEvictionStormManyKeys(t *testing.T) {
	const capEntries = 2
	cache := NewResultCache(capEntries)
	keys := []string{"k0", "k1", "k2", "k3", "k4"}
	inFlight := make([]atomic.Int64, len(keys))
	var wg sync.WaitGroup
	for round := 0; round < 20; round++ {
		for ki := range keys {
			for g := 0; g < 3; g++ {
				wg.Add(1)
				go func(ki int) {
					defer wg.Done()
					val, _, err := cache.GetOrCompute(keys[ki], func() ([]byte, error) {
						if n := inFlight[ki].Add(1); n != 1 {
							t.Errorf("key %s: %d concurrent computes", keys[ki], n)
						}
						defer inFlight[ki].Add(-1)
						return []byte(keys[ki]), nil
					})
					if err != nil || string(val) != keys[ki] {
						t.Errorf("key %s: got %q, %v", keys[ki], val, err)
					}
				}(ki)
			}
		}
	}
	wg.Wait()
	if got := cache.Stats().Entries; got > capEntries {
		t.Fatalf("cache holds %d entries, capacity %d", got, capEntries)
	}
}
