package serve

import (
	"container/list"
	"sync"
)

// CacheOutcome classifies how a request's result was obtained.
type CacheOutcome string

const (
	// CacheMiss: this request executed the detection run.
	CacheMiss CacheOutcome = "miss"
	// CacheHit: the result was already cached.
	CacheHit CacheOutcome = "hit"
	// CacheCoalesced: an identical request was already in flight; this one
	// waited for it and shared its result without running anything.
	CacheCoalesced CacheOutcome = "coalesced"
)

// CacheStats is a point-in-time snapshot of cache activity.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
	Evictions uint64 `json:"evictions"`
}

// ResultCache is a fixed-capacity LRU of serialized detection responses,
// keyed by (graph hash, options fingerprint, seed). Because a run is
// bit-deterministic given that key, the cache stores the exact response
// bytes and replays them verbatim — identical requests receive identical
// bytes whether computed or cached, which is the API's determinism
// guarantee. Lookups of a key currently being computed coalesce onto the
// in-flight computation instead of starting a second run.
type ResultCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	flight  flightGroup
	hits    uint64
	misses  uint64
	shared  uint64
	evicted uint64
}

type cacheItem struct {
	key string
	val []byte
}

// NewResultCache returns an LRU holding up to capacity entries (minimum 1).
func NewResultCache(capacity int) *ResultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &ResultCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// get returns the cached bytes for key and bumps its recency.
func (c *ResultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).val, true
}

// put inserts key -> val, evicting the least recently used entry if needed.
func (c *ResultCache) put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheItem).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&cacheItem{key: key, val: val})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheItem).key)
		c.evicted++
	}
}

// GetOrCompute returns the cached bytes for key, or runs compute exactly
// once across all concurrent callers of the same key and caches its result.
// Errors are never cached; every caller of a failed flight receives the
// error and a later request recomputes.
func (c *ResultCache) GetOrCompute(key string, compute func() ([]byte, error)) ([]byte, CacheOutcome, error) {
	if val, ok := c.get(key); ok {
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		return val, CacheHit, nil
	}
	val, coalesced, err := c.flight.Do(key, func() ([]byte, error) {
		// A racing flight may have filled the cache between the miss above
		// and this leader starting; serving it keeps the run count minimal.
		if val, ok := c.get(key); ok {
			return val, nil
		}
		val, err := compute()
		if err != nil {
			return nil, err
		}
		c.put(key, val)
		return val, nil
	})
	c.mu.Lock()
	if err == nil && coalesced {
		c.shared++
	} else {
		c.misses++
	}
	c.mu.Unlock()
	if err != nil {
		return nil, CacheMiss, err
	}
	if coalesced {
		return val, CacheCoalesced, nil
	}
	return val, CacheMiss, nil
}

// Stats snapshots the cache counters.
func (c *ResultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.ll.Len(),
		Capacity:  c.cap,
		Hits:      c.hits,
		Misses:    c.misses,
		Coalesced: c.shared,
		Evictions: c.evicted,
	}
}
