package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/asamap/asamap/internal/graph"
)

// GraphInfo describes a registered graph. Hash is the canonical content
// address (SHA-256 of the canonicalized edge form, see graph.CanonicalHash);
// Reused reports whether an upload matched an already-registered graph.
type GraphInfo struct {
	Hash     string `json:"hash"`
	Vertices int    `json:"vertices"`
	Arcs     int    `json:"arcs"`
	Edges    int    `json:"edges"`
	Directed bool   `json:"directed"`
	Reused   bool   `json:"reused,omitempty"`
}

// RegistryStats is a point-in-time snapshot of registry activity.
type RegistryStats struct {
	Graphs        int    `json:"graphs"`         // distinct canonical graphs held
	Versions      int    `json:"versions"`       // delta-derived graph versions held
	Parses        uint64 `json:"parses"`         // edge-list parses performed
	RawHits       uint64 `json:"raw_hits"`       // uploads skipped by raw-byte hash
	CanonicalHits uint64 `json:"canonical_hits"` // parses that deduplicated into an existing graph
	DeltaApplies  uint64 `json:"delta_applies"`  // delta batches materialized into versions
	VersionHits   uint64 `json:"version_hits"`   // delta uploads deduplicated by chained hash
}

// Registry is the content-addressed graph store. Graphs are immutable once
// registered, so every job that references a hash shares one *graph.Graph
// with no copying and no locking on the read path.
//
// Two layers of deduplication:
//
//  1. raw-byte: the SHA-256 of the uploaded bytes (plus the directed flag,
//     which changes parsing) maps to the canonical hash, so re-uploading the
//     identical file skips parse + CSR build entirely;
//  2. canonical: graphs whose uploads differ textually (reordered lines,
//     split weights, comments) but canonicalize to the same edge form
//     collapse into one stored graph.
//
// Concurrent identical uploads are single-flighted: exactly one parse runs,
// the rest wait and share its result.
type Registry struct {
	mu          sync.RWMutex
	byCanonical map[string]*regEntry
	byRaw       map[string]string        // raw-byte key -> canonical hash
	versions    map[string]*versionEntry // chained delta hash -> version

	flight flightGroup

	parses        atomic.Uint64
	rawHits       atomic.Uint64
	canonicalHits atomic.Uint64
	deltaApplies  atomic.Uint64
	versionHits   atomic.Uint64
}

type regEntry struct {
	g    *graph.Graph
	info GraphInfo
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byCanonical: make(map[string]*regEntry),
		byRaw:       make(map[string]string),
		versions:    make(map[string]*versionEntry),
	}
}

// rawKey addresses an upload by its exact bytes and parse mode.
func rawKey(data []byte, directed bool) string {
	sum := sha256.Sum256(data)
	mode := "u"
	if directed {
		mode = "d"
	}
	return hex.EncodeToString(sum[:]) + ":" + mode
}

// Add registers the edge list in data, parsing it only if neither the raw
// bytes nor the canonical form have been seen before. It returns the graph's
// content address and shape.
func (r *Registry) Add(data []byte, directed bool) (GraphInfo, error) {
	key := rawKey(data, directed)
	r.mu.RLock()
	canonical, ok := r.byRaw[key]
	if ok {
		entry := r.byCanonical[canonical]
		r.mu.RUnlock()
		r.rawHits.Add(1)
		info := entry.info
		info.Reused = true
		return info, nil
	}
	r.mu.RUnlock()

	// The flight value carries the canonical hash; losers of the race look
	// the entry up afterwards. dedup records whether this caller's own parse
	// (it is only written by the leader's closure) matched existing content.
	var dedup bool
	val, shared, err := r.flight.Do(key, func() ([]byte, error) {
		// Re-check under the write path: a previous flight for this key may
		// have finished between the RLock above and the flight start.
		r.mu.RLock()
		canonical, ok := r.byRaw[key]
		r.mu.RUnlock()
		if ok {
			r.rawHits.Add(1)
			dedup = true
			return []byte(canonical), nil
		}
		g, _, err := graph.ReadEdgeList(bytes.NewReader(data), directed)
		if err != nil {
			return nil, err
		}
		r.parses.Add(1)
		canonical = g.CanonicalHashString()
		r.mu.Lock()
		if _, exists := r.byCanonical[canonical]; exists {
			r.canonicalHits.Add(1)
			dedup = true
		} else {
			r.byCanonical[canonical] = &regEntry{
				g: g,
				info: GraphInfo{
					Hash:     canonical,
					Vertices: g.N(),
					Arcs:     g.M(),
					Edges:    g.NumEdges(),
					Directed: g.Directed(),
				},
			}
		}
		r.byRaw[key] = canonical
		r.mu.Unlock()
		return []byte(canonical), nil
	})
	if err != nil {
		return GraphInfo{}, err
	}
	r.mu.RLock()
	entry := r.byCanonical[string(val)]
	r.mu.RUnlock()
	if entry == nil {
		return GraphInfo{}, fmt.Errorf("serve: registry entry for %s vanished", val)
	}
	info := entry.info
	info.Reused = shared || dedup
	return info, nil
}

// Get returns the graph registered under the canonical hash.
func (r *Registry) Get(hash string) (*graph.Graph, GraphInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.byCanonical[hash]
	if !ok {
		return nil, GraphInfo{}, false
	}
	return e.g, e.info, true
}

// Stats snapshots the registry counters.
func (r *Registry) Stats() RegistryStats {
	r.mu.RLock()
	n := len(r.byCanonical)
	nv := len(r.versions)
	r.mu.RUnlock()
	return RegistryStats{
		Graphs:        n,
		Versions:      nv,
		Parses:        r.parses.Load(),
		RawHits:       r.rawHits.Load(),
		CanonicalHits: r.canonicalHits.Load(),
		DeltaApplies:  r.deltaApplies.Load(),
		VersionHits:   r.versionHits.Load(),
	}
}

// String renders the stats as JSON for logs.
func (s RegistryStats) String() string {
	b, _ := json.Marshal(s)
	return string(b)
}
