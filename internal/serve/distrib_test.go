package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/asamap/asamap/internal/obs/propagate"
	"github.com/asamap/asamap/internal/trace"
)

// TestMiddlewareTraceExtraction: a propagated X-Asamap-Trace header roots the
// request span under the remote parent, records the hop depth, echoes the
// trace ID on the response, and is consumed before the handler runs.
func TestMiddlewareTraceExtraction(t *testing.T) {
	s := New(DefaultConfig())
	defer s.Close()

	var sawHeader string
	var sawTrace uint64
	var sawHop int
	h := s.middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawHeader = r.Header.Get(propagate.Header)
		sawTrace, sawHop = RequestTrace(r.Context())
	}))

	pc := propagate.Context{TraceID: 0xfeedface, Parent: 0xbead, Hop: 2}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/healthz", nil)
	propagate.Inject(req.Header, pc)
	h.ServeHTTP(rec, req)

	if sawHeader != "" {
		t.Errorf("trace header leaked into the handler: %q", sawHeader)
	}
	if sawTrace != pc.TraceID || sawHop != pc.Hop {
		t.Errorf("RequestTrace = (%x, %d), want (%x, %d)", sawTrace, sawHop, pc.TraceID, pc.Hop)
	}
	if got := rec.Header().Get(propagate.ResponseHeader); got != propagate.FormatID(pc.TraceID) {
		t.Errorf("response trace id %q, want %q", got, propagate.FormatID(pc.TraceID))
	}

	spans := s.tracer.TraceSpans(pc.TraceID)
	if len(spans) != 1 {
		t.Fatalf("got %d spans under the propagated trace, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Name != "request" || !sp.Remote || sp.Parent != pc.Parent {
		t.Errorf("remote request root = %+v, want remote span parented at %x", sp, pc.Parent)
	}
	hopAttr := ""
	for _, a := range sp.Attrs {
		if a.Key == "hop" {
			hopAttr = a.Value
		}
	}
	if hopAttr != "2" {
		t.Errorf("hop attr = %q, want 2", hopAttr)
	}

	// An untraced request starts a fresh trace and still reports its ID.
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest("GET", "/healthz", nil))
	fresh := rec2.Header().Get(propagate.ResponseHeader)
	if fresh == "" || fresh == propagate.FormatID(pc.TraceID) {
		t.Errorf("untraced request should mint a fresh trace id, got %q", fresh)
	}
}

// TestTraceByIDEndpoint: /debug/trace/{id} returns exactly the spans recorded
// under one trace, 400s malformed IDs, and 404s unknown traces.
func TestTraceByIDEndpoint(t *testing.T) {
	_, hs, c := newTestServer(t, DefaultConfig())
	ctx := context.Background()
	info, err := c.UploadGraph(ctx, strings.NewReader(twoTriangles), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Detect(ctx, info.Hash, DetectOptions{Seed: 2}); err != nil {
		t.Fatal(err)
	}

	// The detect request reported its trace ID; collect that trace.
	req, _ := http.NewRequest("GET", hs.URL+"/healthz", nil)
	resp, err := hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	tid := resp.Header.Get(propagate.ResponseHeader)
	if tid == "" {
		t.Fatal("no X-Asamap-Trace-Id on the response")
	}

	resp, err = hs.Client().Get(hs.URL + "/debug/trace/" + tid)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/trace/%s: status %d", tid, resp.StatusCode)
	}
	var payload struct {
		Trace string        `json:"trace"`
		Spans []SpanPayload `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.Trace != tid || len(payload.Spans) == 0 {
		t.Fatalf("trace payload = %+v", payload)
	}
	for _, sp := range payload.Spans {
		if sp.Trace != tid {
			t.Errorf("span %s carries trace %q, want %q", sp.ID, sp.Trace, tid)
		}
	}

	for path, want := range map[string]int{
		"/debug/trace/nothex":           http.StatusBadRequest,
		"/debug/trace/ffffffffffffffff": http.StatusNotFound,
	} {
		resp, err := hs.Client().Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestMetricsSnapshotEndpoint: the federation wire carries the server's
// counters and full histogram state, and the histograms reconstruct exactly.
func TestMetricsSnapshotEndpoint(t *testing.T) {
	_, hs, c := newTestServer(t, DefaultConfig())
	ctx := context.Background()
	info, err := c.UploadGraph(ctx, strings.NewReader(twoTriangles), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Detect(ctx, info.Hash, DetectOptions{Seed: 7}); err != nil {
		t.Fatal(err)
	}

	resp, err := hs.Client().Get(hs.URL + "/metrics/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["jobs_completed_total"] < 1 || snap.Counters["runs_total"] < 1 {
		t.Errorf("counters missing work: %+v", snap.Counters)
	}
	if snap.Gauges["queue_capacity"] <= 0 || snap.Gauges["go_heap_alloc_bytes"] <= 0 {
		t.Errorf("gauges missing: %+v", snap.Gauges)
	}
	for _, name := range []string{"request_seconds", "queue_wait_seconds", "go_gc_pause_seconds"} {
		hw, ok := snap.Histograms[name]
		if !ok {
			t.Errorf("histogram %s missing from snapshot", name)
			continue
		}
		h, err := trace.NewHistogramFromSnapshot(hw.Snapshot())
		if err != nil {
			t.Errorf("histogram %s does not reconstruct: %v", name, err)
			continue
		}
		// Merging the wire state into itself must double every count exactly —
		// the property cluster federation relies on.
		h2, _ := trace.NewHistogramFromSnapshot(hw.Snapshot())
		if err := h.Merge(h2); err != nil {
			t.Errorf("histogram %s self-merge: %v", name, err)
			continue
		}
		if got := h.Snapshot().Count; got != 2*hw.Count {
			t.Errorf("histogram %s merge count %d, want %d", name, got, 2*hw.Count)
		}
	}
	if snap.Histograms["request_seconds"].Count < 1 {
		t.Error("request_seconds histogram saw no requests")
	}
}

// TestMetricsRuntimeExposition: /metrics includes the trace-drop counters and
// Go runtime gauges alongside the existing histograms.
func TestMetricsRuntimeExposition(t *testing.T) {
	_, hs, _ := newTestServer(t, DefaultConfig())
	resp, err := hs.Client().Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	body := string(data)
	for _, want := range []string{
		"asamap_trace_dropped_total 0",
		"asamap_trace_dropped_traces_total 0",
		"asamap_go_goroutines ",
		"asamap_go_heap_alloc_bytes ",
		"asamap_go_heap_objects ",
		"asamap_go_gc_runs_total ",
		"# TYPE asamap_go_gc_pause_seconds histogram",
		`asamap_go_gc_pause_seconds_bucket{le="+Inf"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestProfileEndpoint: one-shot pprof snapshots — heap immediately, cpu for a
// bounded window, and clean rejections for bad parameters.
func TestProfileEndpoint(t *testing.T) {
	_, hs, _ := newTestServer(t, DefaultConfig())

	resp, err := hs.Client().Get(hs.URL + "/debug/profile?kind=heap")
	if err != nil {
		t.Fatal(err)
	}
	heap, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(heap) == 0 {
		t.Errorf("heap profile: status %d, %d bytes", resp.StatusCode, len(heap))
	}

	resp, err = hs.Client().Get(hs.URL + "/debug/profile?kind=cpu&seconds=1")
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(cpu) == 0 {
		t.Errorf("cpu profile: status %d, %d bytes", resp.StatusCode, len(cpu))
	}

	for _, path := range []string{
		"/debug/profile?kind=goroutine",
		"/debug/profile?kind=cpu&seconds=zero",
		"/debug/profile?kind=cpu&seconds=0",
	} {
		resp, err := hs.Client().Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

// TestClientStripsStaleTraceHeader: a caller-supplied trace header never
// reaches the wire — outside a traced server request the client emits no
// trace context at all.
func TestClientStripsStaleTraceHeader(t *testing.T) {
	var got atomicHeader
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.set(r.Header.Get(propagate.Header))
		w.Write([]byte("{}"))
	}))
	defer backend.Close()

	c := NewClient(backend.URL, backend.Client())
	req, _ := http.NewRequest("GET", backend.URL+"/healthz", nil)
	propagate.Inject(req.Header, propagate.Context{TraceID: 0x57a1e, Parent: 2, Hop: 1})
	if _, _, err := c.send(req); err != nil {
		t.Fatal(err)
	}
	if v := got.get(); v != "" {
		t.Errorf("stale trace header reached the backend: %q", v)
	}
}

// TestClientInjectsInsideTracedRequest: when a client call runs inside a
// middleware-wrapped server request, every attempt carries a fresh trace
// context — same trace, the attempt span as parent, hop+1.
func TestClientInjectsInsideTracedRequest(t *testing.T) {
	var got atomicHeader
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.set(r.Header.Get(propagate.Header))
		w.Write([]byte("{}"))
	}))
	defer backend.Close()

	s := New(DefaultConfig())
	defer s.Close()
	var wantTrace uint64
	h := s.middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		wantTrace, _ = RequestTrace(r.Context())
		c := NewClient(backend.URL, backend.Client())
		req, _ := http.NewRequestWithContext(r.Context(), "GET", backend.URL+"/healthz", nil)
		if _, _, err := c.send(req); err != nil {
			t.Error(err)
		}
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))

	pc, ok := propagate.Extract(http.Header{propagate.Header: []string{got.get()}})
	if !ok {
		t.Fatalf("backend saw no valid trace context, header=%q", got.get())
	}
	if pc.TraceID != wantTrace {
		t.Errorf("propagated trace %x, want %x", pc.TraceID, wantTrace)
	}
	if pc.Hop != 1 {
		t.Errorf("propagated hop %d, want 1", pc.Hop)
	}
	if pc.Parent == 0 || pc.Parent == wantTrace {
		t.Errorf("parent %x should be the attempt span, not the request root", pc.Parent)
	}
}

// TestClientErrorsCarryRequestID: non-2xx responses surface the server's
// X-Request-Id in both typed errors for cross-node log correlation.
func TestClientErrorsCarryRequestID(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Request-Id", "corr-42")
		switch r.URL.Path {
		case "/busy":
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusTooManyRequests)
		default:
			w.WriteHeader(http.StatusConflict)
			w.Write([]byte(`{"error":"nope"}`))
		}
	}))
	defer backend.Close()

	c := NewClient(backend.URL, backend.Client())
	req, _ := http.NewRequest("GET", backend.URL+"/busy", nil)
	err := c.do(req, &struct{}{})
	var busy *ServerBusyError
	if !errors.As(err, &busy) || busy.RequestID != "corr-42" {
		t.Errorf("busy error = %v, want ServerBusyError with request id corr-42", err)
	}
	if !strings.Contains(busy.Error(), "corr-42") {
		t.Errorf("busy error text omits the request id: %q", busy.Error())
	}

	req, _ = http.NewRequest("GET", backend.URL+"/other", nil)
	err = c.do(req, &struct{}{})
	var api *APIError
	if !errors.As(err, &api) || api.RequestID != "corr-42" || api.Message != "nope" {
		t.Errorf("api error = %v, want APIError{409, nope, corr-42}", err)
	}
	if !strings.Contains(api.Error(), "corr-42") {
		t.Errorf("api error text omits the request id: %q", api.Error())
	}
}

// atomicHeader is a tiny mutex-guarded string for handler → test handoff.
type atomicHeader struct {
	mu sync.Mutex
	v  string
}

func (a *atomicHeader) set(v string) { a.mu.Lock(); a.v = v; a.mu.Unlock() }
func (a *atomicHeader) get() string  { a.mu.Lock(); defer a.mu.Unlock(); return a.v }
