package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/asamap/asamap/internal/clock"
	"github.com/asamap/asamap/internal/fault"
	"github.com/asamap/asamap/internal/obs"
	"github.com/asamap/asamap/internal/obs/propagate"
	"github.com/asamap/asamap/internal/rng"
	"github.com/asamap/asamap/internal/serve"
)

// ErrPeerDown reports a call rejected locally because the peer's circuit
// breaker refused it — no bytes were sent.
type ErrPeerDown struct {
	Peer  int
	State BreakerState
}

func (e *ErrPeerDown) Error() string {
	return fmt.Sprintf("cluster: peer %d rejected by %s circuit breaker", e.Peer, e.State)
}

// PeerResponse is a fully read HTTP exchange with a peer. Reading the body
// eagerly keeps retry logic and connection reuse simple: by the time a
// caller sees the response, the wire is already drained.
type PeerResponse struct {
	Status int
	Header http.Header
	Body   []byte
}

// PeerStats counts one peer client's activity.
type PeerStats struct {
	Requests       uint64 `json:"requests"`        // round trips attempted
	Failures       uint64 `json:"failures"`        // transport errors and 5xx/429 answers
	Retries        uint64 `json:"retries"`         // backoff waits taken between attempts
	Timeouts       uint64 `json:"timeouts"`        // attempts abandoned at the peer timeout
	BreakerTrips   uint64 `json:"breaker_trips"`   // times the breaker opened
	BreakerRejects uint64 `json:"breaker_rejects"` // calls refused while open/probing
}

// PeerClient issues idempotent HTTP calls to one replica. Every call runs
// the same gauntlet: circuit-breaker admission, a per-attempt timeout on the
// injectable clock, and capped-exponential-backoff retries on transient
// outcomes (transport errors, 5xx, 429). All asamapd endpoints are
// idempotent by construction — uploads are content-addressed, detects are
// bit-deterministic — so re-sending a request that may already have executed
// is always safe.
type PeerClient struct {
	peer    int
	base    string
	hc      *http.Client
	breaker *Breaker
	retries int // retries after the first attempt
	backoff Backoff
	timeout time.Duration
	clk     clock.Clock

	requests atomic.Uint64
	failures atomic.Uint64
	retried  atomic.Uint64
	timeouts atomic.Uint64
}

// NewPeerClient builds the client for replica `peer` at baseURL. transport
// is the injectable wire — the chaos tier passes a fault.Transport here —
// and nil means http.DefaultTransport.
func NewPeerClient(peer int, baseURL string, transport http.RoundTripper, cfg Config) *PeerClient {
	cfg = cfg.withDefaults()
	if transport == nil {
		transport = http.DefaultTransport
	}
	bo := cfg.PeerBackoff
	bo.Seed = cfg.Seed ^ rng.Hash64(uint64(peer)+1)
	return &PeerClient{
		peer:    peer,
		base:    baseURL,
		hc:      &http.Client{Transport: transport},
		breaker: NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Clock),
		retries: cfg.PeerRetries,
		backoff: bo,
		timeout: cfg.PeerTimeout,
		clk:     cfg.Clock,
	}
}

// Breaker exposes the peer's circuit breaker (metrics and tests).
func (p *PeerClient) Breaker() *Breaker { return p.breaker }

// Stats snapshots the client's counters.
func (p *PeerClient) Stats() PeerStats {
	bs := p.breaker.Stats()
	return PeerStats{
		Requests:       p.requests.Load(),
		Failures:       p.failures.Load(),
		Retries:        p.retried.Load(),
		Timeouts:       p.timeouts.Load(),
		BreakerTrips:   bs.Trips,
		BreakerRejects: bs.Rejects,
	}
}

// Do performs one idempotent exchange with the peer. It returns the final
// response — fully read — for any authoritative HTTP answer, 4xx included,
// and a non-nil error only when the breaker refused the call or every
// attempt died at the transport level. faultKey addresses the request in an
// injected fault schedule (set as X-Asamap-Fault-Key and stripped before
// the wire), so chaos outcomes are a function of the request's identity,
// not of the order concurrent requests happen to hit the transport.
func (p *PeerClient) Do(ctx context.Context, method, pathAndQuery string, hdr http.Header, body []byte, faultKey string) (*PeerResponse, error) {
	key := rng.HashString(method + " " + pathAndQuery + "|" + faultKey)
	// The peer gauntlet is traced per call and per attempt: the call span
	// carries the target, each attempt span carries breaker state and outcome
	// class (coarse, deterministic labels — raw error text embeds ephemeral
	// ports), and the remote node roots its own request span under the
	// attempt's ID via the propagated context, so each retry stitches to the
	// exact attempt that caused it.
	call := serve.RequestSpan(ctx).Child("peer.call")
	call.SetUint("peer", uint64(p.peer))
	call.SetAttr("target", method+" "+pathAndQuery)
	defer call.End()
	tid, hop := serve.RequestTrace(ctx)
	var lastResp *PeerResponse
	var lastErr error
	for attempt := 0; ; attempt++ {
		if !p.breaker.Allow() {
			call.SetAttr("outcome", "breaker-reject")
			if lastResp != nil || lastErr != nil {
				return lastResp, lastErr // breaker tripped mid-retry: surface the real outcome
			}
			return nil, &ErrPeerDown{Peer: p.peer, State: p.breaker.State()}
		}
		p.requests.Add(1)
		att := call.Child("peer.attempt")
		att.SetUint("attempt", uint64(attempt))
		att.SetAttr("breaker", p.breaker.State().String())
		ahdr := hdr
		if tid != 0 && hop < propagate.MaxHops {
			ahdr = cloneHeader(hdr)
			propagate.Inject(ahdr, propagate.Context{TraceID: tid, Parent: att.ID(), Hop: hop + 1})
		}
		resp, err, timedOut := p.once(ctx, method, pathAndQuery, ahdr, body, faultKey, attempt)
		ok := err == nil && resp.Status < 500 && resp.Status != http.StatusTooManyRequests
		p.breaker.Report(ok)
		setAttemptOutcome(att, resp, err, timedOut)
		if ok {
			att.End()
			return resp, nil
		}
		p.failures.Add(1)
		lastResp, lastErr = resp, err
		if ctx.Err() != nil {
			att.End()
			return nil, ctx.Err()
		}
		if attempt >= p.retries {
			att.End()
			return lastResp, lastErr
		}
		p.retried.Add(1)
		wait := p.backoff.Wait(key, attempt+1)
		att.SetUint("backoff_ns", uint64(wait))
		att.End()
		select {
		case <-p.clk.After(wait):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// setAttemptOutcome records the attempt's result on its span: a coarse
// deterministic outcome class plus volatile detail (timeout flag, error
// text) that stays out of the canonical tree.
func setAttemptOutcome(att *obs.Span, resp *PeerResponse, err error, timedOut bool) {
	switch {
	case err == nil && resp.Status < 500 && resp.Status != http.StatusTooManyRequests:
		att.SetAttr("outcome", fmt.Sprintf("ok-%d", resp.Status))
	case err == nil:
		att.SetAttr("outcome", fmt.Sprintf("http-%d", resp.Status))
	default:
		att.SetAttr("outcome", "transport")
		att.SetVolatileAttr("error", err.Error())
	}
	if timedOut {
		att.SetVolatileBool("timeout", true)
	}
}

// cloneHeader copies h so per-attempt injection never mutates the caller's
// header map.
func cloneHeader(h http.Header) http.Header {
	out := make(http.Header, len(h)+1)
	for k, vs := range h {
		out[k] = append([]string(nil), vs...)
	}
	return out
}

// once runs a single attempt under the per-attempt timeout. The timeout is
// observed on the injectable clock: the exchange runs in a goroutine whose
// request context is canceled when the clock fires, and the goroutine is
// always joined before returning — an abandoned attempt cannot outlive the
// call or leak.
func (p *PeerClient) once(ctx context.Context, method, pathAndQuery string, hdr http.Header, body []byte, faultKey string, attempt int) (_ *PeerResponse, _ error, timedOut bool) {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(cctx, method, p.base+pathAndQuery, rd)
	if err != nil {
		return nil, err, false
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	if faultKey != "" {
		req.Header.Set(fault.HeaderFaultKey, faultKey)
	}
	req.Header.Set(fault.HeaderFaultAttempt, strconv.Itoa(attempt))

	type result struct {
		resp *PeerResponse
		err  error
	}
	done := make(chan result, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := p.hc.Do(req)
		if err != nil {
			done <- result{nil, err}
			return
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			done <- result{nil, err} // a torn body is a transport failure
			return
		}
		done <- result{&PeerResponse{Status: resp.StatusCode, Header: resp.Header, Body: raw}, nil}
	}()

	var timeoutCh <-chan time.Time
	if p.timeout > 0 {
		timeoutCh = p.clk.After(p.timeout)
	}
	select {
	case r := <-done:
		wg.Wait()
		return r.resp, r.err, false
	case <-timeoutCh:
		cancel() // aborts the in-flight exchange through the request context
		r := <-done
		wg.Wait()
		if r.err != nil {
			p.timeouts.Add(1)
			return nil, fmt.Errorf("cluster: peer %d timed out after %s: %w", p.peer, p.timeout, r.err), true
		}
		return r.resp, nil, false // the exchange won the race after all — keep it
	}
}
