package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"slices"
	"time"

	"github.com/asamap/asamap/internal/obs"
	"github.com/asamap/asamap/internal/obs/propagate"
	"github.com/asamap/asamap/internal/serve"
	"github.com/asamap/asamap/internal/trace"
)

// nodeLabel names a replica index for trace tracks and federation maps.
// Index -1 is the shard-less router.
func nodeLabel(i int) string {
	if i < 0 {
		return "router"
	}
	return fmt.Sprintf("replica %d", i)
}

// ClusterMetrics is the ?format=json shape of /cluster/metrics: every
// reachable node's snapshot, the exact merge, and per-peer scrape failures.
type ClusterMetrics struct {
	Self int `json:"self"`
	// Nodes maps replica index (stringified, -1 = router) to that node's
	// snapshot. Only nodes that answered this scrape appear.
	Nodes map[string]serve.MetricsSnapshot `json:"nodes"`
	// Merged is the order-independent aggregate: counters and gauges summed,
	// histograms merged bucket-by-bucket over identical bounds.
	Merged serve.MetricsSnapshot `json:"merged"`
	// ScrapeErrors maps replica index to the failure that kept it out of this
	// scrape; ScrapeFailures is the cumulative per-peer count.
	ScrapeErrors   map[string]string `json:"scrape_errors,omitempty"`
	ScrapeFailures map[string]uint64 `json:"scrape_failures,omitempty"`
}

// gatherClusterMetrics scrapes the local snapshot plus every peer's
// /metrics/snapshot and merges them.
func (n *Node) gatherClusterMetrics(r *http.Request) ClusterMetrics {
	out := ClusterMetrics{
		Self:         n.cfg.Self,
		Nodes:        map[string]serve.MetricsSnapshot{fmt.Sprint(n.cfg.Self): n.local.MetricsSnapshot()},
		ScrapeErrors: map[string]string{},
	}
	hdr := http.Header{}
	hdr.Set(HeaderForwarded, "1")
	for i, pc := range n.peers {
		if pc == nil {
			continue
		}
		resp, err := pc.Do(r.Context(), http.MethodGet, "/metrics/snapshot", hdr, nil, fmt.Sprintf("metrics|%d", i))
		if err != nil || resp.Status != http.StatusOK {
			n.scrapeFails[i].Add(1)
			out.ScrapeErrors[fmt.Sprint(i)] = errString(err, resp)
			continue
		}
		var snap serve.MetricsSnapshot
		if err := json.Unmarshal(resp.Body, &snap); err != nil {
			n.scrapeFails[i].Add(1)
			out.ScrapeErrors[fmt.Sprint(i)] = "bad snapshot: " + err.Error()
			continue
		}
		out.Nodes[fmt.Sprint(i)] = snap
	}
	if len(n.peers) > 0 {
		out.ScrapeFailures = map[string]uint64{}
		for i := range n.peers {
			if n.peers[i] != nil {
				out.ScrapeFailures[fmt.Sprint(i)] = n.scrapeFails[i].Load()
			}
		}
	}
	// Merge in sorted node order for a stable walk; the result is
	// order-independent anyway (integer sums and exact histogram merges).
	keys := sortedKeys(out.Nodes)
	merged := serve.MetricsSnapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]serve.HistWire{},
	}
	hists := map[string]*trace.Histogram{}
	for _, k := range keys {
		snap := out.Nodes[k]
		for name, v := range snap.Counters {
			merged.Counters[name] += v
		}
		for name, v := range snap.Gauges {
			merged.Gauges[name] += v
		}
		for _, name := range sortedKeys(snap.Histograms) {
			h, err := trace.NewHistogramFromSnapshot(snap.Histograms[name].Snapshot())
			if err != nil {
				out.ScrapeErrors[k] = fmt.Sprintf("histogram %s: %s", name, err)
				continue
			}
			if prev, ok := hists[name]; ok {
				if err := prev.Merge(h); err != nil {
					out.ScrapeErrors[k] = fmt.Sprintf("histogram %s: %s", name, err)
				}
			} else {
				hists[name] = h
			}
		}
	}
	for name, h := range hists {
		merged.Histograms[name] = serve.NewHistWire(h.Snapshot())
	}
	out.Merged = merged
	return out
}

// handleClusterMetrics serves the cluster-wide aggregate: Prometheus text by
// default, the full per-node JSON under ?format=json. Aggregation uses the
// exact bucket-wise histogram merge, so a quantile read here equals the
// quantile of the union of every node's samples — not an average of
// quantiles.
func (n *Node) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	cm := n.gatherClusterMetrics(r)
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, cm)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# Cluster-wide aggregate over %d of %d nodes.\n", len(cm.Nodes), n.nodeCount())
	for _, name := range sortedKeys(cm.Merged.Counters) {
		fmt.Fprintf(w, "# TYPE asamap_%s counter\nasamap_%s %d\n", name, name, cm.Merged.Counters[name])
	}
	for _, name := range sortedKeys(cm.Merged.Gauges) {
		fmt.Fprintf(w, "# TYPE asamap_%s gauge\nasamap_%s %g\n", name, name, cm.Merged.Gauges[name])
	}
	for _, name := range sortedKeys(cm.Merged.Histograms) {
		cm.Merged.Histograms[name].Snapshot().WritePrometheus(w, "asamap_"+name, "")
	}
	for _, k := range sortedKeys(cm.ScrapeFailures) {
		fmt.Fprintf(w, "asamap_cluster_scrape_failures_total{peer=%q} %d\n", k, cm.ScrapeFailures[k])
	}
}

// nodeCount is the cluster size including a shard-less router.
func (n *Node) nodeCount() int {
	if len(n.cfg.Peers) == 0 {
		return 1
	}
	c := len(n.cfg.Peers)
	if n.cfg.Self < 0 {
		c++ // the router itself holds no shard but still reports metrics
	}
	return c
}

// traceNodePayload is one node's segment of a merged trace.
type traceNodePayload struct {
	Node  int                 `json:"node"`
	Label string              `json:"label"`
	Spans []serve.SpanPayload `json:"spans"`
}

// handleTraceByID assembles the cluster-wide view of one distributed trace.
// A trace is not ring-addressable — any node may hold a segment (the route a
// request took depends on the fault schedule, not the key) — so the node
// fans out to every peer, stitches the answers, and emits either the merged
// JSON (node segments + the canonical deterministic tree) or, under
// ?format=chrome, a Perfetto export with one process track per node.
// Forwarded collection requests serve only the local segment: one hop of
// fan-out, never a storm.
func (n *Node) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	if len(n.peers) == 0 || r.Header.Get(HeaderForwarded) != "" {
		n.serveLocal(w, r, nil)
		return
	}
	id, err := propagate.ParseID(r.PathValue("id"))
	if err != nil {
		jsonError(w, http.StatusBadRequest, "bad trace id: "+err.Error())
		return
	}
	hex := propagate.FormatID(id)

	type segment struct {
		node  int
		label string
		epoch time.Time
		spans []obs.SpanData
	}
	var segments []segment
	if local := n.local.TraceSpans(id); len(local) > 0 {
		segments = append(segments, segment{
			node: n.cfg.Self, label: nodeLabel(n.cfg.Self),
			epoch: n.local.Tracer().Epoch(), spans: local,
		})
	}
	scrapeErrors := map[string]string{}
	hdr := http.Header{}
	hdr.Set(HeaderForwarded, "1")
	for i, pc := range n.peers {
		if pc == nil {
			continue
		}
		resp, perr := pc.Do(r.Context(), http.MethodGet, "/debug/trace/"+hex, hdr, nil, "trace|"+hex)
		if perr != nil || (resp.Status != http.StatusOK && resp.Status != http.StatusNotFound) {
			scrapeErrors[fmt.Sprint(i)] = errString(perr, resp)
			continue
		}
		if resp.Status == http.StatusNotFound {
			continue // the trace never touched this node
		}
		var payload struct {
			Spans []serve.SpanPayload `json:"spans"`
		}
		if err := json.Unmarshal(resp.Body, &payload); err != nil {
			scrapeErrors[fmt.Sprint(i)] = "bad payload: " + err.Error()
			continue
		}
		// Rebuild against the zero epoch: peer clocks are not aligned with
		// ours, so the shipped epoch-relative offsets are the truth we keep.
		seg := segment{node: i, label: nodeLabel(i)}
		for _, sp := range payload.Spans {
			sd, err := sp.SpanData(time.Time{})
			if err != nil {
				scrapeErrors[fmt.Sprint(i)] = "bad span: " + err.Error()
				continue
			}
			seg.spans = append(seg.spans, sd)
		}
		if len(seg.spans) > 0 {
			segments = append(segments, seg)
		}
	}
	if len(segments) == 0 {
		jsonError(w, http.StatusNotFound, "trace not found on any node")
		return
	}

	if r.URL.Query().Get("format") == "chrome" {
		tracks := make([]obs.NodeTrack, len(segments))
		for i, seg := range segments {
			tracks[i] = obs.NodeTrack{
				// PID 0 is reserved by some viewers; shift indices up (router
				// Self=-1 lands on 1, replicas on i+2).
				PID:   seg.node + 2,
				Label: seg.label,
				Epoch: seg.epoch,
				Spans: seg.spans,
			}
		}
		w.Header().Set("Content-Type", "application/json")
		obs.WriteMergedChromeTrace(w, tracks)
		return
	}

	var all []obs.SpanData
	nodes := make([]traceNodePayload, len(segments))
	for i, seg := range segments {
		p := traceNodePayload{Node: seg.node, Label: seg.label, Spans: make([]serve.SpanPayload, len(seg.spans))}
		for j, sp := range seg.spans {
			p.Spans[j] = serve.NewSpanPayload(sp, seg.epoch)
		}
		nodes[i] = p
		all = append(all, seg.spans...)
	}
	out := map[string]any{
		"trace":     hex,
		"nodes":     nodes,
		"canonical": obs.BuildCanonicalTree(all),
	}
	if len(scrapeErrors) > 0 {
		out["errors"] = scrapeErrors
	}
	writeJSON(w, http.StatusOK, out)
}

// sortedKeys returns m's keys in sorted order, for deterministic rendering.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}
