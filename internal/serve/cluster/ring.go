// Package cluster replicates the asamapd detection service across N
// replicas behind a consistent-hash router. The unit of placement is the
// canonical graph hash: every detect request for a graph lands on the same
// small owner set, so their result caches concentrate instead of smearing
// across the fleet, and a replica that already computed a (graph, options,
// seed) coordinate can hand the byte-exact response to any sibling.
//
// The layer leans on the same property the single-node server does:
// detection is bit-deterministic in (graph canonical hash, options
// fingerprint, seed). A response computed by any replica is byte-identical
// to one computed locally, which makes forwarding, peer cache adoption, and
// local degradation all indistinguishable to the client — the chaos test
// tier asserts exactly that under seeded fault schedules.
//
// Failure handling is layered: every inter-replica call goes through a
// fault-injectable transport, a per-peer capped-exponential-backoff retry
// loop, and a per-peer circuit breaker; when a graph's whole owner set is
// unreachable the node degrades to computing locally (fetching the graph
// from any live peer on demand) instead of surfacing a 503. Degradations
// are visible in /metrics and as span attributes on the request.
package cluster

import (
	"sort"

	"github.com/asamap/asamap/internal/rng"
)

// Ring is a consistent-hash ring over replica indices. Each replica owns
// Vnodes points placed by seeded hashing, so key ownership is a pure
// function of (seed, replica count, vnodes) — every node in the cluster
// derives the identical ring without coordination, and a router restart
// cannot silently re-shard the key space.
type Ring struct {
	replicas int
	points   []ringPoint
}

type ringPoint struct {
	hash uint64
	peer int
}

// NewRing builds the ring for `replicas` replicas with `vnodes` points each
// (minimum 1 replica; vnodes < 1 takes 64). seed decorrelates independent
// clusters without changing any single cluster's determinism.
func NewRing(replicas, vnodes int, seed uint64) *Ring {
	if replicas < 1 {
		replicas = 1
	}
	if vnodes < 1 {
		vnodes = 64
	}
	r := &Ring{replicas: replicas, points: make([]ringPoint, 0, replicas*vnodes)}
	for p := 0; p < replicas; p++ {
		// Chain the finalizer per replica, then per vnode: a high-quality
		// order-independent point stream with no shared RNG state.
		base := rng.Hash64(seed ^ rng.Hash64(uint64(p)+0x9e3779b97f4a7c15))
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: rng.Hash64(base + uint64(v)), peer: p})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].peer < r.points[j].peer // total order even on hash ties
	})
	return r
}

// Replicas returns the replica count the ring was built for.
func (r *Ring) Replicas() int { return r.replicas }

// Owner returns the primary owner of key.
func (r *Ring) Owner(key string) int { return r.Owners(key, 1)[0] }

// Owners returns the first n distinct replicas encountered walking clockwise
// from key's ring position — key's owner preference order. The first entry
// is the primary; the rest are the failover sequence. n is clamped to
// [1, replicas].
func (r *Ring) Owners(key string, n int) []int {
	if n < 1 {
		n = 1
	}
	if n > r.replicas {
		n = r.replicas
	}
	h := rng.HashString(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make([]bool, r.replicas)
	out := make([]int, 0, n)
	for k := 0; k < len(r.points) && len(out) < n; k++ {
		p := r.points[(start+k)%len(r.points)].peer
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}
