package cluster

import (
	"fmt"
	"sync"
	"time"

	"github.com/asamap/asamap/internal/clock"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: requests flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the peer failed `threshold` consecutive times; requests
	// are rejected locally until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; exactly one probe request is in
	// flight, and its outcome decides between Closed and Open.
	BreakerHalfOpen
)

// String names the state for logs, metrics, and /cluster/status.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int(s))
}

// BreakerStats is a point-in-time snapshot of one breaker.
type BreakerStats struct {
	State     BreakerState `json:"-"`
	StateName string       `json:"state"`
	Trips     uint64       `json:"trips"`   // transitions into Open
	Rejects   uint64       `json:"rejects"` // requests refused while Open/probing
}

// Breaker is a consecutive-failure circuit breaker guarding one peer. It
// trips open after `threshold` consecutive failures, stays open for
// `cooldown` on the injected clock, then admits a single half-open probe
// whose outcome either closes the breaker or re-opens it for another
// cooldown. A cooldown of zero means every post-trip request is a probe —
// the deterministic shape the chaos tier uses so breaker behaviour is a
// function of the fault schedule, not of wall-clock timing.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	clk       clock.Clock

	mu       sync.Mutex
	state    BreakerState
	fails    int // consecutive failures while closed
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	trips    uint64
	rejects  uint64
}

// NewBreaker builds a breaker tripping after threshold consecutive failures
// (minimum 1) and cooling down for cooldown before each half-open probe.
// clk is injectable for deterministic tests; nil means the real clock.
func NewBreaker(threshold int, cooldown time.Duration, clk clock.Clock) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if clk == nil {
		clk = clock.Real{}
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, clk: clk}
}

// Allow reports whether a request may be sent to the peer right now. Every
// Allow() == true MUST be balanced by exactly one Report call; the half-open
// probe slot is otherwise never released.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.clk.Since(b.openedAt) < b.cooldown {
			b.rejects++
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // BreakerHalfOpen
		if b.probing {
			b.rejects++
			return false
		}
		b.probing = true
		return true
	}
}

// Report feeds back the outcome of an allowed request. Success closes the
// breaker and clears the failure streak; failure extends the streak and —
// at threshold, or on any half-open probe — (re-)opens the breaker.
func (b *Breaker) Report(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if ok {
		b.state = BreakerClosed
		b.fails = 0
		return
	}
	b.fails++
	if b.state == BreakerHalfOpen || b.fails >= b.threshold {
		b.state = BreakerOpen
		b.openedAt = b.clk.Now()
		b.fails = 0
		b.trips++
	}
}

// State returns the breaker's current position (Open breakers whose cooldown
// has elapsed still report Open until the next Allow transitions them).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats snapshots the breaker.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{State: b.state, StateName: b.state.String(), Trips: b.trips, Rejects: b.rejects}
}
