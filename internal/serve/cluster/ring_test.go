package cluster

import (
	"fmt"
	"testing"
)

// TestRingDeterministic: the ring is a pure function of (seed, replicas,
// vnodes), so every node derives identical ownership without coordination.
func TestRingDeterministic(t *testing.T) {
	a := NewRing(5, 64, 42)
	b := NewRing(5, 64, 42)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("graph-%d", i)
		ao, bo := a.Owners(key, 3), b.Owners(key, 3)
		if len(ao) != 3 || len(bo) != 3 {
			t.Fatalf("key %s: owner counts %d/%d, want 3", key, len(ao), len(bo))
		}
		for j := range ao {
			if ao[j] != bo[j] {
				t.Fatalf("key %s: rings disagree: %v vs %v", key, ao, bo)
			}
		}
	}
}

// TestRingOwnersDistinct: the preference order never repeats a replica and
// clamps to the replica count.
func TestRingOwnersDistinct(t *testing.T) {
	r := NewRing(3, 16, 7)
	for i := 0; i < 100; i++ {
		owners := r.Owners(fmt.Sprintf("k%d", i), 10) // over-ask: clamp to 3
		if len(owners) != 3 {
			t.Fatalf("key k%d: %d owners, want 3", i, len(owners))
		}
		seen := map[int]bool{}
		for _, p := range owners {
			if p < 0 || p >= 3 {
				t.Fatalf("owner %d out of range", p)
			}
			if seen[p] {
				t.Fatalf("key k%d: duplicate owner %d in %v", i, p, owners)
			}
			seen[p] = true
		}
		if r.Owner(fmt.Sprintf("k%d", i)) != owners[0] {
			t.Fatalf("Owner disagrees with Owners[0]")
		}
	}
}

// TestRingBalance: with enough vnodes, no replica owns a wildly
// disproportionate share of keys. The bound is loose — this guards against
// a broken hash (all keys on one replica), not against mild skew.
func TestRingBalance(t *testing.T) {
	const replicas, keys = 4, 4000
	r := NewRing(replicas, 64, 99)
	counts := make([]int, replicas)
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("graph-%x", i*2654435761))]++
	}
	for p, c := range counts {
		if c < keys/replicas/4 || c > keys*3/replicas {
			t.Fatalf("replica %d owns %d of %d keys — degenerate ring: %v", p, c, keys, counts)
		}
	}
}

// TestRingSeedVariesPlacement: different seeds shuffle ownership (different
// clusters decorrelate), while each seed remains self-consistent.
func TestRingSeedVariesPlacement(t *testing.T) {
	a, b := NewRing(4, 64, 1), NewRing(4, 64, 2)
	moved := 0
	for i := 0; i < 256; i++ {
		key := fmt.Sprintf("k%d", i)
		if a.Owner(key) != b.Owner(key) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("seed change moved no keys — the seed is not reaching placement")
	}
}
