package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"github.com/asamap/asamap/internal/fault"
	"github.com/asamap/asamap/internal/trace"
)

// fetchClusterMetrics scrapes base's /cluster/metrics?format=json.
func fetchClusterMetrics(t *testing.T, base string) ClusterMetrics {
	t.Helper()
	resp, err := http.Get(base + "/cluster/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/cluster/metrics status %d", resp.StatusCode)
	}
	var cm ClusterMetrics
	if err := json.NewDecoder(resp.Body).Decode(&cm); err != nil {
		t.Fatal(err)
	}
	return cm
}

// TestClusterMetricsFederation: /cluster/metrics on the router aggregates
// every node's snapshot exactly — counters and gauges sum, and every merged
// histogram equals the bucket-wise merge of the per-node histograms, so its
// quantiles are the quantiles of the union of all samples.
func TestClusterMetricsFederation(t *testing.T) {
	tc := newTestCluster(t, 2, fault.Disabled())
	hash := upload(t, tc.baseURL, graphA)
	for _, seed := range []uint64{1, 2, 3} {
		status, _, _ := detect(t, tc.baseURL, hash, seed)
		if status != http.StatusOK {
			t.Fatalf("seed %d: status %d", seed, status)
		}
	}

	cm := fetchClusterMetrics(t, tc.baseURL)
	if cm.Self != -1 {
		t.Errorf("self = %d, want the router's -1", cm.Self)
	}
	for _, node := range []string{"-1", "0", "1"} {
		if _, ok := cm.Nodes[node]; !ok {
			t.Errorf("node %s missing from the scrape (have %v)", node, sortedKeys(cm.Nodes))
		}
	}
	if len(cm.ScrapeErrors) != 0 {
		t.Errorf("scrape errors with no faults: %v", cm.ScrapeErrors)
	}

	// Counters: the merged value must be the exact integer sum.
	for _, name := range []string{"jobs_completed_total", "runs_total", "cache_misses_total"} {
		var sum uint64
		for _, snap := range cm.Nodes {
			sum += snap.Counters[name]
		}
		if cm.Merged.Counters[name] != sum {
			t.Errorf("merged counter %s = %d, want the per-node sum %d", name, cm.Merged.Counters[name], sum)
		}
	}
	if cm.Merged.Counters["jobs_completed_total"] < 3 {
		t.Errorf("cluster completed %d jobs, want >= 3", cm.Merged.Counters["jobs_completed_total"])
	}

	// Histograms: recompute the merge independently and require exact
	// equality — counts, sum, and therefore every quantile.
	for _, name := range []string{"request_seconds", "queue_wait_seconds", "go_gc_pause_seconds"} {
		var manual *trace.Histogram
		for _, node := range sortedKeys(cm.Nodes) {
			hw, ok := cm.Nodes[node].Histograms[name]
			if !ok {
				t.Fatalf("node %s snapshot lacks histogram %s", node, name)
			}
			h, err := trace.NewHistogramFromSnapshot(hw.Snapshot())
			if err != nil {
				t.Fatalf("node %s histogram %s: %v", node, name, err)
			}
			if manual == nil {
				manual = h
			} else if err := manual.Merge(h); err != nil {
				t.Fatalf("merging %s: %v", name, err)
			}
		}
		want := manual.Snapshot()
		got := cm.Merged.Histograms[name].Snapshot()
		if got.Count != want.Count || got.Sum != want.Sum {
			t.Errorf("merged %s: count/sum (%d, %v), want (%d, %v)", name, got.Count, got.Sum, want.Count, want.Sum)
		}
		for i := range want.Counts {
			if got.Counts[i] != want.Counts[i] {
				t.Errorf("merged %s bucket %d = %d, want %d", name, i, got.Counts[i], want.Counts[i])
			}
		}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			if got.Quantile(q) != want.Quantile(q) {
				t.Errorf("merged %s q%g = %v, want the exact-merge quantile %v", name, q, got.Quantile(q), want.Quantile(q))
			}
		}
	}
	if cm.Merged.Histograms["request_seconds"].Count == 0 {
		t.Error("merged request_seconds histogram saw no samples")
	}

	// The Prometheus rendering carries the merged families and the per-peer
	// scrape-failure counters.
	m := metricsTextAt(t, tc.baseURL, "/cluster/metrics")
	for _, want := range []string{
		"asamap_jobs_completed_total",
		"asamap_go_goroutines",
		"# TYPE asamap_request_seconds histogram",
		`asamap_cluster_scrape_failures_total{peer="0"} 0`,
		`asamap_cluster_scrape_failures_total{peer="1"} 0`,
	} {
		if !strings.Contains(m, want) {
			t.Errorf("/cluster/metrics missing %q", want)
		}
	}
}

// TestClusterMetricsScrapeFailureAccounting: a downed peer drops out of the
// scrape with its failure recorded and counted, while the rest of the
// cluster still aggregates.
func TestClusterMetricsScrapeFailureAccounting(t *testing.T) {
	tc := newTestCluster(t, 2, fault.Disabled())
	hash := upload(t, tc.baseURL, graphA)
	if status, _, _ := detect(t, tc.baseURL, hash, 9); status != http.StatusOK {
		t.Fatalf("detect status %d", status)
	}

	tc.down[1].Store(true)
	cm := fetchClusterMetrics(t, tc.baseURL)
	if _, ok := cm.Nodes["1"]; ok {
		t.Error("downed peer 1 still appears in the scrape")
	}
	if _, ok := cm.Nodes["0"]; !ok {
		t.Error("healthy peer 0 missing from the scrape")
	}
	if cm.ScrapeErrors["1"] == "" {
		t.Errorf("no scrape error recorded for the downed peer: %v", cm.ScrapeErrors)
	}
	if cm.ScrapeFailures["1"] == 0 {
		t.Errorf("scrape failure not counted: %v", cm.ScrapeFailures)
	}

	// The merged view now covers only the reachable nodes.
	var sum uint64
	for _, snap := range cm.Nodes {
		sum += snap.Counters["jobs_completed_total"]
	}
	if cm.Merged.Counters["jobs_completed_total"] != sum {
		t.Errorf("merged counter %d != reachable sum %d", cm.Merged.Counters["jobs_completed_total"], sum)
	}

	m := metricsTextAt(t, tc.baseURL, "/cluster/metrics")
	if !strings.Contains(m, `asamap_cluster_scrape_failures_total{peer="1"}`) {
		t.Errorf("/cluster/metrics missing the peer-1 failure counter:\n%s", m)
	}

	// Revived, the peer rejoins the scrape; the cumulative failure count
	// stays.
	tc.down[1].Store(false)
	cm = fetchClusterMetrics(t, tc.baseURL)
	if _, ok := cm.Nodes["1"]; !ok {
		t.Error("revived peer 1 missing from the scrape")
	}
	if cm.ScrapeFailures["1"] == 0 {
		t.Error("cumulative scrape-failure count reset on revival")
	}
}

// metricsTextAt scrapes an arbitrary text-metrics path on base.
func metricsTextAt(t *testing.T, base, path string) string {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return string(raw)
}
