package cluster

import (
	"testing"
	"time"

	"github.com/asamap/asamap/internal/clock"
)

// TestBreakerTripAndRecover drives the full state machine on a fake clock:
// closed → (threshold failures) → open → (cooldown) → half-open probe →
// closed on success.
func TestBreakerTripAndRecover(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	b := NewBreaker(3, 10*time.Second, fake)

	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Report(false)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state %s after 2/3 failures, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused the tripping request")
	}
	b.Report(false) // third consecutive failure: trip
	if b.State() != BreakerOpen {
		t.Fatalf("state %s after threshold failures, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
	fake.Advance(9 * time.Second)
	if b.Allow() {
		t.Fatal("open breaker admitted a request 1s before cooldown elapsed")
	}
	fake.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %s during probe, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Report(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state %s after successful probe, want closed", b.State())
	}
	if st := b.Stats(); st.Trips != 1 || st.Rejects != 3 {
		t.Fatalf("stats %+v, want 1 trip / 3 rejects", st)
	}
}

// TestBreakerProbeFailureReopens: a failed half-open probe re-opens the
// breaker for another full cooldown.
func TestBreakerProbeFailureReopens(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	b := NewBreaker(1, 5*time.Second, fake)
	if !b.Allow() {
		t.Fatal("closed breaker refused")
	}
	b.Report(false) // threshold 1: immediate trip
	fake.Advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("probe refused after cooldown")
	}
	b.Report(false) // probe failed
	if b.State() != BreakerOpen {
		t.Fatalf("state %s after failed probe, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("breaker admitted a request right after a failed probe")
	}
	fake.Advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("second probe refused after second cooldown")
	}
	b.Report(true)
	if st := b.Stats(); st.Trips != 2 {
		t.Fatalf("%d trips, want 2", st.Trips)
	}
}

// TestBreakerZeroCooldownAlwaysProbes: cooldown zero is the chaos-tier
// shape — the breaker still counts trips but every post-trip call is a
// probe, so behaviour is a function of the fault schedule alone.
func TestBreakerZeroCooldownAlwaysProbes(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	b := NewBreaker(1, 0, fake)
	for i := 0; i < 5; i++ {
		if !b.Allow() {
			t.Fatalf("zero-cooldown breaker refused request %d", i)
		}
		b.Report(false)
	}
	if st := b.Stats(); st.Trips != 5 || st.Rejects != 0 {
		t.Fatalf("stats %+v, want 5 trips / 0 rejects", st)
	}
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.Report(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state %s after success, want closed", b.State())
	}
}

// TestBreakerSuccessResetsStreak: interleaved successes keep a flaky peer's
// breaker closed — only *consecutive* failures trip it.
func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := NewBreaker(3, time.Second, clock.NewFake(time.Unix(0, 0)))
	for i := 0; i < 10; i++ {
		if !b.Allow() {
			t.Fatalf("breaker refused request %d", i)
		}
		b.Report(i%2 == 0) // alternate success/failure: streak never reaches 3
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state %s under alternating outcomes, want closed", b.State())
	}
}
