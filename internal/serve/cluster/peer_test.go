package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/asamap/asamap/internal/clock"
	"github.com/asamap/asamap/internal/fault"
)

// fastCfg is a Config with sub-millisecond backoff so retry tests run at
// test speed on the real clock.
func fastCfg() Config {
	return Config{
		PeerRetries:      2,
		PeerBackoff:      Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
		BreakerThreshold: 100, // out of the way unless a test lowers it
		PeerTimeout:      10 * time.Second,
	}
}

// TestBackoffCappedExponentialDeterministic pins the schedule: doubling from
// Base, capped at Max, total wait (with jitter) within [wait, 1.5*wait), and
// identical across calls with the same coordinates.
func TestBackoffCappedExponentialDeterministic(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 500 * time.Millisecond, Seed: 9}
	base := []time.Duration{100, 200, 400, 500, 500} // ms, pre-jitter
	for i, want := range base {
		wantD := want * time.Millisecond
		got := b.Wait(123, i+1)
		if got < wantD || got >= wantD+wantD/2 {
			t.Fatalf("attempt %d: wait %v outside [%v, %v)", i+1, got, wantD, wantD+wantD/2)
		}
		if again := b.Wait(123, i+1); again != got {
			t.Fatalf("attempt %d: jitter not deterministic: %v vs %v", i+1, got, again)
		}
	}
	if b.Wait(123, 1) == b.Wait(124, 1) {
		t.Fatal("different keys drew identical jitter — key not reaching the stream")
	}
}

// TestPeerClientRetriesTransient5xx: transient 503s are absorbed by the
// retry loop; the peer sees attempt numbers climb via the fault header...
// none here — plain HTTP: two 503s then success.
func TestPeerClientRetriesTransient5xx(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	p := NewPeerClient(0, srv.URL, nil, fastCfg())
	resp, err := p.Do(context.Background(), http.MethodGet, "/x", nil, nil, "k")
	if err != nil || resp.Status != http.StatusOK || string(resp.Body) != "ok" {
		t.Fatalf("Do: %+v, %v", resp, err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	if st := p.Stats(); st.Retries != 2 || st.Failures != 2 {
		t.Fatalf("stats %+v, want 2 retries / 2 failures", st)
	}
}

// TestPeerClientReturnsFinal5xx: a persistent 503 comes back as the final
// response (not an error) after exhausting retries — the caller decides what
// a definitive 5xx means.
func TestPeerClientReturnsFinal5xx(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	p := NewPeerClient(0, srv.URL, nil, fastCfg())
	resp, err := p.Do(context.Background(), http.MethodGet, "/x", nil, nil, "k")
	if err != nil || resp == nil || resp.Status != http.StatusServiceUnavailable {
		t.Fatalf("Do: %+v, %v — want the final 503 response", resp, err)
	}
	if calls.Load() != 3 { // 1 + 2 retries
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
}

// TestPeerClient4xxIsAuthoritative: a 404 is an answer, not a failure — no
// retries, breaker unaffected.
func TestPeerClient4xxIsAuthoritative(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
	}))
	defer srv.Close()

	cfg := fastCfg()
	cfg.BreakerThreshold = 1
	p := NewPeerClient(0, srv.URL, nil, cfg)
	resp, err := p.Do(context.Background(), http.MethodGet, "/x", nil, nil, "k")
	if err != nil || resp.Status != http.StatusNotFound {
		t.Fatalf("Do: %+v, %v", resp, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("404 was retried: %d calls", calls.Load())
	}
	if p.Breaker().State() != BreakerClosed {
		t.Fatal("404 tripped the breaker")
	}
}

// TestPeerClientBreakerOpenRejectsWithoutWire: once the breaker opens, calls
// fail fast with ErrPeerDown and nothing reaches the transport.
func TestPeerClientBreakerOpenRejectsWithoutWire(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	cfg := fastCfg()
	cfg.BreakerThreshold = 2
	cfg.PeerRetries = -1 // none: each Do is one attempt
	cfg.BreakerCooldown = time.Hour
	p := NewPeerClient(3, srv.URL, nil, cfg)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := p.Do(ctx, http.MethodGet, "/x", nil, nil, "k"); err != nil {
			t.Fatalf("attempt %d returned transport error %v, want 503 response", i, err)
		}
	}
	wire := calls.Load()
	_, err := p.Do(ctx, http.MethodGet, "/x", nil, nil, "k")
	var down *ErrPeerDown
	if !errors.As(err, &down) || down.Peer != 3 {
		t.Fatalf("post-trip Do returned %v, want ErrPeerDown{Peer: 3}", err)
	}
	if calls.Load() != wire {
		t.Fatal("breaker-rejected call still reached the wire")
	}
}

// TestPeerClientTimeoutOnFakeClock: a hung peer is abandoned when the
// injected clock passes the timeout — no real-time sleeping, no goroutine
// leak (the attempt goroutine is joined via request-context cancellation).
func TestPeerClientTimeoutOnFakeClock(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()

	fake := clock.NewFake(time.Unix(0, 0))
	cfg := fastCfg()
	cfg.Clock = fake
	cfg.PeerTimeout = 2 * time.Second
	cfg.PeerRetries = -1
	p := NewPeerClient(0, srv.URL, nil, cfg)

	done := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := p.Do(context.Background(), http.MethodGet, "/hang", nil, nil, "k")
		done <- err
	}()
	for fake.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	fake.Advance(2 * time.Second)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("timed-out call returned success")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Do did not return after the clock passed the timeout")
	}
	wg.Wait()
	if st := p.Stats(); st.Timeouts != 1 {
		t.Fatalf("stats %+v, want 1 timeout", st)
	}
}

// TestPeerClientFaultTransportAttempts: wired through a fault.Transport that
// drops everything, the client burns exactly 1+retries attempts and surfaces
// the injected TransportError; the injector's stats see every attempt.
func TestPeerClientFaultTransportAttempts(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("never"))
	}))
	defer srv.Close()

	inj, err := fault.New(fault.Config{Seed: 1, DropProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPeerClient(1, srv.URL, &fault.Transport{Inj: inj, From: 0, To: 1}, fastCfg())
	_, derr := p.Do(context.Background(), http.MethodGet, "/x", nil, nil, "key-1")
	var te *fault.TransportError
	if !errors.As(derr, &te) || te.Peer != 1 {
		t.Fatalf("Do returned %v, want injected TransportError for peer 1", derr)
	}
	if got := inj.Stats().Drops; got != 3 {
		t.Fatalf("injector saw %d drops, want 3 (1 try + 2 retries)", got)
	}
	if st := p.Stats(); st.Requests != 3 || st.Failures != 3 {
		t.Fatalf("stats %+v, want 3 requests / 3 failures", st)
	}
}

// TestPeerClientFault5xxThenRecovery: an injected 5xx on the first attempt
// draws a fresh outcome on the retry (the attempt coordinate reaches the
// injector via the fault headers), so a transiently faulty path heals.
func TestPeerClientFault5xxThenRecovery(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(fault.HeaderFaultKey) != "" || r.Header.Get(fault.HeaderFaultAttempt) != "" {
			t.Error("fault headers leaked to the wire")
		}
		calls.Add(1)
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	// Find a key whose attempt-0 draw is a 5xx but heals within the retry
	// budget — deterministic, so scan once and pin.
	inj, err := fault.New(fault.Config{Seed: 7, FailProb: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPeerClient(1, srv.URL, &fault.Transport{Inj: inj, From: 0, To: 1}, fastCfg())
	var sawRetry bool
	for i := 0; i < 64 && !sawRetry; i++ {
		key := "probe-" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		before := p.Stats().Retries
		resp, err := p.Do(context.Background(), http.MethodGet, "/x", nil, nil, key)
		if err == nil && resp.Status == http.StatusOK && p.Stats().Retries > before {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Fatal("no key drew 5xx-then-success within 64 probes at FailProb 0.6 — retry recovery untested")
	}
	if calls.Load() == 0 {
		t.Fatal("no request ever reached the server")
	}
}
