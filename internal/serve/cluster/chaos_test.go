package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/asamap/asamap/internal/fault"
	"github.com/asamap/asamap/internal/serve"
)

// Two small graphs with planted structure; different canonical hashes.
const (
	graphA = "0 1\n1 2\n2 0\n3 4\n4 5\n5 3\n0 3\n"
	graphB = "0 1\n1 2\n2 3\n3 0\n4 5\n5 6\n6 7\n7 4\n0 4\n"
)

// handlerSwap lets the httptest servers exist (so their URLs are known)
// before the nodes that will serve them are constructed.
type handlerSwap struct{ h atomic.Value }

func (s *handlerSwap) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, ok := s.h.Load().(http.Handler); ok {
		h.ServeHTTP(w, r)
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
}

// downGate simulates a crashed replica: while down, every connection to it
// dies at the transport layer before any bytes move.
type downGate struct {
	down  *atomic.Bool
	peer  int
	inner http.RoundTripper
}

func (g *downGate) RoundTrip(req *http.Request) (*http.Response, error) {
	if g.down.Load() {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("cluster test: replica %d is down", g.peer)
	}
	return g.inner.RoundTrip(req)
}

// testCluster is an in-process deployment: N replica nodes plus one pure
// router, every inter-replica path wired through a shared seeded fault
// injector and a per-replica crash gate.
type testCluster struct {
	t       *testing.T
	router  *Node
	nodes   []*Node
	srvs    []*httptest.Server
	rsrv    *httptest.Server
	down    []*atomic.Bool
	inj     *fault.Injector
	baseURL string
}

func newTestCluster(t *testing.T, replicas int, faultCfg fault.Config) *testCluster {
	t.Helper()
	inj, err := fault.New(faultCfg)
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{t: t, inj: inj}
	urls := make([]string, replicas)
	swaps := make([]*handlerSwap, replicas)
	tc.down = make([]*atomic.Bool, replicas)
	for i := 0; i < replicas; i++ {
		swaps[i] = &handlerSwap{}
		srv := httptest.NewServer(swaps[i])
		tc.srvs = append(tc.srvs, srv)
		urls[i] = srv.URL
		tc.down[i] = &atomic.Bool{}
	}
	cfg := func(self int) Config {
		from := self
		if from < 0 {
			from = replicas // the router's injector coordinate
		}
		return Config{
			Self:             self,
			Peers:            urls,
			Replication:      2,
			Seed:             42,
			PeerTimeout:      10 * time.Second,
			PeerRetries:      2,
			PeerBackoff:      Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
			BreakerThreshold: 1,
			BreakerCooldown:  -1, // zero: every post-trip call probes — deterministic
			Transport: func(peer int) http.RoundTripper {
				return &fault.Transport{
					Inj:      inj,
					From:     from,
					To:       peer,
					DelayFor: time.Millisecond,
					Inner:    &downGate{down: tc.down[peer], peer: peer, inner: http.DefaultTransport},
				}
			},
		}
	}
	serveCfg := serve.DefaultConfig()
	serveCfg.QueueCapacity = 8
	serveCfg.Workers = 2
	for i := 0; i < replicas; i++ {
		n := NewNode(serve.New(serveCfg), cfg(i))
		tc.nodes = append(tc.nodes, n)
		swaps[i].h.Store(n.Handler())
	}
	tc.router = NewNode(serve.New(serveCfg), cfg(-1))
	tc.rsrv = httptest.NewServer(tc.router.Handler())
	tc.baseURL = tc.rsrv.URL
	t.Cleanup(tc.close)
	return tc
}

func (tc *testCluster) close() {
	tc.rsrv.Close()
	tc.router.Close()
	for i, srv := range tc.srvs {
		srv.Close()
		tc.nodes[i].Close()
	}
}

// upload pushes an edge list through base and returns the canonical hash.
func upload(t *testing.T, base, edges string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/graphs", "text/plain", strings.NewReader(edges))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("upload status %d", resp.StatusCode)
	}
	var info serve.GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info.Hash
}

// detect posts one detection request and returns (status, cluster routing
// path, body).
func detect(t *testing.T, base, graphHash string, seed uint64) (int, string, []byte) {
	t.Helper()
	body, _ := json.Marshal(serve.DetectRequest{Graph: graphHash, Options: serve.DetectOptions{Seed: seed}})
	resp, err := http.Post(base+"/v1/detect", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get(HeaderCluster), raw
}

// reference computes the ground-truth bytes on a standalone single-node
// server: the cluster must reproduce these exactly, whatever the faults.
func reference(t *testing.T, graphs map[string]string, seeds []uint64) map[string][]byte {
	t.Helper()
	s := serve.New(serve.DefaultConfig())
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	out := make(map[string][]byte)
	for name, edges := range graphs {
		hash := upload(t, srv.URL, edges)
		if hash != name {
			t.Fatalf("reference hash %s != %s", hash, name)
		}
		for _, seed := range seeds {
			status, _, body := detect(t, srv.URL, hash, seed)
			if status != http.StatusOK {
				t.Fatalf("reference detect status %d", status)
			}
			out[refKey(hash, seed)] = body
		}
	}
	return out
}

func refKey(hash string, seed uint64) string { return fmt.Sprintf("%s|%d", hash, seed) }

// metricsText scrapes base's /metrics.
func metricsText(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return string(raw)
}

// TestClusterForwardedByteIdentical: with no faults, the router proxies
// every detect to a ring owner and the bytes match a single-replica server
// exactly.
func TestClusterForwardedByteIdentical(t *testing.T) {
	tc := newTestCluster(t, 3, fault.Disabled())
	hash := upload(t, tc.baseURL, graphA)
	ref := reference(t, map[string]string{hash: graphA}, []uint64{1, 2, 3})
	for _, seed := range []uint64{1, 2, 3} {
		status, path, body := detect(t, tc.baseURL, hash, seed)
		if status != http.StatusOK {
			t.Fatalf("seed %d: status %d", seed, status)
		}
		if path != "forwarded" {
			t.Fatalf("seed %d: routing path %q, want forwarded (router owns no shard)", seed, path)
		}
		if !bytes.Equal(body, ref[refKey(hash, seed)]) {
			t.Fatalf("seed %d: forwarded bytes differ from single-replica reference", seed)
		}
	}
	if st := tc.router.Stats(); st.Forwarded != 3 || st.Degraded != 0 {
		t.Fatalf("router stats %+v, want 3 forwarded / 0 degraded", st)
	}
	// The router computed nothing itself.
	if runs := tc.router.Local().Runs(); runs != 0 {
		t.Fatalf("router ran %d local detections, want 0", runs)
	}
}

// TestClusterDegradedWhenOwnersDown is the graceful-degradation contract:
// with the entire owner set crashed, the router computes locally and answers
// 200 with byte-identical results instead of surfacing a 503.
func TestClusterDegradedWhenOwnersDown(t *testing.T) {
	tc := newTestCluster(t, 2, fault.Disabled())
	hash := upload(t, tc.baseURL, graphA)
	ref := reference(t, map[string]string{hash: graphA}, []uint64{7})

	tc.down[0].Store(true)
	tc.down[1].Store(true)
	status, path, body := detect(t, tc.baseURL, hash, 7)
	if status != http.StatusOK {
		t.Fatalf("status %d with all owners down, want 200", status)
	}
	if path != "degraded" {
		t.Fatalf("routing path %q, want degraded", path)
	}
	if !bytes.Equal(body, ref[refKey(hash, 7)]) {
		t.Fatal("degraded bytes differ from single-replica reference")
	}
	st := tc.router.Stats()
	if st.Degraded != 1 {
		t.Fatalf("router stats %+v, want 1 degraded", st)
	}
	if tc.router.Peer(0).Stats().BreakerTrips == 0 {
		t.Fatal("no breaker trip recorded against the downed primary")
	}
	m := metricsText(t, tc.baseURL)
	for _, want := range []string{
		"asamap_cluster_degraded_total 1",
		"asamap_cluster_breaker_trips_total",
		"asamap_cluster_peer_retries_total",
	} {
		if !strings.Contains(m, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	// Revive the owners: the same request now forwards again.
	tc.down[0].Store(false)
	tc.down[1].Store(false)
	status, path, body = detect(t, tc.baseURL, hash, 7)
	if status != http.StatusOK || path != "forwarded" {
		t.Fatalf("after revival: status %d path %q, want 200 forwarded", status, path)
	}
	if !bytes.Equal(body, ref[refKey(hash, 7)]) {
		t.Fatal("post-revival bytes differ from reference")
	}
}

// TestClusterPeerCacheAdoption: an owner that never computed a key serves it
// from its sibling's result cache — byte-identical, zero local runs.
func TestClusterPeerCacheAdoption(t *testing.T) {
	tc := newTestCluster(t, 2, fault.Disabled())
	// Talk to the replicas directly: both own every key at replication 2.
	hash := upload(t, tc.srvs[0].URL, graphA)
	status, path, first := detect(t, tc.srvs[0].URL, hash, 11)
	if status != http.StatusOK || path != "local" {
		t.Fatalf("replica 0: status %d path %q, want 200 local", status, path)
	}
	status, path, second := detect(t, tc.srvs[1].URL, hash, 11)
	if status != http.StatusOK {
		t.Fatalf("replica 1: status %d", status)
	}
	if path != "peer-cache" {
		t.Fatalf("replica 1 routing path %q, want peer-cache", path)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("peer-cache bytes differ from the sibling's compute")
	}
	if runs := tc.nodes[1].Local().Runs(); runs != 0 {
		t.Fatalf("replica 1 ran %d detections for an adoptable key, want 0", runs)
	}
	if st := tc.nodes[1].Stats(); st.PeerCacheHits != 1 {
		t.Fatalf("replica 1 stats %+v, want 1 peer cache hit", st)
	}
}

// chaosOutcome is one request's observable routing result.
type chaosOutcome struct {
	Status int
	Path   string
}

// runChaosScenario drives the full fault schedule against a fresh cluster:
// two graphs, 18 serial detects, the primary owner of graph A crashing
// mid-run and reviving later. It asserts zero lost requests and byte-replay
// determinism of every response, and returns the outcome sequence.
func runChaosScenario(t *testing.T, ref map[string][]byte) []chaosOutcome {
	t.Helper()
	tc := newTestCluster(t, 3, fault.Config{
		Seed:      1234,
		DropProb:  0.12,
		DupProb:   0.08,
		DelayProb: 0.08,
		FailProb:  0.12,
	})
	hashA := upload(t, tc.baseURL, graphA)
	hashB := upload(t, tc.baseURL, graphB)
	// The ring is a pure function of (seed, replicas, vnodes), so the test
	// can locate graph A's primary owner without asking the router.
	victim := NewRing(3, 64, 42).Owners(hashA, 2)[0]

	seeds := []uint64{1, 2, 3, 4, 5}
	var outcomes []chaosOutcome
	for i := 0; i < 18; i++ {
		switch i {
		case 6:
			tc.down[victim].Store(true) // crash mid-run
		case 12:
			tc.down[victim].Store(false) // revive
		}
		hash := hashA
		if i%2 == 1 {
			hash = hashB
		}
		seed := seeds[i%len(seeds)]
		status, path, body := detect(t, tc.baseURL, hash, seed)
		if status != http.StatusOK {
			t.Fatalf("request %d (graph %s seed %d): status %d — a request was lost", i, hash[:8], seed, status)
		}
		if !bytes.Equal(body, ref[refKey(hash, seed)]) {
			t.Fatalf("request %d (graph %s seed %d): bytes differ from single-replica reference", i, hash[:8], seed)
		}
		outcomes = append(outcomes, chaosOutcome{Status: status, Path: path})
	}

	// The fault schedule and the crash must be visible in telemetry.
	st := tc.router.Stats()
	if st.Forwarded == 0 {
		t.Fatal("chaos run forwarded nothing")
	}
	if tc.router.Peer(victim).Stats().BreakerTrips == 0 {
		t.Fatal("crashed owner never tripped its breaker")
	}
	var retries uint64
	for p := 0; p < 3; p++ {
		retries += tc.router.Peer(p).Stats().Retries
	}
	if retries == 0 {
		t.Fatal("no retries under a 40% fault rate — the retry path is dead")
	}
	m := metricsText(t, tc.baseURL)
	for _, want := range []string{
		"asamap_cluster_forwarded_total",
		"asamap_cluster_breaker_trips_total",
		"asamap_cluster_peer_retries_total",
		"asamap_cluster_degraded_total",
	} {
		if !strings.Contains(m, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
	return outcomes
}

// TestClusterChaosByteReplayDeterminism is the chaos acceptance test: under
// a seeded schedule of drops, duplicates, delays, injected 5xx, and a
// crash/revive of graph A's primary owner, every request still answers 200
// with bytes identical to a single-replica server — and re-running the
// identical scenario reproduces the identical outcome sequence.
func TestClusterChaosByteReplayDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos tier skipped in -short")
	}
	// Ground truth once: hashes are content addresses, so compute them via
	// a throwaway upload.
	s := serve.New(serve.DefaultConfig())
	srv := httptest.NewServer(s.Handler())
	hashA := upload(t, srv.URL, graphA)
	hashB := upload(t, srv.URL, graphB)
	srv.Close()
	s.Close()
	ref := reference(t, map[string]string{hashA: graphA, hashB: graphB}, []uint64{1, 2, 3, 4, 5})

	first := runChaosScenario(t, ref)
	second := runChaosScenario(t, ref)
	if len(first) != len(second) {
		t.Fatalf("outcome counts differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("request %d: outcome diverged across identical runs: %+v vs %+v — "+
				"the fault schedule is not deterministic", i, first[i], second[i])
		}
	}
}
