package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/asamap/asamap/internal/fault"
	"github.com/asamap/asamap/internal/serve"
)

// deltaOne rewires graphA's bridge through a brand-new vertex; deltaTwo
// stacks on the resulting version. Fixed bytes keep ring placement and the
// chained version ids deterministic across runs.
const (
	deltaOne = "- 0 3\n+ 0 6 1\n+ 6 3 1\n= 1 2 2\n"
	deltaTwo = "= 0 6 3\n"
)

// uploadDelta posts a delta batch onto parent and returns the version info.
func uploadDelta(t *testing.T, base, parent, delta string) serve.VersionInfo {
	t.Helper()
	resp, err := http.Post(base+"/v1/graphs/"+parent+"/delta", "text/plain", strings.NewReader(delta))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("delta upload status %d: %s", resp.StatusCode, raw)
	}
	var info serve.VersionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

// detectOpts posts one detection request with full wire options.
func detectOpts(t *testing.T, base, graph string, opts serve.DetectOptions) (int, string, []byte) {
	t.Helper()
	body, _ := json.Marshal(serve.DetectRequest{Graph: graph, Options: opts})
	resp, err := http.Post(base+"/v1/detect", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get(HeaderCluster), raw
}

// deltaRequest is one step of the delta chaos matrix: which lineage member
// to detect on, with which seed, warm or cold.
type deltaRequest struct {
	graph string // "base" | "v1" | "v2", resolved against the actual ids
	seed  uint64
	warm  bool
}

func deltaRefKey(req deltaRequest) string {
	return fmt.Sprintf("%s|%d|%v", req.graph, req.seed, req.warm)
}

// deltaReference computes ground truth on a standalone single-node server:
// the lineage ids and the exact bytes of every request in the matrix.
func deltaReference(t *testing.T, reqs []deltaRequest) (v1, v2 serve.VersionInfo, ref map[string][]byte) {
	t.Helper()
	s := serve.New(serve.DefaultConfig())
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	hash := upload(t, srv.URL, graphA)
	v1 = uploadDelta(t, srv.URL, hash, deltaOne)
	v2 = uploadDelta(t, srv.URL, v1.ID, deltaTwo)
	ref = make(map[string][]byte)
	ids := map[string]string{"base": hash, "v1": v1.ID, "v2": v2.ID}
	for _, req := range reqs {
		status, _, body := detectOpts(t, srv.URL, ids[req.graph],
			serve.DetectOptions{Seed: req.seed, WarmStart: req.warm})
		if status != http.StatusOK {
			t.Fatalf("reference %+v: status %d", req, status)
		}
		ref[deltaRefKey(req)] = body
	}
	return v1, v2, ref
}

// deltaChaosMatrix mixes cold detects on every lineage member with warm
// detects on both versions, across three seeds.
func deltaChaosMatrix() []deltaRequest {
	var reqs []deltaRequest
	for _, seed := range []uint64{1, 2, 3} {
		reqs = append(reqs,
			deltaRequest{"base", seed, false},
			deltaRequest{"v1", seed, false},
			deltaRequest{"v1", seed, true},
			deltaRequest{"v2", seed, true},
		)
	}
	return reqs
}

// runDeltaChaosScenario replays the full schedule against a fresh cluster:
// base + two stacked deltas uploaded through the router under seeded faults,
// then the request matrix with the warm target's primary owner crashing
// mid-run and reviving later. It asserts the cluster derives the same
// lineage ids as the single-replica reference and answers every request 200
// with byte-identical bodies.
func runDeltaChaosScenario(t *testing.T, refV1, refV2 serve.VersionInfo, ref map[string][]byte) []chaosOutcome {
	t.Helper()
	tc := newTestCluster(t, 3, fault.Config{
		Seed:      4321,
		DropProb:  0.12,
		DupProb:   0.08,
		DelayProb: 0.08,
		FailProb:  0.12,
	})
	hash := upload(t, tc.baseURL, graphA)
	v1 := uploadDelta(t, tc.baseURL, hash, deltaOne)
	v2 := uploadDelta(t, tc.baseURL, v1.ID, deltaTwo)
	// Same base + same ordered deltas must chain to the same version ids on
	// the cluster as on the standalone reference — lineage is content-derived.
	if v1.ID != refV1.ID || v2.ID != refV2.ID {
		t.Fatalf("cluster lineage [%s %s] != reference [%s %s]",
			v1.ID[:8], v2.ID[:8], refV1.ID[:8], refV2.ID[:8])
	}
	if v1.Parent != hash || v2.Parent != v1.ID || v2.Base != hash || v2.Depth != 2 {
		t.Fatalf("cluster lineage metadata wrong: v1=%+v v2=%+v", v1, v2)
	}
	ids := map[string]string{"base": hash, "v1": v1.ID, "v2": v2.ID}
	victim := NewRing(3, 64, 42).Owners(v2.ID, 2)[0]

	reqs := deltaChaosMatrix()
	var outcomes []chaosOutcome
	for i, req := range reqs {
		switch i {
		case 4:
			tc.down[victim].Store(true) // crash the warm target's primary owner mid-run
		case 9:
			tc.down[victim].Store(false) // revive
		}
		status, path, body := detectOpts(t, tc.baseURL, ids[req.graph],
			serve.DetectOptions{Seed: req.seed, WarmStart: req.warm})
		if status != http.StatusOK {
			t.Fatalf("request %d %+v: status %d — a request was lost", i, req, status)
		}
		if !bytes.Equal(body, ref[deltaRefKey(req)]) {
			t.Fatalf("request %d %+v: bytes differ from single-replica reference:\n%s\nwant\n%s",
				i, req, body, ref[deltaRefKey(req)])
		}
		outcomes = append(outcomes, chaosOutcome{Status: status, Path: path})
	}

	if st := tc.router.Stats(); st.Forwarded == 0 {
		t.Fatal("delta chaos run forwarded nothing")
	}
	if tc.router.Peer(victim).Stats().BreakerTrips == 0 {
		t.Fatal("crashed owner never tripped its breaker")
	}
	m := metricsText(t, tc.baseURL)
	for _, want := range []string{
		"asamap_cluster_version_fetches_total",
		"asamap_registry_versions 2",
		"asamap_registry_delta_applies_total",
	} {
		if !strings.Contains(m, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
	return outcomes
}

// TestClusterDeltaChaosByteReplay is the incremental-detection chaos
// acceptance test: delta replication under a seeded schedule of drops,
// duplicates, delays, injected 5xx, and a mid-run crash/revive of the warm
// target's primary owner still yields the same version lineage and
// byte-identical detect responses (cold and warm) as a single-replica
// server — and the identical scenario reproduces the identical outcome
// sequence.
func TestClusterDeltaChaosByteReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos tier skipped in -short")
	}
	refV1, refV2, ref := deltaReference(t, deltaChaosMatrix())
	first := runDeltaChaosScenario(t, refV1, refV2, ref)
	second := runDeltaChaosScenario(t, refV1, refV2, ref)
	if len(first) != len(second) {
		t.Fatalf("outcome counts differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("request %d: outcome diverged across identical runs: %+v vs %+v — "+
				"the fault schedule is not deterministic", i, first[i], second[i])
		}
	}
}

// TestClusterDeltaOnDemandLineageFetch pins the ancestor-fetch path: a
// replica that receives a replicated delta without ever having seen the base
// graph pulls the missing lineage from its peers and still derives the same
// version id and byte-identical warm results.
func TestClusterDeltaOnDemandLineageFetch(t *testing.T) {
	tc := newTestCluster(t, 2, fault.Disabled())
	// Plant the base graph on replica 0 only: the forwarded marker suppresses
	// replication, so replica 1 has never seen it.
	req, err := http.NewRequest(http.MethodPost, tc.srvs[0].URL+"/v1/graphs", strings.NewReader(graphA))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")
	req.Header.Set(HeaderForwarded, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var info serve.GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// A first-hand delta upload on replica 0 replicates to the version's
	// owners — at replication 2 that includes replica 1, which must fetch the
	// base graph on demand before it can apply the delta.
	v1 := uploadDelta(t, tc.srvs[0].URL, info.Hash, deltaOne)
	if _, ok := tc.nodes[1].Local().Registry().Resolve(v1.ID); !ok {
		t.Fatal("replica 1 did not materialize the replicated version")
	}
	got, ok := tc.nodes[1].Local().Registry().Version(v1.ID)
	if !ok || got.Parent != info.Hash || got.Depth != 1 {
		t.Fatalf("replica 1 version metadata: %+v", got)
	}
	if fetches := tc.nodes[1].Stats().GraphFetches; fetches == 0 {
		t.Fatal("replica 1 applied the delta without fetching the missing base graph")
	}

	// Warm detects answered by each replica independently are byte-identical.
	s1, _, body0 := detectOpts(t, tc.srvs[0].URL, v1.ID, serve.DetectOptions{Seed: 3, WarmStart: true})
	s2, _, body1 := detectOpts(t, tc.srvs[1].URL, v1.ID, serve.DetectOptions{Seed: 3, WarmStart: true})
	if s1 != http.StatusOK || s2 != http.StatusOK {
		t.Fatalf("warm detect statuses %d/%d", s1, s2)
	}
	if !bytes.Equal(body0, body1) {
		t.Fatal("replicas disagree on warm detect bytes")
	}
}
