package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/asamap/asamap/internal/clock"
	"github.com/asamap/asamap/internal/obs"
	"github.com/asamap/asamap/internal/serve"
)

// Response headers the node adds so clients (and the chaos tier) can see how
// a request was routed.
const (
	// HeaderCluster reports the routing path: "local" (this node owned the
	// key and served it), "forwarded" (proxied to an owner), "peer-cache"
	// (adopted a sibling owner's cached result), or "degraded" (every owner
	// was unreachable and the node computed locally instead of failing).
	HeaderCluster = "X-Asamap-Cluster"
	// HeaderClusterOwner is the replica index that served a forwarded
	// request.
	HeaderClusterOwner = "X-Asamap-Cluster-Owner"
	// HeaderClusterSource is the replica index a peer-cache result came from.
	HeaderClusterSource = "X-Asamap-Cluster-Source"
	// HeaderForwarded marks a request already routed once by a cluster node.
	// A node receiving it serves the request itself, whatever its ring says —
	// a misconfigured ring must degrade to an extra local compute, never to a
	// forwarding loop.
	HeaderForwarded = "X-Asamap-Forwarded"
)

// Config shapes one cluster node.
type Config struct {
	// Self is this node's index in Peers, or -1 for a pure router: a node
	// that owns no shard, forwards every detect to the key's owners, and
	// computes locally only as a last resort when the whole owner set is
	// unreachable.
	Self int
	// Peers are the base URLs of every replica, indexed by identity. The
	// ring hashes over these indices, so every node must be configured with
	// the same ordered list. Empty means standalone: all requests are local.
	Peers []string
	// Replication is how many distinct owners each graph hash has (default
	// 2, clamped to [1, len(Peers)]).
	Replication int
	// Vnodes is the number of ring points per replica (default 64).
	Vnodes int
	// Seed drives ring placement and retry jitter. All nodes of one cluster
	// must share it.
	Seed uint64
	// PeerTimeout bounds one peer round trip (default 5s).
	PeerTimeout time.Duration
	// PeerRetries is how many times a transiently failed peer call is
	// re-sent after the first attempt (default 2; negative means none).
	PeerRetries int
	// PeerBackoff schedules the waits between retries.
	PeerBackoff Backoff
	// BreakerThreshold consecutive failures trip a peer's circuit breaker
	// (default 3); BreakerCooldown is how long it stays open before
	// admitting a half-open probe (default 2s; negative means zero — every
	// post-trip call is a probe, the deterministic shape chaos tests use).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Clock is injectable for deterministic tests; nil means the real clock.
	Clock clock.Clock
	// Logger receives the node's structured log; nil discards.
	Logger *slog.Logger
	// Transport returns the RoundTripper used to reach peer i; nil means
	// http.DefaultTransport everywhere. The chaos tier injects
	// fault.Transport (and crash gates) here.
	Transport func(peer int) http.RoundTripper
}

func (c Config) withDefaults() Config {
	if c.Replication < 1 {
		c.Replication = 2
	}
	if len(c.Peers) > 0 && c.Replication > len(c.Peers) {
		c.Replication = len(c.Peers)
	}
	if c.Vnodes < 1 {
		c.Vnodes = 64
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 5 * time.Second
	}
	if c.PeerRetries < 0 {
		c.PeerRetries = 0
	} else if c.PeerRetries == 0 {
		c.PeerRetries = 2
	}
	if c.BreakerThreshold < 1 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown < 0 {
		c.BreakerCooldown = 0
	} else if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.Clock == nil {
		c.Clock = clock.Real{}
	}
	if c.Logger == nil {
		c.Logger = obs.DiscardLogger()
	}
	return c
}

// Node is one member of the replicated detection service: a local
// serve.Server plus the routing, replication, retry, breaker, and
// degradation machinery around it. A Node with no peers behaves exactly
// like the local server.
type Node struct {
	cfg         Config
	local       *serve.Server
	ring        *Ring
	peers       []*PeerClient   // index = replica identity; nil at Self and when standalone
	scrapeFails []atomic.Uint64 // per-peer /cluster/metrics scrape failures; same indexing as peers
	clk         clock.Clock
	logger      *slog.Logger
	handler     http.Handler

	forwarded      atomic.Uint64 // requests proxied to an owner
	failovers      atomic.Uint64 // forwards that fell through to a secondary owner
	degraded       atomic.Uint64 // requests served by local compute because every owner was unreachable
	peerCacheHits  atomic.Uint64 // results adopted from a sibling owner's cache
	peerCacheMiss  atomic.Uint64 // sibling cache probes that found nothing
	replFailures   atomic.Uint64 // graph replications that could not reach an owner
	graphFetches   atomic.Uint64 // graphs pulled from a peer on demand
	versionFetches atomic.Uint64 // delta versions replayed from a peer on demand
}

// NewNode wraps local in the cluster layer described by cfg.
func NewNode(local *serve.Server, cfg Config) *Node {
	// Peer clients apply withDefaults themselves; hand them the caller's
	// config so the zero-vs-sentinel distinction (PeerRetries, BreakerCooldown)
	// is resolved exactly once — re-defaulting a normalized config would turn
	// a sentinel-derived zero back into the default.
	raw := cfg
	cfg = cfg.withDefaults()
	n := &Node{
		cfg:    cfg,
		local:  local,
		clk:    cfg.Clock,
		logger: cfg.Logger,
	}
	if len(cfg.Peers) > 0 {
		n.ring = NewRing(len(cfg.Peers), cfg.Vnodes, cfg.Seed)
		n.peers = make([]*PeerClient, len(cfg.Peers))
		n.scrapeFails = make([]atomic.Uint64, len(cfg.Peers))
		for i, url := range cfg.Peers {
			if i == cfg.Self {
				continue
			}
			var rt http.RoundTripper
			if cfg.Transport != nil {
				rt = cfg.Transport(i)
			}
			n.peers[i] = NewPeerClient(i, url, rt, raw)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/detect", n.handleDetect)
	mux.HandleFunc("POST /v1/graphs", n.handleUpload)
	mux.HandleFunc("POST /v1/graphs/{hash}/delta", n.handleDeltaUpload)
	mux.HandleFunc("GET /metrics", n.handleMetrics)
	mux.HandleFunc("GET /cluster/metrics", n.handleClusterMetrics)
	mux.HandleFunc("GET /cluster/status", n.handleStatus)
	mux.HandleFunc("GET /debug/trace/{id}", n.handleTraceByID)
	mux.Handle("/", local.Mux())
	// One middleware layer over the union: cluster-routed and locally served
	// requests share request IDs, root spans, and the request log.
	n.handler = local.Wrap(mux)
	return n
}

// Handler returns the node's HTTP handler.
func (n *Node) Handler() http.Handler { return n.handler }

// Local exposes the wrapped server.
func (n *Node) Local() *serve.Server { return n.local }

// Close drains the local server.
func (n *Node) Close() { n.local.Close() }

// Peer exposes the client for replica i (nil for self/standalone); used by
// metrics and tests.
func (n *Node) Peer(i int) *PeerClient {
	if n.peers == nil || i < 0 || i >= len(n.peers) {
		return nil
	}
	return n.peers[i]
}

// owners returns graphHash's owner preference order, or nil when standalone.
func (n *Node) owners(graphHash string) []int {
	if n.ring == nil {
		return nil
	}
	return n.ring.Owners(graphHash, n.cfg.Replication)
}

func (n *Node) isOwner(owners []int) bool {
	if n.cfg.Self < 0 {
		return false
	}
	for _, p := range owners {
		if p == n.cfg.Self {
			return true
		}
	}
	return false
}

// serveLocal restores the consumed body and delegates to the local server's
// route mux, which produces the authoritative response (including strict
// request validation errors, so error bytes match a single-replica server).
func (n *Node) serveLocal(w http.ResponseWriter, r *http.Request, body []byte) {
	if body != nil {
		r.Body = io.NopCloser(bytes.NewReader(body))
		r.ContentLength = int64(len(body))
	}
	n.local.Mux().ServeHTTP(w, r)
}

// markPath records the routing decision where operators can see it: the
// response header and the request's root span.
func (n *Node) markPath(w http.ResponseWriter, r *http.Request, path string) {
	w.Header().Set(HeaderCluster, path)
	// The routing path depends on the fault schedule, not on the request
	// alone, so it is a volatile span attribute.
	serve.RequestSpan(r.Context()).SetVolatileAttr("cluster.path", path)
}

func (n *Node) handleDetect(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		jsonError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	var req serve.DetectRequest
	if err := json.Unmarshal(raw, &req); err != nil || req.Graph == "" {
		// Malformed request: the local server owns the strict validation
		// error so its bytes match a single-replica deployment.
		n.serveLocal(w, r, raw)
		return
	}
	key, err := serve.DetectKey(req.Graph, req.Options)
	if err != nil {
		n.serveLocal(w, r, raw)
		return
	}
	owners := n.owners(req.Graph)
	if len(owners) == 0 || n.isOwner(owners) || r.Header.Get(HeaderForwarded) != "" {
		n.serveOwnedDetect(w, r, raw, req.Graph, key, owners)
		return
	}
	n.forwardDetect(w, r, raw, req.Graph, key, owners)
}

// serveOwnedDetect is the owner path: compute locally, but first try to
// adopt the byte-exact result from a sibling owner's cache — replication
// means a sibling may have already paid for this exact key.
func (n *Node) serveOwnedDetect(w http.ResponseWriter, r *http.Request, raw []byte, graphHash, key string, owners []int) {
	if _, ok := n.local.CachePeek(key); !ok && len(owners) > 1 {
		if body, from, ok := n.peerCacheFetch(r.Context(), key, owners); ok {
			// Byte-replay determinism makes the peer's bytes
			// indistinguishable from a local compute; seed the local cache
			// and let the local handler serve the hit.
			n.local.CacheSeed(key, body)
			n.peerCacheHits.Add(1)
			n.markPath(w, r, "peer-cache")
			w.Header().Set(HeaderClusterSource, strconv.Itoa(from))
		} else {
			n.peerCacheMiss.Add(1)
		}
	}
	if w.Header().Get(HeaderCluster) == "" {
		n.markPath(w, r, "local")
	}
	// A forwarded detect can land here before the graph's (or version
	// lineage's) replication did — or ever could, its uploader may have
	// died; pull it on demand.
	if _, ok := n.local.Registry().Resolve(graphHash); !ok && len(n.peers) > 0 {
		n.fetchVersion(r.Context(), graphHash)
	}
	n.serveLocal(w, r, raw)
}

// peerCacheFetch probes the sibling owners' result caches for key and
// returns the first hit.
func (n *Node) peerCacheFetch(ctx context.Context, key string, owners []int) ([]byte, int, bool) {
	for _, p := range owners {
		if p == n.cfg.Self || n.peers[p] == nil {
			continue
		}
		resp, err := n.peers[p].Do(ctx, http.MethodGet, "/v1/cache/"+key, nil, nil, "cache|"+key)
		if err != nil || resp.Status != http.StatusOK {
			continue // a miss or an unreachable sibling just means we compute
		}
		return resp.Body, p, true
	}
	return nil, -1, false
}

// forwardDetect is the router path: proxy the request to the key's owners in
// preference order, falling back to local compute when the whole owner set
// is unreachable — the client sees a result, never a routing 503.
func (n *Node) forwardDetect(w http.ResponseWriter, r *http.Request, raw []byte, graphHash, key string, owners []int) {
	for i, owner := range owners {
		pc := n.peers[owner]
		if pc == nil {
			continue
		}
		hdr := http.Header{}
		hdr.Set("Content-Type", "application/json")
		hdr.Set(HeaderForwarded, "1")
		resp, err := pc.Do(r.Context(), http.MethodPost, "/v1/detect", hdr, raw, key)
		switch {
		case err != nil || resp.Status >= 500 || resp.Status == http.StatusTooManyRequests:
			// Transient or down: try the next owner.
		case resp.Status == http.StatusNotFound:
			// The owner never received the graph (its replication was the
			// casualty of an earlier fault). Another owner — or the local
			// degradation path, which can fetch the graph — may still have
			// it, so a peer 404 is not authoritative.
		default:
			n.forwarded.Add(1)
			n.markPath(w, r, "forwarded")
			n.proxyResponse(w, resp, owner)
			return
		}
		if i+1 < len(owners) {
			n.failovers.Add(1)
		}
		n.logger.Warn("cluster: owner unavailable, failing over",
			"owner", owner, "key", key, "error", errString(err, resp))
	}
	// Graceful degradation: every owner refused us; compute locally rather
	// than surface the cluster's bad day to the client.
	n.degraded.Add(1)
	n.markPath(w, r, "degraded")
	if _, ok := n.local.Registry().Resolve(graphHash); !ok && len(n.peers) > 0 {
		n.fetchVersion(r.Context(), graphHash)
	}
	n.serveLocal(w, r, raw)
}

// proxyResponse relays an owner's answer verbatim. The body is untouched —
// byte-replay determinism is the contract that makes verbatim proxying
// indistinguishable from local compute.
func (n *Node) proxyResponse(w http.ResponseWriter, resp *PeerResponse, owner int) {
	for _, h := range []string{"Content-Type", "X-Asamap-Cache", "X-Asamap-Elapsed", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(HeaderClusterOwner, strconv.Itoa(owner))
	w.WriteHeader(resp.Status)
	w.Write(resp.Body)
}

func (n *Node) handleUpload(w http.ResponseWriter, r *http.Request) {
	directed := false
	switch v := r.URL.Query().Get("directed"); v {
	case "", "false", "0":
	case "true", "1":
		directed = true
	default:
		jsonError(w, http.StatusBadRequest, fmt.Sprintf("bad directed value %q", v))
		return
	}
	body := http.MaxBytesReader(w, r.Body, 64<<20)
	raw, err := io.ReadAll(body)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Register locally first: the node can always degrade to computing on
	// this graph even if every replication below fails.
	info, err := n.local.Registry().Add(raw, directed)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	n.markPath(w, r, "local")
	// Replicate only first-hand uploads: a replicated copy arriving from a
	// peer carries the forwarded marker and must not fan out again, or two
	// owners would bounce the same graph between each other indefinitely.
	if len(n.peers) > 0 && r.Header.Get(HeaderForwarded) == "" {
		n.replicateGraph(r.Context(), raw, directed, info.Hash)
	}
	status := http.StatusCreated
	if info.Reused {
		status = http.StatusOK
	}
	writeJSON(w, status, info)
}

// replicateGraph pushes an uploaded graph to its ring owners so detect
// forwards land on replicas that already hold it. Failures degrade, not
// fail: the owner can fetch the graph on demand when a detect arrives.
func (n *Node) replicateGraph(ctx context.Context, raw []byte, directed bool, hash string) {
	path := "/v1/graphs"
	if directed {
		path += "?directed=true"
	}
	for _, p := range n.owners(hash) {
		if p == n.cfg.Self || n.peers[p] == nil {
			continue
		}
		hdr := http.Header{}
		hdr.Set("Content-Type", "text/plain")
		hdr.Set(HeaderForwarded, "1")
		resp, err := n.peers[p].Do(ctx, http.MethodPost, path, hdr, raw, "upload|"+hash)
		if err != nil || resp.Status >= 400 {
			n.replFailures.Add(1)
			n.logger.Warn("cluster: graph replication failed",
				"owner", p, "graph", hash, "error", errString(err, resp))
		}
	}
}

// handleDeltaUpload applies a delta batch onto a parent graph or version.
// The parent may live only on other replicas (the ring shards versions by
// their own ids, not their parents'), so the node first ensures the parent's
// whole lineage locally, then applies the delta and replicates the raw bytes
// to the new version's ring owners. Chained hashing makes replication
// idempotent and order-safe: every replica that applies the same delta to
// the same parent derives the same version id.
func (n *Node) handleDeltaUpload(w http.ResponseWriter, r *http.Request) {
	parent := r.PathValue("hash")
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	if _, ok := n.local.Registry().Resolve(parent); !ok && len(n.peers) > 0 {
		n.fetchVersion(r.Context(), parent)
	}
	info, err := n.local.Registry().AddVersion(parent, raw)
	if err != nil {
		if errors.Is(err, serve.ErrUnknownParent) {
			jsonError(w, http.StatusNotFound, "unknown parent graph or version")
			return
		}
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	n.markPath(w, r, "local")
	// Replicate only first-hand uploads, mirroring handleUpload: a copy
	// arriving from a peer carries the forwarded marker and must not fan out
	// again.
	if len(n.peers) > 0 && r.Header.Get(HeaderForwarded) == "" {
		n.replicateDelta(r.Context(), parent, raw, info.ID)
	}
	status := http.StatusCreated
	if info.Reused {
		status = http.StatusOK
	}
	writeJSON(w, status, info)
}

// replicateDelta pushes a delta to the new version's ring owners so detect
// forwards for the version land on replicas that already hold its lineage.
// A receiving owner that is missing the parent fetches the ancestor chain on
// demand before applying. Failures degrade, not fail.
func (n *Node) replicateDelta(ctx context.Context, parent string, raw []byte, id string) {
	hdr := http.Header{}
	hdr.Set("Content-Type", "text/plain")
	hdr.Set(HeaderForwarded, "1")
	for _, p := range n.owners(id) {
		if p == n.cfg.Self || n.peers[p] == nil {
			continue
		}
		resp, err := n.peers[p].Do(ctx, http.MethodPost, "/v1/graphs/"+parent+"/delta", hdr, raw, "delta|"+id)
		if err != nil || resp.Status >= 400 {
			n.replFailures.Add(1)
			n.logger.Warn("cluster: delta replication failed",
				"owner", p, "version", id, "error", errString(err, resp))
		}
	}
}

// fetchVersion materializes an id on demand, whatever it names: a base graph
// replicates as its canonical edge list, a delta version as its raw delta
// bytes applied onto a recursively fetched parent. The chained version hash
// guarantees the locally replayed lineage converges on the same id the
// sending replica holds.
func (n *Node) fetchVersion(ctx context.Context, id string) bool {
	if _, ok := n.local.Registry().Resolve(id); ok {
		return true
	}
	for _, p := range n.peerOrder(id) {
		resp, err := n.peers[p].Do(ctx, http.MethodGet, "/v1/versions/"+id+"/delta", nil, nil, "version|"+id)
		if err != nil || resp.Status != http.StatusOK {
			continue // not a version on this peer (or the peer is dark)
		}
		parent := resp.Header.Get("X-Asamap-Parent")
		if parent == "" || !n.fetchVersion(ctx, parent) {
			continue
		}
		if _, err := n.local.Registry().AddVersion(parent, resp.Body); err != nil {
			n.logger.Warn("cluster: fetched delta failed to apply",
				"peer", p, "version", id, "error", err.Error())
			continue
		}
		n.versionFetches.Add(1)
		return true
	}
	// Not served as a version anywhere reachable: try it as a base graph.
	return n.fetchGraph(ctx, id)
}

// peerOrder returns the reachable peers in preference order for key: ring
// owners first, then everyone else.
func (n *Node) peerOrder(key string) []int {
	seen := make([]bool, len(n.peers))
	order := make([]int, 0, len(n.peers))
	for _, p := range n.owners(key) {
		if p != n.cfg.Self && n.peers[p] != nil {
			seen[p] = true
			order = append(order, p)
		}
	}
	for p := range n.peers {
		if !seen[p] && p != n.cfg.Self && n.peers[p] != nil {
			order = append(order, p)
		}
	}
	return order
}

// fetchGraph replicates a graph on demand: ask its owners (then every other
// peer) for the canonical edge list and register it locally. Content
// addressing guarantees the re-registered graph has the same hash.
func (n *Node) fetchGraph(ctx context.Context, hash string) bool {
	for _, p := range n.peerOrder(hash) {
		resp, err := n.peers[p].Do(ctx, http.MethodGet, "/v1/graphs/"+hash+"/data", nil, nil, "graph|"+hash)
		if err != nil || resp.Status != http.StatusOK {
			continue
		}
		directed := resp.Header.Get("X-Asamap-Directed") == "true"
		if _, err := n.local.Registry().Add(resp.Body, directed); err != nil {
			n.logger.Warn("cluster: fetched graph failed to register",
				"peer", p, "graph", hash, "error", err.Error())
			continue
		}
		n.graphFetches.Add(1)
		return true
	}
	return false
}

// ClusterStats is the /cluster/status JSON (and the node slice of /metrics).
type ClusterStats struct {
	Self            int                  `json:"self"`
	Peers           []string             `json:"peers"`
	Replication     int                  `json:"replication"`
	Forwarded       uint64               `json:"forwarded"`
	Failovers       uint64               `json:"failovers"`
	Degraded        uint64               `json:"degraded"`
	PeerCacheHits   uint64               `json:"peer_cache_hits"`
	PeerCacheMisses uint64               `json:"peer_cache_misses"`
	ReplFailures    uint64               `json:"replication_failures"`
	GraphFetches    uint64               `json:"graph_fetches"`
	VersionFetches  uint64               `json:"version_fetches"`
	PeerStats       map[string]PeerStats `json:"peer_stats,omitempty"`
	Breakers        map[string]string    `json:"breakers,omitempty"`
}

// Stats snapshots the node's cluster counters.
func (n *Node) Stats() ClusterStats {
	st := ClusterStats{
		Self:            n.cfg.Self,
		Peers:           n.cfg.Peers,
		Replication:     n.cfg.Replication,
		Forwarded:       n.forwarded.Load(),
		Failovers:       n.failovers.Load(),
		Degraded:        n.degraded.Load(),
		PeerCacheHits:   n.peerCacheHits.Load(),
		PeerCacheMisses: n.peerCacheMiss.Load(),
		ReplFailures:    n.replFailures.Load(),
		GraphFetches:    n.graphFetches.Load(),
		VersionFetches:  n.versionFetches.Load(),
	}
	if len(n.peers) > 0 {
		st.PeerStats = make(map[string]PeerStats)
		st.Breakers = make(map[string]string)
		for i, pc := range n.peers {
			if pc == nil {
				continue
			}
			id := strconv.Itoa(i)
			st.PeerStats[id] = pc.Stats()
			st.Breakers[id] = pc.Breaker().State().String()
		}
	}
	return st
}

func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, n.Stats())
}

// handleMetrics serves the local server's metrics and appends the cluster
// lines, so one scrape shows routing health next to queue/cache health.
func (n *Node) handleMetrics(w http.ResponseWriter, r *http.Request) {
	n.local.Mux().ServeHTTP(w, r)
	fmt.Fprintf(w, "# HELP asamap_cluster_forwarded_total Requests proxied to a ring owner.\n")
	fmt.Fprintf(w, "# TYPE asamap_cluster_forwarded_total counter\nasamap_cluster_forwarded_total %d\n", n.forwarded.Load())
	fmt.Fprintf(w, "# HELP asamap_cluster_failovers_total Forwards that fell through to a secondary owner.\n")
	fmt.Fprintf(w, "# TYPE asamap_cluster_failovers_total counter\nasamap_cluster_failovers_total %d\n", n.failovers.Load())
	fmt.Fprintf(w, "# HELP asamap_cluster_degraded_total Requests served by local compute because every owner was unreachable.\n")
	fmt.Fprintf(w, "# TYPE asamap_cluster_degraded_total counter\nasamap_cluster_degraded_total %d\n", n.degraded.Load())
	fmt.Fprintf(w, "# TYPE asamap_cluster_peer_cache_hits_total counter\nasamap_cluster_peer_cache_hits_total %d\n", n.peerCacheHits.Load())
	fmt.Fprintf(w, "# TYPE asamap_cluster_peer_cache_misses_total counter\nasamap_cluster_peer_cache_misses_total %d\n", n.peerCacheMiss.Load())
	fmt.Fprintf(w, "# TYPE asamap_cluster_replication_failures_total counter\nasamap_cluster_replication_failures_total %d\n", n.replFailures.Load())
	fmt.Fprintf(w, "# TYPE asamap_cluster_graph_fetches_total counter\nasamap_cluster_graph_fetches_total %d\n", n.graphFetches.Load())
	fmt.Fprintf(w, "# TYPE asamap_cluster_version_fetches_total counter\nasamap_cluster_version_fetches_total %d\n", n.versionFetches.Load())
	for i, pc := range n.peers {
		if pc == nil {
			continue
		}
		st := pc.Stats()
		fmt.Fprintf(w, "asamap_cluster_peer_requests_total{peer=\"%d\"} %d\n", i, st.Requests)
		fmt.Fprintf(w, "asamap_cluster_peer_failures_total{peer=\"%d\"} %d\n", i, st.Failures)
		fmt.Fprintf(w, "asamap_cluster_peer_retries_total{peer=\"%d\"} %d\n", i, st.Retries)
		fmt.Fprintf(w, "asamap_cluster_peer_timeouts_total{peer=\"%d\"} %d\n", i, st.Timeouts)
		fmt.Fprintf(w, "asamap_cluster_breaker_trips_total{peer=\"%d\"} %d\n", i, st.BreakerTrips)
		fmt.Fprintf(w, "asamap_cluster_breaker_rejects_total{peer=\"%d\"} %d\n", i, st.BreakerRejects)
		fmt.Fprintf(w, "asamap_cluster_breaker_open{peer=\"%d\"} %d\n", i, boolMetric(pc.Breaker().State() != BreakerClosed))
	}
}

func boolMetric(b bool) int {
	if b {
		return 1
	}
	return 0
}

// errString renders a peer failure for the log, whichever shape it took.
func errString(err error, resp *PeerResponse) string {
	if err != nil {
		return err.Error()
	}
	if resp != nil {
		return fmt.Sprintf("HTTP %d", resp.Status)
	}
	return "unknown"
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func jsonError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
