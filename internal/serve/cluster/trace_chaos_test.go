package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"github.com/asamap/asamap/internal/fault"
	"github.com/asamap/asamap/internal/obs/propagate"
	"github.com/asamap/asamap/internal/serve"
)

// mergedTrace is the JSON shape of the router's /debug/trace/{id} fan-out.
type mergedTrace struct {
	Trace     string             `json:"trace"`
	Nodes     []traceNodePayload `json:"nodes"`
	Canonical json.RawMessage    `json:"canonical"`
	Errors    map[string]string  `json:"errors"`
}

// detectTraced posts one detection request and returns (status, routing path,
// trace id, body). It also asserts the internal trace-context header never
// leaks onto a response to an external client.
func detectTraced(t *testing.T, base, graphHash string, seed uint64, workers int) (int, string, string, []byte) {
	t.Helper()
	body, _ := json.Marshal(serve.DetectRequest{
		Graph:   graphHash,
		Options: serve.DetectOptions{Seed: seed, Workers: workers},
	})
	resp, err := http.Post(base+"/v1/detect", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if h := resp.Header.Get(propagate.Header); h != "" {
		t.Fatalf("X-Asamap-Trace leaked to the external client: %q", h)
	}
	return resp.StatusCode, resp.Header.Get(HeaderCluster), resp.Header.Get(propagate.ResponseHeader), raw
}

// fetchMergedTrace collects one distributed trace from the router, waiting
// out the tiny window between a response reaching the client and the
// server-side request span committing to the ring.
func fetchMergedTrace(t *testing.T, base, tid string) mergedTrace {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/debug/trace/" + tid)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			var mt mergedTrace
			if err := json.Unmarshal(raw, &mt); err != nil {
				t.Fatalf("bad merged trace payload: %v\n%s", err, raw)
			}
			if routerSegment(mt) != nil {
				return mt
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never settled on the router: status %d body %s", tid, resp.StatusCode, raw)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func routerSegment(mt mergedTrace) *traceNodePayload {
	for i := range mt.Nodes {
		if mt.Nodes[i].Node == -1 {
			for _, sp := range mt.Nodes[i].Spans {
				if sp.Name == "request" && !sp.Remote {
					return &mt.Nodes[i]
				}
			}
		}
	}
	return nil
}

// attemptSpanIDs indexes the attempt spans of a merged trace: the router's
// own (the roots remote hop-1 requests must stitch to) and the union across
// every segment (what deeper hops stitch to).
func attemptSpanIDs(mt mergedTrace) (router, all map[string]bool) {
	router, all = map[string]bool{}, map[string]bool{}
	for _, seg := range mt.Nodes {
		for _, sp := range seg.Spans {
			if sp.Name != "peer.attempt" && sp.Name != "client.attempt" {
				continue
			}
			all[sp.ID] = true
			if seg.Node == -1 {
				router[sp.ID] = true
			}
		}
	}
	return router, all
}

func attrValue(sp serve.SpanPayload, key string) (string, bool) {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// TestClusterTraceForwardedStitching: with no faults, a forwarded detect
// produces one distributed trace whose merged view carries both the router's
// and the owner's segments, with the replica's remote request span rooted
// under a router attempt span at hop 1.
func TestClusterTraceForwardedStitching(t *testing.T) {
	tc := newTestCluster(t, 3, fault.Disabled())
	hash := upload(t, tc.baseURL, graphA)
	status, path, tid, _ := detectTraced(t, tc.baseURL, hash, 3, 0)
	if status != http.StatusOK || path != "forwarded" {
		t.Fatalf("status %d path %q, want 200 forwarded", status, path)
	}
	if tid == "" {
		t.Fatal("no X-Asamap-Trace-Id on the detect response")
	}
	mt := fetchMergedTrace(t, tc.baseURL, tid)
	if mt.Trace != tid {
		t.Fatalf("merged trace id %q, want %q", mt.Trace, tid)
	}
	if len(mt.Nodes) < 2 {
		t.Fatalf("merged trace has %d node segments, want the router and an owner", len(mt.Nodes))
	}
	routerAttempts, allAttempts := attemptSpanIDs(mt)
	if len(routerAttempts) == 0 {
		t.Fatal("router segment has no attempt spans")
	}
	stitched := false
	for _, seg := range mt.Nodes {
		if seg.Node < 0 {
			continue
		}
		for _, sp := range seg.Spans {
			if sp.Name != "request" || !sp.Remote {
				continue
			}
			hop, _ := attrValue(sp, "hop")
			switch hop {
			case "1":
				// One forward deep: must root under a router attempt span.
				if !routerAttempts[sp.Parent] {
					t.Errorf("replica %d hop-1 request parent %s is not a router attempt span", seg.Node, sp.Parent)
				}
				stitched = true
			default:
				// Deeper hops (replica-to-replica cache probes, replication)
				// root under some attempt span in the merged set.
				if !allAttempts[sp.Parent] {
					t.Errorf("replica %d hop-%s request parent %s is not any attempt span", seg.Node, hop, sp.Parent)
				}
			}
		}
	}
	if !stitched {
		t.Fatal("no replica segment stitched to the router's attempt spans")
	}
	if len(mt.Canonical) == 0 || string(mt.Canonical) == "null" {
		t.Fatal("merged trace has no canonical tree")
	}

	// ?format=chrome renders one process track per node.
	resp, err := http.Get(tc.baseURL + "/debug/trace/" + tid + "?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	chrome := string(raw)
	for _, want := range []string{`"process_name"`, `"router"`, `"replica `, `"trace":"` + tid + `"`} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Errorf("chrome export missing %q:\n%.400s", want, chrome)
		}
	}

	// A forwarded collection request answers with the local segment only —
	// one hop of fan-out, never a storm.
	req, _ := http.NewRequest("GET", tc.srvs[0].URL+"/debug/trace/"+tid, nil)
	req.Header.Set(HeaderForwarded, "1")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK && bytes.Contains(raw, []byte(`"nodes"`)) {
		t.Fatalf("forwarded collection fanned out instead of serving locally:\n%.300s", raw)
	}

	// Malformed and unknown IDs reject cleanly on the fan-out path too.
	for path, want := range map[string]int{
		"/debug/trace/nothex":           http.StatusBadRequest,
		"/debug/trace/ffffffffffffffff": http.StatusNotFound,
	} {
		resp, err := http.Get(tc.baseURL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// traceOutcome is one request's externally observable identity: its routing
// path and the trace it was recorded under.
type traceOutcome struct {
	Path    string
	TraceID string
}

// runTraceChaosScenario drives the seeded fault schedule from the chaos tier
// with per-request trace capture: 18 serial detects over two graphs with
// graph A's primary owner crashing and reviving mid-run, then collects every
// merged trace from the router. It returns the outcome sequence and each
// trace's canonical-tree bytes, and asserts the stitching invariants: every
// forwarded request that reports a replica segment roots it under a router
// attempt span at hop 1, and at least one request survived via a seeded
// retry.
func runTraceChaosScenario(t *testing.T, ref map[string][]byte, workers int) ([]traceOutcome, [][]byte) {
	t.Helper()
	tc := newTestCluster(t, 3, fault.Config{
		Seed:      1234,
		DropProb:  0.12,
		DupProb:   0.08,
		DelayProb: 0.08,
		FailProb:  0.12,
	})
	hashA := upload(t, tc.baseURL, graphA)
	hashB := upload(t, tc.baseURL, graphB)
	victim := NewRing(3, 64, 42).Owners(hashA, 2)[0]

	seeds := []uint64{1, 2, 3, 4, 5}
	var outcomes []traceOutcome
	for i := 0; i < 18; i++ {
		switch i {
		case 6:
			tc.down[victim].Store(true)
		case 12:
			tc.down[victim].Store(false)
		}
		hash := hashA
		if i%2 == 1 {
			hash = hashB
		}
		seed := seeds[i%len(seeds)]
		status, path, tid, body := detectTraced(t, tc.baseURL, hash, seed, workers)
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d — a request was lost", i, status)
		}
		if !bytes.Equal(body, ref[refKey(hash, seed)]) {
			t.Fatalf("request %d: bytes differ from single-replica reference", i)
		}
		if tid == "" {
			t.Fatalf("request %d: no trace id", i)
		}
		outcomes = append(outcomes, traceOutcome{Path: path, TraceID: tid})
	}

	// Collect after the drive so trace fetches cannot perturb the router's
	// deterministic root-ID sequence between detects.
	canonical := make([][]byte, len(outcomes))
	retries, stitched := 0, 0
	for i, o := range outcomes {
		mt := fetchMergedTrace(t, tc.baseURL, o.TraceID)
		canonical[i] = append([]byte(nil), mt.Canonical...)

		routerAttempts, allAttempts := attemptSpanIDs(mt)
		for _, seg := range mt.Nodes {
			for _, sp := range seg.Spans {
				if sp.Name == "peer.attempt" || sp.Name == "client.attempt" {
					if v, ok := attrValue(sp, "attempt"); ok {
						if n, err := strconv.Atoi(v); err == nil && n > 1 {
							retries++
						}
					}
				}
				if sp.Name != "request" {
					continue
				}
				hop, _ := attrValue(sp, "hop")
				if !sp.Remote {
					// The externally issued request roots the trace at hop 0.
					if hop != "0" {
						t.Errorf("request %d: local root at hop %q, want 0", i, hop)
					}
					continue
				}
				switch hop {
				case "1":
					if !routerAttempts[sp.Parent] {
						t.Errorf("request %d: replica %d hop-1 request parent %s is not a router attempt span (path %s)",
							i, seg.Node, sp.Parent, o.Path)
					}
					if seg.Node >= 0 && o.Path == "forwarded" {
						stitched++
					}
				default:
					// A deeper hop's parent attempt lives on an intermediate
					// node; only insist on it when every segment was scraped.
					if len(mt.Errors) == 0 && !allAttempts[sp.Parent] {
						t.Errorf("request %d: replica %d hop-%s request parent %s is not any attempt span",
							i, seg.Node, hop, sp.Parent)
					}
				}
			}
		}
	}
	if retries == 0 {
		t.Error("no traced retry under a 40% fault rate — per-attempt spans are dead")
	}
	if stitched == 0 {
		t.Error("no forwarded request stitched a replica segment")
	}
	return outcomes, canonical
}

// TestClusterTraceChaosReplayDeterminism is the tracing acceptance test:
// under the seeded chaos schedule (drops, duplicates, delays, injected 5xx,
// crash/revive), every request yields one merged distributed trace whose hop
// structure matches its routing outcome — and both the outcome sequence and
// every trace's canonical bytes are identical across a chaos replay and
// across detection worker counts.
func TestClusterTraceChaosReplayDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos tier skipped in -short")
	}
	s := serve.New(serve.DefaultConfig())
	srv := httptest.NewServer(s.Handler())
	hashA := upload(t, srv.URL, graphA)
	hashB := upload(t, srv.URL, graphB)
	srv.Close()
	s.Close()
	ref := reference(t, map[string]string{hashA: graphA, hashB: graphB}, []uint64{1, 2, 3, 4, 5})

	out1, canon1 := runTraceChaosScenario(t, ref, 1)
	out2, canon2 := runTraceChaosScenario(t, ref, 1) // identical replay
	out3, canon3 := runTraceChaosScenario(t, ref, 2) // worker-count variation

	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatalf("request %d: outcome diverged across identical replays: %+v vs %+v",
				i, out1[i], out2[i])
		}
		if out1[i] != out3[i] {
			t.Fatalf("request %d: outcome diverged across worker counts: %+v vs %+v",
				i, out1[i], out3[i])
		}
		if !bytes.Equal(canon1[i], canon2[i]) {
			t.Errorf("request %d: canonical trace bytes diverged across identical replays:\n%s\nvs\n%s",
				i, canon1[i], canon2[i])
		}
		if !bytes.Equal(canon1[i], canon3[i]) {
			t.Errorf("request %d: canonical trace bytes diverged across worker counts:\n%s\nvs\n%s",
				i, canon1[i], canon3[i])
		}
	}
}
