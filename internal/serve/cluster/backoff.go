package cluster

import (
	"time"

	"github.com/asamap/asamap/internal/rng"
)

// Backoff is the capped exponential retry schedule for inter-replica calls,
// with deterministic jitter so retry storms decorrelate without making test
// runs irreproducible: the jitter is a pure function of (Seed, request key,
// attempt), not of a shared random stream.
type Backoff struct {
	// Base is the wait before the first retry (default 50ms).
	Base time.Duration
	// Max caps the exponential growth (default 2s).
	Max time.Duration
	// Seed drives the jitter stream.
	Seed uint64
}

func (b Backoff) normalize() Backoff {
	if b.Base <= 0 {
		b.Base = 50 * time.Millisecond
	}
	if b.Max < b.Base {
		b.Max = 2 * time.Second
	}
	return b
}

// Wait returns the pause before retry number attempt (1-based) of the
// request identified by key: Base << (attempt-1) capped at Max, plus a
// deterministic jitter in [0, wait/2).
func (b Backoff) Wait(key uint64, attempt int) time.Duration {
	b = b.normalize()
	shift := attempt - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 30 {
		shift = 30
	}
	d := b.Base << uint(shift)
	if d > b.Max || d <= 0 {
		d = b.Max
	}
	u := float64(rng.Hash64(b.Seed^key^uint64(attempt))>>11) / (1 << 53)
	return d + time.Duration(u*float64(d)/2)
}
