package serve

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/asamap/asamap/internal/clock"
)

// twoTriangles is a tiny graph with two planted communities bridged by one
// edge — enough structure that detection finds exactly two modules.
const twoTriangles = "0 1\n1 2\n2 0\n3 4\n4 5\n5 3\n0 3\n"

// shuffledTriangles is the same weighted graph with a comment, reversed
// undirected orientations, and reordered edges. Vertices appear in the same
// first-appearance order (labels remap to the same dense IDs), so it must
// canonicalize to the same content address.
const shuffledTriangles = "# same graph, edges reversed/reordered\n0 1\n2 1\n0 2\n3 4\n5 4\n3 5\n3 0\n"

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *Client) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs, NewClient(hs.URL, hs.Client())
}

func TestUploadAndDetectRoundTrip(t *testing.T) {
	s, _, c := newTestServer(t, DefaultConfig())
	ctx := context.Background()

	info, err := c.UploadGraph(ctx, strings.NewReader(twoTriangles), false)
	if err != nil {
		t.Fatal(err)
	}
	if info.Vertices != 6 || info.Edges != 7 || info.Directed || info.Reused {
		t.Fatalf("upload info: %+v", info)
	}
	if len(info.Hash) != 64 {
		t.Fatalf("hash %q not a sha256 hex digest", info.Hash)
	}

	res, err := c.Detect(ctx, info.Hash, DetectOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumModules != 2 {
		t.Fatalf("detected %d modules on two triangles, want 2", res.NumModules)
	}
	if len(res.Membership) != 6 {
		t.Fatalf("membership covers %d vertices, want 6", len(res.Membership))
	}
	if res.Cache != CacheMiss {
		t.Fatalf("first request cache outcome %q, want miss", res.Cache)
	}
	if res.Membership[0] != res.Membership[1] || res.Membership[3] != res.Membership[4] ||
		res.Membership[0] == res.Membership[3] {
		t.Fatalf("membership does not separate the triangles: %v", res.Membership)
	}
	if s.Runs() != 1 {
		t.Fatalf("%d runs executed, want 1", s.Runs())
	}
}

// TestIdenticalRequestsAreByteIdenticalAndCached is the core acceptance
// criterion: same graph bytes + options + seed in, byte-identical result
// out, with the second request served from cache after exactly one parse
// and one run.
func TestIdenticalRequestsAreByteIdenticalAndCached(t *testing.T) {
	s, _, c := newTestServer(t, DefaultConfig())
	ctx := context.Background()

	up1, err := c.UploadGraph(ctx, strings.NewReader(twoTriangles), false)
	if err != nil {
		t.Fatal(err)
	}
	up2, err := c.UploadGraph(ctx, strings.NewReader(twoTriangles), false)
	if err != nil {
		t.Fatal(err)
	}
	if up2.Hash != up1.Hash || !up2.Reused {
		t.Fatalf("re-upload not deduplicated: %+v vs %+v", up1, up2)
	}

	opts := DetectOptions{Seed: 7, Workers: 2}
	r1, err := c.Detect(ctx, up1.Hash, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Detect(ctx, up1.Hash, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1.Raw, r2.Raw) {
		t.Fatalf("identical requests returned different bytes:\n%s\n%s", r1.Raw, r2.Raw)
	}
	if r2.Cache != CacheHit {
		t.Fatalf("second request outcome %q, want hit", r2.Cache)
	}
	if got := s.registry.Stats().Parses; got != 1 {
		t.Fatalf("%d parses for two identical uploads, want 1", got)
	}
	if got := s.Runs(); got != 1 {
		t.Fatalf("%d runs for two identical requests, want 1", got)
	}
}

func TestCanonicalDedupAcrossTextualVariants(t *testing.T) {
	s, _, c := newTestServer(t, DefaultConfig())
	ctx := context.Background()
	a, err := c.UploadGraph(ctx, strings.NewReader(twoTriangles), false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.UploadGraph(ctx, strings.NewReader(shuffledTriangles), false)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash != b.Hash {
		t.Fatalf("textual variants got different content addresses: %s vs %s", a.Hash, b.Hash)
	}
	if !b.Reused {
		t.Fatal("canonical duplicate not marked reused")
	}
	// Both uploads parse (different raw bytes) but only one graph is stored.
	st := s.registry.Stats()
	if st.Graphs != 1 || st.Parses != 2 || st.CanonicalHits != 1 {
		t.Fatalf("registry stats after canonical dedup: %+v", st)
	}
}

func TestWorkerCountDoesNotFragmentCache(t *testing.T) {
	s, _, c := newTestServer(t, DefaultConfig())
	ctx := context.Background()
	info, err := c.UploadGraph(ctx, strings.NewReader(twoTriangles), false)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := c.Detect(ctx, info.Hash, DetectOptions{Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Same seed, different execution config: the fingerprint excludes
	// Workers/Sched because results are bit-identical across them, so this
	// must be a cache hit with the same bytes.
	r2, err := c.Detect(ctx, info.Hash, DetectOptions{Seed: 3, Workers: 4, Sched: "static"})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cache != CacheHit || !bytes.Equal(r1.Raw, r2.Raw) {
		t.Fatalf("worker-count variant missed the cache (outcome %q)", r2.Cache)
	}
	if s.Runs() != 1 {
		t.Fatalf("%d runs, want 1", s.Runs())
	}
}

func TestDifferentSeedsAreDifferentCacheEntries(t *testing.T) {
	s, _, c := newTestServer(t, DefaultConfig())
	ctx := context.Background()
	info, err := c.UploadGraph(ctx, strings.NewReader(twoTriangles), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Detect(ctx, info.Hash, DetectOptions{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Detect(ctx, info.Hash, DetectOptions{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if s.Runs() != 2 {
		t.Fatalf("%d runs for two seeds, want 2", s.Runs())
	}
}

// TestDetectHashGraphBackend: the probe-free backend is selectable over the
// API, partitions identically to baseline (backend choice is a pure
// performance decision), and fingerprints distinctly (so cached results
// never alias across backends).
func TestDetectHashGraphBackend(t *testing.T) {
	_, _, c := newTestServer(t, DefaultConfig())
	ctx := context.Background()
	info, err := c.UploadGraph(ctx, strings.NewReader(twoTriangles), false)
	if err != nil {
		t.Fatal(err)
	}
	hg, err := c.Detect(ctx, info.Hash, DetectOptions{Accum: "hashgraph", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	base, err := c.Detect(ctx, info.Hash, DetectOptions{Accum: "baseline", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if hg.Codelength != base.Codelength {
		t.Errorf("hashgraph codelength %v != baseline %v", hg.Codelength, base.Codelength)
	}
	for i := range hg.Membership {
		if hg.Membership[i] != base.Membership[i] {
			t.Fatalf("membership diverges at %d", i)
		}
	}
	if hg.Fingerprint == base.Fingerprint {
		t.Error("hashgraph and baseline share a fingerprint — cache would alias backends")
	}
}

func TestDetectErrors(t *testing.T) {
	_, hs, c := newTestServer(t, DefaultConfig())
	ctx := context.Background()

	// Unknown graph hash -> 404.
	_, err := c.Detect(ctx, strings.Repeat("ab", 32), DetectOptions{})
	var apiErr *APIError
	if err == nil || !asAPIError(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("unknown hash: got %v, want 404", err)
	}

	info, err := c.UploadGraph(ctx, strings.NewReader(twoTriangles), false)
	if err != nil {
		t.Fatal(err)
	}
	// Bad option value -> 400.
	_, err = c.Detect(ctx, info.Hash, DetectOptions{Accum: "quantum"})
	if err == nil || !asAPIError(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("bad accum: got %v, want 400", err)
	}
	// Unknown JSON field -> 400.
	resp, err := hs.Client().Post(hs.URL+"/v1/detect", "application/json",
		strings.NewReader(`{"graph":"`+info.Hash+`","optionz":{}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", resp.StatusCode)
	}
	// Malformed edge list -> 400.
	_, err = c.UploadGraph(ctx, strings.NewReader("0 1\nnot an edge\n"), false)
	if err == nil || !asAPIError(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("malformed upload: got %v, want 400", err)
	}
	// Non-finite weight -> 400.
	_, err = c.UploadGraph(ctx, strings.NewReader("0 1 +Inf\n"), false)
	if err == nil || !asAPIError(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("inf weight: got %v, want 400", err)
	}
}

func TestUploadSizeLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxUploadBytes = 64
	_, _, c := newTestServer(t, cfg)
	big := strings.Repeat("0 1\n", 100)
	_, err := c.UploadGraph(context.Background(), strings.NewReader(big), false)
	var apiErr *APIError
	if err == nil || !asAPIError(err, &apiErr) || apiErr.Status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload: got %v, want 413", err)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, hs, c := newTestServer(t, DefaultConfig())
	ctx := context.Background()
	info, err := c.UploadGraph(ctx, strings.NewReader(twoTriangles), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Detect(ctx, info.Hash, DetectOptions{}); err != nil {
		t.Fatal(err)
	}

	health, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" {
		t.Fatalf("health status %v", health["status"])
	}

	resp, err := hs.Client().Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"asamap_queue_capacity 16",
		"asamap_registry_graphs 1",
		"asamap_runs_total 1",
		"asamap_cache_misses_total 1",
		`asamap_kernel_seconds_total{kernel="FindBestCommunity"}`,
		`asamap_gauge_sum{gauge="SweepImbalance"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestPprofExposed(t *testing.T) {
	_, hs, _ := newTestServer(t, DefaultConfig())
	resp, err := hs.Client().Get(hs.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
}

func TestGraphInfoEndpoint(t *testing.T) {
	_, _, c := newTestServer(t, DefaultConfig())
	ctx := context.Background()
	up, err := c.UploadGraph(ctx, strings.NewReader(twoTriangles), false)
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.GraphInfo(ctx, up.Hash)
	if err != nil {
		t.Fatal(err)
	}
	if info.Hash != up.Hash || info.Vertices != 6 {
		t.Fatalf("graph info mismatch: %+v vs %+v", info, up)
	}
	if _, err := c.GraphInfo(ctx, "deadbeef"); err == nil {
		t.Fatal("unknown hash did not error")
	}
}

func TestResultCacheLRUEviction(t *testing.T) {
	cache := NewResultCache(2)
	mk := func(v string) func() ([]byte, error) {
		return func() ([]byte, error) { return []byte(v), nil }
	}
	cache.GetOrCompute("a", mk("A"))
	cache.GetOrCompute("b", mk("B"))
	cache.GetOrCompute("a", mk("A2")) // refresh a's recency; still "A"
	cache.GetOrCompute("c", mk("C"))  // evicts b (the LRU entry)
	val, out, _ := cache.GetOrCompute("a", mk("A3"))
	if out != CacheHit || string(val) != "A" {
		t.Fatalf("key a: outcome %q val %q", out, val)
	}
	if _, out, _ := cache.GetOrCompute("b", mk("B2")); out != CacheMiss {
		t.Fatalf("evicted key outcome %q, want miss", out)
	}
	st := cache.Stats()
	if st.Evictions != 2 || st.Entries != 2 {
		t.Fatalf("cache stats: %+v", st)
	}
}

func TestQueueRetryAfterUsesInjectedClock(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	q := NewQueue(2, 1, fake, 0)
	defer q.Close()
	// No history: floor of one second.
	if got := q.RetryAfter(); got != time.Second {
		t.Fatalf("cold RetryAfter %v, want 1s", got)
	}
	// One 8s job (measured by the fake clock) seeds the EWMA.
	done := make(chan struct{})
	h, err := q.Submit(context.Background(), func(ctx context.Context) error {
		fake.Advance(8 * time.Second)
		close(done)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := q.RetryAfter(); got != 8*time.Second {
		t.Fatalf("RetryAfter %v after one 8s job, want 8s", got)
	}
}

func asAPIError(err error, target **APIError) bool {
	return errors.As(err, target)
}
