package serve

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

// triangleDelta rewires twoTriangles: drops the bridge, adds a new bridge
// through a brand-new vertex 6, and reweights one triangle edge.
const triangleDelta = "# rewire the bridge through a new vertex\n- 0 3\n+ 0 6 1\n+ 6 3 1\n= 1 2 2\n"

// secondDelta stacks on triangleDelta's version: strengthen the new bridge.
const secondDelta = "= 0 6 3\n"

func uploadBaseAndDelta(t *testing.T, c *Client) (GraphInfo, VersionInfo) {
	t.Helper()
	ctx := context.Background()
	base, err := c.UploadGraph(ctx, strings.NewReader(twoTriangles), false)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := c.UploadDelta(ctx, base.Hash, strings.NewReader(triangleDelta))
	if err != nil {
		t.Fatal(err)
	}
	return base, v1
}

func TestDeltaUploadLineage(t *testing.T) {
	s, _, c := newTestServer(t, DefaultConfig())
	ctx := context.Background()
	base, v1 := uploadBaseAndDelta(t, c)

	if len(v1.ID) != 64 || v1.ID == base.Hash {
		t.Fatalf("version id %q is not a fresh sha256 digest", v1.ID)
	}
	if v1.Parent != base.Hash || v1.Base != base.Hash || v1.Depth != 1 || v1.Ops != 4 {
		t.Fatalf("v1 lineage: %+v", v1)
	}
	// twoTriangles has 6 vertices, 7 edges; the delta removes one edge, adds
	// two through new vertex 6, and reweights one in place.
	if v1.Vertices != 7 || v1.Edges != 8 || v1.Directed {
		t.Fatalf("v1 shape: %+v", v1)
	}
	if v1.Reused {
		t.Fatalf("first delta upload marked reused: %+v", v1)
	}

	// Identical delta on the same parent deduplicates by chained hash.
	again, err := c.UploadDelta(ctx, base.Hash, strings.NewReader(triangleDelta))
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != v1.ID || !again.Reused {
		t.Fatalf("re-upload not deduplicated: %+v", again)
	}

	// Stacking a second delta extends the lineage.
	v2, err := c.UploadDelta(ctx, v1.ID, strings.NewReader(secondDelta))
	if err != nil {
		t.Fatal(err)
	}
	if v2.Parent != v1.ID || v2.Base != base.Hash || v2.Depth != 2 {
		t.Fatalf("v2 lineage: %+v", v2)
	}
	chain, ok := s.registry.Lineage(v2.ID)
	if !ok || len(chain) != 3 || chain[0] != base.Hash || chain[1] != v1.ID || chain[2] != v2.ID {
		t.Fatalf("lineage %v (ok=%v), want [base v1 v2]", chain, ok)
	}

	// The version endpoints round-trip metadata and exact delta bytes.
	got, err := c.Version(ctx, v1.ID)
	if err != nil {
		t.Fatal(err)
	}
	got.Reused = false
	if got != v1 {
		t.Fatalf("version endpoint %+v, want %+v", got, v1)
	}
	raw, parent, err := c.VersionDelta(ctx, v1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != triangleDelta || parent != base.Hash {
		t.Fatalf("delta endpoint returned %q (parent %q)", raw, parent)
	}

	st := s.registry.Stats()
	if st.Versions != 2 || st.DeltaApplies != 2 || st.VersionHits != 1 {
		t.Fatalf("registry stats: %+v", st)
	}
}

func TestDeltaUploadErrors(t *testing.T) {
	_, _, c := newTestServer(t, DefaultConfig())
	ctx := context.Background()
	base, err := c.UploadGraph(ctx, strings.NewReader(twoTriangles), false)
	if err != nil {
		t.Fatal(err)
	}

	var apiErr *APIError
	// Unknown parent is 404.
	if _, err := c.UploadDelta(ctx, strings.Repeat("ab", 32), strings.NewReader("+ 0 1 1\n")); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("unknown parent: %v", err)
	}
	// Malformed delta text is 400.
	if _, err := c.UploadDelta(ctx, base.Hash, strings.NewReader("+ 0\n")); !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("malformed delta: %v", err)
	}
	// Invalid semantics (add with negative weight) is 400.
	if _, err := c.UploadDelta(ctx, base.Hash, strings.NewReader("+ 0 1 -2\n")); !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("invalid delta: %v", err)
	}
	// Unknown version id on the read endpoints is 404.
	if _, err := c.Version(ctx, strings.Repeat("cd", 32)); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("unknown version info: %v", err)
	}
	if _, _, err := c.VersionDelta(ctx, strings.Repeat("cd", 32)); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("unknown version delta: %v", err)
	}
}

// TestColdDetectOnVersion verifies a version id is detectable exactly like a
// base graph: the cold path resolves it, caches under the version's own key,
// and the body carries no warm block.
func TestColdDetectOnVersion(t *testing.T) {
	s, _, c := newTestServer(t, DefaultConfig())
	ctx := context.Background()
	_, v1 := uploadBaseAndDelta(t, c)

	r1, err := c.Detect(ctx, v1.ID, DetectOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Membership) != v1.Vertices {
		t.Fatalf("membership covers %d vertices, want %d", len(r1.Membership), v1.Vertices)
	}
	if r1.Warm != nil {
		t.Fatalf("cold detect on a version carries warm info: %+v", r1.Warm)
	}
	if bytes.Contains(r1.Raw, []byte(`"warm"`)) {
		t.Fatalf("cold body mentions warm: %s", r1.Raw)
	}
	r2, err := c.Detect(ctx, v1.ID, DetectOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cache != CacheHit || !bytes.Equal(r1.Raw, r2.Raw) {
		t.Fatalf("cold version detect not cached byte-identically (outcome %q)", r2.Cache)
	}
	if s.Runs() != 1 {
		t.Fatalf("%d runs, want 1", s.Runs())
	}
}

// TestWarmDetectLineageReplay is the serve-layer byte-replay contract for
// incremental detection: a warm detect on a depth-2 version computes the
// base cold plus one warm run per delta, caches every step, and repeats
// byte-identically — including when an independent server replays the same
// lineage with different worker counts and schedulers.
func TestWarmDetectLineageReplay(t *testing.T) {
	s, _, c := newTestServer(t, DefaultConfig())
	ctx := context.Background()
	base, v1 := uploadBaseAndDelta(t, c)
	v2, err := c.UploadDelta(ctx, v1.ID, strings.NewReader(secondDelta))
	if err != nil {
		t.Fatal(err)
	}

	opts := DetectOptions{Seed: 5, WarmStart: true}
	r1, err := c.Detect(ctx, v2.ID, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s.Runs() != 3 {
		t.Fatalf("%d runs for depth-2 warm detect, want 3 (base + 2 warm steps)", s.Runs())
	}
	if r1.Warm == nil {
		t.Fatal("warm response missing warm info")
	}
	if r1.Warm.Parent != v1.ID || r1.Warm.Base != base.Hash || r1.Warm.Depth != 2 ||
		r1.Warm.FrontierHops != DefaultFrontierHops {
		t.Fatalf("warm info: %+v", r1.Warm)
	}
	if r1.Graph != v2.ID || len(r1.Membership) != v2.Vertices {
		t.Fatalf("warm response addresses %q with %d members", r1.Graph, len(r1.Membership))
	}

	// Replay: everything is cached, nothing recomputes.
	r2, err := c.Detect(ctx, v2.ID, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cache != CacheHit || !bytes.Equal(r1.Raw, r2.Raw) {
		t.Fatalf("warm replay not byte-identical from cache (outcome %q)", r2.Cache)
	}
	if s.Runs() != 3 {
		t.Fatalf("replay recomputed: %d runs", s.Runs())
	}

	// A warm detect on v1 is already a cache hit: the lineage walk for v2
	// cached the intermediate step under v1's own warm key.
	rv1, err := c.Detect(ctx, v1.ID, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rv1.Cache != CacheHit || s.Runs() != 3 {
		t.Fatalf("intermediate step not reused (outcome %q, runs %d)", rv1.Cache, s.Runs())
	}

	// An independent server with different worker counts and the static
	// scheduler replays the identical bytes — determinism is cross-replica.
	for _, alt := range []DetectOptions{
		{Seed: 5, WarmStart: true, Workers: 4},
		{Seed: 5, WarmStart: true, Workers: 2, Sched: "static"},
	} {
		_, _, c2 := newTestServer(t, DefaultConfig())
		if _, err := c2.UploadGraph(ctx, strings.NewReader(twoTriangles), false); err != nil {
			t.Fatal(err)
		}
		w1, err := c2.UploadDelta(ctx, base.Hash, strings.NewReader(triangleDelta))
		if err != nil {
			t.Fatal(err)
		}
		w2, err := c2.UploadDelta(ctx, w1.ID, strings.NewReader(secondDelta))
		if err != nil {
			t.Fatal(err)
		}
		if w2.ID != v2.ID {
			t.Fatalf("replica derived version %q, want %q", w2.ID, v2.ID)
		}
		ra, err := c2.Detect(ctx, w2.ID, alt)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ra.Raw, r1.Raw) {
			t.Fatalf("opts %+v: replica bytes differ:\n%s\n%s", alt, ra.Raw, r1.Raw)
		}
	}
}

// TestWarmAndColdKeysAreSeparate pins the cache-key extension: warm and cold
// results on the same version never alias, and DetectKey predicts both.
func TestWarmAndColdKeysAreSeparate(t *testing.T) {
	s, _, c := newTestServer(t, DefaultConfig())
	ctx := context.Background()
	_, v1 := uploadBaseAndDelta(t, c)

	cold, err := c.Detect(ctx, v1.ID, DetectOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := c.Detect(ctx, v1.ID, DetectOptions{Seed: 9, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache == CacheHit {
		t.Fatal("warm detect aliased the cold cache entry")
	}
	if warm.Warm == nil || cold.Warm != nil {
		t.Fatalf("warm marker misplaced: cold=%+v warm=%+v", cold.Warm, warm.Warm)
	}

	coldKey, err := DetectKey(v1.ID, DetectOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	warmKey, err := DetectKey(v1.ID, DetectOptions{Seed: 9, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if coldKey == warmKey {
		t.Fatal("warm and cold detect keys collide")
	}
	if !strings.HasSuffix(warmKey, warmMarker(DefaultFrontierHops)) {
		t.Fatalf("warm key %q missing hop marker", warmKey)
	}
	// Both keys are wire-computable and actually populated.
	if _, ok := s.CachePeek(coldKey); !ok {
		t.Fatalf("cold key %q not in cache", coldKey)
	}
	if _, ok := s.CachePeek(warmKey); !ok {
		t.Fatalf("warm key %q not in cache", warmKey)
	}
	// A different hop radius is a different key (and a recompute).
	wideKey, err := DetectKey(v1.ID, DetectOptions{Seed: 9, WarmStart: true, FrontierHops: 7})
	if err != nil {
		t.Fatal(err)
	}
	if wideKey == warmKey {
		t.Fatal("hop radius not part of the warm key")
	}
}

func TestWarmDetectErrors(t *testing.T) {
	_, _, c := newTestServer(t, DefaultConfig())
	ctx := context.Background()
	base, err := c.UploadGraph(ctx, strings.NewReader(twoTriangles), false)
	if err != nil {
		t.Fatal(err)
	}

	var apiErr *APIError
	// warm_start on a base graph: no lineage to replay.
	if _, err := c.Detect(ctx, base.Hash, DetectOptions{WarmStart: true}); !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("warm on base: %v", err)
	}
	// frontier_hops without warm_start.
	if _, err := c.Detect(ctx, base.Hash, DetectOptions{FrontierHops: 2}); !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("hops without warm: %v", err)
	}
	// Negative frontier_hops.
	if _, err := c.Detect(ctx, base.Hash, DetectOptions{WarmStart: true, FrontierHops: -1}); !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("negative hops: %v", err)
	}
}
