package serve

import "sync"

// flightGroup deduplicates concurrent calls with the same key: the first
// caller (the leader) runs fn, every caller that arrives while it is in
// flight blocks and receives the leader's result. This is the mechanism that
// makes N parallel identical requests cost one parse / one detection run.
//
// A minimal reimplementation of golang.org/x/sync/singleflight (the module
// has no external dependencies); no Forget/DoChan — the serving layer only
// needs the blocking form.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val []byte
	err error
}

// Do executes fn once per concurrent key, returning its result and whether
// this caller shared a leader's execution rather than running fn itself.
func (g *flightGroup) Do(key string, fn func() ([]byte, error)) (val []byte, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, true, c.err
	}
	c := new(flightCall)
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	c.wg.Done()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return c.val, false, c.err
}
