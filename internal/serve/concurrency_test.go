package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestParallelIdenticalRequestsSingleflight: N parallel identical requests
// must execute exactly one parse and one detection run; every response is
// byte-identical.
func TestParallelIdenticalRequestsSingleflight(t *testing.T) {
	s, _, c := newTestServer(t, DefaultConfig())
	ctx := context.Background()
	info, err := c.UploadGraph(ctx, strings.NewReader(twoTriangles), false)
	if err != nil {
		t.Fatal(err)
	}

	const n = 16
	var wg sync.WaitGroup
	raws := make([][]byte, n)
	errs := make([]error, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			res, err := c.Detect(ctx, info.Hash, DetectOptions{Seed: 11})
			if err != nil {
				errs[i] = err
				return
			}
			raws[i] = res.Raw
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(raws[0], raws[i]) {
			t.Fatalf("request %d returned different bytes", i)
		}
	}
	if got := s.Runs(); got != 1 {
		t.Fatalf("%d detection runs for %d identical parallel requests, want 1", got, n)
	}
	if got := s.registry.Stats().Parses; got != 1 {
		t.Fatalf("%d parses, want 1", got)
	}
}

// TestParallelIdenticalUploadsSingleflight: concurrent identical uploads
// parse once and agree on the content address.
func TestParallelIdenticalUploadsSingleflight(t *testing.T) {
	s, _, c := newTestServer(t, DefaultConfig())
	ctx := context.Background()
	const n = 12
	var wg sync.WaitGroup
	hashes := make([]string, n)
	errs := make([]error, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			info, err := c.UploadGraph(ctx, strings.NewReader(twoTriangles), false)
			hashes[i], errs[i] = info.Hash, err
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("upload %d: %v", i, errs[i])
		}
		if hashes[i] != hashes[0] {
			t.Fatalf("upload %d hash %s != %s", i, hashes[i], hashes[0])
		}
	}
	if got := s.registry.Stats().Parses; got != 1 {
		t.Fatalf("%d parses for %d concurrent identical uploads, want 1", got, n)
	}
}

// TestQueueSaturationExactlyOne429 is the acceptance criterion: with queue
// capacity K, K+1 concurrent requests yield exactly one 429 and K
// successful deterministic results. The test gate holds every admitted job
// in flight until all submissions have resolved, so the count is exact by
// construction, not by timing.
func TestQueueSaturationExactlyOne429(t *testing.T) {
	const k = 3
	cfg := DefaultConfig()
	cfg.QueueCapacity = k
	cfg.Workers = 2
	s, _, c := newTestServer(t, cfg)
	ctx := context.Background()
	info, err := c.UploadGraph(ctx, strings.NewReader(twoTriangles), false)
	if err != nil {
		t.Fatal(err)
	}

	// Gate: jobs block until released, so all K admission tokens stay held
	// while the K+1st request arrives — saturation is exact by construction.
	release := make(chan struct{})
	s.queue.setTestGate(func(*queueJob) { <-release })

	// K+1 requests with distinct seeds (identical seeds would coalesce in
	// the cache, never reaching the queue).
	results := make([]error, k+1)
	raws := make([][]byte, k+1)
	var wg sync.WaitGroup
	wg.Add(k + 1)
	for i := 0; i <= k; i++ {
		go func(i int) {
			defer wg.Done()
			res, err := c.Detect(ctx, info.Hash, DetectOptions{Seed: uint64(100 + i)})
			if err != nil {
				results[i] = err
				return
			}
			raws[i] = res.Raw
		}(i)
	}

	// Spin until the queue reports K outstanding and exactly one rejection.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.queue.Stats()
		if st.Rejected == 1 && st.Outstanding == k {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never saturated: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	var busy, ok int
	for i, err := range results {
		switch {
		case err == nil:
			ok++
			if len(raws[i]) == 0 {
				t.Fatalf("request %d succeeded with empty body", i)
			}
		default:
			var b *ServerBusyError
			if !errors.As(err, &b) {
				t.Fatalf("request %d failed with %v, want ServerBusyError", i, err)
			}
			if b.RetryAfter < time.Second {
				t.Fatalf("Retry-After %v below the 1s floor", b.RetryAfter)
			}
			busy++
		}
	}
	if busy != 1 || ok != k {
		t.Fatalf("%d rejected / %d succeeded, want 1 / %d", busy, ok, k)
	}

	// The K successes are deterministic: re-running each seed must
	// reproduce its bytes (now from cache).
	for i := 0; i <= k; i++ {
		if results[i] != nil {
			continue
		}
		res, err := c.Detect(ctx, info.Hash, DetectOptions{Seed: uint64(100 + i)})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Raw, raws[i]) {
			t.Fatalf("seed %d replay differs from first run", 100+i)
		}
	}
}

// TestClientDisconnectCancelsInFlightJob: closing the request must cancel
// the detection run promptly through the context chain, and the queue must
// account it as canceled, not completed.
func TestClientDisconnectCancelsInFlightJob(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.QueueCapacity = 2
	s, _, c := newTestServer(t, cfg)
	ctx := context.Background()

	// A graph big enough that a run takes long enough to straddle the
	// cancellation (hundreds of sweeps on ~2k vertices).
	var sb strings.Builder
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&sb, "%d %d\n", i, (i+1)%2000)
		fmt.Fprintf(&sb, "%d %d\n", i, (i+7)%2000)
	}
	info, err := c.UploadGraph(ctx, strings.NewReader(sb.String()), false)
	if err != nil {
		t.Fatal(err)
	}

	var startedOnce sync.Once
	started := make(chan struct{})
	// The gate publishes that the job reached a worker, then holds it until
	// its context is actually canceled. Without the hold, a fast machine can
	// finish the whole run before the client's disconnect propagates to the
	// server, and the job counts as completed instead of canceled — the
	// cancellation must win by construction, not by racing the sweep loop.
	s.queue.setTestGate(func(j *queueJob) {
		startedOnce.Do(func() { close(started) })
		<-j.ctx.Done()
	})

	reqCtx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() {
		_, err := c.Detect(reqCtx, info.Hash, DetectOptions{Seed: 5, MaxSweeps: 1000, OuterIters: 100})
		done <- err
	}()
	<-started
	cancel()

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("canceled request returned a result")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled request did not return within 10s")
	}

	// The worker observes the cancellation and frees the slot.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.queue.Stats()
		if st.Canceled >= 1 && st.Outstanding == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job not accounted as canceled: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if s.cache.Stats().Entries != 0 {
		t.Fatal("canceled run left a cache entry")
	}
}

// TestCancelWhileQueuedSkipsRun: a job whose client disconnects while still
// waiting in the queue must be skipped without executing.
func TestCancelWhileQueuedSkipsRun(t *testing.T) {
	q := NewQueue(4, 1, nil, 0)
	defer q.Close()

	block := make(chan struct{})
	h1, err := q.Submit(context.Background(), func(ctx context.Context) error {
		<-block
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	ran := false
	h2, err := q.Submit(ctx2, func(ctx context.Context) error {
		ran = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cancel2() // dies while queued behind the blocked job
	close(block)

	if err := h1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := h2.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued-then-canceled job returned %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("canceled job executed anyway")
	}
	st := q.Stats()
	if st.Canceled != 1 || st.Completed != 1 {
		t.Fatalf("queue accounting: %+v", st)
	}
}

// TestQueueCloseRejectsNewJobs: submissions after Close fail fast with
// ErrQueueClosed instead of hanging.
func TestQueueCloseRejectsNewJobs(t *testing.T) {
	q := NewQueue(2, 1, nil, 0)
	q.Close()
	if _, err := q.Submit(context.Background(), func(ctx context.Context) error { return nil }); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("Submit after Close returned %v", err)
	}
}

// TestConcurrentMixedTraffic hammers every endpoint at once; under -race
// this is the serve package's data-race canary.
func TestConcurrentMixedTraffic(t *testing.T) {
	s, hs, c := newTestServer(t, DefaultConfig())
	ctx := context.Background()
	info, err := c.UploadGraph(ctx, strings.NewReader(twoTriangles), false)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				switch i % 4 {
				case 0:
					c.Detect(ctx, info.Hash, DetectOptions{Seed: uint64(j%3 + 1)})
				case 1:
					c.UploadGraph(ctx, strings.NewReader(twoTriangles), false)
				case 2:
					c.Health(ctx)
				case 3:
					resp, err := hs.Client().Get(hs.URL + "/metrics")
					if err == nil {
						resp.Body.Close()
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if s.Runs() > 3 {
		t.Fatalf("%d runs for 3 distinct seeds, want <= 3", s.Runs())
	}
}
