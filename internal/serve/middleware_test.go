package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"github.com/asamap/asamap/internal/obs"
)

// TestRequestIDCorrelation: a client-sent X-Request-Id is echoed back; absent
// one, the server generates a 16-hex-digit ID, distinct across requests.
func TestRequestIDCorrelation(t *testing.T) {
	_, hs, _ := newTestServer(t, DefaultConfig())

	req, _ := http.NewRequest("GET", hs.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "client-chosen-id")
	resp, err := hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-chosen-id" {
		t.Errorf("client request ID not echoed: got %q", got)
	}

	hexID := regexp.MustCompile(`^[0-9a-f]{16}$`)
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp, err := hs.Client().Get(hs.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get("X-Request-Id")
		if !hexID.MatchString(id) {
			t.Fatalf("generated request ID %q is not 16 hex digits", id)
		}
		if seen[id] {
			t.Fatalf("request ID %q repeated", id)
		}
		seen[id] = true
	}
}

// TestPanicRecoveryMiddleware: a panicking handler yields a 500 JSON error
// (when nothing was written yet) and a structured log line carrying the
// request ID and a stack trace — the process survives.
func TestPanicRecoveryMiddleware(t *testing.T) {
	var logBuf bytes.Buffer
	cfg := DefaultConfig()
	cfg.Logger = obs.NewLogger(&logBuf, slog.LevelInfo)
	s := New(cfg)
	defer s.Close()

	h := s.middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom: injected test panic")
	}))
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/v1/panic", nil)
	req.Header.Set("X-Request-Id", "panic-req-1")
	h.ServeHTTP(rec, req)

	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body["error"] == "" {
		t.Errorf("panic response is not the JSON error shape: %s", rec.Body.Bytes())
	}
	logged := logBuf.String()
	for _, want := range []string{"panic recovered", "injected test panic", "request_id=panic-req-1", "middleware_test.go"} {
		if !strings.Contains(logged, want) {
			t.Errorf("panic log missing %q:\n%s", want, logged)
		}
	}
}

// TestRequestLogLine: every request emits one structured line with method,
// path, status, and the request ID.
func TestRequestLogLine(t *testing.T) {
	var logBuf bytes.Buffer
	cfg := DefaultConfig()
	cfg.Logger = obs.NewLogger(&logBuf, slog.LevelInfo)
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() { hs.Close(); s.Close() })

	req, _ := http.NewRequest("GET", hs.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "log-req-9")
	resp, err := hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	logged := logBuf.String()
	for _, want := range []string{"method=GET", "path=/healthz", "status=200", "request_id=log-req-9"} {
		if !strings.Contains(logged, want) {
			t.Errorf("request log missing %q:\n%s", want, logged)
		}
	}
}

// TestHealthzBuildInfo: /healthz carries the embedded build info and uptime.
func TestHealthzBuildInfo(t *testing.T) {
	_, hs, _ := newTestServer(t, DefaultConfig())
	resp, err := hs.Client().Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload healthPayload
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.Build.GoVersion == "" {
		t.Errorf("healthz build info missing go_version: %+v", payload.Build)
	}
	if payload.Queue.Capacity < 1 {
		t.Errorf("healthz missing queue stats: %+v", payload.Queue)
	}
}

// TestMetricsObservability: after one detection, /metrics exposes the request
// and queue-wait latency histograms and the accumulator event counters.
func TestMetricsObservability(t *testing.T) {
	_, hs, c := newTestServer(t, DefaultConfig())
	ctx := context.Background()
	info, err := c.UploadGraph(ctx, strings.NewReader(twoTriangles), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Detect(ctx, info.Hash, DetectOptions{Accum: "asa", Seed: 3}); err != nil {
		t.Fatal(err)
	}

	resp, err := hs.Client().Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	body := string(data)
	for _, want := range []string{
		"# TYPE asamap_request_seconds histogram",
		"asamap_request_seconds_count",
		`asamap_request_seconds_bucket{le="+Inf"}`,
		"# TYPE asamap_queue_wait_seconds histogram",
		"asamap_queue_wait_seconds_count 1",
		"# TYPE asamap_events_total counter",
		// Zero-count events are suppressed, so only the counters this tiny
		// graph actually exercises are asserted (no CAM evictions here).
		`asamap_events_total{event="AccumHits"}`,
		`asamap_events_total{event="AccumMisses"}`,
		`asamap_events_total{event="AccumAccumulates"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestDetectResponseAccumCounters: the response body carries the
// deterministic accumulator counters, and they replay byte-identically from
// cache.
func TestDetectResponseAccumCounters(t *testing.T) {
	_, _, c := newTestServer(t, DefaultConfig())
	ctx := context.Background()
	info, err := c.UploadGraph(ctx, strings.NewReader(twoTriangles), false)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := c.Detect(ctx, info.Hash, DetectOptions{Accum: "asa", Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Accum.Hits == 0 && r1.Accum.Misses == 0 {
		t.Errorf("response accum counters all zero: %+v", r1.Accum)
	}
	// Different worker count, same seed: cache key identical (workers are
	// excluded from the fingerprint), so the counters must replay exactly.
	r2, err := c.Detect(ctx, info.Hash, DetectOptions{Accum: "asa", Seed: 5, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1.Raw, r2.Raw) {
		t.Errorf("accum counters broke byte replay:\n%s\n%s", r1.Raw, r2.Raw)
	}
}

// TestDebugTraceEndpoint: /debug/trace returns the retained spans with the
// request → run → level → sweep nesting reachable through parent links.
func TestDebugTraceEndpoint(t *testing.T) {
	_, hs, c := newTestServer(t, DefaultConfig())
	ctx := context.Background()
	info, err := c.UploadGraph(ctx, strings.NewReader(twoTriangles), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Detect(ctx, info.Hash, DetectOptions{Seed: 2}); err != nil {
		t.Fatal(err)
	}

	resp, err := hs.Client().Get(hs.URL + "/debug/trace?n=512")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload struct {
		Retained int                `json:"retained"`
		Spans    []SpanPayload `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.Retained == 0 || len(payload.Spans) == 0 {
		t.Fatalf("no spans retained: %+v", payload)
	}
	byID := map[string]SpanPayload{}
	count := map[string]int{}
	for _, sp := range payload.Spans {
		byID[sp.ID] = sp
		count[sp.Name]++
	}
	for _, name := range []string{"request", "run", "level", "sweep", "FindBestCommunity", "UpdateMembers"} {
		if count[name] == 0 {
			t.Errorf("no %q span on /debug/trace (have %v)", name, count)
		}
	}
	// Walk one sweep up to its root: sweep → level → run → request.
	for _, sp := range payload.Spans {
		if sp.Name != "sweep" {
			continue
		}
		chain := []string{}
		for cur, ok := sp, true; ok; cur, ok = byID[cur.Parent] {
			chain = append(chain, cur.Name)
			if cur.Parent == "" {
				break
			}
		}
		want := []string{"sweep", "level", "run", "request"}
		if len(chain) != len(want) {
			t.Fatalf("sweep ancestry = %v, want %v", chain, want)
		}
		for i := range want {
			if chain[i] != want[i] {
				t.Fatalf("sweep ancestry = %v, want %v", chain, want)
			}
		}
		break
	}

	// Bad n is rejected.
	bad, err := hs.Client().Get(hs.URL + "/debug/trace?n=zero")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("bad n: status %d, want 400", bad.StatusCode)
	}
}
