package serve

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"github.com/asamap/asamap/internal/obs"
	"github.com/asamap/asamap/internal/obs/propagate"
	"github.com/asamap/asamap/internal/rng"
)

// requestState travels with a request's context: the request's root span (the
// parent for any detection run it triggers), the forwarding depth the request
// arrived at (0 when the client spoke to us directly), and a logger
// pre-tagged with the request ID.
type requestState struct {
	span   *obs.Span
	hop    int
	logger *slog.Logger
}

// reqKey is the private context key for requestState.
type reqKey struct{}

// requestSpan returns the request's root span, or nil (a no-op span) when the
// handler runs outside the middleware (as in narrow unit tests).
func requestSpan(ctx context.Context) *obs.Span {
	if st, ok := ctx.Value(reqKey{}).(*requestState); ok {
		return st.span
	}
	return nil
}

// RequestSpan returns the root span the observability middleware opened for
// this request, or nil (a no-op span) outside a middleware-wrapped handler.
// The cluster node uses it to annotate requests with their routing path
// (forwarded, degraded, peer-cache) without re-implementing the middleware.
func RequestSpan(ctx context.Context) *obs.Span { return requestSpan(ctx) }

// RequestTrace returns the distributed trace ID the request is recorded
// under and the forwarding depth it arrived at. Outbound cluster calls use
// both to build the propagated context (hop+1 under the caller's attempt
// span). Zero trace means "outside the middleware" — nothing to propagate.
func RequestTrace(ctx context.Context) (trace uint64, hop int) {
	if st, ok := ctx.Value(reqKey{}).(*requestState); ok {
		return st.span.Trace(), st.hop
	}
	return 0, 0
}

// requestLogger returns the request-ID-tagged logger, or the fallback when
// the handler runs outside the middleware.
func requestLogger(ctx context.Context, fallback *slog.Logger) *slog.Logger {
	if st, ok := ctx.Value(reqKey{}).(*requestState); ok {
		return st.logger
	}
	return fallback
}

// statusWriter records the response status and whether the handler wrote
// anything, so the middleware can log the outcome and the panic recovery can
// tell whether a 500 can still be sent.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if !w.wrote {
		w.code = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) status() int {
	if !w.wrote {
		return http.StatusOK
	}
	return w.code
}

// middleware wraps every handler with the observability envelope, outermost
// first: request-ID correlation (honoring a client-sent X-Request-Id, else
// deriving one from a salted counter), a per-request root span, panic
// recovery (structured stack-trace log line plus a 500 when nothing has been
// written yet), the end-to-end latency histogram, and one structured log line
// per request.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.clk.Now()
		reqID := r.Header.Get("X-Request-Id")
		if reqID == "" {
			reqID = fmt.Sprintf("%016x", rng.Hash64(s.idSalt^s.reqSeq.Add(1)))
		}
		w.Header().Set("X-Request-Id", reqID)

		// A propagated trace context roots this request's spans under the
		// sender's attempt span; the header is consumed here so handlers never
		// re-forward a stale context. Untraced (or malformed) requests start a
		// fresh trace rooted at this node.
		var span *obs.Span
		hop := 0
		if pc, ok := propagate.Extract(r.Header); ok {
			span = s.tracer.BeginRemote("request", pc.TraceID, pc.Parent)
			hop = pc.Hop
		} else {
			span = s.tracer.Begin("request")
		}
		propagate.Strip(r.Header)
		span.SetAttr("method", r.Method)
		span.SetAttr("path", r.URL.Path)
		span.SetUint("hop", uint64(hop))
		span.SetVolatileAttr("request_id", reqID)
		if tid := span.Trace(); tid != 0 {
			w.Header().Set(propagate.ResponseHeader, propagate.FormatID(tid))
		}
		logger := obs.WithRequestID(s.logger, reqID)
		sw := &statusWriter{ResponseWriter: w}
		r = r.WithContext(context.WithValue(r.Context(), reqKey{},
			&requestState{span: span, hop: hop, logger: logger}))

		defer func() {
			if p := recover(); p != nil {
				logger.Error("panic recovered",
					"method", r.Method,
					"path", r.URL.Path,
					"panic", fmt.Sprint(p),
					"stack", string(debug.Stack()))
				if !sw.wrote {
					httpError(sw, http.StatusInternalServerError, "internal server error")
				}
			}
			elapsed := s.clk.Since(start)
			span.SetVolatileUint("status", uint64(sw.status()))
			span.End()
			s.reqHist.Observe(elapsed)
			logger.Info("request",
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status(),
				"elapsed", elapsed.String())
		}()
		next.ServeHTTP(sw, r)
	})
}

// BuildInfo is the binary provenance block of /healthz, read once at startup
// from the Go build info embedded in the executable.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module,omitempty"`
	Revision  string `json:"revision,omitempty"`
	BuildTime string `json:"build_time,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

// readBuildInfo extracts the health-relevant build settings. Binaries built
// without VCS stamping (e.g. go test) just omit the VCS fields.
func readBuildInfo() BuildInfo {
	out := BuildInfo{}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	out.GoVersion = info.GoVersion
	out.Module = info.Main.Path
	for _, kv := range info.Settings {
		switch kv.Key {
		case "vcs.revision":
			out.Revision = kv.Value
		case "vcs.time":
			out.BuildTime = kv.Value
		case "vcs.modified":
			out.Modified = kv.Value == "true"
		}
	}
	return out
}

// SpanPayload is the wire form of one span on /debug/trace and the per-trace
// collection endpoints: hex IDs, microsecond offsets from the tracer epoch,
// and both attribute classes. It round-trips to obs.SpanData so the cluster
// router can stitch peer-reported spans into one merged trace.
type SpanPayload struct {
	ID            string     `json:"id"`
	Parent        string     `json:"parent,omitempty"`
	Trace         string     `json:"trace,omitempty"`
	Name          string     `json:"name"`
	Seq           uint64     `json:"seq,omitempty"`
	Track         int        `json:"track,omitempty"`
	Volatile      bool       `json:"volatile,omitempty"`
	Remote        bool       `json:"remote,omitempty"`
	StartUS       int64      `json:"start_us"`
	DurUS         int64      `json:"dur_us"`
	Attrs         []obs.Attr `json:"attrs,omitempty"`
	VolatileAttrs []obs.Attr `json:"volatile_attrs,omitempty"`
}

// NewSpanPayload renders sp with timestamps relative to epoch.
func NewSpanPayload(sp obs.SpanData, epoch time.Time) SpanPayload {
	p := SpanPayload{
		ID:            propagate.FormatID(sp.ID),
		Name:          sp.Name,
		Seq:           sp.Seq,
		Track:         sp.Track,
		Volatile:      sp.Volatile,
		Remote:        sp.Remote,
		StartUS:       sp.Start.Sub(epoch).Microseconds(),
		DurUS:         sp.Duration().Microseconds(),
		Attrs:         sp.Attrs,
		VolatileAttrs: sp.VolatileAttrs,
	}
	if sp.Parent != 0 {
		p.Parent = propagate.FormatID(sp.Parent)
	}
	if sp.Trace != 0 {
		p.Trace = propagate.FormatID(sp.Trace)
	}
	return p
}

// SpanData reconstructs the span against the given epoch (peer epochs are
// not aligned; the caller picks what the rebuilt timestamps mean). Malformed
// IDs reject the whole span — a corrupt payload must not graft onto ID 0.
func (p SpanPayload) SpanData(epoch time.Time) (obs.SpanData, error) {
	id, err := propagate.ParseID(p.ID)
	if err != nil {
		return obs.SpanData{}, err
	}
	out := obs.SpanData{
		ID:            id,
		Name:          p.Name,
		Seq:           p.Seq,
		Track:         p.Track,
		Volatile:      p.Volatile,
		Remote:        p.Remote,
		Attrs:         p.Attrs,
		VolatileAttrs: p.VolatileAttrs,
	}
	if p.Parent != "" {
		if out.Parent, err = propagate.ParseID(p.Parent); err != nil {
			return obs.SpanData{}, err
		}
	}
	if p.Trace != "" {
		if out.Trace, err = propagate.ParseID(p.Trace); err != nil {
			return obs.SpanData{}, err
		}
	}
	out.Start = epoch.Add(time.Duration(p.StartUS) * time.Microsecond)
	out.End = out.Start.Add(time.Duration(p.DurUS) * time.Microsecond)
	return out, nil
}

// debugTraceDefaultSpans bounds an unparameterized /debug/trace response.
const debugTraceDefaultSpans = 256

// handleTraceDebug streams the last-N completed spans (newest last) as JSON.
// ?n= overrides the default window up to the ring size.
func (s *Server) handleTraceDebug(w http.ResponseWriter, r *http.Request) {
	n := debugTraceDefaultSpans
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := parsePositiveInt(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad n: "+err.Error())
			return
		}
		n = parsed
	}
	spans := s.tracer.Snapshot(n)
	epoch := s.tracer.Epoch()
	out := make([]SpanPayload, len(spans))
	for i, sp := range spans {
		out[i] = NewSpanPayload(sp, epoch)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"retained": s.tracer.Len(),
		"spans":    out,
	})
}

// parsePositiveInt parses a strictly positive decimal integer.
func parsePositiveInt(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if n < 1 {
		return 0, fmt.Errorf("must be >= 1, got %d", n)
	}
	return n, nil
}
