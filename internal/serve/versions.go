package serve

import (
	"bytes"
	"encoding/hex"
	"errors"
	"fmt"

	"github.com/asamap/asamap/internal/graph"
)

// ErrUnknownParent reports a delta upload whose parent hash names neither a
// registered base graph nor an existing version.
var ErrUnknownParent = errors.New("serve: unknown parent graph or version")

// VersionInfo describes a graph version produced by applying a delta batch to
// a parent. ID is the chained delta hash (hex of graph.Delta.Hash over the
// parent's digest), so a version's name commits to the entire edit history
// back to its base graph: same base + same ordered deltas in, same id out,
// on every replica that replays the chain.
type VersionInfo struct {
	ID       string `json:"id"`
	Parent   string `json:"parent"` // immediate parent: a version id or the base hash
	Base     string `json:"base"`   // canonical hash of the root graph of the lineage
	Depth    int    `json:"depth"`  // number of deltas between base and this version
	Ops      int    `json:"ops"`    // delta operations in this step
	Vertices int    `json:"vertices"`
	Arcs     int    `json:"arcs"`
	Edges    int    `json:"edges"`
	Directed bool   `json:"directed"`
	Reused   bool   `json:"reused,omitempty"`
}

// versionEntry pairs the materialized graph of a version with its lineage
// metadata, the raw delta text (served to replicating peers byte-for-byte),
// and the touched vertex set that seeds warm-start frontiers.
type versionEntry struct {
	g       *graph.Graph
	info    VersionInfo
	delta   []byte
	touched []uint32
}

// AddVersion parses the delta text, applies it to the parent graph (a base
// canonical hash or an existing version id), and registers the result under
// its chained delta hash. Identical (parent, delta) pairs deduplicate by
// construction — the id is a pure function of both — and concurrent identical
// uploads are single-flighted so the delta is applied exactly once.
func (r *Registry) AddVersion(parent string, deltaText []byte) (VersionInfo, error) {
	pg, pinfo, ok := r.resolveParent(parent)
	if !ok {
		return VersionInfo{}, ErrUnknownParent
	}
	d, err := graph.ReadDeltaList(bytes.NewReader(deltaText))
	if err != nil {
		return VersionInfo{}, err
	}
	if err := d.Validate(); err != nil {
		return VersionInfo{}, err
	}
	parentSum, err := hex.DecodeString(parent)
	if err != nil || len(parentSum) != 32 {
		return VersionInfo{}, fmt.Errorf("serve: parent id %q is not a hex digest", parent)
	}
	var sum [32]byte
	copy(sum[:], parentSum)
	id := hex.EncodeToString(func() []byte { h := d.Hash(sum); return h[:] }())

	r.mu.RLock()
	_, exists := r.versions[id]
	r.mu.RUnlock()
	if exists {
		r.versionHits.Add(1)
		info, _ := r.Version(id)
		info.Reused = true
		return info, nil
	}

	var dedup bool
	_, shared, err := r.flight.Do("ver:"+id, func() ([]byte, error) {
		r.mu.RLock()
		_, exists := r.versions[id]
		r.mu.RUnlock()
		if exists {
			r.versionHits.Add(1)
			dedup = true
			return []byte(id), nil
		}
		g, err := d.Apply(pg)
		if err != nil {
			return nil, err
		}
		r.deltaApplies.Add(1)
		entry := &versionEntry{
			g: g,
			info: VersionInfo{
				ID:       id,
				Parent:   parent,
				Base:     pinfo.Base,
				Depth:    pinfo.Depth + 1,
				Ops:      len(d.Ops),
				Vertices: g.N(),
				Arcs:     g.M(),
				Edges:    g.NumEdges(),
				Directed: g.Directed(),
			},
			delta:   append([]byte(nil), deltaText...),
			touched: d.Touched(),
		}
		r.mu.Lock()
		if _, exists := r.versions[id]; !exists {
			r.versions[id] = entry
		}
		r.mu.Unlock()
		return []byte(id), nil
	})
	if err != nil {
		return VersionInfo{}, err
	}
	info, ok := r.Version(id)
	if !ok {
		return VersionInfo{}, fmt.Errorf("serve: version entry for %s vanished", id)
	}
	info.Reused = shared || dedup
	return info, nil
}

// resolveParent finds the parent of a delta upload: a base graph keeps Base =
// its own hash at Depth 0, a version contributes its recorded lineage.
func (r *Registry) resolveParent(id string) (*graph.Graph, VersionInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if e, ok := r.byCanonical[id]; ok {
		return e.g, VersionInfo{ID: id, Base: id, Depth: 0}, true
	}
	if v, ok := r.versions[id]; ok {
		return v.g, v.info, true
	}
	return nil, VersionInfo{}, false
}

// Resolve returns the graph registered under id, whether id names a base
// canonical graph or a delta version. Detection treats both uniformly: a
// version is just another immutable graph with a content-derived name.
func (r *Registry) Resolve(id string) (*graph.Graph, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if e, ok := r.byCanonical[id]; ok {
		return e.g, true
	}
	if v, ok := r.versions[id]; ok {
		return v.g, true
	}
	return nil, false
}

// Version returns the lineage metadata of a version id.
func (r *Registry) Version(id string) (VersionInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.versions[id]
	if !ok {
		return VersionInfo{}, false
	}
	return v.info, true
}

// VersionGraph returns the materialized graph and touched vertex set of a
// version — the warm-start inputs: the touched set seeds the k-hop frontier.
func (r *Registry) VersionGraph(id string) (*graph.Graph, []uint32, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.versions[id]
	if !ok {
		return nil, nil, false
	}
	return v.g, v.touched, true
}

// VersionDelta returns the exact delta bytes that produced a version and its
// parent id — the replication transfer format: a peer that applies these
// bytes to the same parent derives the same version id.
func (r *Registry) VersionDelta(id string) ([]byte, VersionInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.versions[id]
	if !ok {
		return nil, VersionInfo{}, false
	}
	return v.delta, v.info, true
}

// Lineage returns the version chain from the base graph to id, inclusive:
// [base, v1, ..., id]. A base canonical hash yields a one-element lineage.
// Warm-start detection walks this chain forward, seeding each step from its
// parent's partition.
func (r *Registry) Lineage(id string) ([]string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if _, ok := r.byCanonical[id]; ok {
		return []string{id}, true
	}
	v, ok := r.versions[id]
	if !ok {
		return nil, false
	}
	chain := make([]string, 0, v.info.Depth+1)
	for {
		chain = append(chain, v.info.ID)
		parent := v.info.Parent
		if pv, ok := r.versions[parent]; ok {
			v = pv
			continue
		}
		if _, ok := r.byCanonical[parent]; !ok {
			return nil, false // dangling parent: registry invariant violated
		}
		chain = append(chain, parent)
		break
	}
	// Reverse into base-first order.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain, true
}
