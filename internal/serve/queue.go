package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/asamap/asamap/internal/clock"
	"github.com/asamap/asamap/internal/trace"
)

// ErrQueueFull is returned by Queue.Submit when admission control rejects a
// job. RetryAfter is the server's estimate of when capacity frees up, used
// verbatim for the HTTP Retry-After header.
type ErrQueueFull struct {
	RetryAfter time.Duration
}

func (e *ErrQueueFull) Error() string {
	return fmt.Sprintf("serve: job queue full, retry after %s", e.RetryAfter)
}

// ErrQueueClosed is returned by Submit after Close.
var ErrQueueClosed = errors.New("serve: job queue closed")

// DefaultRetryAfterPrior is the assumed mean job duration before the first
// completed job seeds the EWMA. Without a prior, every cold-start Retry-After
// estimate collapses to the one-second floor regardless of queue depth — a
// saturated just-started server would invite the whole thundering herd back
// at once. One second is deliberately pessimistic for small graphs: clients
// that arrive during warmup back off harder, not softer.
const DefaultRetryAfterPrior = time.Second

// QueueStats is a point-in-time snapshot of queue activity.
type QueueStats struct {
	Capacity    int    `json:"capacity"`
	Outstanding int    `json:"outstanding"` // admitted jobs not yet finished (queued + running)
	Workers     int    `json:"workers"`
	Submitted   uint64 `json:"submitted"`
	Rejected    uint64 `json:"rejected"`
	Completed   uint64 `json:"completed"`
	Canceled    uint64 `json:"canceled"` // jobs whose context died before or during execution
}

// Queue is a bounded job queue with backpressure. Capacity counts
// *outstanding* jobs — queued plus running — so "capacity K" means the K+1st
// concurrent Submit is rejected with ErrQueueFull regardless of how quickly
// workers drain the channel; that is the deterministic saturation contract
// the API promises. Jobs run on a fixed set of worker goroutines; a job
// whose context is canceled while still queued is skipped without running.
type Queue struct {
	capacity int
	workers  int
	clk      clock.Clock

	jobs chan *queueJob
	sem  chan struct{} // admission tokens, one per outstanding job
	wg   sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	ewma     time.Duration // exponentially weighted mean job duration
	prior    time.Duration // stands in for the EWMA until the first sample
	waitHist *trace.Histogram
	counters struct {
		submitted, rejected, completed, canceled uint64
	}

	// testGate, when set, is called by workers with each job before running
	// it; tests use it to hold jobs in flight so saturation is exact, never
	// timing-luck, and to await a job's cancellation so disconnect tests are
	// propagation-race-free.
	testGate func(*queueJob)
}

type queueJob struct {
	ctx       context.Context
	run       func(ctx context.Context) error
	done      chan struct{}
	err       error
	submitted time.Time // admission instant; queue-wait = pop time - submitted
}

// NewQueue starts workers goroutines draining a queue with the given
// outstanding-job capacity. clk is injectable for deterministic tests.
// prior is the assumed mean job duration used for Retry-After estimates
// before the first completed job seeds the EWMA; non-positive takes
// DefaultRetryAfterPrior.
func NewQueue(capacity, workers int, clk clock.Clock, prior time.Duration) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	if workers < 1 {
		workers = 1
	}
	if clk == nil {
		clk = clock.Real{}
	}
	if prior <= 0 {
		prior = DefaultRetryAfterPrior
	}
	q := &Queue{
		capacity: capacity,
		workers:  workers,
		clk:      clk,
		prior:    prior,
		jobs:     make(chan *queueJob, capacity),
		sem:      make(chan struct{}, capacity),
	}
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go q.worker()
	}
	return q
}

// SetWaitHist installs a histogram observing each job's queue wait (time
// from admission to a worker popping it, including canceled-while-queued
// jobs). Call before the first Submit; the queue never mutates the histogram
// bounds.
func (q *Queue) SetWaitHist(h *trace.Histogram) {
	q.mu.Lock()
	q.waitHist = h
	q.mu.Unlock()
}

func (q *Queue) wait() *trace.Histogram {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.waitHist
}

func (q *Queue) worker() {
	defer q.wg.Done()
	for j := range q.jobs {
		if gate := q.gate(); gate != nil {
			gate(j)
		}
		if h := q.wait(); h != nil {
			h.Observe(q.clk.Since(j.submitted))
		}
		if err := j.ctx.Err(); err != nil {
			// Canceled while queued (client gone, deadline passed): do not
			// waste a detection run on a result nobody will read.
			j.err = err
			q.account(err)
			close(j.done)
			<-q.sem
			continue
		}
		start := q.clk.Now()
		j.err = j.run(j.ctx)
		q.observe(q.clk.Since(start))
		q.account(j.err)
		close(j.done)
		<-q.sem
	}
}

func (q *Queue) gate() func(*queueJob) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.testGate
}

// setTestGate installs fn to run at the start of every job (tests only).
func (q *Queue) setTestGate(fn func(*queueJob)) {
	q.mu.Lock()
	q.testGate = fn
	q.mu.Unlock()
}

func (q *Queue) account(err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		q.counters.canceled++
	} else {
		q.counters.completed++
	}
}

// observe folds a finished job's duration into the EWMA used for Retry-After
// estimates (alpha 1/4; the first sample seeds the mean).
func (q *Queue) observe(d time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.ewma == 0 {
		q.ewma = d
	} else {
		q.ewma += (d - q.ewma) / 4
	}
}

// RetryAfter estimates how long a rejected client should wait before
// retrying: the mean job duration times the number of queue "rounds" ahead
// of it, floored at one second so the header is never zero. Until the first
// completed job seeds the EWMA, the configured prior stands in for the mean
// so cold-start estimates still scale with queue depth.
func (q *Queue) RetryAfter() time.Duration {
	q.mu.Lock()
	ewma := q.ewma
	if ewma == 0 {
		ewma = q.prior
	}
	q.mu.Unlock()
	outstanding := len(q.sem)
	rounds := (outstanding + q.workers - 1) / q.workers
	if rounds < 1 {
		rounds = 1
	}
	est := ewma * time.Duration(rounds)
	if est < time.Second {
		est = time.Second
	}
	return est
}

// Submit admits run for asynchronous execution under ctx, or rejects it
// immediately with *ErrQueueFull when capacity outstanding jobs are already
// admitted. It never blocks on a full queue — backpressure is the caller's
// signal, not an invisible stall. Wait on the returned handle for the result.
func (q *Queue) Submit(ctx context.Context, run func(ctx context.Context) error) (*JobHandle, error) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil, ErrQueueClosed
	}
	q.mu.Unlock()

	select {
	case q.sem <- struct{}{}:
	default:
		q.mu.Lock()
		q.counters.rejected++
		q.mu.Unlock()
		return nil, &ErrQueueFull{RetryAfter: q.RetryAfter()}
	}

	j := &queueJob{ctx: ctx, run: run, done: make(chan struct{}), submitted: q.clk.Now()}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		<-q.sem
		return nil, ErrQueueClosed
	}
	q.counters.submitted++
	//asalint:lockorder sem is acquired before mu and q.jobs is buffered to cap(sem), so this send always finds a free slot
	q.jobs <- j
	q.mu.Unlock()
	return &JobHandle{job: j}, nil
}

// JobHandle follows one submitted job.
type JobHandle struct{ job *queueJob }

// Wait blocks until the job finishes (or is skipped due to cancellation) and
// returns its error. If ctx ends first, Wait returns ctx.Err() — the job
// itself still runs to completion or cancellation under its own context.
func (h *JobHandle) Wait(ctx context.Context) error {
	select {
	case <-h.job.done:
		return h.job.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stats snapshots the queue counters.
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return QueueStats{
		Capacity:    q.capacity,
		Outstanding: len(q.sem),
		Workers:     q.workers,
		Submitted:   q.counters.submitted,
		Rejected:    q.counters.rejected,
		Completed:   q.counters.completed,
		Canceled:    q.counters.canceled,
	}
}

// Close stops accepting jobs, drains the ones already admitted, and waits
// for the workers to exit. Close is idempotent.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.wg.Wait()
		return
	}
	q.closed = true
	close(q.jobs)
	q.mu.Unlock()
	q.wg.Wait()
}
